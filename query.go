package csoutlier

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// This file provides the front-end for the paper's production query
// template (§6.1.2):
//
//	SELECT Outlier K SUM(Score), G1...Gm
//	FROM   Log_Streams PARAMS(StartDate, EndDate)
//	WHERE  Predicates
//	GROUP BY G1...Gm;
//
// A LogRecord is one raw log line with named attributes and a score;
// an OutlierQuery filters records, groups them by the chosen
// attributes, and the executor runs the full sketch pipeline over the
// per-node record sets.

// LogRecord is one raw log event.
type LogRecord struct {
	Attrs map[string]string // e.g. "Market": "en-US", "Vertical": "web"
	Score float64           // signed click score
}

// OutlierQuery describes a distributed k-outlier aggregation query.
type OutlierQuery struct {
	// K is the number of outliers to report.
	K int
	// GroupBy lists the attribute names forming the aggregation key,
	// in order (G1...Gm in the template).
	GroupBy []string
	// Where filters records before aggregation (nil = keep all).
	Where func(LogRecord) bool
	// M is the sketch length; Seed the consensus seed.
	M    int
	Seed uint64
}

// groupKeySep separates attribute values inside a composite group key.
// Attribute values containing the separator are rejected at key-build
// time rather than silently merging groups.
const groupKeySep = "|"

// GroupKey builds the composite key of a record under the query's
// GROUP BY clause.
func (q *OutlierQuery) GroupKey(rec LogRecord) (string, error) {
	parts := make([]string, len(q.GroupBy))
	for i, attr := range q.GroupBy {
		v, ok := rec.Attrs[attr]
		if !ok {
			return "", fmt.Errorf("csoutlier: record lacks GROUP BY attribute %q", attr)
		}
		if strings.Contains(v, groupKeySep) {
			return "", fmt.Errorf("csoutlier: attribute %q value %q contains the %q separator", attr, v, groupKeySep)
		}
		parts[i] = v
	}
	return strings.Join(parts, groupKeySep), nil
}

// AggregateNode filters and partially aggregates one node's records —
// the mapper-side "sum group by" (paper Figure 1).
func (q *OutlierQuery) AggregateNode(recs []LogRecord) (map[string]float64, error) {
	pairs := make(map[string]float64)
	for _, rec := range recs {
		if q.Where != nil && !q.Where(rec) {
			continue
		}
		key, err := q.GroupKey(rec)
		if err != nil {
			return nil, err
		}
		pairs[key] += rec.Score
	}
	return pairs, nil
}

// QueryResult is the outcome of an executed OutlierQuery.
type QueryResult struct {
	Report *Report
	// Keys is the global key dictionary the run agreed on (sorted).
	Keys []string
	// SketchBytes is the sketch communication the aggregation cost
	// (L·M·8); DictionaryBytes the one-time key-agreement cost.
	SketchBytes     int64
	DictionaryBytes int64
}

// RunOutlierQuery executes the query over per-node record sets
// in-process: it builds the global key dictionary (one extra round in a
// real deployment — its cost is reported separately), sketches every
// node's partial aggregation, sums, and detects. It is the reference
// executor; distributed deployments run the same steps across
// cmd/csnode processes.
func RunOutlierQuery(q *OutlierQuery, nodes [][]LogRecord) (*QueryResult, error) {
	if q.K <= 0 {
		return nil, errors.New("csoutlier: query K must be positive")
	}
	if len(q.GroupBy) == 0 {
		return nil, errors.New("csoutlier: query needs at least one GROUP BY attribute")
	}
	if len(nodes) == 0 {
		return nil, errors.New("csoutlier: no nodes")
	}
	// Phase 0: per-node aggregation + global key dictionary union.
	perNode := make([]map[string]float64, len(nodes))
	keySet := make(map[string]bool)
	var dictBytes int64
	for i, recs := range nodes {
		pairs, err := q.AggregateNode(recs)
		if err != nil {
			return nil, fmt.Errorf("csoutlier: node %d: %w", i, err)
		}
		perNode[i] = pairs
		for k := range pairs {
			keySet[k] = true
			dictBytes += int64(len(k)) + 1
		}
	}
	if len(keySet) == 0 {
		return nil, errors.New("csoutlier: no records survive the WHERE predicate")
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	m := q.M
	if m <= 0 || m > len(keys) {
		m = len(keys) / 10
		if m < 4 {
			m = len(keys)
		}
	}
	sk, err := NewSketcher(keys, Config{M: m, Seed: q.Seed})
	if err != nil {
		return nil, err
	}

	// Phase 1: sketch + sum; Phase 2: detect.
	global := sk.ZeroSketch()
	for i, pairs := range perNode {
		y, err := sk.SketchPairs(pairs)
		if err != nil {
			return nil, fmt.Errorf("csoutlier: node %d: %w", i, err)
		}
		if err := global.Add(y); err != nil {
			return nil, err
		}
	}
	rep, err := sk.Detect(global, q.K)
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Report:          rep,
		Keys:            keys,
		SketchBytes:     int64(len(nodes)) * int64(m) * 8,
		DictionaryBytes: dictBytes,
	}, nil
}
