// Streaming: standing sketches over live event streams, plus the
// broader aggregation queries.
//
// Two nodes ingest a stream of click events one at a time; each event
// folds into a standing O(M) sketch (no raw data is retained). At any
// moment the aggregator can combine the standing sketches and answer
// not just the k-outlier query but the related aggregates the paper
// lists (§1): sum, mean, percentiles, top-k — all from one recovery
// pass over the compact (mode + outliers) representation.
//
// Run: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"csoutlier"
	"csoutlier/internal/xrand"
)

func main() {
	var keys []string
	for i := 0; i < 800; i++ {
		keys = append(keys, fmt.Sprintf("segment-%03d", i))
	}
	sk, err := csoutlier.NewSketcher(keys, csoutlier.Config{M: 260, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Two ingest nodes with standing sketches.
	west, east := sk.NewUpdater(), sk.NewUpdater()
	rng := xrand.New(1)

	// Simulate a day of events: every segment accrues ~ the same score
	// in small increments, split across nodes...
	const mode = 1200.0
	for _, k := range keys {
		remaining := mode
		for remaining > 0 {
			inc := 40 + 20*rng.Float64()
			if inc > remaining {
				inc = remaining
			}
			u := west
			if rng.Float64() < 0.5 {
				u = east
			}
			if err := u.Observe(k, inc); err != nil {
				log.Fatal(err)
			}
			remaining -= inc
		}
	}
	// ...except a few anomalies that build up slowly on ONE node each —
	// invisible locally among thousands of increments.
	anomalies := map[string]float64{
		"segment-042": +5200, // viral segment
		"segment-137": -4100, // quick-back storm
		"segment-555": +3300,
	}
	for k, total := range anomalies {
		per := total / 80
		for i := 0; i < 80; i++ {
			if err := east.Observe(k, per); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("west ingested %d observations, east %d — each retains only %d floats\n\n",
		west.Updates(), east.Updates(), sk.M())

	// Aggregator: combine standing sketches, answer everything at once.
	global := west.Sketch()
	if err := global.Add(east.Sketch()); err != nil {
		log.Fatal(err)
	}
	rep, err := sk.Aggregate(global, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mode   %10.1f   (true %.1f)\n", rep.Mode(), mode)
	fmt.Printf("sum    %10.1f   (true %.1f)\n", rep.Sum(), mode*800+5200-4100+3300)
	fmt.Printf("mean   %10.2f\n", rep.Mean())
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		v, err := rep.Percentile(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p%-5.3g %10.1f\n", q*100, v)
	}
	fmt.Printf("range  %10.1f\n\n", rep.Range())

	fmt.Println("top-3 segments by recovered score:")
	for i, o := range rep.TopK(3) {
		fmt.Printf("  %d. %-12s %10.1f\n", i+1, o.Key, o.Value)
	}
	fmt.Println("bottom-2 segments:")
	for i, o := range rep.BottomK(2) {
		fmt.Printf("  %d. %-12s %10.1f\n", i+1, o.Key, o.Value)
	}

	det, err := sk.Detect(global, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nk-outlier view (divergence from mode, both directions):")
	for i, o := range det.Outliers {
		fmt.Printf("  %d. %-12s %10.1f (true anomaly %+.0f)\n", i+1, o.Key, o.Value, anomalies[o.Key])
	}
}
