// Streaming: the push-based continuous-detection service end to end.
//
// Two nodes ingest a stream of click events one at a time; each event
// folds into a standing O(M) sketch (no raw data is retained). The
// nodes periodically flush *deltas* — everything observed since the
// last flush — over TCP to a streaming aggregator, which folds them
// exactly once into per-window global sketches. The aggregator then
// answers the k-outlier query, the broader aggregates the paper lists
// (§1: sum, mean, percentiles, top-k), and window-scoped variants
// ("outliers in the last window" vs "outliers today"), all without ever
// seeing a raw event.
//
// Run: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
	"csoutlier/internal/xrand"
)

func main() {
	var keys []string
	for i := 0; i < 800; i++ {
		keys = append(keys, fmt.Sprintf("segment-%03d", i))
	}
	sk, err := csoutlier.NewSketcher(keys, csoutlier.Config{M: 260, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The aggregator daemon side: per-window global sketches, manual
	// rotation for the demo (csstreamd rotates on a wall clock).
	agg, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: 4})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go agg.Serve(ln)

	// Two ingest nodes, connected over real TCP.
	west, err := stream.Dial(ctx, ln.Addr().String(), sk, "west", stream.NodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	east, err := stream.Dial(ctx, ln.Addr().String(), sk, "east", stream.NodeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Window 1 — a day of events: every segment accrues ~ the same score
	// in small increments, split across nodes...
	rng := xrand.New(1)
	const mode = 1200.0
	events := 0
	for _, k := range keys {
		remaining := mode
		for remaining > 0 {
			inc := 40 + 20*rng.Float64()
			if inc > remaining {
				inc = remaining
			}
			n := west
			if rng.Float64() < 0.5 {
				n = east
			}
			if err := n.Observe(k, inc); err != nil {
				log.Fatal(err)
			}
			if events++; events%5000 == 0 {
				// Mid-stream flushes: deltas, not snapshots — each ships
				// only what arrived since the previous flush.
				if err := n.Flush(ctx); err != nil {
					log.Fatal(err)
				}
			}
			remaining -= inc
		}
	}
	// ...except a few anomalies that build up slowly on ONE node each —
	// invisible locally among thousands of increments.
	anomalies := map[string]float64{
		"segment-042": +5200, // viral segment
		"segment-137": -4100, // quick-back storm
		"segment-555": +3300,
	}
	for _, k := range []string{"segment-042", "segment-137", "segment-555"} {
		per := anomalies[k] / 80
		for i := 0; i < 80; i++ {
			if err := east.Observe(k, per); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, n := range []*stream.Node{west, east} {
		if err := n.Flush(ctx); err != nil {
			log.Fatal(err)
		}
	}
	ws, es := west.Stats(), east.Stats()
	fmt.Printf("window 1: west shipped %d deltas, east %d — each only ever holds %d floats\n\n",
		ws.Applied, es.Applied, sk.M())

	// The continuous-detection query, straight off the aggregator. A
	// repeat of the same standing query with no new data is a cache hit:
	// no recovery work at all.
	rep, err := agg.Outliers(0, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("k-outlier view (divergence from mode, both directions):")
	for i, o := range rep.Outliers {
		fmt.Printf("  %d. %-12s %10.1f (true anomaly %+.0f)\n", i+1, o.Key, o.Value, anomalies[o.Key])
	}
	if _, err := agg.Outliers(0, 0, 3); err != nil {
		log.Fatal(err)
	}
	st := agg.Stats()
	fmt.Printf("standing query re-run: %d cache hit / %d miss\n\n", st.CacheHits, st.CacheMisses)

	// The broader aggregation queries, from the same global sketch.
	global, err := agg.RangeSketch(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	arep, err := sk.Aggregate(global, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mode   %10.1f   (true %.1f)\n", arep.Mode(), mode)
	fmt.Printf("sum    %10.1f   (true %.1f)\n", arep.Sum(), mode*800+5200-4100+3300)
	fmt.Printf("mean   %10.2f\n", arep.Mean())
	for _, q := range []float64{0.01, 0.5, 0.99} {
		v, err := arep.Percentile(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p%-5.3g %10.1f\n", q*100, v)
	}

	// Window 2 — rotate, and let a fresh anomaly develop. Nodes learn
	// the new window from their next ack; west syncs explicitly.
	agg.Rotate()
	if err := west.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := west.Observe("segment-700", 95); err != nil {
			log.Fatal(err)
		}
	}
	if err := west.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	fresh, err := agg.Outliers(0, 0, 1) // current window only
	if err != nil {
		log.Fatal(err)
	}
	wide, err := agg.Outliers(0, 1, 3) // both windows
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter rotation: window-2-only top outlier: %s (%.0f)\n",
		fresh.Outliers[0].Key, fresh.Outliers[0].Value)
	fmt.Printf("two-window span still sees history:        %s, %s, %s\n",
		wide.Outliers[0].Key, wide.Outliers[1].Key, wide.Outliers[2].Key)

	// Per-node liveness, as csstreamd would report it.
	fmt.Println("\naggregator's node table:")
	for _, ns := range agg.Nodes() {
		fmt.Printf("  %-5s epoch=%d lag=%d applied=%d\n", ns.Node, ns.Epoch, ns.Lag, ns.Applied)
	}

	// Graceful shutdown: nodes drain, then the aggregator.
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for _, n := range []*stream.Node{west, east} {
		if err := n.Close(cctx); err != nil {
			log.Fatal(err)
		}
	}
	if err := agg.Close(cctx); err != nil {
		log.Fatal(err)
	}
}
