// Bigscale: a 200K-key aggregate with the fast-transform ensemble.
//
// At large key spaces the Gaussian ensemble's recovery cost — O(M·N)
// per iteration — becomes the bottleneck the paper proposes GPUs for
// (§5). The SRHT ensemble replaces that step with one fast Hadamard
// transform, O(N·log N) regardless of M, making laptop-scale detection
// over hundreds of thousands of keys interactive. RecommendM sizes the
// sketch from the Theorem-1 calibration.
//
// Run: go run ./examples/bigscale
package main

import (
	"fmt"
	"log"
	"time"

	"csoutlier"
	"csoutlier/internal/workload"
)

func main() {
	const (
		n    = 200_000
		s    = 200 // expected outlier count
		k    = 10
		mode = 1800.0
	)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("segment-%07d", i)
	}

	m, err := csoutlier.RecommendM(n, s, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N=%d keys, expecting ~%d outliers → RecommendM says M=%d (%.2f%% of transmit-all)\n",
		n, s, m, 100*float64(m)/float64(n))

	start := time.Now()
	sk, err := csoutlier.NewSketcher(keys, csoutlier.Config{
		M:    m,
		Seed: 77,
		// Recover the whole outlier population, not just the paper's
		// R = f(k) head: with SRHT's cheap correlations a full-depth
		// recovery stays interactive even at this scale.
		MaxIterations: s + 50,
		Ensemble:      csoutlier.SRHT,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SRHT sketcher ready in %v\n", time.Since(start).Round(time.Millisecond))

	// A global aggregate with planted outliers, split over 6 nodes.
	global, _ := workload.MajorityDominated(n, s, mode, mode, 50*mode, 3)
	slices := workload.SplitZeroSumNoise(global, 6, 2*mode, 4)

	start = time.Now()
	acc := sk.ZeroSketch()
	for _, sl := range slices {
		y, err := sk.SketchVector(sl)
		if err != nil {
			log.Fatal(err)
		}
		if err := acc.Add(y); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("sketched 6 nodes × %d keys in %v (each ships %d bytes)\n",
		n, time.Since(start).Round(time.Millisecond), 8*m)

	start = time.Now()
	rep, err := sk.Detect(acc, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered mode %.1f and top-%d outliers in %v:\n",
		rep.Mode, k, time.Since(start).Round(time.Millisecond))

	truth := map[string]float64{}
	for i, v := range global {
		if v != mode {
			truth[keys[i]] = v
		}
	}
	hits := 0
	for i, o := range rep.Outliers {
		mark := " "
		if _, ok := truth[o.Key]; ok {
			mark = "*"
			hits++
		}
		fmt.Printf("  %2d.%s %-18s %12.1f\n", i+1, mark, o.Key, o.Value)
	}
	fmt.Printf("(%d/%d are true planted outliers)\n", hits, k)
}
