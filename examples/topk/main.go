// Topk: distributed top-k as a special case of outlier detection.
//
// The paper's §6.2 observes that when the data's mode is 0, the
// k-outlier machinery answers classic distributed top-k queries — and
// unlike the Threshold Algorithm (TA) or TPUT, it keeps working when
// partial values can be negative, where those algorithms' partial-sum
// lower bound breaks (§7.1).
//
// This example runs all three on non-negative data (everyone agrees),
// then flips one node's slice to contain negative shares and shows that
// TA/TPUT bail out while the CS pipeline still answers correctly.
//
// Run: go run ./examples/topk
package main

import (
	"context"
	"fmt"
	"log"

	"csoutlier/internal/baseline"
	"csoutlier/internal/cluster"
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

const (
	n     = 2000
	k     = 5
	nodes = 4
)

func main() {
	// Non-negative workload: a heavy-tailed aggregate, split across
	// nodes with non-negative shares.
	r := xrand.New(3)
	global := workload.PowerLaw(n, 1.2, 42)
	slices := make([]linalg.Vector, nodes)
	for j := range slices {
		slices[j] = make(linalg.Vector, n)
	}
	for i, v := range global {
		w := make([]float64, nodes)
		sum := 0.0
		for j := range w {
			w[j] = r.Float64()
			sum += w[j]
		}
		for j := range w {
			slices[j][i] = v * w[j] / sum
		}
	}
	api := wrap(slices)

	fmt.Println("=== non-negative data: everyone agrees ===")
	ctx := context.Background()
	ta, err := baseline.TA(ctx, api, k)
	if err != nil {
		log.Fatal(err)
	}
	tput, err := baseline.TPUT(ctx, api, k)
	if err != nil {
		log.Fatal(err)
	}
	cs := csTopK(api, k)
	fmt.Printf("TA:    %v   (%d bytes, depth %d)\n", keysOf(ta.TopK), ta.Stats.Bytes, ta.RoundsOfDepth)
	fmt.Printf("TPUT:  %v   (%d bytes, 3 rounds)\n", keysOf(tput.TopK), tput.Stats.Bytes)
	fmt.Printf("CS:    %v   (%d bytes, 1 round)\n", keysOf(cs.kvs), cs.bytes)

	// Now make the data signed: one node logs negative (Quick-Back)
	// scores. The aggregate is unchanged in spirit — some keys are now
	// reached by cancelling contributions — but TA/TPUT's premise dies.
	fmt.Println("\n=== signed data: partial sums no longer lower-bound totals ===")
	signed := workload.SplitZeroSumNoise(global, nodes, 5, 77)
	apiSigned := wrap(signed)
	if _, err := baseline.TA(ctx, apiSigned, k); err != nil {
		fmt.Printf("TA:    refused: %v\n", err)
	}
	if _, err := baseline.TPUT(ctx, apiSigned, k); err != nil {
		fmt.Printf("TPUT:  refused: %v\n", err)
	}
	cs2 := csTopK(apiSigned, k)
	fmt.Printf("CS:    %v   (%d bytes, 1 round)\n", keysOf(cs2.kvs), cs2.bytes)

	truth := outlier.TopK(global, 0, k)
	fmt.Printf("\nexact top-%d: %v\n", k, keysOf(truth))
	fmt.Printf("CS error on key: non-negative %.2f, signed %.2f\n",
		outlier.ErrorOnKey(truth, cs.kvs), outlier.ErrorOnKey(truth, cs2.kvs))
}

type csResult struct {
	kvs   []outlier.KV
	bytes int64
}

// csTopK answers top-k (mode 0) through the sketch pipeline: k-outliers
// around the recovered mode, which the power-law data keeps near the
// density bulk, so the extreme tail surfaces first.
func csTopK(api []cluster.NodeAPI, k int) csResult {
	p := sensing.Params{M: 250, N: n, Seed: 9}
	res, err := cluster.Detect(api, p, k, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return csResult{kvs: res.Outliers, bytes: res.Stats.Bytes}
}

func wrap(slices []linalg.Vector) []cluster.NodeAPI {
	api := make([]cluster.NodeAPI, len(slices))
	for i, s := range slices {
		api[i] = cluster.NewLocalNode(fmt.Sprintf("n%d", i), s)
	}
	return api
}

func keysOf(kvs []outlier.KV) []int {
	out := make([]int, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.Index
	}
	return out
}
