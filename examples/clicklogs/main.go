// Clicklogs: the paper's motivating scenario end to end.
//
// A web-search service logs per-query click scores (Success Click = +,
// Quick-Back Click = −) in eight geo-distributed data centers. Quality
// analysts ask: across all markets and verticals, which (date, market,
// vertical, URL) segments have aggregate scores that diverge most from
// the norm? Locally, every data center's numbers are dominated by
// regional noise; only the global sum exposes the outliers.
//
// This example generates a production-like workload (internal/workload
// plants the paper's measured sparsity), answers the query with the
// public API at ~3% of the transmit-all communication cost, then
// demonstrates the two operational properties from the paper's
// introduction: incremental updates when new logs arrive, and removing
// a data center from the aggregation — both O(M) sketch arithmetic.
//
// Run: go run ./examples/clicklogs
package main

import (
	"fmt"
	"log"

	"csoutlier"
	"csoutlier/internal/workload"
)

func main() {
	cl := workload.GenerateClickLogs(workload.ClickLogConfig{
		Query:       workload.CoreSearchClicks,
		DataCenters: 8,
		ScaleN:      0.2, // 20% of the production key space, for a quick run
		Seed:        7,
	})
	n := len(cl.Keys)
	const k = 10
	m := n / 12 // ~8% compression ratio (k=10 over s≈60 outliers needs a bit more than the paper's k=5 sweet spot)
	fmt.Printf("workload: %s query, %d keys, %d data centers, planted sparsity s=%d\n",
		cl.Config.Query, n, len(cl.Slices), cl.S)

	sk, err := csoutlier.NewSketcher(cl.Keys, csoutlier.Config{M: m, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	// Each data center sketches its local slice.
	perDC := make([]csoutlier.Sketch, len(cl.Slices))
	global := sk.ZeroSketch()
	for dc := range cl.Slices {
		y, err := sk.SketchPairs(cl.PairsForNode(dc))
		if err != nil {
			log.Fatal(err)
		}
		perDC[dc] = y
		if err := global.Add(y); err != nil {
			log.Fatal(err)
		}
	}
	rawBytes := 8 * n * len(cl.Slices)
	csBytes := 8 * m * len(cl.Slices)
	fmt.Printf("communication: %d bytes vs %d raw (%.1f%% — an IO reduction of %.1f%%)\n\n",
		csBytes, rawBytes, 100*float64(csBytes)/float64(rawBytes),
		100*(1-float64(csBytes)/float64(rawBytes)))

	rep, err := sk.Detect(global, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered mode %.0f (planted %.0f); top-%d outlier segments:\n", rep.Mode, cl.Mode, k)
	hits := 0
	truthSet := map[string]bool{}
	for _, kv := range cl.TrueTopOutliers(k) {
		truthSet[cl.Keys[kv.Index]] = true
	}
	for i, o := range rep.Outliers {
		mark := " "
		if truthSet[o.Key] {
			mark = "*"
			hits++
		}
		fmt.Printf("  %2d.%s %-40s score %10.1f\n", i+1, mark, o.Key, o.Value)
	}
	fmt.Printf("(%d/%d agree with the exact top-%d; * = in ground truth)\n\n", hits, k, k)

	// --- Incremental update: a burst of new Quick-Back clicks arrives
	// at data center 3 for one segment. Only the delta is re-sketched.
	burstKey := rep.Outliers[0].Key
	delta := map[string]float64{burstKey: -50000}
	dy, err := sk.SketchPairs(delta)
	if err != nil {
		log.Fatal(err)
	}
	if err := global.Add(dy); err != nil {
		log.Fatal(err)
	}
	rep2, err := sk.Detect(global, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a -50000 click burst on %q (O(M) sketch update):\n", burstKey)
	fmt.Printf("  new #1 outlier: %s = %.1f\n\n", rep2.Outliers[0].Key, rep2.Outliers[0].Value)

	// --- Data-center removal: drop DC 7 from the analysis by
	// subtracting its standing sketch. No recomputation anywhere.
	if err := global.Sub(dy); err != nil { // first undo the burst
		log.Fatal(err)
	}
	if err := global.Sub(perDC[7]); err != nil {
		log.Fatal(err)
	}
	rep3, err := sk.Detect(global, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after removing data center 7 from the aggregation (O(M) subtract):\n")
	for i, o := range rep3.Outliers {
		fmt.Printf("  %d. %-40s score %10.1f\n", i+1, o.Key, o.Value)
	}
}
