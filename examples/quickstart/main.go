// Quickstart: detect global outliers from compressed sketches.
//
// Three nodes each hold a slice of a key→score aggregate. Locally, every
// slice looks unremarkable; globally, five keys diverge wildly from the
// mode. Each node ships only an M-length sketch (here 2.4 KB instead of
// 8 KB of raw values), and the aggregator recovers the mode and the
// outliers from the summed sketches.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"csoutlier"
)

func main() {
	// The global key dictionary: every participant agrees on this list
	// (and on M and the seed) before the run.
	var keys []string
	for i := 0; i < 1000; i++ {
		keys = append(keys, fmt.Sprintf("query-segment-%04d", i))
	}
	sk, err := csoutlier.NewSketcher(keys, csoutlier.Config{M: 300, Seed: 2015})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key space N=%d, sketch length M=%d (%.1f%% of transmit-all)\n\n",
		sk.N(), sk.M(), 100*sk.CompressionRatio())

	// The hidden global truth: mode 1800, five planted outliers.
	const mode = 1800.0
	truth := map[string]float64{}
	for _, k := range keys {
		truth[k] = mode
	}
	truth["query-segment-0042"] = 9000
	truth["query-segment-0137"] = -4500
	truth["query-segment-0500"] = 5200
	truth["query-segment-0777"] = -100
	truth["query-segment-0900"] = 4000

	// Scatter the truth across three nodes with node-local clutter that
	// cancels in the sum — locally nothing stands out.
	nodes := make([]map[string]float64, 3)
	for i := range nodes {
		nodes[i] = map[string]float64{}
	}
	for i, k := range keys {
		v := truth[k]
		clutter := float64((i*7919)%1000) - 500
		nodes[0][k] = v/3 + clutter
		nodes[1][k] = v/3 - 2*clutter
		nodes[2][k] = v - nodes[0][k] - nodes[1][k]
	}

	// Node side: sketch and "ship".
	global := sk.ZeroSketch()
	for i, pairs := range nodes {
		y, err := sk.SketchPairs(pairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %d ships %d measurements (%d bytes)\n", i, len(y.Y), 8*len(y.Y))
		if err := global.Add(y); err != nil {
			log.Fatal(err)
		}
	}

	// Aggregator side: recover mode + outliers from the summed sketch.
	rep, err := sk.Detect(global, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered mode: %.1f (true: %.1f)\n", rep.Mode, mode)
	fmt.Println("detected outliers (furthest from mode first):")
	for i, o := range rep.Outliers {
		fmt.Printf("  %d. %-22s value %8.1f   (true %8.1f)\n", i+1, o.Key, o.Value, truth[o.Key])
	}

	// Sanity: the exact answer on the uncompressed global aggregate.
	exact, exactMode := csoutlier.ExactOutliers(truth, 5)
	fmt.Printf("\nexact ground truth (mode %.1f):\n", exactMode)
	for i, o := range exact {
		fmt.Printf("  %d. %-22s value %8.1f\n", i+1, o.Key, o.Value)
	}
}
