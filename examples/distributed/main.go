// Distributed: the real networked deployment, in one process.
//
// This example starts four data-node servers on loopback TCP — each the
// same server that cmd/csnode runs — then plays the aggregator
// (cmd/csagg's role): it dials the nodes, collects sketches in a single
// round, and recovers the global outliers and mode with BOMP. It also
// runs the transmit-ALL and K+δ baselines over the same connections and
// prints the communication-cost comparison from the paper's §6.1.2.
//
// Run: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"csoutlier/internal/baseline"
	"csoutlier/internal/cluster"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

func main() {
	const (
		n     = 4000
		s     = 40
		nodes = 4
		k     = 8
		mode  = 1800.0
	)
	global, _ := workload.MajorityDominated(n, s, mode, 300, 9000, 11)
	slices := workload.SplitZeroSumNoise(global, nodes, 3*mode, 12)

	// Start one TCP server per data node (csnode's role).
	remotes := make([]cluster.NodeAPI, nodes)
	for i, sl := range slices {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		node := cluster.NewLocalNode(fmt.Sprintf("dc-%d", i), sl)
		go cluster.Serve(ln, node)
		rn, err := cluster.Dial(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer rn.Close()
		remotes[i] = rn
		fmt.Printf("node %q serving at %s\n", rn.ID(), ln.Addr())
	}

	// Aggregator: one-round CS detection over the wire.
	p := sensing.Params{M: 240, N: n, Seed: 2015}
	res, err := cluster.Detect(remotes, p, k, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCS (BOMP):   mode %.1f, %d bytes, %d round\n",
		res.Mode, res.Stats.Bytes, res.Stats.Rounds)

	// Failure as the normal case: the same collection with a dead data
	// center in the mix. The retrying quorum collector drops it, the
	// partial sum is exactly the aggregate over the survivors, and the
	// per-node stats say who cost what.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	withDead := append(append([]cluster.NodeAPI{}, remotes...), cluster.NewFaultyNode("dc-dead"))
	part, err := cluster.CollectSketchesCtx(ctx, withDead, p, cluster.CollectOptions{
		MinNodes:    nodes,
		MaxAttempts: 2,
		NodeTimeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault-tolerant collection: %d/%d nodes in the aggregate (%d attempts, %d retries, %d timeouts)\n",
		len(part.Included), len(withDead), part.Stats.Attempts, part.Stats.Retries, part.Stats.Timeouts)
	for id, ferr := range part.Failed {
		fmt.Printf("  excluded %-8s %v\n", id, ferr)
	}
	for _, id := range part.Included {
		ns := part.Nodes[id]
		fmt.Printf("  included %-8s rtt %8v  attempts %d\n", id, ns.RTT.Round(time.Microsecond), ns.Attempts)
	}
	pres, err := cluster.DetectSketch(part.Sketch, p, k, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  quorum aggregate recovers the same mode: %.1f\n", pres.Mode)

	// Baselines over the same connections.
	all, err := baseline.All(ctx, remotes, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nALL:         mode %.1f, %d bytes, %d round (exact)\n",
		all.Mode, all.Stats.Bytes, all.Stats.Rounds)

	kd, err := baseline.KDelta(ctx, remotes, baseline.KDeltaForBudget(res.Stats.Bytes, nodes, k, n, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K+delta:     mode %.1f, %d bytes, %d rounds\n",
		kd.Mode, kd.Stats.Bytes, kd.Stats.Rounds)

	truth := all.Outliers
	fmt.Printf("\naccuracy vs exact (k=%d):\n", k)
	fmt.Printf("  CS (BOMP):  EK=%.2f EV=%.3f at %.1f%% of ALL's cost\n",
		outlier.ErrorOnKey(truth, res.Outliers), outlier.ErrorOnValue(truth, res.Outliers),
		100*float64(res.Stats.Bytes)/float64(all.Stats.Bytes))
	fmt.Printf("  K+delta:    EK=%.2f EV=%.3f at %.1f%% of ALL's cost\n",
		outlier.ErrorOnKey(truth, kd.Outliers), outlier.ErrorOnValue(truth, kd.Outliers),
		100*float64(kd.Stats.Bytes)/float64(all.Stats.Bytes))

	fmt.Println("\ntop outliers via CS:")
	for i, o := range res.Outliers {
		fmt.Printf("  %d. key#%04d  value %9.1f (divergence %+9.1f)\n",
			i+1, o.Index, o.Value, o.Value-res.Mode)
	}
}
