// Distributed: the real networked deployment, in one process.
//
// This example starts four data-node servers on loopback TCP — each the
// same server that cmd/csnode runs — then plays the aggregator
// (cmd/csagg's role): it dials the nodes, collects sketches in a single
// round, and recovers the global outliers and mode with BOMP. It also
// runs the transmit-ALL and K+δ baselines over the same connections and
// prints the communication-cost comparison from the paper's §6.1.2.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"

	"csoutlier/internal/baseline"
	"csoutlier/internal/cluster"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

func main() {
	const (
		n     = 4000
		s     = 40
		nodes = 4
		k     = 8
		mode  = 1800.0
	)
	global, _ := workload.MajorityDominated(n, s, mode, 300, 9000, 11)
	slices := workload.SplitZeroSumNoise(global, nodes, 3*mode, 12)

	// Start one TCP server per data node (csnode's role).
	remotes := make([]cluster.NodeAPI, nodes)
	for i, sl := range slices {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		node := cluster.NewLocalNode(fmt.Sprintf("dc-%d", i), sl)
		go cluster.Serve(ln, node)
		rn, err := cluster.Dial(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer rn.Close()
		remotes[i] = rn
		fmt.Printf("node %q serving at %s\n", rn.ID(), ln.Addr())
	}

	// Aggregator: one-round CS detection over the wire.
	p := sensing.Params{M: 240, N: n, Seed: 2015}
	res, err := cluster.Detect(remotes, p, k, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCS (BOMP):   mode %.1f, %d bytes, %d round\n",
		res.Mode, res.Stats.Bytes, res.Stats.Rounds)

	// Baselines over the same connections.
	all, err := baseline.All(remotes, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALL:         mode %.1f, %d bytes, %d round (exact)\n",
		all.Mode, all.Stats.Bytes, all.Stats.Rounds)

	kd, err := baseline.KDelta(remotes, baseline.KDeltaForBudget(res.Stats.Bytes, nodes, k, n, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K+delta:     mode %.1f, %d bytes, %d rounds\n",
		kd.Mode, kd.Stats.Bytes, kd.Stats.Rounds)

	truth := all.Outliers
	fmt.Printf("\naccuracy vs exact (k=%d):\n", k)
	fmt.Printf("  CS (BOMP):  EK=%.2f EV=%.3f at %.1f%% of ALL's cost\n",
		outlier.ErrorOnKey(truth, res.Outliers), outlier.ErrorOnValue(truth, res.Outliers),
		100*float64(res.Stats.Bytes)/float64(all.Stats.Bytes))
	fmt.Printf("  K+delta:    EK=%.2f EV=%.3f at %.1f%% of ALL's cost\n",
		outlier.ErrorOnKey(truth, kd.Outliers), outlier.ErrorOnValue(truth, kd.Outliers),
		100*float64(kd.Stats.Bytes)/float64(all.Stats.Bytes))

	fmt.Println("\ntop outliers via CS:")
	for i, o := range res.Outliers {
		fmt.Printf("  %d. key#%04d  value %9.1f (divergence %+9.1f)\n",
			i+1, o.Index, o.Value, o.Value-res.Mode)
	}
}
