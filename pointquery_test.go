package csoutlier

import (
	"errors"
	"math"
	"testing"
)

// countSketchFixture builds a CountSketch sketcher with planted
// outliers and returns the sketcher, the keys, the aggregated sketch,
// and the planted index→value map.
func countSketchFixture(t testing.TB, n, m, depth int, mode float64, planted map[int]float64) (*Sketcher, []string, Sketch) {
	t.Helper()
	keys := testKeys(n)
	sk, err := NewSketcher(keys, Config{M: m, Seed: 51, Ensemble: CountSketch, Depth: depth})
	if err != nil {
		t.Fatal(err)
	}
	pairs := biasedPairs(keys, mode, planted)
	y, err := sk.SketchPairs(pairs)
	if err != nil {
		t.Fatal(err)
	}
	return sk, keys, y
}

func TestCountSketchEnsembleDetects(t *testing.T) {
	// Hybrid mode's span path: BOMP recovery runs on the count-sketch
	// exactly as on the other ensembles.
	const mode = 1800.0
	planted := map[int]float64{17: 9000, 99: -7000, 300: 5000}
	sk, keys, y := countSketchFixture(t, 400, 200, 5, mode, planted)
	rep, err := sk.Detect(y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Mode-mode) > 0.02*mode {
		t.Fatalf("count-sketch ensemble mode = %v", rep.Mode)
	}
	want := map[string]bool{keys[17]: true, keys[99]: true, keys[300]: true}
	for _, o := range rep.Outliers {
		if !want[o.Key] {
			t.Fatalf("count-sketch ensemble detected wrong key %q", o.Key)
		}
	}
}

func TestPointStateEndToEnd(t *testing.T) {
	const mode = 1800.0
	planted := map[int]float64{17: 9000, 99: -7000, 300: 5000}
	sk, keys, y := countSketchFixture(t, 400, 210, 7, mode, planted)
	ps, err := sk.NewPointState()
	if err != nil {
		t.Fatal(err)
	}
	// Querying before Commit is a (static, allocation-free) error.
	if _, err := ps.Query(keys[17], 1); err == nil {
		t.Fatal("uncommitted PointState answered a query")
	}
	copy(ps.Sketch().Y, y.Y)
	ps.Commit()
	if math.Abs(ps.Mode()-mode) > 1e-6*mode {
		t.Fatalf("committed mode = %v, want %v", ps.Mode(), mode)
	}
	const threshold = 1000.0
	for idx, val := range planted {
		ans, err := ps.Query(keys[idx], threshold)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Outlier {
			t.Fatalf("planted outlier %d not flagged: %+v", idx, ans)
		}
		want := mode + val
		if math.Abs(ans.Value-want) > 1e-6*math.Abs(val) {
			t.Fatalf("outlier %d value = %v, want %v", idx, ans.Value, want)
		}
		if ans.Deviation != ans.Value-ans.Mode {
			t.Fatalf("deviation inconsistent: %+v", ans)
		}
	}
	// Clean keys: estimate = mode, not an outlier.
	for _, idx := range []int{0, 41, 123, 256, 399} {
		if _, hot := planted[idx]; hot {
			continue
		}
		ans, err := ps.Query(keys[idx], threshold)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Outlier || math.Abs(ans.Value-mode) > 1e-6*mode {
			t.Fatalf("clean key %d misclassified: %+v", idx, ans)
		}
	}
	// Threshold ≤ 0 estimates without classifying.
	ans, err := ps.Query(keys[17], 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Outlier {
		t.Fatalf("threshold 0 classified: %+v", ans)
	}
	if _, err := ps.Query("no-such-key", 1); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ps.QueryIndex(400, 1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestPointStateRequiresCountSketch(t *testing.T) {
	keys := testKeys(50)
	for _, cfg := range []Config{
		{M: 20, Seed: 1},
		{M: 20, Seed: 1, Ensemble: SparseRademacher},
		{M: 20, Seed: 1, Ensemble: SRHT},
	} {
		sk, err := NewSketcher(keys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sk.SupportsPointQuery() {
			t.Fatalf("ensemble %d claims point-query support", cfg.Ensemble)
		}
		if _, err := sk.NewPointState(); !errors.Is(err, ErrNoPointQuery) {
			t.Fatalf("ensemble %d: NewPointState err = %v, want ErrNoPointQuery", cfg.Ensemble, err)
		}
	}
	sk, err := NewSketcher(keys, Config{M: 20, Seed: 1, Ensemble: CountSketch})
	if err != nil {
		t.Fatal(err)
	}
	if !sk.SupportsPointQuery() {
		t.Fatal("count-sketch sketcher denies point-query support")
	}
}

func TestPointQueryAllocs(t *testing.T) {
	planted := map[int]float64{17: 9000, 99: -7000}
	sk, keys, y := countSketchFixture(t, 400, 200, 5, 500, planted)
	ps, err := sk.NewPointState()
	if err != nil {
		t.Fatal(err)
	}
	copy(ps.Sketch().Y, y.Y)
	if n := testing.AllocsPerRun(100, ps.Commit); n != 0 {
		t.Fatalf("Commit allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := ps.Query(keys[17], 1000); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Query allocates %v per run", n)
	}
}

func TestCountSketchDepthPartOfIdentity(t *testing.T) {
	keys := testKeys(100)
	a, err := NewSketcher(keys, Config{M: 40, Seed: 1, Ensemble: CountSketch, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSketcher(keys, Config{M: 40, Seed: 1, Ensemble: CountSketch, Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	ya, _ := a.SketchPairs(nil)
	yb, _ := b.SketchPairs(nil)
	if err := ya.Add(yb); err == nil {
		t.Fatal("cross-depth Add accepted")
	}
	// And through the codec: depth travels in the density field.
	data, err := yb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.UnmarshalSketch(data); err == nil {
		t.Fatal("cross-depth unmarshal accepted")
	}
	if _, err := b.UnmarshalSketch(data); err != nil {
		t.Fatalf("same-depth unmarshal failed: %v", err)
	}
}

func TestCountSketchConfigValidation(t *testing.T) {
	keys := testKeys(100)
	if _, err := NewSketcher(keys, Config{M: 40, Ensemble: CountSketch, Depth: 65}); err == nil {
		t.Fatal("depth 65 accepted")
	}
	if _, err := NewSketcher(keys, Config{M: 6, Ensemble: CountSketch, Depth: 5}); err == nil {
		t.Fatal("single-bucket rows accepted")
	}
	sk, err := NewSketcher(keys, Config{M: 40, Ensemble: CountSketch})
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.sketchID().d; got != 5 {
		t.Fatalf("default depth = %d, want 5", got)
	}
}

func TestCountSketchUpdaterAndWindowsMatchBatch(t *testing.T) {
	// The streaming surfaces on the new backend: Updater observations
	// and WindowStore folds must equal the batch sketch bit-for-bit
	// modulo float addition order (1e-12 here).
	keys := testKeys(60)
	sk, err := NewSketcher(keys, Config{M: 30, Seed: 5, Ensemble: CountSketch, Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	u := sk.NewUpdater()
	if err := u.Observe(keys[7], 3); err != nil {
		t.Fatal(err)
	}
	if err := u.Observe(keys[30], -1); err != nil {
		t.Fatal(err)
	}
	want, err := sk.SketchPairs(map[string]float64{keys[7]: 3, keys[30]: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := u.Sketch()
	for i := range want.Y {
		if math.Abs(got.Y[i]-want.Y[i]) > 1e-12 {
			t.Fatal("count-sketch streamed sketch differs from batch")
		}
	}
	ws, err := sk.NewWindowStore(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.AddSketch(0, got); err != nil {
		t.Fatal(err)
	}
	win, err := ws.Window(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Y {
		if math.Abs(win.Y[i]-want.Y[i]) > 1e-12 {
			t.Fatal("count-sketch window fold differs from batch")
		}
	}
}
