package csoutlier

import (
	"fmt"
	"sync"

	"csoutlier/internal/linalg"
)

// WindowStore maintains a ring of per-time-window standing sketches —
// a miniature of the Impression Store design the paper's authors built
// on the same compressive-sensing substrate (HotCloud'14, the paper's
// reference [41]). Observations land in the current window; Rotate
// seals it and opens a fresh one; any contiguous span of recent windows
// can be queried by summing their sketches (linearity again), so
// "outliers over the last hour" and "outliers today" come from the same
// O(windows·M) state with no raw data retained.
//
// A WindowStore is safe for concurrent use; like Updater, the O(M)
// column generation of each observation runs outside the mutex.
type WindowStore struct {
	sk *Sketcher

	mu      sync.Mutex
	ring    []linalg.Vector // ring[i] = sketch of window i
	head    int             // index of the current window
	filled  int             // number of windows that have ever been open
	rotated int64
}

// NewWindowStore returns a store holding the current window plus
// history for windows−1 sealed ones. windows must be ≥ 1.
func (s *Sketcher) NewWindowStore(windows int) (*WindowStore, error) {
	if windows < 1 {
		return nil, fmt.Errorf("csoutlier: WindowStore needs at least one window, got %d", windows)
	}
	w := &WindowStore{
		sk:   s,
		ring: make([]linalg.Vector, windows),
	}
	for i := range w.ring {
		w.ring[i] = make(linalg.Vector, s.params.M)
	}
	w.filled = 1
	return w, nil
}

// Windows returns the ring capacity.
func (w *WindowStore) Windows() int { return len(w.ring) }

// Rotations returns how many times Rotate has been called.
func (w *WindowStore) Rotations() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotated
}

// Observe folds one observation into the current window in O(M).
func (w *WindowStore) Observe(key string, delta float64) error {
	idx, ok := w.sk.dict.Index(key)
	if !ok {
		return fmt.Errorf("csoutlier: key %q not in global dictionary", key)
	}
	if delta == 0 {
		return nil
	}
	col := w.sk.getCol()
	*col = w.sk.matrix.Col(idx, *col) // O(M) PRNG work, outside the mutex
	w.mu.Lock()
	w.ring[w.head].AddScaled(delta, *col)
	w.mu.Unlock()
	w.sk.putCol(col)
	return nil
}

// ObserveBatch folds a batch into the current window; all-or-nothing on
// unknown keys.
func (w *WindowStore) ObserveBatch(pairs map[string]float64) error {
	idx := make([]int, 0, len(pairs))
	vals := make([]float64, 0, len(pairs))
	for k, v := range pairs {
		i, ok := w.sk.dict.Index(k)
		if !ok {
			return fmt.Errorf("csoutlier: key %q not in global dictionary", k)
		}
		if v == 0 {
			continue
		}
		idx = append(idx, i)
		vals = append(vals, v)
	}
	col := w.sk.getCol()
	*col = w.sk.matrix.MeasureSparse(idx, vals, *col)
	w.mu.Lock()
	w.ring[w.head].Add(*col)
	w.mu.Unlock()
	w.sk.putCol(col)
	return nil
}

// AddSketch folds an already-measured sketch (e.g. a delta shipped by a
// remote streaming node) into the window `age` rotations ago. Sketch
// linearity makes this exactly equivalent to having observed the
// underlying data in that window — it is how the streaming aggregator
// (internal/stream) lands window-tagged deltas that arrive late or out
// of order, with no coordination round.
func (w *WindowStore) AddSketch(age int, o Sketch) error {
	if err := o.compatible(w.sk.sketchID()); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkAge(age); err != nil {
		return err
	}
	w.ring[w.slot(age)].Add(linalg.Vector(o.Y))
	return nil
}

// RestoreWindows replaces the store's contents with the given sketches,
// oldest first (the last element becomes the open window) — the restore
// half of a snapshot/restore cycle. The copy is Float64bits-exact: a
// store restored from the sketches Window() returned is bit-identical
// to the original, including the relative ring layout, so subsequent
// Rotate/AddSketch sequences evolve it exactly as they would have the
// original. rotations is the original store's lifetime Rotate count, so
// Rotations() stays monotonic across the cycle rather than restarting
// relative to the restored ring; a ring carrying len(sketches)-1 sealed
// windows has rotated at least that often, so rotations must be ≥
// len(sketches)-1, and len(sketches) must be in [1, Windows()].
func (w *WindowStore) RestoreWindows(sketches []Sketch, rotations int64) error {
	if len(sketches) < 1 || len(sketches) > len(w.ring) {
		return fmt.Errorf("csoutlier: restore of %d windows into a %d-window store", len(sketches), len(w.ring))
	}
	if rotations < int64(len(sketches)-1) {
		return fmt.Errorf("csoutlier: restore of %d windows implies ≥ %d rotations, got %d", len(sketches), len(sketches)-1, rotations)
	}
	for _, s := range sketches {
		if err := s.compatible(w.sk.sketchID()); err != nil {
			return err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// With head = len-1, slot(age) = len-1-age: sketches[j] (age len-1-j,
	// oldest first) lands in ring[j].
	w.head = len(sketches) - 1
	w.filled = len(sketches)
	w.rotated = rotations
	for i := range w.ring {
		if i < len(sketches) {
			copy(w.ring[i], sketches[i].Y)
		} else {
			for j := range w.ring[i] {
				w.ring[i][j] = 0
			}
		}
	}
	return nil
}

// Rotate seals the current window and opens a fresh one, evicting the
// oldest when the ring is full.
func (w *WindowStore) Rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.head = (w.head + 1) % len(w.ring)
	for i := range w.ring[w.head] {
		w.ring[w.head][i] = 0 // evict / reset
	}
	if w.filled < len(w.ring) {
		w.filled++
	}
	w.rotated++
}

// Available returns how many windows currently hold data (including the
// open one).
func (w *WindowStore) Available() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.filled
}

// Window returns a copy of the sketch of the window `age` rotations ago
// (0 = the currently open window).
func (w *WindowStore) Window(age int) (Sketch, error) {
	out := w.sk.emptySketch()
	if err := w.WindowInto(age, out); err != nil {
		return Sketch{}, err
	}
	return out, nil
}

// WindowInto is Window into a caller-provided sketch (zero allocation).
func (w *WindowStore) WindowInto(age int, dst Sketch) error {
	if err := dst.compatible(w.sk.sketchID()); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkAge(age); err != nil {
		return err
	}
	copy(dst.Y, w.ring[w.slot(age)])
	return nil
}

// Range returns the summed sketch over window ages [fromAge, toAge]
// inclusive, fromAge ≤ toAge; e.g. Range(0, 5) = the last six windows.
// The sum of window sketches is exactly the sketch of the concatenated
// data — no accuracy is lost by querying wider spans.
func (w *WindowStore) Range(fromAge, toAge int) (Sketch, error) {
	out := w.sk.emptySketch()
	if err := w.RangeInto(fromAge, toAge, out); err != nil {
		return Sketch{}, err
	}
	return out, nil
}

// RangeInto is Range into a caller-provided sketch, so a standing query
// re-run on every refresh (the streaming aggregator's hot path) pays no
// allocation. dst is overwritten, not accumulated into.
func (w *WindowStore) RangeInto(fromAge, toAge int, dst Sketch) error {
	if err := dst.compatible(w.sk.sketchID()); err != nil {
		return err
	}
	if fromAge > toAge {
		return fmt.Errorf("csoutlier: window range [%d, %d] inverted", fromAge, toAge)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkAge(fromAge); err != nil {
		return err
	}
	if err := w.checkAge(toAge); err != nil {
		return err
	}
	for i := range dst.Y {
		dst.Y[i] = 0
	}
	for age := fromAge; age <= toAge; age++ {
		linalg.Vector(dst.Y).Add(w.ring[w.slot(age)])
	}
	return nil
}

func (w *WindowStore) checkAge(age int) error {
	if age < 0 || age >= w.filled {
		return fmt.Errorf("csoutlier: window age %d outside [0, %d)", age, w.filled)
	}
	return nil
}

func (w *WindowStore) slot(age int) int {
	return ((w.head-age)%len(w.ring) + len(w.ring)) % len(w.ring)
}
