package csoutlier

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSketchMarshalRoundTrip(t *testing.T) {
	keys := testKeys(100)
	sk, err := NewSketcher(keys, Config{M: 40, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	y, err := sk.SketchPairs(map[string]float64{keys[3]: 5, keys[50]: -math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	data, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := sk.UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y.Y {
		if y.Y[i] != back.Y[i] {
			t.Fatalf("payload differs at %d", i)
		}
	}
	// The decoded sketch must be fully usable.
	if err := back.Add(y); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Detect(back, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSketchUnmarshalRejectsCorruption(t *testing.T) {
	keys := testKeys(50)
	sk, _ := NewSketcher(keys, Config{M: 16, Seed: 1})
	y, _ := sk.SketchPairs(map[string]float64{keys[0]: 1})
	data, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: checksum must catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[25] ^= 0xff
	if _, err := sk.UnmarshalSketch(corrupt); err == nil {
		t.Fatal("corrupted sketch accepted")
	}
	// Truncation.
	if _, err := sk.UnmarshalSketch(data[:10]); err == nil {
		t.Fatal("truncated sketch accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := sk.UnmarshalSketch(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Length/header mismatch (extend payload, fix checksum is hard — the
	// decoder must reject before checksum anyway on length grounds).
	long := append(append([]byte(nil), data...), 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := sk.UnmarshalSketch(long); err == nil {
		t.Fatal("over-long sketch accepted")
	}
}

func TestSketchUnmarshalRejectsWrongConsensus(t *testing.T) {
	keys := testKeys(50)
	a, _ := NewSketcher(keys, Config{M: 16, Seed: 1})
	b, _ := NewSketcher(keys, Config{M: 16, Seed: 2})
	y, _ := a.SketchPairs(map[string]float64{keys[0]: 1})
	data, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.UnmarshalSketch(data); err == nil {
		t.Fatal("sketch from a different seed accepted")
	}
	// DecodeSketch without a sketcher accepts it, but Add still refuses.
	raw, err := DecodeSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	zb := b.ZeroSketch()
	if err := zb.Add(raw); err == nil {
		t.Fatal("cross-consensus Add accepted after DecodeSketch")
	}
}

func TestMarshalZeroValueSketchFails(t *testing.T) {
	var z Sketch
	if _, err := z.MarshalBinary(); err == nil {
		t.Fatal("zero-value sketch marshaled")
	}
}

// Property: marshal/unmarshal is the identity on payloads, including
// negative zero, infinities and subnormals.
func TestSketchCodecProperty(t *testing.T) {
	keys := testKeys(20)
	sk, _ := NewSketcher(keys, Config{M: 8, Seed: 3})
	check := func(vals [8]float64) bool {
		y := sk.ZeroSketch()
		copy(y.Y, vals[:])
		data, err := y.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := sk.UnmarshalSketch(data)
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Float64bits(back.Y[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
