package csoutlier

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
	"testing/quick"
)

func TestSketchMarshalRoundTrip(t *testing.T) {
	keys := testKeys(100)
	sk, err := NewSketcher(keys, Config{M: 40, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	y, err := sk.SketchPairs(map[string]float64{keys[3]: 5, keys[50]: -math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	data, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := sk.UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y.Y {
		if y.Y[i] != back.Y[i] {
			t.Fatalf("payload differs at %d", i)
		}
	}
	// The decoded sketch must be fully usable.
	if err := back.Add(y); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Detect(back, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSketchUnmarshalRejectsCorruption(t *testing.T) {
	keys := testKeys(50)
	sk, _ := NewSketcher(keys, Config{M: 16, Seed: 1})
	y, _ := sk.SketchPairs(map[string]float64{keys[0]: 1})
	data, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: checksum must catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[25] ^= 0xff
	if _, err := sk.UnmarshalSketch(corrupt); err == nil {
		t.Fatal("corrupted sketch accepted")
	}
	// Truncation.
	if _, err := sk.UnmarshalSketch(data[:10]); err == nil {
		t.Fatal("truncated sketch accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := sk.UnmarshalSketch(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Length/header mismatch (extend payload, fix checksum is hard — the
	// decoder must reject before checksum anyway on length grounds).
	long := append(append([]byte(nil), data...), 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := sk.UnmarshalSketch(long); err == nil {
		t.Fatal("over-long sketch accepted")
	}
}

func TestSketchUnmarshalRejectsWrongConsensus(t *testing.T) {
	keys := testKeys(50)
	a, _ := NewSketcher(keys, Config{M: 16, Seed: 1})
	b, _ := NewSketcher(keys, Config{M: 16, Seed: 2})
	y, _ := a.SketchPairs(map[string]float64{keys[0]: 1})
	data, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.UnmarshalSketch(data); err == nil {
		t.Fatal("sketch from a different seed accepted")
	}
	// DecodeSketch without a sketcher accepts it, but Add still refuses.
	raw, err := DecodeSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	zb := b.ZeroSketch()
	if err := zb.Add(raw); err == nil {
		t.Fatal("cross-consensus Add accepted after DecodeSketch")
	}
}

func TestMarshalZeroValueSketchFails(t *testing.T) {
	var z Sketch
	if _, err := z.MarshalBinary(); err == nil {
		t.Fatal("zero-value sketch marshaled")
	}
}

// craftSketchBytes builds a wire image with arbitrary header dimensions
// and a VALID checksum — the adversarial case corruption alone (caught
// by CRC) cannot reach.
func craftSketchBytes(m, n uint32, payloadFloats int) []byte {
	buf := make([]byte, sketchHeaderLen+8*payloadFloats+sketchTrailerLen)
	copy(buf[0:4], sketchMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], m)
	binary.LittleEndian.PutUint32(buf[8:12], n)
	binary.LittleEndian.PutUint64(buf[12:20], 9)
	sum := crc32.ChecksumIEEE(buf[:len(buf)-sketchTrailerLen])
	binary.LittleEndian.PutUint32(buf[len(buf)-sketchTrailerLen:], sum)
	return buf
}

func TestDecodeSketchRejectsZeroDimensionHeaders(t *testing.T) {
	// m=0 with a consistent (empty) payload and a valid CRC: the length
	// and checksum gates both pass, so the dimension gate must fire —
	// otherwise the decoder mints a Sketch that MarshalBinary refuses to
	// round-trip.
	for _, tc := range []struct{ m, n uint32 }{{0, 50}, {3, 0}, {0, 0}} {
		data := craftSketchBytes(tc.m, tc.n, int(tc.m))
		if _, err := DecodeSketch(data); err == nil {
			t.Fatalf("m=%d n=%d header accepted", tc.m, tc.n)
		}
	}
	// Sanity: the same crafting with positive dimensions decodes and
	// round-trips.
	data := craftSketchBytes(2, 10, 2)
	s, err := DecodeSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("crafted positive-dimension sketch does not round-trip: %v", err)
	}
	if len(out) != len(data) {
		t.Fatalf("round-trip changed length: %d vs %d", len(out), len(data))
	}
}

// Property: every single-byte corruption and every truncation of a valid
// wire image is rejected, and whatever DOES decode re-encodes to an
// identical image (decode/encode idempotence over adversarial inputs).
func TestSketchCodecHeaderCorruptionProperty(t *testing.T) {
	keys := testKeys(30)
	sk, _ := NewSketcher(keys, Config{M: 6, Seed: 41})
	y, _ := sk.SketchPairs(map[string]float64{keys[2]: 7.5, keys[9]: -1})
	valid, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Truncations: no prefix of a valid image is a valid image.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeSketch(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Single-byte flips, every position (header, payload and trailer):
	// the CRC must catch all of them.
	for pos := 0; pos < len(valid); pos++ {
		for _, mask := range []byte{0x01, 0x80, 0xff} {
			corrupt := append([]byte(nil), valid...)
			corrupt[pos] ^= mask
			s, err := DecodeSketch(corrupt)
			if err != nil {
				continue
			}
			out, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("flip at %d decoded but does not re-encode: %v", pos, err)
			}
			if string(out) != string(corrupt) {
				t.Fatalf("flip at %d broke decode/encode idempotence", pos)
			}
		}
	}
}

// TestCountSketchCodecFrames runs the wire-frame gauntlet on the
// count-sketch backend: round-trip (with the depth identity intact and
// the decoded sketch usable by BOTH query paths), every truncation, and
// every single-byte CRC corruption.
func TestCountSketchCodecFrames(t *testing.T) {
	keys := testKeys(60)
	sk, err := NewSketcher(keys, Config{M: 20, Seed: 41, Ensemble: CountSketch, Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	y, err := sk.SketchPairs(map[string]float64{keys[2]: 7.5, keys[9]: -1})
	if err != nil {
		t.Fatal(err)
	}
	valid, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := sk.UnmarshalSketch(valid)
	if err != nil {
		t.Fatal(err)
	}
	if back.ens != CountSketch || back.d != 5 {
		t.Fatalf("decoded identity ens=%d d=%d, want CountSketch depth 5", back.ens, back.d)
	}
	for i := range y.Y {
		if math.Float64bits(back.Y[i]) != math.Float64bits(y.Y[i]) {
			t.Fatalf("payload differs at %d", i)
		}
	}
	// Decoded frames feed both serving paths: BOMP recovery and the
	// recovery-free point estimator.
	if _, err := sk.Detect(back, 2); err != nil {
		t.Fatal(err)
	}
	ps, err := sk.NewPointState()
	if err != nil {
		t.Fatal(err)
	}
	copy(ps.Sketch().Y, back.Y)
	ps.Commit()
	if _, err := ps.Query(keys[2], 0); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeSketch(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for pos := 0; pos < len(valid); pos++ {
		for _, mask := range []byte{0x01, 0x80, 0xff} {
			corrupt := append([]byte(nil), valid...)
			corrupt[pos] ^= mask
			s, err := DecodeSketch(corrupt)
			if err != nil {
				continue
			}
			out, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("flip at %d decoded but does not re-encode: %v", pos, err)
			}
			if string(out) != string(corrupt) {
				t.Fatalf("flip at %d broke decode/encode idempotence", pos)
			}
		}
	}
}

// Property: marshal/unmarshal is the identity on count-sketch payloads
// too, and the depth identity survives for arbitrary depths.
func TestCountSketchCodecProperty(t *testing.T) {
	keys := testKeys(40)
	check := func(vals [12]float64, rawDepth uint8) bool {
		depth := 1 + int(rawDepth)%6
		sk, err := NewSketcher(keys, Config{M: 12, Seed: 3, Ensemble: CountSketch, Depth: depth})
		if err != nil {
			return false
		}
		y := sk.ZeroSketch()
		copy(y.Y, vals[:])
		data, err := y.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := sk.UnmarshalSketch(data)
		if err != nil {
			return false
		}
		if back.d != depth || back.ens != CountSketch {
			return false
		}
		for i := range vals {
			if math.Float64bits(back.Y[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity on payloads, including
// negative zero, infinities and subnormals.
func TestSketchCodecProperty(t *testing.T) {
	keys := testKeys(20)
	sk, _ := NewSketcher(keys, Config{M: 8, Seed: 3})
	check := func(vals [8]float64) bool {
		y := sk.ZeroSketch()
		copy(y.Y, vals[:])
		data, err := y.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := sk.UnmarshalSketch(data)
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Float64bits(back.Y[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
