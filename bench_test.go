package csoutlier

// One benchmark per table/figure of the paper's evaluation (there are no
// numbered tables; Figures 4–12 are the complete quantitative record),
// plus the §4 conjecture checks and the ablation benches DESIGN.md calls
// out. Each figure bench regenerates the figure through the experiments
// harness at a reduced scale and reports tokens of its headline result
// as custom benchmark metrics, so `go test -bench=.` both times the
// pipeline and re-derives the qualitative claims.
//
// Scale with -benchtime is meaningless here (each iteration is a full
// experiment); raise the scale through CSOUTLIER_BENCH_SCALE instead,
// up to 1.0 for paper-size parameters.

import (
	"os"
	"strconv"
	"testing"

	"csoutlier/internal/experiments"
	"csoutlier/internal/linalg"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/theory"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

func benchScale() float64 {
	if s := os.Getenv("CSOUTLIER_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

func benchCfg() experiments.Config {
	return experiments.Config{Scale: benchScale(), Trials: 3, Seed: 7}
}

// runFigure executes one experiment per b.N iteration and folds a named
// scalar from the result tables into the benchmark output.
func runFigure(b *testing.B, id string, report func(tables []*experiments.Table) (metric string, value float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if report != nil && i == 0 {
			name, v := report(tables)
			b.ReportMetric(v, name)
		}
	}
}

func findSeries(tables []*experiments.Table, ti int, name string) []float64 {
	for _, s := range tables[ti].Series {
		if s.Name == name {
			return s.Y
		}
	}
	return nil
}

func BenchmarkFig4aExactRecovery(b *testing.B) {
	runFigure(b, "fig4a", func(ts []*experiments.Table) (string, float64) {
		// Headline: recovery probability at the top of the sweep for the
		// easiest sparsity.
		y := ts[0].Series[0].Y
		return "P(recover)@maxM", y[len(y)-1]
	})
}

func BenchmarkFig4bModeTrace(b *testing.B) {
	runFigure(b, "fig4b", func(ts []*experiments.Table) (string, float64) {
		y := ts[0].Series[0].Y
		return "final-mode", y[len(y)-1]
	})
}

func BenchmarkFig5ErrorOnKey(b *testing.B) {
	runFigure(b, "fig5", func(ts []*experiments.Table) (string, float64) {
		y := findSeries(ts, 0, "alpha=0.9000 Avg")
		if y == nil {
			return "EK@maxM", -1
		}
		return "EK@maxM", y[len(y)-1]
	})
}

func BenchmarkFig6ErrorOnValue(b *testing.B) {
	runFigure(b, "fig6", func(ts []*experiments.Table) (string, float64) {
		y := findSeries(ts, 0, "alpha=0.9000 Avg")
		if y == nil {
			return "EV@maxM", -1
		}
		return "EV@maxM", y[len(y)-1]
	})
}

func BenchmarkFig7ProductionKey(b *testing.B) {
	runFigure(b, "fig7", func(ts []*experiments.Table) (string, float64) {
		y := findSeries(ts, 0, "BOMP Avg")
		return "EK@maxBudget", y[len(y)-1]
	})
}

func BenchmarkFig8ProductionValue(b *testing.B) {
	runFigure(b, "fig8", func(ts []*experiments.Table) (string, float64) {
		y := findSeries(ts, 0, "BOMP Avg")
		return "EV@maxBudget", y[len(y)-1]
	})
}

func BenchmarkFig9ProductionModeTrace(b *testing.B) {
	runFigure(b, "fig9", func(ts []*experiments.Table) (string, float64) {
		y := ts[0].Series[0].Y
		return "final-mode", y[len(y)-1]
	})
}

func BenchmarkFig10EndToEnd(b *testing.B) {
	runFigure(b, "fig10", func(ts []*experiments.Table) (string, float64) {
		cs := findSeries(ts, 0, "BOMP")
		trad := findSeries(ts, 0, "Traditional Top-K")
		// Headline: end-to-end speedup at the smallest M on the small input.
		return "speedup@minM", trad[0] / cs[0]
	})
}

func BenchmarkFig11Breakdown(b *testing.B) {
	runFigure(b, "fig11", func(ts []*experiments.Table) (string, float64) {
		csMap := findSeries(ts, 0, "BOMP Mapper")
		tradMap := findSeries(ts, 0, "Traditional Mapper")
		return "map-speedup@minM", tradMap[0] / csMap[0]
	})
}

func BenchmarkFig12KeyScaling(b *testing.B) {
	runFigure(b, "fig12", func(ts []*experiments.Table) (string, float64) {
		cs := findSeries(ts, 0, "BOMP M=50")
		trad := findSeries(ts, 0, "Traditional topK")
		last := len(trad) - 1
		return "speedup@maxN", trad[last] / cs[last]
	})
}

func BenchmarkConjecture1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := theory.VerifyConjecture1(100, 10, 2000, 1)
		if i == 0 {
			b.ReportMetric(rep.MinRatio, "min-ratio")
			b.ReportMetric(float64(rep.Failures), "failures")
		}
	}
}

func BenchmarkConjecture2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := theory.VerifyConjecture2(200, 5000, 0.01, []float64{0.1, 0.3}, 2)
		if i == 0 {
			holds := 1.0
			if !rep.AllHold() {
				holds = 0
			}
			b.ReportMetric(holds, "holds")
		}
	}
}

// --- Ablation benches (DESIGN.md §4) ---

func ablationInstance(b *testing.B, n, m, s int) (*sensing.Dense, linalg.Vector) {
	b.Helper()
	d, err := sensing.NewDense(sensing.Params{M: m, N: n, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	x, _ := workload.MajorityDominated(n, s, 0, 1, 10, 6)
	return d, d.Measure(x, nil)
}

// BenchmarkAblationQROMP vs BenchmarkAblationNaiveOMP: the paper's §5 QR
// optimization against re-solving the normal equations per iteration.
func BenchmarkAblationQROMP(b *testing.B) {
	d, y := ablationInstance(b, 1000, 300, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.OMP(d, y, recovery.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNaiveOMP(b *testing.B) {
	d, y := ablationInstance(b, 1000, 300, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.NaiveOMP(d, y, recovery.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Recovery-family benches on one shared biased instance: the paper's
// BOMP against the extended-dictionary variants of CoSaMP, IHT and OLS.
func biasedInstance(b *testing.B) (*sensing.Dense, linalg.Vector, int) {
	b.Helper()
	const n, m, s = 800, 250, 30
	d, err := sensing.NewDense(sensing.Params{M: m, N: n, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	x, _ := workload.MajorityDominated(n, s, 1800, 300, 3000, 10)
	return d, d.Measure(x, nil), s
}

func BenchmarkRecoveryBOMP(b *testing.B) {
	d, y, s := biasedInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.BOMP(d, y, recovery.Options{MaxIterations: s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryBiasedCoSaMP(b *testing.B) {
	d, y, s := biasedInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.BiasedCoSaMP(d, y, s, recovery.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryBiasedIHT(b *testing.B) {
	d, y, s := biasedInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.BiasedIHT(d, y, s, recovery.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryBiasedOLS(b *testing.B) {
	d, y, s := biasedInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.BiasedOLS(d, y, recovery.Options{MaxIterations: s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Dense vs Seeded measurement: memory/time trade at large N.
func BenchmarkAblationDenseMeasure(b *testing.B) {
	p := sensing.Params{M: 100, N: 50000, Seed: 7}
	d, err := sensing.NewDense(p)
	if err != nil {
		b.Fatal(err)
	}
	idx, vals := sparseInput(p.N, 2000)
	dst := make(linalg.Vector, p.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.MeasureSparse(idx, vals, dst)
	}
}

func BenchmarkAblationSeededMeasure(b *testing.B) {
	p := sensing.Params{M: 100, N: 50000, Seed: 7}
	s, err := sensing.NewSeeded(p)
	if err != nil {
		b.Fatal(err)
	}
	idx, vals := sparseInput(p.N, 2000)
	dst := make(linalg.Vector, p.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MeasureSparse(idx, vals, dst)
	}
}

func sparseInput(n, nnz int) ([]int, []float64) {
	r := xrand.New(8)
	idx := make([]int, nnz)
	vals := make([]float64, nnz)
	for i := range idx {
		idx[i] = r.Intn(n)
		vals[i] = r.NormFloat64()
	}
	return idx, vals
}

// SRHT vs Gaussian recovery at a production-like size: the fast
// Hadamard correlation path attacks the same recovery bottleneck the
// paper's GPU future work targets.
func BenchmarkAblationGaussianBOMP(b *testing.B) {
	p := sensing.Params{M: 600, N: 10000, Seed: 11}
	d, err := sensing.NewDense(p)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := workload.MajorityDominated(p.N, 100, 1800, 300, 5000, 12)
	y := d.Measure(x, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.BOMP(d, y, recovery.Options{MaxIterations: 101}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSRHTBOMP(b *testing.B) {
	p := sensing.Params{M: 600, N: 10000, Seed: 11}
	s, err := sensing.NewSRHT(p)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := workload.MajorityDominated(p.N, 100, 1800, 300, 5000, 12)
	y := s.Measure(x, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.BOMP(s, y, recovery.Options{MaxIterations: 101}); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel vs serial correlation — the GPU-acceleration stand-in (§5).
func BenchmarkAblationSerialCorrelate(b *testing.B) {
	d, y := ablationInstance(b, 20000, 400, 50)
	dst := make(linalg.Vector, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CorrelateSerial(y, dst)
	}
}

func BenchmarkAblationParallelCorrelate(b *testing.B) {
	d, y := ablationInstance(b, 20000, 400, 50)
	dst := make(linalg.Vector, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Correlate(y, dst)
	}
}

// End-to-end public-API pipeline bench: sketch L nodes + detect.
func BenchmarkPublicAPIPipeline(b *testing.B) {
	keys := make([]string, 2000)
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(100000+i)
	}
	sk, err := NewSketcher(keys, Config{M: 200, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	global, _ := workload.MajorityDominated(2000, 20, 1800, 100, 900, 10)
	slices := workload.SplitZeroSumNoise(global, 8, 3600, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := sk.ZeroSketch()
		for _, sl := range slices {
			y, err := sk.SketchVector(sl)
			if err != nil {
				b.Fatal(err)
			}
			if err := acc.Add(y); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sk.Detect(acc, 10); err != nil {
			b.Fatal(err)
		}
	}
}
