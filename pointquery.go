package csoutlier

import (
	"errors"
	"fmt"
	"math"

	"csoutlier/internal/sensing"
)

// ErrNoPointQuery is returned by NewPointState when the sketcher's
// ensemble is not CountSketch — the only backend whose hashed structure
// supports recovery-free point estimation.
var ErrNoPointQuery = errors.New("csoutlier: point queries need the CountSketch ensemble")

// errPointStateUncommitted is a static error so the Query fast path
// stays allocation-free even when misused.
var errPointStateUncommitted = errors.New("csoutlier: PointState queried before Commit")

// PointAnswer is the result of a single-key point query.
type PointAnswer struct {
	// Value is the estimated aggregated value of the key.
	Value float64
	// Mode is the bias estimate the deviation is measured against,
	// shared by every query on the same committed PointState.
	Mode float64
	// Deviation is Value − Mode.
	Deviation float64
	// Outlier reports |Deviation| ≥ the query's threshold. Always false
	// for threshold ≤ 0 (callers that only want the estimate).
	Outlier bool
}

// PointState is the recovery-free point-query engine over one sketch:
// an owned sketch buffer plus a cached mode estimate. The intended
// cycle is
//
//	fill ps.Sketch() with the span to serve   (e.g. WindowStore.RangeInto)
//	ps.Commit()                               (re-estimate the mode, O(M log M))
//	ps.Query(key, threshold) × many           (O(Depth) each, 0 allocs)
//
// Commit must be exclusive with everything else; any number of Query
// calls may then run concurrently with each other (they only read).
// stream.Aggregator.PointQuery wraps this cycle behind a generation-
// checked RWMutex so callers just ask about keys.
type PointState struct {
	sk        *Sketcher
	cs        *sensing.CountSketch
	sketch    Sketch
	scratch   []float64
	mode      float64
	committed bool
}

// SupportsPointQuery reports whether this sketcher's ensemble answers
// point queries (i.e. NewPointState will succeed).
func (s *Sketcher) SupportsPointQuery() bool {
	_, ok := s.matrix.(*sensing.CountSketch)
	return ok
}

// NewPointState returns a point-query engine bound to this sketcher.
// Fails with ErrNoPointQuery unless the ensemble is CountSketch.
func (s *Sketcher) NewPointState() (*PointState, error) {
	cs, ok := s.matrix.(*sensing.CountSketch)
	if !ok {
		return nil, ErrNoPointQuery
	}
	return &PointState{
		sk:      s,
		cs:      cs,
		sketch:  s.emptySketch(),
		scratch: make([]float64, 0, cs.Depth()*cs.Width()),
	}, nil
}

// Sketch exposes the state's owned sketch buffer; fill it (RangeInto,
// Add, copy) with the span to serve, then Commit. The buffer identity
// is stable across the state's lifetime — refreshing a standing span
// costs no allocation.
func (ps *PointState) Sketch() Sketch { return ps.sketch }

// Commit re-estimates the mode from the current buffer contents and
// arms Query. O(M log M); call it once per sketch refresh, not per
// query.
func (ps *PointState) Commit() {
	ps.mode = ps.cs.EstimateMode(ps.sketch.Y, ps.scratch)
	ps.committed = true
}

// Mode returns the committed bias estimate.
func (ps *PointState) Mode() float64 { return ps.mode }

// Query estimates key's aggregated value and classifies it against
// threshold (outlier ⇔ |value − mode| ≥ threshold; threshold ≤ 0 skips
// classification). O(Depth), zero allocations on the happy path.
func (ps *PointState) Query(key string, threshold float64) (PointAnswer, error) {
	idx, ok := ps.sk.dict.Index(key)
	if !ok {
		return PointAnswer{}, fmt.Errorf("csoutlier: key %q not in global dictionary", key)
	}
	return ps.QueryIndex(idx, threshold)
}

// QueryIndex is Query by canonical key index.
func (ps *PointState) QueryIndex(idx int, threshold float64) (PointAnswer, error) {
	if !ps.committed {
		return PointAnswer{}, errPointStateUncommitted
	}
	if idx < 0 || idx >= ps.sk.params.N {
		return PointAnswer{}, fmt.Errorf("csoutlier: key index %d outside [0, %d)", idx, ps.sk.params.N)
	}
	v := ps.cs.PointEstimate(ps.sketch.Y, idx, ps.mode)
	dev := v - ps.mode
	return PointAnswer{
		Value:     v,
		Mode:      ps.mode,
		Deviation: dev,
		Outlier:   threshold > 0 && math.Abs(dev) >= threshold,
	}, nil
}
