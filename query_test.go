package csoutlier

import (
	"fmt"
	"math"
	"testing"

	"csoutlier/internal/xrand"
)

// clickRecords builds per-node raw log records such that the global
// per-(market, vertical) sums concentrate at mode, with planted
// divergent groups.
func clickRecords(t *testing.T, nodes int, planted map[string]float64, mode float64, seed uint64) [][]LogRecord {
	t.Helper()
	markets := []string{"en-US", "en-GB", "zh-CN", "ja-JP", "de-DE", "fr-FR", "pt-BR", "es-ES"}
	verticals := []string{"web", "image", "video", "news", "shopping"}
	r := xrand.New(seed)
	out := make([][]LogRecord, nodes)
	for _, mk := range markets {
		for _, vt := range verticals {
			key := mk + "|" + vt
			total := mode
			if d, ok := planted[key]; ok {
				total += d
			}
			// Emit the total as many signed events spread across nodes,
			// with zero-sum inter-node noise.
			noise := make([]float64, nodes)
			sum := 0.0
			for i := range noise {
				noise[i] = (r.Float64() - 0.5) * mode * 4
				sum += noise[i]
			}
			for i := range noise {
				share := total/float64(nodes) + noise[i] - sum/float64(nodes)
				// Two events per node: one positive-heavy, one negative,
				// exercising signed scores.
				out[i] = append(out[i],
					LogRecord{Attrs: map[string]string{"Market": mk, "Vertical": vt, "DC": fmt.Sprint(i)}, Score: share + 37},
					LogRecord{Attrs: map[string]string{"Market": mk, "Vertical": vt, "DC": fmt.Sprint(i)}, Score: -37},
				)
			}
		}
	}
	return out
}

func TestRunOutlierQueryEndToEnd(t *testing.T) {
	planted := map[string]float64{
		"ja-JP|news":     52000,
		"de-DE|shopping": -38000,
		"en-US|web":      29000,
	}
	const mode = 1800.0
	nodes := clickRecords(t, 6, planted, mode, 1)
	q := &OutlierQuery{
		K:       3,
		GroupBy: []string{"Market", "Vertical"},
		M:       20,
		Seed:    9,
	}
	res, err := RunOutlierQuery(q, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 40 {
		t.Fatalf("dictionary has %d keys, want 40", len(res.Keys))
	}
	if math.Abs(res.Report.Mode-mode) > 0.05*mode {
		t.Fatalf("mode = %v", res.Report.Mode)
	}
	got := map[string]float64{}
	for _, o := range res.Report.Outliers {
		got[o.Key] = o.Value
	}
	for key, d := range planted {
		v, ok := got[key]
		if !ok {
			t.Fatalf("missed planted group %q; got %v", key, got)
		}
		if math.Abs(v-(mode+d)) > 0.05*math.Abs(mode+d) {
			t.Fatalf("group %q value %v, want ≈%v", key, v, mode+d)
		}
	}
	if res.SketchBytes != 6*20*8 {
		t.Fatalf("SketchBytes = %d", res.SketchBytes)
	}
	if res.DictionaryBytes <= 0 {
		t.Fatal("DictionaryBytes not accounted")
	}
}

func TestRunOutlierQueryWhere(t *testing.T) {
	nodes := clickRecords(t, 3, map[string]float64{"ja-JP|news": 9000}, 500, 2)
	q := &OutlierQuery{
		K:       1,
		GroupBy: []string{"Vertical"},
		Where:   func(r LogRecord) bool { return r.Attrs["Market"] == "ja-JP" },
		M:       4,
		Seed:    3,
	}
	res, err := RunOutlierQuery(q, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Only ja-JP records survive: 5 vertical groups.
	if len(res.Keys) != 5 {
		t.Fatalf("keys = %v", res.Keys)
	}
	if len(res.Report.Outliers) == 0 || res.Report.Outliers[0].Key != "news" {
		t.Fatalf("outliers = %v", res.Report.Outliers)
	}
}

func TestRunOutlierQueryValidation(t *testing.T) {
	recs := [][]LogRecord{{{Attrs: map[string]string{"A": "x"}, Score: 1}}}
	if _, err := RunOutlierQuery(&OutlierQuery{K: 0, GroupBy: []string{"A"}}, recs); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := RunOutlierQuery(&OutlierQuery{K: 1}, recs); err == nil {
		t.Fatal("empty GroupBy accepted")
	}
	if _, err := RunOutlierQuery(&OutlierQuery{K: 1, GroupBy: []string{"A"}}, nil); err == nil {
		t.Fatal("no nodes accepted")
	}
	// Missing attribute.
	if _, err := RunOutlierQuery(&OutlierQuery{K: 1, GroupBy: []string{"B"}}, recs); err == nil {
		t.Fatal("missing attribute accepted")
	}
	// Separator collision.
	bad := [][]LogRecord{{{Attrs: map[string]string{"A": "x|y"}, Score: 1}}}
	if _, err := RunOutlierQuery(&OutlierQuery{K: 1, GroupBy: []string{"A"}}, bad); err == nil {
		t.Fatal("separator in attribute value accepted")
	}
	// Everything filtered out.
	q := &OutlierQuery{K: 1, GroupBy: []string{"A"}, Where: func(LogRecord) bool { return false }}
	if _, err := RunOutlierQuery(q, recs); err == nil {
		t.Fatal("empty result set accepted")
	}
}

func TestGroupKeyOrderMatters(t *testing.T) {
	rec := LogRecord{Attrs: map[string]string{"A": "1", "B": "2"}}
	q1 := &OutlierQuery{GroupBy: []string{"A", "B"}}
	q2 := &OutlierQuery{GroupBy: []string{"B", "A"}}
	k1, err := q1.GroupKey(rec)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := q2.GroupKey(rec)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("GROUP BY order should change the composite key")
	}
	if k1 != "1|2" {
		t.Fatalf("k1 = %q", k1)
	}
}

func TestAggregateNodeSums(t *testing.T) {
	q := &OutlierQuery{GroupBy: []string{"A"}}
	pairs, err := q.AggregateNode([]LogRecord{
		{Attrs: map[string]string{"A": "x"}, Score: 2},
		{Attrs: map[string]string{"A": "x"}, Score: 3},
		{Attrs: map[string]string{"A": "y"}, Score: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pairs["x"] != 5 || pairs["y"] != -1 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestRunOutlierQueryDefaultM(t *testing.T) {
	nodes := clickRecords(t, 2, map[string]float64{"ja-JP|news": 9000}, 300, 4)
	q := &OutlierQuery{K: 1, GroupBy: []string{"Market", "Vertical"}, Seed: 5}
	res, err := RunOutlierQuery(q, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// 40 keys → default M = N/10 = 4. (Accuracy at M=4 is not asserted:
	// four measurements are below the O(s·log N) recovery threshold —
	// callers wanting accuracy set M explicitly.)
	if res.SketchBytes != int64(2*4*8) {
		t.Fatalf("default-M SketchBytes = %d", res.SketchBytes)
	}
}
