package csoutlier

// Cross-module integration tests: the same production-like workload
// driven through every execution surface the repository offers — the
// public API, the TCP cluster protocol, and the MapReduce engine — must
// agree with each other and with the exact transmit-ALL baseline.

import (
	"context"
	"math"
	"net"
	"testing"

	"csoutlier/internal/baseline"
	"csoutlier/internal/cluster"
	"csoutlier/internal/keydict"
	"csoutlier/internal/mapreduce"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

func TestIntegrationAllSurfacesAgree(t *testing.T) {
	const (
		k    = 5
		dcs  = 4
		seed = 4242
	)
	cl := workload.GenerateClickLogs(workload.ClickLogConfig{
		Query:       workload.CoreSearchClicks,
		DataCenters: dcs,
		ScaleN:      0.08,
		Seed:        seed,
	})
	n := len(cl.Keys)
	m := n / 6
	truth := cl.TrueTopOutliers(k)
	truthKeys := make([]string, k)
	for i, kv := range truth {
		truthKeys[i] = cl.Keys[kv.Index]
	}

	// --- Surface 1: public API. ---
	sk, err := NewSketcher(cl.Keys, Config{M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	global := sk.ZeroSketch()
	for dc := 0; dc < dcs; dc++ {
		y, err := sk.SketchPairs(cl.PairsForNode(dc))
		if err != nil {
			t.Fatal(err)
		}
		if err := global.Add(y); err != nil {
			t.Fatal(err)
		}
	}
	apiRep, err := sk.Detect(global, k)
	if err != nil {
		t.Fatal(err)
	}

	// --- Surface 2: TCP cluster protocol. ---
	remotes := make([]cluster.NodeAPI, dcs)
	for dc := 0; dc < dcs; dc++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go cluster.Serve(ln, cluster.NewLocalNode(cl.Keys[0][:2]+string(rune('0'+dc)), cl.Slices[dc]))
		rn, err := cluster.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rn.Close() })
		remotes[dc] = rn
	}
	p := sensing.Params{M: m, N: n, Seed: seed}
	tcpRes, err := cluster.Detect(remotes, p, k, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// --- Surface 3: MapReduce engine. ---
	dict := keydict.FromSorted(cl.Keys)
	r := xrand.New(seed)
	var splits []mapreduce.Split
	for dc := 0; dc < dcs; dc++ {
		var recs []mapreduce.Record
		for i, key := range cl.Keys {
			if v := cl.Slices[dc][i]; v != 0 {
				recs = append(recs, mapreduce.Record{Key: key, Value: v})
			}
		}
		r.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
		half := len(recs) / 2
		splits = append(splits,
			mapreduce.Split{Records: recs[:half], Bytes: int64(half) * 32},
			mapreduce.Split{Records: recs[half:], Bytes: int64(len(recs)-half) * 32},
		)
	}
	out, _, err := mapreduce.Run(
		&mapreduce.SketchJob{Dict: dict, Params: p, K: k},
		splits, mapreduce.Config{Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	mrOutliers, mrMode, err := mapreduce.OutliersFromOutput(out, k)
	if err != nil {
		t.Fatal(err)
	}

	// --- Exact baseline. ---
	locals := make([]cluster.NodeAPI, dcs)
	for dc := 0; dc < dcs; dc++ {
		locals[dc] = cluster.NewLocalNode("x", cl.Slices[dc])
	}
	exact, err := baseline.All(context.Background(), locals, k)
	if err != nil {
		t.Fatal(err)
	}

	// All surfaces consumed the same global data through the same
	// (seed, M, N): sketches are identical, so answers must be identical.
	if math.Abs(apiRep.Mode-tcpRes.Mode) > 1e-9 || math.Abs(apiRep.Mode-mrMode) > 1e-9 {
		t.Fatalf("modes disagree: api %v, tcp %v, mr %v", apiRep.Mode, tcpRes.Mode, mrMode)
	}
	for i := range apiRep.Outliers {
		if apiRep.Outliers[i].Key != cl.Keys[tcpRes.Outliers[i].Index] {
			t.Fatalf("api/tcp outlier %d differ: %q vs %q",
				i, apiRep.Outliers[i].Key, cl.Keys[tcpRes.Outliers[i].Index])
		}
		if apiRep.Outliers[i].Key != cl.Keys[mrOutliers[i].Index] {
			t.Fatalf("api/mr outlier %d differ", i)
		}
	}

	// And they must agree with the exact baseline on this workload.
	est := make([]outlier.KV, len(apiRep.Outliers))
	for i, o := range apiRep.Outliers {
		idx, _ := dict.Index(o.Key)
		est[i] = outlier.KV{Index: idx, Value: o.Value}
	}
	if ek := outlier.ErrorOnKey(exact.Outliers, est); ek > 0.21 {
		t.Fatalf("EK vs exact = %v (exact %v, got %v)", ek, exact.Outliers, est)
	}
	if math.Abs(apiRep.Mode-exact.Mode) > 0.05*math.Abs(exact.Mode) {
		t.Fatalf("mode %v vs exact %v", apiRep.Mode, exact.Mode)
	}

	// Communication claim: sketching cost a fraction of ALL.
	if csBytes := int64(dcs) * int64(m) * 8; csBytes*4 > exact.Stats.Bytes {
		t.Fatalf("sketch bytes %d not ≪ ALL bytes %d", csBytes, exact.Stats.Bytes)
	}
}
