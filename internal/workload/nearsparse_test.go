package workload

import (
	"testing"
)

func TestNearMajorityDominatedDeterministic(t *testing.T) {
	a, sa := NearMajorityDominated(150, 8, 500, 10, 100, 400, 31)
	b, sb := NearMajorityDominated(150, 8, 500, 10, 100, 400, 31)
	if !a.Equal(b, 0) {
		t.Fatal("same seed, different vectors")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed, different support")
		}
	}
	c, _ := NearMajorityDominated(150, 8, 500, 10, 100, 400, 32)
	if a.Equal(c, 0) {
		t.Fatal("different seed, equal vectors")
	}
}

func TestNearMajorityDominatedZeroJitterIsExact(t *testing.T) {
	exact, se := MajorityDominated(100, 5, 900, 50, 200, 7)
	near, sn := NearMajorityDominated(100, 5, 900, 0, 50, 200, 7)
	if !exact.Equal(near, 0) {
		t.Fatal("zero jitter differs from exact generator")
	}
	for i := range se {
		if se[i] != sn[i] {
			t.Fatal("supports differ")
		}
	}
}

func TestNearMajorityDominatedOutliersUntouched(t *testing.T) {
	// Jitter applies to the bulk only: the planted outlier values match
	// the exact generator's.
	exact, support := MajorityDominated(200, 10, 700, 100, 300, 9)
	near, _ := NearMajorityDominated(200, 10, 700, 25, 100, 300, 9)
	for _, j := range support {
		if exact[j] != near[j] {
			t.Fatalf("outlier %d jittered: %v vs %v", j, exact[j], near[j])
		}
	}
}
