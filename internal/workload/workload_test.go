package workload

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/xrand/xrandtest"
)

func TestMajorityDominatedStructure(t *testing.T) {
	const n, s, mode = 1000, 50, 5000.0
	x, support := MajorityDominated(n, s, mode, 100, 1000, 1)
	if len(support) != s {
		t.Fatalf("support size %d", len(support))
	}
	atMode := 0
	for _, v := range x {
		if v == mode {
			atMode++
		}
	}
	if atMode != n-s {
		t.Fatalf("entries at mode = %d, want %d", atMode, n-s)
	}
	for _, j := range support {
		d := math.Abs(x[j] - mode)
		if d < 100 || d > 1000 {
			t.Fatalf("outlier %d magnitude %v outside [100,1000]", j, d)
		}
	}
	m, ok := outlier.Mode(x)
	if !ok || m != mode {
		t.Fatalf("Mode = %v %v", m, ok)
	}
}

func TestMajorityDominatedDeterministic(t *testing.T) {
	a, sa := MajorityDominated(100, 10, 7, 1, 2, 9)
	b, sb := MajorityDominated(100, 10, 7, 1, 2, 9)
	if !a.Equal(b, 0) {
		t.Fatal("same seed, different vectors")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed, different support")
		}
	}
	c, _ := MajorityDominated(100, 10, 7, 1, 2, 10)
	if a.Equal(c, 0) {
		t.Fatal("different seed, equal vectors")
	}
}

func TestMajorityDominatedPanicsOnBadS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("s > n accepted")
		}
	}()
	MajorityDominated(5, 6, 0, 1, 2, 1)
}

func TestPowerLawProperties(t *testing.T) {
	x := PowerLaw(20000, 0.9, 2)
	for i, v := range x {
		if v < 1 {
			t.Fatalf("Pareto(1, α) sample below scale at %d: %v", i, v)
		}
	}
	// Heavy tail: max should dwarf the median.
	sorted := x.Clone()
	max, med := 0.0, 0.0
	for _, v := range sorted {
		if v > max {
			max = v
		}
	}
	cnt := 0
	for _, v := range sorted {
		if v < 3 {
			cnt++
		}
	}
	med = float64(cnt) / float64(len(x))
	if max < 100 {
		t.Fatalf("max = %v, expected heavy tail", max)
	}
	if med < 0.5 {
		t.Fatalf("mass below 3 = %v, expected concentration near scale", med)
	}
}

func TestPowerLawAlphaOrdersTails(t *testing.T) {
	// Smaller α → heavier tail → larger extreme values, on average.
	heavy := PowerLaw(50000, 0.9, 3)
	light := PowerLaw(50000, 1.5, 3)
	maxOf := func(v linalg.Vector) float64 {
		m := 0.0
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(heavy) <= maxOf(light) {
		t.Fatalf("α=0.9 max %v <= α=1.5 max %v", maxOf(heavy), maxOf(light))
	}
}

func TestSplitZeroSumNoiseSumsExactly(t *testing.T) {
	// Property: however the data is split, the slices sum back to the
	// original (the zero-sum noise cancels). Seeded so a failing draw is
	// replayable (-seed) rather than lost with the run.
	rng := xrandtest.New(t, 0x5eed5)
	for trial := 0; trial < 30; trial++ {
		seed := rng.Uint64()
		l := 1 + rng.Intn(7)
		x, _ := MajorityDominated(200, 10, 1800, 100, 500, seed)
		slices := SplitZeroSumNoise(x, l, 450, seed+1)
		if len(slices) != l {
			t.Fatalf("trial %d: %d slices, want %d", trial, len(slices), l)
		}
		sum := make(linalg.Vector, len(x))
		for _, s := range slices {
			sum.Add(s)
		}
		if !sum.Equal(x, 1e-9) {
			t.Fatalf("trial %d (l=%d, seed=%d): slices do not sum back to the original", trial, l, seed)
		}
	}
}

func TestSplitZeroSumNoiseLocalSlicesAreDense(t *testing.T) {
	// The point of the noise: local slices must NOT be majority-dominated
	// even though the global is (paper Figure 1).
	x, _ := MajorityDominated(500, 20, 1800, 200, 900, 4)
	slices := SplitZeroSumNoise(x, 3, 450, 5)
	for l, s := range slices {
		if _, ok := outlier.Mode(s); ok {
			t.Fatalf("slice %d still has an exact majority mode", l)
		}
	}
}

func TestGenerateClickLogsInvariant(t *testing.T) {
	for _, q := range []QueryType{CoreSearchClicks, AdsClicks, AnswerClicks} {
		cfg := ClickLogConfig{Query: q, DataCenters: 4, ScaleN: 0.05, Seed: 6}
		cl := GenerateClickLogs(cfg)
		if len(cl.Slices) != 4 {
			t.Fatalf("%v: %d slices", q, len(cl.Slices))
		}
		if len(cl.Keys) != len(cl.Global) {
			t.Fatalf("%v: keys %d != N %d", q, len(cl.Keys), len(cl.Global))
		}
		// Slices sum to the global.
		sum := make(linalg.Vector, len(cl.Global))
		for _, s := range cl.Slices {
			sum.Add(s)
		}
		if !sum.Equal(cl.Global, 1e-6) {
			t.Fatalf("%v: slices do not sum to global", q)
		}
		// Global is majority-dominated at the planted mode.
		m, ok := outlier.Mode(cl.Global)
		if !ok || m != cl.Mode {
			t.Fatalf("%v: global mode = %v %v, want %v", q, m, ok, cl.Mode)
		}
		// Truth has exactly S outliers, strongest first.
		if len(cl.Truth) != cl.S {
			t.Fatalf("%v: %d truth outliers, want %d", q, len(cl.Truth), cl.S)
		}
		for i := 1; i < len(cl.Truth); i++ {
			if math.Abs(cl.Truth[i].Value-cl.Mode) > math.Abs(cl.Truth[i-1].Value-cl.Mode) {
				t.Fatalf("%v: truth not sorted by divergence at %d", q, i)
			}
		}
	}
}

func TestClickLogsKeysSortedDistinct(t *testing.T) {
	cl := GenerateClickLogs(ClickLogConfig{Query: CoreSearchClicks, ScaleN: 0.03, Seed: 7})
	for i := 1; i < len(cl.Keys); i++ {
		if cl.Keys[i-1] >= cl.Keys[i] {
			t.Fatalf("keys not strictly sorted at %d: %q >= %q", i, cl.Keys[i-1], cl.Keys[i])
		}
	}
}

func TestClickLogsSparsityProfiles(t *testing.T) {
	// Paper Figure 9: the three query types have different sparsity.
	a := GenerateClickLogs(ClickLogConfig{Query: CoreSearchClicks, ScaleN: 0.1, Seed: 8})
	b := GenerateClickLogs(ClickLogConfig{Query: AdsClicks, ScaleN: 0.1, Seed: 8})
	if a.S >= b.S {
		t.Fatalf("core-search sparsity %d should be < ads sparsity %d", a.S, b.S)
	}
}

func TestPairsForNodeRoundTrip(t *testing.T) {
	cl := GenerateClickLogs(ClickLogConfig{Query: AnswerClicks, DataCenters: 3, ScaleN: 0.02, Seed: 9})
	pairs := cl.PairsForNode(1)
	for k, v := range pairs {
		// Find the key's index.
		found := false
		for i, key := range cl.Keys {
			if key == k {
				if cl.Slices[1][i] != v {
					t.Fatalf("pair %q = %v, slice has %v", k, v, cl.Slices[1][i])
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pair key %q not in dictionary", k)
		}
	}
}

func TestTrueTopOutliersClamps(t *testing.T) {
	cl := GenerateClickLogs(ClickLogConfig{Query: CoreSearchClicks, ScaleN: 0.01, Seed: 10})
	if got := cl.TrueTopOutliers(1 << 20); len(got) != cl.S {
		t.Fatalf("clamp failed: %d", len(got))
	}
	if got := cl.TrueTopOutliers(3); len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestQueryTypeString(t *testing.T) {
	if CoreSearchClicks.String() != "core-search" || AdsClicks.String() != "ads" || AnswerClicks.String() != "answer" {
		t.Fatal("String() labels wrong")
	}
}
