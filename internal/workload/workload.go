// Package workload generates the data sets of the paper's evaluation
// (§6.1): exact majority-dominated vectors, continuous power-law
// ("sparse-like") vectors, and a production-like distributed click-log
// workload standing in for the Bing search-quality logs the paper uses
// (65 TB across 8 geo-distributed data centers) — see DESIGN.md §1 for
// the substitution argument.
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/xrand"
)

// MajorityDominated returns an N-vector with exactly N−s entries equal
// to mode and s entries diverging from it by a magnitude in
// [minMag, maxMag] with random sign (paper §6.1.1 first data set:
// b = 5000, sparsity varied through s). The planted outlier positions
// are returned sorted.
func MajorityDominated(n, s int, mode, minMag, maxMag float64, seed uint64) (linalg.Vector, []int) {
	if s > n {
		panic(fmt.Sprintf("workload: s=%d > n=%d", s, n))
	}
	r := xrand.New(seed)
	x := make(linalg.Vector, n)
	x.Fill(mode)
	support := pickDistinct(r, n, s)
	for _, j := range support {
		mag := minMag + (maxMag-minMag)*r.Float64()
		if r.Float64() < 0.5 {
			mag = -mag
		}
		x[j] = mode + mag
	}
	return x, support
}

// NearMajorityDominated returns an N-vector whose bulk entries
// *concentrate around* mode with Gaussian jitter of the given standard
// deviation instead of equalling it exactly — the paper's real
// production shape ("values concentrate around a mode b, but they are
// not necessarily equal to the exact b", §2.1, Figure 1), under which
// outliers and mode no longer have unique definitions. The s planted
// outliers diverge by magnitudes in [minMag, maxMag]; sensible callers
// keep minMag well above a few jitter standard deviations.
func NearMajorityDominated(n, s int, mode, jitter, minMag, maxMag float64, seed uint64) (linalg.Vector, []int) {
	x, support := MajorityDominated(n, s, mode, minMag, maxMag, seed)
	r := xrand.New(seed ^ 0xfeedface)
	onSupport := make(map[int]bool, s)
	for _, j := range support {
		onSupport[j] = true
	}
	for i := range x {
		if !onSupport[i] {
			x[i] += r.NormFloat64() * jitter
		}
	}
	return x, support
}

// PowerLaw returns an N-vector of i.i.d. continuous Pareto samples with
// shape alpha and unit scale: x = u^(−1/α) (paper §6.1.1 second data
// set, α ∈ {0.9, 0.95}; §6.2 uses α = 1.5). No two values repeat almost
// surely, the density peaks at the scale, and smaller α gives heavier
// tails — a handful of entries dwarf the rest, which is the
// "sparse-like" structure CS exploits.
func PowerLaw(n int, alpha float64, seed uint64) linalg.Vector {
	if alpha <= 0 {
		panic(fmt.Sprintf("workload: alpha=%v must be positive", alpha))
	}
	r := xrand.New(seed)
	x := make(linalg.Vector, n)
	for i := range x {
		var u float64
		for u == 0 {
			u = r.Float64()
		}
		x[i] = math.Pow(u, -1/alpha)
	}
	return x
}

// SplitZeroSumNoise splits a global vector x into l slices that sum
// exactly to x, with per-node zero-sum noise of the given amplitude
// added so that individual slices are dense and distributed differently
// from the global aggregate — the paper's central obstacle ("local
// outliers and mode are often very different from the global ones",
// §1): a slice's values bear little resemblance to x, yet the sum is
// exact.
func SplitZeroSumNoise(x linalg.Vector, l int, noise float64, seed uint64) []linalg.Vector {
	if l <= 0 {
		panic("workload: need at least one node")
	}
	r := xrand.New(seed)
	slices := make([]linalg.Vector, l)
	for i := range slices {
		slices[i] = make(linalg.Vector, len(x))
	}
	g := make([]float64, l)
	for i, v := range x {
		mean := 0.0
		for j := range g {
			g[j] = r.NormFloat64() * noise
			mean += g[j]
		}
		mean /= float64(l)
		rem := v
		for j := 0; j < l; j++ {
			share := v/float64(l) + g[j] - mean
			if j == l-1 {
				share = rem // absorb rounding exactly
			}
			slices[j][i] = share
			rem -= share
		}
	}
	return slices
}

// pickDistinct returns s distinct indices in [0, n), sorted.
func pickDistinct(r *xrand.RNG, n, s int) []int {
	seen := make(map[int]bool, s)
	for len(seen) < s {
		seen[r.Intn(n)] = true
	}
	out := make([]int, 0, s)
	for j := range seen {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// QueryType names the three production score queries of §6.1.2.
type QueryType int

// The paper's three representative production aggregation queries.
const (
	CoreSearchClicks QueryType = iota // N≈10.4K keys, sparsity ≈300
	AdsClicks                         // N≈9K keys,    sparsity ≈650
	AnswerClicks                      // N≈10K keys,   sparsity ≈610
)

// String implements fmt.Stringer.
func (q QueryType) String() string {
	switch q {
	case CoreSearchClicks:
		return "core-search"
	case AdsClicks:
		return "ads"
	case AnswerClicks:
		return "answer"
	default:
		return fmt.Sprintf("QueryType(%d)", int(q))
	}
}

// profile returns the key-space size and sparsity the paper measured for
// each query type (§6.1.2 and Figure 9).
func (q QueryType) profile() (n, s int, mode float64) {
	switch q {
	case CoreSearchClicks:
		return 10400, 300, 1800 // Figure 1's example mode
	case AdsClicks:
		return 9000, 650, 730
	case AnswerClicks:
		return 10000, 610, 2450
	default:
		panic(fmt.Sprintf("workload: unknown query type %d", int(q)))
	}
}

// ClickLogConfig parameterizes the production-like workload.
type ClickLogConfig struct {
	Query       QueryType
	DataCenters int     // paper: 8 geo-distributed DCs
	ScaleN      float64 // scales the key-space (and sparsity) for fast tests; 0 or 1 = paper scale
	NoiseAmp    float64 // per-DC zero-sum noise amplitude; 0 = mode/4
	Seed        uint64
}

// ClickLogs is a generated distributed click-score workload.
type ClickLogs struct {
	Config ClickLogConfig
	Keys   []string        // global key dictionary order (sorted)
	Slices []linalg.Vector // one vectorized slice per data center
	Global linalg.Vector   // Σ slices (the ground-truth aggregate)
	Mode   float64         // planted mode b
	S      int             // planted sparsity (number of outliers)
	Truth  []outlier.KV    // all planted outliers, strongest first
}

// GenerateClickLogs builds the workload. Keys look like
// "2015-05-31|en-US|web|dc3|url1742" (date, market, vertical, data
// center of origin, request-URL bucket: the GROUP-BY attributes from the
// paper's query template).
func GenerateClickLogs(cfg ClickLogConfig) *ClickLogs {
	if cfg.DataCenters <= 0 {
		cfg.DataCenters = 8
	}
	scale := cfg.ScaleN
	if scale <= 0 {
		scale = 1
	}
	n0, s0, mode := cfg.Query.profile()
	n := int(float64(n0) * scale)
	s := int(float64(s0) * scale)
	if n < 4 {
		n = 4
	}
	if s < 1 {
		s = 1
	}
	if s > n/2-1 {
		s = n/2 - 1 // keep the data majority-dominated
	}
	// Default noise amplitude: twice the mode. Per-node values are then
	// dominated by the zero-sum noise — locally, outliers are invisible
	// (paper §6.1.2: "the values are distributed with big standard
	// deviations, the mode and outliers on each node are vastly
	// different from the global ones") — while the global aggregate is
	// exactly the planted vector.
	noise := cfg.NoiseAmp
	if noise <= 0 {
		noise = 2 * mode
	}

	r := xrand.New(cfg.Seed)
	keys := makeKeys(n, r)

	// Global aggregate: mode everywhere, s outliers whose click-score
	// sums diverge. Click scores are signed (Success vs Quick-Back), so
	// outliers go both ways. Divergence magnitudes are Pareto-heavy —
	// Figure 1(a)'s production snapshot shows most outliers modest and a
	// handful enormous — which is what lets a small measurement budget
	// pin down the top-k outliers long before it could recover all s.
	global := make(linalg.Vector, n)
	global.Fill(mode)
	support := pickDistinct(r, n, s)
	for _, j := range support {
		var u float64
		for u == 0 {
			u = r.Float64()
		}
		mag := mode * math.Pow(u, -1/0.7) // Pareto(α=0.7), scale = mode
		if cap := 1e4 * mode; mag > cap {
			mag = cap // keep float sums well-conditioned
		}
		if r.Float64() < 0.4 {
			mag = -mag
		}
		global[j] = mode + mag
	}

	slices := SplitZeroSumNoise(global, cfg.DataCenters, noise, r.Uint64())
	truth := outlier.TopK(global, mode, s)
	return &ClickLogs{
		Config: cfg,
		Keys:   keys,
		Slices: slices,
		Global: global,
		Mode:   mode,
		S:      s,
		Truth:  truth,
	}
}

// makeKeys builds n distinct composite keys over the paper's GROUP-BY
// attributes (49 markets, 62 verticals per §6.1.2), sorted.
func makeKeys(n int, r *xrand.RNG) []string {
	markets := []string{
		"en-US", "en-GB", "zh-CN", "ja-JP", "de-DE", "fr-FR", "pt-BR",
		"es-ES", "ru-RU", "it-IT", "ko-KR", "nl-NL", "sv-SE", "pl-PL",
	}
	verticals := []string{
		"web", "image", "video", "news", "shopping", "maps", "local",
		"reference", "sports", "finance", "weather", "travel",
	}
	seen := make(map[string]bool, n)
	keys := make([]string, 0, n)
	day := 0
	for len(keys) < n {
		k := fmt.Sprintf("2015-05-%02d|%s|%s|dc%d|url%04d",
			1+day%28,
			markets[r.Intn(len(markets))],
			verticals[r.Intn(len(verticals))],
			r.Intn(8),
			r.Intn(n*4),
		)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		} else {
			day++ // perturb to escape collisions deterministically
		}
	}
	sort.Strings(keys)
	return keys
}

// TrueTopOutliers returns the strongest k planted outliers.
func (c *ClickLogs) TrueTopOutliers(k int) []outlier.KV {
	if k > len(c.Truth) {
		k = len(c.Truth)
	}
	return c.Truth[:k]
}

// PairsForNode materializes data-center l's slice as key-value pairs —
// the form a real log-aggregation mapper would hold.
func (c *ClickLogs) PairsForNode(l int) map[string]float64 {
	pairs := make(map[string]float64, len(c.Keys))
	for i, k := range c.Keys {
		if v := c.Slices[l][i]; v != 0 {
			pairs[k] = v
		}
	}
	return pairs
}
