package tier

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"csoutlier"
	"csoutlier/internal/obs"
	"csoutlier/internal/stream"
	"csoutlier/internal/xrand"
)

// RelayOptions tunes a regional relay aggregator.
type RelayOptions struct {
	// ID names this relay in its parent's dedup books (required). The
	// wire identity is FrameID(Shard, Level, ID).
	ID string
	// Shard is the key-range shard this relay's tree serves.
	Shard int
	// Level is the relay's tier level (default 1; leaf nodes are
	// conceptually level 0, the root is the highest level).
	Level int
	// Upstream is the parent aggregator's push-listener address
	// (required).
	Upstream string
	// UpEpoch is the relay's upward incarnation (default 1). A volatile
	// relay that restarts from scratch MUST announce a higher epoch —
	// exactly the leaf-node restart rule, one level up. A durable relay
	// restored via RestoreRelay keeps its snapshotted epoch: its replayed
	// frames are byte-identical, so the parent's books dedup them.
	UpEpoch uint64
	// SnapshotPath, when non-empty, makes the relay durable: every
	// Forward persists an atomic-rename snapshot (the embedded
	// aggregator's fold state plus the upward-forwarding state in
	// Snapshot.Extra) before any upward frame becomes sendable.
	SnapshotPath string
	// Retain caps the upward replay-retention buffer (default 1024,
	// negative disables) — frames the parent acked but has not yet
	// declared durable, replayed if the parent restores from a snapshot.
	Retain int
	// DialTimeout/PushTimeout/BaseBackoff/MaxBackoff/BackoffSeed shape
	// the upstream connection exactly as stream.NodeOptions do.
	DialTimeout time.Duration
	PushTimeout time.Duration
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	BackoffSeed uint64
	// Metrics, when set, registers the tier_* families in this registry.
	Metrics *obs.Registry
	// Agg configures the embedded leaf-facing aggregator. SnapshotPath,
	// WindowEvery, and the snapshot hooks are overridden: the relay owns
	// its snapshot file (so the upward state is always captured with the
	// fold state) and its window clock (adopted from the parent, so the
	// whole tree shares the root's rotation).
	Agg stream.AggregatorOptions
}

func (o RelayOptions) withDefaults() RelayOptions {
	if o.Level == 0 {
		o.Level = 1
	}
	if o.UpEpoch == 0 {
		o.UpEpoch = 1
	}
	if o.Retain == 0 {
		o.Retain = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.PushTimeout <= 0 {
		o.PushTimeout = 10 * time.Second
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	return o
}

// upFrame is one upward delta frame: the folded sum of every leaf
// delta applied to one window between two forwards.
type upFrame struct {
	window  uint64
	seq     uint64
	folds   uint32 // leaf captures carried (Σ applied frames' folds)
	payload []byte
	sent    bool
}

// upAccum accumulates applied leaf deltas for one window since the
// last snapshot capture.
type upAccum struct {
	sketch csoutlier.Sketch
	folds  uint32
}

// RelayStats is a snapshot of a relay's upward-forwarding state.
type RelayStats struct {
	Forwards        int64 // completed Forward cycles
	ForwardErrors   int64 // Forward cycles that failed (snapshot or drain)
	FramesStaged    int64 // upward frames created (seq assigned)
	FoldsStaged     int64 // leaf captures carried by staged frames
	FramesCommitted int64 // staged frames released by a snapshot commit
	Applied         int64 // upward frames the parent folded
	Duplicates      int64 // upward frames the parent had already processed
	Dropped         int64 // upward frames too old for the parent's ring
	Rejected        int64 // upward frames the parent refused
	Replayed        int64 // retained frames requeued after a parent restore
	Redials         int64 // upstream connections re-established
	Unstable        int   // windows with accumulated-but-unsnapshotted deltas
	Staged          int   // frames waiting for a snapshot commit
	Queued          int   // committed frames waiting to be pushed
	Retained        int   // acked frames held for parent-restore replay
	UpSeq           uint64
	UpEpoch         uint64
	RootEpoch       uint64 // parent incarnation last seen
	RootStable      uint64 // parent's durable watermark for this relay
}

// Relay is a regional aggregator: a full stream.Aggregator for the
// nodes below it, and a stream node for the aggregator above it. Leaf
// deltas fold into its window ring exactly as at a flat aggregator;
// the OnApplied hook mirrors every applied delta into a per-window
// upward accumulator, so by linearity each accumulator is exactly the
// sum of the leaf deltas it covers — forwarding it upward as one frame
// gives the root bit-identical windows at a fraction of the fan-in.
//
// Exactly-once across the hop comes from a staging discipline tied to
// the embedded aggregator's snapshot atomicity:
//
//  1. SnapshotExtra (inside Snapshot's critical section) drains the
//     unstable accumulators into staged frames, assigning upward seqs
//     in ascending-window order, and encodes the full upward state
//     (epoch, seq counter, retained+queued+staged frames with
//     payloads) into Snapshot.Extra. The upward state is therefore
//     always captured atomically with the fold state that produced it.
//  2. A durable relay persists the snapshot, then CommitSnapshot
//     releases staged frames into the send queue (OnSnapshotCommit) in
//     the same call that advances the leaves' Stable watermarks. So a
//     leaf is told "your frame is durable" exactly when the upward
//     frame carrying it is on disk — one atomic durability event.
//  3. Every sendable frame's (seq → content) binding is a function of
//     committed snapshot state only: RestoreRelay re-derives
//     byte-identical frames, the parent's dedup books drop replayed
//     ones, and leaf-replayed deltas accumulate fresh (never reused)
//     seqs. Conservation holds through the tree: every leaf capture is
//     folded exactly once at the root or accounted shed on the way.
type Relay struct {
	sk   *csoutlier.Sketcher
	opts RelayOptions
	name string // FrameID(shard, level, id)
	agg  *stream.Aggregator

	fmu       sync.Mutex
	unstable  map[uint64]*upAccum
	staged    []*upFrame
	queue     []*upFrame
	retained  []*upFrame
	upSeq     uint64
	rootEpoch uint64
	stats     RelayStats

	sendMu sync.Mutex // serializes upstream use: Forward/Sync/Close
	client *stream.Client
	rng    *xrand.RNG

	metrics *relayMetrics
}

// NewRelay builds a relay, dials its parent, announces its upward
// identity and adopts the parent's current window — so the relay's
// leaf-facing window clock agrees with the root before the first leaf
// connects. Serve must be called to accept leaf pushes.
func NewRelay(ctx context.Context, sk *csoutlier.Sketcher, opts RelayOptions) (*Relay, error) {
	opts = opts.withDefaults()
	r, err := buildRelay(sk, opts, nil)
	if err != nil {
		return nil, err
	}
	if err := r.connectAndAdopt(ctx); err != nil {
		r.agg.Close(context.Background())
		return nil, err
	}
	return r, nil
}

// buildRelay constructs the relay and its embedded aggregator with the
// hooks wired; restored carries a decoded upward state (nil = fresh).
func buildRelay(sk *csoutlier.Sketcher, opts RelayOptions, restored *relayExtraState) (*Relay, error) {
	if opts.ID == "" {
		return nil, errors.New("tier: relay ID must be non-empty")
	}
	if opts.Upstream == "" {
		return nil, errors.New("tier: relay upstream address must be non-empty")
	}
	r := &Relay{
		sk:       sk,
		opts:     opts,
		name:     FrameID(opts.Shard, opts.Level, opts.ID),
		unstable: make(map[uint64]*upAccum),
	}
	seed := opts.BackoffSeed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(r.name))
		seed = h.Sum64() ^ opts.UpEpoch
	}
	r.rng = xrand.New(seed)
	if restored != nil {
		r.upSeq = restored.UpSeq
		r.queue = restored.Frames
	}

	aopts := opts.Agg
	// The relay owns its snapshot file: the embedded aggregator must
	// never write one on its own (a snapshot not followed by the relay's
	// commit discipline would advance nothing), and must never rotate on
	// its own clock (windows are adopted from the parent).
	aopts.Durable = aopts.Durable || opts.SnapshotPath != ""
	aopts.SnapshotPath = ""
	aopts.SnapshotEvery = 0
	aopts.WindowEvery = 0
	aopts.OnApplied = r.onApplied
	aopts.SnapshotExtra = r.snapshotExtra
	aopts.OnSnapshotCommit = r.onSnapshotCommit
	var agg *stream.Aggregator
	var err error
	if restored != nil {
		agg, err = stream.RestoreAggregator(sk, aopts, restored.snap)
	} else {
		agg, err = stream.NewAggregator(sk, aopts)
	}
	if err != nil {
		return nil, err
	}
	r.agg = agg
	if opts.Metrics != nil {
		r.metrics = newRelayMetrics(opts.Metrics, r)
	}
	return r, nil
}

// RestoreRelay rebuilds a durable relay from its snapshot: the
// leaf-facing aggregator restores exactly as a flat one would
// (Float64bits-identical ring, live dedup books, bumped leaf-facing
// AggEpoch so leaves replay), and the upward state comes back from
// Snapshot.Extra — same upward epoch, same seq counter, and every
// frame the parent may not have durably folded requeued byte-identical
// for replay (the parent's books drop the ones it has). Like NewRelay
// it dials the parent and adopts the current window; call Sync to
// drain the replayed queue, BEFORE the leaves reconnect, so the window
// clock is current when their frames arrive.
func RestoreRelay(ctx context.Context, sk *csoutlier.Sketcher, opts RelayOptions, snap *stream.Snapshot) (*Relay, error) {
	opts = opts.withDefaults()
	st, err := decodeRelayExtra(snap.Extra)
	if err != nil {
		return nil, err
	}
	if st.Shard != opts.Shard || st.Level != opts.Level || st.ID != opts.ID {
		return nil, fmt.Errorf("tier: snapshot belongs to relay %s, not %s",
			FrameID(st.Shard, st.Level, st.ID), FrameID(opts.Shard, opts.Level, opts.ID))
	}
	opts.UpEpoch = st.UpEpoch
	st.snap = snap
	r, err := buildRelay(sk, opts, st)
	if err != nil {
		return nil, err
	}
	if err := r.connectAndAdopt(ctx); err != nil {
		r.agg.Close(context.Background())
		return nil, err
	}
	return r, nil
}

// Name returns the relay's upward wire identity.
func (r *Relay) Name() string { return r.name }

// Aggregator returns the embedded leaf-facing aggregator (for queries
// and leaf-side stats; its listener is driven via Serve).
func (r *Relay) Aggregator() *stream.Aggregator { return r.agg }

// Serve accepts leaf push connections on ln until the relay closes —
// the embedded aggregator's ordinary push listener.
func (r *Relay) Serve(ln net.Listener) error { return r.agg.Serve(ln) }

// Stats returns a snapshot of the relay's upward counters.
func (r *Relay) Stats() RelayStats {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	s := r.stats
	s.Unstable = len(r.unstable)
	s.Staged = len(r.staged)
	s.Queued = len(r.queue)
	s.Retained = len(r.retained)
	s.UpSeq = r.upSeq
	s.UpEpoch = r.opts.UpEpoch
	s.RootEpoch = r.rootEpoch
	return s
}

// onApplied mirrors one applied leaf delta into the window's upward
// accumulator. Runs under the aggregator mutex (so it can never race a
// snapshot capture of the same fold) and takes fmu inside it — the
// relay's lock order is always agg.mu → fmu.
func (r *Relay) onApplied(window uint64, folds int, delta csoutlier.Sketch) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	acc, ok := r.unstable[window]
	if !ok {
		acc = &upAccum{sketch: r.sk.ZeroSketch()}
		r.unstable[window] = acc
	}
	// Add cannot fail: delta was decoded by the same sketcher that
	// built the accumulator, so the consensus identities match.
	if err := acc.sketch.Add(delta); err != nil {
		panic(fmt.Sprintf("tier: relay %s accumulator: %v", r.name, err))
	}
	acc.folds += uint32(folds)
}

// snapshotExtra drains the unstable accumulators into staged frames
// (assigning upward seqs in ascending-window order, so replay order is
// deterministic) and encodes the complete upward state. Runs inside
// the embedded aggregator's Snapshot critical section: the staged
// frames and the fold state they summarize are captured atomically.
func (r *Relay) snapshotExtra() ([]byte, error) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	windows := make([]uint64, 0, len(r.unstable))
	for w := range r.unstable {
		windows = append(windows, w)
	}
	for i := 1; i < len(windows); i++ { // insertion sort: few windows
		for j := i; j > 0 && windows[j] < windows[j-1]; j-- {
			windows[j], windows[j-1] = windows[j-1], windows[j]
		}
	}
	for _, w := range windows {
		acc := r.unstable[w]
		payload, err := acc.sketch.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("tier: relay %s window %d: %w", r.name, w, err)
		}
		r.upSeq++
		r.staged = append(r.staged, &upFrame{window: w, seq: r.upSeq, folds: acc.folds, payload: payload})
		delete(r.unstable, w)
		r.stats.FramesStaged++
		r.stats.FoldsStaged += int64(acc.folds)
	}
	return encodeRelayExtra(r.opts.Shard, r.opts.Level, r.opts.ID, r.opts.UpEpoch, r.upSeq,
		r.retained, r.queue, r.staged)
}

// onSnapshotCommit releases staged frames covered by the committed
// snapshot into the send queue. Frames staged after the capture (a
// concurrent fold can stage between capture and commit only via a
// later snapshot) stay staged for the next cycle.
func (r *Relay) onSnapshotCommit(extra []byte) {
	st, err := decodeRelayExtra(extra)
	if err != nil {
		return // not a relay snapshot (or corrupt): release nothing
	}
	r.fmu.Lock()
	defer r.fmu.Unlock()
	keep := r.staged[:0]
	for _, f := range r.staged {
		if f.seq <= st.UpSeq {
			r.queue = append(r.queue, f)
			r.stats.FramesCommitted++
		} else {
			keep = append(keep, f)
		}
	}
	r.staged = keep
}

// Forward runs one commit-and-drain cycle: capture a snapshot (staging
// the windows accumulated since the last one), persist it if the relay
// is durable, commit it (releasing the staged frames and advancing the
// leaves' Stable watermarks), then push every queued frame upstream
// until acked, adopting the parent's window from each ack. It is the
// relay's durability point, exactly as Flush is a node's.
func (r *Relay) Forward(ctx context.Context) error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	start := time.Now()
	err := r.commitCycle()
	if err == nil {
		err = r.drain(ctx)
	}
	r.fmu.Lock()
	if err != nil {
		r.stats.ForwardErrors++
	} else {
		r.stats.Forwards++
	}
	r.fmu.Unlock()
	if m := r.metrics; m != nil {
		m.forwardSeconds.Observe(time.Since(start).Seconds())
	}
	return err
}

// commitCycle captures, optionally persists, and commits one snapshot.
// Called with sendMu held.
func (r *Relay) commitCycle() error {
	snap, err := r.agg.Snapshot()
	if err != nil {
		return fmt.Errorf("tier: relay %s: %w", r.name, err)
	}
	if r.opts.SnapshotPath != "" {
		if err := writeFileAtomic(r.opts.SnapshotPath, snap); err != nil {
			return fmt.Errorf("tier: relay %s: %w", r.name, err)
		}
	}
	r.agg.CommitSnapshot(snap)
	return nil
}

// writeFileAtomic persists a snapshot with the tmp+fsync+rename
// discipline (mirroring stream.Aggregator.WriteSnapshot, which the
// relay cannot use because it must interleave its own commit).
func writeFileAtomic(path string, snap *stream.Snapshot) error {
	data, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// head returns the oldest queued frame, or nil.
func (r *Relay) head() *upFrame {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if len(r.queue) == 0 {
		return nil
	}
	return r.queue[0]
}

// drain pushes every queued frame upstream in order. Called with
// sendMu held.
func (r *Relay) drain(ctx context.Context) error {
	for {
		f := r.head()
		if f == nil {
			return nil
		}
		ack, err := r.push(ctx, f)
		if err != nil {
			return err
		}
		r.finishFrame(f, ack)
		r.adoptRoot(ack.Window)
	}
}

// push delivers one upward frame, redialing with backoff until acked
// or ctx expires. Called with sendMu held.
func (r *Relay) push(ctx context.Context, f *upFrame) (stream.Ack, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := sleepUp(ctx, backoffUp(r.rng, attempt, r.opts.BaseBackoff, r.opts.MaxBackoff)); err != nil {
				return stream.Ack{}, fmt.Errorf("tier: relay %s: %w (last transport error: %v)", r.name, err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return stream.Ack{}, err
		}
		c, err := r.connect(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if attempt > 0 {
			r.fmu.Lock()
			r.stats.Redials++
			r.fmu.Unlock()
		}
		r.fmu.Lock()
		f.sent = true
		folds, payload := f.folds, f.payload
		r.fmu.Unlock()
		ack, err := c.PushDelta(r.name, r.opts.UpEpoch, f.window, f.seq, folds, payload)
		if err != nil {
			r.disconnect()
			lastErr = err
			continue
		}
		return ack, nil
	}
}

// finishFrame accounts an upward ack and moves the frame from the
// queue into the retention buffer if the parent has not yet declared
// it durable.
func (r *Relay) finishFrame(f *upFrame, ack stream.Ack) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	r.noteAckLocked(ack)
	for i, q := range r.queue {
		if q == f {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			break
		}
	}
	switch {
	case ack.Err != "":
		r.stats.Rejected++
	case ack.Applied:
		r.stats.Applied++
	case ack.Status == stream.StatusDuplicate:
		r.stats.Duplicates++
	case ack.Status == stream.StatusDroppedOld:
		r.stats.Dropped++
	}
	if ack.Err == "" && r.opts.Retain > 0 && f.seq > ack.Stable {
		r.retained = append(r.retained, f)
		for len(r.retained) > r.opts.Retain {
			r.retained = r.retained[1:]
		}
	}
}

// noteAckLocked processes the parent's durability piggybacks — the
// leaf rule, one level up: a parent AggEpoch bump requeues the
// retention buffer for replay; the Stable watermark trims it.
func (r *Relay) noteAckLocked(ack stream.Ack) {
	r.stats.RootStable = ack.Stable
	if ack.AggEpoch > r.rootEpoch {
		if r.rootEpoch != 0 && len(r.retained) > 0 {
			r.queue = append(append(make([]*upFrame, 0, len(r.retained)+len(r.queue)), r.retained...), r.queue...)
			r.stats.Replayed += int64(len(r.retained))
			r.retained = nil
		}
		r.rootEpoch = ack.AggEpoch
	}
	if len(r.retained) > 0 && ack.Stable > 0 {
		keep := r.retained[:0]
		for _, f := range r.retained {
			if f.seq > ack.Stable {
				keep = append(keep, f)
			}
		}
		r.retained = keep
	}
}

// adoptRoot advances the relay's leaf-facing window clock to the
// parent's — the rotation broadcast cascading down the tree. Never
// called with fmu held (Rotate takes the aggregator mutex, and the
// established order is agg.mu → fmu).
func (r *Relay) adoptRoot(w uint64) {
	for r.agg.CurrentWindow() < w {
		r.agg.Rotate()
	}
}

// connect returns the live upstream client, dialing and re-announcing
// if needed. Called with sendMu held.
func (r *Relay) connect(ctx context.Context) (*stream.Client, error) {
	if r.client != nil {
		return r.client, nil
	}
	dctx, cancel := context.WithTimeout(ctx, r.opts.DialTimeout)
	c, err := stream.DialClient(dctx, r.opts.Upstream, r.opts.PushTimeout)
	cancel()
	if err != nil {
		return nil, err
	}
	ack, err := c.Hello(r.name, r.opts.UpEpoch)
	if err != nil {
		c.Close()
		return nil, err
	}
	if ack.Err != "" {
		c.Close()
		return nil, fmt.Errorf("tier: relay %s rejected upstream: %s", r.name, ack.Err)
	}
	r.client = c
	r.fmu.Lock()
	r.noteAckLocked(ack)
	r.fmu.Unlock()
	r.adoptRoot(ack.Window)
	return c, nil
}

// connectAndAdopt performs the initial upstream handshake.
func (r *Relay) connectAndAdopt(ctx context.Context) error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	_, err := r.connect(ctx)
	return err
}

// disconnect poisons the upstream connection. Called with sendMu held.
func (r *Relay) disconnect() {
	if r.client != nil {
		r.client.Close()
		r.client = nil
	}
}

// Sync runs an upstream hello round-trip — adopting the parent's
// current window and processing its durability piggybacks — and drains
// any queued upward frames (a restored relay's replay runs here).
func (r *Relay) Sync(ctx context.Context) error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := sleepUp(ctx, backoffUp(r.rng, attempt, r.opts.BaseBackoff, r.opts.MaxBackoff)); err != nil {
				return fmt.Errorf("tier: relay %s: %w (last transport error: %v)", r.name, err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := r.connect(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		ack, err := c.Hello(r.name, r.opts.UpEpoch)
		if err != nil {
			r.disconnect()
			lastErr = err
			continue
		}
		if ack.Err != "" {
			return fmt.Errorf("tier: relay %s rejected upstream: %s", r.name, ack.Err)
		}
		r.fmu.Lock()
		r.noteAckLocked(ack)
		r.fmu.Unlock()
		r.adoptRoot(ack.Window)
		return r.drain(ctx)
	}
}

// Close shuts the relay down gracefully: drain and stop the leaf-facing
// aggregator, run a final Forward so everything folded is staged,
// committed and pushed upward, then release the upstream connection.
func (r *Relay) Close(ctx context.Context) error {
	aggErr := r.agg.Close(ctx)
	fwdErr := r.Forward(ctx)
	r.sendMu.Lock()
	r.disconnect()
	r.sendMu.Unlock()
	if aggErr != nil {
		return aggErr
	}
	return fwdErr
}

// Kill is a crash for tests: stop the leaf-facing aggregator and drop
// the upstream connection with NO final forward and NO snapshot —
// everything since the last Forward dies with the process image, which
// is exactly what RestoreRelay plus leaf replay must recover from.
func (r *Relay) Kill(ctx context.Context) error {
	err := r.agg.Close(ctx) // SnapshotPath is empty: no snapshot happens
	r.sendMu.Lock()
	r.disconnect()
	r.sendMu.Unlock()
	return err
}

// relayExtraState is the decoded Snapshot.Extra of a relay.
type relayExtraState struct {
	Shard, Level int
	ID           string
	UpEpoch      uint64
	UpSeq        uint64
	Frames       []*upFrame
	snap         *stream.Snapshot // carrier, set by RestoreRelay
}

// The Extra blob layout (little-endian; integrity comes from the outer
// snapshot CRC):
//
//	magic[4]="CSTR" ver:u16 shard:u32 level:u32 idLen:u16 id
//	upEpoch:u64 upSeq:u64 frameCount:u32
//	{ window:u64 seq:u64 folds:u32 payloadLen:u32 payload }...
//
// Frames appear in strictly ascending seq order: retained, then
// queued, then staged — which is replay order.
var relayExtraMagic = [4]byte{'C', 'S', 'T', 'R'}

const relayExtraVersion uint16 = 1

func encodeRelayExtra(shard, level int, id string, upEpoch, upSeq uint64, groups ...[]*upFrame) ([]byte, error) {
	if len(id) > 0xffff {
		return nil, fmt.Errorf("tier: relay id %q too long to snapshot", id[:32]+"…")
	}
	b := make([]byte, 0, 64)
	b = append(b, relayExtraMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, relayExtraVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(shard))
	b = binary.LittleEndian.AppendUint32(b, uint32(level))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(id)))
	b = append(b, id...)
	b = binary.LittleEndian.AppendUint64(b, upEpoch)
	b = binary.LittleEndian.AppendUint64(b, upSeq)
	count := 0
	for _, g := range groups {
		count += len(g)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(count))
	prev := uint64(0)
	for _, g := range groups {
		for _, f := range g {
			if f.seq <= prev {
				return nil, fmt.Errorf("tier: relay frame seq %d out of order after %d", f.seq, prev)
			}
			prev = f.seq
			b = binary.LittleEndian.AppendUint64(b, f.window)
			b = binary.LittleEndian.AppendUint64(b, f.seq)
			b = binary.LittleEndian.AppendUint32(b, f.folds)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(f.payload)))
			b = append(b, f.payload...)
		}
	}
	return b, nil
}

func decodeRelayExtra(data []byte) (*relayExtraState, error) {
	r := &extraReader{b: data}
	magic := r.take(4)
	if r.err == nil && string(magic) != string(relayExtraMagic[:]) {
		return nil, fmt.Errorf("tier: bad relay extra magic %q", magic)
	}
	if v := r.u16(); r.err == nil && v != relayExtraVersion {
		return nil, fmt.Errorf("tier: relay extra version %d (supported: %d)", v, relayExtraVersion)
	}
	st := &relayExtraState{
		Shard: int(r.u32()),
		Level: int(r.u32()),
	}
	st.ID = string(r.take(int(r.u16())))
	st.UpEpoch = r.u64()
	st.UpSeq = r.u64()
	count := r.u32()
	prev := uint64(0)
	for i := uint32(0); i < count && r.err == nil; i++ {
		f := &upFrame{
			window: r.u64(),
			seq:    r.u64(),
			folds:  r.u32(),
		}
		payload := r.take(int(r.u32()))
		if r.err != nil {
			break
		}
		if f.seq <= prev || f.seq > st.UpSeq {
			return nil, fmt.Errorf("tier: relay extra frame seq %d out of order (prev %d, upSeq %d)", f.seq, prev, st.UpSeq)
		}
		prev = f.seq
		f.payload = append([]byte(nil), payload...)
		st.Frames = append(st.Frames, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("tier: relay extra has %d trailing bytes", len(r.b))
	}
	return st, nil
}

// extraReader is a bounds-checked little-endian cursor (the snapshot
// codec's reader, local to this package).
type extraReader struct {
	b   []byte
	err error
}

func (r *extraReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.err = errors.New("tier: relay extra truncated")
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *extraReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *extraReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *extraReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// sleepUp and backoffUp mirror the stream package's context-aware sleep
// and equal-jitter backoff for the upstream push loop.
func sleepUp(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func backoffUp(rng *xrand.RNG, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + int64(rng.Uint64()%uint64(half+1)))
}
