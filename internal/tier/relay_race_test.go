package tier

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"csoutlier/internal/stream"
)

// TestRelayForwardRace runs leaf folds, upward forwards (each of which
// snapshots the relay), root rotations and stats scrapes concurrently
// under the race detector. The point is the locking seams: OnApplied
// fires under the aggregator's mutex and takes fmu; snapshotExtra
// drains unstable under the same ordering; Forward and Sync contend on
// sendMu; Stats and the metrics scraper read everything from outside.
func TestRelayForwardRace(t *testing.T) {
	if testing.Short() {
		t.Skip("timed concurrency soak")
	}
	sk := tierSketcher(t, 64, 32, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	root, rootAddr := serveRoot(t, sk, stream.AggregatorOptions{Windows: 8})
	relay, err := NewRelay(ctx, sk, RelayOptions{
		ID:           "r0",
		Upstream:     rootAddr,
		SnapshotPath: filepath.Join(t.TempDir(), "relay.snap"),
		Agg:          stream.AggregatorOptions{Windows: 8},
	})
	if err != nil {
		t.Fatalf("NewRelay: %v", err)
	}
	relayAddr := serveRelay(t, relay)

	const L = 3
	leaves := make([]*stream.Node, L)
	for l := range leaves {
		n, err := stream.Dial(ctx, relayAddr, sk, fmt.Sprintf("node%02d", l), stream.NodeOptions{})
		if err != nil {
			t.Fatalf("Dial leaf %d: %v", l, err)
		}
		leaves[l] = n
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Leaf pushers: fold deltas into the relay as fast as the
	// stop-and-wait protocol allows.
	for l := range leaves {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			leaf := leaves[l]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("key%03d", (i*7+l)%64)
				if err := leaf.Observe(key, float64(1+l)); err != nil {
					t.Errorf("leaf %d observe: %v", l, err)
					return
				}
				if err := leaf.Flush(ctx); err != nil {
					t.Errorf("leaf %d flush: %v", l, err)
					return
				}
			}
		}(l)
	}

	// Forwarder: snapshot + commit + drain upward, continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := relay.Forward(ctx); err != nil {
				t.Errorf("Forward: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Rotator: advance the root clock and let the relay adopt it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			root.Rotate()
			if err := relay.Sync(ctx); err != nil {
				t.Errorf("relay sync: %v", err)
				return
			}
		}
	}()

	// Readers: stats and regional window snapshots from outside.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = relay.Stats()
			_ = root.Stats()
			if _, err := relay.Aggregator().WindowSketch(0); err != nil {
				t.Errorf("relay window: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	for l, leaf := range leaves {
		if err := leaf.Close(ctx); err != nil {
			t.Fatalf("leaf %d close: %v", l, err)
		}
	}
	if err := relay.Close(ctx); err != nil {
		t.Fatalf("relay close: %v", err)
	}

	st := relay.Stats()
	if st.Forwards == 0 || st.FramesCommitted == 0 {
		t.Fatalf("soak did nothing: %+v", st)
	}
	rs := root.Stats()
	if rs.Applied == 0 {
		t.Fatalf("root applied nothing: %+v", rs)
	}
	// Close flushed and forwarded everything, so the conservation
	// invariant holds at quiescence even after concurrent rotations.
	var captured int64
	for _, n := range leaves {
		captured += n.Stats().Captured
	}
	if rs.Applied+rs.ShedFolds != captured {
		t.Fatalf("conservation at quiescence: root applied %d + shed %d != captures %d",
			rs.Applied, rs.ShedFolds, captured)
	}
}
