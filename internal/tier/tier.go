// Package tier composes the push pipeline (internal/stream) into a
// hierarchical, sharded aggregation topology — the paper's own
// geo-distributed argument taken to its structural conclusion. Because
// sketches are linear (y = Φ·x, so Φ·(x₁+x₂) = Φ·x₁ + Φ·x₂), a tree of
// aggregators computes exactly the flat fold: a Relay accepts node
// pushes on its own listener, folds them into its regional window ring,
// and forwards the *folded* per-window sketch upward as a single delta
// frame — the root's windows stay bit-identical to what a single global
// aggregator would hold, while its fan-in drops from every node to one
// frame per (relay, window, forward).
//
// Key-space sharding is the orthogonal scale axis: a ShardMap splits
// the global dictionary into version-stamped contiguous key ranges,
// each shard with its own measurement consensus (Spec + derived seed),
// so N can grow past what one Φ row-block handles. A Router fans span
// outlier queries and point-query watch lists out across the shard
// roots and merges the answers.
//
// Exactly-once semantics extend through the extra hop unchanged in
// mechanism: an upward frame is tagged (relay-identity, upEpoch,
// window, upSeq) where the identity string carries (shard, tier) — see
// FrameID — so the root's ordinary per-(node, epoch) dedup books refuse
// upward duplicates exactly as they refuse leaf duplicates. A relay
// restart bumps the upward epoch only when volatile; a durable relay
// restores its upward frame state from Snapshot.Extra and replays
// byte-identical frames the root dedups. See Relay for the staging
// discipline that makes "leaf frame folded" and "upward frame durable"
// a single atomic event.
package tier

import (
	"fmt"
	"sort"

	"csoutlier"
	"csoutlier/internal/xrand"
)

// shardSeedLabel derives per-shard consensus seeds from Spec.BaseSeed.
const shardSeedLabel = 0x7e1a9b4dc2f08e53

// FrameID is the upward identity a relay announces to its parent:
// the ordinary node-identity string of the push protocol, prefixed
// with the (shard, tier-level) coordinates. The parent's dedup books
// need no schema change — the coordinates ride inside the name, so
// frames from different shards or levels can never collide in one
// book, and a frame misrouted to the wrong shard's tree is also
// rejected by the shard's seed consensus in the sketch codec.
func FrameID(shard, level int, id string) string {
	return fmt.Sprintf("s%02d.t%d.%s", shard, level, id)
}

// Spec is the per-shard measurement consensus template: csoutlier
// Config minus the seed, which each shard derives from BaseSeed so no
// two shards share a Φ (a cross-shard misroute then fails codec
// validation instead of folding garbage).
type Spec struct {
	// M is the per-shard sketch length.
	M int
	// BaseSeed seeds the per-shard consensus seed derivation.
	BaseSeed uint64
	// MaxIterations, Ensemble, SparseD, Depth, Solver pass through to
	// csoutlier.Config per shard.
	MaxIterations int
	Ensemble      csoutlier.Ensemble
	SparseD       int
	Depth         int
	Solver        csoutlier.Solver
}

// Shard is one contiguous key range of a ShardMap.
type Shard struct {
	Index int
	// Keys is the shard's sorted key range — a sub-slice of the map's
	// sorted global key space; do not mutate.
	Keys []string
	// Seed is the shard's derived consensus seed.
	Seed uint64
}

// ShardMap is a version-stamped partition of the global dictionary
// into contiguous key ranges. All parties of one deployment (leaf
// nodes, relays, roots, routers) must build it from the same key set,
// shard count, spec and version — Route is a pure function of the
// sorted key space, so they all agree without coordination.
type ShardMap struct {
	version uint64
	spec    Spec
	keys    []string // global key space, sorted
	shards  []Shard
	lo      []string // lo[i] = first key of shard i
}

// NewShardMap partitions keys into `shards` near-equal contiguous
// ranges of the sorted key space and derives each shard's consensus
// seed from spec.BaseSeed.
func NewShardMap(keys []string, shards int, spec Spec, version uint64) (*ShardMap, error) {
	if shards < 1 {
		return nil, fmt.Errorf("tier: shard count %d < 1", shards)
	}
	if len(keys) < shards {
		return nil, fmt.Errorf("tier: %d keys cannot fill %d shards", len(keys), shards)
	}
	if spec.M < 1 {
		return nil, fmt.Errorf("tier: spec M %d < 1", spec.M)
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("tier: duplicate key %q", sorted[i])
		}
	}
	m := &ShardMap{
		version: version,
		spec:    spec,
		keys:    sorted,
		shards:  make([]Shard, shards),
		lo:      make([]string, shards),
	}
	rng := xrand.New(spec.BaseSeed)
	for i := 0; i < shards; i++ {
		start := i * len(sorted) / shards
		end := (i + 1) * len(sorted) / shards
		m.shards[i] = Shard{
			Index: i,
			Keys:  sorted[start:end:end],
			Seed:  rng.Split(shardSeedLabel ^ uint64(i)).Uint64(),
		}
		m.lo[i] = sorted[start]
	}
	return m, nil
}

// Version returns the partition's version stamp.
func (m *ShardMap) Version() uint64 { return m.version }

// Spec returns the per-shard consensus template.
func (m *ShardMap) Spec() Spec { return m.spec }

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return len(m.shards) }

// Shard returns shard i.
func (m *ShardMap) Shard(i int) Shard { return m.shards[i] }

// Keys returns the sorted global key space; do not mutate.
func (m *ShardMap) Keys() []string { return m.keys }

// Route returns the index of the shard owning key. Keys outside the
// dictionary still route (to the range they would sort into); the
// shard's sketcher rejects them, exactly as a flat deployment would.
func (m *ShardMap) Route(key string) int {
	// First shard whose range starts after key, minus one.
	i := sort.Search(len(m.lo), func(i int) bool { return m.lo[i] > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Sketcher builds shard i's measurement consensus.
func (m *ShardMap) Sketcher(i int) (*csoutlier.Sketcher, error) {
	sh := m.shards[i]
	sk, err := csoutlier.NewSketcher(sh.Keys, csoutlier.Config{
		M:             m.spec.M,
		Seed:          sh.Seed,
		MaxIterations: m.spec.MaxIterations,
		Ensemble:      m.spec.Ensemble,
		SparseD:       m.spec.SparseD,
		Depth:         m.spec.Depth,
		Solver:        m.spec.Solver,
	})
	if err != nil {
		return nil, fmt.Errorf("tier: shard %d sketcher: %w", i, err)
	}
	return sk, nil
}

// Sketchers builds every shard's measurement consensus, in shard order.
func (m *ShardMap) Sketchers() ([]*csoutlier.Sketcher, error) {
	out := make([]*csoutlier.Sketcher, len(m.shards))
	for i := range m.shards {
		sk, err := m.Sketcher(i)
		if err != nil {
			return nil, err
		}
		out[i] = sk
	}
	return out, nil
}
