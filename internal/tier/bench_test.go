package tier

import (
	"context"
	"net"
	"testing"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
)

func benchDelta(b *testing.B, sk *csoutlier.Sketcher) []byte {
	b.Helper()
	pairs := make(map[string]float64, len(sk.Keys()))
	for i, key := range sk.Keys() {
		pairs[key] = float64(i%17) + 0.5
	}
	s, err := sk.SketchPairs(pairs)
	if err != nil {
		b.Fatal(err)
	}
	payload, err := s.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	return payload
}

// BenchmarkTierFoldFlat is the baseline for the EXPERIMENTS pr9 table:
// one leaf pushing delta frames straight at the root over loopback TCP.
// Every leaf frame is a root ingest — fan-in 1:1.
func BenchmarkTierFoldFlat(b *testing.B) {
	sk, err := csoutlier.NewSketcher(testKeys(1024), csoutlier.Config{M: 256, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	root, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer root.Close(ctx)
	addr := benchServe(b, root.Serve)
	c, err := stream.DialClient(ctx, addr, 10*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("bench", 1); err != nil {
		b.Fatal(err)
	}
	payload := benchDelta(b, sk)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ack, err := c.PushDelta("bench", 1, 1, uint64(i+1), 1, payload)
		if err != nil {
			b.Fatal(err)
		}
		if !ack.Applied {
			b.Fatalf("frame %d not applied: %+v", i, ack)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(root.Stats().Frames)/float64(b.N), "root-frames/frame")
}

// BenchmarkTierFoldTwoTier pushes the same frames through a regional
// relay that forwards the folded window upward every forwardEvery
// frames: the root ingests one frame per batch instead of one per leaf
// frame. The root-frames/frame metric is the measured fan-in reduction.
func BenchmarkTierFoldTwoTier(b *testing.B) {
	const forwardEvery = 64
	sk, err := csoutlier.NewSketcher(testKeys(1024), csoutlier.Config{M: 256, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	root, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer root.Close(ctx)
	rootAddr := benchServe(b, root.Serve)
	relay, err := NewRelay(ctx, sk, RelayOptions{ID: "r0", Upstream: rootAddr})
	if err != nil {
		b.Fatal(err)
	}
	defer relay.Close(ctx)
	relayAddr := benchServe(b, relay.Serve)
	c, err := stream.DialClient(ctx, relayAddr, 10*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("bench", 1); err != nil {
		b.Fatal(err)
	}
	payload := benchDelta(b, sk)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ack, err := c.PushDelta("bench", 1, 1, uint64(i+1), 1, payload)
		if err != nil {
			b.Fatal(err)
		}
		if !ack.Applied {
			b.Fatalf("frame %d not applied: %+v", i, ack)
		}
		if (i+1)%forwardEvery == 0 {
			if err := relay.Forward(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := relay.Forward(ctx); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(root.Stats().Frames)/float64(b.N), "root-frames/frame")
}

// benchServe starts a push listener on loopback for a Serve loop.
func benchServe(b *testing.B, serve func(net.Listener) error) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go serve(ln)
	return ln.Addr().String()
}
