package tier

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
)

// SpanQuerier answers span outlier queries — satisfied by
// *stream.Aggregator (the in-process root of a shard's tree).
type SpanQuerier interface {
	Outliers(fromAge, toAge, k int) (*csoutlier.Report, error)
}

// PointQuerier answers point-query watch lists — satisfied by
// *stream.Aggregator in-process and by *RemotePoint over the wire.
type PointQuerier interface {
	PointQueryMulti(fromAge, toAge int, keys []string, threshold float64) ([]csoutlier.PointAnswer, error)
}

// Target is one shard's query endpoints.
type Target struct {
	Span  SpanQuerier
	Point PointQuerier
}

// Router fans queries out across the shard roots of a sharded
// deployment and merges the answers into the flat-deployment shape: a
// span query returns one global top-k Report, a point query answers a
// mixed-shard watch list in request order. Merging is exact because
// sharding is a partition — each key's value lives in exactly one
// shard's sketch, so a shard's answer for its own keys IS the global
// answer for them; the router only has to rank and reassemble.
type Router struct {
	m       *ShardMap
	targets []Target
}

// NewRouter builds a router over the shard roots, in shard order.
func NewRouter(m *ShardMap, targets []Target) (*Router, error) {
	if len(targets) != m.Shards() {
		return nil, fmt.Errorf("tier: router needs %d targets, got %d", m.Shards(), len(targets))
	}
	return &Router{m: m, targets: targets}, nil
}

// Outliers answers the global top-k span query: fan out to every shard
// (per-shard k capped at the shard's key count — a global top-k holds
// at most k keys per shard, so per-shard top-k majorizes it), then
// rank the union by divergence from the merged mode. The merged mode
// is the key-count-weighted mean of the shard modes: when every
// shard's restriction of the data keeps the global majority value (the
// paper's regime — outliers are sparse), every shard recovers the same
// mode and the weighted mean is exactly it.
func (r *Router) Outliers(fromAge, toAge, k int) (*csoutlier.Report, error) {
	if k < 1 {
		return nil, fmt.Errorf("tier: k must be positive, got %d", k)
	}
	reports := make([]*csoutlier.Report, len(r.targets))
	errs := make([]error, len(r.targets))
	var wg sync.WaitGroup
	for i := range r.targets {
		sk := k
		if n := len(r.m.Shard(i).Keys); sk > n {
			sk = n
		}
		wg.Add(1)
		go func(i, sk int) {
			defer wg.Done()
			reports[i], errs[i] = r.targets[i].Span.Outliers(fromAge, toAge, sk)
		}(i, sk)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	merged := &csoutlier.Report{}
	var modeSum, weight float64
	var residualSq float64
	for i, rep := range reports {
		w := float64(len(r.m.Shard(i).Keys))
		modeSum += rep.Mode * w
		weight += w
		merged.Iterations += rep.Iterations
		residualSq += rep.Residual * rep.Residual
		merged.Outliers = append(merged.Outliers, rep.Outliers...)
	}
	merged.Mode = modeSum / weight
	merged.Residual = math.Sqrt(residualSq)
	// Rank the union the way a flat report is ranked: divergence from
	// the (merged) mode descending, key ascending on ties — the shard
	// ranges are contiguous in sorted key order, so key order is global
	// dictionary-index order.
	sort.SliceStable(merged.Outliers, func(a, b int) bool {
		da := math.Abs(merged.Outliers[a].Value - merged.Mode)
		db := math.Abs(merged.Outliers[b].Value - merged.Mode)
		if da != db {
			return da > db
		}
		return merged.Outliers[a].Key < merged.Outliers[b].Key
	})
	if len(merged.Outliers) > k {
		merged.Outliers = merged.Outliers[:k]
	}
	return merged, nil
}

// PointQueryMulti answers a mixed-shard watch list: keys partition by
// Route, each shard answers its own under one generation check, and
// the answers reassemble in request order.
func (r *Router) PointQueryMulti(fromAge, toAge int, keys []string, threshold float64) ([]csoutlier.PointAnswer, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	byShard := make([][]string, len(r.targets))
	slots := make([][]int, len(r.targets))
	for pos, key := range keys {
		s := r.m.Route(key)
		byShard[s] = append(byShard[s], key)
		slots[s] = append(slots[s], pos)
	}
	out := make([]csoutlier.PointAnswer, len(keys))
	errs := make([]error, len(r.targets))
	var wg sync.WaitGroup
	for i := range r.targets {
		if len(byShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers, err := r.targets[i].Point.PointQueryMulti(fromAge, toAge, byShard[i], threshold)
			if err != nil {
				errs[i] = fmt.Errorf("tier: shard %d: %w", i, err)
				return
			}
			for j, pos := range slots[i] {
				out[pos] = answers[j]
			}
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// PointQuery answers a single key — the watch list of one.
func (r *Router) PointQuery(fromAge, toAge int, key string, threshold float64) (csoutlier.PointAnswer, error) {
	answers, err := r.PointQueryMulti(fromAge, toAge, []string{key}, threshold)
	if err != nil {
		return csoutlier.PointAnswer{}, err
	}
	return answers[0], nil
}

// RemotePoint is a PointQuerier over the push protocol's query RPC: a
// lazily-dialed connection to a shard root's push listener, with one
// transparent redial per query (a root restart between polls is
// routine; a second consecutive transport failure surfaces).
type RemotePoint struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	c  *stream.Client
}

// NewRemotePoint builds a remote point-querier for a push listener
// address. timeout bounds each dial and each query exchange.
func NewRemotePoint(addr string, timeout time.Duration) *RemotePoint {
	return &RemotePoint{addr: addr, timeout: timeout}
}

// PointQueryMulti sends the watch list over the wire.
func (p *RemotePoint) PointQueryMulti(fromAge, toAge int, keys []string, threshold float64) ([]csoutlier.PointAnswer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if p.c == nil {
			ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
			c, err := stream.DialClient(ctx, p.addr, p.timeout)
			cancel()
			if err != nil {
				return nil, err
			}
			p.c = c
		}
		answers, err := p.c.PointQuery(fromAge, toAge, keys, threshold)
		if err != nil {
			var rej *stream.QueryRejectedError
			if errors.As(err, &rej) {
				return nil, err // healthy connection, query-level rejection
			}
			p.c.Close()
			p.c = nil
			if attempt == 0 {
				continue // one transparent redial
			}
			return nil, err
		}
		return answers, nil
	}
}

// Close releases the connection, if any.
func (p *RemotePoint) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		err := p.c.Close()
		p.c = nil
		return err
	}
	return nil
}
