package tier

import (
	"fmt"
	"sort"
	"testing"

	"csoutlier"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%03d", i)
	}
	return keys
}

func TestShardMapPartition(t *testing.T) {
	keys := testKeys(100)
	// Feed the keys shuffled: the map must sort them itself so every
	// party derives the same partition regardless of input order.
	shuffled := append([]string(nil), keys...)
	for i := range shuffled {
		j := (i * 37) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	m, err := NewShardMap(shuffled, 3, Spec{M: 16, BaseSeed: 42}, 7)
	if err != nil {
		t.Fatalf("NewShardMap: %v", err)
	}
	if m.Version() != 7 {
		t.Fatalf("Version = %d, want 7", m.Version())
	}
	if m.Shards() != 3 {
		t.Fatalf("Shards = %d, want 3", m.Shards())
	}
	total := 0
	seeds := map[uint64]bool{}
	var reassembled []string
	for i := 0; i < m.Shards(); i++ {
		sh := m.Shard(i)
		if sh.Index != i {
			t.Fatalf("shard %d Index = %d", i, sh.Index)
		}
		if len(sh.Keys) < 33 || len(sh.Keys) > 34 {
			t.Fatalf("shard %d has %d keys, want near-equal split of 100/3", i, len(sh.Keys))
		}
		if !sort.StringsAreSorted(sh.Keys) {
			t.Fatalf("shard %d keys not sorted", i)
		}
		if seeds[sh.Seed] {
			t.Fatalf("shard %d reuses a sibling's seed %d", i, sh.Seed)
		}
		seeds[sh.Seed] = true
		total += len(sh.Keys)
		reassembled = append(reassembled, sh.Keys...)
		for _, key := range sh.Keys {
			if got := m.Route(key); got != i {
				t.Fatalf("Route(%q) = %d, want %d", key, got, i)
			}
		}
	}
	if total != 100 {
		t.Fatalf("shards cover %d keys, want 100", total)
	}
	// Contiguity: concatenating shard ranges in order is the sorted
	// global key space.
	for i, key := range reassembled {
		if key != keys[i] {
			t.Fatalf("reassembled[%d] = %q, want %q (ranges not contiguous)", i, key, keys[i])
		}
	}
	// Determinism: an identically-configured map derives identical seeds.
	m2, err := NewShardMap(keys, 3, Spec{M: 16, BaseSeed: 42}, 7)
	if err != nil {
		t.Fatalf("NewShardMap (sorted input): %v", err)
	}
	for i := 0; i < 3; i++ {
		if m.Shard(i).Seed != m2.Shard(i).Seed {
			t.Fatalf("shard %d seed differs between identically-configured maps", i)
		}
	}
}

func TestShardMapRouteOutOfDictionary(t *testing.T) {
	m, err := NewShardMap(testKeys(10), 2, Spec{M: 4, BaseSeed: 1}, 1)
	if err != nil {
		t.Fatalf("NewShardMap: %v", err)
	}
	// Below the first key routes to shard 0; above the last, to the
	// final shard. (The shard's sketcher then rejects the unknown key,
	// exactly as a flat deployment's would.)
	if got := m.Route("aaa"); got != 0 {
		t.Fatalf("Route(below range) = %d, want 0", got)
	}
	if got := m.Route("zzz"); got != 1 {
		t.Fatalf("Route(above range) = %d, want 1", got)
	}
}

func TestShardMapRejects(t *testing.T) {
	if _, err := NewShardMap(testKeys(4), 0, Spec{M: 2, BaseSeed: 1}, 1); err == nil {
		t.Fatal("accepted 0 shards")
	}
	if _, err := NewShardMap(testKeys(2), 3, Spec{M: 2, BaseSeed: 1}, 1); err == nil {
		t.Fatal("accepted more shards than keys")
	}
	if _, err := NewShardMap(testKeys(4), 2, Spec{BaseSeed: 1}, 1); err == nil {
		t.Fatal("accepted M = 0")
	}
	if _, err := NewShardMap([]string{"a", "b", "a"}, 2, Spec{M: 2, BaseSeed: 1}, 1); err == nil {
		t.Fatal("accepted duplicate keys")
	}
}

func TestShardMapSketchers(t *testing.T) {
	m, err := NewShardMap(testKeys(64), 2, Spec{M: 16, BaseSeed: 99, Depth: 4, Ensemble: csoutlier.CountSketch}, 1)
	if err != nil {
		t.Fatalf("NewShardMap: %v", err)
	}
	sks, err := m.Sketchers()
	if err != nil {
		t.Fatalf("Sketchers: %v", err)
	}
	if len(sks) != 2 {
		t.Fatalf("got %d sketchers, want 2", len(sks))
	}
	for i, sk := range sks {
		if got := len(sk.Keys()); got != 32 {
			t.Fatalf("shard %d sketcher has %d keys, want 32", i, got)
		}
		if !sk.SupportsPointQuery() {
			t.Fatalf("shard %d sketcher lost the count-sketch point path", i)
		}
	}
	// Cross-shard consensus mismatch: a delta measured under shard 0's
	// seed must be rejected by shard 1's sketcher — the codec-level
	// guard behind "a misrouted frame can never corrupt the aggregate".
	u := sks[0].NewUpdater()
	if err := u.Observe(m.Shard(0).Keys[0], 3.5); err != nil {
		t.Fatalf("observe: %v", err)
	}
	delta := sks[0].ZeroSketch()
	if _, err := u.DrainInto(delta); err != nil {
		t.Fatalf("drain: %v", err)
	}
	raw, err := delta.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := sks[1].UnmarshalSketch(raw); err == nil {
		t.Fatal("shard 1 accepted a shard-0 sketch (seed consensus not enforced)")
	}
}

func TestFrameID(t *testing.T) {
	if got := FrameID(3, 1, "relayA"); got != "s03.t1.relayA" {
		t.Fatalf("FrameID = %q", got)
	}
	if FrameID(0, 1, "x") == FrameID(1, 1, "x") || FrameID(0, 1, "x") == FrameID(0, 2, "x") {
		t.Fatal("FrameID collides across shard or level")
	}
}
