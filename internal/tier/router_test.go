package tier

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
)

// fakeSpan is a canned SpanQuerier that records the k it was asked for.
type fakeSpan struct {
	rep   *csoutlier.Report
	err   error
	asked int
}

func (f *fakeSpan) Outliers(fromAge, toAge, k int) (*csoutlier.Report, error) {
	f.asked = k
	return f.rep, f.err
}

// TestRouterMergeSemantics pins the merge arithmetic against canned
// shard reports: per-shard k capping, key-count-weighted mode,
// divergence ranking with the key-order tie-break, truncation, summed
// iterations and root-sum-square residual.
func TestRouterMergeSemantics(t *testing.T) {
	m, err := NewShardMap(testKeys(10), 2, Spec{M: 4, BaseSeed: 1}, 1)
	if err != nil {
		t.Fatalf("NewShardMap: %v", err)
	}
	s0 := &fakeSpan{rep: &csoutlier.Report{
		Outliers: []csoutlier.Outlier{{Key: "key000", Value: 90}, {Key: "key003", Value: 16}},
		Mode:     10, Iterations: 3, Residual: 3,
	}}
	s1 := &fakeSpan{rep: &csoutlier.Report{
		Outliers: []csoutlier.Outlier{{Key: "key007", Value: -70}, {Key: "key009", Value: 4}},
		Mode:     10, Iterations: 4, Residual: 4,
	}}
	r, err := NewRouter(m, []Target{{Span: s0}, {Span: s1}})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	rep, err := r.Outliers(0, 0, 7)
	if err != nil {
		t.Fatalf("Outliers: %v", err)
	}
	// 10 keys over 2 shards = 5 each: the per-shard k is capped at 5.
	if s0.asked != 5 || s1.asked != 5 {
		t.Fatalf("per-shard k = %d/%d, want 5/5", s0.asked, s1.asked)
	}
	if rep.Mode != 10 {
		t.Fatalf("merged mode = %v, want 10", rep.Mode)
	}
	if rep.Iterations != 7 {
		t.Fatalf("merged iterations = %d, want 7", rep.Iterations)
	}
	if rep.Residual != 5 { // sqrt(3² + 4²)
		t.Fatalf("merged residual = %v, want 5", rep.Residual)
	}
	// Divergences from mode 10: key000 → 80, key007 → 80, key003 → 6,
	// key009 → 6. Ties break by key (= global dictionary order).
	wantKeys := []string{"key000", "key007", "key003", "key009"}
	if len(rep.Outliers) != len(wantKeys) {
		t.Fatalf("merged %d outliers, want %d", len(rep.Outliers), len(wantKeys))
	}
	for i, want := range wantKeys {
		if rep.Outliers[i].Key != want {
			t.Fatalf("rank %d = %q, want %q (full: %+v)", i, rep.Outliers[i].Key, want, rep.Outliers)
		}
	}
	// Truncation to k.
	rep, err = r.Outliers(0, 0, 2)
	if err != nil {
		t.Fatalf("Outliers k=2: %v", err)
	}
	if len(rep.Outliers) != 2 || rep.Outliers[0].Key != "key000" || rep.Outliers[1].Key != "key007" {
		t.Fatalf("top-2 = %+v", rep.Outliers)
	}
	if _, err := r.Outliers(0, 0, 0); err == nil {
		t.Fatal("accepted k = 0")
	}
	// A shard error fails the whole query, attributed to the shard.
	s1.err = errors.New("boom")
	if _, err := r.Outliers(0, 0, 2); err == nil {
		t.Fatal("shard error swallowed")
	}
}

// shardedFixture is a live 2-shard deployment: per-shard count-sketch
// aggregators on loopback listeners, filled with a uniform background
// and planted outliers through a ShardedNode.
type shardedFixture struct {
	m     *ShardMap
	aggs  []*stream.Aggregator
	addrs []string
}

const (
	fixtureMode = 100.0
	fixtureN    = 512
)

// fixtureOutliers maps planted keys to their deviation from the mode.
// key010 lands in shard 0 (keys 0–255); key300 and key450 in shard 1.
var fixtureOutliers = map[string]float64{
	"key010": 7000,
	"key300": -6000,
	"key450": 5000,
}

func buildShardedFixture(t *testing.T) shardedFixture {
	t.Helper()
	m, err := NewShardMap(testKeys(fixtureN), 2, Spec{
		M: 210, BaseSeed: 77, Ensemble: csoutlier.CountSketch, Depth: 7,
	}, 1)
	if err != nil {
		t.Fatalf("NewShardMap: %v", err)
	}
	sks, err := m.Sketchers()
	if err != nil {
		t.Fatalf("Sketchers: %v", err)
	}
	fx := shardedFixture{m: m}
	for i := range sks {
		agg, addr := serveRoot(t, sks[i], stream.AggregatorOptions{Windows: 4})
		fx.aggs = append(fx.aggs, agg)
		fx.addrs = append(fx.addrs, addr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sn, err := DialSharded(ctx, m, sks, fx.addrs, "node00", stream.NodeOptions{})
	if err != nil {
		t.Fatalf("DialSharded: %v", err)
	}
	for i := 0; i < fixtureN; i++ {
		key := fmt.Sprintf("key%03d", i)
		v := fixtureMode + fixtureOutliers[key]
		if err := sn.Observe(key, v); err != nil {
			t.Fatalf("observe %s: %v", key, err)
		}
	}
	if err := sn.Close(ctx); err != nil {
		t.Fatalf("close sharded node: %v", err)
	}
	return fx
}

func checkFixtureAnswers(t *testing.T, r *Router) {
	t.Helper()
	// Global top-3 span query across both shards, ranked by divergence.
	rep, err := r.Outliers(0, 0, 3)
	if err != nil {
		t.Fatalf("Outliers: %v", err)
	}
	if math.Abs(rep.Mode-fixtureMode) > 1e-6*fixtureMode {
		t.Fatalf("merged mode = %v, want ~%v", rep.Mode, fixtureMode)
	}
	wantRank := []string{"key010", "key300", "key450"}
	if len(rep.Outliers) != 3 {
		t.Fatalf("got %d outliers, want 3: %+v", len(rep.Outliers), rep.Outliers)
	}
	for i, key := range wantRank {
		got := rep.Outliers[i]
		if got.Key != key {
			t.Fatalf("rank %d = %q, want %q (full: %+v)", i, got.Key, key, rep.Outliers)
		}
		want := fixtureMode + fixtureOutliers[key]
		if math.Abs(got.Value-want) > 1e-6*math.Abs(want) {
			t.Fatalf("%s value = %v, want %v", key, got.Value, want)
		}
	}
	// A mixed-shard watch list answers in request order.
	watch := []string{"key300", "key010", "key000", "key450", "key511"}
	answers, err := r.PointQueryMulti(0, 0, watch, 1000)
	if err != nil {
		t.Fatalf("PointQueryMulti: %v", err)
	}
	if len(answers) != len(watch) {
		t.Fatalf("got %d answers for %d keys", len(answers), len(watch))
	}
	for i, key := range watch {
		dev := fixtureOutliers[key]
		want := fixtureMode + dev
		ans := answers[i]
		if math.Abs(ans.Value-want) > 1e-6*math.Abs(want) {
			t.Fatalf("%s value = %v, want %v", key, ans.Value, want)
		}
		if wantFlag := dev != 0; ans.Outlier != wantFlag {
			t.Fatalf("%s outlier flag = %v, want %v (%+v)", key, ans.Outlier, wantFlag, ans)
		}
	}
	// The watch list of one goes through the same path.
	one, err := r.PointQuery(0, 0, "key450", 1000)
	if err != nil {
		t.Fatalf("PointQuery: %v", err)
	}
	if !one.Outlier {
		t.Fatalf("key450 not flagged: %+v", one)
	}
}

// TestRouterEndToEndInProcess fans queries across live per-shard
// aggregators queried in process and checks the merged answers against
// the planted truth.
func TestRouterEndToEndInProcess(t *testing.T) {
	fx := buildShardedFixture(t)
	r, err := NewRouter(fx.m, []Target{
		{Span: fx.aggs[0], Point: fx.aggs[0]},
		{Span: fx.aggs[1], Point: fx.aggs[1]},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	checkFixtureAnswers(t, r)
	// An unknown key poisons the whole watch list, attributed to the
	// shard that rejected it (an out-of-dictionary key routes to an edge
	// shard, which then rejects it like a flat deployment would).
	if _, err := r.PointQueryMulti(0, 0, []string{"key000", "zzz"}, 1000); err == nil {
		t.Fatal("unknown key accepted")
	} else if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("rejection not attributed to shard 1: %v", err)
	}
	if _, err := NewRouter(fx.m, []Target{{Span: fx.aggs[0]}}); err == nil {
		t.Fatal("accepted target count != shard count")
	}
}

// TestRouterEndToEndRemote runs the same fixture with the point
// fan-out going over the wire — the query RPC on each shard root's
// push listener.
func TestRouterEndToEndRemote(t *testing.T) {
	fx := buildShardedFixture(t)
	var targets []Target
	for i := range fx.aggs {
		rp := NewRemotePoint(fx.addrs[i], 5*time.Second)
		t.Cleanup(func() { rp.Close() })
		targets = append(targets, Target{Span: fx.aggs[i], Point: rp})
	}
	r, err := NewRouter(fx.m, targets)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	checkFixtureAnswers(t, r)
	// Remote rejection surfaces as a QueryRejectedError, not a
	// transport error: the connection stays healthy and is not redialed.
	_, err = targets[1].Point.PointQueryMulti(0, 0, []string{"no-such-key"}, 1000)
	var rej *stream.QueryRejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("unknown key over the wire: %v, want QueryRejectedError", err)
	}
	// The same connection still answers.
	if _, err := targets[1].Point.PointQueryMulti(0, 0, []string{"key450"}, 1000); err != nil {
		t.Fatalf("query after rejection: %v", err)
	}
}

// TestRemotePointRedial restarts an aggregator behind a fixed address
// and checks RemotePoint recovers with its one transparent redial.
func TestRemotePointRedial(t *testing.T) {
	sk, err := csoutlier.NewSketcher(testKeys(64), csoutlier.Config{
		M: 48, Seed: 3, Ensemble: csoutlier.CountSketch, Depth: 4,
	})
	if err != nil {
		t.Fatalf("NewSketcher: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	serve := func(addr string) (*stream.Aggregator, string) {
		agg, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: 4})
		if err != nil {
			t.Fatalf("NewAggregator: %v", err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		go agg.Serve(ln)
		return agg, ln.Addr().String()
	}
	agg, addr := serve("127.0.0.1:0")
	rp := NewRemotePoint(addr, 5*time.Second)
	defer rp.Close()
	if _, err := rp.PointQueryMulti(0, 0, []string{"key001"}, 10); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Restart on the same address: the pinned connection is now dead.
	if err := agg.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	agg2, _ := serve(addr)
	defer agg2.Close(context.Background())
	if _, err := rp.PointQueryMulti(0, 0, []string{"key001"}, 10); err != nil {
		t.Fatalf("query after restart (transparent redial): %v", err)
	}
}
