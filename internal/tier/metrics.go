package tier

import "csoutlier/internal/obs"

// relayMetrics exports the tier_* families: the relay's upward
// counters as scrape-time gauges over RelayStats (the leaf-facing
// stream_* families come from the embedded aggregator's own registry
// wiring), plus one live histogram for forward-cycle latency. All
// families are registered unconditionally at zero so a scrape checker
// can require them on any relay.
type relayMetrics struct {
	forwardSeconds *obs.Histogram
}

func newRelayMetrics(reg *obs.Registry, r *Relay) *relayMetrics {
	m := &relayMetrics{
		forwardSeconds: reg.Histogram("tier_forward_seconds",
			"wall time of one Forward cycle (snapshot commit + upstream drain)", obs.LatencyBuckets()),
	}
	forwards := reg.Gauge("tier_forwards_total", "completed forward cycles")
	forwardErrors := reg.Gauge("tier_forward_errors_total", "forward cycles that failed (snapshot or drain)")
	framesStaged := reg.Gauge("tier_frames_staged_total", "upward frames created (seq assigned at snapshot capture)")
	foldsStaged := reg.Gauge("tier_folds_staged_total", "leaf captures carried by staged upward frames")
	framesCommitted := reg.Gauge("tier_frames_committed_total", "staged frames released to the send queue by a snapshot commit")
	outcomes := reg.GaugeVec("tier_up_frames_total", "upward frames by parent fold outcome", "outcome")
	applied := outcomes.With("applied")
	duplicates := outcomes.With("duplicate")
	dropped := outcomes.With("dropped")
	rejected := outcomes.With("rejected")
	replayed := reg.Gauge("tier_replayed_frames_total", "retained upward frames requeued after a parent restore")
	redials := reg.Gauge("tier_redials_total", "upstream connections re-established")
	unstable := reg.Gauge("tier_unstable_windows", "windows with accumulated-but-unsnapshotted upward deltas")
	staged := reg.Gauge("tier_staged_frames", "upward frames waiting for a snapshot commit")
	queued := reg.Gauge("tier_queue_frames", "committed upward frames waiting to be pushed")
	retained := reg.Gauge("tier_retained_frames", "acked upward frames held for parent-restore replay")
	upSeq := reg.Gauge("tier_up_seq", "last assigned upward sequence number")
	upEpoch := reg.Gauge("tier_up_epoch", "relay's upward incarnation")
	rootEpoch := reg.Gauge("tier_root_epoch", "parent aggregator incarnation last seen")
	rootStable := reg.Gauge("tier_root_stable", "parent's durable sequence watermark for this relay")
	reg.OnScrape(func() {
		s := r.Stats()
		forwards.SetInt(s.Forwards)
		forwardErrors.SetInt(s.ForwardErrors)
		framesStaged.SetInt(s.FramesStaged)
		foldsStaged.SetInt(s.FoldsStaged)
		framesCommitted.SetInt(s.FramesCommitted)
		applied.SetInt(s.Applied)
		duplicates.SetInt(s.Duplicates)
		dropped.SetInt(s.Dropped)
		rejected.SetInt(s.Rejected)
		replayed.SetInt(s.Replayed)
		redials.SetInt(s.Redials)
		unstable.SetInt(int64(s.Unstable))
		staged.SetInt(int64(s.Staged))
		queued.SetInt(int64(s.Queued))
		retained.SetInt(int64(s.Retained))
		upSeq.SetInt(int64(s.UpSeq))
		upEpoch.SetInt(int64(s.UpEpoch))
		rootEpoch.SetInt(int64(s.RootEpoch))
		rootStable.SetInt(int64(s.RootStable))
	})
	return m
}

// RegisterShardMetrics exports the shard_* families describing one
// process's place in a ShardMap — static facts, but exported so a
// scrape can confirm which shard (and which partition version) a
// daemon is actually serving before trusting its stream_* numbers.
func RegisterShardMetrics(reg *obs.Registry, m *ShardMap, index int) {
	reg.Gauge("shard_index", "key-range shard this process serves").SetInt(int64(index))
	reg.Gauge("shard_count", "total shards in the partition").SetInt(int64(m.Shards()))
	reg.Gauge("shard_keys", "dictionary keys owned by this shard").SetInt(int64(len(m.Shard(index).Keys)))
	reg.Gauge("shard_map_version", "version stamp of the shard partition").SetInt(int64(m.Version()))
}
