package tier

import (
	"context"
	"errors"
	"fmt"

	"csoutlier"
	"csoutlier/internal/stream"
)

// ShardedNode is a data center's leaf presence in a sharded
// deployment: one stream.Node per shard, all sharing a logical
// identity, with observations routed to the owning shard's sketch by
// the ShardMap. Each per-shard node speaks the ordinary push protocol
// to its shard's relay (or root) — sharding is invisible one level up.
type ShardedNode struct {
	m     *ShardMap
	nodes []*stream.Node
}

// DialSharded connects one leaf node per shard. addrs[i] is shard i's
// push-listener address, sks[i] its measurement consensus (from
// ShardMap.Sketchers). opts applies to every shard node; a nonzero
// BackoffSeed is decorrelated per shard so the shard connections don't
// reconnect in lockstep.
func DialSharded(ctx context.Context, m *ShardMap, sks []*csoutlier.Sketcher, addrs []string, id string, opts stream.NodeOptions) (*ShardedNode, error) {
	if len(sks) != m.Shards() || len(addrs) != m.Shards() {
		return nil, fmt.Errorf("tier: sharded node needs %d sketchers and addresses, got %d and %d",
			m.Shards(), len(sks), len(addrs))
	}
	sn := &ShardedNode{m: m, nodes: make([]*stream.Node, m.Shards())}
	for i := range sn.nodes {
		o := opts
		if o.BackoffSeed != 0 {
			o.BackoffSeed = o.BackoffSeed ^ uint64(i+1)*0x9e3779b97f4a7c15
		}
		n, err := stream.Dial(ctx, addrs[i], sks[i], id, o)
		if err != nil {
			for _, prev := range sn.nodes[:i] {
				prev.Abort()
			}
			return nil, fmt.Errorf("tier: shard %d: %w", i, err)
		}
		sn.nodes[i] = n
	}
	return sn, nil
}

// Observe routes one observation to the owning shard's standing
// sketch. O(M_shard), no network.
func (sn *ShardedNode) Observe(key string, delta float64) error {
	return sn.nodes[sn.m.Route(key)].Observe(key, delta)
}

// Node returns shard i's underlying stream node (stats, tests).
func (sn *ShardedNode) Node(i int) *stream.Node { return sn.nodes[i] }

// Flush captures and pushes every shard's pending deltas, in shard
// order.
func (sn *ShardedNode) Flush(ctx context.Context) error {
	var errs []error
	for i, n := range sn.nodes {
		if err := n.Flush(ctx); err != nil {
			errs = append(errs, fmt.Errorf("tier: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Sync heartbeats every shard connection (adopting each tree's current
// window) and drains pending frames, in shard order.
func (sn *ShardedNode) Sync(ctx context.Context) error {
	var errs []error
	for i, n := range sn.nodes {
		if err := n.Sync(ctx); err != nil {
			errs = append(errs, fmt.Errorf("tier: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close flushes and disconnects every shard node, in shard order.
func (sn *ShardedNode) Close(ctx context.Context) error {
	var errs []error
	for i, n := range sn.nodes {
		if err := n.Close(ctx); err != nil {
			errs = append(errs, fmt.Errorf("tier: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Abort drops every shard connection and all pending frames — a crash.
func (sn *ShardedNode) Abort() {
	for _, n := range sn.nodes {
		n.Abort()
	}
}
