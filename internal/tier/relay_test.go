package tier

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
	"csoutlier/internal/xrand"
)

func tierSketcher(t testing.TB, n, m int, seed uint64) *csoutlier.Sketcher {
	t.Helper()
	sk, err := csoutlier.NewSketcher(testKeys(n), csoutlier.Config{M: m, Seed: seed})
	if err != nil {
		t.Fatalf("NewSketcher: %v", err)
	}
	return sk
}

// serveRoot starts a plain aggregator on a loopback listener.
func serveRoot(t *testing.T, sk *csoutlier.Sketcher, opts stream.AggregatorOptions) (*stream.Aggregator, string) {
	t.Helper()
	agg, err := stream.NewAggregator(sk, opts)
	if err != nil {
		t.Fatalf("NewAggregator: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go agg.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		agg.Close(ctx)
	})
	return agg, ln.Addr().String()
}

// serveRelay starts a relay's leaf listener.
func serveRelay(t *testing.T, r *Relay) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go r.Serve(ln)
	return ln.Addr().String()
}

func sameBits(t *testing.T, what string, got, want csoutlier.Sketch) {
	t.Helper()
	if len(got.Y) != len(want.Y) {
		t.Fatalf("%s: sketch length %d, want %d", what, len(got.Y), len(want.Y))
	}
	for i := range got.Y {
		if math.Float64bits(got.Y[i]) != math.Float64bits(want.Y[i]) {
			t.Fatalf("%s: Y[%d] = %v, want %v (bit-exact)", what, i, got.Y[i], want.Y[i])
		}
	}
}

// testProxy is a retargetable TCP forwarder, so a leaf node's fixed
// dial address can survive a relay kill/restore that changes the real
// listener. (The simtest soak uses its chaos proxy for the same job;
// this one never corrupts or drops.)
type testProxy struct {
	ln     net.Listener
	mu     sync.Mutex
	target string
}

func startTestProxy(t *testing.T, target string) *testProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &testProxy{ln: ln, target: target}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go p.pipe(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *testProxy) Addr() string { return p.ln.Addr().String() }

func (p *testProxy) Retarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

func (p *testProxy) pipe(client net.Conn) {
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	backend, err := net.Dial("tcp", target)
	if err != nil {
		client.Close()
		return
	}
	go func() {
		io.Copy(backend, client)
		backend.Close()
		client.Close()
	}()
	io.Copy(client, backend)
	backend.Close()
	client.Close()
}

// TestRelayForwardExact drives two leaves through a relay over real TCP
// and checks that the root's windows are bit-identical to the shadow
// accumulation of the same deltas in the same order — the linearity
// argument made concrete: one upward frame per window carries exactly
// the fold of every leaf delta below it.
func TestRelayForwardExact(t *testing.T) {
	sk := tierSketcher(t, 128, 64, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	root, rootAddr := serveRoot(t, sk, stream.AggregatorOptions{Windows: 4})
	relay, err := NewRelay(ctx, sk, RelayOptions{ID: "r0", Upstream: rootAddr})
	if err != nil {
		t.Fatalf("NewRelay: %v", err)
	}
	relayAddr := serveRelay(t, relay)
	t.Cleanup(func() { relay.Close(ctx) })

	const L = 2
	leaves := make([]*stream.Node, L)
	shadow := make([]*csoutlier.Updater, L)
	for l := range leaves {
		n, err := stream.Dial(ctx, relayAddr, sk, fmt.Sprintf("node%02d", l), stream.NodeOptions{})
		if err != nil {
			t.Fatalf("Dial leaf %d: %v", l, err)
		}
		leaves[l] = n
		shadow[l] = sk.NewUpdater()
	}
	observe := func(l int, key string, v float64) {
		t.Helper()
		if err := leaves[l].Observe(key, v); err != nil {
			t.Fatalf("leaf %d observe: %v", l, err)
		}
		if err := shadow[l].Observe(key, v); err != nil {
			t.Fatalf("shadow %d observe: %v", l, err)
		}
	}
	scratch := sk.ZeroSketch()
	flush := func(l int, acc csoutlier.Sketch) {
		t.Helper()
		if err := leaves[l].Flush(ctx); err != nil {
			t.Fatalf("leaf %d flush: %v", l, err)
		}
		if _, err := shadow[l].DrainInto(scratch); err != nil {
			t.Fatalf("shadow %d drain: %v", l, err)
		}
		if err := acc.Add(scratch); err != nil {
			t.Fatalf("acc add: %v", err)
		}
	}

	// Window 1: background weight everywhere plus two planted outliers.
	for i := 0; i < 128; i++ {
		observe(0, fmt.Sprintf("key%03d", i), 12)
		observe(1, fmt.Sprintf("key%03d", i), 8)
	}
	observe(0, "key005", 500)
	observe(1, "key100", -400)
	acc1 := sk.ZeroSketch()
	flush(0, acc1)
	flush(1, acc1)
	if err := relay.Forward(ctx); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	got, err := root.WindowSketch(0)
	if err != nil {
		t.Fatalf("root window: %v", err)
	}
	sameBits(t, "root window 1", got, acc1)
	// The relay's own regional window holds the same fold.
	rgot, err := relay.Aggregator().WindowSketch(0)
	if err != nil {
		t.Fatalf("relay window: %v", err)
	}
	sameBits(t, "relay window 1", rgot, acc1)

	// An idle Forward stages nothing and pushes nothing.
	before := root.Stats()
	if err := relay.Forward(ctx); err != nil {
		t.Fatalf("idle Forward: %v", err)
	}
	if after := root.Stats(); after.Frames != before.Frames {
		t.Fatalf("idle Forward pushed %d frames upstream", after.Frames-before.Frames)
	}

	// Rotate at the root; the relay and then the leaves adopt the new
	// window through their syncs.
	root.Rotate()
	if err := relay.Sync(ctx); err != nil {
		t.Fatalf("relay sync: %v", err)
	}
	if got := relay.Aggregator().CurrentWindow(); got != 2 {
		t.Fatalf("relay window = %d after root rotation, want 2", got)
	}
	for l := range leaves {
		if err := leaves[l].Sync(ctx); err != nil {
			t.Fatalf("leaf %d sync: %v", l, err)
		}
	}

	// Window 2, two flush rounds per leaf.
	acc2 := sk.ZeroSketch()
	for round := 0; round < 2; round++ {
		for l := 0; l < L; l++ {
			for i := l; i < 128; i += 2 {
				observe(l, fmt.Sprintf("key%03d", i), float64(3+round))
			}
			flush(l, acc2)
		}
	}
	if err := relay.Forward(ctx); err != nil {
		t.Fatalf("Forward window 2: %v", err)
	}
	got2, err := root.WindowSketch(0)
	if err != nil {
		t.Fatalf("root window 2: %v", err)
	}
	sameBits(t, "root window 2", got2, acc2)
	got1, err := root.WindowSketch(1)
	if err != nil {
		t.Fatalf("root window 1 (age 1): %v", err)
	}
	sameBits(t, "root window 1 after rotation", got1, acc1)

	// Conservation through the hop: every leaf capture is folded at the
	// root exactly once (as an upward frame fold or an accounted shed).
	rs := root.Stats()
	var captured int64
	for _, n := range leaves {
		captured += n.Stats().Captured
	}
	if rs.Applied+rs.ShedFolds != captured {
		t.Fatalf("conservation: root applied %d + shed folds %d != leaf captures %d",
			rs.Applied, rs.ShedFolds, captured)
	}
	if rs.Rejected != 0 {
		t.Fatalf("root rejected %d upward frames", rs.Rejected)
	}
}

// TestRelayUpwardDedup redelivers an already-forwarded upward frame and
// checks the root's dedup books refuse it — the (shard, tier)-tagged
// identity rides the ordinary exactly-once scheme.
func TestRelayUpwardDedup(t *testing.T) {
	sk := tierSketcher(t, 64, 32, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	root, rootAddr := serveRoot(t, sk, stream.AggregatorOptions{Windows: 4})
	relay, err := NewRelay(ctx, sk, RelayOptions{ID: "r0", Shard: 2, Upstream: rootAddr})
	if err != nil {
		t.Fatalf("NewRelay: %v", err)
	}
	relayAddr := serveRelay(t, relay)
	t.Cleanup(func() { relay.Close(ctx) })
	if relay.Name() != "s02.t1.r0" {
		t.Fatalf("relay name = %q", relay.Name())
	}

	leaf, err := stream.Dial(ctx, relayAddr, sk, "node00", stream.NodeOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := leaf.Observe("key001", 42); err != nil {
		t.Fatalf("observe: %v", err)
	}
	if err := leaf.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := relay.Forward(ctx); err != nil {
		t.Fatalf("Forward: %v", err)
	}

	// Replay upward frame (epoch 1, seq 1) by hand. The payload doesn't
	// need to match: the dedup check fires on (identity, epoch, seq)
	// before the payload is even decoded.
	u := sk.NewUpdater()
	u.Observe("key002", 1)
	delta := sk.ZeroSketch()
	u.DrainInto(delta)
	payload, err := delta.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	c, err := stream.DialClient(ctx, rootAddr, 5*time.Second)
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer c.Close()
	if _, err := c.Hello(relay.Name(), 1); err != nil {
		t.Fatalf("hello: %v", err)
	}
	ack, err := c.PushDelta(relay.Name(), 1, 1, 1, 1, payload)
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if ack.Status != stream.StatusDuplicate {
		t.Fatalf("redelivered upward frame: status %q, want %q", ack.Status, stream.StatusDuplicate)
	}
	if rs := root.Stats(); rs.Duplicates != 1 {
		t.Fatalf("root duplicates = %d, want 1", rs.Duplicates)
	}
}

// tierRun is one complete drive of a 1-shard, 1-relay, 2-leaf tree.
type tierRun struct {
	windows  []csoutlier.Sketch // root ring, oldest first
	root     stream.AggStats
	captured int64
	replayed int64
}

// driveTierRun executes a deterministic observation plan (derived from
// seed) through a durable relay, optionally killing and restoring it
// mid-window-2, and returns the root's final state. The drive is
// leaf-major inside each window, so a post-restore replay (all of leaf
// 0's frames, then leaf 1's) re-folds in exactly the original order.
func driveTierRun(t *testing.T, seed uint64, kill bool) tierRun {
	t.Helper()
	const (
		L = 2 // leaves
		C = 3 // flushes per leaf per window
		W = 3 // windows
		N = 96
		M = 48
	)
	sk := tierSketcher(t, N, M, seed)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	root, rootAddr := serveRoot(t, sk, stream.AggregatorOptions{Windows: 4})
	snapPath := filepath.Join(t.TempDir(), "relay.snap")
	ropts := RelayOptions{ID: "r0", Upstream: rootAddr, SnapshotPath: snapPath, BackoffSeed: seed ^ 0xbac0ff}
	relay, err := NewRelay(ctx, sk, ropts)
	if err != nil {
		t.Fatalf("NewRelay: %v", err)
	}
	proxy := startTestProxy(t, serveRelay(t, relay))

	leaves := make([]*stream.Node, L)
	for l := range leaves {
		n, err := stream.Dial(ctx, proxy.Addr(), sk, fmt.Sprintf("node%02d", l), stream.NodeOptions{
			BackoffSeed: seed ^ uint64(l+1)<<8,
		})
		if err != nil {
			t.Fatalf("Dial leaf %d: %v", l, err)
		}
		leaves[l] = n
	}

	// The observation plan is a pure function of seed — identical for
	// the interrupted and uninterrupted runs.
	type obs struct {
		key string
		v   float64
	}
	rng := xrand.New(seed)
	plan := make([][][][]obs, W) // [window][leaf][flush]
	for w := range plan {
		plan[w] = make([][][]obs, L)
		for l := range plan[w] {
			plan[w][l] = make([][]obs, C)
			for f := range plan[w][l] {
				for k := 0; k < 8; k++ {
					plan[w][l][f] = append(plan[w][l][f], obs{
						key: fmt.Sprintf("key%03d", rng.Intn(N)),
						v:   math.Floor(200*rng.Float64()) - 100,
					})
				}
			}
		}
	}

	var run tierRun
	doKill := func() {
		if err := relay.Kill(ctx); err != nil {
			t.Fatalf("Kill: %v", err)
		}
		snap, err := stream.LoadSnapshot(snapPath)
		if err != nil {
			t.Fatalf("LoadSnapshot: %v", err)
		}
		restored, err := RestoreRelay(ctx, sk, ropts, snap)
		if err != nil {
			t.Fatalf("RestoreRelay: %v", err)
		}
		proxy.Retarget(serveRelay(t, restored))
		// The restored relay syncs FIRST: its snapshot predates the
		// window adoptions after it, so its clock must catch up with the
		// root before any leaf frame arrives (a leaf frame tagged with a
		// window the relay hasn't adopted yet would be rejected as
		// "ahead").
		if err := restored.Sync(ctx); err != nil {
			t.Fatalf("restored relay sync: %v", err)
		}
		relay = restored
		for l := range leaves {
			if err := leaves[l].Sync(ctx); err != nil {
				t.Fatalf("leaf %d post-restore sync: %v", l, err)
			}
		}
	}

	for w := 0; w < W; w++ {
		for l := 0; l < L; l++ {
			for f := 0; f < C; f++ {
				for _, o := range plan[w][l][f] {
					if o.v == 0 {
						continue
					}
					if err := leaves[l].Observe(o.key, o.v); err != nil {
						t.Fatalf("leaf %d observe: %v", l, err)
					}
				}
				if err := leaves[l].Flush(ctx); err != nil {
					t.Fatalf("leaf %d flush: %v", l, err)
				}
			}
			if kill && w == 1 && l == 0 {
				// Mid-window crash: window 1 was forwarded (and therefore
				// snapshotted), leaf 0's window-2 frames die with the relay's
				// unstable accumulators and must come back via leaf replay.
				doKill()
			}
		}
		if err := relay.Forward(ctx); err != nil {
			t.Fatalf("Forward window %d: %v", w+1, err)
		}
		if w < W-1 {
			root.Rotate()
			if err := relay.Sync(ctx); err != nil {
				t.Fatalf("relay sync: %v", err)
			}
			for l := range leaves {
				if err := leaves[l].Sync(ctx); err != nil {
					t.Fatalf("leaf %d sync: %v", l, err)
				}
			}
		}
	}
	for age := W - 1; age >= 0; age-- {
		s, err := root.WindowSketch(age)
		if err != nil {
			t.Fatalf("root window age %d: %v", age, err)
		}
		run.windows = append(run.windows, s)
	}
	run.root = root.Stats()
	for _, n := range leaves {
		s := n.Stats()
		run.captured += s.Captured
		run.replayed += s.Replayed
	}
	ctxClose, cancelClose := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelClose()
	relay.Close(ctxClose)
	return run
}

// TestRelayRestartReplayBitIdentical is the dedup-book property test
// for the extra hop: a run with a mid-window relay kill/restore must
// leave the root's windows bit-identical to an uninterrupted run of
// the same plan, with every leaf capture folded exactly once.
func TestRelayRestartReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run TCP soak")
	}
	for _, seed := range []uint64{1, 23, 456} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			clean := driveTierRun(t, seed, false)
			crashed := driveTierRun(t, seed, true)
			if len(clean.windows) != len(crashed.windows) {
				t.Fatalf("window counts differ: %d vs %d", len(clean.windows), len(crashed.windows))
			}
			for i := range clean.windows {
				sameBits(t, fmt.Sprintf("window %d", i+1), crashed.windows[i], clean.windows[i])
			}
			for name, run := range map[string]tierRun{"clean": clean, "crashed": crashed} {
				if run.root.Applied+run.root.ShedFolds != run.captured {
					t.Fatalf("%s run conservation: root applied %d + shed folds %d != leaf captures %d",
						name, run.root.Applied, run.root.ShedFolds, run.captured)
				}
				if run.root.Rejected != 0 {
					t.Fatalf("%s run: root rejected %d upward frames", name, run.root.Rejected)
				}
			}
			if crashed.replayed == 0 {
				t.Fatal("crash run replayed no leaf frames — the kill point lost nothing, test is vacuous")
			}
			if crashed.root.Duplicates == 0 {
				t.Fatal("crash run produced no upward duplicates — the restored relay replayed nothing")
			}
		})
	}
}

// TestRelayExtraCodec pins the Snapshot.Extra inner codec: round-trip
// identity and rejection of malformed blobs.
func TestRelayExtraCodec(t *testing.T) {
	frames := []*upFrame{
		{window: 1, seq: 1, folds: 2, payload: []byte{1, 2, 3}},
		{window: 1, seq: 2, folds: 1, payload: nil},
		{window: 3, seq: 5, folds: 7, payload: []byte{0xff}},
	}
	b, err := encodeRelayExtra(3, 1, "relayA", 4, 9, frames[:1], frames[1:])
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	st, err := decodeRelayExtra(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Shard != 3 || st.Level != 1 || st.ID != "relayA" || st.UpEpoch != 4 || st.UpSeq != 9 {
		t.Fatalf("decoded header %+v", st)
	}
	if len(st.Frames) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(st.Frames))
	}
	for i, f := range st.Frames {
		want := frames[i]
		if f.window != want.window || f.seq != want.seq || f.folds != want.folds || string(f.payload) != string(want.payload) {
			t.Fatalf("frame %d: %+v, want %+v", i, f, want)
		}
	}

	if _, err := decodeRelayExtra(b[:len(b)-1]); err == nil {
		t.Fatal("accepted truncated blob")
	}
	if _, err := decodeRelayExtra(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	bad := append([]byte(nil), b...)
	bad[0] ^= 0x40
	if _, err := decodeRelayExtra(bad); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := encodeRelayExtra(0, 1, "x", 1, 1, []*upFrame{{seq: 2}, {seq: 1}}); err == nil {
		t.Fatal("encoded out-of-order seqs")
	}
	// A frame seq above the snapshotted counter can never have been
	// assigned — reject rather than replay a forged frame.
	forged, err := encodeRelayExtra(0, 1, "x", 1, 9, []*upFrame{{seq: 3}})
	if err != nil {
		t.Fatalf("encode forged base: %v", err)
	}
	// Patch upSeq (bytes right before the count) down to 2 < 3.
	// Layout: magic(4) ver(2) shard(4) level(4) idLen(2) id(1) upEpoch(8) upSeq(8) ...
	off := 4 + 2 + 4 + 4 + 2 + 1 + 8
	for i := 0; i < 8; i++ {
		forged[off+i] = 0
	}
	forged[off] = 2
	if _, err := decodeRelayExtra(forged); err == nil {
		t.Fatal("accepted frame seq above the snapshotted upSeq")
	}
}
