package mapreduce

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"csoutlier/internal/keydict"
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
)

// Tuple encoding: intermediate keys are 4-byte big-endian key ids and
// values are 8-byte little-endian float64s, so one aggregated tuple
// costs exactly the paper's S_t = 12 bytes on the wire.

func encodeKeyID(id uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	return string(b[:])
}

func decodeKeyID(s string) (uint32, error) {
	if len(s) != 4 {
		return 0, fmt.Errorf("mapreduce: key id has %d bytes, want 4", len(s))
	}
	return binary.BigEndian.Uint32([]byte(s)), nil
}

func encodeFloat(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func decodeFloat(b []byte) (float64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("mapreduce: float value has %d bytes, want 8", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func encodeFloats(vs []float64) []byte {
	b := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func decodeFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mapreduce: float vector has %d bytes", len(b))
	}
	vs := make([]float64, len(b)/8)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vs, nil
}

// localAggregate sums the split's records per dictionary position — the
// partial aggregation both mappers share (paper Figure 2 / Algorithm 3).
func localAggregate(dict *keydict.Dictionary, split []Record) (map[uint32]float64, error) {
	agg := make(map[uint32]float64)
	for _, rec := range split {
		i, ok := dict.Index(rec.Key)
		if !ok {
			return nil, fmt.Errorf("mapreduce: record key %q not in global key list", rec.Key)
		}
		agg[uint32(i)] += rec.Value
	}
	return agg, nil
}

// TopKJob is the traditional distributed top-k aggregation the paper
// benchmarks against in §6.2: mappers partially aggregate and ship every
// distinct (key, partial-sum) tuple; reducers sum per key. The driver
// extracts the top k afterwards with TopKFromOutput.
type TopKJob struct {
	Dict *keydict.Dictionary
}

// Map implements Job.
func (j *TopKJob) Map(split []Record, emit func(KV)) error {
	agg, err := localAggregate(j.Dict, split)
	if err != nil {
		return err
	}
	for id, sum := range agg {
		emit(KV{Key: encodeKeyID(id), Value: encodeFloat(sum)})
	}
	return nil
}

// Reduce implements Job.
func (j *TopKJob) Reduce(key string, values [][]byte, emit func(KV)) error {
	total := 0.0
	for _, v := range values {
		f, err := decodeFloat(v)
		if err != nil {
			return err
		}
		total += f
	}
	emit(KV{Key: key, Value: encodeFloat(total)})
	return nil
}

// TopKFromOutput decodes reducer output and returns the k entries with
// the largest |value| (the mode-0 outlier ranking the paper uses when
// comparing against its own method).
func TopKFromOutput(out []KV, k int) ([]outlier.KV, error) {
	kvs := make([]outlier.KV, 0, len(out))
	for _, kv := range out {
		id, err := decodeKeyID(kv.Key)
		if err != nil {
			return nil, err
		}
		v, err := decodeFloat(kv.Value)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, outlier.KV{Index: int(id), Value: v})
	}
	return outlier.TopKOf(kvs, 0, k), nil
}

// sketchKey is the single intermediate key of the CS job: every mapper's
// measurement lands on one reducer, which is exactly the paper's design
// (the aggregator is a single node).
const sketchKey = "\x00CS"

// SketchJob is the paper's Hadoop integration (§5, Algorithms 3–4):
// CS-Mapper partially aggregates, vectorizes against the global key
// list, measures with the consensus matrix, and ships the M-vector;
// CS-Reducer sums the measurements and recovers the k outliers and the
// mode with BOMP.
type SketchJob struct {
	Dict   *keydict.Dictionary
	Params sensing.Params
	K      int
	// MaxIterations overrides the R = f(K) default (0 = use default).
	MaxIterations int
	// DenseLimit caps M·N for materializing Φ₀; above it mappers and the
	// reducer fall back to the column-regenerating representation
	// (every real Hadoop mapper regenerates anyway — sharing one dense
	// matrix across this simulation's in-process mappers is free).
	// 0 means 5e7 entries (400 MB).
	DenseLimit int64

	matOnce sync.Once
	mat     sensing.Matrix
	matErr  error
}

// Map implements Job (CS-Mapper, Algorithm 3).
func (j *SketchJob) Map(split []Record, emit func(KV)) error {
	agg, err := localAggregate(j.Dict, split)
	if err != nil {
		return err
	}
	idx := make([]int, 0, len(agg))
	vals := make([]float64, 0, len(agg))
	for id, sum := range agg {
		idx = append(idx, int(id))
		vals = append(vals, sum)
	}
	m, err := j.recoveryMatrix()
	if err != nil {
		return err
	}
	y := m.MeasureSparse(idx, vals, nil)
	emit(KV{Key: sketchKey, Value: encodeFloats(y)})
	return nil
}

// Reduce implements Job (CS-Reducer, Algorithm 4). Output tuples are the
// detected outliers as (key id, recovered value), plus a mode tuple
// under key id 2³²−1.
const modeKeyID = ^uint32(0)

// Reduce implements Job.
func (j *SketchJob) Reduce(key string, values [][]byte, emit func(KV)) error {
	if key != sketchKey {
		return fmt.Errorf("mapreduce: CS reducer got unexpected key %q", key)
	}
	global := make(linalg.Vector, j.Params.M)
	for _, v := range values {
		y, err := decodeFloats(v)
		if err != nil {
			return err
		}
		if len(y) != j.Params.M {
			return fmt.Errorf("mapreduce: sketch length %d, want M=%d", len(y), j.Params.M)
		}
		sensing.AddSketch(global, linalg.Vector(y))
	}
	mat, err := j.recoveryMatrix()
	if err != nil {
		return err
	}
	iters := j.MaxIterations
	if iters == 0 {
		iters = recovery.IterationBudget(j.K)
	}
	res, err := recovery.BOMP(mat, global, recovery.Options{MaxIterations: iters})
	if err != nil {
		return err
	}
	cands := make([]outlier.KV, len(res.Support))
	for i, jx := range res.Support {
		cands[i] = outlier.KV{Index: jx, Value: res.X[jx]}
	}
	for _, kv := range outlier.TopKOf(cands, res.Mode, j.K) {
		emit(KV{Key: encodeKeyID(uint32(kv.Index)), Value: encodeFloat(kv.Value)})
	}
	emit(KV{Key: encodeKeyID(modeKeyID), Value: encodeFloat(res.Mode)})
	return nil
}

func (j *SketchJob) recoveryMatrix() (sensing.Matrix, error) {
	j.matOnce.Do(func() {
		limit := j.DenseLimit
		if limit <= 0 {
			limit = 5e7
		}
		if int64(j.Params.M)*int64(j.Params.N) <= limit {
			j.mat, j.matErr = sensing.NewDense(j.Params)
		} else {
			j.mat, j.matErr = sensing.NewSeeded(j.Params)
		}
	})
	return j.mat, j.matErr
}

// OutliersFromOutput decodes the CS reducer's output into the detected
// outliers (strongest first, mode tuple stripped) and the mode.
func OutliersFromOutput(out []KV, k int) ([]outlier.KV, float64, error) {
	var mode float64
	kvs := make([]outlier.KV, 0, len(out))
	for _, kv := range out {
		id, err := decodeKeyID(kv.Key)
		if err != nil {
			return nil, 0, err
		}
		v, err := decodeFloat(kv.Value)
		if err != nil {
			return nil, 0, err
		}
		if id == modeKeyID {
			mode = v
			continue
		}
		kvs = append(kvs, outlier.KV{Index: int(id), Value: v})
	}
	return outlier.TopKOf(kvs, mode, k), mode, nil
}
