// Package mapreduce is a miniature MapReduce engine standing in for the
// Hadoop 2.4.0 deployment of the paper's §5–§6.2, plus the two jobs that
// section compares: the traditional top-k aggregation job and the
// compressive-sensing job (CS-Mapper / CS-Reducer, Algorithms 3 and 4).
//
// The engine is real where it matters and modeled where it cannot be:
// map functions, the hash shuffle, and reduce functions actually execute
// (goroutine worker pools, real CPU timing, exact byte accounting of
// every emitted tuple), while disk and network latency are converted
// from the measured byte counts by an explicit CostModel calibrated to
// the paper's testbed (10 nodes, 1 Gbps). DESIGN.md §1 documents why
// this substitution preserves the Figure 10–12 crossover behaviour.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Record is one input line: a raw key with a click score.
type Record struct {
	Key   string
	Value float64
}

// KV is an intermediate or output tuple. Wire size is
// len(Key) + len(Value) bytes, so jobs control their own tuple cost
// (the paper's S_t = 12 bytes: a 4-byte key id plus an 8-byte value).
type KV struct {
	Key   string
	Value []byte
}

func (kv KV) wireBytes() int64 { return int64(len(kv.Key) + len(kv.Value)) }

// Job is a MapReduce program.
type Job interface {
	// Map consumes one input split and emits intermediate tuples.
	Map(split []Record, emit func(KV)) error
	// Reduce consumes all tuples of one key and emits output tuples.
	Reduce(key string, values [][]byte, emit func(KV)) error
}

// CostModel converts byte counts into simulated wall-clock time.
type CostModel struct {
	// DiskBandwidth is the sequential HDD throughput used for input
	// reads, map-output spills and reduce-side merge reads (bytes/s).
	DiskBandwidth float64
	// NetBandwidth is the shuffle throughput (bytes/s).
	NetBandwidth float64
	// TaskOverhead is the per-task scheduling/JVM-startup cost.
	TaskOverhead time.Duration
	// TupleCPU is the per-intermediate-tuple CPU charge (seconds):
	// Hadoop's map-output collector, sort, spill-merge and reduce-side
	// merge cost a few microseconds per record, which is what makes
	// shipping N·L tuples expensive beyond their raw bytes.
	TupleCPU time.Duration
	// ParseRate is the mapper's record parse/aggregate CPU throughput
	// (bytes/s) charged against each split's simulated Bytes — the part
	// of map CPU that scales with input volume even when the split's
	// Records are a sampled stand-in for a larger file. The measured map
	// CPU (measurement, aggregation of the sample) is added on top.
	// 0 disables the charge.
	ParseRate float64
	// MergePasses is the number of times reduce-side input crosses the
	// local disk during the external merge sort (Hadoop typically reads
	// fetched map output back at least twice). 0 means 2.
	MergePasses int
	// MapCPUScale multiplies measured map CPU — an alternative knob for
	// when the sampled records themselves under-represent real compute.
	// 0 means 1.
	MapCPUScale float64
}

// DefaultHadoopCostModel matches the paper's testbed: 1 Gbps network
// (§6.2), HDD-class sequential disk, Hadoop-2-era container startup.
func DefaultHadoopCostModel() CostModel {
	return CostModel{
		DiskBandwidth: 120e6, // 120 MB/s sequential HDD
		NetBandwidth:  125e6, // 1 Gbps
		TaskOverhead:  1500 * time.Millisecond,
		ParseRate:     250e6,            // text parse + hash aggregate
		TupleCPU:      time.Microsecond, // collector+sort+merge+reduce iterator, per record
		MergePasses:   2,
	}
}

func (c CostModel) mapCPUScale() float64 {
	if c.MapCPUScale <= 0 {
		return 1
	}
	return c.MapCPUScale
}

// Config describes the simulated cluster.
type Config struct {
	// Reducers is the number of reduce partitions (Hadoop: job setting).
	Reducers int
	// MapSlots / ReduceSlots are the concurrent task slots of the
	// simulated cluster (10 nodes in the paper). They gate the *modeled*
	// wave schedule; real execution uses a worker pool of its own size.
	MapSlots, ReduceSlots int
	// Workers caps real goroutine parallelism (0 = MapSlots).
	Workers int
	Cost    CostModel
}

func (c *Config) normalize() {
	if c.Reducers <= 0 {
		c.Reducers = 1
	}
	if c.MapSlots <= 0 {
		c.MapSlots = 10
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = c.Reducers
	}
	if c.Workers <= 0 {
		// Real execution parallelism is capped at the host's cores: the
		// slot counts above drive the *modeled* schedule, but running
		// more goroutines than cores would inflate the measured per-task
		// CPU with scheduler contention.
		c.Workers = c.MapSlots
		if procs := runtime.GOMAXPROCS(0); c.Workers > procs {
			c.Workers = procs
		}
	}
	if c.Cost.DiskBandwidth <= 0 || c.Cost.NetBandwidth <= 0 {
		def := DefaultHadoopCostModel()
		if c.Cost.DiskBandwidth <= 0 {
			c.Cost.DiskBandwidth = def.DiskBandwidth
		}
		if c.Cost.NetBandwidth <= 0 {
			c.Cost.NetBandwidth = def.NetBandwidth
		}
	}
}

// Metrics reports what a job did, plus the modeled Hadoop timing.
type Metrics struct {
	MapTasks, ReduceTasks int

	InputBytes      int64 // bytes charged for reading the input splits
	MapOutputBytes  int64 // bytes emitted by mappers = spill = shuffle volume
	MapOutputTuples int64 // tuples emitted by mappers
	OutputBytes     int64 // bytes emitted by reducers

	MapCPU    time.Duration // measured (and scaled) mapper compute
	ReduceCPU time.Duration // measured reducer compute

	MapTime     time.Duration // modeled map-phase wall clock
	ShuffleTime time.Duration // modeled shuffle
	ReduceTime  time.Duration // modeled reduce-phase wall clock
	EndToEnd    time.Duration // MapTime + ShuffleTime + ReduceTime
}

// Split is one input split: its records plus the byte size the cost
// model charges for reading it (a split can stand in for a much larger
// file region than its sampled Records — see CostModel.MapCPUScale).
//
// Represents scales one sampled split up to many physical map tasks:
// a real Hadoop job over a 600 GB input runs ~2300 block-sized mappers,
// each emitting its own partially aggregated tuple set — the total
// shuffle volume scales with the mapper count, which is exactly why the
// paper's savings grow with input size (§5). With Represents = R, the
// engine models R identical tasks of Bytes/R input each, every one
// emitting this split's sampled map output; the Records are executed
// once for real. 0 or 1 means a plain split.
type Split struct {
	Records    []Record
	Bytes      int64
	Represents int
}

func (s Split) represents() int {
	if s.Represents < 1 {
		return 1
	}
	return s.Represents
}

// Run executes the job over the splits and returns the reducer outputs
// sorted by key, with metrics.
func Run(job Job, splits []Split, cfg Config) ([]KV, *Metrics, error) {
	cfg.normalize()
	met := &Metrics{MapTasks: len(splits), ReduceTasks: cfg.Reducers}

	// --- Map phase: real execution on a worker pool. ---
	type mapOut struct {
		kvs      []KV
		cpu      time.Duration
		outBytes int64
		err      error
	}
	outs := make([]mapOut, len(splits))
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for i, sp := range splits {
		met.InputBytes += sp.Bytes
		wg.Add(1)
		go func(i int, sp Split) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var kvs []KV
			var bytes int64
			start := time.Now()
			err := job.Map(sp.Records, func(kv KV) {
				kvs = append(kvs, kv)
				bytes += kv.wireBytes()
			})
			outs[i] = mapOut{kvs: kvs, cpu: time.Since(start), outBytes: bytes, err: err}
		}(i, sp)
	}
	wg.Wait()

	// Modeled map-phase time: tasks scheduled in waves over MapSlots;
	// each task pays input read + CPU + spill write + startup overhead.
	// A split with Represents = R contributes R identical tasks of
	// Bytes/R input each.
	var mapTaskTimes []time.Duration
	var sampledTuples int64
	met.MapTasks = 0
	for i, o := range outs {
		if o.err != nil {
			return nil, nil, fmt.Errorf("mapreduce: map task %d: %w", i, o.err)
		}
		rep := splits[i].represents()
		perTaskBytes := float64(splits[i].Bytes) / float64(rep)
		cpu := time.Duration(float64(o.cpu) * cfg.Cost.mapCPUScale())
		if cfg.Cost.ParseRate > 0 {
			cpu += seconds(perTaskBytes / cfg.Cost.ParseRate)
		}
		cpu += time.Duration(len(o.kvs)) * cfg.Cost.TupleCPU // map-side sort/spill
		met.MapCPU += time.Duration(rep) * cpu
		met.MapOutputBytes += int64(rep) * o.outBytes
		met.MapOutputTuples += int64(rep) * int64(len(o.kvs))
		sampledTuples += int64(len(o.kvs))
		io := seconds(perTaskBytes/cfg.Cost.DiskBandwidth) +
			seconds(float64(o.outBytes)/cfg.Cost.DiskBandwidth)
		task := cfg.Cost.TaskOverhead + cpu + io
		for r := 0; r < rep; r++ {
			mapTaskTimes = append(mapTaskTimes, task)
		}
		met.MapTasks += rep
	}
	met.MapTime = scheduleWaves(mapTaskTimes, cfg.MapSlots)

	// Reduce-side volumes scale by the same multiplicity: every modeled
	// map task ships (a copy of) its sampled output.
	tupleScale := 1.0
	if sampledTuples > 0 {
		tupleScale = float64(met.MapOutputTuples) / float64(sampledTuples)
	}

	// --- Shuffle: hash partition, then group by key. Real movement of
	// the tuples; modeled network time from the exact byte volume. ---
	parts := make([]map[string][][]byte, cfg.Reducers)
	for p := range parts {
		parts[p] = make(map[string][][]byte)
	}
	for _, o := range outs {
		for _, kv := range o.kvs {
			p := partition(kv.Key, cfg.Reducers)
			parts[p][kv.Key] = append(parts[p][kv.Key], kv.Value)
		}
	}
	met.ShuffleTime = seconds(float64(met.MapOutputBytes) / cfg.Cost.NetBandwidth)

	// --- Reduce phase: real execution, one task per partition. ---
	type redOut struct {
		kvs      []KV
		cpu      time.Duration
		inBytes  int64
		inTuples int64
		outBytes int64
		err      error
	}
	routs := make([]redOut, cfg.Reducers)
	for p := 0; p < cfg.Reducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			keys := make([]string, 0, len(parts[p]))
			var inBytes, inTuples int64
			for k, vs := range parts[p] {
				keys = append(keys, k)
				for _, v := range vs {
					inBytes += int64(len(k) + len(v))
					inTuples++
				}
			}
			sort.Strings(keys)
			var kvs []KV
			var outBytes int64
			start := time.Now()
			for _, k := range keys {
				if err := job.Reduce(k, parts[p][k], func(kv KV) {
					kvs = append(kvs, kv)
					outBytes += kv.wireBytes()
				}); err != nil {
					routs[p] = redOut{err: err}
					return
				}
			}
			routs[p] = redOut{kvs: kvs, cpu: time.Since(start), inBytes: inBytes, inTuples: inTuples, outBytes: outBytes}
		}(p)
	}
	wg.Wait()

	var redTaskTimes []time.Duration
	var outputs []KV
	for p, o := range routs {
		if o.err != nil {
			return nil, nil, fmt.Errorf("mapreduce: reduce task %d: %w", p, o.err)
		}
		met.ReduceCPU += o.cpu
		met.OutputBytes += o.outBytes
		// Reduce-side IO and merge CPU over the multiplicity-scaled
		// partition: the external merge crosses local disk MergePasses
		// times before the reduce function sees the stream.
		passes := cfg.Cost.MergePasses
		if passes <= 0 {
			passes = 2
		}
		scaledIn := float64(o.inBytes) * tupleScale
		io := seconds(float64(passes)*scaledIn/cfg.Cost.DiskBandwidth) +
			seconds(float64(o.outBytes)/cfg.Cost.DiskBandwidth)
		merge := time.Duration(float64(o.inTuples) * tupleScale * float64(cfg.Cost.TupleCPU))
		redTaskTimes = append(redTaskTimes, cfg.Cost.TaskOverhead+o.cpu+merge+io)
		outputs = append(outputs, o.kvs...)
	}
	met.ReduceTime = scheduleWaves(redTaskTimes, cfg.ReduceSlots)
	met.EndToEnd = met.MapTime + met.ShuffleTime + met.ReduceTime

	sort.Slice(outputs, func(i, j int) bool { return outputs[i].Key < outputs[j].Key })
	return outputs, met, nil
}

// scheduleWaves models a slot-limited scheduler: tasks are placed
// longest-first onto the least-loaded of `slots` slots (LPT); the phase
// ends when the last slot drains. This mirrors how a Hadoop phase's wall
// clock is governed by task waves rather than the sum of task times.
func scheduleWaves(tasks []time.Duration, slots int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	sorted := append([]time.Duration(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	load := make([]time.Duration, slots)
	for _, t := range sorted {
		// Least-loaded slot.
		min := 0
		for s := 1; s < slots; s++ {
			if load[s] < load[min] {
				min = s
			}
		}
		load[min] += t
	}
	max := load[0]
	for _, l := range load[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

func partition(key string, reducers int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(reducers))
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
