package mapreduce

import (
	"testing"
	"time"
)

// countJob emits one fixed tuple per Map call.
type countJob struct{}

func (countJob) Map(split []Record, emit func(KV)) error {
	emit(KV{Key: "kkkk", Value: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	return nil
}
func (countJob) Reduce(key string, values [][]byte, emit func(KV)) error {
	emit(KV{Key: key, Value: []byte{byte(len(values))}})
	return nil
}

func TestRepresentsScalesVolumes(t *testing.T) {
	base := []Split{{Records: []Record{{Key: "a", Value: 1}}, Bytes: 1000, Represents: 1}}
	scaled := []Split{{Records: []Record{{Key: "a", Value: 1}}, Bytes: 1000, Represents: 7}}
	cfg := Config{Reducers: 1}

	_, m1, err := Run(countJob{}, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, m7, err := Run(countJob{}, scaled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m7.MapTasks != 7 || m1.MapTasks != 1 {
		t.Fatalf("MapTasks = %d / %d", m1.MapTasks, m7.MapTasks)
	}
	if m7.MapOutputBytes != 7*m1.MapOutputBytes {
		t.Fatalf("MapOutputBytes = %d, want 7×%d", m7.MapOutputBytes, m1.MapOutputBytes)
	}
	if m7.MapOutputTuples != 7*m1.MapOutputTuples {
		t.Fatalf("MapOutputTuples = %d, want 7×%d", m7.MapOutputTuples, m1.MapOutputTuples)
	}
	// Total charged input is the split's Bytes either way.
	if m1.InputBytes != 1000 || m7.InputBytes != 1000 {
		t.Fatalf("InputBytes = %d / %d", m1.InputBytes, m7.InputBytes)
	}
	// With one map slot the seven modeled tasks serialize.
	slotCfg := Config{Reducers: 1, MapSlots: 1, Cost: CostModel{
		DiskBandwidth: 1e9, NetBandwidth: 1e9, TaskOverhead: 100 * time.Millisecond,
	}}
	_, mSer, err := Run(countJob{}, scaled, slotCfg)
	if err != nil {
		t.Fatal(err)
	}
	if mSer.MapTime < 7*100*time.Millisecond {
		t.Fatalf("serialized map time %v < 7 task overheads", mSer.MapTime)
	}
}

func TestRepresentsDefaultsToOne(t *testing.T) {
	s := Split{Bytes: 10}
	if s.represents() != 1 {
		t.Fatalf("represents() = %d", s.represents())
	}
	s.Represents = -3
	if s.represents() != 1 {
		t.Fatalf("negative represents() = %d", s.represents())
	}
}

func TestReduceSideScalesWithMultiplicity(t *testing.T) {
	// Reduce merge volume scales by the tuple multiplicity, inflating
	// the modeled reduce time.
	mk := func(rep int) *Metrics {
		splits := []Split{{Records: []Record{{Key: "a", Value: 1}}, Bytes: 100, Represents: rep}}
		_, met, err := Run(countJob{}, splits, Config{Reducers: 1, Cost: CostModel{
			DiskBandwidth: 1e6, NetBandwidth: 1e6, TupleCPU: time.Millisecond,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	small, big := mk(1), mk(50)
	if big.ReduceTime <= small.ReduceTime {
		t.Fatalf("reduce time did not scale: %v vs %v", small.ReduceTime, big.ReduceTime)
	}
	if big.ShuffleTime <= small.ShuffleTime {
		t.Fatalf("shuffle time did not scale: %v vs %v", small.ShuffleTime, big.ShuffleTime)
	}
}
