package mapreduce

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"csoutlier/internal/keydict"
	"csoutlier/internal/outlier"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// buildWorkload converts a generated click-log workload into input
// splits: each data-center slice becomes raw records, shuffled and
// chunked so one DC spans several mapper splits.
func buildWorkload(t testing.TB, scale float64, dcs, splitsPerDC int, seed uint64) (*keydict.Dictionary, []Split, *workload.ClickLogs) {
	t.Helper()
	cl := workload.GenerateClickLogs(workload.ClickLogConfig{
		Query: workload.CoreSearchClicks, DataCenters: dcs, ScaleN: scale, Seed: seed,
	})
	dict := keydict.FromSorted(cl.Keys)
	r := xrand.New(seed + 77)
	var splits []Split
	for dc := 0; dc < dcs; dc++ {
		var recs []Record
		for i, key := range cl.Keys {
			if v := cl.Slices[dc][i]; v != 0 {
				recs = append(recs, Record{Key: key, Value: v})
			}
		}
		r.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
		per := (len(recs) + splitsPerDC - 1) / splitsPerDC
		for off := 0; off < len(recs); off += per {
			end := off + per
			if end > len(recs) {
				end = len(recs)
			}
			chunk := recs[off:end]
			splits = append(splits, Split{Records: chunk, Bytes: int64(len(chunk)) * 40})
		}
	}
	return dict, splits, cl
}

func TestEncodingRoundTrips(t *testing.T) {
	for _, id := range []uint32{0, 1, 1 << 20, ^uint32(0)} {
		got, err := decodeKeyID(encodeKeyID(id))
		if err != nil || got != id {
			t.Fatalf("key id %d -> %d, %v", id, got, err)
		}
	}
	for _, v := range []float64{0, -1.5, math.Pi, math.Inf(1)} {
		got, err := decodeFloat(encodeFloat(v))
		if err != nil || got != v {
			t.Fatalf("float %v -> %v, %v", v, got, err)
		}
	}
	vs := []float64{1, 2, -3.5}
	got, err := decodeFloats(encodeFloats(vs))
	if err != nil || len(got) != 3 || got[2] != -3.5 {
		t.Fatalf("floats roundtrip = %v, %v", got, err)
	}
	if _, err := decodeKeyID("abc"); err == nil {
		t.Fatal("short key id accepted")
	}
	if _, err := decodeFloat([]byte{1, 2}); err == nil {
		t.Fatal("short float accepted")
	}
	if _, err := decodeFloats(make([]byte, 9)); err == nil {
		t.Fatal("ragged float vector accepted")
	}
}

func TestTopKJobAggregatesCorrectly(t *testing.T) {
	dict, splits, cl := buildWorkload(t, 0.01, 3, 2, 1)
	out, met, err := Run(&TopKJob{Dict: dict}, splits, Config{Reducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if met.MapTasks != len(splits) || met.ReduceTasks != 3 {
		t.Fatalf("metrics tasks = %+v", met)
	}
	// Every key's reduced total must equal the global aggregate.
	got := map[int]float64{}
	for _, kv := range out {
		id, err := decodeKeyID(kv.Key)
		if err != nil {
			t.Fatal(err)
		}
		v, err := decodeFloat(kv.Value)
		if err != nil {
			t.Fatal(err)
		}
		got[int(id)] += v
	}
	for i, want := range cl.Global {
		if math.Abs(got[i]-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("key %d: reduced %v, want %v", i, got[i], want)
		}
	}
}

func TestTopKFromOutput(t *testing.T) {
	out := []KV{
		{Key: encodeKeyID(0), Value: encodeFloat(5)},
		{Key: encodeKeyID(1), Value: encodeFloat(-50)},
		{Key: encodeKeyID(2), Value: encodeFloat(30)},
	}
	top, err := TopKFromOutput(out, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Index != 1 || top[1].Index != 2 {
		t.Fatalf("TopKFromOutput = %v (must rank by |value|)", top)
	}
}

func TestSketchJobEndToEnd(t *testing.T) {
	const k = 5
	dict, splits, cl := buildWorkload(t, 0.05, 3, 2, 2)
	p := sensing.Params{M: 180, N: dict.N(), Seed: 50}
	job := &SketchJob{Dict: dict, Params: p, K: k}
	out, met, err := Run(job, splits, Config{Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, mode, err := OutliersFromOutput(out, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mode-cl.Mode) > 0.05*math.Abs(cl.Mode) {
		t.Fatalf("mode = %v, want ≈%v", mode, cl.Mode)
	}
	truth := cl.TrueTopOutliers(k)
	if ek := outlier.ErrorOnKey(truth, got); ek > 0.21 {
		t.Fatalf("EK = %v (truth %v, got %v)", ek, truth, got)
	}
	// The headline claim: CS map output is a tiny fraction of the
	// traditional job's tuple shipping.
	outTrad, metTrad, err := Run(&TopKJob{Dict: dict}, splits, Config{Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = outTrad
	if met.MapOutputBytes >= metTrad.MapOutputBytes {
		t.Fatalf("CS map output %d >= traditional %d", met.MapOutputBytes, metTrad.MapOutputBytes)
	}
}

func TestSketchJobMapOutputBytesExact(t *testing.T) {
	dict, splits, _ := buildWorkload(t, 0.01, 2, 2, 3)
	p := sensing.Params{M: 60, N: dict.N(), Seed: 51}
	_, met, err := Run(&SketchJob{Dict: dict, Params: p, K: 3}, splits, Config{Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Each mapper ships one sketch of M·8 bytes plus the 3-byte key.
	want := int64(len(splits)) * (int64(p.M)*8 + int64(len(sketchKey)))
	if met.MapOutputBytes != want {
		t.Fatalf("MapOutputBytes = %d, want %d", met.MapOutputBytes, want)
	}
}

func TestSketchJobRejectsUnknownKey(t *testing.T) {
	dict := keydict.FromSorted([]string{"a"})
	p := sensing.Params{M: 4, N: 1, Seed: 1}
	splits := []Split{{Records: []Record{{Key: "zz", Value: 1}}, Bytes: 10}}
	if _, _, err := Run(&SketchJob{Dict: dict, Params: p, K: 1}, splits, Config{}); err == nil {
		t.Fatal("unknown key accepted")
	}
}

type errJob struct{ onMap bool }

func (e *errJob) Map(split []Record, emit func(KV)) error {
	if e.onMap {
		return errors.New("map boom")
	}
	emit(KV{Key: "k", Value: []byte{1}})
	return nil
}
func (e *errJob) Reduce(key string, values [][]byte, emit func(KV)) error {
	return errors.New("reduce boom")
}

func TestErrorPropagation(t *testing.T) {
	splits := []Split{{Records: []Record{{Key: "a", Value: 1}}, Bytes: 1}}
	if _, _, err := Run(&errJob{onMap: true}, splits, Config{}); err == nil {
		t.Fatal("map error swallowed")
	}
	if _, _, err := Run(&errJob{}, splits, Config{}); err == nil {
		t.Fatal("reduce error swallowed")
	}
}

func TestCostModelMonotonicInBytes(t *testing.T) {
	// More input bytes must never make the modeled job faster.
	dict, splits, _ := buildWorkload(t, 0.01, 2, 2, 4)
	p := sensing.Params{M: 50, N: dict.N(), Seed: 52}
	run := func(mult int64) time.Duration {
		scaled := make([]Split, len(splits))
		for i, s := range splits {
			scaled[i] = Split{Records: s.Records, Bytes: s.Bytes * mult}
		}
		_, met, err := Run(&SketchJob{Dict: dict, Params: p, K: 3}, scaled, Config{Reducers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return met.MapTime + met.ShuffleTime // exclude real reduce CPU jitter
	}
	small, big := run(1), run(1000)
	if big <= small {
		t.Fatalf("1000x input bytes modeled faster: %v <= %v", big, small)
	}
}

func TestMapCPUScale(t *testing.T) {
	dict, splits, _ := buildWorkload(t, 0.01, 2, 1, 5)
	cfgA := Config{Reducers: 1, Cost: CostModel{DiskBandwidth: 1e9, NetBandwidth: 1e9, MapCPUScale: 1}}
	cfgB := cfgA
	cfgB.Cost.MapCPUScale = 1000
	_, a, err := Run(&TopKJob{Dict: dict}, splits, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Run(&TopKJob{Dict: dict}, splits, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if b.MapCPU <= a.MapCPU {
		t.Fatalf("MapCPUScale had no effect: %v vs %v", a.MapCPU, b.MapCPU)
	}
}

func TestScheduleWaves(t *testing.T) {
	// 4 equal tasks on 2 slots = 2 waves.
	tasks := []time.Duration{time.Second, time.Second, time.Second, time.Second}
	if got := scheduleWaves(tasks, 2); got != 2*time.Second {
		t.Fatalf("scheduleWaves = %v, want 2s", got)
	}
	// One giant task dominates regardless of slots.
	tasks = []time.Duration{10 * time.Second, time.Second}
	if got := scheduleWaves(tasks, 8); got != 10*time.Second {
		t.Fatalf("scheduleWaves = %v, want 10s", got)
	}
	if got := scheduleWaves(nil, 4); got != 0 {
		t.Fatalf("empty scheduleWaves = %v", got)
	}
	// Slot count must help: same tasks, more slots, no slower.
	tasks = []time.Duration{3 * time.Second, 2 * time.Second, 2 * time.Second, time.Second}
	if scheduleWaves(tasks, 4) > scheduleWaves(tasks, 2) {
		t.Fatal("more slots made schedule slower")
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		p := partition(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition out of range: %d", p)
		}
		if p != partition(key, 7) {
			t.Fatal("partition not deterministic")
		}
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	dict, splits, _ := buildWorkload(t, 0.01, 2, 2, 6)
	out1, _, err := Run(&TopKJob{Dict: dict}, splits, Config{Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Run(&TopKJob{Dict: dict}, splits, Config{Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != len(out2) {
		t.Fatal("nondeterministic output size")
	}
	for i := range out1 {
		if out1[i].Key != out2[i].Key {
			t.Fatalf("output order differs at %d", i)
		}
	}
}
