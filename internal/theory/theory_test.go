package theory

import (
	"math"
	"testing"
)

func TestConjecture1HoldsAtPaperScale(t *testing.T) {
	// Paper §4.1: for M, s ≥ 10, ‖Φ∗ᵀr‖₂ ≥ 0.5‖r‖₂ "always holds by a
	// large margin".
	rep := VerifyConjecture1(100, 10, 2000, 1)
	if rep.Failures != 0 {
		t.Fatalf("%d failures at M=100 s=10", rep.Failures)
	}
	if rep.MinRatio < 0.7 {
		t.Fatalf("margin too thin: min ratio %v", rep.MinRatio)
	}
	if rep.CLowerBound <= 0 {
		t.Fatalf("c bound %v", rep.CLowerBound)
	}
}

func TestConjecture1SmallS(t *testing.T) {
	// s=2 is the paper's stress case (largest ζ = 1/√2). Failures may
	// occur but must be exponentially rare.
	rep := VerifyConjecture1(30, 2, 5000, 2)
	if rate := float64(rep.Failures) / float64(rep.Trials); rate > 0.01 {
		t.Fatalf("failure rate %v too high at s=2", rate)
	}
	if rep.MinRatio == math.Inf(1) {
		t.Fatal("no trials ran")
	}
}

func TestConjecture1ReportFields(t *testing.T) {
	rep := VerifyConjecture1(20, 3, 100, 3)
	if rep.M != 20 || rep.S != 3 || rep.Trials != 100 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestConjecture2HoldsWithA11(t *testing.T) {
	// Paper §4.2: with a = 1.1 no counterexamples were observed, "by a
	// wide margin in all cases". ζ = 1/√N with N = 1000.
	zeta := 1 / math.Sqrt(1000)
	rep := VerifyConjecture2(100, 5000, zeta, []float64{0.05, 0.1, 0.2, 0.4}, 4)
	if !rep.AllHold() {
		t.Fatalf("conjecture 2 violated: %+v", rep.Points)
	}
	for _, p := range rep.Points {
		if p.Observed < 0 || p.Observed > 1 {
			t.Fatalf("observed probability %v", p.Observed)
		}
	}
}

func TestConjecture2SmallZetaRegime(t *testing.T) {
	// The conjecture's hypothesis is |ζ| "sufficiently small" — the
	// dependence shifts ⟨x, y′⟩ by ≈ ζ, so the bound can only hold when
	// ε is not inside that shift. At ζ = 1/√10000 = 0.01 (a BOMP run
	// with N = 10K keys) the bound must hold comfortably.
	rep := VerifyConjecture2(200, 3000, 1/math.Sqrt(10000), []float64{0.1, 0.3}, 5)
	if !rep.AllHold() {
		t.Fatalf("conjecture 2 violated at small ζ: %+v", rep.Points)
	}
}

func TestConjecture2LargeZetaOutsideHypothesis(t *testing.T) {
	// Sanity check on the harness itself: when ζ is NOT small (ζ = 1/√10)
	// the inner product concentrates near ζ ≈ 0.32 and the ε = 0.1 bound
	// must fail — confirming the verifier can detect violations and that
	// the conjecture's small-ζ hypothesis is load-bearing.
	rep := VerifyConjecture2(200, 3000, 1/math.Sqrt(10), []float64{0.1}, 5)
	if rep.AllHold() {
		t.Fatal("verifier failed to flag a large-ζ violation")
	}
}

func TestConjecture2MonotoneInEpsilon(t *testing.T) {
	rep := VerifyConjecture2(50, 2000, 0.05, []float64{0.1, 0.2, 0.5, 1.0}, 6)
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].Observed < rep.Points[i-1].Observed {
			t.Fatalf("observed probability not monotone in ε: %+v", rep.Points)
		}
	}
	// At ε = 1 essentially everything is within (|⟨x,y′⟩| ≤ ‖x‖ ≈ 1).
	last := rep.Points[len(rep.Points)-1]
	if last.Observed < 0.99 {
		t.Fatalf("P(|ip| ≤ 1) = %v", last.Observed)
	}
}
