// Package theory numerically verifies the two conjectures that the
// paper's Theorem 1 (the O(sᵃ·log N) measurement bound for BOMP) rests
// on (§4.1–4.2). The paper reports "extensive numerical experiments"
// with no observed counterexamples; this package reproduces those
// experiments.
//
// Conjecture 1 (Near-Isometric Transformation): for a random M×(s+1)
// matrix Φ∗ whose first column is weakly dependent on the others
// (covariance ζI), every r ∈ span(Φ∗) satisfies ‖Φ∗ᵀr‖₂ ≥ 0.5‖r‖₂ with
// probability ≥ 1 − e^(−cM); the paper observes c ≈ 0.4 at s = 2 and a
// wide margin for M, s ≥ 10.
//
// Conjecture 2 (Near-Independent Inner Product): for M-vectors x, y of
// i.i.d. N(0, 1/M) entries with cross-covariance ζI and y′ = y/‖y‖₂,
// P(|⟨x, y′⟩| ≤ ε) ≥ 1 − e^(−ε²aM/2) holds with a = 1.1.
package theory

import (
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

// Conjecture1Report summarizes a Conjecture-1 verification run.
type Conjecture1Report struct {
	M, S     int
	Trials   int
	Failures int     // trials where ‖Φ∗ᵀr‖₂ < 0.5‖r‖₂
	MinRatio float64 // worst observed ‖Φ∗ᵀr‖₂ / ‖r‖₂
	// CLowerBound is the empirical lower bound on the constant c implied
	// by the failure count: failures/trials ≤ e^(−cM). With zero failures
	// it is the resolution limit −ln(1/trials)/M.
	CLowerBound float64
}

// VerifyConjecture1 builds the worst-case dependence structure the paper
// tests (ζ at its largest, the first column being the normalized sum of
// the other s — exactly BOMP's extension column restricted to the
// support), draws random r ∈ span(Φ∗), and measures the isometry ratio.
func VerifyConjecture1(m, s, trials int, seed uint64) Conjecture1Report {
	r := xrand.New(seed)
	rep := Conjecture1Report{M: m, S: s, Trials: trials, MinRatio: math.Inf(1)}
	inv := 1 / math.Sqrt(float64(m))
	for trial := 0; trial < trials; trial++ {
		// s independent columns.
		cols := make([]linalg.Vector, s+1)
		for j := 1; j <= s; j++ {
			c := make(linalg.Vector, m)
			for i := range c {
				c[i] = r.NormFloat64() * inv
			}
			cols[j] = c
		}
		// First column: normalized sum → correlation 1/√s with each other
		// column, the maximal ζ the paper probes.
		phi0 := make(linalg.Vector, m)
		for j := 1; j <= s; j++ {
			phi0.Add(cols[j])
		}
		phi0.Scale(1 / math.Sqrt(float64(s)))
		cols[0] = phi0

		// Random vector in span(Φ∗).
		rv := make(linalg.Vector, m)
		for _, c := range cols {
			rv.AddScaled(r.NormFloat64(), c)
		}
		rn := rv.Norm2()
		if rn == 0 {
			continue
		}
		// ‖Φ∗ᵀ r‖₂.
		ss := 0.0
		for _, c := range cols {
			d := c.Dot(rv)
			ss += d * d
		}
		ratio := math.Sqrt(ss) / rn
		if ratio < rep.MinRatio {
			rep.MinRatio = ratio
		}
		if ratio < 0.5 {
			rep.Failures++
		}
	}
	failRate := float64(rep.Failures) / float64(trials)
	if failRate == 0 {
		failRate = 1 / float64(trials)
	}
	rep.CLowerBound = -math.Log(failRate) / float64(m)
	return rep
}

// Conjecture2Point is the observed vs conjectured probability at one ε.
type Conjecture2Point struct {
	Epsilon     float64
	Observed    float64 // empirical P(|⟨x, y′⟩| ≤ ε)
	Conjectured float64 // 1 − e^(−ε²aM/2) with a = 1.1
	// Holds is Observed ≥ Conjectured − margin, where margin is three
	// binomial standard errors plus one-trial resolution: an empirical
	// estimate of a 10⁻⁵-scale tail cannot be compared to the bound
	// tighter than the sampling noise allows.
	Holds bool
}

// Conjecture2Report summarizes a Conjecture-2 verification run.
type Conjecture2Report struct {
	M      int
	Zeta   float64 // correlation between x and y entries
	A      float64 // the conjectured absolute constant (1.1)
	Trials int
	Points []Conjecture2Point
}

// AllHold reports whether every ε point satisfied the conjectured bound.
func (r Conjecture2Report) AllHold() bool {
	for _, p := range r.Points {
		if !p.Holds {
			return false
		}
	}
	return true
}

// VerifyConjecture2 draws correlated Gaussian pairs (x, y) with
// per-entry correlation zeta — the paper's worst case is ζ = 1/√N from
// the extension column — and compares the empirical inner-product tail
// against the conjectured bound with a = 1.1.
func VerifyConjecture2(m, trials int, zeta float64, epsilons []float64, seed uint64) Conjecture2Report {
	const a = 1.1
	r := xrand.New(seed)
	rep := Conjecture2Report{M: m, Zeta: zeta, A: a, Trials: trials}
	inv := 1 / math.Sqrt(float64(m))
	comp := math.Sqrt(1 - zeta*zeta)
	within := make([]int, len(epsilons))
	for trial := 0; trial < trials; trial++ {
		x := make(linalg.Vector, m)
		y := make(linalg.Vector, m)
		for i := 0; i < m; i++ {
			gx := r.NormFloat64()
			gy := r.NormFloat64()
			x[i] = gx * inv
			y[i] = (zeta*gx + comp*gy) * inv // corr(x_i, y_i) = ζ
		}
		yn := y.Norm2()
		if yn == 0 {
			continue
		}
		ip := math.Abs(x.Dot(y)) / yn
		for e, eps := range epsilons {
			if ip <= eps {
				within[e]++
			}
		}
	}
	for e, eps := range epsilons {
		obs := float64(within[e]) / float64(trials)
		conj := 1 - math.Exp(-eps*eps*a*float64(m)/2)
		margin := 3*math.Sqrt(conj*(1-conj)/float64(trials)) + 1/float64(trials)
		rep.Points = append(rep.Points, Conjecture2Point{
			Epsilon:     eps,
			Observed:    obs,
			Conjectured: conj,
			Holds:       obs >= conj-margin,
		})
	}
	return rep
}
