package cluster

import (
	"math"
	"testing"

	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
)

// The full distributed pipeline must work identically over every
// measurement ensemble, including across the TCP transport (the Spec
// travels on the wire).
func TestDetectAcrossEnsemblesOverTCP(t *testing.T) {
	const n, s, k = 256, 6, 4
	const mode = 1800.0
	nodes, global, _ := makeCluster(t, n, s, 3, mode, 31)
	remotes := make([]NodeAPI, len(nodes))
	for i, nd := range nodes {
		addr := startServer(t, nd)
		rn, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rn.Close() })
		remotes[i] = rn
	}
	truth := outlier.TrueOutliers(global, mode, k)
	for _, spec := range []sensing.Spec{
		{Params: sensing.Params{M: 110, N: n, Seed: 32}, Kind: sensing.KindGaussian},
		{Params: sensing.Params{M: 140, N: n, Seed: 33}, Kind: sensing.KindSparseRademacher, D: 16},
		{Params: sensing.Params{M: 120, N: n, Seed: 34}, Kind: sensing.KindSRHT},
	} {
		y, stats, err := CollectSketchesSpec(remotes, spec)
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		if stats.Bytes != int64(3*spec.M*8) {
			t.Fatalf("%v: bytes %d", spec.Kind, stats.Bytes)
		}
		res, err := DetectSketchSpec(y, spec, k, recovery.Options{})
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		if math.Abs(res.Mode-mode) > 0.02*mode {
			t.Fatalf("%v: mode %v", spec.Kind, res.Mode)
		}
		if ek := outlier.ErrorOnKey(truth, res.Outliers); ek > 0.26 {
			t.Fatalf("%v: EK %v", spec.Kind, ek)
		}
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]sensing.Kind{
		"gaussian": sensing.KindGaussian,
		"":         sensing.KindGaussian,
		"sparse":   sensing.KindSparseRademacher,
		"srht":     sensing.KindSRHT,
	} {
		got, err := sensing.ParseKind(name)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := sensing.ParseKind("fourier"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if sensing.KindSRHT.String() != "srht" || sensing.Kind(9).String() == "" {
		t.Fatal("Kind.String broken")
	}
}

func TestSpecNewDispatch(t *testing.T) {
	p := sensing.Params{M: 8, N: 32, Seed: 1}
	for _, tc := range []struct {
		spec sensing.Spec
		want string
	}{
		{sensing.GaussianSpec(p), "*sensing.Dense"},
		{sensing.Spec{Params: sensing.Params{M: 8, N: 1 << 24, Seed: 1}, Kind: sensing.KindGaussian}, "*sensing.Seeded"},
		{sensing.Spec{Params: p, Kind: sensing.KindSparseRademacher, D: 2}, "*sensing.SparseRademacher"},
		{sensing.Spec{Params: p, Kind: sensing.KindSRHT}, "*sensing.SRHT"},
	} {
		m, err := sensing.New(tc.spec, 0)
		if err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		if got := typeName(m); got != tc.want {
			t.Fatalf("New(%v) = %s, want %s", tc.spec.Kind, got, tc.want)
		}
	}
	if _, err := sensing.New(sensing.Spec{Params: p, Kind: sensing.Kind(99)}, 0); err == nil {
		t.Fatal("unknown kind accepted by New")
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *sensing.Dense:
		return "*sensing.Dense"
	case *sensing.Seeded:
		return "*sensing.Seeded"
	case *sensing.SparseRademacher:
		return "*sensing.SparseRademacher"
	case *sensing.SRHT:
		return "*sensing.SRHT"
	default:
		return "?"
	}
}
