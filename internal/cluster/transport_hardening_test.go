package cluster

import (
	"context"
	"net"
	"sync"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

func TestServerSurvivesGarbageConnection(t *testing.T) {
	node := NewLocalNode("x", linalg.Vector{1, 2, 3})
	addr := startServer(t, node)

	// Throw junk at the server; it must drop the connection quietly.
	junk, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := junk.Write([]byte("GET / HTTP/1.1\r\n\r\n\x00\xff\x00garbage")); err != nil {
		t.Fatal(err)
	}
	junk.Close()

	// A well-formed client must still be served afterwards.
	rn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()
	x, err := rn.FullVector(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(linalg.Vector{1, 2, 3}, 0) {
		t.Fatal("post-garbage request returned wrong data")
	}
}

func TestRemoteNodeConcurrentCalls(t *testing.T) {
	// The client serializes request/response pairs on one connection;
	// concurrent callers must not interleave frames.
	x := make(linalg.Vector, 50)
	for i := range x {
		x[i] = float64(i)
	}
	addr := startServer(t, NewLocalNode("x", x))
	rn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (w + i) % 3 {
				case 0:
					got, err := rn.SampleValues(context.Background(), []int{w})
					if err != nil {
						errs <- err
						return
					}
					if got[0] != float64(w) {
						t.Errorf("interleaved response: got %v want %d", got[0], w)
						return
					}
				case 1:
					if _, err := rn.Sketch(context.Background(), sensing.GaussianSpec(sensing.Params{M: 4, N: 50, Seed: 1})); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := rn.LocalOutliers(context.Background(), 0, 2); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeStopsOnListenerClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(ln, NewLocalNode("x", linalg.Vector{1})) }()
	ln.Close()
	if err := <-done; err == nil {
		t.Fatal("Serve returned nil after listener close")
	}
}
