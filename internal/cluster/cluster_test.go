package cluster

import (
	"context"
	"math"
	"net"
	"sort"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

func makeCluster(t *testing.T, n, s, nodes int, mode float64, seed uint64) ([]NodeAPI, linalg.Vector, []int) {
	t.Helper()
	global, support := workload.MajorityDominated(n, s, mode, 200, 900, seed)
	slices := workload.SplitZeroSumNoise(global, nodes, mode/5, seed+1)
	apis := make([]NodeAPI, nodes)
	for i, sl := range slices {
		apis[i] = NewLocalNode("dc"+string(rune('0'+i)), sl)
	}
	return apis, global, support
}

func TestCollectSketchesEqualsGlobalMeasurement(t *testing.T) {
	nodes, global, _ := makeCluster(t, 150, 6, 5, 1800, 1)
	p := sensing.Params{M: 60, N: 150, Seed: 9}
	y, stats, err := CollectSketches(nodes, p)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := sensing.NewDense(p)
	want := d.Measure(global, nil)
	if !y.Equal(want, 1e-8) {
		t.Fatal("sum of node sketches != sketch of global aggregate")
	}
	if stats.Bytes != int64(5*60*8) {
		t.Fatalf("Bytes = %d, want %d", stats.Bytes, 5*60*8)
	}
	if stats.Rounds != 1 || stats.Messages != 5 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCollectSketchesNoNodes(t *testing.T) {
	if _, _, err := CollectSketches(nil, sensing.Params{M: 2, N: 2}); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestCollectSketchesDimensionError(t *testing.T) {
	nodes := []NodeAPI{NewLocalNode("a", make(linalg.Vector, 10))}
	if _, _, err := CollectSketches(nodes, sensing.Params{M: 4, N: 11, Seed: 1}); err == nil {
		t.Fatal("mismatched N accepted")
	}
}

func TestDetectEndToEnd(t *testing.T) {
	const n, s, k = 300, 8, 5
	const mode = 1800.0
	nodes, global, _ := makeCluster(t, n, s, 4, mode, 2)
	p := sensing.Params{M: 120, N: n, Seed: 10}
	res, err := Detect(nodes, p, k, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-mode) > 1 {
		t.Fatalf("mode = %v, want %v", res.Mode, mode)
	}
	truth := outlier.TrueOutliers(global, mode, k)
	if ek := outlier.ErrorOnKey(truth, res.Outliers); ek != 0 {
		t.Fatalf("EK = %v with M=%d", ek, p.M)
	}
	if ev := outlier.ErrorOnValue(truth, res.Outliers); ev > 0.01 {
		t.Fatalf("EV = %v", ev)
	}
}

func TestLocalNodeSampleValues(t *testing.T) {
	n := NewLocalNode("x", linalg.Vector{10, 20, 30})
	vs, err := n.SampleValues(context.Background(), []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if vs[0] != 30 || vs[1] != 10 {
		t.Fatalf("SampleValues = %v", vs)
	}
	if _, err := n.SampleValues(context.Background(), []int{3}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestLocalNodeLocalOutliers(t *testing.T) {
	n := NewLocalNode("x", linalg.Vector{5, 5, 100, 5, -60})
	kvs, err := n.LocalOutliers(context.Background(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || kvs[0].Index != 2 {
		t.Fatalf("LocalOutliers = %v", kvs)
	}
}

func TestLocalNodeUpdateChangesSketch(t *testing.T) {
	// Incremental data arrival (paper §1 challenge 2): after Update, the
	// node's sketch equals the sketch of the updated slice, and the old
	// global sketch can be patched by adding the delta's sketch.
	p := sensing.Params{M: 30, N: 50, Seed: 3}
	x, _ := workload.MajorityDominated(50, 3, 100, 10, 40, 4)
	n := NewLocalNode("x", x.Clone())
	before, err := n.Sketch(context.Background(), sensing.GaussianSpec(p))
	if err != nil {
		t.Fatal(err)
	}
	delta := make(linalg.Vector, 50)
	delta[7] = 500
	if err := n.Update(delta); err != nil {
		t.Fatal(err)
	}
	after, err := n.Sketch(context.Background(), sensing.GaussianSpec(p))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := sensing.NewDense(p)
	patched := before.Clone()
	sensing.AddSketch(patched, d.Measure(delta, nil))
	if !patched.Equal(after, 1e-9) {
		t.Fatal("patched sketch != re-measured sketch")
	}
	if err := n.Update(make(linalg.Vector, 49)); err == nil {
		t.Fatal("wrong-length update accepted")
	}
}

func TestNodeRemovalBySketchSubtraction(t *testing.T) {
	// Paper §1 challenge 3: removing a data center = subtracting its
	// sketch. Detection on the remaining nodes must equal detection on a
	// cluster that never contained it.
	nodes, _, _ := makeCluster(t, 200, 5, 4, 1000, 5)
	p := sensing.Params{M: 80, N: 200, Seed: 11}
	all, _, err := CollectSketches(nodes, p)
	if err != nil {
		t.Fatal(err)
	}
	leaving, err := nodes[3].Sketch(context.Background(), sensing.GaussianSpec(p))
	if err != nil {
		t.Fatal(err)
	}
	sensing.SubSketch(all, leaving)
	remaining, _, err := CollectSketches(nodes[:3], p)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Equal(remaining, 1e-8) {
		t.Fatal("subtracted sketch != sketch of remaining nodes")
	}
}

func startServer(t *testing.T, node NodeAPI) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(ln, node)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func TestTCPTransportAllMethods(t *testing.T) {
	x := linalg.Vector{5, 5, 100, 5, -60}
	addr := startServer(t, NewLocalNode("dc-tokyo", x))
	rn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	if rn.ID() != "dc-tokyo" {
		t.Fatalf("ID = %q", rn.ID())
	}
	p := sensing.Params{M: 3, N: 5, Seed: 12}
	y, err := rn.Sketch(context.Background(), sensing.GaussianSpec(p))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := sensing.NewDense(p)
	if !y.Equal(d.Measure(x, nil), 1e-9) {
		t.Fatal("remote sketch mismatch")
	}
	full, err := rn.FullVector(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !full.Equal(x, 0) {
		t.Fatal("remote full vector mismatch")
	}
	vs, err := rn.SampleValues(context.Background(), []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if vs[0] != -60 || vs[1] != 100 {
		t.Fatalf("remote SampleValues = %v", vs)
	}
	kvs, err := rn.LocalOutliers(context.Background(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Index != 2 || kvs[1].Index != 4 {
		t.Fatalf("remote LocalOutliers = %v", kvs)
	}
	// Errors must propagate as errors, not crashes.
	if _, err := rn.Sketch(context.Background(), sensing.GaussianSpec(sensing.Params{M: 3, N: 99, Seed: 1})); err == nil {
		t.Fatal("remote dimension error not propagated")
	}
	// The connection must survive an error response.
	if _, err := rn.FullVector(context.Background()); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestTCPDetectEndToEnd(t *testing.T) {
	// Full paper pipeline over real sockets.
	const n, s, k = 200, 6, 4
	nodes, global, _ := makeCluster(t, n, s, 3, 1800, 6)
	remotes := make([]NodeAPI, len(nodes))
	for i, nd := range nodes {
		addr := startServer(t, nd)
		rn, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer rn.Close()
		remotes[i] = rn
	}
	p := sensing.Params{M: 100, N: n, Seed: 13}
	res, err := Detect(remotes, p, k, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := outlier.TrueOutliers(global, 1800, k)
	if ek := outlier.ErrorOnKey(truth, res.Outliers); ek != 0 {
		t.Fatalf("EK over TCP = %v", ek)
	}
}

func TestDialRefused(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestCommStatsAdd(t *testing.T) {
	a := CommStats{Bytes: 10, Messages: 1, Rounds: 1}
	a.Add(CommStats{Bytes: 5, Messages: 2, Rounds: 3})
	if a.Bytes != 15 || a.Messages != 3 || a.Rounds != 3 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestDetectOrderedByDivergence(t *testing.T) {
	nodes, _, _ := makeCluster(t, 250, 7, 3, 500, 7)
	p := sensing.Params{M: 110, N: 250, Seed: 14}
	res, err := Detect(nodes, p, 7, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	divs := make([]float64, len(res.Outliers))
	for i, kv := range res.Outliers {
		divs[i] = math.Abs(kv.Value - res.Mode)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(divs))) {
		t.Fatalf("outliers not sorted by divergence: %v", divs)
	}
}
