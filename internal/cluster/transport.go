package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// The TCP transport speaks a tiny gob-framed request/response protocol
// over a persistent connection: the aggregator (client) encodes one
// request struct, the node (server) replies with one response struct.
// This is the real-network counterpart of LocalNode, used by cmd/csnode
// and cmd/csagg; the geo-distributed deployment of the paper's §1 maps
// one csnode process to one data center.
//
// Failure is treated as the normal case (§1 challenges 2–3): every
// round-trip carries a deadline, a connection whose gob stream errored
// mid-exchange is poisoned and transparently re-dialed (the encoder and
// decoder of a broken stream are never reused — a half-written frame
// would desync every later request), and the client keeps per-node
// health counters the aggregator can surface.

type reqKind uint8

const (
	reqID reqKind = iota + 1
	reqSketch
	reqFull
	reqSample
	reqOutliers
)

type request struct {
	Kind    reqKind
	Spec    sensing.Spec
	Indices []int
	Mode    float64
	Count   int
}

type response struct {
	Err  string
	Name string
	Vec  []float64
	KVs  []outlier.KV
}

// ServeOptions tunes the node-side server.
type ServeOptions struct {
	// IdleTimeout bounds how long a connection may sit between requests
	// (and how long one request frame may take to arrive). 0 = no limit.
	IdleTimeout time.Duration
	// RequestTimeout bounds the handling of a single request via the
	// context handed to the NodeAPI implementation. 0 = no limit.
	RequestTimeout time.Duration
}

// Serve answers NodeAPI requests for node on the listener until the
// listener is closed. It returns the first accept error (including the
// closed-listener error on shutdown).
func Serve(ln net.Listener, node NodeAPI) error {
	return ServeWith(ln, node, ServeOptions{})
}

// ServeWith is Serve with explicit timeouts.
func ServeWith(ln net.Listener, node NodeAPI, opts ServeOptions) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, node, opts)
	}
}

func serveConn(conn net.Conn, node NodeAPI, opts ServeOptions) {
	defer conn.Close()
	var arm, disarm func()
	if opts.IdleTimeout > 0 {
		arm = func() { conn.SetReadDeadline(time.Now().Add(opts.IdleTimeout)) }
		disarm = func() { conn.SetReadDeadline(time.Time{}) }
	}
	serveFrames(conn, conn, node, opts, arm, disarm)
}

// ServeStream answers request frames decoded from r with response frames
// encoded to w, until r ends or yields bytes that are not a frame. It is
// the transport's frame loop detached from TCP: the fuzz target for the
// frame decoder drives it with arbitrary bytes, and in-process tests can
// run the exact server path over any io.Reader/io.Writer pair.
// ServeOptions.IdleTimeout does not apply (there is no connection to arm
// a deadline on); RequestTimeout is honored.
func ServeStream(r io.Reader, w io.Writer, node NodeAPI, opts ServeOptions) {
	serveFrames(r, w, node, opts, nil, nil)
}

// SketchRequestFrame encodes the wire frame of a sketch request for the
// given spec — the aggregator's hot message. Exposed so fuzz corpora and
// protocol tests can construct valid frames without a live connection.
func SketchRequestFrame(spec sensing.Spec) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&request{Kind: reqSketch, Spec: spec}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// serveFrames is the protocol loop shared by the TCP server and
// ServeStream: decode one request, handle it under the request timeout,
// encode one response. arm/disarm, when non-nil, run before and after
// each frame decode (the TCP path uses them for the idle deadline).
func serveFrames(r io.Reader, w io.Writer, node NodeAPI, opts ServeOptions, arm, disarm func()) {
	dec := gob.NewDecoder(r)
	enc := gob.NewEncoder(w)
	for {
		if arm != nil {
			arm()
		}
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client went away (io.EOF), idled out, or sent garbage
		}
		if disarm != nil {
			disarm()
		}
		ctx := context.Background()
		cancel := func() {}
		if opts.RequestTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, opts.RequestTimeout)
		}
		resp := handle(ctx, node, &req)
		cancel()
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func handle(ctx context.Context, node NodeAPI, req *request) *response {
	switch req.Kind {
	case reqID:
		return &response{Name: node.ID()}
	case reqSketch:
		// The spec crossed the wire: validate before it sizes allocations.
		if err := req.Spec.Validate(); err != nil {
			return &response{Err: err.Error()}
		}
		y, err := node.Sketch(ctx, req.Spec)
		return vecResp(y, err)
	case reqFull:
		x, err := node.FullVector(ctx)
		return vecResp(x, err)
	case reqSample:
		vs, err := node.SampleValues(ctx, req.Indices)
		return vecResp(vs, err)
	case reqOutliers:
		kvs, err := node.LocalOutliers(ctx, req.Mode, req.Count)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{KVs: kvs}
	default:
		return &response{Err: fmt.Sprintf("cluster: unknown request kind %d", req.Kind)}
	}
}

func vecResp(v []float64, err error) *response {
	if err != nil {
		return &response{Err: err.Error()}
	}
	return &response{Vec: v}
}

// DialOptions tunes the client side of the transport. The zero value
// gets production-safe defaults.
type DialOptions struct {
	// DialTimeout bounds each TCP dial attempt (default 5s).
	DialTimeout time.Duration
	// RequestTimeout is the per-round-trip deadline applied when the
	// caller's context carries none (default 30s; <0 disables).
	RequestTimeout time.Duration
	// MaxRetries is how many times a round-trip is retried on a fresh
	// connection after a transport failure (default 2; <0 disables).
	MaxRetries int
	// BaseBackoff is the first retry delay; it doubles per retry with
	// full jitter (default 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the retry delay (default 1s).
	MaxBackoff time.Duration
	// BackoffSeed seeds the per-client retry-jitter RNG (the PR 5
	// NodeOptions.BackoffSeed analogue). 0 derives a stable seed from
	// the dialed address, so jitter is deterministic per target and
	// never touches the global math/rand state — simtest replays stay
	// bit-identical on the pull path.
	BackoffSeed uint64
}

func (o DialOptions) withDefaults() DialOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	return o
}

// NodeHealth is a snapshot of one RemoteNode's transport counters.
type NodeHealth struct {
	Attempts     int           // round-trips started, including retries
	Retries      int           // round-trips beyond a request's first attempt
	Timeouts     int           // attempts that died on a deadline
	Redials      int           // connections re-established after a poisoned one
	Failures     int           // requests that exhausted retries (errors seen by callers)
	BytesRead    int64         // raw wire bytes received
	BytesWritten int64         // raw wire bytes sent
	LastRTT      time.Duration // round-trip time of the most recent completed exchange
	AvgRTT       time.Duration // mean round-trip time over completed exchanges
}

// countingConn counts raw wire bytes into a RemoteNode's health.
type countingConn struct {
	net.Conn
	r, w *int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	atomic.AddInt64(c.r, int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	atomic.AddInt64(c.w, int64(n))
	return n, err
}

// RemoteNode is a NodeAPI over a TCP connection to a Serve-d node. A
// transport failure poisons the current connection; the next attempt
// (within the same request, up to MaxRetries, or a later request)
// transparently re-dials.
type RemoteNode struct {
	addr string
	opts DialOptions
	name string

	mu  sync.Mutex // serializes round-trips: the protocol is strictly request/response
	rng *xrand.RNG // retry jitter; accessed only under mu

	connMu sync.Mutex // guards conn/enc/dec/closed; Close may race a round-trip
	conn   net.Conn
	dec    *gob.Decoder
	enc    *gob.Encoder
	closed bool

	bytesRead    int64 // atomic
	bytesWritten int64 // atomic

	hmu      sync.Mutex
	health   NodeHealth
	okCount  int64
	totalRTT time.Duration
}

// Dial connects to a node served at addr and fetches its ID.
func Dial(addr string) (*RemoteNode, error) {
	return DialContext(context.Background(), addr, DialOptions{})
}

// DialContext is Dial with a context and explicit transport options.
func DialContext(ctx context.Context, addr string, opts DialOptions) (*RemoteNode, error) {
	r := &RemoteNode{addr: addr, opts: opts.withDefaults()}
	r.rng = xrand.New(backoffSeed(r.opts.BackoffSeed, addr))
	resp, err := r.roundTrip(ctx, &request{Kind: reqID})
	if err != nil {
		r.Close()
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	r.name = resp.Name
	return r, nil
}

// Addr returns the address the node was dialed at.
func (r *RemoteNode) Addr() string { return r.addr }

// Health returns a snapshot of the node's transport counters.
func (r *RemoteNode) Health() NodeHealth {
	r.hmu.Lock()
	defer r.hmu.Unlock()
	h := r.health
	h.BytesRead = atomic.LoadInt64(&r.bytesRead)
	h.BytesWritten = atomic.LoadInt64(&r.bytesWritten)
	if r.okCount > 0 {
		h.AvgRTT = r.totalRTT / time.Duration(r.okCount)
	}
	return h
}

// Close releases the connection. An in-flight round-trip observes a
// closed-connection error.
func (r *RemoteNode) Close() error {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	r.closed = true
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}

// errClosed is returned for requests on an explicitly-Closed node.
var errClosed = errors.New("cluster: node is closed")

// acquireConn returns the live connection, dialing a fresh one if the
// previous one was poisoned. Called with r.mu held.
func (r *RemoteNode) acquireConn(ctx context.Context) (net.Conn, *gob.Encoder, *gob.Decoder, error) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.closed {
		return nil, nil, nil, errClosed
	}
	if r.conn != nil {
		return r.conn, r.enc, r.dec, nil
	}
	dctx := ctx
	if r.opts.DialTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, r.opts.DialTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", r.addr)
	if err != nil {
		return nil, nil, nil, err
	}
	cc := &countingConn{Conn: conn, r: &r.bytesRead, w: &r.bytesWritten}
	// A fresh gob encoder/decoder pair per connection: gob streams are
	// stateful (type descriptors), so they can never outlive their conn.
	r.conn, r.enc, r.dec = cc, gob.NewEncoder(cc), gob.NewDecoder(cc)
	return r.conn, r.enc, r.dec, nil
}

// poison discards conn if it is still the node's live connection, so the
// next attempt re-dials instead of reusing a desynced gob stream.
func (r *RemoteNode) poison(conn net.Conn) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.conn == conn && conn != nil {
		conn.Close()
		r.conn, r.enc, r.dec = nil, nil, nil
	}
}

func (r *RemoteNode) roundTrip(ctx context.Context, req *request) (*response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	hadConn := false
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			r.note(func(h *NodeHealth) { h.Retries++ })
			if err := sleepCtx(ctx, backoffDelay(r.rng, attempt, r.opts.BaseBackoff, r.opts.MaxBackoff)); err != nil {
				r.note(func(h *NodeHealth) { h.Failures++ })
				return nil, fmt.Errorf("cluster: %s: %w (last transport error: %v)", r.addr, err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			r.note(func(h *NodeHealth) { h.Failures++ })
			return nil, err
		}
		conn, enc, dec, err := r.acquireConn(ctx)
		if err != nil {
			if errors.Is(err, errClosed) {
				return nil, err
			}
			lastErr = fmt.Errorf("dial: %w", err)
			r.note(func(h *NodeHealth) {
				h.Attempts++
				if isTimeout(err) {
					h.Timeouts++
				}
			})
			continue
		}
		if hadConn {
			r.note(func(h *NodeHealth) { h.Redials++ })
		}
		hadConn = true
		resp, rtt, err := r.exchange(ctx, conn, enc, dec, req)
		if err == nil {
			r.note(func(h *NodeHealth) {
				h.Attempts++
				h.LastRTT = rtt
			})
			r.hmu.Lock()
			r.okCount++
			r.totalRTT += rtt
			r.hmu.Unlock()
			if resp.Err != "" {
				// Application-level error: the stream is still in sync,
				// so the connection stays usable — fail without retry.
				return nil, errors.New(resp.Err)
			}
			return resp, nil
		}
		// Transport error: the gob stream may hold a half-written frame.
		// Poison the connection; a retry starts from a clean dial.
		r.poison(conn)
		lastErr = err
		r.note(func(h *NodeHealth) {
			h.Attempts++
			if isTimeout(err) {
				h.Timeouts++
			}
		})
		if cerr := ctx.Err(); cerr != nil {
			r.note(func(h *NodeHealth) { h.Failures++ })
			return nil, fmt.Errorf("cluster: %s: %w (transport: %v)", r.addr, cerr, err)
		}
	}
	r.note(func(h *NodeHealth) { h.Failures++ })
	return nil, fmt.Errorf("cluster: %s: giving up after %d attempts: %w", r.addr, r.opts.MaxRetries+1, lastErr)
}

// exchange runs one encode/decode pair under the request deadline.
func (r *RemoteNode) exchange(ctx context.Context, conn net.Conn, enc *gob.Encoder, dec *gob.Decoder, req *request) (*response, time.Duration, error) {
	deadline := time.Time{}
	if r.opts.RequestTimeout > 0 {
		deadline = time.Now().Add(r.opts.RequestTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	// Watchdog: a context cancel must unblock a read that is parked on a
	// hung node before its deadline fires.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	start := time.Now()
	var resp response
	err := func() error {
		if err := enc.Encode(req); err != nil {
			return fmt.Errorf("cluster: send: %w", err)
		}
		if err := dec.Decode(&resp); err != nil {
			if errors.Is(err, io.EOF) {
				return errors.New("cluster: node closed connection")
			}
			return fmt.Errorf("cluster: receive: %w", err)
		}
		return nil
	}()
	close(stop)
	<-done
	return &resp, time.Since(start), err
}

func (r *RemoteNode) note(f func(*NodeHealth)) {
	r.hmu.Lock()
	f(&r.health)
	r.hmu.Unlock()
}

// isTimeout reports whether err is a deadline expiry, on the wire or in
// a context.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoffDelay is exponential backoff with full jitter: attempt n waits
// a uniform draw from (base·2ⁿ⁻¹/2, base·2ⁿ⁻¹], capped at max. The
// jitter comes from the caller's seedable RNG, never the global
// math/rand, so retry timing replays deterministically.
func backoffDelay(rng *xrand.RNG, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + int64(rng.Intn(int(half)+1)))
}

// backoffSeed resolves a jitter seed: an explicit non-zero seed wins,
// otherwise a stable FNV-1a hash of the label (the dialed address or
// node ID) keeps distinct targets decorrelated without global state.
func backoffSeed(seed uint64, label string) uint64 {
	if seed != 0 {
		return seed
	}
	h := fnv.New64a()
	h.Write([]byte(label))
	return h.Sum64()
}

// ID implements NodeAPI.
func (r *RemoteNode) ID() string { return r.name }

// Sketch implements NodeAPI.
func (r *RemoteNode) Sketch(ctx context.Context, spec sensing.Spec) (linalg.Vector, error) {
	resp, err := r.roundTrip(ctx, &request{Kind: reqSketch, Spec: spec})
	if err != nil {
		return nil, err
	}
	return linalg.Vector(resp.Vec), nil
}

// FullVector implements NodeAPI.
func (r *RemoteNode) FullVector(ctx context.Context) (linalg.Vector, error) {
	resp, err := r.roundTrip(ctx, &request{Kind: reqFull})
	if err != nil {
		return nil, err
	}
	return linalg.Vector(resp.Vec), nil
}

// SampleValues implements NodeAPI.
func (r *RemoteNode) SampleValues(ctx context.Context, idx []int) ([]float64, error) {
	resp, err := r.roundTrip(ctx, &request{Kind: reqSample, Indices: idx})
	if err != nil {
		return nil, err
	}
	return resp.Vec, nil
}

// LocalOutliers implements NodeAPI.
func (r *RemoteNode) LocalOutliers(ctx context.Context, mode float64, count int) ([]outlier.KV, error) {
	resp, err := r.roundTrip(ctx, &request{Kind: reqOutliers, Mode: mode, Count: count})
	if err != nil {
		return nil, err
	}
	return resp.KVs, nil
}

var _ NodeAPI = (*RemoteNode)(nil)
var _ NodeAPI = (*LocalNode)(nil)
