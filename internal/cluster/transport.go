package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/sensing"
)

// The TCP transport speaks a tiny gob-framed request/response protocol
// over a persistent connection: the aggregator (client) encodes one
// request struct, the node (server) replies with one response struct.
// This is the real-network counterpart of LocalNode, used by cmd/csnode
// and cmd/csagg; the geo-distributed deployment of the paper's §1 maps
// one csnode process to one data center.

type reqKind uint8

const (
	reqID reqKind = iota + 1
	reqSketch
	reqFull
	reqSample
	reqOutliers
)

type request struct {
	Kind    reqKind
	Spec    sensing.Spec
	Indices []int
	Mode    float64
	Count   int
}

type response struct {
	Err  string
	Name string
	Vec  []float64
	KVs  []outlier.KV
}

// Serve answers NodeAPI requests for node on the listener until the
// listener is closed. It returns the first accept error (including the
// closed-listener error on shutdown).
func Serve(ln net.Listener, node NodeAPI) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, node)
	}
}

func serveConn(conn net.Conn, node NodeAPI) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client went away (io.EOF) or sent garbage
		}
		resp := handle(node, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func handle(node NodeAPI, req *request) *response {
	switch req.Kind {
	case reqID:
		return &response{Name: node.ID()}
	case reqSketch:
		y, err := node.Sketch(req.Spec)
		return vecResp(y, err)
	case reqFull:
		x, err := node.FullVector()
		return vecResp(x, err)
	case reqSample:
		vs, err := node.SampleValues(req.Indices)
		return vecResp(vs, err)
	case reqOutliers:
		kvs, err := node.LocalOutliers(req.Mode, req.Count)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{KVs: kvs}
	default:
		return &response{Err: fmt.Sprintf("cluster: unknown request kind %d", req.Kind)}
	}
}

func vecResp(v []float64, err error) *response {
	if err != nil {
		return &response{Err: err.Error()}
	}
	return &response{Vec: v}
}

// RemoteNode is a NodeAPI over a TCP connection to a Serve-d node.
type RemoteNode struct {
	mu   sync.Mutex // the protocol is strictly request/response
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
	name string
}

// Dial connects to a node served at addr and fetches its ID.
func Dial(addr string) (*RemoteNode, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	rn := &RemoteNode{
		conn: conn,
		dec:  gob.NewDecoder(conn),
		enc:  gob.NewEncoder(conn),
	}
	resp, err := rn.roundTrip(&request{Kind: reqID})
	if err != nil {
		conn.Close()
		return nil, err
	}
	rn.name = resp.Name
	return rn, nil
}

// Close releases the connection.
func (r *RemoteNode) Close() error { return r.conn.Close() }

func (r *RemoteNode) roundTrip(req *request) (*response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("cluster: send: %w", err)
	}
	var resp response
	if err := r.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("cluster: node closed connection")
		}
		return nil, fmt.Errorf("cluster: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// ID implements NodeAPI.
func (r *RemoteNode) ID() string { return r.name }

// Sketch implements NodeAPI.
func (r *RemoteNode) Sketch(spec sensing.Spec) (linalg.Vector, error) {
	resp, err := r.roundTrip(&request{Kind: reqSketch, Spec: spec})
	if err != nil {
		return nil, err
	}
	return linalg.Vector(resp.Vec), nil
}

// FullVector implements NodeAPI.
func (r *RemoteNode) FullVector() (linalg.Vector, error) {
	resp, err := r.roundTrip(&request{Kind: reqFull})
	if err != nil {
		return nil, err
	}
	return linalg.Vector(resp.Vec), nil
}

// SampleValues implements NodeAPI.
func (r *RemoteNode) SampleValues(idx []int) ([]float64, error) {
	resp, err := r.roundTrip(&request{Kind: reqSample, Indices: idx})
	if err != nil {
		return nil, err
	}
	return resp.Vec, nil
}

// LocalOutliers implements NodeAPI.
func (r *RemoteNode) LocalOutliers(mode float64, count int) ([]outlier.KV, error) {
	resp, err := r.roundTrip(&request{Kind: reqOutliers, Mode: mode, Count: count})
	if err != nil {
		return nil, err
	}
	return resp.KVs, nil
}

var _ NodeAPI = (*RemoteNode)(nil)
var _ NodeAPI = (*LocalNode)(nil)
