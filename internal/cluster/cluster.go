// Package cluster is the distributed substrate of the reproduction: the
// shared-nothing node/aggregator topology from the paper's §1 and §3, a
// single-round sketch-collection protocol with failure as the normal
// case, and exact communication-cost accounting using the paper's
// wire-size constants (§6.1.2).
//
// A node holds a vectorized local slice x_l (ordered by the global key
// dictionary) and answers a small query API; the aggregator fans a
// request out to all nodes in parallel, combines the responses, and runs
// recovery. Two node implementations exist: LocalNode (in-process, used
// by the experiment harness) and the TCP client/server in transport.go
// (a real networked deployment over net + encoding/gob, used by
// cmd/csnode and cmd/csagg).
package cluster

import (
	"context"
	"fmt"
	"sync"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
)

// Wire sizes from the paper's cost model (§6.1.2): a vectorized value or
// a measurement is 64 bits, a keyid–value tuple is 96 bits.
const (
	BytesPerValue       = 8
	BytesPerTuple       = 12
	BytesPerMeasurement = 8
)

// NodeAPI is the query surface a remote node exposes to the aggregator.
// Every method is one message exchange; implementations must be safe for
// concurrent use and MUST honor context cancellation — when ctx is done,
// a blocked call has to return promptly (with ctx.Err() or a wrapped
// deadline error). The fault-tolerant collector relies on this to cancel
// stragglers without leaking goroutines.
type NodeAPI interface {
	// ID identifies the node (e.g. a data-center name).
	ID() string
	// Sketch measures the local slice with the shared matrix spec
	// (consensus parameters + ensemble) and returns y_l = Φ₀·x_l
	// (paper §3.1 "Local Compression").
	Sketch(ctx context.Context, spec sensing.Spec) (linalg.Vector, error)
	// FullVector returns the entire local slice — the transmit-ALL
	// baseline's request.
	FullVector(ctx context.Context) (linalg.Vector, error)
	// SampleValues returns the local values at the given key positions —
	// round 1 of the K+δ baseline.
	SampleValues(ctx context.Context, idx []int) ([]float64, error)
	// LocalOutliers returns the node's top-count local outliers with
	// respect to the supplied mode — round 3 of the K+δ baseline.
	LocalOutliers(ctx context.Context, mode float64, count int) ([]outlier.KV, error)
}

// LocalNode is an in-process NodeAPI over a vectorized slice.
type LocalNode struct {
	name string
	mu   sync.RWMutex
	x    linalg.Vector
}

// NewLocalNode wraps a vectorized slice. The slice is NOT copied; use
// Update to mutate it afterwards.
func NewLocalNode(name string, x linalg.Vector) *LocalNode {
	return &LocalNode{name: name, x: x}
}

// ID implements NodeAPI.
func (n *LocalNode) ID() string { return n.name }

// Sketch implements NodeAPI. The node regenerates Φ₀ from the consensus
// spec; for the Gaussian family a small dense limit keeps node-side
// memory at O(M)·small regardless of N.
func (n *LocalNode) Sketch(ctx context.Context, spec sensing.Spec) (linalg.Vector, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if spec.N != len(n.x) {
		return nil, fmt.Errorf("cluster: node %s holds N=%d, request says N=%d", n.name, len(n.x), spec.N)
	}
	m, err := sensing.New(spec, 1<<22)
	if err != nil {
		return nil, err
	}
	return m.Measure(n.x, nil), nil
}

// FullVector implements NodeAPI.
func (n *LocalNode) FullVector(ctx context.Context) (linalg.Vector, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.x.Clone(), nil
}

// SampleValues implements NodeAPI.
func (n *LocalNode) SampleValues(ctx context.Context, idx []int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]float64, len(idx))
	for i, j := range idx {
		if j < 0 || j >= len(n.x) {
			return nil, fmt.Errorf("cluster: sample index %d out of [0,%d)", j, len(n.x))
		}
		out[i] = n.x[j]
	}
	return out, nil
}

// LocalOutliers implements NodeAPI.
func (n *LocalNode) LocalOutliers(ctx context.Context, mode float64, count int) ([]outlier.KV, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return outlier.TopK(n.x, mode, count), nil
}

// Update adds delta into the node's slice in place — the incremental
// new-data path (paper §1 challenge 2: terabytes of new click logs every
// 10 minutes). The next Sketch reflects the update; a standing sketch
// can equivalently be patched with sensing.AddSketch of Φ₀·delta.
func (n *LocalNode) Update(delta linalg.Vector) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(delta) != len(n.x) {
		return fmt.Errorf("cluster: update length %d, node holds %d", len(delta), len(n.x))
	}
	n.x.Add(delta)
	return nil
}

// CommStats records the logical communication and the transport effort
// of one aggregation. Bytes/Messages/Rounds use the paper's cost model;
// the attempt counters come from the fault-tolerant collection path
// (zero on the strict, non-retrying paths).
type CommStats struct {
	Bytes    int64 // total payload bytes, paper constants
	Messages int   // node→aggregator or aggregator→node messages
	Rounds   int   // protocol rounds (CS and ALL: 1; K+δ: 3)
	Attempts int   // sketch RPCs attempted, including retries
	Retries  int   // attempts beyond each node's first
	Timeouts int   // attempts that died on a deadline
}

// Add accumulates other into s.
func (s *CommStats) Add(other CommStats) {
	s.Bytes += other.Bytes
	s.Messages += other.Messages
	if other.Rounds > s.Rounds {
		s.Rounds = other.Rounds
	}
	s.Attempts += other.Attempts
	s.Retries += other.Retries
	s.Timeouts += other.Timeouts
}

// CollectSketches asks every node for its sketch in parallel, sums them
// into the global measurement y = Σ y_l (paper eq. 1), and accounts
// L·M·8 bytes of communication in one round. It is the strict (all
// nodes must answer) path; CollectSketchesCtx adds deadlines, retries
// and quorum semantics.
func CollectSketches(nodes []NodeAPI, p sensing.Params) (linalg.Vector, CommStats, error) {
	return CollectSketchesSpec(nodes, sensing.GaussianSpec(p))
}

// CollectSketchesSpec is CollectSketches for an explicit ensemble spec.
func CollectSketchesSpec(nodes []NodeAPI, spec sensing.Spec) (linalg.Vector, CommStats, error) {
	if len(nodes) == 0 {
		return nil, CommStats{}, fmt.Errorf("cluster: no nodes")
	}
	ctx := context.Background()
	ys := make([]linalg.Vector, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node NodeAPI) {
			defer wg.Done()
			ys[i], errs[i] = node.Sketch(ctx, spec)
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, CommStats{}, fmt.Errorf("cluster: node %s: %w", nodes[i].ID(), err)
		}
	}
	global := make(linalg.Vector, spec.M)
	for i, y := range ys {
		if len(y) != spec.M {
			return nil, CommStats{}, fmt.Errorf("cluster: node %s returned sketch of length %d, want %d", nodes[i].ID(), len(y), spec.M)
		}
		sensing.AddSketch(global, y)
	}
	stats := CommStats{
		Bytes:    int64(len(nodes)) * sensing.SketchBytes(spec.M),
		Messages: len(nodes),
		Rounds:   1,
	}
	return global, stats, nil
}

// DetectResult is the aggregator's answer to a k-outlier query.
type DetectResult struct {
	Outliers []outlier.KV // the k detected outliers, strongest first
	Mode     float64      // recovered mode b
	Recovery *recovery.Result
	Stats    CommStats
}

// Detect runs the paper's full pipeline: collect sketches, recover with
// BOMP using the R = f(k) iteration budget, and select the k recovered
// entries furthest from the recovered mode.
func Detect(nodes []NodeAPI, p sensing.Params, k int, opt recovery.Options) (*DetectResult, error) {
	y, stats, err := CollectSketches(nodes, p)
	if err != nil {
		return nil, err
	}
	res, err := DetectSketch(y, p, k, opt)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// DetectSketch runs the aggregator-side recovery on an already-collected
// global sketch — for callers that gathered sketches themselves (e.g.
// via CollectSketchesCtx with a quorum, or over a custom transport).
func DetectSketch(y linalg.Vector, p sensing.Params, k int, opt recovery.Options) (*DetectResult, error) {
	return DetectSketchSpec(y, sensing.GaussianSpec(p), k, opt)
}

// DetectSketchSpec is DetectSketch for an explicit ensemble spec.
func DetectSketchSpec(y linalg.Vector, spec sensing.Spec, k int, opt recovery.Options) (*DetectResult, error) {
	m, err := sensing.New(spec, 0)
	if err != nil {
		return nil, err
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = recovery.IterationBudget(k)
	}
	res, err := recovery.BOMP(m, y, opt)
	if err != nil {
		return nil, err
	}
	cands := make([]outlier.KV, len(res.Support))
	for i, j := range res.Support {
		cands[i] = outlier.KV{Index: j, Value: res.X[j]}
	}
	return &DetectResult{
		Outliers: outlier.TopKOf(cands, res.Mode, k),
		Mode:     res.Mode,
		Recovery: res,
	}, nil
}
