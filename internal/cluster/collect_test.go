package cluster

import (
	"context"
	"testing"
	"time"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

func TestCollectCtxAllHealthy(t *testing.T) {
	nodes, global, _ := makeCluster(t, 120, 4, 4, 900, 21)
	p := sensing.Params{M: 40, N: 120, Seed: 22}
	res, err := CollectSketchesCtx(context.Background(), nodes, p, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Included) != 4 || len(res.Failed) != 0 {
		t.Fatalf("included %v failed %v", res.Included, res.Failed)
	}
	d, _ := sensing.NewDense(p)
	if !res.Sketch.Equal(d.Measure(global, nil), 1e-8) {
		t.Fatal("ctx collection does not match global measurement")
	}
}

func TestCollectCtxToleratesFailuresWithQuorum(t *testing.T) {
	nodes, _, _ := makeCluster(t, 100, 3, 3, 500, 23)
	nodes = append(nodes, NewFaultyNode("dead-dc"))
	p := sensing.Params{M: 30, N: 100, Seed: 24}
	res, err := CollectSketchesCtx(context.Background(), nodes, p, CollectOptions{MinNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Included) != 3 {
		t.Fatalf("included %v", res.Included)
	}
	if _, ok := res.Failed["dead-dc"]; !ok {
		t.Fatalf("failure not reported: %v", res.Failed)
	}
	// The partial sum equals the aggregate over the healthy subset.
	healthy, _, err := CollectSketches(nodes[:3], p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sketch.Equal(healthy, 1e-9) {
		t.Fatal("partial sketch != healthy-subset aggregate")
	}
}

func TestCollectCtxFailsBelowQuorum(t *testing.T) {
	nodes := []NodeAPI{
		NewLocalNode("ok", make(linalg.Vector, 10)),
		NewFaultyNode("dead1"),
		NewFaultyNode("dead2"),
	}
	p := sensing.Params{M: 4, N: 10, Seed: 25}
	if _, err := CollectSketchesCtx(context.Background(), nodes, p, CollectOptions{MinNodes: 2}); err == nil {
		t.Fatal("quorum failure not reported")
	}
}

// slowNode delays each sketch until released (honoring ctx, per the
// NodeAPI contract).
type slowNode struct {
	*LocalNode
	release chan struct{}
}

func (s *slowNode) Sketch(ctx context.Context, spec sensing.Spec) (linalg.Vector, error) {
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.LocalNode.Sketch(ctx, spec)
}

func TestCollectCtxStragglerTimeout(t *testing.T) {
	global, _ := workload.MajorityDominated(80, 3, 700, 100, 300, 26)
	slices := workload.SplitZeroSumNoise(global, 3, 200, 27)
	release := make(chan struct{})
	nodes := []NodeAPI{
		NewLocalNode("a", slices[0]),
		NewLocalNode("b", slices[1]),
		&slowNode{LocalNode: NewLocalNode("laggard", slices[2]), release: release},
	}
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	p := sensing.Params{M: 20, N: 80, Seed: 28}
	res, err := CollectSketchesCtx(ctx, nodes, p, CollectOptions{MinNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Included) != 2 {
		t.Fatalf("included %v", res.Included)
	}
	for _, id := range res.Included {
		if id == "laggard" {
			t.Fatal("straggler included despite timeout")
		}
	}
}

func TestCollectCtxTimeoutBelowQuorum(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	nodes := []NodeAPI{
		&slowNode{LocalNode: NewLocalNode("s1", make(linalg.Vector, 10)), release: release},
		&slowNode{LocalNode: NewLocalNode("s2", make(linalg.Vector, 10)), release: release},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	p := sensing.Params{M: 4, N: 10, Seed: 29}
	if _, err := CollectSketchesCtx(ctx, nodes, p, CollectOptions{MinNodes: 1}); err == nil {
		t.Fatal("all-straggler collection succeeded")
	}
}

func TestCollectCtxNoNodes(t *testing.T) {
	if _, err := CollectSketchesCtx(context.Background(), nil, sensing.Params{M: 1, N: 1}, CollectOptions{}); err == nil {
		t.Fatal("no nodes accepted")
	}
}
