package cluster

import (
	"context"
	"fmt"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/sensing"
)

// CollectOptions tunes fault-tolerant sketch collection.
type CollectOptions struct {
	// MinNodes is the minimum number of node responses required for the
	// aggregation to be considered usable. 0 means all nodes (strict).
	//
	// Sketch linearity makes partial aggregation well-defined: the sum
	// over responding nodes is exactly the sketch of the aggregate over
	// those nodes (the paper's node-removal property, §1 challenge 3),
	// so an outage shrinks the data window instead of failing the query.
	MinNodes int
}

// PartialResult reports a fault-tolerant collection.
type PartialResult struct {
	Sketch   linalg.Vector
	Included []string // node IDs whose sketches are in the sum
	Failed   map[string]error
	Stats    CommStats
}

// CollectSketchesCtx gathers sketches in parallel with cancellation and
// straggler tolerance. It returns early with an error when the context
// is cancelled or when too few nodes respond; otherwise it sums whatever
// subset responded (at least opts.MinNodes) and reports the exact
// membership of the aggregate.
func CollectSketchesCtx(ctx context.Context, nodes []NodeAPI, p sensing.Params, opts CollectOptions) (*PartialResult, error) {
	return CollectSketchesCtxSpec(ctx, nodes, sensing.GaussianSpec(p), opts)
}

// CollectSketchesCtxSpec is CollectSketchesCtx for an explicit ensemble.
func CollectSketchesCtxSpec(ctx context.Context, nodes []NodeAPI, spec sensing.Spec, opts CollectOptions) (*PartialResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	min := opts.MinNodes
	if min <= 0 || min > len(nodes) {
		min = len(nodes)
	}

	type resp struct {
		id  string
		y   linalg.Vector
		err error
	}
	ch := make(chan resp, len(nodes))
	for _, node := range nodes {
		go func(node NodeAPI) {
			y, err := node.Sketch(spec)
			select {
			case ch <- resp{id: node.ID(), y: y, err: err}:
			case <-ctx.Done():
			}
		}(node)
	}

	res := &PartialResult{
		Sketch: make(linalg.Vector, spec.M),
		Failed: make(map[string]error),
		Stats:  CommStats{Rounds: 1},
	}
	for received := 0; received < len(nodes); received++ {
		select {
		case <-ctx.Done():
			// Timed out: usable if the quorum already arrived.
			if len(res.Included) >= min {
				sort.Strings(res.Included)
				return res, nil
			}
			return nil, fmt.Errorf("cluster: context done with %d/%d responses (need %d): %w",
				len(res.Included), len(nodes), min, ctx.Err())
		case r := <-ch:
			if r.err != nil {
				res.Failed[r.id] = r.err
				continue
			}
			if len(r.y) != spec.M {
				res.Failed[r.id] = fmt.Errorf("sketch length %d, want %d", len(r.y), spec.M)
				continue
			}
			sensing.AddSketch(res.Sketch, r.y)
			res.Included = append(res.Included, r.id)
			res.Stats.Bytes += sensing.SketchBytes(spec.M)
			res.Stats.Messages++
		}
	}
	if len(res.Included) < min {
		return nil, fmt.Errorf("cluster: only %d/%d nodes responded (need %d); failures: %v",
			len(res.Included), len(nodes), min, res.Failed)
	}
	sort.Strings(res.Included)
	return res, nil
}

// faultyNode wraps a NodeAPI and fails every call; used by tests.
type faultyNode struct {
	name string
}

// NewFaultyNode returns a node that errors on every request — a stand-in
// for a crashed or partitioned data center in tests and examples.
func NewFaultyNode(name string) NodeAPI { return &faultyNode{name: name} }

func (f *faultyNode) ID() string { return f.name }
func (f *faultyNode) Sketch(sensing.Spec) (linalg.Vector, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
func (f *faultyNode) FullVector() (linalg.Vector, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
func (f *faultyNode) SampleValues([]int) ([]float64, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
func (f *faultyNode) LocalOutliers(float64, int) ([]outlier.KV, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
