package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"csoutlier/internal/linalg"
	"csoutlier/internal/obs"
	"csoutlier/internal/outlier"
	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// CollectOptions tunes fault-tolerant sketch collection.
type CollectOptions struct {
	// MinNodes is the minimum number of node responses required for the
	// aggregation to be considered usable. 0 means all nodes (strict).
	//
	// Sketch linearity makes partial aggregation well-defined: the sum
	// over responding nodes is exactly the sketch of the aggregate over
	// those nodes (the paper's node-removal property, §1 challenge 3),
	// so an outage shrinks the data window instead of failing the query.
	MinNodes int
	// MaxAttempts is how many times each node's sketch is requested
	// before the node is declared failed (0 = default 2). The TCP
	// transport additionally retries broken connections internally; this
	// level retries application failures and re-polls flaky nodes.
	MaxAttempts int
	// NodeTimeout bounds each individual attempt (0 = only the overall
	// ctx limits it). A straggler past the per-attempt deadline is
	// retried; one past the overall deadline is dropped.
	NodeTimeout time.Duration
	// RetryBackoff is the base delay between a node's attempts; it grows
	// exponentially with full jitter (0 = default 50ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the retry delay (0 = default 1s).
	MaxBackoff time.Duration
	// QuorumGrace, when positive, bounds how long the collector keeps
	// waiting for stragglers once MinNodes responses are in: after the
	// grace elapses, in-flight requests are cancelled and the quorum
	// aggregate is returned. 0 waits for all nodes or the overall ctx.
	QuorumGrace time.Duration
	// BackoffSeed seeds the retry-jitter RNG; each node's worker splits
	// its own stream off it by node ID, so retry storms stay
	// decorrelated across nodes while the whole collection replays
	// deterministically. 0 uses a fixed default seed.
	BackoffSeed uint64
	// Metrics, when non-nil, receives the collection's attempt/retry/
	// timeout/byte counters and per-node RTT observations (cluster_*
	// families). nil = no instrumentation.
	Metrics *obs.Registry
}

// NodeStats reports one node's behaviour during a collection.
type NodeStats struct {
	Attempts int           // sketch attempts made against this node
	Retries  int           // attempts beyond the first
	Timeouts int           // attempts that died on a deadline
	RTT      time.Duration // round-trip time of the last attempt
	OK       bool          // whether a sketch was obtained
	Err      string        // terminal error when OK is false
}

// PartialResult reports a fault-tolerant collection.
type PartialResult struct {
	Sketch   linalg.Vector
	Included []string // node IDs whose sketches are in the sum
	Failed   map[string]error
	Nodes    map[string]NodeStats // per-node health/latency
	Stats    CommStats
}

// CollectSketchesCtx gathers sketches in parallel with cancellation,
// per-node retries and straggler tolerance. It returns early with an
// error when the context is cancelled or when too few nodes respond;
// otherwise it sums whatever subset responded (at least opts.MinNodes)
// and reports the exact membership of the aggregate plus per-node
// health. On return, every goroutine it started has exited and every
// in-flight request has been cancelled — nothing leaks, provided node
// implementations honor ctx (NodeAPI's contract).
func CollectSketchesCtx(ctx context.Context, nodes []NodeAPI, p sensing.Params, opts CollectOptions) (*PartialResult, error) {
	return CollectSketchesCtxSpec(ctx, nodes, sensing.GaussianSpec(p), opts)
}

// CollectSketchesCtxSpec is CollectSketchesCtx for an explicit ensemble.
func CollectSketchesCtxSpec(ctx context.Context, nodes []NodeAPI, spec sensing.Spec, opts CollectOptions) (*PartialResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	min := opts.MinNodes
	if min <= 0 || min > len(nodes) {
		min = len(nodes)
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2
	}
	baseBackoff := opts.RetryBackoff
	if baseBackoff <= 0 {
		baseBackoff = 50 * time.Millisecond
	}
	maxBackoff := opts.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	jitterSeed := opts.BackoffSeed
	if jitterSeed == 0 {
		jitterSeed = 0x9e3779b97f4a7c15
	}

	// inner is cancelled the moment the collector decides to stop —
	// overall deadline, quorum grace expiry, or normal completion — so
	// in-flight node.Sketch calls unblock and their goroutines exit.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	type report struct {
		id string
		y  linalg.Vector
		ns NodeStats
	}
	// Buffered to len(nodes): a worker can always deliver its final
	// report and exit, even after the collector stopped receiving.
	ch := make(chan report, len(nodes))
	for _, node := range nodes {
		go func(node NodeAPI) {
			var ns NodeStats
			var y linalg.Vector
			rng := xrand.New(jitterSeed).Split(backoffSeed(0, node.ID()))
			for attempt := 1; attempt <= maxAttempts; attempt++ {
				if attempt > 1 {
					ns.Retries++
					if sleepCtx(inner, backoffDelay(rng, attempt-1, baseBackoff, maxBackoff)) != nil {
						break
					}
				}
				if err := inner.Err(); err != nil {
					if ns.Err == "" {
						ns.Err = err.Error()
					}
					break
				}
				actx := inner
				acancel := func() {}
				if opts.NodeTimeout > 0 {
					actx, acancel = context.WithTimeout(inner, opts.NodeTimeout)
				}
				start := time.Now()
				v, err := node.Sketch(actx, spec)
				ns.RTT = time.Since(start)
				ns.Attempts++
				acancel()
				if err == nil && len(v) != spec.M {
					err = fmt.Errorf("sketch length %d, want %d", len(v), spec.M)
				}
				if err == nil {
					y = v
					ns.OK = true
					ns.Err = ""
					break
				}
				ns.Err = err.Error()
				if isTimeout(err) {
					ns.Timeouts++
				}
			}
			if !ns.OK && ns.Err == "" {
				ns.Err = "cancelled before first attempt"
			}
			ch <- report{id: node.ID(), y: y, ns: ns}
		}(node)
	}

	res := &PartialResult{
		Sketch: make(linalg.Vector, spec.M),
		Failed: make(map[string]error),
		Nodes:  make(map[string]NodeStats, len(nodes)),
		Stats:  CommStats{Rounds: 1},
	}
	record := func(r report) {
		res.Nodes[r.id] = r.ns
		res.Stats.Attempts += r.ns.Attempts
		res.Stats.Retries += r.ns.Retries
		res.Stats.Timeouts += r.ns.Timeouts
		if r.ns.OK {
			sensing.AddSketch(res.Sketch, r.y)
			res.Included = append(res.Included, r.id)
			res.Stats.Bytes += sensing.SketchBytes(spec.M)
			res.Stats.Messages++
		} else {
			res.Failed[r.id] = errors.New(r.ns.Err)
		}
	}

	received := 0
	timedOut := false
	var graceTimer *time.Timer
	var grace <-chan time.Time
loop:
	for received < len(nodes) {
		select {
		case <-ctx.Done():
			timedOut = true
			break loop
		case <-grace:
			break loop
		case r := <-ch:
			received++
			record(r)
			if opts.QuorumGrace > 0 && grace == nil && len(res.Included) >= min && received < len(nodes) {
				graceTimer = time.NewTimer(opts.QuorumGrace)
				grace = graceTimer.C
			}
		}
	}
	if graceTimer != nil {
		graceTimer.Stop()
	}
	// Stop every in-flight request and reap every worker: each one is
	// guaranteed a slot in the buffered channel, so draining to
	// len(nodes) reports means all goroutines have finished their work.
	cancel()
	for received < len(nodes) {
		r := <-ch
		received++
		record(r)
	}

	if opts.Metrics != nil {
		recordCollect(opts.Metrics, res, len(res.Included) >= min)
	}
	if len(res.Included) < min {
		if timedOut {
			return nil, fmt.Errorf("cluster: context done with %d/%d responses (need %d): %w",
				len(res.Included), len(nodes), min, ctx.Err())
		}
		return nil, fmt.Errorf("cluster: only %d/%d nodes responded (need %d); failures: %v",
			len(res.Included), len(nodes), min, res.Failed)
	}
	sort.Strings(res.Included)
	return res, nil
}

// faultyNode wraps a NodeAPI and fails every call; used by tests.
type faultyNode struct {
	name string
}

// NewFaultyNode returns a node that errors on every request — a stand-in
// for a crashed or partitioned data center in tests and examples.
func NewFaultyNode(name string) NodeAPI { return &faultyNode{name: name} }

func (f *faultyNode) ID() string { return f.name }
func (f *faultyNode) Sketch(context.Context, sensing.Spec) (linalg.Vector, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
func (f *faultyNode) FullVector(context.Context) (linalg.Vector, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
func (f *faultyNode) SampleValues(context.Context, []int) ([]float64, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
func (f *faultyNode) LocalOutliers(context.Context, float64, int) ([]outlier.KV, error) {
	return nil, fmt.Errorf("cluster: node %s unavailable", f.name)
}
