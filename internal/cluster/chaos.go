package cluster

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// ChaosServer speaks the wire protocol of Serve but misbehaves on sketch
// requests on demand — the wedged, crashed and byzantine data centers the
// client hardening exists for. ID requests are always answered, so
// dialing succeeds and the failure surfaces mid-collection, where it is
// hardest to handle.
//
// It lives outside the test files because fault injection is
// infrastructure shared by the transport-hardening tests and the
// simulation harness (internal/simtest), which replays whole
// sketch→aggregate→recover pipelines against scheduled faults. Production
// binaries have no reason to construct one.
type ChaosServer struct {
	node NodeAPI
	addr string

	behavior  atomic.Int32
	failFirst atomic.Int32 // abruptly close the conn on this many sketch requests first

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  chan struct{} // closed on Stop; releases hung responses
}

// Behavior selects how a ChaosServer treats sketch requests.
type Behavior int32

// The failure modes a chaos node can exhibit on sketch requests.
const (
	// BehaveOK answers normally.
	BehaveOK Behavior = iota
	// BehaveHang never answers and holds the connection open — a wedged
	// process or a black-holed network path.
	BehaveHang
	// BehaveGarbage writes bytes that are not a protocol frame and closes
	// — a byzantine or version-skewed peer.
	BehaveGarbage
	// BehaveCrash stops the whole server (listener and every connection)
	// — the process dies, not just this exchange. Deterministic: the
	// listener is closed before the request's connection, so a retrying
	// client observes EOF then connection-refused, in that order.
	BehaveCrash
)

// StartChaos serves node on a fresh loopback listener.
func StartChaos(node NodeAPI) (*ChaosServer, error) {
	s := &ChaosServer{node: node, conns: make(map[net.Conn]struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: chaos listen: %w", err)
	}
	s.addr = ln.Addr().String()
	s.run(ln)
	return s, nil
}

// Addr returns the server's dialable address. It is stable across
// Stop/Restart cycles.
func (s *ChaosServer) Addr() string { return s.addr }

// SetBehavior switches the sketch-request failure mode.
func (s *ChaosServer) SetBehavior(b Behavior) { s.behavior.Store(int32(b)) }

// FailFirst makes the server abruptly close the connection on the next n
// sketch requests before its configured behavior applies — a node that is
// flaky for a bounded burst and then recovers.
func (s *ChaosServer) FailFirst(n int) { s.failFirst.Store(int32(n)) }

func (s *ChaosServer) run(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.done = make(chan struct{})
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[conn] = struct{}{}
			done := s.done
			s.mu.Unlock()
			go s.serve(conn, done)
		}
	}()
}

func (s *ChaosServer) serve(conn net.Conn, done chan struct{}) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if dec.Decode(&req) != nil {
			return
		}
		if req.Kind != reqSketch {
			if enc.Encode(handle(context.Background(), s.node, &req)) != nil {
				return
			}
			continue
		}
		if s.failFirst.Load() > 0 {
			s.failFirst.Add(-1)
			return // abrupt close mid-exchange
		}
		switch Behavior(s.behavior.Load()) {
		case BehaveHang:
			<-done // wedged: never answers, holds the conn open
			return
		case BehaveGarbage:
			conn.Write(GarbageFrame())
			return
		case BehaveCrash:
			s.Stop() // synchronous: listener is gone before the client sees EOF
			return
		default:
			if enc.Encode(handle(context.Background(), s.node, &req)) != nil {
				return
			}
		}
	}
}

// GarbageFrame returns the byte sequence a BehaveGarbage node writes in
// place of a response frame — a seed for decoder fuzz corpora.
func GarbageFrame() []byte {
	return []byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef, 0x00, 0xff}
}

// Stop kills the listener and every live connection. Safe to call twice.
func (s *ChaosServer) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
	if s.done != nil {
		close(s.done)
		s.done = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[net.Conn]struct{})
}

// Restart re-listens on the same address, as a rebooted node would.
func (s *ChaosServer) Restart() error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("cluster: chaos restart: %w", err)
	}
	s.run(ln)
	return nil
}
