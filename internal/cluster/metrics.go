package cluster

import (
	"csoutlier/internal/obs"
)

// recordCollect folds one collection's CommStats and per-node RTTs into
// the cluster_* metric families of reg. Family resolution is
// get-or-create, so repeated collections against the same registry
// accumulate. Runs once per collection, off every hot path.
func recordCollect(reg *obs.Registry, res *PartialResult, ok bool) {
	reg.Counter("cluster_attempts_total",
		"sketch RPCs attempted, including retries").Add(int64(res.Stats.Attempts))
	reg.Counter("cluster_retries_total",
		"sketch attempts beyond each node's first").Add(int64(res.Stats.Retries))
	reg.Counter("cluster_timeouts_total",
		"sketch attempts that died on a deadline").Add(int64(res.Stats.Timeouts))
	reg.Counter("cluster_bytes_total",
		"sketch payload bytes received (paper constants)").Add(res.Stats.Bytes)
	reg.Counter("cluster_messages_total",
		"sketch payloads received").Add(int64(res.Stats.Messages))
	outcome := "ok"
	if !ok {
		outcome = "failed"
	}
	reg.CounterVec("cluster_collects_total",
		"collections by outcome (ok = quorum reached)", "outcome").With(outcome).Inc()
	rtt := reg.HistogramVec("cluster_node_rtt_seconds",
		"per-node sketch round-trip time, last attempt of each collection",
		obs.LatencyBuckets(), "node")
	for id, ns := range res.Nodes {
		if ns.Attempts > 0 {
			rtt.With(id).Observe(ns.RTT.Seconds())
		}
	}
}

// RegisterHealthMetrics exports a set of RemoteNodes' transport health
// (NodeHealth) as labeled gauges in reg, refreshed at scrape time — the
// pull path's counterpart of the streaming aggregator's per-node
// liveness gauges.
func RegisterHealthMetrics(reg *obs.Registry, nodes ...*RemoteNode) {
	attempts := reg.GaugeVec("cluster_node_attempts", "round-trips started, including retries", "node")
	retries := reg.GaugeVec("cluster_node_retries", "round-trips beyond a request's first attempt", "node")
	timeouts := reg.GaugeVec("cluster_node_timeouts", "attempts that died on a deadline", "node")
	redials := reg.GaugeVec("cluster_node_redials", "connections re-established after a poisoned one", "node")
	failures := reg.GaugeVec("cluster_node_failures", "requests that exhausted retries", "node")
	read := reg.GaugeVec("cluster_node_bytes_read", "raw wire bytes received", "node")
	written := reg.GaugeVec("cluster_node_bytes_written", "raw wire bytes sent", "node")
	lastRTT := reg.GaugeVec("cluster_node_last_rtt_seconds", "most recent completed exchange", "node")
	avgRTT := reg.GaugeVec("cluster_node_avg_rtt_seconds", "mean over completed exchanges", "node")
	reg.OnScrape(func() {
		for _, n := range nodes {
			h := n.Health()
			id := n.ID()
			attempts.With(id).SetInt(int64(h.Attempts))
			retries.With(id).SetInt(int64(h.Retries))
			timeouts.With(id).SetInt(int64(h.Timeouts))
			redials.With(id).SetInt(int64(h.Redials))
			failures.With(id).SetInt(int64(h.Failures))
			read.With(id).SetInt(h.BytesRead)
			written.With(id).SetInt(h.BytesWritten)
			lastRTT.With(id).Set(h.LastRTT.Seconds())
			avgRTT.With(id).Set(h.AvgRTT.Seconds())
		}
	})
}
