package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"csoutlier/internal/xrand"
)

// TestBackoffDelayDeterministic pins the jitter fix: retry delays come
// from a caller-seeded RNG, so two clients with the same seed draw the
// same delay sequence, and the global math/rand state is irrelevant.
func TestBackoffDelayDeterministic(t *testing.T) {
	const base, max = 25 * time.Millisecond, time.Second
	a, b := xrand.New(42), xrand.New(42)
	var seqA, seqB []time.Duration
	for attempt := 1; attempt <= 10; attempt++ {
		seqA = append(seqA, backoffDelay(a, attempt, base, max))
		seqB = append(seqB, backoffDelay(b, attempt, base, max))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("attempt %d: same seed drew %v vs %v", i+1, seqA[i], seqB[i])
		}
		lo := base
		for j := 1; j < i+1 && lo < max; j++ {
			lo *= 2
		}
		if lo > max {
			lo = max
		}
		if seqA[i] < lo/2 || seqA[i] > lo {
			t.Errorf("attempt %d: delay %v outside (%v/2, %v]", i+1, seqA[i], lo, lo)
		}
	}
	// Different seeds must diverge somewhere in 10 draws.
	c := xrand.New(43)
	diverged := false
	for attempt := 1; attempt <= 10; attempt++ {
		if backoffDelay(c, attempt, base, max) != seqA[attempt-1] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 drew identical 10-delay sequences")
	}
}

// TestBackoffSeedResolution checks the seed ladder: explicit seeds win,
// the zero seed hashes the label, and distinct labels decorrelate.
func TestBackoffSeedResolution(t *testing.T) {
	if got := backoffSeed(7, "addr"); got != 7 {
		t.Errorf("explicit seed: got %d, want 7", got)
	}
	a1, a2 := backoffSeed(0, "10.0.0.1:9000"), backoffSeed(0, "10.0.0.1:9000")
	if a1 != a2 {
		t.Errorf("same label hashed to %d and %d", a1, a2)
	}
	if b := backoffSeed(0, "10.0.0.2:9000"); b == a1 {
		t.Errorf("distinct labels collided on seed %d", a1)
	}
}

// TestDialBackoffSeedOption checks DialContext threads the seed into the
// client's jitter RNG: twin clients with the same explicit seed hold
// identically seeded streams.
func TestDialBackoffSeedOption(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, NewLocalNode("n0", nil))

	dial := func(seed uint64) *RemoteNode {
		t.Helper()
		r, err := DialContext(context.Background(), ln.Addr().String(), DialOptions{BackoffSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	r1, r2 := dial(99), dial(99)
	for i := 0; i < 8; i++ {
		d1 := backoffDelay(r1.rng, i+1, 25*time.Millisecond, time.Second)
		d2 := backoffDelay(r2.rng, i+1, 25*time.Millisecond, time.Second)
		if d1 != d2 {
			t.Fatalf("draw %d: same BackoffSeed drew %v vs %v", i, d1, d2)
		}
	}
}
