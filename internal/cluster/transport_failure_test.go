package cluster

import (
	"context"
	"runtime"
	"testing"
	"time"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

// startChaos wraps StartChaos with test lifecycle management.
func startChaos(t *testing.T, node NodeAPI) *ChaosServer {
	t.Helper()
	s, err := StartChaos(node)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// assertNoGoroutineLeak waits for the goroutine count to settle back to
// the baseline captured before the test body ran.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline {
		t.Fatalf("goroutine leak: %d running, baseline was %d", n, baseline)
	}
}

var testSpec = sensing.GaussianSpec(sensing.Params{M: 8, N: 20, Seed: 3})

func testVector() linalg.Vector {
	x := make(linalg.Vector, 20)
	for i := range x {
		x[i] = float64(i)
	}
	return x
}

func TestSketchDeadlineOnHungNode(t *testing.T) {
	s := startChaos(t, NewLocalNode("wedged", testVector()))
	s.SetBehavior(BehaveHang)
	rn, err := DialContext(context.Background(), s.Addr(), DialOptions{
		RequestTimeout: 150 * time.Millisecond,
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	start := time.Now()
	_, err = rn.Sketch(context.Background(), testSpec)
	if err == nil {
		t.Fatal("sketch against a hung node succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not fire: call took %v", elapsed)
	}
	h := rn.Health()
	if h.Timeouts != 1 || h.Failures != 1 {
		t.Fatalf("health %+v, want 1 timeout and 1 failure", h)
	}
}

func TestCancelUnblocksHungExchange(t *testing.T) {
	// With per-request deadlines disabled, only the watchdog can unpark a
	// read that is stuck on a wedged node.
	s := startChaos(t, NewLocalNode("wedged", testVector()))
	s.SetBehavior(BehaveHang)
	rn, err := DialContext(context.Background(), s.Addr(), DialOptions{
		RequestTimeout: -1,
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := rn.Sketch(ctx, testSpec); err == nil {
		t.Fatal("cancelled sketch succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation did not unblock the read: call took %v", elapsed)
	}
}

func TestTransparentRedialAfterMidStreamDisconnect(t *testing.T) {
	node := NewLocalNode("flaky", testVector())
	s := startChaos(t, node)
	s.FailFirst(1)
	rn, err := DialContext(context.Background(), s.Addr(), DialOptions{BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	got, err := rn.Sketch(context.Background(), testSpec)
	if err != nil {
		t.Fatalf("sketch did not survive a mid-stream disconnect: %v", err)
	}
	want, _ := node.Sketch(context.Background(), testSpec)
	if !got.Equal(want, 0) {
		t.Fatal("retried sketch differs from direct computation")
	}
	h := rn.Health()
	if h.Retries != 1 || h.Redials != 1 {
		t.Fatalf("health %+v, want exactly 1 retry and 1 redial", h)
	}
}

func TestGarbageResponsePoisonsConnection(t *testing.T) {
	node := NewLocalNode("byzantine", testVector())
	s := startChaos(t, node)
	s.SetBehavior(BehaveGarbage)
	rn, err := DialContext(context.Background(), s.Addr(), DialOptions{
		MaxRetries:  1,
		BaseBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	if _, err := rn.Sketch(context.Background(), testSpec); err == nil {
		t.Fatal("garbage response accepted as a sketch")
	}
	// 3 attempts: the dial handshake plus both poisoned sketch exchanges.
	h := rn.Health()
	if h.Attempts != 3 || h.Failures != 1 {
		t.Fatalf("health %+v, want 3 attempts and 1 failure", h)
	}
	// The stream desynced, but the node recovers: once it behaves, the
	// poisoned connection is replaced and requests succeed again.
	s.SetBehavior(BehaveOK)
	if _, err := rn.Sketch(context.Background(), testSpec); err != nil {
		t.Fatalf("sketch after garbage recovery: %v", err)
	}
}

func TestRedialAfterNodeRestart(t *testing.T) {
	node := NewLocalNode("rebooted", testVector())
	s := startChaos(t, node)
	rn, err := DialContext(context.Background(), s.Addr(), DialOptions{BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()
	if _, err := rn.Sketch(context.Background(), testSpec); err != nil {
		t.Fatal(err)
	}

	s.Stop()
	if err := s.Restart(); err != nil {
		t.Fatal(err)
	}

	got, err := rn.Sketch(context.Background(), testSpec)
	if err != nil {
		t.Fatalf("sketch did not survive a node restart: %v", err)
	}
	want, _ := node.Sketch(context.Background(), testSpec)
	if !got.Equal(want, 0) {
		t.Fatal("post-restart sketch differs from direct computation")
	}
	if h := rn.Health(); h.Redials < 1 {
		t.Fatalf("health %+v, want at least 1 redial", h)
	}
}

func TestCollectorLeaksNoGoroutines(t *testing.T) {
	// Regression: the pre-hardening collector leaked one goroutine per
	// straggler (the abandoned worker blocked forever on node.Sketch).
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	global, _ := workload.MajorityDominated(60, 3, 400, 80, 900, 51)
	slices := workload.SplitZeroSumNoise(global, 6, 100, 52)
	nodes := make([]NodeAPI, 6)
	for i, sl := range slices {
		if i < 3 {
			nodes[i] = NewLocalNode("ok"+string(rune('0'+i)), sl)
		} else {
			nodes[i] = &slowNode{LocalNode: NewLocalNode("slow"+string(rune('0'+i)), sl), release: release}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	p := sensing.Params{M: 16, N: 60, Seed: 53}
	res, err := CollectSketchesCtx(ctx, nodes, p, CollectOptions{
		MinNodes:    3,
		QuorumGrace: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Included) != 3 {
		t.Fatalf("included %v", res.Included)
	}
	// The stragglers were never released: if their workers survived the
	// collection, the count below stays elevated.
	assertNoGoroutineLeak(t, baseline)
	close(release)
}

// TestQuorumCollectionWithHungAndCrashedNodes is the acceptance scenario:
// two healthy TCP nodes, one that hangs mid-collection and one whose
// process dies mid-collection. The collection must return the quorum
// aggregate well within the deadline, leak nothing, and account for
// every retry and timeout per node.
func TestQuorumCollectionWithHungAndCrashedNodes(t *testing.T) {
	baseline := runtime.NumGoroutine()

	global, _ := workload.MajorityDominated(60, 3, 900, 100, 2000, 61)
	slices := workload.SplitZeroSumNoise(global, 4, 150, 62)
	locals := make([]*LocalNode, 4)
	servers := make([]*ChaosServer, 4)
	names := []string{"healthy-a", "healthy-b", "hung", "crashed"}
	for i := range servers {
		locals[i] = NewLocalNode(names[i], slices[i])
		servers[i] = startChaos(t, locals[i])
	}
	servers[2].SetBehavior(BehaveHang)
	servers[3].SetBehavior(BehaveCrash)

	dialOpts := DialOptions{
		RequestTimeout: 250 * time.Millisecond,
		MaxRetries:     -1, // retries belong to the collector in this test
		BaseBackoff:    time.Millisecond,
	}
	var nodes []NodeAPI
	var remotes []*RemoteNode
	for _, s := range servers {
		rn, err := DialContext(context.Background(), s.Addr(), dialOpts)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, rn)
		remotes = append(remotes, rn)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	p := sensing.Params{M: 20, N: 60, Seed: 63}
	start := time.Now()
	res, err := CollectSketchesCtx(ctx, nodes, p, CollectOptions{
		MinNodes:     2,
		MaxAttempts:  2,
		NodeTimeout:  250 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("collection missed the deadline: %v", elapsed)
	}
	if len(res.Included) != 2 || res.Included[0] != "healthy-a" || res.Included[1] != "healthy-b" {
		t.Fatalf("included %v", res.Included)
	}
	for _, id := range []string{"hung", "crashed"} {
		if _, ok := res.Failed[id]; !ok {
			t.Fatalf("%s not reported failed: %v", id, res.Failed)
		}
	}

	// The quorum aggregate is exactly the healthy nodes' sum.
	want, _ := locals[0].Sketch(context.Background(), sensing.GaussianSpec(p))
	wb, _ := locals[1].Sketch(context.Background(), sensing.GaussianSpec(p))
	sensing.AddSketch(want, wb)
	if !res.Sketch.Equal(want, 1e-12) {
		t.Fatal("quorum aggregate != healthy-subset sum")
	}

	// Per-node accounting: the hung node burned both attempts on
	// deadlines; the crashed node burned both without timing out (EOF,
	// then connection refused); healthy nodes needed one attempt.
	hung := res.Nodes["hung"]
	if hung.Attempts != 2 || hung.Retries != 1 || hung.Timeouts != 2 {
		t.Fatalf("hung node stats %+v", hung)
	}
	crashed := res.Nodes["crashed"]
	if crashed.Attempts != 2 || crashed.Retries != 1 {
		t.Fatalf("crashed node stats %+v", crashed)
	}
	for _, id := range []string{"healthy-a", "healthy-b"} {
		if ns := res.Nodes[id]; !ns.OK || ns.Attempts != 1 {
			t.Fatalf("%s stats %+v", id, ns)
		}
	}
	if res.Stats.Attempts != 6 || res.Stats.Retries != 2 || res.Stats.Timeouts < 2 {
		t.Fatalf("aggregate stats %+v", res.Stats)
	}

	// Zero leaked goroutines once the connections are released.
	for _, rn := range remotes {
		rn.Close()
	}
	for _, s := range servers {
		s.Stop()
	}
	assertNoGoroutineLeak(t, baseline)
}
