package cluster

import (
	"context"
	"encoding/gob"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

// chaosServer speaks the wire protocol but misbehaves on sketch requests
// on demand — the wedged, crashed and byzantine data centers the client
// hardening exists for. ID requests are always answered, so dialing
// succeeds and the failure surfaces mid-collection, where it is hardest.
type chaosServer struct {
	t    *testing.T
	node NodeAPI
	addr string

	mode      atomic.Int32 // behave* below
	failFirst atomic.Int32 // close the conn on this many sketch requests first

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  chan struct{} // closed on Stop; releases hung responses
}

const (
	behaveOK int32 = iota
	behaveHang
	behaveGarbage
	behaveCrash
)

func startChaos(t *testing.T, node NodeAPI) *chaosServer {
	t.Helper()
	s := &chaosServer{t: t, node: node, conns: make(map[net.Conn]struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.run(ln)
	t.Cleanup(s.Stop)
	return s
}

func (s *chaosServer) run(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.done = make(chan struct{})
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[conn] = struct{}{}
			done := s.done
			s.mu.Unlock()
			go s.serve(conn, done)
		}
	}()
}

func (s *chaosServer) serve(conn net.Conn, done chan struct{}) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if dec.Decode(&req) != nil {
			return
		}
		if req.Kind != reqSketch {
			if enc.Encode(handle(context.Background(), s.node, &req)) != nil {
				return
			}
			continue
		}
		if s.failFirst.Load() > 0 {
			s.failFirst.Add(-1)
			return // abrupt close mid-exchange
		}
		switch s.mode.Load() {
		case behaveHang:
			<-done // wedged: never answers, holds the conn open
			return
		case behaveGarbage:
			conn.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef, 0x00, 0xff})
			return
		case behaveCrash:
			go s.Stop() // the whole process dies, not just this conn
			return
		default:
			if enc.Encode(handle(context.Background(), s.node, &req)) != nil {
				return
			}
		}
	}
}

// Stop kills the listener and every live connection. Safe to call twice.
func (s *chaosServer) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
	if s.done != nil {
		close(s.done)
		s.done = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[net.Conn]struct{})
}

// Restart re-listens on the same address, as a rebooted node would.
func (s *chaosServer) Restart() {
	s.t.Helper()
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		s.t.Fatal(err)
	}
	s.run(ln)
}

// assertNoGoroutineLeak waits for the goroutine count to settle back to
// the baseline captured before the test body ran.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline {
		t.Fatalf("goroutine leak: %d running, baseline was %d", n, baseline)
	}
}

var testSpec = sensing.GaussianSpec(sensing.Params{M: 8, N: 20, Seed: 3})

func testVector() linalg.Vector {
	x := make(linalg.Vector, 20)
	for i := range x {
		x[i] = float64(i)
	}
	return x
}

func TestSketchDeadlineOnHungNode(t *testing.T) {
	s := startChaos(t, NewLocalNode("wedged", testVector()))
	s.mode.Store(behaveHang)
	rn, err := DialContext(context.Background(), s.addr, DialOptions{
		RequestTimeout: 150 * time.Millisecond,
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	start := time.Now()
	_, err = rn.Sketch(context.Background(), testSpec)
	if err == nil {
		t.Fatal("sketch against a hung node succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not fire: call took %v", elapsed)
	}
	h := rn.Health()
	if h.Timeouts != 1 || h.Failures != 1 {
		t.Fatalf("health %+v, want 1 timeout and 1 failure", h)
	}
}

func TestCancelUnblocksHungExchange(t *testing.T) {
	// With per-request deadlines disabled, only the watchdog can unpark a
	// read that is stuck on a wedged node.
	s := startChaos(t, NewLocalNode("wedged", testVector()))
	s.mode.Store(behaveHang)
	rn, err := DialContext(context.Background(), s.addr, DialOptions{
		RequestTimeout: -1,
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := rn.Sketch(ctx, testSpec); err == nil {
		t.Fatal("cancelled sketch succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation did not unblock the read: call took %v", elapsed)
	}
}

func TestTransparentRedialAfterMidStreamDisconnect(t *testing.T) {
	node := NewLocalNode("flaky", testVector())
	s := startChaos(t, node)
	s.failFirst.Store(1)
	rn, err := DialContext(context.Background(), s.addr, DialOptions{BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	got, err := rn.Sketch(context.Background(), testSpec)
	if err != nil {
		t.Fatalf("sketch did not survive a mid-stream disconnect: %v", err)
	}
	want, _ := node.Sketch(context.Background(), testSpec)
	if !got.Equal(want, 0) {
		t.Fatal("retried sketch differs from direct computation")
	}
	h := rn.Health()
	if h.Retries != 1 || h.Redials != 1 {
		t.Fatalf("health %+v, want exactly 1 retry and 1 redial", h)
	}
}

func TestGarbageResponsePoisonsConnection(t *testing.T) {
	node := NewLocalNode("byzantine", testVector())
	s := startChaos(t, node)
	s.mode.Store(behaveGarbage)
	rn, err := DialContext(context.Background(), s.addr, DialOptions{
		MaxRetries:  1,
		BaseBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	if _, err := rn.Sketch(context.Background(), testSpec); err == nil {
		t.Fatal("garbage response accepted as a sketch")
	}
	// 3 attempts: the dial handshake plus both poisoned sketch exchanges.
	h := rn.Health()
	if h.Attempts != 3 || h.Failures != 1 {
		t.Fatalf("health %+v, want 3 attempts and 1 failure", h)
	}
	// The stream desynced, but the node recovers: once it behaves, the
	// poisoned connection is replaced and requests succeed again.
	s.mode.Store(behaveOK)
	if _, err := rn.Sketch(context.Background(), testSpec); err != nil {
		t.Fatalf("sketch after garbage recovery: %v", err)
	}
}

func TestRedialAfterNodeRestart(t *testing.T) {
	node := NewLocalNode("rebooted", testVector())
	s := startChaos(t, node)
	rn, err := DialContext(context.Background(), s.addr, DialOptions{BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()
	if _, err := rn.Sketch(context.Background(), testSpec); err != nil {
		t.Fatal(err)
	}

	s.Stop()
	s.Restart()

	got, err := rn.Sketch(context.Background(), testSpec)
	if err != nil {
		t.Fatalf("sketch did not survive a node restart: %v", err)
	}
	want, _ := node.Sketch(context.Background(), testSpec)
	if !got.Equal(want, 0) {
		t.Fatal("post-restart sketch differs from direct computation")
	}
	if h := rn.Health(); h.Redials < 1 {
		t.Fatalf("health %+v, want at least 1 redial", h)
	}
}

func TestCollectorLeaksNoGoroutines(t *testing.T) {
	// Regression: the pre-hardening collector leaked one goroutine per
	// straggler (the abandoned worker blocked forever on node.Sketch).
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	global, _ := workload.MajorityDominated(60, 3, 400, 80, 900, 51)
	slices := workload.SplitZeroSumNoise(global, 6, 100, 52)
	nodes := make([]NodeAPI, 6)
	for i, sl := range slices {
		if i < 3 {
			nodes[i] = NewLocalNode("ok"+string(rune('0'+i)), sl)
		} else {
			nodes[i] = &slowNode{LocalNode: NewLocalNode("slow"+string(rune('0'+i)), sl), release: release}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	p := sensing.Params{M: 16, N: 60, Seed: 53}
	res, err := CollectSketchesCtx(ctx, nodes, p, CollectOptions{
		MinNodes:    3,
		QuorumGrace: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Included) != 3 {
		t.Fatalf("included %v", res.Included)
	}
	// The stragglers were never released: if their workers survived the
	// collection, the count below stays elevated.
	assertNoGoroutineLeak(t, baseline)
	close(release)
}

// TestQuorumCollectionWithHungAndCrashedNodes is the acceptance scenario:
// two healthy TCP nodes, one that hangs mid-collection and one whose
// process dies mid-collection. The collection must return the quorum
// aggregate well within the deadline, leak nothing, and account for
// every retry and timeout per node.
func TestQuorumCollectionWithHungAndCrashedNodes(t *testing.T) {
	baseline := runtime.NumGoroutine()

	global, _ := workload.MajorityDominated(60, 3, 900, 100, 2000, 61)
	slices := workload.SplitZeroSumNoise(global, 4, 150, 62)
	locals := make([]*LocalNode, 4)
	servers := make([]*chaosServer, 4)
	names := []string{"healthy-a", "healthy-b", "hung", "crashed"}
	for i := range servers {
		locals[i] = NewLocalNode(names[i], slices[i])
		servers[i] = startChaos(t, locals[i])
	}
	servers[2].mode.Store(behaveHang)
	servers[3].mode.Store(behaveCrash)

	dialOpts := DialOptions{
		RequestTimeout: 250 * time.Millisecond,
		MaxRetries:     -1, // retries belong to the collector in this test
		BaseBackoff:    time.Millisecond,
	}
	var nodes []NodeAPI
	var remotes []*RemoteNode
	for _, s := range servers {
		rn, err := DialContext(context.Background(), s.addr, dialOpts)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, rn)
		remotes = append(remotes, rn)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	p := sensing.Params{M: 20, N: 60, Seed: 63}
	start := time.Now()
	res, err := CollectSketchesCtx(ctx, nodes, p, CollectOptions{
		MinNodes:     2,
		MaxAttempts:  2,
		NodeTimeout:  250 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("collection missed the deadline: %v", elapsed)
	}
	if len(res.Included) != 2 || res.Included[0] != "healthy-a" || res.Included[1] != "healthy-b" {
		t.Fatalf("included %v", res.Included)
	}
	for _, id := range []string{"hung", "crashed"} {
		if _, ok := res.Failed[id]; !ok {
			t.Fatalf("%s not reported failed: %v", id, res.Failed)
		}
	}

	// The quorum aggregate is exactly the healthy nodes' sum.
	want, _ := locals[0].Sketch(context.Background(), sensing.GaussianSpec(p))
	wb, _ := locals[1].Sketch(context.Background(), sensing.GaussianSpec(p))
	sensing.AddSketch(want, wb)
	if !res.Sketch.Equal(want, 1e-12) {
		t.Fatal("quorum aggregate != healthy-subset sum")
	}

	// Per-node accounting: the hung node burned both attempts on
	// deadlines; the crashed node burned both without timing out (EOF,
	// then connection refused); healthy nodes needed one attempt.
	hung := res.Nodes["hung"]
	if hung.Attempts != 2 || hung.Retries != 1 || hung.Timeouts != 2 {
		t.Fatalf("hung node stats %+v", hung)
	}
	crashed := res.Nodes["crashed"]
	if crashed.Attempts != 2 || crashed.Retries != 1 {
		t.Fatalf("crashed node stats %+v", crashed)
	}
	for _, id := range []string{"healthy-a", "healthy-b"} {
		if ns := res.Nodes[id]; !ns.OK || ns.Attempts != 1 {
			t.Fatalf("%s stats %+v", id, ns)
		}
	}
	if res.Stats.Attempts != 6 || res.Stats.Retries != 2 || res.Stats.Timeouts < 2 {
		t.Fatalf("aggregate stats %+v", res.Stats)
	}

	// Zero leaked goroutines once the connections are released.
	for _, rn := range remotes {
		rn.Close()
	}
	for _, s := range servers {
		s.Stop()
	}
	assertNoGoroutineLeak(t, baseline)
}
