package baseline

import (
	"context"
	"math"
	"sort"
	"testing"

	"csoutlier/internal/cluster"
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

func makeNodes(t *testing.T, global linalg.Vector, l int, noise float64, seed uint64) []cluster.NodeAPI {
	t.Helper()
	slices := workload.SplitZeroSumNoise(global, l, noise, seed)
	nodes := make([]cluster.NodeAPI, l)
	for i, s := range slices {
		nodes[i] = cluster.NewLocalNode("n"+string(rune('0'+i)), s)
	}
	return nodes
}

func TestAllExact(t *testing.T) {
	const n, s, k = 400, 12, 5
	global, _ := workload.MajorityDominated(n, s, 1800, 200, 900, 1)
	nodes := makeNodes(t, global, 4, 400, 2)
	res, err := All(context.Background(), nodes, k)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Global.Equal(global, 1e-8) {
		t.Fatal("All did not reconstruct the global vector")
	}
	if !res.HasMode || res.Mode != 1800 {
		t.Fatalf("mode = %v %v", res.Mode, res.HasMode)
	}
	truth := outlier.TrueOutliers(global, 1800, k)
	if ek := outlier.ErrorOnKey(truth, res.Outliers); ek != 0 {
		t.Fatalf("ALL must be exact, EK = %v", ek)
	}
	if res.Stats.Bytes != AllCostBytes(4, n) {
		t.Fatalf("Bytes = %d, want %d", res.Stats.Bytes, AllCostBytes(4, n))
	}
	if res.Stats.Rounds != 1 {
		t.Fatalf("Rounds = %d", res.Stats.Rounds)
	}
}

func TestAllNoNodes(t *testing.T) {
	if _, err := All(context.Background(), nil, 3); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestKDeltaRunsAndAccounts(t *testing.T) {
	const n, s, k = 500, 10, 5
	global, _ := workload.MajorityDominated(n, s, 1800, 300, 900, 3)
	nodes := makeNodes(t, global, 5, 300, 4)
	cfg := KDeltaConfig{K: k, Delta: 40, G: 25, N: n, Seed: 7}
	res, err := KDelta(context.Background(), nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", res.Stats.Rounds)
	}
	if len(res.Outliers) == 0 || len(res.Outliers) > k {
		t.Fatalf("returned %d outliers", len(res.Outliers))
	}
	// Round-1 cost: L·G tuples; round 2: L values; round 3 ≤ L·(K+Δ−G).
	minBytes := int64(5*25)*cluster.BytesPerTuple + int64(5)*cluster.BytesPerValue
	if res.Stats.Bytes < minBytes {
		t.Fatalf("Bytes = %d < minimum %d", res.Stats.Bytes, minBytes)
	}
	// The sampled mode should land near the true mode: most sampled keys
	// carry the majority value.
	if math.Abs(res.Mode-1800) > 400 {
		t.Fatalf("sampled mode %v too far from 1800", res.Mode)
	}
}

func TestKDeltaWorseThanExactOnSkewedData(t *testing.T) {
	// With zero-sum noise, local outliers differ from global ones; K+δ
	// must miss keys that BOMP-style global recovery would catch. We just
	// assert K+δ is not exact here (the paper's Figures 7–8 show it
	// plateauing at high error).
	const n, s, k = 600, 15, 10
	global, _ := workload.MajorityDominated(n, s, 1800, 250, 600, 5)
	nodes := makeNodes(t, global, 6, 900, 6)
	res, err := KDelta(context.Background(), nodes, KDeltaConfig{K: k, Delta: 20, G: 10, N: n, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	truth := outlier.TrueOutliers(global, 1800, k)
	if ek := outlier.ErrorOnKey(truth, res.Outliers); ek == 0 {
		t.Skip("K+δ got lucky on this seed; skew not strong enough")
	}
}

func TestKDeltaValidation(t *testing.T) {
	nodes := makeNodes(t, make(linalg.Vector, 10), 2, 1, 9)
	if _, err := KDelta(context.Background(), nodes, KDeltaConfig{K: 1, G: 0, N: 10}); err == nil {
		t.Fatal("G=0 accepted")
	}
	if _, err := KDelta(context.Background(), nodes, KDeltaConfig{K: 1, G: 11, N: 10}); err == nil {
		t.Fatal("G>N accepted")
	}
	if _, err := KDelta(context.Background(), nil, KDeltaConfig{K: 1, G: 1, N: 10}); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestKDeltaForBudget(t *testing.T) {
	cfg := KDeltaForBudget(12000, 5, 10, 1000, 3)
	if cfg.G < 1 || cfg.G > 1000 {
		t.Fatalf("G = %d", cfg.G)
	}
	// Round-1 cost must be ≤ half the budget.
	r1 := int64(5) * int64(cfg.G) * cluster.BytesPerTuple
	if r1 > 6000 {
		t.Fatalf("round-1 cost %d exceeds half budget", r1)
	}
	if cfg.K != 10 || cfg.N != 1000 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// Tiny budgets degrade gracefully.
	tiny := KDeltaForBudget(1, 5, 10, 1000, 3)
	if tiny.G < 1 {
		t.Fatalf("tiny budget G = %d", tiny.G)
	}
}

// nonNegativeWorkload builds a global vector of non-negative values with
// clear top-k structure, split across nodes WITHOUT negative shares so
// TA/TPUT preconditions hold.
func nonNegativeWorkload(t *testing.T, n, l int, seed uint64) ([]cluster.NodeAPI, linalg.Vector) {
	t.Helper()
	r := xrand.New(seed)
	global := make(linalg.Vector, n)
	for i := range global {
		global[i] = r.Float64() * 10
	}
	for i := 0; i < 8; i++ {
		global[r.Intn(n)] = 1000 + 100*r.Float64()
	}
	slices := make([]linalg.Vector, l)
	for j := range slices {
		slices[j] = make(linalg.Vector, n)
	}
	for i, v := range global {
		// Random non-negative split.
		weights := make([]float64, l)
		sum := 0.0
		for j := range weights {
			weights[j] = r.Float64()
			sum += weights[j]
		}
		for j := range weights {
			slices[j][i] = v * weights[j] / sum
		}
	}
	nodes := make([]cluster.NodeAPI, l)
	for j, s := range slices {
		nodes[j] = cluster.NewLocalNode("n"+string(rune('0'+j)), s)
	}
	return nodes, global
}

func trueTopK(global linalg.Vector, k int) []outlier.KV {
	items := make([]outlier.KV, len(global))
	for i, v := range global {
		items[i] = outlier.KV{Index: i, Value: v}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Value != items[b].Value {
			return items[a].Value > items[b].Value
		}
		return items[a].Index < items[b].Index
	})
	return items[:k]
}

func TestTAExactTopK(t *testing.T) {
	nodes, global := nonNegativeWorkload(t, 300, 4, 10)
	const k = 5
	res, err := TA(context.Background(), nodes, k)
	if err != nil {
		t.Fatal(err)
	}
	want := trueTopK(global, k)
	if ek := outlier.ErrorOnKey(want, res.TopK); ek != 0 {
		t.Fatalf("TA EK = %v; got %v want %v", ek, res.TopK, want)
	}
	// Sums must be exact.
	for i, kv := range res.TopK {
		if math.Abs(kv.Value-want[i].Value) > 1e-6 {
			t.Fatalf("TA value %d: %v, want %v", i, kv.Value, want[i].Value)
		}
	}
	if res.RoundsOfDepth >= 300 {
		t.Fatalf("TA did not stop early: depth %d", res.RoundsOfDepth)
	}
	if res.Stats.Bytes <= 0 || res.SortedAccess == 0 || res.RandomAccess == 0 {
		t.Fatalf("TA accounting: %+v", res)
	}
}

func TestTPUTExactTopK(t *testing.T) {
	nodes, global := nonNegativeWorkload(t, 300, 4, 11)
	const k = 5
	res, err := TPUT(context.Background(), nodes, k)
	if err != nil {
		t.Fatal(err)
	}
	want := trueTopK(global, k)
	if ek := outlier.ErrorOnKey(want, res.TopK); ek != 0 {
		t.Fatalf("TPUT EK = %v; got %v want %v", ek, res.TopK, want)
	}
	if res.Stats.Rounds != 3 {
		t.Fatalf("TPUT rounds = %d", res.Stats.Rounds)
	}
	if res.Candidates < k {
		t.Fatalf("TPUT pruned below k: %d", res.Candidates)
	}
}

func TestTATPUTRejectNegativeValues(t *testing.T) {
	// The paper's §7.1 point: signed partial values break the partial-sum
	// lower-bound assumption. Our implementations refuse rather than
	// silently answer wrong.
	global, _ := workload.MajorityDominated(100, 5, 1800, 100, 500, 12)
	nodes := makeNodes(t, global, 3, 900, 13) // zero-sum noise → negatives
	if _, err := TA(context.Background(), nodes, 3); err != ErrNegativeValues {
		t.Fatalf("TA err = %v, want ErrNegativeValues", err)
	}
	if _, err := TPUT(context.Background(), nodes, 3); err != ErrNegativeValues {
		t.Fatalf("TPUT err = %v, want ErrNegativeValues", err)
	}
}

func TestTAKValidation(t *testing.T) {
	nodes, _ := nonNegativeWorkload(t, 50, 2, 14)
	if _, err := TA(context.Background(), nodes, 0); err == nil {
		t.Fatal("k=0 accepted by TA")
	}
	if _, err := TPUT(context.Background(), nodes, 0); err == nil {
		t.Fatal("k=0 accepted by TPUT")
	}
}

func TestTPUTCheaperThanTAOnSkew(t *testing.T) {
	// TPUT's fixed three rounds generally cost fewer messages than TA's
	// depth-dependent probing on the same data — the scalability point
	// from §7.1. (Bytes may vary; assert rounds.)
	nodes, _ := nonNegativeWorkload(t, 400, 5, 15)
	ta, err := TA(context.Background(), nodes, 10)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := TPUT(context.Background(), nodes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Stats.Rounds != 3 {
		t.Fatalf("TPUT rounds = %d", tp.Stats.Rounds)
	}
	if ta.Stats.Rounds < 1 {
		t.Fatalf("TA rounds = %d", ta.Stats.Rounds)
	}
}
