// Package baseline implements the comparison algorithms of the paper's
// evaluation and related-work sections: the transmit-ALL baseline
// (§6.1.2), the three-round K+δ sampling baseline built on Cao & Wang's
// TPUT framework (§6.1.2), and — from §7.1 — the Threshold Algorithm
// (Fagin et al.) and TPUT themselves, which solve distributed top-k for
// non-negative data and illustrate why the k-outlier problem over the
// real field needs a different approach.
package baseline

import (
	"context"
	"fmt"
	"sort"

	"csoutlier/internal/cluster"
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/xrand"
)

// AllResult is the answer of the transmit-everything baseline.
type AllResult struct {
	Global   linalg.Vector // exact aggregated vector
	Mode     float64       // exact majority value (0 when none exists)
	HasMode  bool
	Outliers []outlier.KV
	Stats    cluster.CommStats
}

// All ships every node's full vectorized slice to the aggregator
// (L·N·8 bytes, one round), aggregates exactly, and answers the
// k-outlier query exactly. It is both the accuracy ground truth and the
// communication-cost yardstick every other method is normalized against
// (Figures 7–8 x-axes).
func All(ctx context.Context, nodes []cluster.NodeAPI, k int) (*AllResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("baseline: no nodes")
	}
	var global linalg.Vector
	stats := cluster.CommStats{Rounds: 1}
	for _, n := range nodes {
		x, err := n.FullVector(ctx)
		if err != nil {
			return nil, fmt.Errorf("baseline: node %s: %w", n.ID(), err)
		}
		if global == nil {
			global = make(linalg.Vector, len(x))
		}
		if len(x) != len(global) {
			return nil, fmt.Errorf("baseline: node %s vector length %d, want %d", n.ID(), len(x), len(global))
		}
		global.Add(x)
		stats.Bytes += int64(len(x)) * cluster.BytesPerValue
		stats.Messages++
	}
	mode, ok := outlier.Mode(global)
	return &AllResult{
		Global:   global,
		Mode:     mode,
		HasMode:  ok,
		Outliers: outlier.TopK(global, mode, k),
		Stats:    stats,
	}, nil
}

// AllCostBytes returns the transmit-ALL communication cost the paper
// normalizes against: L·N vectorized values at 8 bytes.
func AllCostBytes(l, n int) int64 {
	return int64(l) * int64(n) * cluster.BytesPerValue
}

// KDeltaConfig parameterizes the K+δ baseline.
type KDeltaConfig struct {
	K     int    // outliers wanted
	Delta int    // slack: each node returns K+Delta-G candidates
	G     int    // keys sampled in round 1 for mode estimation
	N     int    // key-space size
	Seed  uint64 // determines the shared round-1 sample
}

// KDeltaForBudget sizes a K+δ run to a communication budget in bytes,
// following the paper's method: G is chosen so round 1 spends 50% of the
// budget, and the remainder buys round-3 candidates. L is the node count.
func KDeltaForBudget(budget int64, l, k, n int, seed uint64) KDeltaConfig {
	perNodeTuples := budget / (2 * int64(l) * cluster.BytesPerTuple)
	g := int(perNodeTuples)
	if g < 1 {
		g = 1
	}
	if g > n {
		g = n
	}
	// Round 3 gets the other half: K+δ−G tuples per node.
	r3 := int(budget/(2*int64(l)*cluster.BytesPerTuple)) - 1
	if r3 < 1 {
		r3 = 1
	}
	delta := r3 + g - k
	if delta < 0 {
		delta = 0
	}
	return KDeltaConfig{K: k, Delta: delta, G: g, N: n, Seed: seed}
}

// KDeltaResult is the K+δ baseline's answer.
type KDeltaResult struct {
	Mode     float64 // the sampled mode estimate b
	Outliers []outlier.KV
	Stats    cluster.CommStats
}

// KDelta runs the paper's three-round approximate baseline (§6.1.2):
//
//	round 1: every node ships its values at G shared sample positions;
//	         the aggregator averages the G aggregated values into b.
//	round 2: the aggregator broadcasts b.
//	round 3: every node ships its K+δ−G strongest local outliers w.r.t.
//	         b; the aggregator sums what it received per key and picks
//	         the global top-K around b.
//
// Accuracy depends on how evenly the per-key values spread across nodes
// (paper: big standard deviations → local outliers differ from global
// ones → large errors), which is exactly what Figures 7–8 measure.
func KDelta(ctx context.Context, nodes []cluster.NodeAPI, cfg KDeltaConfig) (*KDeltaResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("baseline: no nodes")
	}
	if cfg.G < 1 || cfg.G > cfg.N {
		return nil, fmt.Errorf("baseline: G=%d outside [1, N=%d]", cfg.G, cfg.N)
	}
	l := len(nodes)
	stats := cluster.CommStats{Rounds: 3}

	// Round 1: shared sample positions, same on every node.
	r := xrand.New(cfg.Seed)
	perm := r.Perm(cfg.N)
	sample := perm[:cfg.G]
	sums := make([]float64, cfg.G)
	for _, n := range nodes {
		vs, err := n.SampleValues(ctx, sample)
		if err != nil {
			return nil, fmt.Errorf("baseline: node %s: %w", n.ID(), err)
		}
		for i, v := range vs {
			sums[i] += v
		}
		stats.Bytes += int64(cfg.G) * cluster.BytesPerTuple
		stats.Messages++
	}
	b := 0.0
	for _, s := range sums {
		b += s
	}
	b /= float64(cfg.G)

	// Round 2: broadcast b.
	stats.Bytes += int64(l) * cluster.BytesPerValue
	stats.Messages += l

	// Round 3: local outliers w.r.t. b.
	fetch := cfg.K + cfg.Delta - cfg.G
	if fetch < cfg.K {
		fetch = cfg.K
	}
	partial := make(map[int]float64)
	seenCount := make(map[int]int)
	for _, n := range nodes {
		kvs, err := n.LocalOutliers(ctx, b/float64(l), fetch)
		if err != nil {
			return nil, fmt.Errorf("baseline: node %s: %w", n.ID(), err)
		}
		for _, kv := range kvs {
			partial[kv.Index] += kv.Value
			seenCount[kv.Index]++
		}
		stats.Bytes += int64(len(kvs)) * cluster.BytesPerTuple
		stats.Messages++
	}
	// Keys reported by only some nodes are completed with the local-mode
	// share b/L for each silent node — the aggregator's best guess under
	// the sampling model.
	cands := make([]outlier.KV, 0, len(partial))
	for idx, sum := range partial {
		missing := l - seenCount[idx]
		est := sum + float64(missing)*b/float64(l)
		cands = append(cands, outlier.KV{Index: idx, Value: est})
	}
	return &KDeltaResult{
		Mode:     b,
		Outliers: outlier.TopKOf(cands, b, cfg.K),
		Stats:    stats,
	}, nil
}

// rankItem pairs a key with a value for sorting.
type rankItem struct {
	idx int
	val float64
}

func sortDesc(items []rankItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].val != items[j].val {
			return items[i].val > items[j].val
		}
		return items[i].idx < items[j].idx
	})
}
