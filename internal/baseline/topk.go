package baseline

import (
	"context"
	"fmt"
	"sort"

	"csoutlier/internal/cluster"
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
)

// The classic distributed top-k algorithms of the paper's §7.1. Both
// assume non-negative partial values, so that a local partial sum lower-
// bounds the aggregate — the assumption the paper points out is violated
// by the k-outlier problem over the real field (signed click scores).
// They are implemented here as the related-work baselines and to
// demonstrate that violation in tests.

// ErrNegativeValues is returned when TA/TPUT meet data that breaks their
// non-negativity precondition.
var ErrNegativeValues = fmt.Errorf("baseline: TA/TPUT require non-negative partial values")

// topKView caches each node's slice sorted by descending value, giving
// the engine TA-style "sorted access" and "random access" with the
// paper's per-tuple communication accounting.
type topKView struct {
	id     string
	x      linalg.Vector
	sorted []rankItem
}

func buildViews(ctx context.Context, nodes []cluster.NodeAPI, stats *cluster.CommStats) ([]*topKView, int, error) {
	// Materializing the view costs nothing on the wire: it models the
	// node's local sorted index. Only accesses are charged.
	views := make([]*topKView, len(nodes))
	n := -1
	for i, node := range nodes {
		x, err := node.FullVector(ctx)
		if err != nil {
			return nil, 0, fmt.Errorf("baseline: node %s: %w", node.ID(), err)
		}
		if n == -1 {
			n = len(x)
		} else if len(x) != n {
			return nil, 0, fmt.Errorf("baseline: node %s vector length %d, want %d", node.ID(), len(x), n)
		}
		for _, v := range x {
			if v < 0 {
				return nil, 0, ErrNegativeValues
			}
		}
		items := make([]rankItem, len(x))
		for j, v := range x {
			items[j] = rankItem{idx: j, val: v}
		}
		sortDesc(items)
		views[i] = &topKView{id: node.ID(), x: x, sorted: items}
	}
	_ = stats
	return views, n, nil
}

// TAResult reports the Threshold Algorithm's answer and costs.
type TAResult struct {
	TopK          []outlier.KV
	Stats         cluster.CommStats
	SortedAccess  int // tuples read via sorted access
	RandomAccess  int // tuples read via random access
	RoundsOfDepth int // sorted-access depth reached
}

// TA runs Fagin's Threshold Algorithm (paper §7.1, [19]) across the
// nodes: walk every node's sorted list in lock step; for each newly seen
// key, random-access its value on every other node to get the exact sum;
// stop when k exact sums dominate the threshold (the sum of the current
// sorted-access frontier). Exact for non-negative data; round count
// scales with the depth reached, which is TA's scalability weakness the
// paper cites.
func TA(ctx context.Context, nodes []cluster.NodeAPI, k int) (*TAResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("baseline: k must be positive")
	}
	res := &TAResult{}
	views, n, err := buildViews(ctx, nodes, &res.Stats)
	if err != nil {
		return nil, err
	}
	l := len(views)
	exact := make(map[int]float64)
	for depth := 0; depth < n; depth++ {
		res.RoundsOfDepth = depth + 1
		threshold := 0.0
		for _, v := range views {
			item := v.sorted[depth]
			threshold += item.val
			res.SortedAccess++
			res.Stats.Bytes += cluster.BytesPerTuple
			if _, ok := exact[item.idx]; !ok {
				// Random access to every node for the exact sum.
				sum := 0.0
				for _, w := range views {
					sum += w.x[item.idx]
					res.RandomAccess++
					res.Stats.Bytes += cluster.BytesPerTuple
				}
				exact[item.idx] = sum
			}
		}
		// Do k exact sums beat the threshold?
		if len(exact) >= k {
			items := make([]rankItem, 0, len(exact))
			for idx, v := range exact {
				items = append(items, rankItem{idx, v})
			}
			sortDesc(items)
			if items[k-1].val >= threshold {
				res.TopK = toKVs(items[:k])
				res.Stats.Rounds = res.RoundsOfDepth
				res.Stats.Messages = res.SortedAccess + res.RandomAccess
				return res, nil
			}
		}
	}
	// Exhausted the lists: exact answer anyway.
	items := make([]rankItem, 0, len(exact))
	for idx, v := range exact {
		items = append(items, rankItem{idx, v})
	}
	sortDesc(items)
	if len(items) > k {
		items = items[:k]
	}
	res.TopK = toKVs(items)
	res.Stats.Rounds = res.RoundsOfDepth
	res.Stats.Messages = res.SortedAccess + res.RandomAccess
	_ = l
	return res, nil
}

// TPUTResult reports TPUT's answer and costs.
type TPUTResult struct {
	TopK       []outlier.KV
	Stats      cluster.CommStats
	Candidates int // survivors of phase-2 pruning
}

// TPUT runs Cao & Wang's Three-Phase Uniform Threshold algorithm
// (paper §7.1, [10]): phase 1 fetches every node's local top-k and
// lower-bounds the k-th aggregate as τ; phase 2 fetches every local
// value ≥ τ/L and prunes candidates whose upper bound < τ; phase 3
// random-accesses the survivors for exact sums. Exactly three rounds,
// unlike TA's data-dependent depth.
func TPUT(ctx context.Context, nodes []cluster.NodeAPI, k int) (*TPUTResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("baseline: k must be positive")
	}
	res := &TPUTResult{Stats: cluster.CommStats{Rounds: 3}}
	views, n, err := buildViews(ctx, nodes, &res.Stats)
	if err != nil {
		return nil, err
	}
	l := len(views)

	// Phase 1: local top-k from each node.
	partial := make(map[int]float64)
	for _, v := range views {
		top := v.sorted
		if len(top) > k {
			top = top[:k]
		}
		for _, it := range top {
			partial[it.idx] += it.val
			res.Stats.Bytes += cluster.BytesPerTuple
			res.Stats.Messages++
		}
	}
	tau := kthLargest(partial, k) // phase-1 lower bound on the true k-th sum

	// Phase 2: every node sends all items with local value ≥ τ/L.
	t2 := tau / float64(l)
	partial2 := make(map[int]float64)
	seen2 := make(map[int]int)
	for _, v := range views {
		for _, it := range v.sorted {
			if it.val < t2 {
				break
			}
			partial2[it.idx] += it.val
			seen2[it.idx]++
			res.Stats.Bytes += cluster.BytesPerTuple
			res.Stats.Messages++
		}
	}
	tau2 := kthLargest(partial2, k)
	if tau2 < tau {
		tau2 = tau
	}
	// Prune: upper bound = partial sum + t2 for each unseen node.
	var candidates []int
	for idx, sum := range partial2 {
		upper := sum + float64(l-seen2[idx])*t2
		if upper >= tau2 {
			candidates = append(candidates, idx)
		}
	}
	sort.Ints(candidates)
	res.Candidates = len(candidates)

	// Phase 3: exact sums for the candidates.
	items := make([]rankItem, 0, len(candidates))
	for _, idx := range candidates {
		sum := 0.0
		for _, v := range views {
			sum += v.x[idx]
			res.Stats.Bytes += cluster.BytesPerTuple
			res.Stats.Messages++
		}
		items = append(items, rankItem{idx, sum})
	}
	sortDesc(items)
	if len(items) > k {
		items = items[:k]
	}
	res.TopK = toKVs(items)
	_ = n
	return res, nil
}

func kthLargest(m map[int]float64, k int) float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	if len(vals) == 0 {
		return 0
	}
	if len(vals) < k {
		return vals[len(vals)-1]
	}
	return vals[k-1]
}

func toKVs(items []rankItem) []outlier.KV {
	out := make([]outlier.KV, len(items))
	for i, it := range items {
		out[i] = outlier.KV{Index: it.idx, Value: it.val}
	}
	return out
}
