package experiments

import "testing"

func TestPointQConverges(t *testing.T) {
	tables, err := Run("pointq", Config{Scale: 0.05, Trials: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Series) != 6 {
		t.Fatalf("series = %d, want 6 quality/cost columns", len(tb.Series))
	}
	byName := map[string][]float64{}
	for _, s := range tb.Series {
		byName[s.Name] = s.Y
	}
	last := len(tb.X) - 1
	if recall := byName["outlier recall"]; recall[last] < 0.999 {
		t.Fatalf("recall at max M = %v, want ≈1", recall[last])
	}
	fp := byName["clean false-pos rate"]
	if fp[last] > 0.01 {
		t.Fatalf("false-pos rate at max M = %v, want ≈0", fp[last])
	}
	if fp[0] < fp[last] {
		t.Fatalf("false-pos rate grew with M: %v", fp)
	}
	// A query is O(depth) hashed reads whatever M is: the p50 must not
	// scale with the sketch (allow generous jitter on shared boxes).
	p50 := byName["query p50 ns"]
	if p50[last] > 20*p50[0] {
		t.Fatalf("p50 scaled with M: %v", p50)
	}
	// Sketch bytes are exactly 8·M.
	kb := byName["sketch KiB"]
	for i, m := range tb.X {
		if want := 8 * m / 1024; kb[i] != want {
			t.Fatalf("sketch KiB at M=%v is %v, want %v", m, kb[i], want)
		}
	}
}
