package experiments

import (
	"math"
	"strings"
	"testing"

	"csoutlier/internal/xrand/xrandtest"
)

// TestFig4aPhaseTransitionGolden is the golden-figure regression test for
// the paper's headline result: Figure 4(a)'s 0→1 phase transition of
// exact-recovery probability in M, reproduced at tiny scale (20 trials,
// sparsities 3/6/12, M swept 10…100 over N=1000 keys; ~2s). It pins the
// qualitative shape — the invariants any faithful reproduction must
// show — rather than exact probabilities, so it survives reasonable
// algorithmic changes but fails loudly if recovery quality regresses:
//
//   - every curve starts at (or near) 0 and ends at exactly 1;
//   - the transition point M₅₀ is ordered by sparsity:
//     M₅₀(s=3) < M₅₀(s=6) < M₅₀(s=12) — sparser signals need fewer
//     measurements (M = O(s·log N), Theorem 1);
//   - BOMP transitions within two sweep steps of OMP with the mode known
//     in advance — learning the bias costs roughly one extra measurement
//     batch, not a different regime (§3.2).
func TestFig4aPhaseTransitionGolden(t *testing.T) {
	seed := xrandtest.Seed(t, 0xf164a)
	tables, err := Fig4a(Config{Scale: 0.06, Trials: 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("Fig4a returned %d tables", len(tables))
	}
	tb := tables[0]

	series := func(name string) []float64 {
		for _, s := range tb.Series {
			if s.Name == name {
				return s.Y
			}
		}
		t.Fatalf("series %q missing from %v", name, seriesNames(tb.Series))
		return nil
	}
	// m50 is the index of the first sweep point with P ≥ 0.5 — the
	// discrete location of the phase transition.
	m50 := func(y []float64) int {
		for i, p := range y {
			if p >= 0.5 {
				return i
			}
		}
		return len(y)
	}

	sparsities := []int{3, 6, 12}
	var transitions []int
	for _, s := range sparsities {
		name := seriesName("BOMP s=", s)
		y := series(name)
		known := series(seriesName("OMP+known-mode s=", s))

		if y[0] > 0.2 {
			t.Errorf("%s: P at smallest M = %v, want ≈0 (below the transition)", name, y[0])
		}
		if last := y[len(y)-1]; last != 1 {
			t.Errorf("%s: P at largest M = %v, want exactly 1 (above the transition)", name, last)
		}
		if last := known[len(known)-1]; last != 1 {
			t.Errorf("OMP+known-mode s=%d: P at largest M = %v, want 1", s, last)
		}
		bompAt, knownAt := m50(y), m50(known)
		if d := math.Abs(float64(bompAt - knownAt)); d > 2 {
			t.Errorf("s=%d: BOMP transitions at sweep index %d, known-mode at %d — more than 2 steps apart", s, bompAt, knownAt)
		}
		transitions = append(transitions, bompAt)
	}
	// Recovering 12 outliers from 10 measurements is structurally
	// impossible (support can't exceed the iteration count), so the
	// densest curve must start at exactly 0.
	if y := series("BOMP s=12"); y[0] != 0 {
		t.Errorf("BOMP s=12: P = %v at M=10, want exactly 0 (support cannot exceed M)", y[0])
	}
	// The transition ordering, strict across the extremes.
	for i := 1; i < len(transitions); i++ {
		if transitions[i] < transitions[i-1] {
			t.Errorf("M₅₀ not ordered by sparsity: s=%d transitions at index %d, s=%d at %d",
				sparsities[i-1], transitions[i-1], sparsities[i], transitions[i])
		}
	}
	if !xrandtest.Overridden() && transitions[len(transitions)-1] <= transitions[0] {
		t.Errorf("phase transition did not move with sparsity: indices %v", transitions)
	}
}

func seriesNames(ss []Series) string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}
