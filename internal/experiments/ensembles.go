package experiments

import (
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// Ensembles is an extension experiment comparing the measurement
// ensembles (Gaussian, sparse Rademacher at two densities, SRHT) on the
// paper's core task at equal M — quantifying what the cheaper ensembles
// give up in recovery quality for their computational advantages
// (O(D) ingest for the sparse family, O(N·log N) transforms for SRHT).
func Ensembles(cfg Config) ([]*Table, error) {
	const (
		n    = 600
		s    = 12
		k    = 5
		mode = 1800.0
	)
	trials := cfg.trials(scaleInt(40, cfg.scale(), 3))
	var ms []float64
	for m := 40; m <= 240; m += 25 {
		ms = append(ms, float64(m))
	}
	specs := []struct {
		name string
		make func(p sensing.Params) (sensing.Matrix, error)
	}{
		{"Gaussian", func(p sensing.Params) (sensing.Matrix, error) { return sensing.NewDense(p) }},
		{"Sparse D=4", func(p sensing.Params) (sensing.Matrix, error) { return sensing.NewSparseRademacher(p, 4) }},
		{"Sparse D=16", func(p sensing.Params) (sensing.Matrix, error) { return sensing.NewSparseRademacher(p, 16) }},
		{"SRHT", func(p sensing.Params) (sensing.Matrix, error) { return sensing.NewSRHT(p) }},
	}
	t := &Table{
		Title:  "Extension: measurement ensembles on biased data (N=600, s=12, k=5), avg EK",
		XLabel: "M",
		YLabel: "EK (avg over trials)",
		X:      ms,
	}
	rng := xrand.New(cfg.Seed + 0xe5)
	results := make([][]float64, len(specs))
	for i := range results {
		results[i] = make([]float64, len(ms))
	}
	for mi, mf := range ms {
		m := int(mf)
		sums := make([]float64, len(specs))
		for trial := 0; trial < trials; trial++ {
			seed := rng.Uint64()
			x, _ := workload.MajorityDominated(n, s, mode, 400, 4000, seed)
			truth := outlier.TopK(x, mode, k)
			for si, spec := range specs {
				mat, err := spec.make(sensing.Params{M: m, N: n, Seed: seed ^ uint64(si*131)})
				if err != nil {
					return nil, err
				}
				res, err := recovery.BOMP(mat, mat.Measure(x, nil), recovery.Options{
					MaxIterations: recovery.IterationBudget(k),
				})
				if err != nil {
					sums[si]++
					continue
				}
				sums[si] += outlier.ErrorOnKey(truth, estimateOutliers(res, k))
			}
		}
		for si := range specs {
			results[si][mi] = sums[si] / float64(trials)
		}
	}
	for si, spec := range specs {
		if err := t.AddSeries(spec.name, results[si]); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
