package experiments

import (
	"strings"
	"testing"
)

func TestAlgosBiasAwareBeatsBiasBlind(t *testing.T) {
	tables, err := Run("algos", Config{Scale: 0.05, Trials: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	series := map[string][]float64{}
	for _, s := range tb.Series {
		series[s.Name] = s.Y
	}
	last := len(tb.X) - 1
	// Every bias-aware algorithm converges to (near-)exact keys at the
	// top of the sweep...
	for _, name := range []string{"BOMP", "BiasedCoSaMP", "BiasedIHT", "BiasedOLS"} {
		y, ok := series[name]
		if !ok {
			t.Fatalf("missing series %q", name)
		}
		if y[last] > 0.14 {
			t.Fatalf("%s EK at max M = %v, want ≈0", name, y[last])
		}
	}
	// ...while the sparse-at-zero classics stay badly wrong at every M:
	// the data is not sparse at zero (paper §3.2).
	for _, name := range []string{"OMP(no-bias)", "BP(no-bias)"} {
		y := series[name]
		for i, v := range y {
			if v < 0.5 {
				t.Fatalf("%s EK[%d] = %v: bias-blind recovery should not work here", name, i, v)
			}
		}
	}
}

func TestAlgosCSVHasAllSeries(t *testing.T) {
	tables, err := Run("algos", Config{Scale: 0.05, Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tables[0].WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"BOMP", "BiasedCoSaMP", "BiasedIHT", "BiasedOLS", "OMP(no-bias)", "BP(no-bias)"} {
		if !strings.Contains(out, name) {
			t.Fatalf("CSV missing series %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "# Extension") {
		t.Fatal("CSV missing title comment")
	}
}
