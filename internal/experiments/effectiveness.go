package experiments

import (
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// Fig4a reproduces Figure 4(a): probability of exact recovery on
// majority-dominated data (N = 1K, b = 5000) as the measurement size M
// grows, for BOMP and for OMP with the mode known in advance, at
// sparsity s ∈ {50, 100, 200}. Each point repeats with freshly drawn
// measurement matrices; recovery runs min(M, s+1) iterations as in the
// paper.
func Fig4a(cfg Config) ([]*Table, error) {
	sc := cfg.scale()
	n := 1000 // the paper's N = 1K is already laptop-friendly
	// Sparsity and the M sweep shrink together so the phase transition
	// stays inside the plotted window at any scale.
	sparsities := []int{scaleInt(50, sc, 3), scaleInt(100, sc, 6), scaleInt(200, sc, 12)}
	trials := cfg.trials(scaleInt(1000, sc, 10))
	const mode = 5000.0

	var ms []float64
	for step := 1; step <= 10; step++ {
		ms = append(ms, float64(scaleInt(100*step, sc, 10*step)))
	}
	t := &Table{
		Title:  "Figure 4(a): probability of exact recovery, majority-dominated data",
		XLabel: "M",
		YLabel: "P(exact recovery)",
		X:      ms,
	}
	rng := xrand.New(cfg.Seed + 0x4a)
	for _, s := range sparsities {
		bomp := make([]float64, len(ms))
		known := make([]float64, len(ms))
		for mi, mf := range ms {
			m := int(mf)
			okB, okK := 0, 0
			for trial := 0; trial < trials; trial++ {
				seed := rng.Uint64()
				x, support := workload.MajorityDominated(n, s, mode, 500, 5000, seed)
				p := sensing.Params{M: m, N: n, Seed: seed ^ 0x9e37}
				d, err := sensing.NewDense(p)
				if err != nil {
					return nil, err
				}
				y := d.Measure(x, nil)
				iters := s + 1
				if iters > m {
					iters = m
				}
				res, err := recovery.BOMP(d, y, recovery.Options{MaxIterations: iters})
				if err != nil {
					return nil, err
				}
				if exactRecovery(res, x, support, mode) {
					okB++
				}
				itersK := s
				if itersK > m {
					itersK = m
				}
				resK, err := recovery.KnownModeOMP(d, y, mode, recovery.Options{MaxIterations: itersK})
				if err != nil {
					return nil, err
				}
				if exactRecovery(resK, x, support, mode) {
					okK++
				}
			}
			bomp[mi] = float64(okB) / float64(trials)
			known[mi] = float64(okK) / float64(trials)
		}
		if err := t.AddSeries(seriesName("BOMP s=", s), bomp); err != nil {
			return nil, err
		}
		if err := t.AddSeries(seriesName("OMP+known-mode s=", s), known); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}

func seriesName(prefix string, s int) string {
	return prefix + itoa(s)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// exactRecovery implements the paper's Figure-4 criterion: EK = EV = 0
// and the number of recovered outliers equals s.
func exactRecovery(res *recovery.Result, x linalg.Vector, support []int, mode float64) bool {
	if len(res.Support) != len(support) {
		return false
	}
	got := make(map[int]bool, len(res.Support))
	for _, j := range res.Support {
		got[j] = true
	}
	for _, j := range support {
		if !got[j] {
			return false
		}
	}
	if math.Abs(res.Mode-mode) > 1e-6*math.Max(1, math.Abs(mode)) {
		return false
	}
	for _, j := range support {
		if math.Abs(res.X[j]-x[j]) > 1e-6*math.Max(1, math.Abs(x[j])) {
			return false
		}
	}
	return true
}

// Fig4b reproduces Figure 4(b): the mode (bias) estimate at every BOMP
// iteration on majority-dominated data, showing it stabilizes at
// iteration ≈ s+1. M is chosen large enough for exact recovery at each
// sparsity, as in the paper.
func Fig4b(cfg Config) ([]*Table, error) {
	sc := cfg.scale()
	n := 1000
	sparsities := []int{scaleInt(50, sc, 3), scaleInt(100, sc, 6), scaleInt(200, sc, 12)}
	const mode = 5000.0
	maxIter := 0
	for _, s := range sparsities {
		if r := int(1.5*float64(s)) + 20; r > maxIter {
			maxIter = r
		}
	}
	var xs []float64
	for i := 1; i <= maxIter; i++ {
		xs = append(xs, float64(i))
	}
	t := &Table{
		Title:  "Figure 4(b): mode (bias) estimate per BOMP iteration",
		XLabel: "iteration",
		YLabel: "mode estimate",
		X:      xs,
	}
	for _, s := range sparsities {
		m := 4*s + 100 // comfortably inside the 100%-recovery region
		x, _ := workload.MajorityDominated(n, s, mode, 500, 5000, cfg.Seed+uint64(s))
		p := sensing.Params{M: m, N: n, Seed: cfg.Seed + uint64(s) + 1}
		d, err := sensing.NewDense(p)
		if err != nil {
			return nil, err
		}
		res, err := recovery.BOMP(d, d.Measure(x, nil), recovery.Options{
			MaxIterations: maxIter,
			TraceMode:     true,
			ResidualTol:   1e-13,
		})
		if err != nil {
			return nil, err
		}
		trace := make([]float64, maxIter)
		for i := range trace {
			if i < len(res.ModeTrace) {
				trace[i] = res.ModeTrace[i]
			} else if len(res.ModeTrace) > 0 {
				trace[i] = res.ModeTrace[len(res.ModeTrace)-1] // recovered exactly; flat
			}
		}
		if err := t.AddSeries(seriesName("s=", s), trace); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}

// powerLawTruth defines ground truth on continuous power-law data: the
// density peaks at the Pareto scale (1), so the k-outliers are the k
// values furthest from it — the extreme tail.
func powerLawTruth(x linalg.Vector, k int) []outlier.KV {
	return outlier.TopK(x, 1, k)
}

// fig56 runs the shared sweep behind Figures 5 and 6: BOMP on power-law
// data (α ∈ {0.9, 0.95}), errors vs M for k ∈ {5, 10, 20}, MAX/MIN/AVG
// over repeated random measurement matrices.
func fig56(cfg Config, value bool) ([]*Table, error) {
	sc := cfg.scale()
	n := scaleInt(10000, sc, 500)
	runs := cfg.trials(scaleInt(100, sc, 5))
	alphas := []float64{0.9, 0.95}
	ks := []int{5, 10, 20}

	var ms []float64
	for frac := 0.01; frac <= 0.1001; frac += 0.01 {
		ms = append(ms, math.Round(frac*float64(n)))
	}
	metric := "EK"
	title := "Figure 5"
	if value {
		metric = "EV"
		title = "Figure 6"
	}
	var tables []*Table
	for _, k := range ks {
		t := &Table{
			Title:  title + " (k=" + itoa(k) + "): error on " + map[bool]string{false: "key", true: "value"}[value] + ", power-law data",
			XLabel: "M",
			YLabel: metric,
			X:      ms,
		}
		for _, alpha := range alphas {
			x := workload.PowerLaw(n, alpha, cfg.Seed+uint64(alpha*100))
			truth := powerLawTruth(x, k)
			maxE := make([]float64, len(ms))
			minE := make([]float64, len(ms))
			avgE := make([]float64, len(ms))
			for mi, mf := range ms {
				m := int(mf)
				lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
				for run := 0; run < runs; run++ {
					p := sensing.Params{M: m, N: n, Seed: cfg.Seed + uint64(run)*7919 + uint64(m)}
					d, err := sensing.NewDense(p)
					if err != nil {
						return nil, err
					}
					res, err := recovery.BOMP(d, d.Measure(x, nil), recovery.Options{
						MaxIterations: recovery.IterationBudget(k),
					})
					if err != nil {
						return nil, err
					}
					est := estimateOutliers(res, k)
					var e float64
					if value {
						e = outlier.ErrorOnValue(truth, est)
					} else {
						e = outlier.ErrorOnKey(truth, est)
					}
					if e < lo {
						lo = e
					}
					if e > hi {
						hi = e
					}
					sum += e
				}
				minE[mi], maxE[mi], avgE[mi] = lo, hi, sum/float64(runs)
			}
			an := "alpha=" + formatNum(alpha)
			if err := t.AddSeries(an+" Max", maxE); err != nil {
				return nil, err
			}
			if err := t.AddSeries(an+" Min", minE); err != nil {
				return nil, err
			}
			if err := t.AddSeries(an+" Avg", avgE); err != nil {
				return nil, err
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// estimateOutliers converts a recovery result into its k-outlier answer.
func estimateOutliers(res *recovery.Result, k int) []outlier.KV {
	cands := make([]outlier.KV, len(res.Support))
	for i, j := range res.Support {
		cands[i] = outlier.KV{Index: j, Value: res.X[j]}
	}
	return outlier.TopKOf(cands, res.Mode, k)
}

// Fig5 reproduces Figure 5(a–c): error on key vs M over power-law data.
func Fig5(cfg Config) ([]*Table, error) { return fig56(cfg, false) }

// Fig6 reproduces Figure 6(a–c): error on value vs M over power-law data.
func Fig6(cfg Config) ([]*Table, error) { return fig56(cfg, true) }
