package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one figure (or conjecture check) as tables.
type Runner func(Config) ([]*Table, error)

// registry maps experiment ids to runners and descriptions.
var registry = map[string]struct {
	run  Runner
	desc string
}{
	"fig4a":     {Fig4a, "P(exact recovery) vs M, BOMP vs OMP+known-mode (majority-dominated)"},
	"fig4b":     {Fig4b, "mode estimate per BOMP iteration, stabilizes at s+1"},
	"fig5":      {Fig5, "error on key vs M, power-law data, k in {5,10,20}"},
	"fig6":      {Fig6, "error on value vs M, power-law data, k in {5,10,20}"},
	"fig7":      {Fig7, "error on key vs normalized comm cost, production data, BOMP vs K+delta"},
	"fig8":      {Fig8, "error on value vs normalized comm cost, production data, BOMP vs K+delta"},
	"fig9":      {Fig9, "mode per recovery iteration on three production score data sets"},
	"fig10":     {Fig10, "end-to-end Hadoop-model time vs M, BOMP vs traditional top-k"},
	"fig11":     {Fig11, "map/reduce breakdown time vs M"},
	"fig12":     {Fig12, "efficiency vs key-space size N (to 5M keys)"},
	"conj1":     {Conj1, "numerical check of the near-isometric transformation conjecture"},
	"conj2":     {Conj2, "numerical check of the near-independent inner product conjecture"},
	"algos":     {Algos, "extension: all recovery algorithms on biased data (why BOMP exists)"},
	"fig1":      {Fig1, "motivating example: local views vs global truth; outlier-k vs top-k"},
	"jitter":    {Jitter, "extension: BOMP robustness to concentration jitter (near-sparse data)"},
	"ensembles": {Ensembles, "extension: Gaussian vs sparse-Rademacher vs SRHT measurement quality"},
	"pointq":    {PointQ, "extension: recovery-free count-sketch point queries — accuracy, bytes, latency vs M"},
	"solvers":   {Solvers, "extension: multi-solver sweep — EK and ns/op per solver per (s,M) cell"},
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description for an id ("" if unknown).
func Describe(id string) string { return registry[id].desc }

// Run executes the experiment with the given id.
func Run(id string, cfg Config) ([]*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return e.run(cfg)
}

// RunAndPrint executes an experiment and renders its tables to w.
func RunAndPrint(id string, cfg Config, w io.Writer) error {
	tables, err := Run(id, cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Print(w); err != nil {
			return err
		}
	}
	return nil
}

// RunAndWriteCSV executes an experiment and renders its tables as CSV.
func RunAndWriteCSV(id string, cfg Config, w io.Writer) error {
	tables, err := Run(id, cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}
