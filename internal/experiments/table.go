// Package experiments regenerates every figure of the paper's evaluation
// (§6, Figures 4–12) and the §4 conjecture checks. Each Fig* function
// returns printable tables whose rows are the figure's x-axis and whose
// columns are its plotted series; cmd/csbench and the root bench suite
// are thin wrappers around this package.
//
// Experiments accept a Config whose Scale shrinks the paper-size
// parameters proportionally (key-space, sparsity, measurement sweeps,
// trial counts) so the default run finishes on a laptop; Scale = 1
// reproduces the paper's dimensions.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one plotted line: Y over the shared X axis of its Table.
type Series struct {
	Name string
	Y    []float64
}

// Table is one (sub)figure: a shared X axis and one or more series.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// AddSeries appends a series, validating its length against X.
func (t *Table) AddSeries(name string, y []float64) error {
	if len(y) != len(t.X) {
		return fmt.Errorf("experiments: series %q has %d points, X has %d", name, len(y), len(t.X))
	}
	t.Series = append(t.Series, Series{Name: name, Y: y})
	return nil
}

// Print renders the table as aligned text: a header row, then one row
// per X value — the "same rows/series the paper reports".
func (t *Table) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
		return err
	}
	cols := make([]string, 0, len(t.Series)+1)
	cols = append(cols, t.XLabel)
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	rows := make([][]string, len(t.X))
	for i, x := range t.X {
		row := make([]string, len(cols))
		row[0] = formatNum(x)
		for j, s := range t.Series {
			row[j+1] = formatNum(s.Y[i])
		}
		rows[i] = row
	}
	for j, c := range cols {
		widths[j] = len(c)
		for _, row := range rows {
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
	}
	if t.YLabel != "" {
		if _, err := fmt.Fprintf(w, "   (y: %s)\n", t.YLabel); err != nil {
			return err
		}
	}
	printRow := func(cells []string) error {
		var b strings.Builder
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[j]-len(c)))
			b.WriteString(c)
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := printRow(cols); err != nil {
		return err
	}
	for _, row := range rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180 CSV: a comment line with the
// title, a header row, then one row per X value — for piping into
// plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	header := append([]string{t.XLabel}, make([]string, 0, len(t.Series))...)
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range t.X {
		row := make([]string, 0, len(t.Series)+1)
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range t.Series {
			row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Config tunes an experiment run.
type Config struct {
	// Scale shrinks paper-size parameters; 1 = paper scale, 0 defaults
	// to 0.1 (fast local run).
	Scale float64
	// Trials overrides the per-point repetition count (0 = the
	// experiment's scaled default).
	Trials int
	// Seed offsets all randomness, so independent runs can be averaged.
	Seed uint64
	// Solver restricts solver-aware experiments (the "solvers" sweep) to
	// one recovery solver by name; "" / "all" / "auto" run every solver.
	Solver string
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.1
	}
	if c.Scale > 1 {
		return 1
	}
	return c.Scale
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if def < 1 {
		def = 1
	}
	return def
}

// scaleInt shrinks a paper-scale integer parameter, with a floor.
func scaleInt(v int, s float64, min int) int {
	out := int(float64(v) * s)
	if out < min {
		out = min
	}
	return out
}
