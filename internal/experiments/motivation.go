package experiments

import (
	"math"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

// Fig1 reproduces the paper's motivating Figure 1 as numbers: local
// views of a distributed click-score aggregate are useless — each data
// center's top local outliers barely intersect the global ones, and the
// absolute-top-k keys are not the k-outliers (Figure 1(b)'s "Top K vs
// Absolute value top K vs Outlier K" distinction).
//
// The emitted table reports, per data center, the overlap between its
// local top-k outliers and the global truth; the final rows compare the
// global key sets chosen by the three ranking rules.
func Fig1(cfg Config) ([]*Table, error) {
	cl, _ := prodCluster(cfg, workload.CoreSearchClicks)
	const k = 10
	truth := cl.TrueTopOutliers(k)
	truthSet := map[int]bool{}
	for _, kv := range truth {
		truthSet[kv.Index] = true
	}

	// Per-DC local top-k overlap with the global truth.
	dcs := len(cl.Slices)
	xs := make([]float64, dcs)
	overlap := make([]float64, dcs)
	localMode := make([]float64, dcs)
	for dc := 0; dc < dcs; dc++ {
		xs[dc] = float64(dc)
		// A local analyst would rank around the local median (no exact
		// local mode exists — that is the point).
		med := medianOf(cl.Slices[dc])
		hits := 0
		for _, kv := range outlier.TopK(cl.Slices[dc], med, k) {
			if truthSet[kv.Index] {
				hits++
			}
		}
		overlap[dc] = float64(hits) / float64(k)
		localMode[dc] = med
	}
	t1 := &Table{
		Title:  "Figure 1: local views vs global truth (overlap of local top-" + itoa(k) + " outliers with global top-" + itoa(k) + ")",
		XLabel: "data-center",
		YLabel: "fraction / value",
		X:      xs,
	}
	if err := t1.AddSeries("overlap-with-global", overlap); err != nil {
		return nil, err
	}
	if err := t1.AddSeries("local-median", localMode); err != nil {
		return nil, err
	}

	// Figure 1(b): the three ranking rules disagree on the global data.
	rules := []struct {
		name string
		pick func() []outlier.KV
	}{
		{"outlier-k (|v−b|)", func() []outlier.KV { return outlier.TopK(cl.Global, cl.Mode, k) }},
		{"top-k (largest v)", func() []outlier.KV { return topByValue(cl.Global, k, false) }},
		{"absolute top-k (|v|)", func() []outlier.KV { return topByValue(cl.Global, k, true) }},
	}
	x2 := make([]float64, len(rules))
	agree := make([]float64, len(rules))
	for i, r := range rules {
		x2[i] = float64(i)
		hits := 0
		for _, kv := range r.pick() {
			if truthSet[kv.Index] {
				hits++
			}
		}
		agree[i] = float64(hits) / float64(k)
	}
	t2 := &Table{
		Title:  "Figure 1(b): ranking-rule agreement with the true outlier set (0=outlier-k, 1=top-k, 2=absolute top-k)",
		XLabel: "rule",
		YLabel: "fraction of true outliers found",
		X:      x2,
	}
	if err := t2.AddSeries("agreement", agree); err != nil {
		return nil, err
	}
	return []*Table{t1, t2}, nil
}

func medianOf(x linalg.Vector) float64 {
	c := x.Clone()
	sort.Float64s(c)
	return c[len(c)/2]
}

func topByValue(x linalg.Vector, k int, abs bool) []outlier.KV {
	kvs := make([]outlier.KV, len(x))
	for i, v := range x {
		kvs[i] = outlier.KV{Index: i, Value: v}
	}
	sort.Slice(kvs, func(a, b int) bool {
		va, vb := kvs[a].Value, kvs[b].Value
		if abs {
			va, vb = math.Abs(va), math.Abs(vb)
		}
		if va != vb {
			return va > vb
		}
		return kvs[a].Index < kvs[b].Index
	})
	return kvs[:k]
}

// Jitter is an extension experiment probing the paper's §2.1 caveat:
// real data only *concentrates around* the mode. It sweeps the bulk
// jitter (as a fraction of the mode) and reports BOMP's EK/EV for the
// top-k query plus the mode-estimate error, at fixed M.
func Jitter(cfg Config) ([]*Table, error) {
	const (
		n    = 800
		s    = 20
		k    = 5
		mode = 1800.0
		m    = 260
	)
	trials := cfg.trials(scaleInt(40, cfg.scale(), 3))
	fractions := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	xs := append([]float64(nil), fractions...)
	ek := make([]float64, len(fractions))
	ev := make([]float64, len(fractions))
	modeErr := make([]float64, len(fractions))
	for fi, frac := range fractions {
		var sumEK, sumEV, sumME float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(fi*1000+trial)
			x, _ := workload.NearMajorityDominated(n, s, mode, frac*mode, mode, 8*mode, seed)
			truth := outlier.TopK(x, mode, k)
			mat, err := sensing.NewDense(sensing.Params{M: m, N: n, Seed: seed ^ 0x55})
			if err != nil {
				return nil, err
			}
			// Budget covers the full support plus jitter slack: this
			// experiment isolates the effect of jitter, not of R.
			res, err := recovery.BOMP(mat, mat.Measure(x, nil), recovery.Options{
				MaxIterations: s + 15,
			})
			if err != nil {
				return nil, err
			}
			est := estimateOutliers(res, k)
			sumEK += outlier.ErrorOnKey(truth, est)
			sumEV += outlier.ErrorOnValue(truth, est)
			sumME += math.Abs(res.Mode-mode) / mode
		}
		ek[fi] = sumEK / float64(trials)
		ev[fi] = sumEV / float64(trials)
		modeErr[fi] = sumME / float64(trials)
	}
	t := &Table{
		Title:  "Extension: BOMP robustness to concentration jitter (bulk = mode ± jitter, N=800, s=20, M=260, k=5)",
		XLabel: "jitter/mode",
		YLabel: "avg error",
		X:      xs,
	}
	for _, sr := range []struct {
		name string
		y    []float64
	}{{"EK", ek}, {"EV", ev}, {"mode-rel-err", modeErr}} {
		if err := t.AddSeries(sr.name, sr.y); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
