package experiments

import (
	"fmt"
	"sync"

	"csoutlier/internal/keydict"
	"csoutlier/internal/linalg"
	"csoutlier/internal/mapreduce"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// mrDataset is one of the three input configurations of §6.2.
type mrDataset struct {
	name       string
	global     linalg.Vector
	dict       *keydict.Dictionary
	splits     []mapreduce.Split
	inputBytes int64
}

// buildMRDataset turns a global vector into MapReduce input splits.
// Each key's value is scattered across `touch` random splits as zero-sum
// shares (so mapper-local views differ from the global data), and every
// split is charged inputBytes/len(splits) of simulated file; MapCPUScale
// compensates real CPU for the difference between the sampled records
// and the simulated file size.
func buildMRDataset(name string, global linalg.Vector, nSplits, touch int, inputBytes int64, seed uint64) (*mrDataset, error) {
	n := len(global)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%08d", i)
	}
	dict := keydict.FromSorted(keys)

	r := xrand.New(seed)
	recs := make([][]mapreduce.Record, nSplits)
	if touch < 1 {
		touch = 1
	}
	if touch > nSplits {
		touch = nSplits
	}
	var totalRecords int64
	for i, v := range global {
		// Pick `touch` distinct splits and give them zero-sum-noised
		// shares of v.
		chosen := r.Perm(nSplits)[:touch]
		rem := v
		for t, sp := range chosen {
			share := v / float64(touch)
			if t < touch-1 {
				share += (r.Float64() - 0.5) * v / float64(touch)
				rem -= share
			} else {
				share = rem
			}
			recs[sp] = append(recs[sp], mapreduce.Record{Key: keys[i], Value: share})
			totalRecords++
		}
	}
	splits := make([]mapreduce.Split, nSplits)
	per := inputBytes / int64(nSplits)
	// One modeled map task per 256 MB HDFS block: a sampled split with
	// more bytes than a block stands for several physical mappers, so
	// shuffle volume scales with input size as on a real cluster.
	const blockSize = 256 << 20
	rep := int((per + blockSize/2) / blockSize) // nearest block count
	if rep < 1 {
		rep = 1
	}
	for i := range splits {
		splits[i] = mapreduce.Split{Records: recs[i], Bytes: per, Represents: rep}
	}
	_ = totalRecords
	return &mrDataset{
		name:       name,
		global:     global,
		dict:       dict,
		splits:     splits,
		inputBytes: inputBytes,
	}, nil
}

func (d *mrDataset) config(reducers int) mapreduce.Config {
	// Input-volume-dependent CPU is charged via the model's ParseRate
	// against each split's simulated Bytes; the measured CPU on top is
	// the job-specific extra work (measurement / recovery), which does
	// not scale with raw input size.
	return mapreduce.Config{
		Reducers: reducers,
		MapSlots: 20, // the paper's 10-node cluster, 2 map slots each
		Cost:     mapreduce.DefaultHadoopCostModel(),
	}
}

// fig10Datasets builds the paper's three §6.2 inputs at the configured
// scale: power-law α=1.5 with a 600 MB input ("small"), the same data
// charged as a 600 GB input ("big"), and the production click data
// (12 GB), mode shifted to 0 as the paper does for the top-k comparison.
func fig10Datasets(cfg Config) ([]*mrDataset, error) {
	sc := cfg.scale()
	// Floor of 20K keys: below that, the tuple volume the CS job saves
	// is too small to outweigh recovery overhead at any M — the paper's
	// effect needs a non-trivial key space (its N is 100K).
	n := scaleInt(100000, sc, 20000)

	// Production log blocks contain records for nearly every hot key, so
	// each mapper's partial aggregation covers most of the key space —
	// that is what makes the traditional job ship ~N tuples per mapper.
	pl := workload.PowerLaw(n, 1.5, cfg.Seed+201)
	small, err := buildMRDataset("alpha=1.5 small (600MB)", pl, 20, 15, 600e6, cfg.Seed+301)
	if err != nil {
		return nil, err
	}
	big, err := buildMRDataset("alpha=1.5 big (600GB)", pl, 60, 45, 600e9, cfg.Seed+302)
	if err != nil {
		return nil, err
	}
	// The production key space floors at ~one third of the real 10.4K
	// keys, for the same reason as the 20K floor above.
	prodScale := sc
	if prodScale < 0.3 {
		prodScale = 0.3
	}
	cl := workload.GenerateClickLogs(workload.ClickLogConfig{
		Query: workload.CoreSearchClicks, DataCenters: 8, ScaleN: prodScale, Seed: cfg.Seed + 401,
	})
	shifted := cl.Global.Clone()
	for i := range shifted {
		shifted[i] -= cl.Mode // §6.2: "change the data's mode to 0"
	}
	product, err := buildMRDataset("product (12GB)", shifted, 24, 18, 12e9, cfg.Seed+303)
	if err != nil {
		return nil, err
	}
	return []*mrDataset{small, big, product}, nil
}

// mrPoint is one timed run.
type mrPoint struct {
	endToEnd, mapT, reduceT float64 // seconds
}

func runCS(d *mrDataset, m, k int, seed uint64) (mrPoint, error) {
	p := sensing.Params{M: m, N: d.dict.N(), Seed: seed}
	// Allow a larger dense matrix than the library default (≈1.3 GB at
	// the cap): the column-regenerating fallback pays N·M Gaussian
	// regenerations per recovery iteration, which distorts the reducer
	// timing this experiment measures.
	job := &mapreduce.SketchJob{Dict: d.dict, Params: p, K: k, DenseLimit: 16e7}
	_, met, err := mapreduce.Run(job, d.splits, d.config(1))
	if err != nil {
		return mrPoint{}, err
	}
	return toPoint(met), nil
}

func runTraditional(d *mrDataset) (mrPoint, error) {
	job := &mapreduce.TopKJob{Dict: d.dict}
	// A single reducer, like the CS job: computing a *global* top-k
	// needs all partial sums on one node, and the paper's Figure 11
	// breakdown (reducer time dominating and growing with input) shows
	// exactly this funnel.
	_, met, err := mapreduce.Run(job, d.splits, d.config(1))
	if err != nil {
		return mrPoint{}, err
	}
	return toPoint(met), nil
}

func toPoint(met *mapreduce.Metrics) mrPoint {
	return mrPoint{
		endToEnd: met.EndToEnd.Seconds(),
		mapT:     met.MapTime.Seconds(),
		reduceT:  (met.ShuffleTime + met.ReduceTime).Seconds(),
	}
}

func mSweep(lo, hi, step int) []float64 {
	var ms []float64
	for m := lo; m <= hi; m += step {
		ms = append(ms, float64(m))
	}
	return ms
}

// fig1011Cache memoizes the shared Figure 10/11 sweep per Config, so
// requesting both figures (csbench `fig10 fig11`, or the two benches)
// does not run the expensive sweep twice.
var fig1011Cache struct {
	sync.Mutex
	valid    bool
	cfg      Config
	t10, t11 []*Table
}

// fig1011 runs the shared sweep behind Figures 10 and 11.
func fig1011(cfg Config) (fig10 []*Table, fig11 []*Table, err error) {
	fig1011Cache.Lock()
	defer fig1011Cache.Unlock()
	if fig1011Cache.valid && fig1011Cache.cfg == cfg {
		return fig1011Cache.t10, fig1011Cache.t11, nil
	}
	fig10, fig11, err = fig1011Compute(cfg)
	if err == nil {
		fig1011Cache.valid, fig1011Cache.cfg = true, cfg
		fig1011Cache.t10, fig1011Cache.t11 = fig10, fig11
	}
	return fig10, fig11, err
}

func fig1011Compute(cfg Config) (fig10 []*Table, fig11 []*Table, err error) {
	datasets, err := fig10Datasets(cfg)
	if err != nil {
		return nil, nil, err
	}
	const k = 5
	step := 1
	if cfg.scale() < 0.05 {
		step = 3 // coarse sweep for smoke-test scales
	}
	sweeps := [][]float64{
		mSweep(100, 1200, 100*step), // small input (paper Fig 10a)
		mSweep(200, 2000, 200*step), // big input (10b)
		mSweep(200, 2000, 200*step), // product (10c)
	}
	for di, d := range datasets {
		ms := sweeps[di]
		// Cap M at N/2 when running scaled-down key spaces.
		var capped []float64
		for _, m := range ms {
			if int(m) <= d.dict.N()/2 {
				capped = append(capped, m)
			}
		}
		if len(capped) == 0 {
			capped = []float64{float64(d.dict.N() / 2)}
		}
		ms = capped

		trad, err := runTraditional(d)
		if err != nil {
			return nil, nil, err
		}
		var e2eCS, mapCS, redCS []float64
		tradE2E := make([]float64, len(ms))
		tradMap := make([]float64, len(ms))
		tradRed := make([]float64, len(ms))
		for i, mf := range ms {
			pt, err := runCS(d, int(mf), k, cfg.Seed+uint64(mf))
			if err != nil {
				return nil, nil, err
			}
			e2eCS = append(e2eCS, pt.endToEnd)
			mapCS = append(mapCS, pt.mapT)
			redCS = append(redCS, pt.reduceT)
			tradE2E[i], tradMap[i], tradRed[i] = trad.endToEnd, trad.mapT, trad.reduceT
		}
		t10 := &Table{
			Title:  "Figure 10 (" + d.name + "): end-to-end time on Hadoop-model",
			XLabel: "M", YLabel: "seconds", X: ms,
		}
		if err := t10.AddSeries("BOMP", e2eCS); err != nil {
			return nil, nil, err
		}
		if err := t10.AddSeries("Traditional Top-K", tradE2E); err != nil {
			return nil, nil, err
		}
		fig10 = append(fig10, t10)

		t11m := &Table{
			Title:  "Figure 11 (" + d.name + "): map-phase time",
			XLabel: "M", YLabel: "seconds", X: ms,
		}
		if err := t11m.AddSeries("BOMP Mapper", mapCS); err != nil {
			return nil, nil, err
		}
		if err := t11m.AddSeries("Traditional Mapper", tradMap); err != nil {
			return nil, nil, err
		}
		t11r := &Table{
			Title:  "Figure 11 (" + d.name + "): reduce-phase time (incl. shuffle)",
			XLabel: "M", YLabel: "seconds", X: ms,
		}
		if err := t11r.AddSeries("BOMP Reducer", redCS); err != nil {
			return nil, nil, err
		}
		if err := t11r.AddSeries("Traditional Reducer", tradRed); err != nil {
			return nil, nil, err
		}
		fig11 = append(fig11, t11m, t11r)
	}
	return fig10, fig11, nil
}

// Fig10 reproduces Figure 10(a–c): end-to-end job time vs M for the CS
// job and the traditional top-k job on the three §6.2 inputs.
func Fig10(cfg Config) ([]*Table, error) {
	t10, _, err := fig1011(cfg)
	return t10, err
}

// Fig11 reproduces Figure 11(a–f): the per-phase (map, reduce)
// breakdown of the Figure-10 runs.
func Fig11(cfg Config) ([]*Table, error) {
	_, t11, err := fig1011(cfg)
	return t11, err
}

// Fig12 reproduces Figure 12(a–c): scalability in the key-space size N
// (paper: 100K → 5M at a fixed 10 GB input), comparing traditional
// top-k against BOMP with M = 50 and M = 100.
func Fig12(cfg Config) ([]*Table, error) {
	sc := cfg.scale()
	const k = 5
	nsPaper := []int{100000, 200000, 500000, 1000000, 5000000}
	var ns []float64
	for _, n := range nsPaper {
		ns = append(ns, float64(scaleInt(n, sc, 2000)))
	}
	titles := []string{"end-to-end", "map", "reduce (incl. shuffle)"}
	tables := make([]*Table, 3)
	for i, title := range titles {
		tables[i] = &Table{
			Title:  "Figure 12 (" + title + "): efficiency vs key-space size N, 10GB input",
			XLabel: "N", YLabel: "seconds", X: ns,
		}
	}
	series := map[string][]mrPoint{}
	order := []string{"Traditional topK", "BOMP M=50", "BOMP M=100"}
	for _, nf := range ns {
		n := int(nf)
		global := workload.PowerLaw(n, 1.5, cfg.Seed+501+uint64(n))
		d, err := buildMRDataset(fmt.Sprintf("N=%d", n), global, 20, 3, 10e9, cfg.Seed+601+uint64(n))
		if err != nil {
			return nil, err
		}
		trad, err := runTraditional(d)
		if err != nil {
			return nil, err
		}
		series["Traditional topK"] = append(series["Traditional topK"], trad)
		for _, m := range []int{50, 100} {
			mm := m
			if mm > n/2 {
				mm = n / 2
			}
			pt, err := runCS(d, mm, k, cfg.Seed+uint64(700+m))
			if err != nil {
				return nil, err
			}
			series[fmt.Sprintf("BOMP M=%d", m)] = append(series[fmt.Sprintf("BOMP M=%d", m)], pt)
		}
	}
	for _, name := range order {
		pts := series[name]
		e2e := make([]float64, len(pts))
		mp := make([]float64, len(pts))
		rd := make([]float64, len(pts))
		for i, pt := range pts {
			e2e[i], mp[i], rd[i] = pt.endToEnd, pt.mapT, pt.reduceT
		}
		if err := tables[0].AddSeries(name, e2e); err != nil {
			return nil, err
		}
		if err := tables[1].AddSeries(name, mp); err != nil {
			return nil, err
		}
		if err := tables[2].AddSeries(name, rd); err != nil {
			return nil, err
		}
	}
	return tables, nil
}
