package experiments

import (
	"context"
	"math"

	"csoutlier/internal/baseline"
	"csoutlier/internal/cluster"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

// prodCluster builds the production-like distributed workload once per
// experiment: the core-search click-score query over 8 data centers
// (§6.1.2), at the configured scale.
func prodCluster(cfg Config, q workload.QueryType) (*workload.ClickLogs, []cluster.NodeAPI) {
	cl := workload.GenerateClickLogs(workload.ClickLogConfig{
		Query:       q,
		DataCenters: 8,
		ScaleN:      cfg.scale(),
		Seed:        cfg.Seed + uint64(q) + 101,
	})
	nodes := make([]cluster.NodeAPI, len(cl.Slices))
	for i, s := range cl.Slices {
		nodes[i] = cluster.NewLocalNode("dc"+itoa(i), s)
	}
	return cl, nodes
}

// fig78 runs the shared sweep behind Figures 7 and 8: on production-like
// click data, error (on key or value) versus communication cost
// normalized by transmitting ALL, comparing BOMP (MAX/MIN/AVG over
// random matrices) against the K+δ baseline at the same budget.
func fig78(cfg Config, value bool) ([]*Table, error) {
	cl, nodes := prodCluster(cfg, workload.CoreSearchClicks)
	n := len(cl.Global)
	l := len(nodes)
	runs := cfg.trials(scaleInt(100, cfg.scale(), 5))
	ks := []int{5, 10, 20}
	allBytes := baseline.AllCostBytes(l, n)

	metric, title := "EK", "Figure 7"
	if value {
		metric, title = "EV", "Figure 8"
	}
	var tables []*Table
	for _, k := range ks {
		// Paper sweeps 1%–10% (to 15% for k=20).
		maxFrac := 0.10
		if k == 20 {
			maxFrac = 0.15
		}
		var fracs []float64
		for f := 0.01; f <= maxFrac+1e-9; f += 0.01 {
			fracs = append(fracs, f)
		}
		t := &Table{
			Title:  title + " (k=" + itoa(k) + "): error on " + map[bool]string{false: "key", true: "value"}[value] + " vs normalized communication, production data",
			XLabel: "cost/ALL",
			YLabel: metric,
			X:      fracs,
		}
		truth := cl.TrueTopOutliers(k)
		var kdE, maxE, minE, avgE []float64
		for _, frac := range fracs {
			budget := int64(frac * float64(allBytes))
			// --- K+δ at this budget. ---
			kcfg := baseline.KDeltaForBudget(budget, l, k, n, cfg.Seed+uint64(frac*1000))
			kres, err := baseline.KDelta(context.Background(), nodes, kcfg)
			if err != nil {
				return nil, err
			}
			kdE = append(kdE, errOf(truth, kres.Outliers, value))

			// --- BOMP: M chosen so L·M·8 = budget → M = frac·N. ---
			m := int(math.Round(frac * float64(n)))
			if m < 4 {
				m = 4
			}
			lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
			for run := 0; run < runs; run++ {
				p := sensing.Params{M: m, N: n, Seed: cfg.Seed + uint64(run)*104729 + uint64(m)}
				res, err := cluster.Detect(nodes, p, k, recovery.Options{})
				if err != nil {
					return nil, err
				}
				e := errOf(truth, res.Outliers, value)
				if e < lo {
					lo = e
				}
				if e > hi {
					hi = e
				}
				sum += e
			}
			minE = append(minE, lo)
			maxE = append(maxE, hi)
			avgE = append(avgE, sum/float64(runs))
		}
		for _, s := range []struct {
			name string
			y    []float64
		}{
			{"K+delta", kdE}, {"BOMP Avg", avgE}, {"BOMP Max", maxE}, {"BOMP Min", minE},
		} {
			if err := t.AddSeries(s.name, s.y); err != nil {
				return nil, err
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func errOf(truth, est []outlier.KV, value bool) float64 {
	if value {
		return outlier.ErrorOnValue(truth, est)
	}
	return outlier.ErrorOnKey(truth, est)
}

// Fig7 reproduces Figure 7(a–c): error on key vs normalized
// communication cost on production data, BOMP vs K+δ.
func Fig7(cfg Config) ([]*Table, error) { return fig78(cfg, false) }

// Fig8 reproduces Figure 8(a–c): error on value vs normalized
// communication cost on production data, BOMP vs K+δ.
func Fig8(cfg Config) ([]*Table, error) { return fig78(cfg, true) }

// Fig9 reproduces Figure 9(a–c): the mode estimate at every recovery
// iteration on the three production score data sets; the iteration
// where the mode stabilizes reveals each data set's sparsity
// (paper: s ≈ 300 / 650 / 610 at M = 500 / 800 / 800).
func Fig9(cfg Config) ([]*Table, error) {
	queries := []workload.QueryType{
		workload.CoreSearchClicks, workload.AdsClicks, workload.AnswerClicks,
	}
	var tables []*Table
	for _, q := range queries {
		cl, nodes := prodCluster(cfg, q)
		n := len(cl.Global)
		// The paper traces well past the stabilization point: run ~1.5·s
		// iterations (plus slack for small scaled s) with M comfortably
		// above that.
		iters := cl.S + cl.S/2 + 25
		m := 3*cl.S + 60
		if m > n {
			m = n
		}
		if iters > m {
			iters = m
		}
		p := sensing.Params{M: m, N: n, Seed: cfg.Seed + uint64(q)*31 + 7}
		y, _, err := cluster.CollectSketches(nodes, p)
		if err != nil {
			return nil, err
		}
		d, err := sensing.NewDense(p)
		if err != nil {
			return nil, err
		}
		res, err := recovery.BOMP(d, y, recovery.Options{
			MaxIterations: iters,
			TraceMode:     true,
			ResidualTol:   1e-13,
		})
		if err != nil {
			return nil, err
		}
		// Pad the trace to the full window when recovery converged early
		// (exact recovery zeroes the residual before the budget): the
		// paper's plots show the flat post-stabilization tail.
		xs := make([]float64, iters)
		trace := make([]float64, iters)
		for i := range xs {
			xs[i] = float64(i + 1)
			switch {
			case i < len(res.ModeTrace):
				trace[i] = res.ModeTrace[i]
			case len(res.ModeTrace) > 0:
				trace[i] = res.ModeTrace[len(res.ModeTrace)-1]
			}
		}
		t := &Table{
			Title:  "Figure 9 (" + q.String() + " click score): mode per recovery iteration (planted s=" + itoa(cl.S) + ", M=" + itoa(m) + ")",
			XLabel: "iteration",
			YLabel: "mode estimate",
			X:      xs,
		}
		if err := t.AddSeries("mode", trace); err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
