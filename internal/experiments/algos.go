package experiments

import (
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// Algos is an extension experiment beyond the paper's figures: it
// compares every recovery algorithm in the repository on the paper's
// core problem — k-outlier detection on majority-dominated data with an
// unknown non-zero mode — as the measurement budget grows.
//
// The bias-aware algorithms (BOMP, and the extended-dictionary variants
// of CoSaMP and IHT) converge to EK = 0; the classical sparse-at-zero
// algorithms (plain OMP, Basis Pursuit) stay wrong at any M because the
// data simply is not sparse at zero — which is exactly the gap the
// paper's §3.2 identifies ("all existing compressive sensing recovery
// algorithms are not applicable to this non-sparse data").
func Algos(cfg Config) ([]*Table, error) {
	const (
		n    = 400
		s    = 10
		k    = 5
		mode = 500.0
	)
	trials := cfg.trials(scaleInt(50, cfg.scale(), 3))
	var ms []float64
	for m := 40; m <= 200; m += 20 {
		ms = append(ms, float64(m))
	}
	t := &Table{
		Title:  "Extension: recovery algorithms on biased data (N=400, s=10, unknown mode 500), avg EK for k=5",
		XLabel: "M",
		YLabel: "EK (avg over trials)",
		X:      ms,
	}
	type algo struct {
		name string
		run  func(mat sensing.Matrix, y linalg.Vector) (*recovery.Result, error)
	}
	algos := []algo{
		{"BOMP", func(mat sensing.Matrix, y linalg.Vector) (*recovery.Result, error) {
			return recovery.BOMP(mat, y, recovery.Options{MaxIterations: s + 1})
		}},
		{"BiasedCoSaMP", func(mat sensing.Matrix, y linalg.Vector) (*recovery.Result, error) {
			return recovery.BiasedCoSaMP(mat, y, s, recovery.Options{})
		}},
		{"BiasedIHT", func(mat sensing.Matrix, y linalg.Vector) (*recovery.Result, error) {
			return recovery.BiasedIHT(mat, y, s, recovery.Options{})
		}},
		{"BiasedOLS", func(mat sensing.Matrix, y linalg.Vector) (*recovery.Result, error) {
			return recovery.BiasedOLS(mat, y, recovery.Options{MaxIterations: s + 1})
		}},
		{"OMP(no-bias)", func(mat sensing.Matrix, y linalg.Vector) (*recovery.Result, error) {
			return recovery.OMP(mat, y, recovery.Options{MaxIterations: s + 1})
		}},
		{"BP(no-bias)", func(mat sensing.Matrix, y linalg.Vector) (*recovery.Result, error) {
			return recovery.BP(mat, y)
		}},
	}
	rng := xrand.New(cfg.Seed + 0xa190)
	results := make([][]float64, len(algos))
	for i := range results {
		results[i] = make([]float64, len(ms))
	}
	for mi, mf := range ms {
		m := int(mf)
		sums := make([]float64, len(algos))
		for trial := 0; trial < trials; trial++ {
			seed := rng.Uint64()
			x, _ := workload.MajorityDominated(n, s, mode, 200, 2000, seed)
			truth := outlier.TopK(x, mode, k)
			mat, err := sensing.NewDense(sensing.Params{M: m, N: n, Seed: seed ^ 0x77})
			if err != nil {
				return nil, err
			}
			y := mat.Measure(x, nil)
			for ai, a := range algos {
				res, err := a.run(mat, y)
				if err != nil {
					// CoSaMP/IHT can hit degenerate instances at very
					// small M; count as full error rather than aborting
					// the sweep.
					sums[ai]++
					continue
				}
				est := make([]outlier.KV, len(res.Support))
				for i, j := range res.Support {
					est[i] = outlier.KV{Index: j, Value: res.X[j]}
				}
				sums[ai] += outlier.ErrorOnKey(truth, outlier.TopKOf(est, res.Mode, k))
			}
		}
		for ai := range algos {
			results[ai][mi] = sums[ai] / float64(trials)
		}
	}
	for ai, a := range algos {
		if err := t.AddSeries(a.name, results[ai]); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
