package experiments

import "testing"

func TestEnsemblesAllConverge(t *testing.T) {
	tables, err := Run("ensembles", Config{Scale: 0.05, Trials: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Series) != 4 {
		t.Fatalf("series = %d, want 4 ensembles", len(tb.Series))
	}
	last := len(tb.X) - 1
	for _, s := range tb.Series {
		if s.Y[last] > 0.14 {
			t.Fatalf("%s EK at max M = %v, want ≈0", s.Name, s.Y[last])
		}
		if s.Y[0] < s.Y[last] {
			t.Fatalf("%s error grew with M", s.Name)
		}
	}
}
