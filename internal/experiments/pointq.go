package experiments

import (
	"sort"
	"time"

	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// PointQ is an extension experiment for the recovery-free point-query
// path: the bias-aware count-sketch estimators (mode + per-key point
// estimate) on the paper's majority-dominated workload, swept over M.
// It measures what the streaming fast path trades: per-key accuracy
// (outlier recall at a fixed threshold, false positives on clean keys,
// relative value error on the hits) against sketch size and per-query
// wall time — the numbers behind the pr8 EXPERIMENTS table. Unlike the
// BOMP figures there is no recovery loop to time: a query costs depth
// hashed reads whatever N or k is.
func PointQ(cfg Config) ([]*Table, error) {
	const (
		n      = 2000
		s      = 12
		depth  = 7
		mode   = 1800.0
		minMag = 400.0
		maxMag = 4000.0
	)
	trials := cfg.trials(scaleInt(40, cfg.scale(), 3))
	var ms []float64
	for m := 112; m <= 896; m *= 2 {
		ms = append(ms, float64(m)) // depth 7: widths 16, 32, 64, 128
	}
	t := &Table{
		Title:  "Extension: recovery-free point queries, count-sketch depth 7 (N=2000, s=12, threshold=minMag/2)",
		XLabel: "M",
		YLabel: "per-M point-query quality and cost",
		X:      ms,
	}
	const threshold = minMag / 2
	recall := make([]float64, len(ms))
	falsePos := make([]float64, len(ms))
	valErr := make([]float64, len(ms))
	p50 := make([]float64, len(ms))
	p99 := make([]float64, len(ms))
	kb := make([]float64, len(ms))
	rng := xrand.New(cfg.Seed + 0x1f)
	for mi, mf := range ms {
		m := int(mf)
		kb[mi] = float64(8*m) / 1024
		var hits, planted, fps, clean int
		var errSum float64
		var errCnt int
		lats := make([]float64, 0, trials*n)
		for trial := 0; trial < trials; trial++ {
			seed := rng.Uint64()
			x, support := workload.MajorityDominated(n, s, mode, minMag, maxMag, seed)
			cs, err := sensing.NewCountSketch(sensing.Params{M: m, N: n, Seed: seed}, depth)
			if err != nil {
				return nil, err
			}
			y := cs.Measure(x, nil)
			est := cs.EstimateMode(y, nil)
			hot := make(map[int]bool, s)
			for _, j := range support {
				hot[j] = true
			}
			for j := 0; j < n; j++ {
				start := time.Now()
				v := cs.PointEstimate(y, j, est)
				lats = append(lats, float64(time.Since(start).Nanoseconds()))
				dev := v - est
				if dev < 0 {
					dev = -dev
				}
				if hot[j] {
					planted++
					if dev >= threshold {
						hits++
						e := (v - x[j]) / x[j]
						if e < 0 {
							e = -e
						}
						errSum += e
						errCnt++
					}
				} else {
					clean++
					if dev >= threshold {
						fps++
					}
				}
			}
		}
		recall[mi] = float64(hits) / float64(planted)
		falsePos[mi] = float64(fps) / float64(clean)
		if errCnt > 0 {
			valErr[mi] = errSum / float64(errCnt)
		}
		sort.Float64s(lats)
		p50[mi] = lats[len(lats)/2]
		p99[mi] = lats[len(lats)*99/100]
	}
	for _, sr := range []struct {
		name string
		y    []float64
	}{
		{"outlier recall", recall},
		{"clean false-pos rate", falsePos},
		{"rel value err on hits", valErr},
		{"query p50 ns", p50},
		{"query p99 ns", p99},
		{"sketch KiB", kb},
	} {
		if err := t.AddSeries(sr.name, sr.y); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
