package experiments

import "testing"

func TestFig1LocalViewsDiffer(t *testing.T) {
	tables, err := Run("fig1", Config{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig1 tables = %d", len(tables))
	}
	// Local top-k outliers must overlap poorly with the global truth —
	// the paper's challenge 1 ("local outliers and mode are often very
	// different from the global ones").
	var sum float64
	overlap := tables[0].Series[0].Y
	for _, v := range overlap {
		if v < 0 || v > 1 {
			t.Fatalf("overlap out of range: %v", v)
		}
		sum += v
	}
	if avg := sum / float64(len(overlap)); avg > 0.5 {
		t.Fatalf("local views agree too well with global truth (avg overlap %v): noise regime wrong", avg)
	}
	// The outlier-k rule matches the truth by construction; the plain
	// top-k rule must miss the negative outliers.
	agree := tables[1].Series[0].Y
	if agree[0] != 1 {
		t.Fatalf("outlier-k rule agreement = %v, want 1", agree[0])
	}
	if agree[1] >= agree[0] {
		t.Fatalf("plain top-k (%v) should not match the outlier set as well as outlier-k (%v)", agree[1], agree[0])
	}
}

func TestJitterDegradesGracefully(t *testing.T) {
	tables, err := Run("jitter", Config{Scale: 0.05, Trials: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var ek, modeErr []float64
	for _, s := range tb.Series {
		switch s.Name {
		case "EK":
			ek = s.Y
		case "mode-rel-err":
			modeErr = s.Y
		}
	}
	if ek == nil || modeErr == nil {
		t.Fatal("missing series")
	}
	// Zero jitter = the exact-sparse regime: keys exact, mode exact.
	if ek[0] != 0 {
		t.Fatalf("EK at zero jitter = %v", ek[0])
	}
	if modeErr[0] > 1e-6 {
		t.Fatalf("mode error at zero jitter = %v", modeErr[0])
	}
	// Small jitter (≤2% of mode) must stay accurate on keys.
	for i, frac := range tb.X {
		if frac <= 0.02 && ek[i] > 0.21 {
			t.Fatalf("EK at jitter %v = %v: not robust", frac, ek[i])
		}
	}
	// The mode estimate degrades with jitter but stays within a few
	// jitter standard deviations.
	last := len(tb.X) - 1
	if modeErr[last] > 3*tb.X[last] {
		t.Fatalf("mode error %v at jitter %v: blew past the jitter scale", modeErr[last], tb.X[last])
	}
}
