package experiments

import (
	"math"

	"csoutlier/internal/theory"
)

// Conj1 reproduces the §4.1 numerical verification of the
// Near-Isometric Transformation conjecture: for each (M, s) the table
// reports the observed failure rate of ‖Φ∗ᵀr‖₂ ≥ 0.5‖r‖₂, the worst
// observed ratio, and the implied lower bound on the constant c (the
// paper observes c ≈ 0.4 at s = 2 and wide margins for M, s ≥ 10).
func Conj1(cfg Config) ([]*Table, error) {
	trials := cfg.trials(scaleInt(20000, cfg.scale(), 500))
	type point struct{ m, s int }
	points := []point{
		{10, 2}, {20, 2}, {40, 2}, {80, 2}, // the paper's stress case
		{20, 10}, {50, 10}, {100, 10}, // "M and s larger than 10"
		{200, 50},
	}
	xs := make([]float64, len(points))
	fail := make([]float64, len(points))
	minRatio := make([]float64, len(points))
	cBound := make([]float64, len(points))
	sCol := make([]float64, len(points))
	for i, pt := range points {
		rep := theory.VerifyConjecture1(pt.m, pt.s, trials, cfg.Seed+uint64(i)*13)
		xs[i] = float64(pt.m)
		sCol[i] = float64(pt.s)
		fail[i] = float64(rep.Failures) / float64(rep.Trials)
		minRatio[i] = rep.MinRatio
		cBound[i] = rep.CLowerBound
	}
	t := &Table{
		Title:  "Conjecture 1 (§4.1): near-isometric transformation, P(‖Φ∗ᵀr‖ ≥ 0.5‖r‖)",
		XLabel: "M",
		YLabel: "per-(M,s) statistics over random trials",
		X:      xs,
	}
	for _, s := range []struct {
		name string
		y    []float64
	}{
		{"s", sCol}, {"failure-rate", fail}, {"min-ratio", minRatio}, {"c-lower-bound", cBound},
	} {
		if err := t.AddSeries(s.name, s.y); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}

// Conj2 reproduces the §4.2 numerical verification of the
// Near-Independent Inner Product conjecture with a = 1.1 and the BOMP
// worst-case dependence ζ = 1/√N.
func Conj2(cfg Config) ([]*Table, error) {
	trials := cfg.trials(scaleInt(50000, cfg.scale(), 2000))
	const m = 200
	zeta := 1 / math.Sqrt(10000)
	eps := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.5}
	rep := theory.VerifyConjecture2(m, trials, zeta, eps, cfg.Seed+99)
	t := &Table{
		Title:  "Conjecture 2 (§4.2): near-independent inner product, a = 1.1, ζ = 1/√10000, M = 200",
		XLabel: "epsilon",
		YLabel: "P(|<x,y'>| <= eps)",
		X:      eps,
	}
	obs := make([]float64, len(rep.Points))
	conj := make([]float64, len(rep.Points))
	holds := make([]float64, len(rep.Points))
	for i, p := range rep.Points {
		obs[i] = p.Observed
		conj[i] = p.Conjectured
		if p.Holds {
			holds[i] = 1
		}
	}
	for _, s := range []struct {
		name string
		y    []float64
	}{
		{"observed", obs}, {"conjectured-bound", conj}, {"holds", holds},
	} {
		if err := t.AddSeries(s.name, s.y); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
