package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests; every
// experiment must complete in a few seconds at this scale.
func tiny() Config { return Config{Scale: 0.02, Trials: 3, Seed: 42} }

func run(t *testing.T, id string) []*Table {
	t.Helper()
	tables, err := Run(id, tiny())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tb := range tables {
		if len(tb.X) == 0 {
			t.Fatalf("%s: empty X in %q", id, tb.Title)
		}
		for _, s := range tb.Series {
			if len(s.Y) != len(tb.X) {
				t.Fatalf("%s: ragged series %q", id, s.Name)
			}
		}
	}
	return tables
}

func TestFig4aShape(t *testing.T) {
	tables := run(t, "fig4a")
	tb := tables[0]
	if len(tb.Series) != 6 {
		t.Fatalf("fig4a series = %d, want 6 (2 algorithms × 3 sparsities)", len(tb.Series))
	}
	// Probabilities in [0,1]; at the largest M, the easiest case (first
	// BOMP series, smallest s) should recover almost always.
	for _, s := range tb.Series {
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("probability out of range in %q: %v", s.Name, y)
			}
		}
	}
	first := tb.Series[0]
	if first.Y[len(first.Y)-1] < 0.9 {
		t.Fatalf("BOMP smallest-s at largest M recovered only %v", first.Y[len(first.Y)-1])
	}
	// Phase transition: recovery probability should (weakly) grow in M.
	if first.Y[0] > first.Y[len(first.Y)-1] {
		t.Fatalf("recovery probability decreasing in M: %v", first.Y)
	}
}

func TestFig4bStabilizes(t *testing.T) {
	tables := run(t, "fig4b")
	for _, s := range tables[0].Series {
		last := s.Y[len(s.Y)-1]
		if last < 4500 || last > 5500 {
			t.Fatalf("series %q final mode %v, want ≈5000", s.Name, last)
		}
	}
}

func TestFig5ErrorsDecreaseWithM(t *testing.T) {
	tables := run(t, "fig5")
	if len(tables) != 3 {
		t.Fatalf("fig5 tables = %d, want 3 (k=5,10,20)", len(tables))
	}
	for _, tb := range tables {
		for _, s := range tb.Series {
			if !strings.Contains(s.Name, "Avg") {
				continue
			}
			first, last := s.Y[0], s.Y[len(s.Y)-1]
			if last > first+0.15 {
				t.Fatalf("%s %q: error grew with M (%v -> %v)", tb.Title, s.Name, first, last)
			}
			for _, y := range s.Y {
				if y < 0 || y > 1 {
					t.Fatalf("EK out of range: %v", y)
				}
			}
		}
	}
}

func TestFig6Runs(t *testing.T) {
	tables := run(t, "fig6")
	if len(tables) != 3 {
		t.Fatalf("fig6 tables = %d", len(tables))
	}
	for _, tb := range tables {
		for _, s := range tb.Series {
			for _, y := range s.Y {
				if y < 0 {
					t.Fatalf("negative EV in %q", s.Name)
				}
			}
		}
	}
}

func TestFig7BOMPBeatsKDelta(t *testing.T) {
	// fig7 needs a slightly larger key space than the other smoke tests:
	// BOMP's budgeted M is a fraction of N, and at N ≈ 200 the top of
	// the sweep leaves too few measurements to beat sampling.
	tables, err := Run("fig7", Config{Scale: 0.06, Trials: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("fig7 tables = %d", len(tables))
	}
	// Paper's headline: at the top of the sweep, BOMP's average EK is
	// far below K+δ's.
	tb := tables[0] // k=5
	var kd, avg []float64
	for _, s := range tb.Series {
		switch s.Name {
		case "K+delta":
			kd = s.Y
		case "BOMP Avg":
			avg = s.Y
		}
	}
	if kd == nil || avg == nil {
		t.Fatal("missing series")
	}
	last := len(avg) - 1
	if avg[last] >= kd[last] {
		t.Fatalf("BOMP avg EK %v not better than K+delta %v at max budget", avg[last], kd[last])
	}
}

func TestFig8Runs(t *testing.T) {
	run(t, "fig8")
}

func TestFig9TracesStabilize(t *testing.T) {
	tables := run(t, "fig9")
	if len(tables) != 3 {
		t.Fatalf("fig9 tables = %d, want 3 query types", len(tables))
	}
	for _, tb := range tables {
		tr := tb.Series[0].Y
		last := tr[len(tr)-1]
		// Production modes are in the hundreds-to-thousands range; the
		// trace must settle (last two values nearly equal).
		prev := tr[len(tr)-2]
		if last == 0 || abs(last-prev) > 0.02*abs(last) {
			t.Fatalf("%s: mode not settled (%v -> %v)", tb.Title, prev, last)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig10CSWinsAtSmallM(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock comparison: race instrumentation skews the two sides differently")
	}
	tables := run(t, "fig10")
	if len(tables) != 3 {
		t.Fatalf("fig10 tables = %d", len(tables))
	}
	for _, tb := range tables {
		var cs, trad []float64
		for _, s := range tb.Series {
			switch s.Name {
			case "BOMP":
				cs = s.Y
			case "Traditional Top-K":
				trad = s.Y
			}
		}
		if cs == nil || trad == nil {
			t.Fatalf("%s: missing series", tb.Title)
		}
		if cs[0] >= trad[0] {
			t.Fatalf("%s: BOMP %vs not faster than traditional %vs at smallest M", tb.Title, cs[0], trad[0])
		}
		for _, y := range append(append([]float64{}, cs...), trad...) {
			if y <= 0 {
				t.Fatalf("%s: non-positive simulated time %v", tb.Title, y)
			}
		}
	}
}

func TestFig11Runs(t *testing.T) {
	tables := run(t, "fig11")
	if len(tables) != 6 {
		t.Fatalf("fig11 tables = %d, want 6 (map+reduce × 3 inputs)", len(tables))
	}
}

func TestFig12TraditionalDegradesWithN(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock comparison: race instrumentation skews the two sides differently")
	}
	tables := run(t, "fig12")
	if len(tables) != 3 {
		t.Fatalf("fig12 tables = %d", len(tables))
	}
	e2e := tables[0]
	var trad, bomp50 []float64
	for _, s := range e2e.Series {
		switch s.Name {
		case "Traditional topK":
			trad = s.Y
		case "BOMP M=50":
			bomp50 = s.Y
		}
	}
	if trad == nil || bomp50 == nil {
		t.Fatal("missing series")
	}
	// Paper Figure 12a: traditional degrades with N much faster than
	// BOMP, and loses clearly at the top of the sweep. (At the very
	// small N of a scaled run the two are within noise of each other,
	// so per-point dominance is only asserted at the largest N.)
	last := len(trad) - 1
	if bomp50[last] >= trad[last] {
		t.Fatalf("N=%v: BOMP %vs not faster than traditional %vs", e2e.X[last], bomp50[last], trad[last])
	}
	if growT, growB := trad[last]-trad[0], bomp50[last]-bomp50[0]; growT <= growB {
		t.Fatalf("traditional growth %v not worse than BOMP growth %v", growT, growB)
	}
}

func TestConjectureExperiments(t *testing.T) {
	c1 := run(t, "conj1")
	for _, s := range c1[0].Series {
		if s.Name == "failure-rate" {
			for i, y := range s.Y {
				if y > 0.02 {
					t.Fatalf("conjecture-1 failure rate %v at point %d", y, i)
				}
			}
		}
	}
	c2 := run(t, "conj2")
	for _, s := range c2[0].Series {
		if s.Name == "holds" {
			for i, y := range s.Y {
				if y != 1 {
					t.Fatalf("conjecture-2 bound violated at point %d", i)
				}
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("registry has %d experiments, want 18", len(ids))
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Fatalf("no description for %s", id)
		}
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunAndPrint(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAndPrint("conj2", tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Conjecture 2") || !strings.Contains(out, "epsilon") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestTableAddSeriesValidates(t *testing.T) {
	tb := &Table{X: []float64{1, 2}}
	if err := tb.AddSeries("bad", []float64{1}); err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != 0.1 {
		t.Fatalf("default scale = %v", c.scale())
	}
	if (Config{Scale: 5}).scale() != 1 {
		t.Fatal("scale not clamped to 1")
	}
	if c.trials(7) != 7 {
		t.Fatal("default trials ignored")
	}
	if (Config{Trials: 3}).trials(7) != 3 {
		t.Fatal("trial override ignored")
	}
	if scaleInt(100, 0.001, 5) != 5 {
		t.Fatal("scaleInt floor broken")
	}
}
