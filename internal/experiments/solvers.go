package experiments

import (
	"fmt"
	"time"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/recovery"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// Solvers is the multi-solver sweep behind the adaptive recovery
// backend: every solver answers the same biased k-outlier instances
// across (s, M) cells, reporting both accuracy (EK) and wall-clock per
// solve. The cells bracket the selection policy's regimes — small s
// where BOMP's greedy growth is unbeatable, and large s with
// measurement headroom where first-order AIHT overtakes the QR-
// augmented solvers. Config.Solver (the csbench -solver flag) restricts
// the sweep to one solver.
func Solvers(cfg Config) ([]*Table, error) {
	const (
		n    = 1200
		mode = 500.0
	)
	trials := cfg.trials(scaleInt(16, cfg.scale(), 2))
	type solver struct {
		name string
		run  func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error)
	}
	all := []solver{
		{"bomp", func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error) {
			return recovery.BOMP(mat, y, recovery.Options{MaxIterations: s + 1})
		}},
		{"ols", func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error) {
			return recovery.BiasedOLS(mat, y, recovery.Options{MaxIterations: s + 1})
		}},
		{"cosamp", func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error) {
			return recovery.BiasedCoSaMP(mat, y, s, recovery.Options{})
		}},
		{"iht", func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error) {
			return recovery.BiasedIHT(mat, y, s, recovery.Options{})
		}},
		{"aiht", func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error) {
			return recovery.BiasedAIHT(mat, y, s, recovery.Options{})
		}},
		{"bp", func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error) {
			return recovery.BiasedBP(mat, y)
		}},
		{"dantzig", func(mat sensing.Matrix, y linalg.Vector, s int) (*recovery.Result, error) {
			return recovery.BiasedDantzig(mat, y, s, recovery.Options{})
		}},
	}
	solvers := all
	if cfg.Solver != "" && cfg.Solver != "all" && cfg.Solver != "auto" {
		solvers = nil
		for _, sv := range all {
			if sv.name == cfg.Solver {
				solvers = []solver{sv}
			}
		}
		if solvers == nil {
			return nil, fmt.Errorf("experiments: unknown solver %q", cfg.Solver)
		}
	}

	rng := xrand.New(cfg.Seed + 0x501e)
	var tables []*Table
	for _, s := range []int{4, 16, 64} {
		ratios := []float64{6, 8, 12}
		ms := make([]float64, len(ratios))
		for i, r := range ratios {
			ms[i] = float64(int(r) * s)
		}
		acc := &Table{
			Title:  fmt.Sprintf("Solver sweep: EK per solver, N=%d, s=%d, unknown mode %g, k=s", n, s, mode),
			XLabel: "M",
			YLabel: "EK (avg over trials)",
			X:      ms,
		}
		tim := &Table{
			Title:  fmt.Sprintf("Solver sweep: ns per solve, N=%d, s=%d", n, s),
			XLabel: "M",
			YLabel: "ns/op (avg over trials)",
			X:      ms,
		}
		ek := make([][]float64, len(solvers))
		ns := make([][]float64, len(solvers))
		for i := range solvers {
			ek[i] = make([]float64, len(ms))
			ns[i] = make([]float64, len(ms))
		}
		for mi, mf := range ms {
			m := int(mf)
			for trial := 0; trial < trials; trial++ {
				seed := rng.Uint64()
				x, _ := workload.MajorityDominated(n, s, mode, 200, 2000, seed)
				truth := outlier.TopK(x, mode, s)
				mat, err := sensing.NewDense(sensing.Params{M: m, N: n, Seed: seed ^ 0x77})
				if err != nil {
					return nil, err
				}
				y := mat.Measure(x, nil)
				for si, sv := range solvers {
					start := time.Now()
					res, err := sv.run(mat, y, s)
					ns[si][mi] += float64(time.Since(start).Nanoseconds())
					if err != nil {
						ek[si][mi] += float64(s)
						continue
					}
					est := make([]outlier.KV, len(res.Support))
					for i, j := range res.Support {
						est[i] = outlier.KV{Index: j, Value: res.X[j]}
					}
					ek[si][mi] += outlier.ErrorOnKey(truth, outlier.TopKOf(est, res.Mode, s))
				}
			}
			for si := range solvers {
				ek[si][mi] /= float64(trials)
				ns[si][mi] /= float64(trials)
			}
		}
		for si, sv := range solvers {
			if err := acc.AddSeries(sv.name, ek[si]); err != nil {
				return nil, err
			}
			if err := tim.AddSeries(sv.name, ns[si]); err != nil {
				return nil, err
			}
		}
		tables = append(tables, acc, tim)
	}
	return tables, nil
}
