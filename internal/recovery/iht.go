package recovery

import (
	"fmt"
	"math"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// IHT implements Iterative Hard Thresholding (Blumensath & Davies 2009)
// for sparse-at-zero recovery: gradient steps on ‖y − Φx‖² followed by
// hard thresholding to the s largest coefficients,
//
//	x_{t+1} = H_s( x_t + μ·Φᵀ(y − Φ·x_t) ).
//
// IHT completes the repository's recovery spectrum: OMP/BOMP (greedy,
// what the paper deploys), CoSaMP (support-correcting), BP (convex
// relaxation), IHT (first-order / cheapest per iteration — no
// least-squares solve at all, only matrix-vector products, which makes
// it the natural candidate for the GPU offload the paper leaves as
// future work). The step size μ uses the normalized-IHT rule: the
// Gaussian ensemble's columns are unit-norm in expectation, so μ = 1 is
// stable for M in the usual recovery regime; a backtracking halving
// guards the rest.
func IHT(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return iht(m, y, s, opt, false)
}

// BiasedIHT runs IHT over BOMP's extended dictionary [φ₀, Φ₀], so data
// concentrated around an unknown bias is recovered the same way BOMP
// does it, with the bias occupying one sparse slot.
func BiasedIHT(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return iht(m, y, s, opt, true)
}

func iht(m sensing.Matrix, y linalg.Vector, s int, opt Options, biased bool) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	if s < 1 {
		return nil, fmt.Errorf("recovery: IHT needs target sparsity >= 1, got %d", s)
	}
	var d dictionary
	size := p.N
	if biased {
		d = &biasedDict{m: m, phi0: m.ExtensionColumn(nil)}
		s++ // bias slot
		size = p.N + 1
	} else {
		d = &plainDict{m: m}
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 200
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		return &Result{X: make(linalg.Vector, p.N)}, nil
	}
	tol := opt.residualTol() * yNorm

	x := make(linalg.Vector, size) // current sparse iterate (dense buffer)
	residual := y.Clone()          // y − Φx
	grad := make(linalg.Vector, size)
	prox := make(linalg.Vector, size)
	colBuf := make(linalg.Vector, p.M)
	prevNorm := math.Inf(1)
	iters := 0
	for t := 0; t < maxIter; t++ {
		iters = t + 1
		grad = d.correlate(residual, grad)
		mu := 1.0
		norm := prevNorm
		// Backtracking: halve μ until the step does not increase ‖r‖.
		for attempt := 0; attempt < 8; attempt++ {
			for i := range prox {
				prox[i] = x[i] + mu*grad[i]
			}
			hardThreshold(prox, s)
			candRes := applyResidual(d, y, prox, colBuf)
			if cn := candRes.Norm2(); cn <= prevNorm || attempt == 7 {
				copy(x, prox)
				residual = candRes
				norm = cn
				break
			}
			mu /= 2
		}
		if norm <= tol {
			break
		}
		if !opt.DisableEarlyStop && norm >= prevNorm*(1-opt.stallRelTol()) && t > 0 {
			break
		}
		prevNorm = norm
	}

	// Debias: least squares on the final support (standard IHT polish),
	// so exact-sparse instances recover exactly.
	support := nonzeroIndices(x)
	qr := linalg.NewIncrementalQR(p.M)
	qr.SetTarget(y)
	var kept []int
	for _, j := range support {
		colBuf = d.col(j, colBuf)
		if _, err := qr.Append(colBuf); err != nil {
			continue
		}
		kept = append(kept, j)
	}
	res := &Result{Iterations: iters}
	if len(kept) > 0 {
		z, err := qr.Solve()
		if err != nil {
			return nil, err
		}
		if biased {
			for i, j := range kept {
				if j == 0 {
					res.Mode = z[i] / math.Sqrt(float64(p.N))
				} else {
					res.Support = append(res.Support, j-1)
					res.Coef = append(res.Coef, z[i])
				}
			}
		} else {
			res.Support = append(res.Support, kept...)
			res.Coef = append(res.Coef, z...)
		}
	}
	res.X = assemble(p.N, res.Mode, res.Support, res.Coef)
	return res, nil
}

// hardThreshold zeroes all but the s largest-magnitude entries in place.
func hardThreshold(v linalg.Vector, s int) {
	if s >= len(v) {
		return
	}
	idx := topAbsIndices(v, s)
	keep := make(map[int]bool, s)
	for _, j := range idx {
		keep[j] = true
	}
	for i := range v {
		if !keep[i] {
			v[i] = 0
		}
	}
}

// applyResidual computes y − Φ·x for a sparse iterate x by accumulating
// columns (cost: nnz(x)·M).
func applyResidual(d dictionary, y, x, colBuf linalg.Vector) linalg.Vector {
	r := y.Clone()
	for j, v := range x {
		if v == 0 {
			continue
		}
		colBuf = d.col(j, colBuf)
		r.AddScaled(-v, colBuf)
	}
	return r
}

func nonzeroIndices(v linalg.Vector) []int {
	var out []int
	for i, x := range v {
		if x != 0 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
