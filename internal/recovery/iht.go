package recovery

import (
	"fmt"
	"math"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// IHT implements Iterative Hard Thresholding (Blumensath & Davies 2009)
// for sparse-at-zero recovery: gradient steps on ‖y − Φx‖² followed by
// hard thresholding to the s largest coefficients,
//
//	x_{t+1} = H_s( x_t + μ·Φᵀ(y − Φ·x_t) ).
//
// IHT completes the repository's recovery spectrum: OMP/BOMP (greedy,
// what the paper deploys), CoSaMP (support-correcting), BP (convex
// relaxation), IHT (first-order / cheapest per iteration — no
// least-squares solve at all, only matrix-vector products, which makes
// it the natural candidate for the GPU offload the paper leaves as
// future work). The step size μ uses the normalized-IHT rule: the
// Gaussian ensemble's columns are unit-norm in expectation, so μ = 1 is
// stable for M in the usual recovery regime; a backtracking halving
// guards the rest.
func IHT(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return iht(m, y, s, opt, false)
}

// BiasedIHT runs IHT over BOMP's extended dictionary [φ₀, Φ₀], so data
// concentrated around an unknown bias is recovered the same way BOMP
// does it, with the bias occupying one sparse slot.
func BiasedIHT(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return iht(m, y, s, opt, true)
}

func iht(m sensing.Matrix, y linalg.Vector, s int, opt Options, biased bool) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	if s < 1 {
		return nil, fmt.Errorf("recovery: IHT needs target sparsity >= 1, got %d", s)
	}
	var d dictionary
	size := p.N
	if biased {
		d = &biasedDict{m: m, phi0: m.ExtensionColumn(nil)}
		s++ // bias slot
		size = p.N + 1
	} else {
		d = &plainDict{m: m}
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 200
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		return &Result{X: make(linalg.Vector, p.N)}, nil
	}
	tol := opt.residualTol() * yNorm

	x := make(linalg.Vector, size) // current sparse iterate (dense buffer)
	residual := y.Clone()          // y − Φx
	grad := make(linalg.Vector, size)
	prox := make(linalg.Vector, size)
	colBuf := make(linalg.Vector, p.M)
	prevNorm := math.Inf(1)
	iters := 0
	stalled := false
	var trace []float64
	for t := 0; t < maxIter; t++ {
		iters = t + 1
		grad = d.correlate(residual, grad)
		mu := 1.0
		norm := prevNorm
		// Backtracking: halve μ until the step does not increase ‖r‖.
		// If no μ in the range does, reject the step entirely and keep
		// the previous iterate — accepting a residual-increasing iterate
		// here used to let the loop ping-pong between two bad supports
		// for the whole budget under DisableEarlyStop.
		accepted := false
		for attempt := 0; attempt < 8; attempt++ {
			for i := range prox {
				prox[i] = x[i] + mu*grad[i]
			}
			hardThreshold(prox, s)
			candRes := applyResidual(d, y, prox, colBuf)
			if cn := candRes.Norm2(); cn <= prevNorm {
				copy(x, prox)
				residual = candRes
				norm = cn
				accepted = true
				break
			}
			mu /= 2
		}
		if opt.TraceResidual {
			if accepted {
				trace = append(trace, norm)
			} else {
				trace = append(trace, prevNorm)
			}
		}
		if !accepted {
			stalled = true
			break
		}
		if norm <= tol {
			break
		}
		if !opt.DisableEarlyStop && norm >= prevNorm*(1-opt.stallRelTol()) && t > 0 {
			stalled = true
			break
		}
		prevNorm = norm
	}

	// Debias: least squares on the final support (standard IHT polish)
	// with coefficient pruning, so exact-sparse instances recover exactly
	// and spare sparsity slots don't surface as phantom outliers.
	kept, coef, resNorm, err := debiasPruned(d, y, yNorm, nonzeroIndices(x), p.M)
	if err != nil {
		return nil, err
	}
	res := extendedResult(p.N, kept, coef, biased)
	res.Iterations = iters
	res.StoppedEarly = stalled
	res.ResidualTrace = trace
	res.Residual = resNorm
	return res, nil
}

// hardThreshold zeroes all but the s largest-magnitude entries in place.
func hardThreshold(v linalg.Vector, s int) {
	if s >= len(v) {
		return
	}
	// Same keep-set as topAbsIndices(v, s) — strictly-above the s-th
	// largest magnitude plus lowest-index ties — zeroed in place without
	// the index sort or a map (this runs on every IHT/AIHT step
	// proposal, including each backtracking halving).
	work := make([]float64, len(v))
	for i, x := range v {
		work[i] = math.Abs(x)
	}
	th := kthLargest(work, s)
	above := 0
	for _, x := range v {
		if math.Abs(x) > th {
			above++
		}
	}
	rem := s - above
	for i, x := range v {
		a := math.Abs(x)
		if a > th {
			continue
		}
		if a == th && rem > 0 {
			rem--
			continue
		}
		v[i] = 0
	}
}

// applyResidual computes y − Φ·x for a sparse iterate x — one fused
// sparse measurement when the dictionary supports it (colBuf doubles as
// the image buffer), column accumulation otherwise (cost: nnz(x)·M).
func applyResidual(d dictionary, y, x, colBuf linalg.Vector) linalg.Vector {
	if si, ok := d.(sparseImager); ok {
		var idx []int
		for j, v := range x {
			if v != 0 {
				idx = append(idx, j)
			}
		}
		vals := make([]float64, len(idx))
		for k, j := range idx {
			vals[k] = x[j]
		}
		img := si.image(idx, vals, colBuf)
		r := y.Clone()
		r.AddScaled(-1, img)
		return r
	}
	r := y.Clone()
	for j, v := range x {
		if v == 0 {
			continue
		}
		colBuf = d.col(j, colBuf)
		r.AddScaled(-v, colBuf)
	}
	return r
}

func nonzeroIndices(v linalg.Vector) []int {
	var out []int
	for i, x := range v {
		if x != 0 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
