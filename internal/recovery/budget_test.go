package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/outlier"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// TestIterationBudgetSweep validates the paper's §5 tuning claim that
// R = f(k) ∈ [2k, 5k] "is good enough for both recovery accuracy and
// efficiency" for a k-outlier query — even when the data holds far more
// than k outliers. It sweeps R on a 60-sparse instance with a top-5
// query: R = k is insufficient (one slot is eaten by the bias column,
// and greedy order is not exactly divergence order), while every R in
// the paper's band answers exactly.
func TestIterationBudgetSweep(t *testing.T) {
	const (
		n, s, k = 1500, 60, 5
		mode    = 1800.0
		m       = 300
	)
	rng := xrand.New(1234)
	type point struct {
		r     int
		avgEK float64
	}
	var pts []point
	const trials = 5
	for _, r := range []int{k, 2 * k, 3 * k, 5 * k} {
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			seed := rng.Uint64()
			// Pareto-heavy magnitudes, as in the production generator:
			// a top-k query targets dominant components, which is the
			// regime where a budget of a few·k suffices against s ≫ k.
			data, support := workload.MajorityDominated(n, s, mode, mode, 2*mode, seed)
			mags := xrand.New(seed ^ 0x1717)
			for _, j := range support {
				sign := 1.0
				if data[j] < mode {
					sign = -1
				}
				var u float64
				for u == 0 {
					u = mags.Float64()
				}
				d := mode * minF(400, pow(u, -1/0.6))
				data[j] = mode + sign*d
			}
			truth := outlier.TopK(data, mode, k)
			mat, err := sensing.NewDense(sensing.Params{M: m, N: n, Seed: seed ^ 0x99})
			if err != nil {
				t.Fatal(err)
			}
			res, err := BOMP(mat, mat.Measure(data, nil), Options{MaxIterations: r})
			if err != nil {
				t.Fatal(err)
			}
			est := make([]outlier.KV, len(res.Support))
			for i, j := range res.Support {
				est[i] = outlier.KV{Index: j, Value: res.X[j]}
			}
			sum += outlier.ErrorOnKey(truth, outlier.TopKOf(est, res.Mode, k))
		}
		pts = append(pts, point{r, sum / trials})
	}
	// R in the paper's band answers accurately.
	for _, p := range pts[1:] {
		if p.avgEK > 0.21 {
			t.Fatalf("R=%d: avg EK %v — the [2k,5k] band failed", p.r, p.avgEK)
		}
	}
	// Accuracy is non-increasing in R across the sweep (more budget
	// never hurts on this instance).
	for i := 1; i < len(pts); i++ {
		if pts[i].avgEK > pts[i-1].avgEK+0.15 {
			t.Fatalf("accuracy regressed with budget: %+v", pts)
		}
	}
	// And the default IterationBudget lands inside the validated band.
	if r := IterationBudget(k); r < 2*k || r > 5*k+1 {
		t.Fatalf("IterationBudget(%d) = %d outside validated band", k, r)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func pow(x, p float64) float64 { return math.Pow(x, p) }
