package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// explicitMat is a test-only sensing.Matrix over explicit columns, used
// to build adversarial dictionaries (coherent or badly scaled columns)
// that the seeded ensembles never produce.
type explicitMat struct {
	cols []linalg.Vector // N columns of length M
}

func (e *explicitMat) Params() sensing.Params {
	return sensing.Params{M: len(e.cols[0]), N: len(e.cols)}
}

func (e *explicitMat) Col(j int, dst linalg.Vector) linalg.Vector {
	dst = ensureVec(dst, len(e.cols[j]))
	copy(dst, e.cols[j])
	return dst
}

func (e *explicitMat) Measure(x, dst linalg.Vector) linalg.Vector {
	dst = ensureVec(dst, len(e.cols[0]))
	dst.Fill(0)
	for j, c := range e.cols {
		dst.AddScaled(x[j], c)
	}
	return dst
}

func (e *explicitMat) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	dst = ensureVec(dst, len(e.cols[0]))
	dst.Fill(0)
	for i, j := range idx {
		dst.AddScaled(vals[i], e.cols[j])
	}
	return dst
}

func (e *explicitMat) Correlate(r, dst linalg.Vector) linalg.Vector {
	dst = ensureVec(dst, len(e.cols))
	for j, c := range e.cols {
		dst[j] = c.Dot(r)
	}
	return dst
}

func (e *explicitMat) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	dst = ensureVec(dst, len(e.cols[0]))
	dst.Fill(0)
	for _, c := range e.cols {
		dst.AddScaled(1, c)
	}
	scale := 1 / math.Sqrt(float64(len(e.cols)))
	for i := range dst {
		dst[i] *= scale
	}
	return dst
}

// TestIHTRejectsResidualIncreasingStep pins the backtracking fix: on a
// dictionary with a badly scaled column (‖φ₁‖² ≫ 256), every μ in the
// 8-halving range overshoots — μ‖φ₁‖² > 2 keeps the step residual-
// increasing even at μ = 1/128. The old code accepted the attempt-7
// iterate unconditionally, so with DisableEarlyStop the loop diverged
// for the whole budget (each "accepted" iterate worse than the last).
// The fix rejects the step and terminates with the previous iterate.
func TestIHTRejectsResidualIncreasingStep(t *testing.T) {
	mat := &explicitMat{cols: []linalg.Vector{
		{1, 0},
		{0, 40}, // ‖φ₁‖² = 1600 > 256: all 8 halvings overshoot
	}}
	y := linalg.Vector{1, 1}
	res, err := IHT(mat, y, 1, Options{
		MaxIterations:    50,
		DisableEarlyStop: true,
		TraceResidual:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Iteration 1 always accepts (the reference norm starts at +Inf);
	// iteration 2's step is rejected at every μ, so the loop must
	// terminate right there instead of burning (and diverging through)
	// the 50-iteration budget as the old code did.
	if res.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2 (step rejected, loop terminated)", res.Iterations)
	}
	if !res.StoppedEarly {
		t.Error("StoppedEarly = false, want true (rejected step terminates the loop)")
	}
	// The accepted-iterate residual sequence must be non-increasing.
	prev := math.Inf(1)
	for i, r := range res.ResidualTrace {
		if r > prev {
			t.Errorf("ResidualTrace[%d] = %g > previous %g: residual-increasing iterate accepted", i, r, prev)
		}
		prev = r
	}
	// Debias on the kept support {1} gives the optimal coefficient
	// ⟨y,φ₁⟩/‖φ₁‖² = 0.025 and residual (1,0).
	if math.Abs(res.Residual-1) > 1e-12 {
		t.Errorf("Residual = %g, want 1 (debiased LS on the kept support)", res.Residual)
	}
}

// TestIHTBacktrackingStillRecovers checks the fix does not break the
// normal path: a well-scaled exact-sparse instance still recovers, and
// the residual trace is monotone under DisableEarlyStop.
func TestIHTBacktrackingStillRecovers(t *testing.T) {
	const n, m, s = 64, 32, 3
	mat := dense(t, m, n, 0xb4c7)
	x := make(linalg.Vector, n)
	x[5], x[17], x[40] = 9, -7, 4
	y := mat.Measure(x, nil)
	res, err := IHT(mat, y, s, Options{TraceResidual: true})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, []int{5, 17, 40}) {
		t.Fatalf("support = %v, want [5 17 40]", res.Support)
	}
	prev := math.Inf(1)
	for i, r := range res.ResidualTrace {
		if r > prev+1e-12 {
			t.Errorf("ResidualTrace[%d] = %g > previous %g", i, r, prev)
		}
		prev = r
	}
	if res.Residual > 1e-6*y.Norm2() {
		t.Errorf("Residual = %g, want ~0 after debias", res.Residual)
	}
}
