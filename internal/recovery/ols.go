package recovery

import (
	"fmt"
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// OLS implements Orthogonal Least Squares — the greedy cousin of OMP
// that the paper's reference [6] (Blumensath & Davies, "On the
// difference between orthogonal matching pursuit and orthogonal least
// squares") is careful to distinguish. Where OMP selects the column
// with the largest |⟨φ_j, r⟩|, OLS selects the column whose inclusion
// minimizes the *next* residual — equivalently, the largest
// |⟨φ_j, r⟩| / ‖P⊥φ_j‖ where P⊥ projects out the current basis. OLS
// makes strictly better greedy choices on coherent dictionaries at the
// cost of an extra orthogonalization per candidate evaluation; for the
// i.i.d. Gaussian ensembles used here the two usually coincide, which
// the cross-validation tests assert.
func OLS(m sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	sel, coef, err := olsGreedy(&plainDict{m: m}, y, p.M, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Support: sel, Coef: coef, Iterations: len(sel)}
	res.X = assemble(p.N, 0, sel, coef)
	return res, nil
}

// BiasedOLS runs OLS over BOMP's extended dictionary, recovering data
// concentrated around an unknown bias.
func BiasedOLS(m sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	d := &biasedDict{m: m, phi0: m.ExtensionColumn(nil)}
	sel, coef, err := olsGreedy(d, y, p.M, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Iterations: len(sel)}
	for i, j := range sel {
		if j == 0 {
			res.Mode = coef[i] / math.Sqrt(float64(p.N))
		} else {
			res.Support = append(res.Support, j-1)
			res.Coef = append(res.Coef, coef[i])
		}
	}
	res.X = assemble(p.N, res.Mode, res.Support, res.Coef)
	return res, nil
}

// olsGreedy is the OLS selection loop. It maintains, for every unselected
// candidate column, its projection residual against the current basis
// (updated incrementally as the basis grows), and selects by normalized
// correlation |⟨ψ_j, r⟩| / ‖ψ_j‖ where ψ_j = P⊥φ_j.
//
// Memory: O(N·M) for the candidate residual columns — OLS is inherently
// heavier than OMP; it exists here for cross-validation and ablation,
// not for the production path.
func olsGreedy(d dictionary, y linalg.Vector, m int, opt Options) ([]int, []float64, error) {
	size := d.size()
	maxIter := opt.MaxIterations
	if maxIter <= 0 || maxIter > m {
		maxIter = m
	}
	if maxIter > size {
		maxIter = size
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		return nil, nil, nil
	}
	tol := opt.residualTol() * yNorm

	// Materialize all candidate columns once.
	cols := make([]linalg.Vector, size)
	for j := 0; j < size; j++ {
		cols[j] = d.col(j, nil).Clone()
	}
	norms := make([]float64, size)
	for j, c := range cols {
		norms[j] = c.Norm2()
	}

	qr := linalg.NewIncrementalQR(m)
	qr.SetTarget(y)
	selected := make([]int, 0, maxIter)
	inBasis := make(map[int]bool, maxIter)
	residual := y.Clone()
	prevNorm := yNorm
	for len(selected) < maxIter {
		// Select the candidate maximizing |<ψ_j, r>| / ‖ψ_j‖. Because
		// r ⟂ span(basis), ⟨ψ_j, r⟩ = ⟨φ_j, r⟩ on the *deflated* column.
		best, bestScore := -1, 0.0
		for j := 0; j < size; j++ {
			if inBasis[j] || norms[j] <= 1e-10 {
				continue
			}
			score := math.Abs(cols[j].Dot(residual)) / norms[j]
			if score > bestScore {
				best, bestScore = j, score
			}
		}
		if best < 0 || bestScore <= 1e-14*yNorm {
			break
		}
		// Append the ORIGINAL column to the QR (for clean coefficients).
		orig := d.col(best, nil)
		if _, err := qr.Append(orig); err != nil {
			norms[best] = 0 // numerically dependent; never consider again
			continue
		}
		selected = append(selected, best)
		inBasis[best] = true
		// Deflate every remaining candidate against the new basis vector.
		q := qr.Q(qr.K() - 1)
		for j := 0; j < size; j++ {
			if inBasis[j] || norms[j] <= 1e-10 {
				continue
			}
			cols[j].AddScaled(-q.Dot(cols[j]), q)
			norms[j] = cols[j].Norm2()
		}
		residual = qr.Residual(residual)
		norm := qr.ResidualNorm()
		if norm <= tol {
			break
		}
		if !opt.DisableEarlyStop && norm >= prevNorm*(1-opt.stallRelTol()) {
			break
		}
		prevNorm = norm
	}
	if len(selected) == 0 {
		return nil, nil, nil
	}
	z, err := qr.Solve()
	if err != nil {
		return nil, nil, err
	}
	return selected, z, nil
}
