package recovery

import (
	"fmt"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// This file is the batched, warm-started BOMP engine. Two costs dominate
// a standing query that is re-solved on every fold generation: the
// O(M·N) correlation per greedy iteration, and — for the regenerating
// ensembles — the PRNG work inside it. Both amortize:
//
//   - Warm start: the previous generation's Selection is usually still
//     the right selection order, because consecutive sketches differ by
//     a small delta. We PREDICT the run: seed a scratch QR with the
//     hinted columns, record the residual the algorithm WOULD hold at
//     each iteration, and precompute every iteration's correlation
//     up front.
//   - Batching: those predicted residuals — across all iterations of
//     all queries in the batch — go through ONE sensing.CorrelateBlock
//     call, which regenerates each dictionary column once for the whole
//     block instead of once per query per iteration.
//
// The REPLAY then runs the ordinary greedy loop (greedyStep — literally
// the cold code path), feeding it the precomputed correlation vectors
// while its selections match the prediction, and falling back to live
// correlations the moment they do not. Bit-identity with a cold run is
// therefore structural, not numerical luck: the QR update is a
// deterministic function of the appended column sequence, so as long as
// the live run has selected exactly the predicted prefix, the predicted
// residual rows are bit-equal to the live residuals, their correlations
// are bit-equal to what the cold run would compute (CorrelateBlock's
// per-residual bit-identity contract), and greedyStep makes bit-equal
// decisions. A wrong, stale, or garbage hint costs only wasted predicted
// rows — never a different answer.

// BatchItem is one query in a BOMPBatch call.
type BatchItem struct {
	// Y is the measurement (sketch) to recover from.
	Y linalg.Vector
	// Warm is the previous generation's extended-dictionary selection
	// order (Result.Selection) for this query, or nil for a cold solve.
	// An arbitrary or stale Warm is safe: recovery output is bit-identical
	// to a cold run regardless.
	Warm []int
	// Opt tunes the greedy engine, exactly as in Workspace.BOMP.
	Opt Options
}

// BatchStats reports what the batch engine amortized.
type BatchStats struct {
	// Items is the number of queries in the batch.
	Items int
	// Warm is how many of them carried a non-empty warm hint.
	Warm int
	// ScriptedIterations counts greedy iterations served from the
	// precomputed correlation block — their O(M·N) correlate cost was
	// batched and amortized.
	ScriptedIterations int
	// LiveIterations counts greedy iterations that needed a fresh
	// correlation after replay ended (divergence, script exhausted, or
	// cold items that outlived their one precomputed row).
	LiveIterations int
	// Divergences counts items whose live selection left the predicted
	// script before it was exhausted (stale hint detected and ignored).
	Divergences int
	// Rounds is the number of live correlation passes; each batches all
	// still-active items into one CorrelateBlock call.
	Rounds int
}

// BOMPWarm is Workspace.BOMP with a warm hint: recover y, seeding the
// greedy engine with the previous generation's Result.Selection for the
// same query. The result is bit-identical to ws.BOMP(m, y, opt) — the
// hint only changes where the correlations come from, never what is
// selected. A nil hint is a plain (but still block-correlated) cold run.
func (ws *Workspace) BOMPWarm(m sensing.Matrix, y linalg.Vector, warm []int, opt Options) (*Result, error) {
	res, _, err := BOMPBatch(m, []*Workspace{ws}, []BatchItem{{Y: y, Warm: warm, Opt: opt}})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// BOMPBatch solves many BOMP queries against the same matrix in one
// pass, amortizing dictionary-column generation across every query and
// every warm-predicted iteration. wss supplies one workspace per item
// (results alias their workspaces, exactly as in Workspace.BOMP).
// Each results[i] is bit-identical to wss[i].BOMP(m, items[i].Y,
// items[i].Opt).
func BOMPBatch(m sensing.Matrix, wss []*Workspace, items []BatchItem) ([]*Result, BatchStats, error) {
	var stats BatchStats
	if len(wss) != len(items) {
		return nil, stats, fmt.Errorf("recovery: %d workspaces for %d batch items", len(wss), len(items))
	}
	p := m.Params()
	stride := p.N + 1
	for i := range items {
		if len(items[i].Y) != p.M {
			return nil, stats, fmt.Errorf("%w: batch item %d len(y)=%d, M=%d", ErrDimension, i, len(items[i].Y), p.M)
		}
	}
	stats.Items = len(items)

	// Phase A: per item, predict the run — validate the hint, seed the
	// scratch QR with it, and record the residual each iteration would
	// correlate against. predict runs BEFORE greedyInit so a hint that
	// aliases this workspace's previous Selection is copied out intact.
	rows := make([]int, len(items))
	for i, ws := range wss {
		it := items[i]
		ws.phi0 = m.ExtensionColumn(ws.phi0)
		ws.bd = biasedDict{m: m, phi0: ws.phi0}
		var modeFn func(z linalg.Vector, idx []int) float64
		if it.Opt.TraceMode {
			n := p.N
			modeFn = func(z linalg.Vector, idx []int) float64 {
				return modeFromExtended(z, idx, n)
			}
		}
		rows[i] = ws.predict(&ws.bd, it.Y, p.M, it.Opt, it.Warm)
		if len(it.Warm) > 0 {
			stats.Warm++
		}
		ws.greedyInit(&ws.bd, it.Y, p.M, it.Opt, modeFn)
	}

	// Phase B: ONE batched biased correlation over every predicted
	// residual row of every item.
	biasedBlock(m, wss, rows, p.M, stride)

	// Phase C: scripted replay — the cold greedy loop fed precomputed
	// correlations, at zero correlate cost per iteration.
	for i, ws := range wss {
		ws.replayScripted(rows[i], stride, &stats)
	}

	// Live rounds: items that outlived their script (or diverged from
	// it) continue with fresh correlations, still batched across all
	// active items per round.
	var (
		active []int
		rs     []linalg.Vector
		dsts   []linalg.Vector
	)
	for {
		active = active[:0]
		for i, ws := range wss {
			if !ws.st.done {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		stats.Rounds++
		rs, dsts = rs[:0], dsts[:0]
		for _, i := range active {
			ws := wss[i]
			ws.corr = ensureVec(ws.corr, stride)
			ws.corr[0] = ws.phi0.Dot(ws.residual)
			rs = append(rs, ws.residual)
			dsts = append(dsts, ws.corr[1:stride])
		}
		sensing.CorrelateBlock(m, rs, dsts)
		for _, i := range active {
			wss[i].greedyStep()
			stats.LiveIterations++
		}
	}

	results := make([]*Result, len(wss))
	for i, ws := range wss {
		res, err := ws.finishBOMP(p)
		if err != nil {
			return nil, stats, fmt.Errorf("recovery: batch item %d: %w", i, err)
		}
		results[i] = res
	}
	return results, stats, nil
}

// predict validates the warm hint into ws.script and simulates the run
// it implies: seed ws.qrSeed with the hinted columns in order and record
// into ws.predRes the residual the greedy loop would correlate against
// at each iteration (row 0 is y itself — even a cold run's first
// correlation batches). It returns the number of rows recorded, which is
// len(script)+1 unless a stop — tolerance, §5 stall, iteration budget,
// or a column the seed QR rejects — is predicted earlier.
//
// The stop predictions reuse the exact greedy-loop thresholds, so for an
// on-trajectory hint the predicted stop is the real one and no row is
// wasted; for an off-trajectory hint they are merely heuristics that
// bound wasted precomputation, and replay divergence restores
// correctness.
func (ws *Workspace) predict(d *biasedDict, y linalg.Vector, m int, opt Options, warm []int) int {
	size := d.size()
	maxIter := clampMaxIter(opt.MaxIterations, m, size)

	// Truncate the hint at the first index a real run could never have
	// selected there: out of range, or a repeat. ws.masked is free as
	// scratch here — greedyInit resets it after predict.
	ws.script = ws.script[:0]
	ws.masked.reset(size)
	for _, j := range warm {
		if len(ws.script) >= maxIter || j < 0 || j >= size || ws.masked.has(j) {
			break
		}
		ws.masked.set(j)
		ws.script = append(ws.script, j)
	}

	yNorm := y.Norm2()
	if yNorm == 0 || maxIter < 1 {
		ws.script = ws.script[:0]
		return 0 // the run selects nothing and never correlates
	}
	if ws.qrSeed == nil {
		ws.qrSeed = linalg.NewIncrementalQR(m)
	} else {
		ws.qrSeed.Reset(m)
	}
	ws.qrSeed.SetTarget(y)
	tol := opt.residualTol() * yNorm
	stall := opt.stallRelTol()

	ws.predRes = ensureVec(ws.predRes, (len(ws.script)+1)*m)
	copy(ws.predRes[:m], y)
	rows := 1
	prevNorm := yNorm
	for t, j := range ws.script {
		ws.colBuf = d.col(j, ws.colBuf)
		if _, err := ws.qrSeed.Append(ws.colBuf); err != nil {
			// Rank-deficient (or otherwise rejected) hint column: a real
			// run would have picked something else here — off trajectory.
			break
		}
		norm := ws.qrSeed.ResidualNorm()
		if norm <= tol {
			break // tolerance stop predicted right after this selection
		}
		if !opt.DisableEarlyStop && norm >= prevNorm*(1-stall) {
			break // §5 stall predicted
		}
		prevNorm = norm
		if t+1 >= maxIter {
			break // budget exhausted after this selection
		}
		ws.qrSeed.Residual(ws.predRes[rows*m : (rows+1)*m])
		rows++
	}
	return rows
}

// biasedBlock fills each workspace's predCorr with the biased-dictionary
// correlation of each of its predicted residual rows — every row of
// every item through one sensing.CorrelateBlock call, which is where the
// batch engine's column-regeneration amortization happens.
func biasedBlock(m sensing.Matrix, wss []*Workspace, rows []int, mdim, stride int) {
	total := 0
	for _, r := range rows {
		total += r
	}
	if total == 0 {
		return
	}
	rs := make([]linalg.Vector, 0, total)
	dsts := make([]linalg.Vector, 0, total)
	for i, ws := range wss {
		ws.predCorr = ensureVec(ws.predCorr, rows[i]*stride)
		for t := 0; t < rows[i]; t++ {
			r := ws.predRes[t*mdim : (t+1)*mdim]
			// Same two pieces as biasedDict.correlate: φ₀·r in slot 0,
			// Φᵀr in the rest (bit-identical per CorrelateBlock's contract).
			ws.predCorr[t*stride] = ws.phi0.Dot(r)
			rs = append(rs, r)
			dsts = append(dsts, ws.predCorr[t*stride+1:(t+1)*stride])
		}
	}
	sensing.CorrelateBlock(m, rs, dsts)
}

// replayScripted steps the greedy loop through the precomputed
// correlation rows. Row t is the correlation of the residual after t
// selections ON the predicted script, so it is consumed only while the
// live selections still equal the script prefix; the first off-script
// selection (still made from a VALID correlation row — the row that
// produced it was computed from the true live residual) invalidates the
// remaining rows and ends the replay.
func (ws *Workspace) replayScripted(rows, stride int, stats *BatchStats) {
	for t := 0; t < rows && !ws.st.done; t++ {
		ws.corr = ws.predCorr[t*stride : (t+1)*stride]
		selBefore := len(ws.selected)
		ws.greedyStep()
		stats.ScriptedIterations++
		if ws.st.done || len(ws.selected) == selBefore {
			return
		}
		picked := ws.selected[len(ws.selected)-1]
		if selBefore >= len(ws.script) {
			return // bonus row beyond the hint: no more rows to consume
		}
		if picked != ws.script[selBefore] {
			stats.Divergences++
			return // stale hint: rows t+1.. were predicted for a different residual
		}
	}
}
