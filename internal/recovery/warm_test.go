package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// warmEnsembles builds one instance of each ensemble family for the
// warm-start property tests. SRHT exercises the CorrelateBlock fallback
// (it has no batch kernel).
func warmEnsembles(t *testing.T) []struct {
	name string
	mat  sensing.Matrix
} {
	t.Helper()
	p := sensing.Params{M: 96, N: 512, Seed: 424242}
	dense, err := sensing.NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := sensing.NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := sensing.NewSparseRademacher(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	srht, err := sensing.NewSRHT(p)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		mat  sensing.Matrix
	}{
		{"Dense", dense},
		{"Seeded", seeded},
		{"SparseRademacher", sparse},
		{"SRHT", srht},
		{"ColumnCache(Seeded)", sensing.NewColumnCache(seeded, 0)},
	}
}

// resultsBitIdentical fails the test unless got and want agree on every
// field, floats compared by bit pattern.
func resultsBitIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	fail := func(f string, args ...any) {
		t.Helper()
		t.Fatalf("%s: "+f, append([]any{label}, args...)...)
	}
	if math.Float64bits(got.Mode) != math.Float64bits(want.Mode) {
		fail("Mode %v != %v", got.Mode, want.Mode)
	}
	if got.Iterations != want.Iterations {
		fail("Iterations %d != %d", got.Iterations, want.Iterations)
	}
	if math.Float64bits(got.Residual) != math.Float64bits(want.Residual) {
		fail("Residual %v != %v", got.Residual, want.Residual)
	}
	if got.StoppedEarly != want.StoppedEarly {
		fail("StoppedEarly %v != %v", got.StoppedEarly, want.StoppedEarly)
	}
	if len(got.Selection) != len(want.Selection) {
		fail("Selection %v != %v", got.Selection, want.Selection)
	}
	for i := range want.Selection {
		if got.Selection[i] != want.Selection[i] {
			fail("Selection %v != %v", got.Selection, want.Selection)
		}
	}
	if len(got.Support) != len(want.Support) {
		fail("Support %v != %v", got.Support, want.Support)
	}
	for i := range want.Support {
		if got.Support[i] != want.Support[i] {
			fail("Support %v != %v", got.Support, want.Support)
		}
		if math.Float64bits(got.Coef[i]) != math.Float64bits(want.Coef[i]) {
			fail("Coef[%d] %v != %v", i, got.Coef[i], want.Coef[i])
		}
	}
	if len(got.X) != len(want.X) {
		fail("X length %d != %d", len(got.X), len(want.X))
	}
	for j := range want.X {
		if math.Float64bits(got.X[j]) != math.Float64bits(want.X[j]) {
			fail("X[%d] %v != %v", j, got.X[j], want.X[j])
		}
	}
}

// cloneResult deep-copies a workspace-owned Result so it survives the
// workspace's next call.
func cloneResult(r *Result) *Result {
	c := *r
	c.X = append(linalg.Vector(nil), r.X...)
	c.Support = append([]int(nil), r.Support...)
	c.Coef = append([]float64(nil), r.Coef...)
	c.Selection = append([]int(nil), r.Selection...)
	return &c
}

// TestBOMPWarmBitIdenticalAllHints is the warm-start property test: for
// every ensemble, a warm-started BOMP must return a bit-identical result
// to the cold run for ANY hint — every prefix of the cold run's own
// selection order (the intended use), the full selection, and assorted
// wrong, stale, duplicate, and out-of-range hints (the failure modes a
// standing query hits when the data shifts between generations).
func TestBOMPWarmBitIdenticalAllHints(t *testing.T) {
	rng := xrand.New(77)
	for _, tc := range warmEnsembles(t) {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mat.Params()
			x, _ := biasedSparse(rng, p.N, 8, 1500, 200, 900)
			y := tc.mat.Measure(x, nil)
			opt := Options{MaxIterations: 27}

			cold, err := NewWorkspace().BOMP(tc.mat, y, opt)
			if err != nil {
				t.Fatal(err)
			}
			cold = cloneResult(cold)
			if cold.Iterations == 0 {
				t.Fatal("degenerate instance: cold run selected nothing")
			}

			hints := [][]int{nil, {}}
			// Every prefix of the true trajectory, including the whole of it.
			for l := 1; l <= len(cold.Selection); l++ {
				hints = append(hints, cold.Selection[:l])
			}
			// Wrong and degenerate hints.
			wrong := []int{cold.Selection[0] + 1, cold.Selection[0]}
			if wrong[0] >= p.N+1 {
				wrong[0] = 1
			}
			hints = append(hints,
				wrong,              // diverges at step 0 or 1
				[]int{p.N + 5, -3}, // out of range: truncated to empty
				[]int{3, 3, 3},     // duplicates: truncated after one
				append(append([]int(nil), cold.Selection...), cold.Selection[0]), // stale tail
			)

			ws := NewWorkspace()
			for hi, hint := range hints {
				got, err := ws.BOMPWarm(tc.mat, y, hint, opt)
				if err != nil {
					t.Fatalf("hint %d %v: %v", hi, hint, err)
				}
				resultsBitIdentical(t, tc.name, got, cold)
			}
		})
	}
}

// TestBOMPWarmSelfHintAcrossGenerations models the standing-query loop:
// solve generation g, feed its Selection (still aliasing the SAME
// workspace) as the hint for generation g+1's slightly different sketch.
func TestBOMPWarmSelfHintAcrossGenerations(t *testing.T) {
	rng := xrand.New(5)
	for _, tc := range warmEnsembles(t) {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mat.Params()
			x, sup := biasedSparse(rng, p.N, 6, -300, 100, 500)
			opt := Options{MaxIterations: 21}
			ws := NewWorkspace()
			var hint []int
			for gen := 0; gen < 4; gen++ {
				y := tc.mat.Measure(x, nil)
				cold, err := NewWorkspace().BOMP(tc.mat, y, opt)
				if err != nil {
					t.Fatal(err)
				}
				cold = cloneResult(cold)
				got, err := ws.BOMPWarm(tc.mat, y, hint, opt)
				if err != nil {
					t.Fatal(err)
				}
				resultsBitIdentical(t, tc.name, got, cold)
				hint = got.Selection // intentionally aliased workspace storage
				// Drift the data a little for the next generation.
				x[sup[gen%len(sup)]] += 25 * rng.NormFloat64()
			}
		})
	}
}

// TestBOMPBatchBitIdentical pins the batch engine against per-item cold
// runs for a mixed batch: cold items, correctly warmed items, staleley
// warmed items, a zero measurement, and differing per-item Options.
func TestBOMPBatchBitIdentical(t *testing.T) {
	rng := xrand.New(123)
	for _, tc := range warmEnsembles(t) {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mat.Params()
			const nq = 8
			items := make([]BatchItem, nq)
			colds := make([]*Result, nq)
			for i := range items {
				var y linalg.Vector
				if i == 5 {
					y = make(linalg.Vector, p.M) // zero measurement
				} else {
					x, _ := biasedSparse(rng, p.N, 3+i, 800, 150, 600)
					y = tc.mat.Measure(x, nil)
				}
				opt := Options{MaxIterations: 10 + 3*(i%3)}
				cold, err := NewWorkspace().BOMP(tc.mat, y, opt)
				if err != nil {
					t.Fatal(err)
				}
				colds[i] = cloneResult(cold)
				items[i] = BatchItem{Y: y, Opt: opt}
				switch {
				case i%3 == 1:
					items[i].Warm = colds[i].Selection // exact hint
				case i%3 == 2 && len(colds[i].Selection) > 2:
					// Stale hint: right start, wrong continuation.
					stale := append([]int(nil), colds[i].Selection[:2]...)
					stale = append(stale, (colds[i].Selection[1]+7)%(p.N+1))
					items[i].Warm = stale
				}
			}
			wss := make([]*Workspace, nq)
			for i := range wss {
				wss[i] = NewWorkspace()
			}
			results, stats, err := BOMPBatch(tc.mat, wss, items)
			if err != nil {
				t.Fatal(err)
			}
			for i := range results {
				resultsBitIdentical(t, tc.name, results[i], colds[i])
			}
			if stats.Items != nq {
				t.Fatalf("stats.Items = %d, want %d", stats.Items, nq)
			}
			if stats.ScriptedIterations == 0 {
				t.Fatal("no scripted iterations in a batch with exact warm hints")
			}
			if stats.Warm == 0 {
				t.Fatal("stats.Warm = 0 despite warmed items")
			}
		})
	}
}

// TestBOMPBatchExactHintSkipsLiveCorrelation checks the payoff: an item
// whose hint IS the true trajectory replays entirely from the
// precomputed block — its divergence count is zero and the batch needs
// no live round for it.
func TestBOMPBatchExactHintSkipsLiveCorrelation(t *testing.T) {
	rng := xrand.New(999)
	tc := warmEnsembles(t)[1] // Seeded
	p := tc.mat.Params()
	x, _ := biasedSparse(rng, p.N, 5, 2000, 300, 800)
	y := tc.mat.Measure(x, nil)
	opt := Options{MaxIterations: 16}
	cold, err := NewWorkspace().BOMP(tc.mat, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold = cloneResult(cold)
	results, stats, err := BOMPBatch(tc.mat,
		[]*Workspace{NewWorkspace()},
		[]BatchItem{{Y: y, Warm: cold.Selection, Opt: opt}})
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, tc.name, results[0], cold)
	if stats.Divergences != 0 {
		t.Fatalf("exact hint diverged %d times", stats.Divergences)
	}
	if stats.LiveIterations != 0 {
		t.Fatalf("exact hint needed %d live iterations, want 0", stats.LiveIterations)
	}
	// The cold run correlates once per selection, plus possibly one final
	// pass that finds nothing and stops; all of them must be scripted.
	if stats.ScriptedIterations != cold.Iterations && stats.ScriptedIterations != cold.Iterations+1 {
		t.Fatalf("scripted %d iterations, cold selected %d columns", stats.ScriptedIterations, cold.Iterations)
	}
}

// TestBOMPBatchWorkspaceMismatch checks the arity guard.
func TestBOMPBatchWorkspaceMismatch(t *testing.T) {
	mat := dense(t, 8, 32, 7)
	_, _, err := BOMPBatch(mat, []*Workspace{NewWorkspace()}, nil)
	if err == nil {
		t.Fatal("no error for mismatched workspaces/items")
	}
	_, _, err = BOMPBatch(mat, []*Workspace{NewWorkspace()},
		[]BatchItem{{Y: make(linalg.Vector, 9)}})
	if err == nil {
		t.Fatal("no error for wrong measurement length")
	}
}
