package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// sentinelEnsembles instantiates one matrix per measurement family at a
// shared shape. CountSketch's hashed columns collide too much for
// guaranteed exact sparse recovery (its exact flag is false): there the
// sentinel properties still must hold, but results are only required to
// be deterministic, not truth-equal.
func sentinelEnsembles(t testing.TB, m, n int, seed uint64) []struct {
	name  string
	mat   sensing.Matrix
	exact bool
} {
	t.Helper()
	var out []struct {
		name  string
		mat   sensing.Matrix
		exact bool
	}
	for _, e := range []struct {
		kind  sensing.Kind
		exact bool
	}{
		{sensing.KindGaussian, true},
		{sensing.KindSparseRademacher, true},
		{sensing.KindSRHT, true},
		{sensing.KindCountSketch, false},
	} {
		spec := sensing.Spec{Params: sensing.Params{M: m, N: n, Seed: seed}, Kind: e.kind}
		mat, err := sensing.New(spec, 1<<30)
		if err != nil {
			t.Fatalf("%v: %v", e.kind, err)
		}
		out = append(out, struct {
			name  string
			mat   sensing.Matrix
			exact bool
		}{e.kind.String(), mat, e.exact})
	}
	return out
}

// resultsIdentical compares the fields the sentinel contract covers.
func resultsIdentical(a, b *Result) bool {
	if a.Mode != b.Mode || a.Iterations != b.Iterations || len(a.Support) != len(b.Support) {
		return false
	}
	for i := range a.Support {
		if a.Support[i] != b.Support[i] || a.Coef[i] != b.Coef[i] {
			return false
		}
	}
	return true
}

// TestSolverSentinelParity is the cross-solver Options contract test:
// the PR 6 sentinel semantics (zero ResidualTol/StallRelTol meaning
// "default", negative meaning "disabled") must behave identically for
// BOMP, AIHT and Dantzig on every measurement ensemble.
func TestSolverSentinelParity(t *testing.T) {
	const m, n, s, bias = 128, 256, 5, 300.0
	solvers := []struct {
		name string
		run  func(mat sensing.Matrix, y linalg.Vector, opt Options) (*Result, error)
	}{
		{"bomp", func(mat sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
			return BOMP(mat, y, opt)
		}},
		{"aiht", func(mat sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
			return BiasedAIHT(mat, y, s, opt)
		}},
		{"dantzig", func(mat sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
			return BiasedDantzig(mat, y, s, opt)
		}},
	}
	for _, ens := range sentinelEnsembles(t, m, n, 0x5e47) {
		rng := xrand.New(0x5e47)
		x, want := biasedSparse(rng, n, s, bias, 100, 1000)
		y := ens.mat.Measure(x, nil)
		for _, sv := range solvers {
			label := ens.name + "/" + sv.name

			// Zero sentinels resolve to the documented defaults: an
			// Options{} run and an explicit-defaults run are identical.
			zero, err := sv.run(ens.mat, y, Options{})
			if err != nil {
				t.Fatalf("%s: zero-sentinel run: %v", label, err)
			}
			expl, err := sv.run(ens.mat, y, Options{ResidualTol: 1e-9, StallRelTol: 1e-12})
			if err != nil {
				t.Fatalf("%s: explicit-default run: %v", label, err)
			}
			if !resultsIdentical(zero, expl) {
				t.Errorf("%s: Options{} differs from explicit defaults: %+v vs %+v", label, zero, expl)
			}

			// A negative StallRelTol means threshold 0 (stall on any
			// non-decrease), not "disabled": the run must terminate
			// without error, and on exact-recovery ensembles the strict
			// greedy descent means it still finds the truth.
			neg, err := sv.run(ens.mat, y, Options{StallRelTol: -1})
			if err != nil {
				t.Fatalf("%s: negative StallRelTol run: %v", label, err)
			}
			if ens.exact {
				if !supportEqual(zero.Support, want) {
					t.Errorf("%s: default run missed truth: %v want %v", label, zero.Support, want)
				}
				if !supportEqual(neg.Support, want) {
					t.Errorf("%s: StallRelTol=-1 run missed truth: %v want %v", label, neg.Support, want)
				}
				if math.Abs(zero.Mode-bias) > 1e-6*bias {
					t.Errorf("%s: mode = %g, want %g", label, zero.Mode, bias)
				}
			}

			// A negative ResidualTol disables tolerance stops; combined
			// with DisableEarlyStop the solver must not error and must
			// not report a tolerance-triggered zero-iteration result.
			dis, err := sv.run(ens.mat, y, Options{ResidualTol: -1, DisableEarlyStop: true})
			if err != nil {
				t.Fatalf("%s: disabled-stops run: %v", label, err)
			}
			if dis.Iterations < 1 {
				t.Errorf("%s: disabled-stops run reported %d iterations", label, dis.Iterations)
			}
		}
	}
}

// TestWarmFastPathHonorsResidualTolSentinel pins the interaction the
// warm shortcut has with the sentinel: a negative ResidualTol disables
// tolerance stops, and the zero-iteration fast path is a tolerance stop,
// so a warm restart under ResidualTol=-1 must run the iteration.
func TestWarmFastPathHonorsResidualTolSentinel(t *testing.T) {
	inst := newSolverInstance(t, 160, 400, 8, 500, 23)
	cold, err := BiasedAIHT(inst.mat, inst.y, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, "cold", cold, inst)

	warmA, err := BiasedAIHTWarm(inst.mat, inst.y, 8, cold.Selection, Options{ResidualTol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if warmA.Iterations == 0 {
		t.Error("aiht: warm fast path fired despite ResidualTol=-1")
	}
	warmD, err := BiasedDantzigWarm(inst.mat, inst.y, 8, cold.Selection, Options{ResidualTol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if warmD.Iterations == 0 {
		t.Error("dantzig: warm fast path fired despite ResidualTol=-1")
	}
	// And with the default tolerance both shortcuts fire.
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return BiasedAIHTWarm(inst.mat, inst.y, 8, cold.Selection, Options{}) },
		func() (*Result, error) {
			return BiasedDantzigWarm(inst.mat, inst.y, 8, cold.Selection, Options{})
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != 0 {
			t.Errorf("default-tolerance warm restart ran %d iterations", res.Iterations)
		}
		checkExact(t, "warm", res, inst)
	}
}
