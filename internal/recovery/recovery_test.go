package recovery

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// biasedSparse builds an N-vector equal to bias everywhere except s
// planted outliers with offsets of magnitude in [lo, hi].
func biasedSparse(r *xrand.RNG, n, s int, bias, lo, hi float64) (linalg.Vector, []int) {
	x := make(linalg.Vector, n)
	x.Fill(bias)
	support := map[int]bool{}
	for len(support) < s {
		support[r.Intn(n)] = true
	}
	idx := make([]int, 0, s)
	for j := range support {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	for _, j := range idx {
		mag := lo + (hi-lo)*r.Float64()
		if r.Float64() < 0.5 {
			mag = -mag
		}
		x[j] = bias + mag
	}
	return x, idx
}

func dense(t testing.TB, m, n int, seed uint64) *sensing.Dense {
	t.Helper()
	d, err := sensing.NewDense(sensing.Params{M: m, N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func supportEqual(got []int, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]int(nil), got...)
	sort.Ints(g)
	for i := range g {
		if g[i] != want[i] {
			return false
		}
	}
	return true
}

func TestOMPExactRecoverySparseAtZero(t *testing.T) {
	r := xrand.New(1)
	const n, m, s = 256, 90, 8
	d := dense(t, m, n, 7)
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := OMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-6) {
		t.Fatal("recovered vector mismatch")
	}
	if res.Mode != 0 {
		t.Fatalf("OMP mode = %v", res.Mode)
	}
}

func TestBOMPRecoversUnknownBias(t *testing.T) {
	r := xrand.New(2)
	const n, m, s = 256, 100, 8
	const bias = 5000.0
	d := dense(t, m, n, 8)
	x, want := biasedSparse(r, n, s, bias, 100, 1000)
	y := d.Measure(x, nil)
	res, err := BOMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-bias) > 1e-4*bias {
		t.Fatalf("mode = %v, want %v", res.Mode, bias)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-3) {
		t.Fatal("recovered vector mismatch")
	}
}

func TestBOMPNegativeBiasAndValues(t *testing.T) {
	// The k-outlier problem is over the real field (paper §7.1): negative
	// partial values invalidate TA/TPUT but must not bother BOMP.
	r := xrand.New(3)
	const n, m, s = 200, 90, 6
	const bias = -750.0
	d := dense(t, m, n, 9)
	x, want := biasedSparse(r, n, s, bias, 50, 400)
	y := d.Measure(x, nil)
	res, err := BOMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-bias) > 1 {
		t.Fatalf("mode = %v, want %v", res.Mode, bias)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
}

func TestBOMPZeroBiasDegeneratesToSparse(t *testing.T) {
	r := xrand.New(4)
	const n, m, s = 128, 70, 5
	d := dense(t, m, n, 10)
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := BOMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode) > 1e-6 {
		t.Fatalf("mode = %v, want ~0", res.Mode)
	}
	got := append([]int(nil), res.Support...)
	sort.Ints(got)
	// The bias column may or may not be selected; the data support must
	// be found either way.
	for _, j := range want {
		if !contains(got, j) {
			t.Fatalf("missing outlier %d in %v", j, got)
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestKnownModeOMPMatchesBOMP(t *testing.T) {
	r := xrand.New(5)
	const n, m, s = 200, 90, 6
	const bias = 1800.0
	d := dense(t, m, n, 11)
	x, want := biasedSparse(r, n, s, bias, 100, 900)
	y := d.Measure(x, nil)
	km, err := KnownModeOMP(d, y, bias, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(km.Support, want) {
		t.Fatalf("known-mode support = %v, want %v", km.Support, want)
	}
	if !km.X.Equal(x, 1e-4) {
		t.Fatal("known-mode recovered vector mismatch")
	}
	if km.Mode != bias {
		t.Fatalf("known-mode Mode = %v", km.Mode)
	}
}

func TestZeroMeasurement(t *testing.T) {
	d := dense(t, 20, 50, 12)
	y := make(linalg.Vector, 20)
	res, err := BOMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) != 0 || res.Mode != 0 {
		t.Fatalf("zero measurement produced support %v mode %v", res.Support, res.Mode)
	}
	if res.X.Norm2() != 0 {
		t.Fatal("zero measurement produced nonzero X")
	}
}

func TestDimensionMismatch(t *testing.T) {
	d := dense(t, 20, 50, 13)
	y := make(linalg.Vector, 19)
	if _, err := BOMP(d, y, Options{}); err == nil {
		t.Fatal("BOMP accepted wrong-length measurement")
	}
	if _, err := OMP(d, y, Options{}); err == nil {
		t.Fatal("OMP accepted wrong-length measurement")
	}
	if _, err := KnownModeOMP(d, y, 1, Options{}); err == nil {
		t.Fatal("KnownModeOMP accepted wrong-length measurement")
	}
	if _, err := BP(d, y); err == nil {
		t.Fatal("BP accepted wrong-length measurement")
	}
}

func TestIterationBudgetWithinPaperRange(t *testing.T) {
	for _, k := range []int{1, 5, 10, 20, 100} {
		r := IterationBudget(k)
		if r < 2*k || r > 5*k+1 {
			t.Fatalf("IterationBudget(%d) = %d outside [2k, 5k+1]", k, r)
		}
	}
	if IterationBudget(0) < 1 {
		t.Fatal("IterationBudget(0) must be positive")
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	r := xrand.New(6)
	const n, m, s = 300, 80, 40
	d := dense(t, m, n, 14)
	x, _ := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := OMP(d, y, Options{MaxIterations: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 7 {
		t.Fatalf("iterations = %d > budget 7", res.Iterations)
	}
	// With too few iterations recovery is partial: the support found must
	// still be a subset of the real heavy coordinates plus noise — at
	// minimum, the algorithm returns something and doesn't crash.
	if len(res.Support) == 0 {
		t.Fatal("no columns selected within budget")
	}
}

func TestGreedyPicksLargestOutlierFirst(t *testing.T) {
	// OMP's selection order is by correlation magnitude, so the single
	// dominant outlier must be the first data column selected.
	r := xrand.New(7)
	const n, m = 200, 80
	d := dense(t, m, n, 15)
	x := make(linalg.Vector, n)
	x[17] = 1000
	x[42] = 1
	_ = r
	y := d.Measure(x, nil)
	res, err := OMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) == 0 || res.Support[0] != 17 {
		t.Fatalf("first selection = %v, want 17", res.Support)
	}
}

func TestModeTrace(t *testing.T) {
	r := xrand.New(8)
	const n, m, s = 256, 120, 10
	const bias = 5000.0
	d := dense(t, m, n, 16)
	x, _ := biasedSparse(r, n, s, bias, 100, 1000)
	y := d.Measure(x, nil)
	res, err := BOMP(d, y, Options{TraceMode: true, TraceResidual: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ModeTrace) != res.Iterations {
		t.Fatalf("mode trace length %d, iterations %d", len(res.ModeTrace), res.Iterations)
	}
	if len(res.ResidualTrace) != res.Iterations {
		t.Fatalf("residual trace length %d, iterations %d", len(res.ResidualTrace), res.Iterations)
	}
	// Paper Figure 4(b): the mode estimate stabilizes once all s outliers
	// plus the bias are selected; the final trace entry is the mode.
	last := res.ModeTrace[len(res.ModeTrace)-1]
	if math.Abs(last-bias) > 1e-3*bias {
		t.Fatalf("final traced mode %v, want %v", last, bias)
	}
	// Residual trace must be non-increasing (monotone projections).
	for i := 1; i < len(res.ResidualTrace); i++ {
		if res.ResidualTrace[i] > res.ResidualTrace[i-1]*(1+1e-9) {
			t.Fatalf("residual increased at %d: %v -> %v", i, res.ResidualTrace[i-1], res.ResidualTrace[i])
		}
	}
}

func TestEarlyStopOnResidualStall(t *testing.T) {
	// With far more iterations allowed than information in y, the
	// residual bottoms out; the §5 cutoff must fire rather than looping
	// to the budget.
	r := xrand.New(9)
	const n, m, s = 100, 60, 3
	d := dense(t, m, n, 17)
	x, _ := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := OMP(d, y, Options{MaxIterations: m, ResidualTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= m {
		t.Fatalf("ran to full budget %d; early stop never fired", res.Iterations)
	}
}

// Property: BOMP on (x + c·1) recovers mode(x) + c — bias equivariance.
func TestBOMPBiasEquivariance(t *testing.T) {
	d := dense(t, 80, 150, 18)
	check := func(seed uint64, shift8 int8) bool {
		r := xrand.New(seed)
		shift := float64(shift8) * 10
		x, _ := biasedSparse(r, 150, 4, 100, 10, 50)
		y1 := d.Measure(x, nil)
		shifted := x.Clone()
		for i := range shifted {
			shifted[i] += shift
		}
		y2 := d.Measure(shifted, nil)
		r1, err1 := BOMP(d, y1, Options{})
		r2, err2 := BOMP(d, y2, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs((r2.Mode-r1.Mode)-shift) < 1e-3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: recovery commutes with distribution — BOMP on the sum of
// local sketches equals BOMP on the sketch of the global vector. This is
// the end-to-end guarantee of the paradigm.
func TestDistributedEqualsCentralized(t *testing.T) {
	d := dense(t, 90, 200, 19)
	r := xrand.New(10)
	global, _ := biasedSparse(r, 200, 5, 300, 50, 200)
	// Split the global vector into 4 arbitrary slices.
	const nodes = 4
	slices := make([]linalg.Vector, nodes)
	for l := range slices {
		slices[l] = make(linalg.Vector, 200)
	}
	for i, v := range global {
		// Random split of v across nodes (can be negative shares).
		rest := v
		for l := 0; l < nodes-1; l++ {
			share := rest * (r.Float64()*2 - 0.5)
			slices[l][i] = share
			rest -= share
		}
		slices[nodes-1][i] = rest
	}
	sum := make(linalg.Vector, 90)
	for _, sl := range slices {
		sensing.AddSketch(sum, d.Measure(sl, nil))
	}
	central, err := BOMP(d, d.Measure(global, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := BOMP(d, sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(dist.Support, sortedCopy(central.Support)) {
		t.Fatalf("distributed support %v != centralized %v", dist.Support, central.Support)
	}
	if math.Abs(dist.Mode-central.Mode) > 1e-6 {
		t.Fatalf("distributed mode %v != centralized %v", dist.Mode, central.Mode)
	}
}

func sortedCopy(xs []int) []int {
	c := append([]int(nil), xs...)
	sort.Ints(c)
	return c
}

func TestBPExactRecovery(t *testing.T) {
	r := xrand.New(11)
	const n, m, s = 60, 35, 4
	d := dense(t, m, n, 20)
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := BP(d, y)
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("BP support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-5) {
		t.Fatal("BP recovered vector mismatch")
	}
}

func TestBPAgreesWithOMP(t *testing.T) {
	r := xrand.New(12)
	const n, m, s = 50, 30, 3
	d := dense(t, m, n, 21)
	x, _ := biasedSparse(r, n, s, 0, 2, 9)
	y := d.Measure(x, nil)
	bp, err := BP(d, y)
	if err != nil {
		t.Fatal(err)
	}
	omp, err := OMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bp.X.Equal(omp.X, 1e-4) {
		t.Fatal("BP and OMP disagree on exact-recovery instance")
	}
}

func TestSeededMatrixRecovery(t *testing.T) {
	// The column-regenerating representation must recover identically to
	// the dense one.
	p := sensing.Params{M: 80, N: 150, Seed: 22}
	d, err := sensing.NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := sensing.NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(13)
	x, _ := biasedSparse(r, p.N, 4, 200, 20, 90)
	y := d.Measure(x, nil)
	a, err := BOMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BOMP(sd, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.X.Equal(b.X, 1e-9) {
		t.Fatal("dense and seeded recovery disagree")
	}
	if a.Mode != b.Mode {
		t.Fatalf("modes differ: %v vs %v", a.Mode, b.Mode)
	}
}

func BenchmarkBOMP(b *testing.B) {
	r := xrand.New(1)
	const n, m, s = 1000, 300, 50
	d := dense(b, m, n, 1)
	x, _ := biasedSparse(r, n, s, 5000, 100, 1000)
	y := d.Measure(x, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BOMP(d, y, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOMPKnownMode(b *testing.B) {
	r := xrand.New(1)
	const n, m, s = 1000, 300, 50
	d := dense(b, m, n, 1)
	x, _ := biasedSparse(r, n, s, 5000, 100, 1000)
	y := d.Measure(x, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KnownModeOMP(d, y, 5000, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
