package recovery

// End-to-end recovery benchmarks for the perf trajectory (BENCH.json,
// via scripts/bench.sh). The Seeded instance is the one that matters
// for scaling: real mappers agree on Φ₀ by consensus seed and the
// aggregator regenerates columns during recovery, so its correlate
// kernel dominates the standing-query cost.

import (
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

func benchInstance(b *testing.B, mk func(sensing.Params) (sensing.Matrix, error), m, n, s int) (sensing.Matrix, linalg.Vector, int) {
	b.Helper()
	mat, err := mk(sensing.Params{M: m, N: n, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	x, _ := workload.MajorityDominated(n, s, 1800, 300, 3000, 10)
	return mat, mat.Measure(x, nil), s
}

func BenchmarkRecoveryBOMPDense(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewDense(p)
	}, 256, 2000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryBOMPSeeded(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewSeeded(p)
	}, 128, 1000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryKnownModeOMPSeeded(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewSeeded(p)
	}, 128, 1000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KnownModeOMP(mat, y, 1800, Options{MaxIterations: 3 * s}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryBOMPDenseWorkspace is BOMPDense through a reused
// Workspace — the standing-query steady state (0 allocs/op).
func BenchmarkRecoveryBOMPDenseWorkspace(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewDense(p)
	}, 256, 2000, 20)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryBOMPSeededWorkspace is BOMPSeeded through a reused
// Workspace.
func BenchmarkRecoveryBOMPSeededWorkspace(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewSeeded(p)
	}, 128, 1000, 10)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}
