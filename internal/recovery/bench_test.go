package recovery

// End-to-end recovery benchmarks for the perf trajectory (BENCH.json,
// via scripts/bench.sh). The Seeded instance is the one that matters
// for scaling: real mappers agree on Φ₀ by consensus seed and the
// aggregator regenerates columns during recovery, so its correlate
// kernel dominates the standing-query cost.

import (
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

func benchInstance(b *testing.B, mk func(sensing.Params) (sensing.Matrix, error), m, n, s int) (sensing.Matrix, linalg.Vector, int) {
	b.Helper()
	mat, err := mk(sensing.Params{M: m, N: n, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	x, _ := workload.MajorityDominated(n, s, 1800, 300, 3000, 10)
	return mat, mat.Measure(x, nil), s
}

func BenchmarkRecoveryBOMPDense(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewDense(p)
	}, 256, 2000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryBOMPSeeded(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewSeeded(p)
	}, 128, 1000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryKnownModeOMPSeeded(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewSeeded(p)
	}, 128, 1000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KnownModeOMP(mat, y, 1800, Options{MaxIterations: 3 * s}); err != nil {
			b.Fatal(err)
		}
	}
}

// batchBenchSetup builds the batched-recovery scenario: 8 standing span
// queries over the Seeded ensemble (128×1000, the scaling instance), each
// with the exact warm hint its previous-generation solve would have
// produced — the steady state of a standing query whose data drifts
// slowly enough that the selection order survives between folds.
func batchBenchSetup(b *testing.B) (sensing.Matrix, []*Workspace, []BatchItem) {
	b.Helper()
	mat, err := sensing.NewSeeded(sensing.Params{M: 128, N: 1000, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	const nq = 8
	wss := make([]*Workspace, nq)
	items := make([]BatchItem, nq)
	for i := range items {
		s := 6 + i%5
		x, _ := workload.MajorityDominated(1000, s, 1800+50*float64(i), 300, 3000, uint64(10+i))
		y := mat.Measure(x, nil)
		opt := Options{MaxIterations: 3*s + 1}
		prev, err := NewWorkspace().BOMP(mat, y, opt)
		if err != nil {
			b.Fatal(err)
		}
		wss[i] = NewWorkspace()
		items[i] = BatchItem{
			Y:    y,
			Warm: append([]int(nil), prev.Selection...),
			Opt:  opt,
		}
	}
	return mat, wss, items
}

// BenchmarkBatchedRecoveryCold8 is the baseline the batch engine is
// measured against: the same 8 standing queries served the pre-batch
// way, one independent cold workspace BOMP per query.
func BenchmarkBatchedRecoveryCold8(b *testing.B) {
	mat, wss, items := batchBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := range items {
			if _, err := wss[q].BOMP(mat, items[q].Y, items[q].Opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchedRecoveryWarm8 serves the same 8 queries through
// BOMPBatch with warm hints — one block correlation for all scripted
// iterations of all queries. BENCH.json pins this at ≥2× below Cold8;
// the results are bit-identical (TestBOMPBatchBitIdentical).
func BenchmarkBatchedRecoveryWarm8(b *testing.B) {
	mat, wss, items := batchBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BOMPBatch(mat, wss, items); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStartBOMP is the single-query warm path: one standing
// query re-solved with its own previous Selection as the hint.
func BenchmarkWarmStartBOMP(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewSeeded(p)
	}, 128, 1000, 10)
	opt := Options{MaxIterations: 3*s + 1}
	prev, err := NewWorkspace().BOMP(mat, y, opt)
	if err != nil {
		b.Fatal(err)
	}
	warm := append([]int(nil), prev.Selection...)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.BOMPWarm(mat, y, warm, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryBOMPDenseWorkspace is BOMPDense through a reused
// Workspace — the standing-query steady state (0 allocs/op).
func BenchmarkRecoveryBOMPDenseWorkspace(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewDense(p)
	}, 256, 2000, 20)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryBOMPSeededWorkspace is BOMPSeeded through a reused
// Workspace.
func BenchmarkRecoveryBOMPSeededWorkspace(b *testing.B) {
	mat, y, s := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewSeeded(p)
	}, 128, 1000, 10)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.BOMP(mat, y, Options{MaxIterations: 3*s + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// solverBenchCell builds one (s, M) cell instance for the per-solver
// benchmarks: exact-sparse biased data, dense ensemble, with BOMP given
// the same 3s+1 iteration budget Detect derives from k — the production
// comparison, where greedy growth scales with the query size and the
// first-order solvers do not.
func solverBenchCell(b *testing.B, m, n, s int) (sensing.Matrix, linalg.Vector) {
	b.Helper()
	mat, y, _ := benchInstance(b, func(p sensing.Params) (sensing.Matrix, error) {
		return sensing.NewDense(p)
	}, m, n, s)
	return mat, y
}

// BenchmarkSolver measures every recovery solver on a small-s cell
// (BOMP's home turf) and a large-s cell with measurement headroom (the
// selector's AIHT regime, where BENCH.json pins AIHT under BOMP).
func BenchmarkSolver(b *testing.B) {
	cells := []struct {
		name     string
		m, n, s  int
		iterOnly bool // skip the LP/ADMM convex solvers (seconds per solve)
	}{
		{"s12_m160_n800", 160, 800, 12, false},
		{"s64_m512_n2000", 512, 2000, 64, false},
		{"s128_m1024_n4000", 1024, 4000, 128, true},
	}
	for _, cell := range cells {
		mat, y := solverBenchCell(b, cell.m, cell.n, cell.s)
		s := cell.s
		runs := []struct {
			name string
			run  func() error
		}{
			{"bomp", func() error {
				_, err := BOMP(mat, y, Options{MaxIterations: 3*s + 1})
				return err
			}},
			{"cosamp", func() error {
				_, err := BiasedCoSaMP(mat, y, s, Options{})
				return err
			}},
			{"iht", func() error {
				_, err := BiasedIHT(mat, y, s, Options{})
				return err
			}},
			{"aiht", func() error {
				_, err := BiasedAIHT(mat, y, s, Options{})
				return err
			}},
		}
		if !cell.iterOnly {
			runs = append(runs,
				struct {
					name string
					run  func() error
				}{"dantzig", func() error {
					_, err := BiasedDantzig(mat, y, s, Options{})
					return err
				}},
				struct {
					name string
					run  func() error
				}{"bp", func() error {
					_, err := BiasedBP(mat, y)
					return err
				}},
			)
		}
		for _, r := range runs {
			b.Run(cell.name+"/"+r.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := r.run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
