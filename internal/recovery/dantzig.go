package recovery

import (
	"fmt"
	"math"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// Dantzig-selector solver constants. λ is chosen relative to the proxy
// scale ‖Φᵀy‖∞ — small enough that the exact-sparse regime reproduces
// the basis-pursuit answer, large enough to regularize when the
// sparsity assumption degrades (the solver's reason to exist).
const (
	dsLambdaFrac = 1e-3
	dsRho        = 1.0
	dsADMMTol    = 1e-9
	dsMaxRounds  = 6 // support-correction rounds after ADMM
)

// Dantzig solves the Dantzig selector (Candès & Tao 2007)
//
//	minimize ‖x‖₁  subject to  ‖Φᵀ(y − Φx)‖∞ ≤ λ
//
// via ADMM on the equivalent split problem: the β-update solves the
// ridge system (ΦᵀΦ + ρI)β = Φᵀy − z + u, the z-update clips the
// constraint residual Φᵀ(y − Φβ) + u into the ±λ box, and the scaled
// dual u accumulates what the clip removed. The ridge solve runs
// through the Woodbury identity against the M×M Gram ρI + ΦΦᵀ —
// factored ONCE by Cholesky, so each iteration costs four matrix-vector
// products and two triangular solves instead of an O(N³) solve in data
// space.
//
// The ℓ∞ constraint on the *correlated* residual is what distinguishes
// it from basis pursuit's equality constraint: with noise folded into
// the sketch, the selector tolerates a residual as long as no
// dictionary column can explain it — the robust choice when the data is
// only approximately sparse. After ADMM, the support is read off the
// largest |β| entries and polished by least squares with CoSaMP-style
// correction rounds, so exact-sparse instances recover exactly.
func Dantzig(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return dantzig(m, y, s, opt, false, nil)
}

// BiasedDantzig runs the Dantzig selector over BOMP's extended
// dictionary [φ₀, Φ₀], recovering data concentrated around an unknown
// bias with the bias in one sparse slot.
func BiasedDantzig(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return dantzig(m, y, s, opt, true, nil)
}

// BiasedDantzigWarm is BiasedDantzig seeded with a warm-start hint (a
// previous Result's extended-dictionary Selection, from any solver).
// The hint initializes β by one least-squares solve on the hinted
// support; when that already explains the measurement to tolerance the
// ADMM loop is skipped entirely — the standing-query fast path.
func BiasedDantzigWarm(m sensing.Matrix, y linalg.Vector, s int, warm []int, opt Options) (*Result, error) {
	return dantzig(m, y, s, opt, true, warm)
}

func dantzig(m sensing.Matrix, y linalg.Vector, s int, opt Options, biased bool, warm []int) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	if s < 1 {
		return nil, fmt.Errorf("recovery: Dantzig needs target sparsity >= 1, got %d", s)
	}
	var d dictionary
	size := p.N
	if biased {
		d = &biasedDict{m: m, phi0: m.ExtensionColumn(nil)}
		s++ // bias slot
		size = p.N + 1
	} else {
		d = &plainDict{m: m}
	}
	if s > size {
		s = size
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		return &Result{X: make(linalg.Vector, p.N)}, nil
	}
	tol := opt.residualTol() * yNorm

	// Warm fast path: if a least-squares fit on the hinted support
	// already explains y to tolerance, skip ADMM — the answer is
	// correct by construction (it IS a tolerance-satisfying sparse
	// explanation), just not bit-identical to a cold run's path. A
	// negative ResidualTol disables tolerance stops (the PR 6 sentinel
	// contract), and with them this shortcut.
	fastTol := warmFastTol(tol, yNorm)
	if len(warm) > 0 && fastTol > 0 {
		if sup := validWarmSupport(warm, size, s); len(sup) > 0 {
			kept, coef, resNorm, err := debiasPruned(d, y, yNorm, sup, p.M)
			if err == nil && len(kept) > 0 && resNorm <= fastTol {
				res := extendedResult(p.N, kept, coef, biased)
				res.Residual = resNorm
				return res, nil
			}
		}
	}

	// Materialize the (extended) dictionary once: amat is M×size, so
	// MulVec is Φ·x and MulVecT is Φᵀ·r. Same O(N·M) memory trade OLS
	// makes — the Dantzig selector is the robustness solver, not the
	// default hot path.
	amat := linalg.NewMatrix(p.M, size)
	colBuf := make(linalg.Vector, p.M)
	for j := 0; j < size; j++ {
		colBuf = d.col(j, colBuf)
		for i := 0; i < p.M; i++ {
			amat.Data[i*size+j] = colBuf[i]
		}
	}
	// Gram ρI + Φ·Φᵀ, factored once.
	gram := linalg.NewMatrix(p.M, p.M)
	for i := 0; i < p.M; i++ {
		ri := amat.Row(i)
		for j := i; j < p.M; j++ {
			v := ri.Dot(amat.Row(j))
			if i == j {
				v += dsRho
			}
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	chol, err := linalg.NewCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("recovery: Dantzig Gram factorization: %w", err)
	}

	aty := amat.MulVecT(y, nil)
	lambda := dsLambdaFrac * aty.NormInf()

	beta := make(linalg.Vector, size)
	z := make(linalg.Vector, size)
	u := make(linalg.Vector, size)
	q := make(linalg.Vector, size)
	betaOld := make(linalg.Vector, size)
	corr := make(linalg.Vector, size)
	t := make(linalg.Vector, p.M)
	w := make(linalg.Vector, p.M)
	img := make(linalg.Vector, p.M)
	r := make(linalg.Vector, p.M)

	// Note: the β-update below depends only on (z, u), so seeding β from
	// the warm hint would be inert — the fast path above is the only
	// useful warm start.

	maxADMM := opt.MaxIterations
	if maxADMM <= 0 {
		maxADMM = 400
	}
	iters := 0
	for it := 0; it < maxADMM; it++ {
		iters = it + 1
		copy(betaOld, beta)
		// β-update via Woodbury: β = (q − Φᵀ(ρI+ΦΦᵀ)⁻¹Φq)/ρ.
		for i := range q {
			q[i] = aty[i] - z[i] + u[i]
		}
		t = amat.MulVec(q, t)
		w, err = chol.SolveInto(w, t)
		if err != nil {
			return nil, err
		}
		beta = amat.MulVecT(w, beta)
		for i := range beta {
			beta[i] = (q[i] - beta[i]) / dsRho
		}
		// z-update: clip the constraint residual into the ±λ box.
		img = amat.MulVec(beta, img)
		for i := range r {
			r[i] = y[i] - img[i]
		}
		corr = amat.MulVecT(r, corr)
		for i := range z {
			v := corr[i] + u[i]
			if v > lambda {
				v = lambda
			} else if v < -lambda {
				v = -lambda
			}
			z[i] = v
			u[i] += corr[i] - z[i]
		}
		// Converged when β stops moving.
		maxDelta, scale := 0.0, 1.0
		for i := range beta {
			if dlt := math.Abs(beta[i] - betaOld[i]); dlt > maxDelta {
				maxDelta = dlt
			}
			if a := math.Abs(beta[i]); a > scale {
				scale = a
			}
		}
		if maxDelta <= dsADMMTol*scale {
			break
		}
	}

	// Read the support off β: strongest entries first, least-squares
	// polish, then CoSaMP-style correction rounds until the residual
	// meets the tolerance or stalls. The correction loop is what lets
	// the combination recover exactly even when ADMM's ℓ1 ranking is
	// slightly off.
	cands := topAbsIndices(beta, min(size, 3*s))
	// topAbsIndices sorts ascending; rebuild in |β|-descending order.
	sortByAbsDesc(cands, beta)
	qr := linalg.NewIncrementalQR(p.M)
	qr.SetTarget(y)
	var support []int
	for _, j := range cands {
		if beta[j] == 0 && len(support) > 0 {
			break
		}
		colBuf = d.col(j, colBuf)
		if _, err := qr.Append(colBuf); err != nil {
			continue
		}
		support = append(support, j)
		if qr.ResidualNorm() <= tol || len(support) == s {
			break
		}
	}
	resNorm := qr.ResidualNorm()
	if len(support) == 0 {
		resNorm = yNorm
	}
	residual := qr.Residual(make(linalg.Vector, p.M))

	stalled := false
	var trace []float64
	for round := 0; resNorm > tol && round < dsMaxRounds; round++ {
		prevNorm := resNorm
		corr = amat.MulVecT(residual, corr)
		merged := mergeSupports(sortedIdxCopy(support), topAbsIndices(corr, 2*s))
		kept, coef, _, err := lsOnSupport(d, y, merged, p.M)
		if err != nil {
			return nil, err
		}
		pruneToStrongest(&kept, &coef, s)
		kept2, _, norm2, err := lsOnSupport(d, y, kept, p.M)
		if err != nil {
			return nil, err
		}
		support = kept2
		// Recompute the residual for the next round.
		qr2 := linalg.NewIncrementalQR(p.M)
		qr2.SetTarget(y)
		for _, j := range support {
			colBuf = d.col(j, colBuf)
			if _, err := qr2.Append(colBuf); err != nil {
				continue
			}
		}
		residual = qr2.Residual(residual)
		resNorm = norm2
		if opt.TraceResidual {
			trace = append(trace, resNorm)
		}
		if resNorm <= tol {
			break
		}
		if !opt.DisableEarlyStop && resNorm >= prevNorm*(1-opt.stallRelTol()) {
			stalled = true
			break
		}
	}

	kept, coef, finalNorm, err := debiasPruned(d, y, yNorm, sortedIdxCopy(support), p.M)
	if err != nil {
		return nil, err
	}
	res := extendedResult(p.N, kept, coef, biased)
	res.Iterations = iters
	res.StoppedEarly = stalled
	res.ResidualTrace = trace
	res.Residual = finalNorm
	return res, nil
}

// lsOnSupport least-squares-solves y over the support, skipping
// dependent columns.
func lsOnSupport(d dictionary, y linalg.Vector, support []int, m int) ([]int, []float64, float64, error) {
	qr := linalg.NewIncrementalQR(m)
	qr.SetTarget(y)
	colBuf := make(linalg.Vector, m)
	var kept []int
	for _, j := range support {
		colBuf = d.col(j, colBuf)
		if _, err := qr.Append(colBuf); err != nil {
			continue
		}
		kept = append(kept, j)
	}
	if len(kept) == 0 {
		return nil, nil, y.Norm2(), nil
	}
	z, err := qr.Solve()
	if err != nil {
		return nil, nil, 0, err
	}
	return kept, append([]float64(nil), z...), qr.ResidualNorm(), nil
}

// pruneToStrongest keeps the s largest-|coef| (support, coef) pairs,
// re-sorted by index.
func pruneToStrongest(support *[]int, coef *[]float64, s int) {
	if len(*support) <= s {
		return
	}
	sup, cf := *support, *coef
	idx := make([]int, len(sup))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := math.Abs(cf[idx[a]]), math.Abs(cf[idx[b]])
		if da != db {
			return da > db
		}
		return sup[idx[a]] < sup[idx[b]]
	})
	idx = idx[:s]
	sort.Slice(idx, func(a, b int) bool { return sup[idx[a]] < sup[idx[b]] })
	newSup := make([]int, 0, s)
	newCoef := make([]float64, 0, s)
	for _, i := range idx {
		newSup = append(newSup, sup[i])
		newCoef = append(newCoef, cf[i])
	}
	*support = newSup
	*coef = newCoef
}

// sortByAbsDesc reorders the index slice by |v| descending (index
// ascending on ties).
func sortByAbsDesc(idx []int, v linalg.Vector) {
	sort.Slice(idx, func(a, b int) bool {
		da, db := math.Abs(v[idx[a]]), math.Abs(v[idx[b]])
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
}

func sortedIdxCopy(a []int) []int {
	out := append([]int(nil), a...)
	sort.Ints(out)
	return out
}
