package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func TestIHTExactRecovery(t *testing.T) {
	r := xrand.New(81)
	const n, m, s = 256, 110, 8
	d := dense(t, m, n, 82)
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := IHT(d, y, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-6) {
		t.Fatal("recovered vector mismatch")
	}
}

func TestBiasedIHTRecoversBias(t *testing.T) {
	r := xrand.New(83)
	const n, m, s = 256, 120, 6
	const bias = 5000.0
	d := dense(t, m, n, 84)
	x, want := biasedSparse(r, n, s, bias, 500, 3000)
	y := d.Measure(x, nil)
	res, err := BiasedIHT(d, y, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-bias) > 1e-2*bias {
		t.Fatalf("mode = %v, want %v", res.Mode, bias)
	}
	got := map[int]bool{}
	for _, j := range res.Support {
		got[j] = true
	}
	missed := 0
	for _, j := range want {
		if !got[j] {
			missed++
		}
	}
	if missed > 0 {
		t.Fatalf("missed %d planted outliers: %v vs %v", missed, res.Support, want)
	}
}

func TestIHTAgreesWithOMPAndCoSaMP(t *testing.T) {
	r := xrand.New(85)
	const n, m, s = 200, 100, 5
	d := dense(t, m, n, 86)
	for trial := 0; trial < 3; trial++ {
		x, _ := biasedSparse(r, n, s, 0, 2, 9)
		y := d.Measure(x, nil)
		a, err := OMP(d, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := CoSaMP(d, y, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := IHT(d, y, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.X.Equal(b.X, 1e-5) || !a.X.Equal(c.X, 1e-5) {
			t.Fatalf("trial %d: recovery families disagree", trial)
		}
	}
}

func TestIHTValidation(t *testing.T) {
	d := dense(t, 30, 60, 87)
	if _, err := IHT(d, make(linalg.Vector, 30), 0, Options{}); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := IHT(d, make(linalg.Vector, 29), 3, Options{}); err == nil {
		t.Fatal("bad dimension accepted")
	}
	res, err := IHT(d, make(linalg.Vector, 30), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X.Norm2() != 0 {
		t.Fatal("zero measurement produced nonzero recovery")
	}
}

func TestHardThreshold(t *testing.T) {
	v := linalg.Vector{5, -9, 2, 0, 7}
	hardThreshold(v, 2)
	if v[0] != 0 || v[1] != -9 || v[2] != 0 || v[4] != 7 {
		t.Fatalf("hardThreshold = %v", v)
	}
	w := linalg.Vector{1, 2}
	hardThreshold(w, 5)
	if w[0] != 1 || w[1] != 2 {
		t.Fatal("s >= len must be identity")
	}
}

func TestNonzeroIndices(t *testing.T) {
	got := nonzeroIndices(linalg.Vector{0, 3, 0, -1})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("nonzeroIndices = %v", got)
	}
}
