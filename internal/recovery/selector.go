package recovery

import (
	"fmt"

	"csoutlier/internal/sensing"
)

// Solver identifies one recovery algorithm in the multi-solver backend.
// All solvers answer the same biased sparse-recovery question and agree
// on exact-sparse instances (the simtest differential suite enforces
// this against the centralized oracle); they differ in cost profile and
// robustness, which is what Selector trades between.
type Solver int

const (
	// SolverAuto lets the Selector pick per query.
	SolverAuto Solver = iota
	// SolverBOMP is the paper's greedy bias-aware OMP — the default and
	// the only solver with a batched block-correlation engine.
	SolverBOMP
	// SolverOLS is greedy orthogonal least squares: picks the column
	// minimizing the post-projection residual instead of the best
	// correlation. Slower per iteration, occasionally better supports.
	SolverOLS
	// SolverCoSaMP is support-correcting matching pursuit with a target
	// sparsity.
	SolverCoSaMP
	// SolverIHT is fixed-step iterative hard thresholding.
	SolverIHT
	// SolverAIHT is adaptive-step (normalized) IHT: cheapest per
	// iteration at large target sparsity.
	SolverAIHT
	// SolverBP is the basis-pursuit LP relaxation (reference baseline;
	// heavy).
	SolverBP
	// SolverDantzig is the Dantzig-selector ADMM: the robustness choice
	// when the data is only approximately sparse.
	SolverDantzig
)

var solverNames = [...]string{
	SolverAuto:    "auto",
	SolverBOMP:    "bomp",
	SolverOLS:     "ols",
	SolverCoSaMP:  "cosamp",
	SolverIHT:     "iht",
	SolverAIHT:    "aiht",
	SolverBP:      "bp",
	SolverDantzig: "dantzig",
}

func (s Solver) String() string {
	if s < 0 || int(s) >= len(solverNames) {
		return fmt.Sprintf("solver(%d)", int(s))
	}
	return solverNames[s]
}

// Solvers lists every concrete solver (everything but SolverAuto), in
// stable order — the range the cross-check suite and the metrics
// pre-seeding iterate.
func Solvers() []Solver {
	return []Solver{SolverBOMP, SolverOLS, SolverCoSaMP, SolverIHT, SolverAIHT, SolverBP, SolverDantzig}
}

// ParseSolver parses a -solver flag value.
func ParseSolver(name string) (Solver, error) {
	for s, n := range solverNames {
		if n == name {
			return Solver(s), nil
		}
	}
	return 0, fmt.Errorf("recovery: unknown solver %q (want auto, bomp, ols, cosamp, iht, aiht, bp or dantzig)", name)
}

// QueryProfile is what the Selector sees about one outlier query.
type QueryProfile struct {
	// K is the number of outliers requested.
	K int
	// Budget is the iteration / target-sparsity budget derived from K
	// (or forced by configuration).
	Budget int
	// M, N are the sketch length and key-space size.
	M, N int
	// Kind is the measurement ensemble family.
	Kind sensing.Kind
	// PrevResidual is the previous generation's RELATIVE residual
	// (‖y − Φx̂‖/‖y‖) for this standing query, or 0 when unknown. A
	// persistently high value means the data is less sparse than the
	// budget assumes.
	PrevResidual float64
	// Warm reports whether the query carries a warm-start hint.
	Warm bool
}

// Selector picks a solver per query. The zero value is the automatic
// policy; setting Force pins every pick (the -solver flag).
type Selector struct {
	// Force, when not SolverAuto, overrides the policy for every query.
	Force Solver
}

// Selection-policy thresholds. They only steer cost/robustness — every
// candidate returns the oracle answer on recoverable instances, so a
// misjudged threshold costs time, not correctness.
const (
	// selAIHTMinK: below this many requested outliers BOMP's 3k+1 greedy
	// iterations are already cheap and its guarantees are the strongest.
	selAIHTMinK = 16
	// selAIHTMinRatio: AIHT's thresholding needs measurement headroom
	// M ≥ ratio·k to converge reliably at large sparsity.
	selAIHTMinRatio = 8
	// selDantzigResidual: a standing query whose previous generation
	// left this fraction of ‖y‖ unexplained is treated as
	// approximately-sparse data, where the Dantzig selector's ℓ∞
	// constraint is the robust formulation.
	selDantzigResidual = 0.25
	// selDantzigMaxElems bounds M·(N+1): the ADMM path materializes the
	// extended dictionary and an M×M Gram factorization.
	selDantzigMaxElems = int64(1) << 23
)

// Pick chooses the solver for one query.
func (sel Selector) Pick(p QueryProfile) Solver {
	if sel.Force != SolverAuto {
		return sel.Force
	}
	// Count-sketch columns collide by construction; the greedy extended-
	// dictionary path is the one tuned for that family (and pairs with
	// its recovery-free point-query fast path).
	if p.Kind == sensing.KindCountSketch {
		return SolverBOMP
	}
	// Residual history says the sparsity assumption is degrading: switch
	// the standing query to the robustness solver while the problem stays
	// small enough to materialize.
	if p.PrevResidual > selDantzigResidual && int64(p.M)*int64(p.N+1) <= selDantzigMaxElems {
		return SolverDantzig
	}
	// Large-s regime: first-order AIHT beats QR-augmented greedy growth.
	if p.K >= selAIHTMinK && p.M >= selAIHTMinRatio*p.K {
		return SolverAIHT
	}
	return SolverBOMP
}
