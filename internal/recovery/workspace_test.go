package recovery

import (
	"math"
	"runtime/debug"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/workload"
)

// bompFixture builds a matrix, a biased s-sparse signal and its sketch.
func bompFixture(t *testing.T, mk func(sensing.Params) (sensing.Matrix, error), p sensing.Params, s int) (sensing.Matrix, linalg.Vector, linalg.Vector) {
	t.Helper()
	m, err := mk(p)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := workload.MajorityDominated(p.N, s, 1800, 300, 3000, 10)
	y := m.Measure(x, nil)
	return m, x, y
}

// TestWorkspaceMatchesPackageFunctions checks that a reused Workspace
// returns the same recovery as the one-shot package functions, across
// repeated heterogeneous calls (BOMP, OMP, KnownModeOMP interleaved).
func TestWorkspaceMatchesPackageFunctions(t *testing.T) {
	p := sensing.Params{M: 64, N: 500, Seed: 41}
	m, _, y := bompFixture(t, func(p sensing.Params) (sensing.Matrix, error) { return sensing.NewDense(p) }, p, 8)
	opt := Options{MaxIterations: IterationBudget(8)}

	ws := NewWorkspace()
	for round := 0; round < 3; round++ {
		got, err := ws.BOMP(m, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BOMP(m, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mode != want.Mode || got.Iterations != want.Iterations {
			t.Fatalf("round %d: workspace BOMP (mode=%v, iters=%d) != package BOMP (mode=%v, iters=%d)",
				round, got.Mode, got.Iterations, want.Mode, want.Iterations)
		}
		if len(got.Support) != len(want.Support) {
			t.Fatalf("round %d: support %v != %v", round, got.Support, want.Support)
		}
		for i := range got.Support {
			if got.Support[i] != want.Support[i] || math.Float64bits(got.Coef[i]) != math.Float64bits(want.Coef[i]) {
				t.Fatalf("round %d: support/coef diverge at %d", round, i)
			}
		}

		gotO, err := ws.OMP(m, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		wantO, err := OMP(m, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotO.Support) != len(wantO.Support) || gotO.Iterations != wantO.Iterations {
			t.Fatalf("round %d: workspace OMP diverges from package OMP", round)
		}

		gotK, err := ws.KnownModeOMP(m, y, want.Mode, opt)
		if err != nil {
			t.Fatal(err)
		}
		wantK, err := KnownModeOMP(m, y, want.Mode, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotK.Support) != len(wantK.Support) || gotK.Mode != wantK.Mode {
			t.Fatalf("round %d: workspace KnownModeOMP diverges", round)
		}
	}
}

// TestWorkspaceMixedShapes replays one workspace across matrices of
// different sizes and ensembles; buffers must re-size correctly.
func TestWorkspaceMixedShapes(t *testing.T) {
	ws := NewWorkspace()
	shapes := []sensing.Params{
		{M: 32, N: 200, Seed: 1},
		{M: 8, N: 40, Seed: 2},
		{M: 64, N: 700, Seed: 3},
	}
	for _, p := range shapes {
		for _, mk := range []func(sensing.Params) (sensing.Matrix, error){
			func(p sensing.Params) (sensing.Matrix, error) { return sensing.NewDense(p) },
			func(p sensing.Params) (sensing.Matrix, error) { return sensing.NewSeeded(p) },
		} {
			m, _, y := bompFixture(t, mk, p, 4)
			got, err := ws.BOMP(m, y, Options{MaxIterations: IterationBudget(4)})
			if err != nil {
				t.Fatal(err)
			}
			want, err := BOMP(m, y, Options{MaxIterations: IterationBudget(4)})
			if err != nil {
				t.Fatal(err)
			}
			if got.Mode != want.Mode || len(got.Support) != len(want.Support) {
				t.Fatalf("shape %+v: workspace result diverges", p)
			}
		}
	}
}

// TestWorkspaceBOMPZeroAlloc pins the tentpole property: steady-state
// BOMP through a warm Workspace performs zero heap allocations. The
// geometry keeps M·N below the Dense parallel-correlation threshold so
// the run is single-goroutine and deterministic; GC is disabled during
// the measurement so sync.Pool reclamation cannot flake the count.
func TestWorkspaceBOMPZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pinning runs without -race")
	}
	p := sensing.Params{M: 48, N: 400, Seed: 43}
	m, err := sensing.NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := workload.MajorityDominated(p.N, 6, 1800, 300, 3000, 10)
	y := m.Measure(x, nil)
	opt := Options{MaxIterations: IterationBudget(6)}

	ws := NewWorkspace()
	if _, err := ws.BOMP(m, y, opt); err != nil { // warm-up sizes all buffers
		t.Fatal(err)
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.BOMP(m, y, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Workspace BOMP allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWorkspaceSeededZeroAlloc pins the same property on the Seeded
// ensemble below its parallel threshold (the serial regeneration path
// with pooled column scratch and stack PRNGs).
func TestWorkspaceSeededZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pinning runs without -race")
	}
	p := sensing.Params{M: 16, N: 30, Seed: 47} // N < 2·seededCorrChunk: serial path
	m, err := sensing.NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := workload.MajorityDominated(p.N, 2, 1800, 300, 3000, 10)
	y := m.MeasureSerial(x, nil)
	opt := Options{MaxIterations: IterationBudget(2)}

	ws := NewWorkspace()
	if _, err := ws.BOMP(m, y, opt); err != nil {
		t.Fatal(err)
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.BOMP(m, y, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Seeded Workspace BOMP allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWorkspaceRankDeficientReselect drives the engine into the
// rank-deficient branch (duplicate dictionary columns) and checks it
// recovers by re-running the argmax without error and without selecting
// the excluded column again.
func TestWorkspaceRankDeficientReselect(t *testing.T) {
	// A 4×6 matrix whose later columns duplicate earlier ones.
	mat := &dupDict{}
	y := linalg.Vector{1, 2, 3, 4}
	ws := NewWorkspace()
	sel, coef, _, err := ws.greedy(mat, y, 4, Options{MaxIterations: 4, DisableEarlyStop: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(coef) != len(sel) {
		t.Fatalf("no selection survived: sel=%v coef=%v", sel, coef)
	}
	seen := map[int]bool{}
	for _, j := range sel {
		if seen[j] {
			t.Fatalf("column %d selected twice: %v", j, sel)
		}
		seen[j] = true
	}
}

// dupDict is a small dictionary with duplicated columns: columns 3..5
// equal columns 0..2, forcing ErrRankDeficient on the second pick of any
// direction.
type dupDict struct{}

func (d *dupDict) size() int { return 6 }
func (d *dupDict) col(j int, dst linalg.Vector) linalg.Vector {
	if cap(dst) < 4 {
		dst = make(linalg.Vector, 4)
	}
	dst = dst[:4]
	for i := range dst {
		dst[i] = 0
	}
	dst[j%3] = 1
	return dst
}
func (d *dupDict) correlate(r, dst linalg.Vector) linalg.Vector {
	if cap(dst) < 6 {
		dst = make(linalg.Vector, 6)
	}
	dst = dst[:6]
	for j := 0; j < 6; j++ {
		dst[j] = r[j%3]
	}
	return dst
}
