package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// solverInstance is one exact-sparse biased recovery problem shared by
// the multi-solver tests.
type solverInstance struct {
	mat  sensing.Matrix
	x    linalg.Vector
	y    linalg.Vector
	want []int
}

func newSolverInstance(t testing.TB, m, n, s int, bias float64, seed uint64) *solverInstance {
	t.Helper()
	rng := xrand.New(seed)
	mat := dense(t, m, n, seed^0xabcd)
	x, want := biasedSparse(rng, n, s, bias, 100, 1000)
	return &solverInstance{mat: mat, x: x, y: mat.Measure(x, nil), want: want}
}

func checkExact(t *testing.T, label string, res *Result, inst *solverInstance) {
	t.Helper()
	if !supportEqual(res.Support, inst.want) {
		t.Fatalf("%s: support = %v, want %v", label, res.Support, inst.want)
	}
	scale := 1.0
	for _, v := range inst.x {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range inst.x {
		if d := math.Abs(res.X[i] - inst.x[i]); d > 1e-6*scale {
			t.Fatalf("%s: X[%d] = %g, want %g", label, i, res.X[i], inst.x[i])
		}
	}
}

// TestDantzigExactRecovery pins the Dantzig selector's exact-sparse
// behaviour: cold recovery matches the truth, and a warm restart from
// its own Selection takes the fast path — zero ADMM iterations.
func TestDantzigExactRecovery(t *testing.T) {
	inst := newSolverInstance(t, 160, 400, 12, 500, 9)
	res, err := BiasedDantzig(inst.mat, inst.y, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, "cold", res, inst)
	if math.Abs(res.Mode-500) > 1e-6*500 {
		t.Fatalf("mode = %g, want 500", res.Mode)
	}
	if len(res.Selection) != 13 { // bias + 12 outliers
		t.Fatalf("selection = %v, want 13 extended indices", res.Selection)
	}

	res2, err := BiasedDantzigWarm(inst.mat, inst.y, 12, res.Selection, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 0 {
		t.Errorf("warm restart ran %d ADMM iterations, want fast path (0)", res2.Iterations)
	}
	checkExact(t, "warm", res2, inst)
}

// TestAIHTExactRecovery pins adaptive-step IHT the same way: exact cold
// recovery, zero-iteration warm restart from its own Selection, and
// cross-solver warm-start (a BOMP Selection warms AIHT) — the property
// solver migration across fold generations relies on.
func TestAIHTExactRecovery(t *testing.T) {
	inst := newSolverInstance(t, 160, 400, 12, 500, 11)
	res, err := BiasedAIHT(inst.mat, inst.y, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, "cold", res, inst)
	if math.Abs(res.Mode-500) > 1e-6*500 {
		t.Fatalf("mode = %g, want 500", res.Mode)
	}

	res2, err := BiasedAIHTWarm(inst.mat, inst.y, 12, res.Selection, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 0 {
		t.Errorf("warm restart ran %d iterations, want fast path (0)", res2.Iterations)
	}
	checkExact(t, "warm", res2, inst)

	// Cross-solver migration: warm AIHT from BOMP's Selection.
	bomp, err := BOMP(inst.mat, inst.y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := BiasedAIHTWarm(inst.mat, inst.y, 12, bomp.Selection, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Iterations != 0 {
		t.Errorf("BOMP-warmed run ran %d iterations, want fast path (0)", res3.Iterations)
	}
	checkExact(t, "bomp-warm", res3, inst)
}

// TestAIHTGarbageWarmHintStillRecovers checks the warm-start safety
// contract: a stale or garbage hint costs iterations, never correctness.
func TestAIHTGarbageWarmHintStillRecovers(t *testing.T) {
	inst := newSolverInstance(t, 160, 400, 8, 500, 13)
	garbage := []int{0, 3, 7, 399, 401, -5, 401, 12} // dupes + out of range
	res, err := BiasedAIHTWarm(inst.mat, inst.y, 8, garbage, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, "garbage-warm", res, inst)
}

// TestBiasedBPExactRecovery checks the convex-relaxation path over the
// extended dictionary: unknown bias recovered into Mode, outliers exact.
func TestBiasedBPExactRecovery(t *testing.T) {
	inst := newSolverInstance(t, 40, 64, 4, 300, 17)
	res, err := BiasedBP(inst.mat, inst.y)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, "biased-bp", res, inst)
	if math.Abs(res.Mode-300) > 1e-6*300 {
		t.Fatalf("mode = %g, want 300", res.Mode)
	}
	if len(res.Selection) == 0 || res.Selection[0] != 0 {
		t.Fatalf("selection = %v, want bias column first", res.Selection)
	}
}

// TestSolversPruneOverShotSparsity drives every sparsity-targeted solver
// with a target far above the true sparsity and requires the reported
// support to stay exactly the true one: the spare slots fill with
// columns whose least-squares coefficients are float noise, and the
// coefficient prune must drop them rather than report phantom outliers.
func TestSolversPruneOverShotSparsity(t *testing.T) {
	const trueS = 4
	inst := newSolverInstance(t, 120, 200, trueS, 400, 19)
	solvers := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"cosamp", func() (*Result, error) { return BiasedCoSaMP(inst.mat, inst.y, 3*trueS, Options{}) }},
		{"iht", func() (*Result, error) { return BiasedIHT(inst.mat, inst.y, 3*trueS, Options{}) }},
		{"aiht", func() (*Result, error) { return BiasedAIHT(inst.mat, inst.y, 3*trueS, Options{}) }},
		{"dantzig", func() (*Result, error) { return BiasedDantzig(inst.mat, inst.y, 3*trueS, Options{}) }},
	}
	for _, sv := range solvers {
		res, err := sv.run()
		if err != nil {
			t.Fatalf("%s: %v", sv.name, err)
		}
		checkExact(t, sv.name, res, inst)
	}
}
