//go:build !race

package recovery

const raceEnabled = false
