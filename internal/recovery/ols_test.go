package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

func TestOLSExactRecovery(t *testing.T) {
	r := xrand.New(91)
	const n, m, s = 200, 90, 6
	d := dense(t, m, n, 92)
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := OLS(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-6) {
		t.Fatal("recovered vector mismatch")
	}
}

func TestBiasedOLSRecoversBias(t *testing.T) {
	r := xrand.New(93)
	const n, m, s = 200, 100, 6
	const bias = 1800.0
	d := dense(t, m, n, 94)
	x, want := biasedSparse(r, n, s, bias, 300, 2000)
	y := d.Measure(x, nil)
	res, err := BiasedOLS(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-bias) > 1e-2*bias {
		t.Fatalf("mode = %v, want %v", res.Mode, bias)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
}

func TestOLSAgreesWithOMPOnGaussianEnsembles(t *testing.T) {
	// On incoherent (i.i.d. Gaussian) dictionaries the OLS and OMP
	// selections essentially coincide (the [6] distinction matters on
	// coherent dictionaries).
	r := xrand.New(95)
	const n, m, s = 150, 80, 5
	d := dense(t, m, n, 96)
	for trial := 0; trial < 3; trial++ {
		x, _ := biasedSparse(r, n, s, 0, 2, 9)
		y := d.Measure(x, nil)
		a, err := OMP(d, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := OLS(d, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.X.Equal(b.X, 1e-5) {
			t.Fatalf("trial %d: OMP and OLS disagree on Gaussian ensemble", trial)
		}
	}
}

func TestOLSBeatsOMPOnCoherentDictionary(t *testing.T) {
	// Construct a dictionary where OMP's raw-correlation rule is fooled:
	// a decoy column nearly parallel to the sum of two signal columns.
	// OLS's normalized rule recovers the true support after deflation.
	// (We only assert OLS gets the truth; OMP may or may not.)
	const m = 12
	cols := []linalg.Vector{}
	e := func(i int) linalg.Vector {
		v := make(linalg.Vector, m)
		v[i] = 1
		return v
	}
	a, b := e(0), e(1)
	decoy := make(linalg.Vector, m)
	decoy.AddScaled(1/math.Sqrt2, a)
	decoy.AddScaled(1/math.Sqrt2, b)
	decoy[2] = 0.05
	decoy.Scale(1 / decoy.Norm2())
	cols = append(cols, a, b, decoy, e(3), e(4))
	fm := &fixedMatrix{m: m, cols: cols}

	x := make(linalg.Vector, len(cols))
	x[0], x[1] = 1, 1
	y := fm.Measure(x, nil)
	res, err := OLS(fm, y, Options{MaxIterations: 4, ResidualTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.X.Norm2() == 0 {
		t.Fatal("OLS recovered nothing")
	}
	if !res.X.Equal(x, 1e-8) {
		t.Fatalf("OLS did not recover the coherent-instance truth: %v", res.X)
	}
}

// fixedMatrix is a sensing.Matrix over explicit columns, for adversarial
// dictionary tests.
type fixedMatrix struct {
	m    int
	cols []linalg.Vector
}

func (f *fixedMatrix) Params() sensing.Params {
	return sensing.Params{M: f.m, N: len(f.cols), Seed: 0}
}
func (f *fixedMatrix) Col(j int, dst linalg.Vector) linalg.Vector {
	if cap(dst) < f.m {
		dst = make(linalg.Vector, f.m)
	}
	dst = dst[:f.m]
	copy(dst, f.cols[j])
	return dst
}
func (f *fixedMatrix) Measure(x, dst linalg.Vector) linalg.Vector {
	if cap(dst) < f.m {
		dst = make(linalg.Vector, f.m)
	}
	dst = dst[:f.m]
	for i := range dst {
		dst[i] = 0
	}
	for j, v := range x {
		dst.AddScaled(v, f.cols[j])
	}
	return dst
}
func (f *fixedMatrix) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	x := make(linalg.Vector, len(f.cols))
	for k, j := range idx {
		x[j] += vals[k]
	}
	return f.Measure(x, dst)
}
func (f *fixedMatrix) Correlate(r, dst linalg.Vector) linalg.Vector {
	if cap(dst) < len(f.cols) {
		dst = make(linalg.Vector, len(f.cols))
	}
	dst = dst[:len(f.cols)]
	for j, c := range f.cols {
		dst[j] = c.Dot(r)
	}
	return dst
}
func (f *fixedMatrix) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	if cap(dst) < f.m {
		dst = make(linalg.Vector, f.m)
	}
	dst = dst[:f.m]
	for i := range dst {
		dst[i] = 0
	}
	for _, c := range f.cols {
		dst.Add(c)
	}
	return dst.Scale(1 / math.Sqrt(float64(len(f.cols))))
}
