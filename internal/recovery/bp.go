package recovery

import (
	"fmt"
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/lp"
	"csoutlier/internal/sensing"
)

// Basis-pursuit solver constants. Small instances go through the exact
// two-phase simplex; past bpLPMaxDim dictionary columns the dense
// tableau's pivot count (and its tolerance-driven degeneracy stalls)
// grow faster than the problem, so larger instances run ADMM projection
// splitting against the same M×M Gram factorization the Dantzig
// selector uses.
const (
	bpLPMaxDim   = 200  // LP path: at most this many dictionary columns
	bpRho        = 1.0  // ADMM penalty (problem is normalized to ‖y‖=1)
	bpMaxADMM    = 600  // ADMM iteration cap
	bpCheckEvery = 25   // ADMM early-exit support check cadence
	bpRidge      = 1e-8 // Gram diagonal ridge (factorization robustness)
)

// BP recovers a sparse-at-zero vector by Basis Pursuit (paper §2.2):
//
//	minimize ‖x‖₁  subject to  y = Φ₀·x.
//
// Small instances solve the standard-form LP over the split x = u − v,
// u,v ≥ 0 (minimize Σ(u+v) s.t. [Φ₀, −Φ₀]·[u; v] = y) with the exact
// two-phase simplex; larger ones run ADMM projection splitting (the
// x-update projects onto {x : Φ₀x = y} through a Cholesky-factored
// M×M Gram, the z-update soft-thresholds), which scales where the
// dense tableau stalls. The paper prefers OMP over BP for the outlier
// problem (speed, and OMP's greediness surfaces the significant
// components first); BP is kept as the convex-relaxation baseline.
func BP(m sensing.Matrix, y linalg.Vector) (*Result, error) {
	return bp(m, y, false)
}

// BiasedBP runs Basis Pursuit over BOMP's extended dictionary [φ₀, Φ₀],
// recovering data concentrated around an unknown bias with the bias in
// one sparse slot — the convex-relaxation counterpart of BOMP. Unlike
// the sparsity-targeted solvers it needs no target s: the ℓ1 objective
// finds the sparsest consistent explanation on its own.
func BiasedBP(m sensing.Matrix, y linalg.Vector) (*Result, error) {
	return bp(m, y, true)
}

func bp(m sensing.Matrix, y linalg.Vector, biased bool) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	var d dictionary
	size := p.N
	if biased {
		d = &biasedDict{m: m, phi0: m.ExtensionColumn(nil)}
		size = p.N + 1
	} else {
		d = &plainDict{m: m}
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		return &Result{X: make(linalg.Vector, p.N)}, nil
	}
	// Solve against y/‖y‖: both paths' tolerances are absolute (the
	// simplex tableau's ratio test, the ADMM shrinkage threshold), so a
	// large-valued measurement (a mode in the thousands over hundreds of
	// keys) would swamp them. The columns are unit-norm already;
	// normalizing the RHS keeps everything O(1). The ℓ1 problem is
	// scale-equivariant, so the support is unchanged, and the
	// least-squares debias at the end runs against the original y,
	// restoring the scale.
	yUnit := make(linalg.Vector, p.M)
	for i, v := range y {
		yUnit[i] = v / yNorm
	}
	if size <= bpLPMaxDim {
		return bpLP(d, p, y, yUnit, yNorm, size, biased)
	}
	return bpADMM(d, p, y, yUnit, yNorm, size, biased)
}

// bpLP solves the exact LP formulation with the two-phase simplex.
func bpLP(d dictionary, p sensing.Params, y, yUnit linalg.Vector, yNorm float64, size int, biased bool) (*Result, error) {
	n2 := 2 * size
	a := make([]float64, p.M*n2)
	col := make(linalg.Vector, p.M)
	for j := 0; j < size; j++ {
		col = d.col(j, col)
		for i := 0; i < p.M; i++ {
			a[i*n2+j] = col[i]
			a[i*n2+size+j] = -col[i]
		}
	}
	c := make([]float64, n2)
	for j := range c {
		c[j] = 1
	}
	sol, _, err := lp.Solve(lp.Problem{M: p.M, N: n2, A: a, B: yUnit, C: c}, lp.Options{})
	if err != nil {
		return nil, fmt.Errorf("recovery: basis pursuit LP: %w", err)
	}
	// On the unit-scale solution the coefficient prune floor is relative
	// by construction: anything under coefPruneFrac is simplex-tolerance
	// residue, not a recovered component. (The old absolute 1e-8 cutoff
	// on the unscaled solution reported phantom support on large-valued
	// data.)
	const floor = coefPruneFrac
	var support []int
	for j := 0; j < size; j++ {
		if math.Abs(sol[j]-sol[size+j]) > floor {
			support = append(support, j)
		}
	}
	// Debias: the LP meets the equality constraint only to simplex
	// tolerance; a least-squares polish on its support makes exact-sparse
	// instances exact and fills in Mode/Selection for the biased variant.
	kept, coef, resNorm, err := debiasPruned(d, y, yNorm, support, p.M)
	if err != nil {
		return nil, err
	}
	res := extendedResult(p.N, kept, coef, biased)
	res.Iterations = len(res.Support)
	res.Residual = resNorm
	return res, nil
}

// bpADMM solves basis pursuit by ADMM projection splitting (Boyd et al.
// §6.2): x-update projects z−u onto the constraint set {x : Φx = y}
// through the once-factored Gram ΦΦᵀ, z-update soft-thresholds x+u at
// 1/ρ, u accumulates the gap. Every few iterations the (sparse by
// construction) z is tried as a support: if a least-squares fit on it
// already explains y, the solve exits early — on exact-sparse instances
// that happens long before full ADMM convergence.
func bpADMM(d dictionary, p sensing.Params, y, yUnit linalg.Vector, yNorm float64, size int, biased bool) (*Result, error) {
	amat := linalg.NewMatrix(p.M, size)
	colBuf := make(linalg.Vector, p.M)
	for j := 0; j < size; j++ {
		colBuf = d.col(j, colBuf)
		for i := 0; i < p.M; i++ {
			amat.Data[i*size+j] = colBuf[i]
		}
	}
	gram := linalg.NewMatrix(p.M, p.M)
	for i := 0; i < p.M; i++ {
		ri := amat.Row(i)
		for j := i; j < p.M; j++ {
			v := ri.Dot(amat.Row(j))
			if i == j {
				v += bpRidge
			}
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	chol, err := linalg.NewCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("recovery: basis pursuit Gram factorization: %w", err)
	}

	// Acceptance for the early support exits: float noise through the QR
	// debias sits around 1e-8 of ‖y‖, so the default 1e-9 tolerance is
	// floored the same way the warm fast paths are.
	accept := warmFastTol(Options{}.residualTol()*yNorm, yNorm)
	supCap := p.M / 2
	if supCap < 1 {
		supCap = 1
	}

	x := make(linalg.Vector, size)
	z := make(linalg.Vector, size)
	u := make(linalg.Vector, size)
	v := make(linalg.Vector, size)
	t := make(linalg.Vector, p.M)
	w := make(linalg.Vector, p.M)
	const shrink = 1 / bpRho
	iters := 0
	for it := 0; it < bpMaxADMM; it++ {
		iters = it + 1
		// x-update: project z − u onto {x : Φx = yUnit}.
		for i := range v {
			v[i] = z[i] - u[i]
		}
		t = amat.MulVec(v, t)
		for i := range t {
			t[i] -= yUnit[i]
		}
		w, err = chol.SolveInto(w, t)
		if err != nil {
			return nil, err
		}
		x = amat.MulVecT(w, x)
		for i := range x {
			x[i] = v[i] - x[i]
		}
		// z-update: soft-threshold; u-update: accumulate the gap.
		gap, scale := 0.0, 1.0
		for i := range z {
			xi := x[i] + u[i]
			switch {
			case xi > shrink:
				z[i] = xi - shrink
			case xi < -shrink:
				z[i] = xi + shrink
			default:
				z[i] = 0
			}
			u[i] += x[i] - z[i]
			if g := math.Abs(x[i] - z[i]); g > gap {
				gap = g
			}
			if a := math.Abs(x[i]); a > scale {
				scale = a
			}
		}
		if gap <= dsADMMTol*scale {
			break
		}
		if (it+1)%bpCheckEvery == 0 {
			var sup []int
			for j, zj := range z {
				if zj != 0 {
					sup = append(sup, j)
				}
			}
			if len(sup) > 0 && len(sup) <= supCap {
				kept, coef, resNorm, err := debiasPruned(d, y, yNorm, sup, p.M)
				if err == nil && len(kept) > 0 && resNorm <= accept {
					res := extendedResult(p.N, kept, coef, biased)
					res.Iterations = iters
					res.Residual = resNorm
					return res, nil
				}
			}
		}
	}

	// Read the support off the ℓ1 solution, strongest entries first, and
	// polish by least squares with the Dantzig selector's correction
	// rounds — the combination recovers exactly even when the ADMM
	// ranking is slightly off at the cap.
	ranking := z
	if z.Norm2() == 0 {
		ranking = x
	}
	cands := topAbsIndices(ranking, min(size, supCap))
	sortByAbsDesc(cands, ranking)
	qr := linalg.NewIncrementalQR(p.M)
	qr.SetTarget(y)
	var support []int
	for _, j := range cands {
		if ranking[j] == 0 && len(support) > 0 {
			break
		}
		colBuf = d.col(j, colBuf)
		if _, err := qr.Append(colBuf); err != nil {
			continue
		}
		support = append(support, j)
		if qr.ResidualNorm() <= accept || len(support) == supCap {
			break
		}
	}
	resNorm := qr.ResidualNorm()
	if len(support) == 0 {
		resNorm = yNorm
	}
	residual := qr.Residual(make(linalg.Vector, p.M))
	corr := make(linalg.Vector, size)
	for round := 0; resNorm > accept && round < dsMaxRounds; round++ {
		prevNorm := resNorm
		corr = amat.MulVecT(residual, corr)
		merged := mergeSupports(sortedIdxCopy(support), topAbsIndices(corr, supCap))
		kept, coef, _, err := lsOnSupport(d, y, merged, p.M)
		if err != nil {
			return nil, err
		}
		pruneToStrongest(&kept, &coef, supCap)
		kept2, _, norm2, err := lsOnSupport(d, y, kept, p.M)
		if err != nil {
			return nil, err
		}
		support = kept2
		qr2 := linalg.NewIncrementalQR(p.M)
		qr2.SetTarget(y)
		for _, j := range support {
			colBuf = d.col(j, colBuf)
			if _, err := qr2.Append(colBuf); err != nil {
				continue
			}
		}
		residual = qr2.Residual(residual)
		resNorm = norm2
		if resNorm <= accept || resNorm >= prevNorm {
			break
		}
	}

	kept, coef, finalNorm, err := debiasPruned(d, y, yNorm, sortedIdxCopy(support), p.M)
	if err != nil {
		return nil, err
	}
	res := extendedResult(p.N, kept, coef, biased)
	res.Iterations = iters
	res.Residual = finalNorm
	return res, nil
}
