package recovery

import (
	"fmt"
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/lp"
	"csoutlier/internal/sensing"
)

// BP recovers a sparse-at-zero vector by Basis Pursuit (paper §2.2):
//
//	minimize ‖x‖₁  subject to  y = Φ₀·x,
//
// transformed into the standard-form LP over the split x = u − v, u,v ≥ 0:
//
//	minimize Σ(u+v)  subject to  [Φ₀, −Φ₀]·[u; v] = y.
//
// The paper prefers OMP over BP for the outlier problem (speed, and
// OMP's greediness surfaces the significant components first); BP is
// kept as the reference convex-relaxation baseline. Complexity is
// polynomial but heavy — use on moderate N only.
func BP(m sensing.Matrix, y linalg.Vector) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	n2 := 2 * p.N
	a := make([]float64, p.M*n2)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		m.Col(j, col)
		for i := 0; i < p.M; i++ {
			a[i*n2+j] = col[i]
			a[i*n2+p.N+j] = -col[i]
		}
	}
	c := make([]float64, n2)
	for j := range c {
		c[j] = 1
	}
	sol, _, err := lp.Solve(lp.Problem{M: p.M, N: n2, A: a, B: y, C: c}, lp.Options{})
	if err != nil {
		return nil, fmt.Errorf("recovery: basis pursuit LP: %w", err)
	}
	res := &Result{X: make(linalg.Vector, p.N)}
	for j := 0; j < p.N; j++ {
		v := sol[j] - sol[p.N+j]
		if math.Abs(v) < 1e-8 {
			continue
		}
		res.X[j] = v
		res.Support = append(res.Support, j)
		res.Coef = append(res.Coef, v)
	}
	res.Iterations = len(res.Support)
	return res, nil
}
