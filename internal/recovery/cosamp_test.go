package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func TestCoSaMPExactRecovery(t *testing.T) {
	r := xrand.New(21)
	const n, m, s = 256, 100, 8
	d := dense(t, m, n, 41)
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	res, err := CoSaMP(d, y, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-6) {
		t.Fatal("recovered vector mismatch")
	}
}

func TestBiasedCoSaMPRecoversBias(t *testing.T) {
	r := xrand.New(22)
	const n, m, s = 256, 110, 8
	const bias = 5000.0
	d := dense(t, m, n, 42)
	x, want := biasedSparse(r, n, s, bias, 100, 1000)
	y := d.Measure(x, nil)
	res, err := BiasedCoSaMP(d, y, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-bias) > 1e-3*bias {
		t.Fatalf("mode = %v, want %v", res.Mode, bias)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
}

func TestCoSaMPMatchesOMPOnExactInstances(t *testing.T) {
	r := xrand.New(23)
	const n, m, s = 180, 90, 5
	d := dense(t, m, n, 43)
	for trial := 0; trial < 5; trial++ {
		x, _ := biasedSparse(r, n, s, 0, 2, 9)
		y := d.Measure(x, nil)
		a, err := OMP(d, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := CoSaMP(d, y, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.X.Equal(b.X, 1e-5) {
			t.Fatalf("trial %d: OMP and CoSaMP disagree", trial)
		}
	}
}

func TestCoSaMPValidation(t *testing.T) {
	d := dense(t, 30, 60, 44)
	y := make(linalg.Vector, 30)
	if _, err := CoSaMP(d, y, 0, Options{}); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := CoSaMP(d, make(linalg.Vector, 29), 2, Options{}); err == nil {
		t.Fatal("bad dimension accepted")
	}
	// Zero measurement → zero vector, no error.
	res, err := CoSaMP(d, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X.Norm2() != 0 {
		t.Fatal("zero measurement produced nonzero recovery")
	}
}

func TestCoSaMPClampsSparsityToM(t *testing.T) {
	// s too large for the measurement: must clamp, not blow up.
	r := xrand.New(24)
	const n, m = 100, 30
	d := dense(t, m, n, 45)
	x, _ := biasedSparse(r, n, 3, 0, 1, 5)
	y := d.Measure(x, nil)
	res, err := CoSaMP(d, y, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) > m/3 {
		t.Fatalf("support size %d exceeds M/3", len(res.Support))
	}
}

func TestTopAbsIndices(t *testing.T) {
	v := linalg.Vector{1, -9, 3, 0, 9}
	got := topAbsIndices(v, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("topAbsIndices = %v", got)
	}
	if got := topAbsIndices(v, 99); len(got) != len(v) {
		t.Fatalf("k>len = %v", got)
	}
}

func TestMergeSupports(t *testing.T) {
	got := mergeSupports([]int{1, 3, 5}, []int{2, 3, 6})
	want := []int{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("mergeSupports = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeSupports = %v, want %v", got, want)
		}
	}
	if got := mergeSupports(nil, []int{1}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("nil merge = %v", got)
	}
}
