package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// BOMP over the SRHT ensemble: the O(P log P) correlation path must
// recover exactly like the Gaussian ensembles.
func TestBOMPWithSRHT(t *testing.T) {
	r := xrand.New(71)
	const n, m, s = 300, 130, 6
	const bias = 1800.0
	mat, err := sensing.NewSRHT(sensing.Params{M: m, N: n, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	x, want := biasedSparse(r, n, s, bias, 300, 2000)
	y := mat.Measure(x, nil)
	res, err := BOMP(mat, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-bias) > 1e-3*bias {
		t.Fatalf("mode = %v, want %v", res.Mode, bias)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-3) {
		t.Fatal("recovered vector mismatch")
	}
}

func TestOMPWithSRHTExact(t *testing.T) {
	r := xrand.New(73)
	const n, m, s = 256, 100, 7
	mat, err := sensing.NewSRHT(sensing.Params{M: m, N: n, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := mat.Measure(x, nil)
	res, err := OMP(mat, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-6) {
		t.Fatal("recovered vector mismatch")
	}
}
