package recovery

import (
	"fmt"
	"math"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// CoSaMP implements Compressive Sampling Matching Pursuit (Needell &
// Tropp 2009) for sparse-at-zero data: per iteration it merges the 2s
// strongest residual correlations into the current support, solves the
// least-squares problem over the merged support, prunes back to the s
// strongest coefficients, and repeats until the residual stalls.
//
// It is provided as the second recovery family next to OMP: CoSaMP
// offers uniform guarantees and can correct early support mistakes that
// greedy OMP commits to, at the price of a target sparsity s that must
// be supplied up front. The paper's pipeline uses OMP (no sparsity
// estimate needed, natural any-time behaviour for k-outlier queries);
// CoSaMP backs the cross-validation tests and the recovery ablations.
func CoSaMP(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return cosamp(m, y, s, opt, false)
}

// BiasedCoSaMP is CoSaMP over BOMP's extended dictionary [φ₀, Φ₀]: it
// recovers data concentrated around an unknown bias, like BOMP, but
// with CoSaMP's support-correction iteration. The bias occupies one of
// the s+1 sparse slots.
func BiasedCoSaMP(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return cosamp(m, y, s, opt, true)
}

func cosamp(m sensing.Matrix, y linalg.Vector, s int, opt Options, biased bool) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	if s < 1 {
		return nil, fmt.Errorf("recovery: CoSaMP needs target sparsity >= 1, got %d", s)
	}
	var d dictionary
	if biased {
		d = &biasedDict{m: m, phi0: m.ExtensionColumn(nil)}
		s++ // one slot for the bias column
	} else {
		d = &plainDict{m: m}
	}
	if s > p.M/3 {
		// LS over the 3s merged columns must stay overdetermined.
		s = p.M / 3
		if s < 1 {
			s = 1
		}
	}

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 50
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		res := &Result{X: make(linalg.Vector, p.N)}
		return res, nil
	}
	tol := opt.residualTol() * yNorm

	var (
		support  []int // current s-sparse support (sorted)
		coef     []float64
		residual = y.Clone()
		corr     linalg.Vector
		colBuf   linalg.Vector
		prevNorm = math.Inf(1)
	)
	for iter := 0; iter < maxIter; iter++ {
		// Identify: 2s strongest proxy entries.
		corr = d.correlate(residual, corr)
		merged := mergeSupports(support, topAbsIndices(corr, 2*s))

		// Solve LS over the merged support.
		qr := linalg.NewIncrementalQR(p.M)
		qr.SetTarget(y)
		var kept []int
		for _, j := range merged {
			colBuf = d.col(j, colBuf)
			if _, err := qr.Append(colBuf); err != nil {
				continue // numerically dependent column: skip
			}
			kept = append(kept, j)
		}
		z, err := qr.Solve()
		if err != nil {
			return nil, err
		}

		// Prune to the s largest coefficients.
		type jc struct {
			j int
			c float64
		}
		items := make([]jc, len(kept))
		for i, j := range kept {
			items[i] = jc{j, z[i]}
		}
		sort.Slice(items, func(a, b int) bool {
			da, db := math.Abs(items[a].c), math.Abs(items[b].c)
			if da != db {
				return da > db
			}
			return items[a].j < items[b].j
		})
		if len(items) > s {
			items = items[:s]
		}
		sort.Slice(items, func(a, b int) bool { return items[a].j < items[b].j })
		support = support[:0]
		coef = coef[:0]
		for _, it := range items {
			support = append(support, it.j)
			coef = append(coef, it.c)
		}

		// Re-solve on the pruned support for the exact residual.
		qr2 := linalg.NewIncrementalQR(p.M)
		qr2.SetTarget(y)
		for i, j := range support {
			colBuf = d.col(j, colBuf)
			if _, err := qr2.Append(colBuf); err != nil {
				return nil, fmt.Errorf("recovery: CoSaMP pruned support became dependent at %d: %w", i, err)
			}
		}
		z2, err := qr2.Solve()
		if err != nil {
			return nil, err
		}
		copy(coef, z2)
		residual = qr2.Residual(residual)
		norm := qr2.ResidualNorm()
		if norm <= tol {
			break
		}
		if !opt.DisableEarlyStop && norm >= prevNorm*(1-opt.stallRelTol()) {
			break
		}
		prevNorm = norm
	}

	// Final debias with coefficient pruning: when the target sparsity
	// exceeds the true one, CoSaMP fills the spare slots with junk
	// columns whose least-squares coefficients sit at float-noise level —
	// without the prune they would surface as phantom outliers.
	kept, coefOut, resNorm, err := debiasPruned(d, y, yNorm, support, p.M)
	if err != nil {
		return nil, err
	}
	res := extendedResult(p.N, kept, coefOut, biased)
	res.Iterations = len(support)
	res.Residual = resNorm
	return res, nil
}

// topAbsIndices returns the indices of the k largest |v| entries.
func topAbsIndices(v linalg.Vector, k int) []int {
	if k <= 0 {
		return nil
	}
	if k >= len(v) {
		out := make([]int, len(v))
		for i := range out {
			out[i] = i
		}
		return out
	}
	// O(N) threshold by quickselect, then two gather passes: everything
	// strictly above the k-th largest magnitude, and ties in ascending
	// index order until k entries are kept — the same set a full
	// magnitude-descending sort with index tie-breaks selects, without
	// the O(N log N) comparator-closure sort (the IHT family calls this
	// on every step proposal, where the sort dominated the profile).
	work := make([]float64, len(v))
	for i, x := range v {
		work[i] = math.Abs(x)
	}
	th := kthLargest(work, k)
	out := make([]int, 0, k)
	for i, x := range v {
		if math.Abs(x) > th {
			out = append(out, i)
		}
	}
	need := k - len(out)
	for i, x := range v {
		if need == 0 {
			break
		}
		if math.Abs(x) == th {
			out = append(out, i)
			need--
		}
	}
	sort.Ints(out)
	return out
}

// kthLargest returns the k-th largest value of a (1 ≤ k ≤ len(a)),
// partially reordering a in place. Hoare quickselect in descending
// order with a middle-element pivot; the returned value is deterministic
// (it is a rank statistic), whatever the pivot path.
func kthLargest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[lo+(hi-lo)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] > p {
				i++
			}
			for a[j] < p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch t := k - 1; {
		case t <= j:
			hi = j
		case t >= i:
			lo = i
		default:
			return p // between the partitions: equal to the pivot
		}
	}
	return a[lo]
}

// mergeSupports returns the sorted union of two sorted index sets.
func mergeSupports(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
