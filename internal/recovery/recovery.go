// Package recovery implements the sparse-recovery algorithms the paper's
// aggregator runs on the global measurement: standard Orthogonal Matching
// Pursuit (OMP, §2.2 / Algorithm 2), the paper's new Biased OMP (BOMP,
// §3.2 / Algorithm 1) that additionally recovers the unknown mode the
// data concentrates around, OMP with an externally known mode (the
// baseline of Figure 4a), and Basis Pursuit (BP) via linear programming.
//
// All algorithms share one greedy engine: per iteration, correlate every
// dictionary column with the current residual, select the column with the
// largest |inner product|, append it to an incrementally maintained QR
// factorization, and re-project. The engine also implements the paper's
// §5 production fix — "terminate the recovery process once the residual
// stops decreasing" — which guards against Gram–Schmidt floating-point
// drift at high iteration counts.
//
// The engine runs inside a Workspace (see workspace.go) that owns all
// scratch: the package-level BOMP/OMP/KnownModeOMP entry points build a
// throwaway workspace per call, while hot paths (the standing-query
// Sketcher) hold one and replay queries allocation-free.
package recovery

import (
	"errors"
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// Options tunes the greedy recovery engine.
type Options struct {
	// MaxIterations is the iteration budget R. The paper tunes
	// R = f(k) ∈ [2k, 5k] for k-outlier queries (§5). 0 means
	// min(M, N+1): run until the measurement is exhausted.
	MaxIterations int

	// ResidualTol stops the loop once ‖r‖₂ ≤ ResidualTol·‖y‖₂.
	// 0 means 1e-9 (exact recovery territory). A negative value means
	// literally zero: the tolerance stop is disabled and the loop runs
	// until the budget, the stall cutoff, or an exactly zero residual.
	// (0 cannot mean "disabled" — it is the zero value, and a standing
	// query built with Options{} must get the default, not an engine
	// that never stops on tolerance.)
	ResidualTol float64

	// DisableEarlyStop turns off the residual-stall cutoff from §5.
	// Only the ablation benches set this; production keeps it on.
	DisableEarlyStop bool

	// StallRelTol is the relative per-iteration residual improvement
	// below which the §5 early stop fires: the loop halts when
	// ‖r_t‖ ≥ ‖r_{t−1}‖·(1 − StallRelTol). The default 0 means 1e-12 —
	// only a numerically flat residual stops the loop. A negative value
	// means exactly zero: the loop stops as soon as the residual fails
	// to strictly decrease (the tightest stall cutoff, not a disabled
	// one — use DisableEarlyStop for that).
	//
	// Note this guards against floating-point drift, not against noise:
	// greedy selection always finds the dictionary column MOST
	// correlated with a noise residual, so noise-fitting iterations
	// still improve the residual by ≈ √(2·ln N / (M−k)) per step and
	// never look stalled. For sketches carrying measurement noise, set
	// ResidualTol to the (relative) noise floor instead — the loop then
	// stops exactly when the signal is exhausted.
	StallRelTol float64

	// TraceMode records the mode estimate after every iteration
	// (Figures 4b and 9). It costs one k×k back-substitution per
	// iteration.
	TraceMode bool

	// TraceResidual records ‖r‖₂ after every iteration.
	TraceResidual bool
}

func (o Options) residualTol() float64 {
	if o.ResidualTol < 0 {
		return 0 // explicit "tolerance stop off"
	}
	if o.ResidualTol == 0 {
		return 1e-9
	}
	return o.ResidualTol
}

func (o Options) stallRelTol() float64 {
	if o.StallRelTol < 0 {
		return 0 // explicit "stop unless strictly decreasing"
	}
	if o.StallRelTol == 0 {
		return 1e-12
	}
	return o.StallRelTol
}

// Result is the output of a recovery run.
//
// When produced by a Workspace method, the Result and all slices in it
// alias workspace storage and are overwritten by that workspace's next
// call. Results from the package-level functions are independent.
type Result struct {
	// X is the recovered N-length data vector: the mode everywhere except
	// on the recovered support.
	X linalg.Vector
	// Mode is the recovered bias b (BOMP), the supplied bias (known-mode
	// OMP), or 0 (plain OMP).
	Mode float64
	// Support lists the recovered outlier positions (data-space indices,
	// 0-based; the BOMP bias column is not included), in selection order —
	// OMP greediness means earlier entries carry more energy.
	Support []int
	// Coef holds the recovered deviation from the mode for each entry of
	// Support (X[Support[i]] = Mode + Coef[i]).
	Coef []float64
	// Selection records a BOMP run's extended-dictionary selection order
	// (column 0 is the bias column φ₀, column j+1 is data column j) —
	// the warm hint BOMPWarm/BOMPBatch accept when re-solving the same
	// standing query against the next fold generation's sketch. Nil for
	// OMP results.
	Selection []int
	// Iterations is the number of columns actually selected.
	Iterations int
	// Residual is the final residual norm ‖r‖₂ = ‖y − Φ·x̂‖₂ — the
	// unexplained measurement energy, ‖y‖₂ when nothing was selected.
	// Cheap to report (the greedy loop maintains it for its stopping
	// rules) and the natural recovery-quality gauge for monitoring.
	Residual float64
	// StoppedEarly reports that the §5 residual-stall cutoff fired.
	StoppedEarly bool
	// ModeTrace, when requested, holds the mode estimate after each
	// iteration.
	ModeTrace []float64
	// ResidualTrace, when requested, holds ‖r‖₂ after each iteration.
	ResidualTrace []float64
}

// ErrDimension reports a measurement/matrix size mismatch.
var ErrDimension = errors.New("recovery: measurement length does not match matrix")

// BOMP recovers a data vector whose values concentrate around an unknown
// bias b from the measurement y = Φ₀·x (paper Algorithm 1). It extends
// the dictionary with φ₀ = (1/√N)Σφᵢ so that the bias becomes one more
// sparse coefficient, runs OMP on the extended problem, and maps the
// solution back: b = z₀/√N, x = z + b.
func BOMP(m sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
	return NewWorkspace().BOMP(m, y, opt)
}

// OMP recovers a vector that is sparse at zero (paper §2.2) from
// y = Φ₀·x. Mode is reported as 0.
func OMP(m sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
	return NewWorkspace().OMP(m, y, opt)
}

// KnownModeOMP recovers a vector known to concentrate around the given
// mode: it cancels the bias contribution b·Φ₀·1 = b·√N·φ₀ from the
// measurement, runs plain OMP on the now sparse-at-zero residual signal,
// and adds the bias back. This is the "OMP + known mode" baseline of
// Figure 4(a); the paper notes that learning b externally costs an extra
// 2s+1 values of communication, which BOMP avoids.
func KnownModeOMP(m sensing.Matrix, y linalg.Vector, mode float64, opt Options) (*Result, error) {
	return NewWorkspace().KnownModeOMP(m, y, mode, opt)
}

// assemble builds a fresh full recovered vector from the mode and the
// (support, deviation) pairs. Hot paths use assembleInto instead.
func assemble(n int, mode float64, support []int, coef []float64) linalg.Vector {
	return assembleInto(nil, n, mode, support, coef)
}

// modeFromExtended extracts the running mode estimate b = z₀/√N from the
// extended-coefficient vector (paper Algorithm 1 step 3). idx maps each
// coefficient to its extended-dictionary column; column 0 is the bias.
func modeFromExtended(z linalg.Vector, idx []int, n int) float64 {
	for i, j := range idx {
		if j == 0 {
			return z[i] / math.Sqrt(float64(n))
		}
	}
	return 0
}

// dictionary is the greedy engine's view of the measurement matrix:
// an indexed set of unit-scale columns.
type dictionary interface {
	size() int
	col(j int, dst linalg.Vector) linalg.Vector
	// correlate fills dst[j] = <column j, r> for all j.
	correlate(r, dst linalg.Vector) linalg.Vector
}

// plainDict exposes Φ₀ as-is.
type plainDict struct{ m sensing.Matrix }

func (d *plainDict) size() int { return d.m.Params().N }
func (d *plainDict) col(j int, dst linalg.Vector) linalg.Vector {
	return d.m.Col(j, dst)
}
func (d *plainDict) correlate(r, dst linalg.Vector) linalg.Vector {
	return d.m.Correlate(r, dst)
}

func (d *plainDict) image(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	return d.m.MeasureSparse(idx, vals, dst)
}

// biasedDict exposes the extended matrix Φ = [φ₀, Φ₀] (paper eq. 2):
// column 0 is the bias column, column j+1 is φ_j.
type biasedDict struct {
	m    sensing.Matrix
	phi0 linalg.Vector
}

func (d *biasedDict) size() int { return d.m.Params().N + 1 }
func (d *biasedDict) col(j int, dst linalg.Vector) linalg.Vector {
	if j == 0 {
		if cap(dst) < len(d.phi0) {
			dst = make(linalg.Vector, len(d.phi0))
		}
		dst = dst[:len(d.phi0)]
		copy(dst, d.phi0)
		return dst
	}
	return d.m.Col(j-1, dst)
}
func (d *biasedDict) correlate(r, dst linalg.Vector) linalg.Vector {
	n := d.m.Params().N
	if cap(dst) < n+1 {
		dst = make(linalg.Vector, n+1)
	}
	dst = dst[:n+1]
	d.m.Correlate(r, dst[1:])
	dst[0] = d.phi0.Dot(r)
	return dst
}

func (d *biasedDict) image(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	c0 := 0.0
	dataIdx := make([]int, 0, len(idx))
	dataVals := make([]float64, 0, len(idx))
	for k, j := range idx {
		if j == 0 {
			c0 += vals[k]
			continue
		}
		dataIdx = append(dataIdx, j-1)
		dataVals = append(dataVals, vals[k])
	}
	dst = d.m.MeasureSparse(dataIdx, dataVals, dst)
	if c0 != 0 {
		dst.AddScaled(c0, d.phi0)
	}
	return dst
}

// sparseImager is implemented by dictionaries that can compute Φ·v for
// a sparse v through the ensemble's fused MeasureSparse kernel, which
// beats column-at-a-time accumulation (strided reads on dense storage,
// one column regeneration per index on seeded storage).
type sparseImager interface {
	image(idx []int, vals []float64, dst linalg.Vector) linalg.Vector
}

type diagnostics struct {
	stalled       bool
	residual      float64 // final ‖r‖₂ (‖y‖₂ when nothing was selected)
	modeTrace     []float64
	residualTrace []float64
}

// IterationBudget returns the paper's recommended iteration count
// R = f(k) for a k-outlier query (§5: "R ∈ [2k, 5k] is good enough for
// both recovery accuracy and efficiency"). The midpoint 3k+1 leaves one
// iteration for the bias column.
func IterationBudget(k int) int {
	if k < 1 {
		k = 1
	}
	return 3*k + 1
}
