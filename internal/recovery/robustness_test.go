package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
	"csoutlier/internal/xrand/xrandtest"
)

// The paper's production data is only *near*-sparse: bulk values jitter
// around the mode (§2.1, Figure 1). These tests pin down that BOMP
// degrades gracefully — top-k keys stay correct and the mode estimate
// stays near the concentration center — under concentration jitter and
// under additive measurement noise.

func TestBOMPUnderConcentrationJitter(t *testing.T) {
	const (
		n, s, k = 500, 15, 5
		mode    = 1800.0
		jitter  = 40.0 // ~2% of the mode
	)
	base := xrandtest.Seed(t, 71)
	x, _ := workload.NearMajorityDominated(n, s, mode, jitter, 1500, 8000, base)
	d := dense(t, 200, n, base+1)
	y := d.Measure(x, nil)
	res, err := BOMP(d, y, Options{MaxIterations: IterationBudget(k)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-mode) > 4*jitter {
		t.Fatalf("mode = %v, want within a few jitters of %v", res.Mode, mode)
	}
	truth := outlier.TopK(x, mode, k)
	est := make([]outlier.KV, len(res.Support))
	for i, j := range res.Support {
		est[i] = outlier.KV{Index: j, Value: res.X[j]}
	}
	got := outlier.TopKOf(est, res.Mode, k)
	if ek := outlier.ErrorOnKey(truth, got); ek > 0.21 {
		t.Fatalf("EK = %v under jitter (truth %v, got %v)", ek, truth, got)
	}
	if ev := outlier.ErrorOnValue(truth, got); ev > 0.1 {
		t.Fatalf("EV = %v under jitter", ev)
	}
}

func TestBOMPUnderMeasurementNoise(t *testing.T) {
	// Additive noise on the measurement itself (e.g. lossy float
	// compression of sketches in transit).
	const (
		n, s, k = 400, 8, 4
		mode    = 1000.0
	)
	base := xrandtest.Seed(t, 73)
	r := xrand.New(base)
	x, _ := workload.MajorityDominated(n, s, mode, 2000, 9000, base+1)
	d := dense(t, 160, n, base+2)
	y := d.Measure(x, nil)
	noiseScale := 1e-3 * y.Norm2() / math.Sqrt(float64(len(y)))
	for i := range y {
		y[i] += r.NormFloat64() * noiseScale
	}
	res, err := BOMP(d, y, Options{MaxIterations: IterationBudget(k)})
	if err != nil {
		t.Fatal(err)
	}
	truth := outlier.TopK(x, mode, k)
	est := make([]outlier.KV, len(res.Support))
	for i, j := range res.Support {
		est[i] = outlier.KV{Index: j, Value: res.X[j]}
	}
	got := outlier.TopKOf(est, res.Mode, k)
	if ek := outlier.ErrorOnKey(truth, got); ek != 0 {
		t.Fatalf("EK = %v under measurement noise", ek)
	}
	if math.Abs(res.Mode-mode) > 0.05*mode {
		t.Fatalf("mode = %v under measurement noise", res.Mode)
	}
}

func TestResidualTolStopsAtNoiseFloor(t *testing.T) {
	// With noise, the residual bottoms out at the noise floor. Greedy
	// selection keeps "improving" on pure noise (it always finds the
	// most-correlated column), so the stall cutoff cannot fire — the
	// noise floor must be given as ResidualTol, and then the loop stops
	// as soon as the signal is exhausted, keeping the support clean.
	const n, s = 300, 5
	base := xrandtest.Seed(t, 76)
	r := xrand.New(base)
	x, _ := workload.MajorityDominated(n, s, 0, 100, 900, base+1)
	d := dense(t, 120, n, base+2)
	y := d.Measure(x, nil)
	var noiseSq float64
	for i := range y {
		e := r.NormFloat64() * 1e-4
		y[i] += e
		noiseSq += e * e
	}
	relNoise := math.Sqrt(noiseSq) / y.Norm2()
	stopped, err := OMP(d, y, Options{MaxIterations: 120, ResidualTol: 2 * relNoise})
	if err != nil {
		t.Fatal(err)
	}
	free, err := OMP(d, y, Options{MaxIterations: 120, ResidualTol: 1e-300, DisableEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if stopped.Iterations >= free.Iterations {
		t.Fatalf("noise-floor tolerance did not cut iterations: %d vs %d", stopped.Iterations, free.Iterations)
	}
	// The floored run keeps the planted support clean and complete.
	if len(stopped.Support) > 2*s {
		t.Fatalf("floored run still selected %d columns", len(stopped.Support))
	}
	got := map[int]bool{}
	for _, j := range stopped.Support {
		got[j] = true
	}
	truth := outlier.TopK(x, 0, s)
	for _, kv := range truth {
		if !got[kv.Index] {
			t.Fatalf("floored run missed planted outlier %d", kv.Index)
		}
	}
}

func TestNearMajorityDominatedShape(t *testing.T) {
	x, support := workload.NearMajorityDominated(200, 10, 500, 5, 100, 400, xrandtest.Seed(t, 79))
	if len(support) != 10 {
		t.Fatalf("support = %d", len(support))
	}
	onSupport := map[int]bool{}
	for _, j := range support {
		onSupport[j] = true
	}
	// No exact majority anymore, but the bulk concentrates within a few
	// jitters of the mode.
	if _, ok := outlier.Mode(x); ok {
		t.Fatal("jittered data still has an exact majority")
	}
	for i, v := range x {
		if onSupport[i] {
			continue
		}
		if math.Abs(v-500) > 5*5 {
			t.Fatalf("bulk entry %d = %v strays too far from mode", i, v)
		}
	}
	_ = linalg.Vector(x)
}
