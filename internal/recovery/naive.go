package recovery

import (
	"fmt"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// NaiveOMP is the ablation reference for the paper's §5 QR optimization:
// a textbook OMP that re-solves the least-squares problem from scratch
// via the normal equations (ΦₛᵀΦₛ)z = Φₛᵀy at every iteration, instead
// of updating an incremental QR factorization. Identical output
// (up to floating point), asymptotically worse per-iteration cost —
// BenchmarkAblationNaiveOMP quantifies the gap. Not for production use.
func NaiveOMP(m sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 || maxIter > p.M {
		maxIter = p.M
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		return &Result{X: make(linalg.Vector, p.N)}, nil
	}
	tol := opt.residualTol() * yNorm

	var (
		selected []int
		cols     []linalg.Vector
		inBasis  = make(map[int]bool)
		residual = y.Clone()
		corr     linalg.Vector
		z        linalg.Vector
		prevNorm = yNorm
	)
	for len(selected) < maxIter {
		corr = m.Correlate(residual, corr)
		for j := range inBasis {
			corr[j] = 0
		}
		best, bestAbs := corr.ArgMaxAbs()
		if best < 0 || bestAbs <= 1e-14*yNorm {
			break
		}
		cols = append(cols, m.Col(best, nil))
		selected = append(selected, best)
		inBasis[best] = true

		// Normal equations, rebuilt from scratch: the O(k²M + k³) work
		// the QR path avoids.
		k := len(cols)
		g := linalg.NewMatrix(k, k)
		rhs := make(linalg.Vector, k)
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				v := cols[i].Dot(cols[j])
				g.Set(i, j, v)
				g.Set(j, i, v)
			}
			rhs[i] = cols[i].Dot(y)
		}
		var err error
		z, err = linalg.SolveDense(g, rhs)
		if err != nil {
			// Numerically dependent column: drop it and keep going.
			cols = cols[:k-1]
			selected = selected[:k-1]
			continue
		}
		copy(residual, y)
		for i, c := range cols {
			residual.AddScaled(-z[i], c)
		}
		norm := residual.Norm2()
		if norm <= tol {
			break
		}
		if !opt.DisableEarlyStop && norm >= prevNorm*(1-opt.stallRelTol()) {
			break
		}
		prevNorm = norm
	}
	res := &Result{Support: selected, Coef: z, Iterations: len(selected)}
	res.X = assemble(p.N, 0, selected, z)
	return res, nil
}
