package recovery

import (
	"fmt"
	"math"
	"sort"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// AIHT implements normalized / accelerated Iterative Hard Thresholding
// (Blumensath & Davies 2010): plain IHT's fixed step μ = 1 is replaced
// by the adaptive exact line-search step on the current support τ,
//
//	μ = ‖g_τ‖² / ‖Φ·g_τ‖²,   g = Φᵀ(y − Φx),
//
// which is optimal while the support does not move. When the
// thresholded step DOES move the support, the normalized-IHT safeguard
// accepts μ only below the stability threshold
//
//	ω = (1−c)·‖x₁−x₀‖² / ‖Φ(x₁−x₀)‖²,
//
// halving μ until either the support settles or μ ≤ ω. Each iteration
// costs one correlation and O(s) column accumulations — no QR update —
// so at large target sparsity AIHT finishes in a few dozen iterations
// where BOMP pays 3s+1 QR-augmented greedy rounds. A final least-squares
// debias on the recovered support makes exact-sparse instances exact.
func AIHT(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return aiht(m, y, s, opt, false, nil)
}

// BiasedAIHT runs AIHT over BOMP's extended dictionary [φ₀, Φ₀], so
// data concentrated around an unknown bias is recovered the same way
// BOMP does it, with the bias occupying one sparse slot.
func BiasedAIHT(m sensing.Matrix, y linalg.Vector, s int, opt Options) (*Result, error) {
	return aiht(m, y, s, opt, true, nil)
}

// BiasedAIHTWarm is BiasedAIHT seeded with a warm-start hint: the
// extended-dictionary Selection of a previous Result for the same
// standing query (any BOMP/AIHT/Dantzig Selection works — solvers can
// migrate across fold generations). The hint initializes the support
// and coefficients by one least-squares solve; a stale or garbage hint
// only costs extra iterations, never a wrong answer, because the
// iteration corrects the support like a cold run.
func BiasedAIHTWarm(m sensing.Matrix, y linalg.Vector, s int, warm []int, opt Options) (*Result, error) {
	return aiht(m, y, s, opt, true, warm)
}

func aiht(m sensing.Matrix, y linalg.Vector, s int, opt Options, biased bool, warm []int) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	if s < 1 {
		return nil, fmt.Errorf("recovery: AIHT needs target sparsity >= 1, got %d", s)
	}
	var d dictionary
	size := p.N
	if biased {
		d = &biasedDict{m: m, phi0: m.ExtensionColumn(nil)}
		s++ // bias slot
		size = p.N + 1
	} else {
		d = &plainDict{m: m}
	}
	if s > size {
		s = size
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 200
	}
	yNorm := y.Norm2()
	if yNorm == 0 {
		return &Result{X: make(linalg.Vector, p.N)}, nil
	}
	tol := opt.residualTol() * yNorm

	x := make(linalg.Vector, size)
	residual := y.Clone()
	grad := make(linalg.Vector, size)
	cand := make(linalg.Vector, size)
	step := make(linalg.Vector, size)
	colBuf := make(linalg.Vector, p.M)
	gImg := make(linalg.Vector, p.M)
	diffImg := make(linalg.Vector, p.M)

	// Warm start: least-squares on the hinted extended-dictionary
	// support. A useful hint lands the iterate next to the solution;
	// any other hint is just a different starting point.
	if len(warm) > 0 {
		if sup := validWarmSupport(warm, size, s); len(sup) > 0 {
			qr := linalg.NewIncrementalQR(p.M)
			qr.SetTarget(y)
			var kept []int
			for _, j := range sup {
				colBuf = d.col(j, colBuf)
				if _, err := qr.Append(colBuf); err != nil {
					continue
				}
				kept = append(kept, j)
			}
			if len(kept) > 0 {
				if z, err := qr.Solve(); err == nil {
					for i, j := range kept {
						x[j] = z[i]
					}
					residual = applyResidual(d, y, x, colBuf)
				}
			}
		}
	}

	// Current support τ: where x is nonzero, or the s strongest proxy
	// entries while the iterate is still zero (snippet-2 initialization).
	support := nonzeroIndices(x)
	prevNorm := residual.Norm2()
	if ft := warmFastTol(tol, yNorm); ft > 0 && prevNorm <= ft && len(support) > 0 {
		// Warm hint already explains the measurement to tolerance.
		return finishAIHT(d, p, y, yNorm, x, 0, false, nil, opt, biased)
	}
	if len(support) == 0 {
		grad = d.correlate(y, grad)
		support = topAbsIndices(grad, s)
	}
	prevNorm = residual.Norm2()

	const c = 0.01 // safeguard slack (1−c) from the NIHT analysis
	iters := 0
	stalled := false
	var trace []float64
	for t := 0; t < maxIter; t++ {
		iters = t + 1
		grad = d.correlate(residual, grad)

		// Adaptive step on the current support: μ = ‖g_τ‖²/‖Φ g_τ‖².
		num := 0.0
		step.Fill(0)
		for _, j := range support {
			num += grad[j] * grad[j]
			step[j] = grad[j]
		}
		if num == 0 {
			// Gradient vanishes on the support: the residual is
			// orthogonal to every selected column — converged.
			break
		}
		gImg = sparseImage(d, step, support, colBuf, gImg)
		den := gImg.Dot(gImg)
		if den == 0 {
			break
		}
		mu := num / den

		// Propose, and safeguard support changes by the ω threshold. Each
		// accept branch knows Φ·(x₁−x₀) already — μ·Φg_τ when the support
		// holds, the safeguard's step image when it moves — so the
		// residual updates incrementally (r ← r − Φ·Δx) instead of paying
		// a full sparse measurement per iteration.
		accepted := false
		var applied linalg.Vector
		appliedScale := 1.0
		for halvings := 0; halvings < 64; halvings++ {
			for i := range cand {
				cand[i] = x[i] + mu*grad[i]
			}
			hardThreshold(cand, s)
			newSupport := nonzeroIndices(cand)
			if intsEqual(newSupport, support) {
				support = newSupport
				accepted = true
				applied, appliedScale = gImg, mu
				break
			}
			// Support moved: accept only a provably stable step.
			for i := range step {
				step[i] = cand[i] - x[i]
			}
			diffNorm2 := step.Dot(step)
			diffImg = sparseImage(d, step, nil, colBuf, diffImg)
			imgNorm2 := diffImg.Dot(diffImg)
			if imgNorm2 == 0 {
				break
			}
			omega := (1 - c) * diffNorm2 / imgNorm2
			if mu <= omega {
				support = newSupport
				accepted = true
				applied, appliedScale = diffImg, 1
				break
			}
			mu /= 2
		}
		if !accepted {
			stalled = true
			break
		}
		copy(x, cand)
		residual.AddScaled(-appliedScale, applied)
		norm := residual.Norm2()
		if opt.TraceResidual {
			trace = append(trace, norm)
		}
		if norm <= tol {
			break
		}
		if !opt.DisableEarlyStop && norm >= prevNorm*(1-opt.stallRelTol()) && t > 0 {
			stalled = true
			break
		}
		prevNorm = norm
	}

	return finishAIHT(d, p, y, yNorm, x, iters, stalled, trace, opt, biased)
}

// finishAIHT debiases the final iterate and maps it into a Result.
func finishAIHT(d dictionary, p sensing.Params, y linalg.Vector, yNorm float64,
	x linalg.Vector, iters int, stalled bool, trace []float64, opt Options, biased bool) (*Result, error) {
	kept, coef, resNorm, err := debiasPruned(d, y, yNorm, nonzeroIndices(x), p.M)
	if err != nil {
		return nil, err
	}
	res := extendedResult(p.N, kept, coef, biased)
	res.Iterations = iters
	res.StoppedEarly = stalled
	res.ResidualTrace = trace
	res.Residual = resNorm
	return res, nil
}

// sparseImage computes Φ·v for a vector supported on the given indices
// (nil = derive from nonzeros) — through the ensemble's fused
// MeasureSparse kernel when the dictionary supports it, by column
// accumulation into dst otherwise.
func sparseImage(d dictionary, v linalg.Vector, support []int, colBuf, dst linalg.Vector) linalg.Vector {
	if si, ok := d.(sparseImager); ok {
		idx := support
		if idx == nil {
			for j, val := range v {
				if val != 0 {
					idx = append(idx, j)
				}
			}
		}
		vals := make([]float64, len(idx))
		for k, j := range idx {
			vals[k] = v[j]
		}
		return si.image(idx, vals, dst)
	}
	dst = ensureVec(dst, len(colBuf))
	dst.Fill(0)
	if support == nil {
		for j, val := range v {
			if val == 0 {
				continue
			}
			colBuf = d.col(j, colBuf)
			dst.AddScaled(val, colBuf)
		}
		return dst
	}
	for _, j := range support {
		if v[j] == 0 {
			continue
		}
		colBuf = d.col(j, colBuf)
		dst.AddScaled(v[j], colBuf)
	}
	return dst
}

// validWarmSupport sanitizes a warm Selection hint: in-range extended
// indices, deduplicated, first s kept (hints are emitted energy-first).
func validWarmSupport(warm []int, size, s int) []int {
	seen := make(map[int]bool, len(warm))
	var out []int
	for _, j := range warm {
		if j < 0 || j >= size || seen[j] {
			continue
		}
		seen[j] = true
		out = append(out, j)
		if len(out) == s {
			break
		}
	}
	sort.Ints(out)
	return out
}

// coefPruneFrac is the relative coefficient floor used when debiasing a
// sparsity-targeted solver's support: a least-squares coefficient below
// this fraction of ‖y‖ is numerical residue (the solver's tolerance
// stop fires at 1e-9·‖y‖), not a recovered outlier, and reporting it
// would surface phantom support entries when the target sparsity
// exceeds the true one.
const coefPruneFrac = 1e-7

// warmFastTol is the warm fast-path acceptance threshold: a hinted
// support whose least-squares fit leaves at most this much of ‖y‖
// unexplained is accepted without iterating. The default ResidualTol
// (1e-9 relative) sits below incremental-QR float noise on real
// supports (~1e-8 relative at repo scales), so without the floor the
// fast path would never fire; the floor reuses coefPruneFrac because
// energy below it is numerical residue, not a missed outlier. A
// non-positive tol (the negative ResidualTol sentinel) disables
// tolerance stops, and with them the fast path — callers must skip the
// shortcut when the returned threshold is zero.
func warmFastTol(tol, yNorm float64) float64 {
	if tol <= 0 {
		return 0
	}
	if floor := coefPruneFrac * yNorm; tol < floor {
		return floor
	}
	return tol
}

// debiasPruned least-squares-solves y over the given (extended) support,
// drops coefficients below coefPruneFrac·‖y‖, and re-solves over the
// survivors so the reported coefficients and residual are exact for the
// pruned support. Numerically dependent columns are skipped.
func debiasPruned(d dictionary, y linalg.Vector, yNorm float64, support []int, m int) (kept []int, coef []float64, resNorm float64, err error) {
	resNorm = yNorm
	if len(support) == 0 {
		return nil, nil, resNorm, nil
	}
	colBuf := make(linalg.Vector, m)
	solve := func(sup []int) ([]int, []float64, float64, error) {
		qr := linalg.NewIncrementalQR(m)
		qr.SetTarget(y)
		var ks []int
		for _, j := range sup {
			colBuf = d.col(j, colBuf)
			if _, err := qr.Append(colBuf); err != nil {
				continue
			}
			ks = append(ks, j)
		}
		if len(ks) == 0 {
			return nil, nil, yNorm, nil
		}
		z, err := qr.Solve()
		if err != nil {
			return nil, nil, 0, err
		}
		return ks, append([]float64(nil), z...), qr.ResidualNorm(), nil
	}
	kept, coef, resNorm, err = solve(support)
	if err != nil || len(kept) == 0 {
		return nil, nil, yNorm, err
	}
	floor := coefPruneFrac * yNorm
	var pruned []int
	for i, j := range kept {
		if math.Abs(coef[i]) > floor {
			pruned = append(pruned, j)
		}
	}
	if len(pruned) == len(kept) {
		return kept, coef, resNorm, nil
	}
	if len(pruned) == 0 {
		return nil, nil, yNorm, nil
	}
	return solve(pruned)
}

// extendedResult maps an extended-dictionary (support, coef) solution
// into a Result: the bias column becomes Mode, data columns shift down
// by one, Support/Coef are ordered by |coef| descending (the energy
// order BOMP's greedy selection produces naturally), and Selection
// carries the extended indices in the same order so any solver can warm
// the next generation's run — including a BOMP one.
func extendedResult(n int, kept []int, coef []float64, biased bool) *Result {
	type jc struct {
		j int
		c float64
	}
	items := make([]jc, 0, len(kept))
	mode := 0.0
	var selection []int
	if biased {
		for i, j := range kept {
			if j == 0 {
				mode = coef[i] / math.Sqrt(float64(n))
				continue
			}
			items = append(items, jc{j, coef[i]})
		}
	} else {
		for i, j := range kept {
			items = append(items, jc{j + 1, coef[i]})
		}
	}
	sort.Slice(items, func(a, b int) bool {
		da, db := math.Abs(items[a].c), math.Abs(items[b].c)
		if da != db {
			return da > db
		}
		return items[a].j < items[b].j
	})
	res := &Result{Mode: mode}
	if biased && mode != 0 {
		selection = append(selection, 0)
	}
	for _, it := range items {
		res.Support = append(res.Support, it.j-1)
		res.Coef = append(res.Coef, it.c)
		selection = append(selection, it.j)
	}
	if biased {
		res.Selection = selection
	}
	res.X = assemble(n, mode, res.Support, res.Coef)
	return res
}

// intsEqual reports whether two sorted index slices are identical.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
