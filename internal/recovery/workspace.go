package recovery

import (
	"errors"
	"fmt"
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/sensing"
)

// Workspace owns every buffer the greedy recovery engine touches — the
// correlation vector, column scratch, residual, QR factorization, masks
// and the Result itself — so that a standing query replaying BOMP on
// each refreshed sketch performs no heap allocation after the first
// call (pinned by an AllocsPerRun test).
//
// A Workspace is NOT safe for concurrent use. The *Result returned by
// its methods, including every slice inside it, is owned by the
// Workspace and is overwritten by the next call; callers that keep
// results across calls must copy what they need first.
type Workspace struct {
	qr       *linalg.IncrementalQR
	corr     linalg.Vector // Φᵀr, extended-dictionary length
	colBuf   linalg.Vector // selected column scratch
	residual linalg.Vector // current residual r
	coef     linalg.Vector // least-squares coefficients
	phi0     linalg.Vector // cached-φ₀ copy for the biased dictionary
	shifted  linalg.Vector // KnownModeOMP's bias-cancelled measurement
	x        linalg.Vector // assembled N-length output
	masked   bitset        // columns in the basis or excluded from it
	selected []int         // selection order
	selOut   []int         // Result.Selection backing (copy, see finishBOMP)
	support  []int         // Result.Support backing
	coefOut  []float64     // Result.Coef backing
	res      Result
	bd       biasedDict
	pd       plainDict
	st       greedyState

	// Warm-start prediction state (see warm.go). qrSeed is a second QR
	// so the prediction pass never disturbs ws.qr, which the replay
	// rebuilds live.
	qrSeed   *linalg.IncrementalQR
	script   []int         // validated warm hint: the predicted selection order
	predRes  linalg.Vector // predicted residual rows, flat rows×M
	predCorr linalg.Vector // their biased correlations, flat rows×(N+1)
}

// NewWorkspace returns an empty workspace. Buffers are sized lazily on
// first use and retained across calls, so one workspace serves queries
// of mixed shapes (buffers grow to the largest seen).
func NewWorkspace() *Workspace { return &Workspace{} }

// BOMP is the workspace-backed form of the package-level BOMP.
func (ws *Workspace) BOMP(m sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	ws.phi0 = m.ExtensionColumn(ws.phi0)
	ws.bd = biasedDict{m: m, phi0: ws.phi0}
	// The mode closure is only needed (and only allocated) when tracing.
	var modeFn func(z linalg.Vector, idx []int) float64
	if opt.TraceMode {
		n := p.N
		modeFn = func(z linalg.Vector, idx []int) float64 {
			return modeFromExtended(z, idx, n)
		}
	}
	ws.greedyInit(&ws.bd, y, p.M, opt, modeFn)
	for !ws.st.done {
		ws.corr = ws.bd.correlate(ws.residual, ws.corr)
		ws.greedyStep()
	}
	return ws.finishBOMP(p)
}

// finishBOMP solves for the coefficients and packages the BOMP Result —
// shared tail of the cold, warm and batched entry points. Selection is
// copied into its own backing (not aliased to ws.selected) so a caller
// may hand the previous generation's Selection straight back as the
// next call's warm hint on the SAME workspace.
func (ws *Workspace) finishBOMP(p sensing.Params) (*Result, error) {
	sel, coef, diag, err := ws.greedyFinish()
	if err != nil {
		return nil, err
	}
	res := &ws.res
	*res = Result{
		Iterations:    len(sel),
		Residual:      diag.residual,
		StoppedEarly:  diag.stalled,
		ModeTrace:     diag.modeTrace,
		ResidualTrace: diag.residualTrace,
	}
	ws.selOut = append(ws.selOut[:0], sel...)
	res.Selection = ws.selOut
	// Split the bias coefficient from the outlier coefficients.
	b := 0.0
	ws.support = ws.support[:0]
	ws.coefOut = ws.coefOut[:0]
	for i, j := range sel {
		if j == 0 {
			b = coef[i] / math.Sqrt(float64(p.N))
		} else {
			ws.support = append(ws.support, j-1)
			ws.coefOut = append(ws.coefOut, coef[i])
		}
	}
	res.Support = ws.support
	res.Coef = ws.coefOut
	res.Mode = b
	ws.x = assembleInto(ws.x, p.N, b, res.Support, res.Coef)
	res.X = ws.x
	return res, nil
}

// OMP is the workspace-backed form of the package-level OMP.
func (ws *Workspace) OMP(m sensing.Matrix, y linalg.Vector, opt Options) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	ws.pd = plainDict{m: m}
	sel, coef, diag, err := ws.greedy(&ws.pd, y, p.M, opt, nil)
	if err != nil {
		return nil, err
	}
	res := &ws.res
	*res = Result{
		Support:       sel,
		Coef:          coef,
		Iterations:    len(sel),
		Residual:      diag.residual,
		StoppedEarly:  diag.stalled,
		ResidualTrace: diag.residualTrace,
	}
	ws.x = assembleInto(ws.x, p.N, 0, sel, coef)
	res.X = ws.x
	return res, nil
}

// KnownModeOMP is the workspace-backed form of the package-level
// KnownModeOMP.
func (ws *Workspace) KnownModeOMP(m sensing.Matrix, y linalg.Vector, mode float64, opt Options) (*Result, error) {
	p := m.Params()
	if len(y) != p.M {
		return nil, fmt.Errorf("%w: len(y)=%d, M=%d", ErrDimension, len(y), p.M)
	}
	ws.phi0 = m.ExtensionColumn(ws.phi0)
	ws.shifted = ensureVec(ws.shifted, p.M)
	copy(ws.shifted, y)
	ws.shifted.AddScaled(-mode*math.Sqrt(float64(p.N)), ws.phi0)
	res, err := ws.OMP(m, ws.shifted, opt)
	if err != nil {
		return nil, err
	}
	res.Mode = mode
	for i := range res.X {
		res.X[i] += mode
	}
	return res, nil
}

// greedyState is the loop-invariant context of one greedy run, kept as
// a workspace field so cold, warm-started and batched drivers can all
// step the SAME algorithm: the cold path alternates correlate/step in a
// local loop, while the batch engine interleaves steps of many
// workspaces between shared correlation passes. Splitting the loop this
// way is what makes warm-start bit-identity provable — the replay path
// runs greedyStep itself, so it cannot diverge from the cold algorithm,
// only from the cost of computing its inputs.
type greedyState struct {
	d      dictionary
	opt    Options
	modeFn func(z linalg.Vector, idx []int) float64

	maxIter  int
	yNorm    float64
	tol      float64
	prevNorm float64

	done bool
	err  error
	diag diagnostics
}

// clampMaxIter applies the engine's iteration-budget clamps; predict
// (warm.go) must agree with greedyInit on this exactly.
func clampMaxIter(maxIter, m, size int) int {
	if maxIter <= 0 || maxIter > m {
		maxIter = m
	}
	if maxIter > size {
		maxIter = size
	}
	return maxIter
}

// greedyInit resets the workspace for a run of the greedy loop
// (paper Algorithm 2) on dictionary d and measurement y.
func (ws *Workspace) greedyInit(d dictionary, y linalg.Vector, m int, opt Options,
	modeFn func(z linalg.Vector, idx []int) float64) {

	st := &ws.st
	*st = greedyState{d: d, opt: opt, modeFn: modeFn}
	st.maxIter = clampMaxIter(opt.MaxIterations, m, d.size())

	if ws.qr == nil {
		ws.qr = linalg.NewIncrementalQR(m)
	} else {
		ws.qr.Reset(m)
	}
	ws.qr.SetTarget(y)
	st.yNorm = y.Norm2()
	st.prevNorm = st.yNorm
	st.diag.residual = st.yNorm // final norm if nothing gets selected

	ws.masked.reset(d.size())
	ws.selected = ws.selected[:0]
	ws.residual = ensureVec(ws.residual, m)
	copy(ws.residual, y)

	if st.yNorm == 0 || st.maxIter < 1 {
		st.done = true // zero measurement: zero vector
		return
	}
	st.tol = opt.residualTol() * st.yNorm
}

// greedyStep consumes the correlation vector in ws.corr — one iteration
// of the greedy loop: argmax, QR append, residual update, stop checks.
// The caller (cold loop, scripted replay, or batch driver) is
// responsible for ws.corr holding Φᵀr for the CURRENT ws.residual.
func (ws *Workspace) greedyStep() {
	st := &ws.st
	qr := ws.qr
	// Select the best column not already in (or rejected from) the
	// basis. A rank-deficient rejection only marks the column and
	// re-runs the argmax on the SAME correlations — the residual did
	// not change, so re-correlating (as a naive loop restart would)
	// would redo the O(M·N) step for an identical answer.
	appended := false
	for {
		best, bestAbs := argMaxAbsMasked(ws.corr, ws.masked)
		if best < 0 || bestAbs <= 1e-14*st.yNorm {
			break // nothing correlates: residual is (numerically) zero
		}
		ws.colBuf = st.d.col(best, ws.colBuf)
		if _, err := qr.Append(ws.colBuf); err != nil {
			if errors.Is(err, linalg.ErrRankDeficient) {
				// Column numerically inside current span; never pick it again.
				ws.masked.set(best)
				continue
			}
			st.err = err
			st.done = true
			return
		}
		ws.selected = append(ws.selected, best)
		ws.masked.set(best)
		appended = true
		break
	}
	if !appended {
		st.done = true
		return
	}

	ws.residual = qr.Residual(ws.residual)
	norm := qr.ResidualNorm()
	st.diag.residual = norm
	if st.opt.TraceResidual {
		st.diag.residualTrace = append(st.diag.residualTrace, norm)
	}
	if st.opt.TraceMode && st.modeFn != nil {
		z, err := qr.SolveInto(ws.coef)
		if err != nil {
			st.err = err
			st.done = true
			return
		}
		ws.coef = z
		st.diag.modeTrace = append(st.diag.modeTrace, st.modeFn(z, ws.selected))
	}
	if norm <= st.tol {
		st.done = true
		return
	}
	// §5: floating-point drift makes the residual stop decreasing long
	// before the iteration budget on real data; cut the run there.
	if !st.opt.DisableEarlyStop && norm >= st.prevNorm*(1-st.opt.stallRelTol()) {
		st.diag.stalled = true
		st.done = true
		return
	}
	st.prevNorm = norm
	if len(ws.selected) >= st.maxIter {
		st.done = true
	}
}

// greedyFinish solves the least-squares system for the selected columns.
// It returns the selection order and coefficients, both aliasing
// workspace storage.
func (ws *Workspace) greedyFinish() ([]int, linalg.Vector, diagnostics, error) {
	st := &ws.st
	if st.err != nil {
		return nil, nil, st.diag, st.err
	}
	if len(ws.selected) == 0 {
		return nil, nil, st.diag, nil
	}
	z, err := ws.qr.SolveInto(ws.coef)
	if err != nil {
		return nil, nil, st.diag, err
	}
	ws.coef = z
	return ws.selected, z, st.diag, nil
}

// greedy is the cold driver of the shared OMP column-selection loop:
// correlate against the current residual, step, repeat. modeFn, when
// non-nil and opt.TraceMode is set, converts the running coefficients
// into a mode estimate per iteration.
func (ws *Workspace) greedy(d dictionary, y linalg.Vector, m int, opt Options,
	modeFn func(z linalg.Vector, idx []int) float64) ([]int, linalg.Vector, diagnostics, error) {

	ws.greedyInit(d, y, m, opt, modeFn)
	for !ws.st.done {
		ws.corr = d.correlate(ws.residual, ws.corr)
		ws.greedyStep()
	}
	return ws.greedyFinish()
}

// bitset is a fixed-universe set of column indices.
type bitset []uint64

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// reset resizes the set to universe [0, n) and clears it, retaining
// backing storage.
func (b *bitset) reset(n int) {
	words := (n + 63) >> 6
	if cap(*b) < words {
		*b = make(bitset, words)
	}
	*b = (*b)[:words]
	clear(*b)
}

// argMaxAbsMasked is Vector.ArgMaxAbs restricted to indices outside
// mask. Ties break toward the lower index; when every unmasked entry is
// zero the first unmasked index is returned with value 0 (and -1 only
// when every index is masked) — the same contract as ArgMaxAbs over a
// vector whose masked entries were zeroed.
func argMaxAbsMasked(v linalg.Vector, mask bitset) (int, float64) {
	best, bestAbs := -1, 0.0
	for i, x := range v {
		if mask.has(i) {
			continue
		}
		if a := math.Abs(x); a > bestAbs {
			best, bestAbs = i, a
		} else if best == -1 {
			best = i
		}
	}
	return best, bestAbs
}

// ensureVec returns v resized to n without zeroing (callers overwrite).
func ensureVec(v linalg.Vector, n int) linalg.Vector {
	if cap(v) < n {
		return make(linalg.Vector, n)
	}
	return v[:n]
}

// assembleInto builds the full recovered vector from the mode and the
// (support, deviation) pairs, reusing x's storage.
func assembleInto(x linalg.Vector, n int, mode float64, support []int, coef []float64) linalg.Vector {
	x = ensureVec(x, n)
	x.Fill(mode)
	for i, j := range support {
		x[j] = mode + coef[i]
	}
	return x
}
