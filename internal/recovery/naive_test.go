package recovery

import (
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func TestNaiveOMPMatchesOMP(t *testing.T) {
	r := xrand.New(1)
	const n, m, s = 200, 80, 6
	d := dense(t, m, n, 31)
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := d.Measure(x, nil)
	fast, err := OMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveOMP(d, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(naive.Support, sortedCopy(fast.Support)) {
		t.Fatalf("supports differ: naive %v, qr %v", naive.Support, fast.Support)
	}
	if !naive.X.Equal(fast.X, 1e-6) {
		t.Fatal("recovered vectors differ")
	}
	if !supportEqual(naive.Support, want) {
		t.Fatalf("naive missed the truth: %v vs %v", naive.Support, want)
	}
}

func TestNaiveOMPZeroMeasurement(t *testing.T) {
	d := dense(t, 20, 50, 32)
	res, err := NaiveOMP(d, make(linalg.Vector, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) != 0 {
		t.Fatalf("support = %v", res.Support)
	}
	if _, err := NaiveOMP(d, make(linalg.Vector, 19), Options{}); err == nil {
		t.Fatal("bad dimension accepted")
	}
}
