package recovery

import (
	"testing"

	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// TestOptionsToleranceSentinels pins the three-way sentinel mapping for
// both tolerance knobs: zero value → documented default, negative →
// literally zero, positive → itself. (Before this was pinned, a negative
// StallRelTol leaked through as-is and made the stall threshold
// prevNorm·(1−(−x)) > prevNorm — silently disabling the §5 cutoff
// instead of tightening it.)
func TestOptionsToleranceSentinels(t *testing.T) {
	residual := []struct{ in, want float64 }{
		{0, 1e-9},
		{-1, 0},
		{-1e-300, 0},
		{2.5e-4, 2.5e-4},
	}
	for _, c := range residual {
		if got := (Options{ResidualTol: c.in}).residualTol(); got != c.want {
			t.Errorf("residualTol(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	stall := []struct{ in, want float64 }{
		{0, 1e-12},
		{-1, 0},
		{-1e-300, 0},
		{1e-3, 1e-3},
	}
	for _, c := range stall {
		if got := (Options{StallRelTol: c.in}).stallRelTol(); got != c.want {
			t.Errorf("stallRelTol(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestResidualTolNegativeDisablesStop checks the behavioral half of the
// sentinel: on a noisy sketch whose residual plateaus at the noise floor
// (≈1e-4 relative), ResidualTol: 1e-3 stops the loop as soon as the
// signal is exhausted, while ResidualTol: -1 ignores the tolerance and
// spends the whole iteration budget fitting noise.
func TestResidualTolNegativeDisablesStop(t *testing.T) {
	mat, err := sensing.NewSeeded(sensing.Params{M: 96, N: 512, Seed: 2718})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	x, _ := biasedSparse(rng, 512, 4, 1200, 300, 900)
	y := mat.Measure(x, nil)
	yNorm := y.Norm2()
	for i := range y {
		y[i] += 1e-4 * yNorm / 10 * rng.NormFloat64() // ≈1e-4 relative noise floor
	}

	const budget = 14
	stop, err := BOMP(mat, y, Options{MaxIterations: budget, ResidualTol: 1e-3, DisableEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := BOMP(mat, y, Options{MaxIterations: budget, ResidualTol: -1, DisableEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if stop.Residual > 1e-3*y.Norm2() {
		t.Fatalf("tolerance run stopped above tolerance: %v", stop.Residual)
	}
	if stop.Iterations >= budget {
		t.Fatalf("tolerance run spent the whole budget (%d iterations)", stop.Iterations)
	}
	if off.Iterations != budget {
		t.Fatalf("ResidualTol: -1 stopped after %d iterations, want full budget %d", off.Iterations, budget)
	}
}
