package recovery

import (
	"math"
	"testing"

	"csoutlier/internal/sensing"
	"csoutlier/internal/xrand"
)

// The recovery algorithms are ensemble-agnostic: they only touch the
// dictionary through Col/Correlate. Verify BOMP works end to end with
// the sparse Rademacher ensemble (§3.1's "additional compression"
// extension), which trades some RIP quality for O(D) measurement cost.
func TestBOMPWithSparseRademacher(t *testing.T) {
	r := xrand.New(61)
	const n, m, s = 300, 140, 6
	const bias = 1800.0
	sp, err := sensing.NewSparseRademacher(sensing.Params{M: m, N: n, Seed: 62}, 12)
	if err != nil {
		t.Fatal(err)
	}
	x, want := biasedSparse(r, n, s, bias, 300, 2000)
	y := sp.Measure(x, nil)
	res, err := BOMP(sp, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mode-bias) > 0.02*bias {
		t.Fatalf("mode = %v, want ≈%v", res.Mode, bias)
	}
	got := map[int]bool{}
	for _, j := range res.Support {
		got[j] = true
	}
	missed := 0
	for _, j := range want {
		if !got[j] {
			missed++
		}
	}
	if missed > 1 {
		t.Fatalf("missed %d of %d planted outliers: support %v, want %v", missed, s, res.Support, want)
	}
}

func TestOMPWithSparseRademacherExact(t *testing.T) {
	r := xrand.New(63)
	const n, m, s = 256, 120, 5
	sp, err := sensing.NewSparseRademacher(sensing.Params{M: m, N: n, Seed: 64}, 16)
	if err != nil {
		t.Fatal(err)
	}
	x, want := biasedSparse(r, n, s, 0, 1, 10)
	y := sp.Measure(x, nil)
	res, err := OMP(sp, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !supportEqual(res.Support, want) {
		t.Fatalf("support = %v, want %v", res.Support, want)
	}
	if !res.X.Equal(x, 1e-5) {
		t.Fatal("recovered vector mismatch")
	}
}
