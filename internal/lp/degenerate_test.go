package lp

import (
	"math"
	"testing"
)

// TestBealeCycleInstance runs the classic Beale example that makes the
// plain Dantzig rule cycle forever without an anti-cycling safeguard.
// In standard form (slacks added) it is:
//
//	min  -0.75x4 + 150x5 - 0.02x6 + 6x7
//	s.t.  x1 + 0.25x4 - 60x5 - 0.04x6 + 9x7 = 0
//	      x2 + 0.50x4 - 90x5 - 0.02x6 + 3x7 = 0
//	      x3 +                    x6        = 1
//
// Optimal objective: -0.05 (x6 = 1, x4 = x5 = x7 = 0 … with x4 basic).
func TestBealeCycleInstance(t *testing.T) {
	p := Problem{
		M: 3, N: 7,
		A: []float64{
			1, 0, 0, 0.25, -60, -1.0 / 25, 9,
			0, 1, 0, 0.50, -90, -1.0 / 50, 3,
			0, 0, 1, 0, 0, 1, 0,
		},
		B: []float64{0, 0, 1},
		C: []float64{0, 0, 0, -0.75, 150, -0.02, 6},
	}
	x, obj, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Beale instance did not solve (cycling?): %v", err)
	}
	if math.Abs(obj-(-0.05)) > 1e-9 {
		t.Fatalf("objective = %v, want -0.05", obj)
	}
	// Constraints hold.
	for i := 0; i < p.M; i++ {
		s := 0.0
		for j := 0; j < p.N; j++ {
			s += p.A[i*p.N+j] * x[j]
		}
		if math.Abs(s-p.B[i]) > 1e-8 {
			t.Fatalf("constraint %d violated: %v != %v", i, s, p.B[i])
		}
	}
}

// Highly degenerate random-ish instance: many RHS zeros force ties in
// the ratio test; the solver must terminate and be feasible.
func TestManyDegenerateVertices(t *testing.T) {
	p := Problem{
		M: 4, N: 8,
		A: []float64{
			1, 1, 0, 0, 1, 0, 0, 0,
			1, -1, 0, 0, 0, 1, 0, 0,
			0, 0, 1, 1, 0, 0, 1, 0,
			0, 0, 1, -1, 0, 0, 0, 1,
		},
		B: []float64{0, 0, 2, 0},
		C: []float64{1, 1, 1, 1, 0, 0, 0, 0},
	}
	x, obj, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if obj < -1e-9 {
		t.Fatalf("objective = %v below 0 with non-negative costs", obj)
	}
	for i := 0; i < p.M; i++ {
		s := 0.0
		for j := 0; j < p.N; j++ {
			s += p.A[i*p.N+j] * x[j]
		}
		if math.Abs(s-p.B[i]) > 1e-8 {
			t.Fatalf("constraint %d violated", i)
		}
	}
	for j, v := range x {
		if v < -1e-9 {
			t.Fatalf("x[%d] = %v negative", j, v)
		}
	}
}
