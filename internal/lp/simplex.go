// Package lp implements a dense two-phase primal simplex solver for
// linear programs in standard equality form:
//
//	minimize  cᵀx   subject to   A·x = b,  x ≥ 0.
//
// It exists to support the Basis Pursuit recovery baseline from the
// paper's §2.2: BP recovers a sparse vector by solving
// min ‖x‖₁ s.t. y = Φx, "which is transformed into a linear programming
// problem". The repro band notes the Go sparse-recovery ecosystem is thin,
// so the solver is handwritten here on top of internal/linalg-free dense
// arithmetic.
//
// The implementation is a textbook dense tableau simplex with Bland's
// anti-cycling rule as a fallback after a degeneracy streak. It targets
// the moderate problem sizes BP sees in this repository (hundreds of
// variables); it is not a general-purpose industrial LP code.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Result statuses.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterLimit  = errors.New("lp: iteration limit exceeded")
)

// Problem is an LP in standard form: minimize C·x subject to A·x = B, x ≥ 0.
// A is dense row-major with M rows and N columns (len(A) == M*N).
type Problem struct {
	M, N int
	A    []float64
	B    []float64
	C    []float64
}

// Options tunes the solver.
type Options struct {
	// MaxIter bounds total pivots across both phases. 0 means
	// 50·(M+N)+2000, generous for the problem sizes used here.
	MaxIter int
	// Tol is the feasibility/optimality tolerance. 0 means 1e-9.
	Tol float64
}

// Solve returns an optimal basic feasible solution and its objective.
func Solve(p Problem, opt Options) ([]float64, float64, error) {
	if err := validate(p); err != nil {
		return nil, 0, err
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 50*(p.M+p.N) + 2000
	}

	// Normalize b ≥ 0 by flipping row signs, so artificial variables can
	// start the phase-1 basis at value b.
	a := make([]float64, len(p.A))
	copy(a, p.A)
	b := make([]float64, len(p.B))
	copy(b, p.B)
	for i := 0; i < p.M; i++ {
		if b[i] < 0 {
			b[i] = -b[i]
			row := a[i*p.N : (i+1)*p.N]
			for j := range row {
				row[j] = -row[j]
			}
		}
	}

	t := newTableau(p.M, p.N, a, b)

	// Phase 1: minimize the sum of artificial variables.
	if err := t.runPhase1(opt); err != nil {
		return nil, 0, err
	}
	// Phase 2: original objective.
	x, obj, err := t.runPhase2(p.C, opt)
	if err != nil {
		return nil, 0, err
	}
	return x, obj, nil
}

func validate(p Problem) error {
	if p.M < 0 || p.N <= 0 {
		return fmt.Errorf("lp: bad dimensions M=%d N=%d", p.M, p.N)
	}
	if len(p.A) != p.M*p.N {
		return fmt.Errorf("lp: len(A)=%d, want %d", len(p.A), p.M*p.N)
	}
	if len(p.B) != p.M {
		return fmt.Errorf("lp: len(B)=%d, want %d", len(p.B), p.M)
	}
	if len(p.C) != p.N {
		return fmt.Errorf("lp: len(C)=%d, want %d", len(p.C), p.N)
	}
	for _, v := range append(append(append([]float64{}, p.A...), p.B...), p.C...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: non-finite input coefficient")
		}
	}
	return nil
}

// tableau holds the dense simplex tableau with columns for the N
// structural variables followed by M artificial variables, plus the RHS.
type tableau struct {
	m, n  int       // constraints, structural variables
	width int       // n + m artificials
	rows  []float64 // m rows × (width+1); last entry of each row is RHS
	basis []int     // basis[i] = variable index basic in row i
	cost  []float64 // reduced-cost row, width+1 wide (last = -objective)
}

func newTableau(m, n int, a, b []float64) *tableau {
	width := n + m
	t := &tableau{
		m: m, n: n, width: width,
		rows:  make([]float64, m*(width+1)),
		basis: make([]int, m),
		cost:  make([]float64, width+1),
	}
	for i := 0; i < m; i++ {
		row := t.row(i)
		copy(row[:n], a[i*n:(i+1)*n])
		row[n+i] = 1 // artificial
		row[width] = b[i]
		t.basis[i] = n + i
	}
	return t
}

func (t *tableau) row(i int) []float64 {
	w := t.width + 1
	return t.rows[i*w : (i+1)*w]
}

// setObjective installs reduced costs for objective c over the allowed
// column range [0, limit), pricing out the current basis.
func (t *tableau) setObjective(c []float64, limit int) {
	for j := range t.cost {
		t.cost[j] = 0
	}
	for j := 0; j < len(c); j++ {
		t.cost[j] = c[j]
	}
	// Price out basic variables: cost row must be zero on basis columns.
	for i := 0; i < t.m; i++ {
		cb := 0.0
		if t.basis[i] < len(c) {
			cb = c[t.basis[i]]
		}
		if cb == 0 {
			continue
		}
		row := t.row(i)
		for j := 0; j <= t.width; j++ {
			t.cost[j] -= cb * row[j]
		}
	}
	_ = limit
}

// pivot performs a pivot on (row r, column c).
func (t *tableau) pivot(r, c int) {
	pr := t.row(r)
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		ri := t.row(i)
		f := ri[c]
		if f == 0 {
			continue
		}
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[c] = 0
	}
	f := t.cost[c]
	if f != 0 {
		for j := range t.cost {
			t.cost[j] -= f * pr[j]
		}
		t.cost[c] = 0
	}
	t.basis[r] = c
}

// iterate runs simplex pivots restricted to columns [0, colLimit) until
// optimal. Dantzig rule with a switch to Bland's rule after a run of
// degenerate pivots.
func (t *tableau) iterate(colLimit int, opt Options) error {
	degenerate := 0
	useBland := false
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Entering column.
		enter := -1
		if useBland {
			for j := 0; j < colLimit; j++ {
				if t.cost[j] < -opt.Tol {
					enter = j
					break
				}
			}
		} else {
			best := -opt.Tol
			for j := 0; j < colLimit; j++ {
				if t.cost[j] < best {
					best, enter = t.cost[j], j
				}
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test for leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			row := t.row(i)
			aij := row[enter]
			if aij <= opt.Tol {
				continue
			}
			ratio := row[t.width] / aij
			if ratio < bestRatio-opt.Tol ||
				(useBland && math.Abs(ratio-bestRatio) <= opt.Tol && leave >= 0 && t.basis[i] < t.basis[leave]) {
				bestRatio, leave = ratio, i
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		if bestRatio <= opt.Tol {
			degenerate++
			if degenerate > 2*(t.m+t.n) {
				useBland = true
			}
		} else {
			degenerate = 0
		}
		t.pivot(leave, enter)
	}
	return ErrIterLimit
}

func (t *tableau) runPhase1(opt Options) error {
	// Objective: sum of artificial variables.
	c := make([]float64, t.width)
	for j := t.n; j < t.width; j++ {
		c[j] = 1
	}
	t.setObjective(c, t.width)
	if err := t.iterate(t.width, opt); err != nil {
		return err
	}
	// -cost[width] is the phase-1 objective value.
	if obj := -t.cost[t.width]; obj > 1e-6 {
		return ErrInfeasible
	}
	// Drive any artificial variables remaining in the basis out (they are
	// at value ~0); if a row has no structural pivot it is redundant and
	// can stay — its basic artificial is zero and never re-enters because
	// phase 2 restricts columns to structural ones... except the leaving
	// rule can pull it negative. Safer: pivot them out where possible.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			continue
		}
		row := t.row(i)
		for j := 0; j < t.n; j++ {
			if math.Abs(row[j]) > 1e-7 {
				t.pivot(i, j)
				break
			}
		}
	}
	return nil
}

func (t *tableau) runPhase2(c []float64, opt Options) ([]float64, float64, error) {
	t.setObjective(c, t.n)
	// Forbid artificial columns from re-entering by restricting pivots to
	// structural columns.
	if err := t.iterate(t.n, opt); err != nil {
		return nil, 0, err
	}
	x := make([]float64, t.n)
	for i, bi := range t.basis {
		if bi < t.n {
			x[bi] = t.row(i)[t.width]
		}
	}
	obj := 0.0
	for j, cj := range c {
		obj += cj * x[j]
	}
	return x, obj, nil
}
