package lp

import (
	"math"
	"testing"

	"csoutlier/internal/xrand"
)

func solveOrDie(t *testing.T, p Problem) ([]float64, float64) {
	t.Helper()
	x, obj, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return x, obj
}

func TestSimpleEquality(t *testing.T) {
	// min x1 + x2  s.t.  x1 + x2 = 1, x ≥ 0 → obj 1.
	p := Problem{M: 1, N: 2, A: []float64{1, 1}, B: []float64{1}, C: []float64{1, 1}}
	x, obj := solveOrDie(t, p)
	if math.Abs(obj-1) > 1e-8 {
		t.Fatalf("obj = %v", obj)
	}
	if math.Abs(x[0]+x[1]-1) > 1e-8 {
		t.Fatalf("constraint violated: %v", x)
	}
}

func TestPrefersCheapVariable(t *testing.T) {
	// min 3x1 + x2  s.t.  x1 + x2 = 4 → x = (0,4), obj 4.
	p := Problem{M: 1, N: 2, A: []float64{1, 1}, B: []float64{4}, C: []float64{3, 1}}
	x, obj := solveOrDie(t, p)
	if math.Abs(obj-4) > 1e-8 || math.Abs(x[1]-4) > 1e-8 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestTwoConstraints(t *testing.T) {
	// min x1+2x2+3x3 s.t. x1+x2 = 2; x2+x3 = 3.
	// Candidates: x2=2,x3=1 → 7; x1=2,x2=0,x3=3 → 11; optimum 7.
	p := Problem{
		M: 2, N: 3,
		A: []float64{1, 1, 0, 0, 1, 1},
		B: []float64{2, 3},
		C: []float64{1, 2, 3},
	}
	_, obj := solveOrDie(t, p)
	if math.Abs(obj-7) > 1e-8 {
		t.Fatalf("obj = %v, want 7", obj)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x1 = -5 → x1 = 5.
	p := Problem{M: 1, N: 1, A: []float64{-1}, B: []float64{-5}, C: []float64{1}}
	x, obj := solveOrDie(t, p)
	if math.Abs(x[0]-5) > 1e-8 || math.Abs(obj-5) > 1e-8 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x1 = 1 and x1 = 2 simultaneously.
	p := Problem{M: 2, N: 1, A: []float64{1, 1}, B: []float64{1, 2}, C: []float64{1}}
	if _, _, err := Solve(p, Options{}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x1 s.t. x1 - x2 = 0: x1 = x2 → can grow without bound.
	p := Problem{M: 1, N: 2, A: []float64{1, -1}, B: []float64{0}, C: []float64{-1, 0}}
	if _, _, err := Solve(p, Options{}); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, _, err := Solve(Problem{M: 1, N: 1, A: []float64{math.NaN()}, B: []float64{1}, C: []float64{1}}, Options{}); err == nil {
		t.Fatal("NaN input accepted")
	}
	if _, _, err := Solve(Problem{M: 1, N: 2, A: []float64{1}, B: []float64{1}, C: []float64{1, 1}}, Options{}); err == nil {
		t.Fatal("mis-sized A accepted")
	}
}

func TestRedundantConstraint(t *testing.T) {
	// Same constraint twice: must still solve.
	p := Problem{
		M: 2, N: 2,
		A: []float64{1, 1, 1, 1},
		B: []float64{2, 2},
		C: []float64{1, 3},
	}
	x, obj := solveOrDie(t, p)
	if math.Abs(obj-2) > 1e-8 || math.Abs(x[0]-2) > 1e-8 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

// TestL1MinimizationRandom validates the solver on the exact problem
// shape Basis Pursuit produces: min Σ(u+v) s.t. [Φ,−Φ][u;v] = y where
// y = Φx0 for a sparse x0. With M sufficiently larger than the sparsity,
// BP recovers x0 exactly (Candes–Tao), so the LP optimum must equal ‖x0‖₁.
func TestL1MinimizationRandom(t *testing.T) {
	r := xrand.New(42)
	const n, m, s = 40, 25, 3
	for trial := 0; trial < 5; trial++ {
		phi := make([]float64, m*n)
		for i := range phi {
			phi[i] = r.NormFloat64() / math.Sqrt(m)
		}
		x0 := make([]float64, n)
		for i := 0; i < s; i++ {
			x0[r.Intn(n)] = 1 + 5*r.Float64()
		}
		y := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				y[i] += phi[i*n+j] * x0[j]
			}
		}
		// Build the BP LP over [u; v].
		a := make([]float64, m*2*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a[i*2*n+j] = phi[i*n+j]
				a[i*2*n+n+j] = -phi[i*n+j]
			}
		}
		c := make([]float64, 2*n)
		for j := range c {
			c[j] = 1
		}
		x, obj, err := Solve(Problem{M: m, N: 2 * n, A: a, B: y, C: c}, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		norm1 := 0.0
		for _, v := range x0 {
			norm1 += math.Abs(v)
		}
		if math.Abs(obj-norm1) > 1e-5*math.Max(1, norm1) {
			t.Fatalf("trial %d: BP objective %v, want ‖x0‖₁ = %v", trial, obj, norm1)
		}
		// And the recovered vector matches x0.
		for j := 0; j < n; j++ {
			got := x[j] - x[n+j]
			if math.Abs(got-x0[j]) > 1e-5 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, j, got, x0[j])
			}
		}
	}
}

func BenchmarkSimplexBPShape(b *testing.B) {
	r := xrand.New(1)
	const n, m = 60, 30
	phi := make([]float64, m*n)
	for i := range phi {
		phi[i] = r.NormFloat64()
	}
	x0 := make([]float64, n)
	x0[3], x0[17] = 2, -1
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			y[i] += phi[i*n+j] * x0[j]
		}
	}
	a := make([]float64, m*2*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a[i*2*n+j] = phi[i*n+j]
			a[i*2*n+n+j] = -phi[i*n+j]
		}
	}
	c := make([]float64, 2*n)
	for j := range c {
		c[j] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(Problem{M: m, N: 2 * n, A: a, B: y, C: c}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
