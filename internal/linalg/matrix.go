package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col copies column j into dst (allocating when dst is nil or too short)
// and returns it.
func (m *Matrix) Col(j int, dst Vector) Vector {
	if cap(dst) < m.Rows {
		dst = make(Vector, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = m·x. It panics on dimension mismatch.
// dst is allocated when nil; it must not alias x.
func (m *Matrix) MulVec(x, dst Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with vector %d", m.Rows, m.Cols, len(x)))
	}
	if cap(dst) < m.Rows {
		dst = make(Vector, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT computes dst = mᵀ·x (correlations of every column with x).
// It panics on dimension mismatch. dst is allocated when nil.
func (m *Matrix) MulVecT(x, dst Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecT dims %dx%d with vector %d", m.Rows, m.Cols, len(x)))
	}
	if cap(dst) < m.Cols {
		dst = make(Vector, m.Cols)
	}
	dst = dst[:m.Cols]
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
	return dst
}

// ParallelMulVecT is MulVecT with the column range fanned out over
// GOMAXPROCS goroutines. It is the software stand-in for the GPU
// acceleration the paper leaves as future work (§5): the correlation step
// Φᵀr dominates OMP's per-iteration cost, and it is embarrassingly
// parallel across columns.
func (m *Matrix) ParallelMulVecT(x, dst Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: ParallelMulVecT dims %dx%d with vector %d", m.Rows, m.Cols, len(x)))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 || m.Cols < 4*workers || m.Rows*m.Cols < 1<<16 {
		return m.MulVecT(x, dst)
	}
	if cap(dst) < m.Cols {
		dst = make(Vector, m.Cols)
	}
	dst = dst[:m.Cols]
	chunk := (m.Cols + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= m.Cols {
			break
		}
		hi := lo + chunk
		if hi > m.Cols {
			hi = m.Cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Each worker owns dst[lo:hi]; traverse rows on the outside
			// so every inner loop reads a contiguous row segment of the
			// row-major storage (a column-outer loop would stride by
			// Cols and thrash the cache).
			out := dst[lo:hi]
			for j := range out {
				out[j] = 0
			}
			for i := 0; i < m.Rows; i++ {
				xi := x[i]
				if xi == 0 {
					continue
				}
				row := m.Data[i*m.Cols+lo : i*m.Cols+hi]
				for j, v := range row {
					out[j] += v * xi
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// SolveDense solves the square system A·x = b by Gaussian elimination
// with partial pivoting, overwriting neither input. It returns an error
// when A is (numerically) singular.
func SolveDense(a *Matrix, b Vector) (Vector, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveDense needs square system, got %dx%d and b of %d", a.Rows, a.Cols, len(b))
	}
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pivotAbs := col, abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := abs(m.At(r, col)); a > pivotAbs {
				pivot, pivotAbs = r, a
			}
		}
		if pivotAbs < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
