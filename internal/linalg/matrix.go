package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col copies column j into dst (allocating when dst is nil or too short)
// and returns it.
func (m *Matrix) Col(j int, dst Vector) Vector {
	if cap(dst) < m.Rows {
		dst = make(Vector, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = m·x. It panics on dimension mismatch.
// dst is allocated when nil; it must not alias x.
//
// Each row product runs through the 4-accumulator unrolled Dot kernel;
// like all the unrolled kernels here, the sum is reassociated relative
// to a naive left-fold, so results agree with it only to ~1 ulp per
// term (and exactly between repeated calls — the kernel itself is
// deterministic).
func (m *Matrix) MulVec(x, dst Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with vector %d", m.Rows, m.Cols, len(x)))
	}
	if cap(dst) < m.Rows {
		dst = make(Vector, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		dst[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(x)
	}
	return dst
}

// MulVecT computes dst = mᵀ·x (correlations of every column with x).
// It panics on dimension mismatch. dst is allocated when nil.
func (m *Matrix) MulVecT(x, dst Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecT dims %dx%d with vector %d", m.Rows, m.Cols, len(x)))
	}
	if cap(dst) < m.Cols {
		dst = make(Vector, m.Cols)
	}
	dst = dst[:m.Cols]
	m.mulVecTRange(x, dst, 0, m.Cols)
	return dst
}

// mulVecTRange computes dst[0:hi-lo] = (mᵀ·x)[lo:hi] — the shared
// column-range kernel behind MulVecT and ParallelMulVecT. Rows are
// blocked four at a time so each output element accumulates four
// products per pass (ILP across the FP add chain); the remainder rows
// run unblocked. Because the parallel path partitions columns and every
// column sees the identical row order and blocking, parallel and serial
// results are bit-identical.
func (m *Matrix) mulVecTRange(x Vector, dst Vector, lo, hi int) {
	dst = dst[:hi-lo]
	clear(dst)
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
			continue
		}
		r0 := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		r1 := m.Data[(i+1)*m.Cols+lo : (i+1)*m.Cols+hi]
		r2 := m.Data[(i+2)*m.Cols+lo : (i+2)*m.Cols+hi]
		r3 := m.Data[(i+3)*m.Cols+lo : (i+3)*m.Cols+hi]
		r1 = r1[:len(r0)]
		r2 = r2[:len(r0)]
		r3 = r3[:len(r0)]
		out := dst[:len(r0)]
		for j := range r0 {
			out[j] += (x0*r0[j] + x1*r1[j]) + (x2*r2[j] + x3*r3[j])
		}
	}
	for ; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// minParallelWork is the smallest number of multiply-adds worth handing
// to one goroutine in the parallel kernels. Below roughly 2× this the
// fork-join overhead exceeds the work, so the kernels fall back to the
// serial path; above it the worker count is capped so every goroutine
// still gets at least this much work (spawning GOMAXPROCS workers for a
// barely-over-threshold product used to cost more than it saved at low
// parallelism).
const minParallelWork = 1 << 15

// parallelWorkers returns how many goroutines a kernel doing `work`
// multiply-adds should fan out over: GOMAXPROCS capped by
// work/minParallelWork. A result below 2 means "run serial".
func parallelWorkers(work int) int {
	workers := runtime.GOMAXPROCS(0)
	if maxW := work / minParallelWork; workers > maxW {
		workers = maxW
	}
	return workers
}

// ParallelMulVecT is MulVecT with the column range fanned out over
// worker goroutines. It is the software stand-in for the GPU
// acceleration the paper leaves as future work (§5): the correlation step
// Φᵀr dominates OMP's per-iteration cost, and it is embarrassingly
// parallel across columns.
func (m *Matrix) ParallelMulVecT(x, dst Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: ParallelMulVecT dims %dx%d with vector %d", m.Rows, m.Cols, len(x)))
	}
	workers := parallelWorkers(m.Rows * m.Cols)
	if workers < 2 || m.Cols < 4*workers {
		return m.MulVecT(x, dst)
	}
	// The fan-out lives in its own method: the goroutine closures there
	// make every captured variable escape, and keeping them out of this
	// function keeps the serial fast path (and its callers' steady
	// state) allocation-free.
	return m.parallelMulVecTSlow(x, dst, workers)
}

func (m *Matrix) parallelMulVecTSlow(x, dst Vector, workers int) Vector {
	if cap(dst) < m.Cols {
		dst = make(Vector, m.Cols)
	}
	dst = dst[:m.Cols]
	chunk := (m.Cols + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= m.Cols {
			break
		}
		hi := lo + chunk
		if hi > m.Cols {
			hi = m.Cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Each worker owns dst[lo:hi]; the shared kernel traverses
			// rows on the outside so every inner loop reads a contiguous
			// row segment of the row-major storage (a column-outer loop
			// would stride by Cols and thrash the cache).
			m.mulVecTRange(x, dst[lo:hi], lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// MulMatT computes dsts[q] = mᵀ·rs[q] for every q — the correlation of
// every column with a *block* of residuals in one pass over the matrix
// (Φᵀ·R as a blocked GEMM). Each rs[q] must have length Rows and each
// dsts[q] length Cols; it panics otherwise.
//
// The payoff over len(rs) MulVecT calls is memory traffic: each 4-row
// block of m is loaded once and reused against every residual while it
// is still cache-hot, so the matrix streams from memory once per block
// instead of once per residual. Per output vector the row order, the
// blocking, the zero-skip and the accumulation formula are exactly
// MulVecT's, so dsts[q] is bit-identical to m.MulVecT(rs[q], ·).
func (m *Matrix) MulMatT(rs, dsts []Vector) {
	m.checkMatTDims(rs, dsts)
	m.mulMatTRange(rs, dsts, 0, m.Cols)
}

func (m *Matrix) checkMatTDims(rs, dsts []Vector) {
	if len(rs) != len(dsts) {
		panic(fmt.Sprintf("linalg: MulMatT %d residuals, %d outputs", len(rs), len(dsts)))
	}
	for q := range rs {
		if len(rs[q]) != m.Rows || len(dsts[q]) != m.Cols {
			panic(fmt.Sprintf("linalg: MulMatT dims %dx%d with residual %d, output %d",
				m.Rows, m.Cols, len(rs[q]), len(dsts[q])))
		}
	}
}

// mulMatTRange is the column-range kernel behind MulMatT and
// ParallelMulMatT: it fills dsts[q][lo:hi] for every q. Row blocks run
// on the outside and residuals inside, so each loaded 4-row tile serves
// all residuals; within one q the row traversal is identical to
// mulVecTRange, keeping results bit-identical to the vector kernel.
func (m *Matrix) mulMatTRange(rs, dsts []Vector, lo, hi int) {
	for _, dst := range dsts {
		clear(dst[lo:hi])
	}
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		r1 := m.Data[(i+1)*m.Cols+lo : (i+1)*m.Cols+hi]
		r2 := m.Data[(i+2)*m.Cols+lo : (i+2)*m.Cols+hi]
		r3 := m.Data[(i+3)*m.Cols+lo : (i+3)*m.Cols+hi]
		r1 = r1[:len(r0)]
		r2 = r2[:len(r0)]
		r3 = r3[:len(r0)]
		for q, x := range rs {
			x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
			if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
				continue
			}
			out := dsts[q][lo:hi]
			out = out[:len(r0)]
			for j := range r0 {
				out[j] += (x0*r0[j] + x1*r1[j]) + (x2*r2[j] + x3*r3[j])
			}
		}
	}
	for ; i < m.Rows; i++ {
		row := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		for q, x := range rs {
			xi := x[i]
			if xi == 0 {
				continue
			}
			out := dsts[q][lo:hi]
			for j, v := range row {
				out[j] += v * xi
			}
		}
	}
}

// ParallelMulMatT is MulMatT with the column range fanned out over
// worker goroutines. Workers partition columns, every column of every
// output sees the identical row order, so results stay bit-identical to
// MulMatT (and hence to per-residual MulVecT) at any GOMAXPROCS.
func (m *Matrix) ParallelMulMatT(rs, dsts []Vector) {
	m.checkMatTDims(rs, dsts)
	if len(rs) == 0 {
		return
	}
	workers := parallelWorkers(len(rs) * m.Rows * m.Cols)
	if workers < 2 || m.Cols < 4*workers {
		m.mulMatTRange(rs, dsts, 0, m.Cols)
		return
	}
	chunk := (m.Cols + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= m.Cols {
			break
		}
		hi := lo + chunk
		if hi > m.Cols {
			hi = m.Cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulMatTRange(rs, dsts, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SolveDense solves the square system A·x = b by Gaussian elimination
// with partial pivoting, overwriting neither input. It returns an error
// when A is (numerically) singular.
func SolveDense(a *Matrix, b Vector) (Vector, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveDense needs square system, got %dx%d and b of %d", a.Rows, a.Cols, len(b))
	}
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pivotAbs := col, abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := abs(m.At(r, col)); a > pivotAbs {
				pivot, pivotAbs = r, a
			}
		}
		if pivotAbs < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
