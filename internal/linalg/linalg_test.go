package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"csoutlier/internal/xrand"
)

func randVec(r *xrand.RNG, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func randMat(r *xrand.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestDotAndNorm(t *testing.T) {
	v := Vector{3, 4}
	if v.Dot(v) != 25 {
		t.Fatalf("Dot = %v", v.Dot(v))
	}
	if v.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", v.Norm2())
	}
	if v.Norm1() != 7 {
		t.Fatalf("Norm1 = %v", v.Norm1())
	}
	if v.NormInf() != 4 {
		t.Fatalf("NormInf = %v", v.NormInf())
	}
}

func TestNorm2Extremes(t *testing.T) {
	// The scaled dnrm2 must not overflow for huge entries or lose tiny ones.
	big := Vector{1e200, 1e200}
	if got := big.Norm2(); math.IsInf(got, 0) || math.Abs(got-1e200*math.Sqrt2) > 1e186 {
		t.Fatalf("huge Norm2 = %v", got)
	}
	tiny := Vector{1e-200, 1e-200}
	if got := tiny.Norm2(); got == 0 || math.Abs(got-1e-200*math.Sqrt2) > 1e-214 {
		t.Fatalf("tiny Norm2 = %v", got)
	}
	if (Vector{}).Norm2() != 0 {
		t.Fatal("empty Norm2 != 0")
	}
}

func TestAddScaledAndScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.AddScaled(2, Vector{10, 20, 30})
	want := Vector{21, 42, 63}
	if !v.Equal(want, 0) {
		t.Fatalf("AddScaled = %v", v)
	}
	v.Scale(0.5)
	if !v.Equal(Vector{10.5, 21, 31.5}, 0) {
		t.Fatalf("Scale = %v", v)
	}
}

func TestArgMaxAbs(t *testing.T) {
	idx, val := Vector{1, -7, 7, 3}.ArgMaxAbs()
	if idx != 1 || val != 7 {
		t.Fatalf("ArgMaxAbs = (%d, %v), want (1, 7) with low-index tie-break", idx, val)
	}
	if idx, _ := (Vector{}).ArgMaxAbs(); idx != -1 {
		t.Fatalf("empty ArgMaxAbs idx = %d", idx)
	}
	if idx, val := (Vector{0, 0}).ArgMaxAbs(); idx != 0 || val != 0 {
		t.Fatalf("zero-vector ArgMaxAbs = (%d, %v)", idx, val)
	}
}

func TestMulVecKnown(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vector{1, 1, 1}, nil)
	if !got.Equal(Vector{6, 15}, 1e-12) {
		t.Fatalf("MulVec = %v", got)
	}
	gotT := m.MulVecT(Vector{1, 1}, nil)
	if !gotT.Equal(Vector{5, 7, 9}, 1e-12) {
		t.Fatalf("MulVecT = %v", gotT)
	}
}

func TestMulVecTMatchesParallel(t *testing.T) {
	r := xrand.New(1)
	for _, dims := range [][2]int{{3, 5}, {64, 200}, {128, 1024}} {
		m := randMat(r, dims[0], dims[1])
		x := randVec(r, dims[0])
		a := m.MulVecT(x, nil)
		b := m.ParallelMulVecT(x, nil)
		if !a.Equal(b, 1e-9) {
			t.Fatalf("dims %v: parallel correlate disagrees", dims)
		}
	}
}

// Property: measurement linearity M(ax + by) = a·Mx + b·My — the algebra
// the whole distributed-aggregation paradigm rests on.
func TestMulVecLinearityProperty(t *testing.T) {
	r := xrand.New(2)
	m := randMat(r, 10, 17)
	check := func(seed uint64, a8, b8 int8) bool {
		rr := xrand.New(seed)
		a, b := float64(a8)/16, float64(b8)/16
		x, y := randVec(rr, 17), randVec(rr, 17)
		combo := x.Clone().Scale(a).AddScaled(b, y)
		lhs := m.MulVec(combo, nil)
		rhs := m.MulVec(x, nil).Scale(a).AddScaled(b, m.MulVec(y, nil))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestColAndRow(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	if c := m.Col(1, nil); !c.Equal(Vector{2, 5}, 0) {
		t.Fatalf("Col = %v", c)
	}
	if rw := m.Row(1); !rw.Equal(Vector{4, 5, 6}, 0) {
		t.Fatalf("Row = %v", rw)
	}
	// Col must reuse dst capacity.
	dst := make(Vector, 0, 2)
	c := m.Col(0, dst)
	if !c.Equal(Vector{1, 4}, 0) {
		t.Fatalf("Col with dst = %v", c)
	}
}

func TestSolveDense(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%8
		a := randMat(r, n, n)
		want := randVec(r, n)
		b := a.MulVec(want, nil)
		got, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(want, 1e-7) {
			t.Fatalf("trial %d: solve mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := SolveDense(a, Vector{1, 1}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{0, 1, 1, 0})
	x, err := SolveDense(a, Vector{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vector{7, 3}, 1e-12) {
		t.Fatalf("pivoted solve = %v", x)
	}
}

func TestIncrementalQRReconstruction(t *testing.T) {
	r := xrand.New(4)
	const m, k = 30, 10
	cols := make([]Vector, k)
	f := NewIncrementalQR(m)
	for j := range cols {
		cols[j] = randVec(r, m)
		if _, err := f.Append(cols[j]); err != nil {
			t.Fatalf("append %d: %v", j, err)
		}
	}
	if f.K() != k {
		t.Fatalf("K = %d", f.K())
	}
	// Q must be orthonormal.
	if e := f.OrthogonalityError(); e > 1e-10 {
		t.Fatalf("orthogonality error %v", e)
	}
	// Least squares on a consistent system recovers the coefficients.
	want := randVec(r, k)
	y := make(Vector, m)
	for j, c := range cols {
		y.AddScaled(want[j], c)
	}
	f.SetTarget(y)
	z, err := f.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-8) {
		t.Fatalf("Solve\n got %v\nwant %v", z, want)
	}
	if rn := f.ResidualNorm(); rn > 1e-8 {
		t.Fatalf("residual on consistent system = %v", rn)
	}
	res := f.Residual(nil)
	if res.Norm2() > 1e-8 {
		t.Fatalf("materialized residual = %v", res.Norm2())
	}
}

func TestIncrementalQRResidualOrthogonal(t *testing.T) {
	r := xrand.New(5)
	const m, k = 25, 7
	f := NewIncrementalQR(m)
	for j := 0; j < k; j++ {
		if _, err := f.Append(randVec(r, m)); err != nil {
			t.Fatal(err)
		}
	}
	y := randVec(r, m)
	f.SetTarget(y)
	res := f.Residual(nil)
	for j := 0; j < k; j++ {
		if d := math.Abs(f.Q(j).Dot(res)); d > 1e-10 {
			t.Fatalf("residual not orthogonal to q%d: %v", j, d)
		}
	}
	// Pythagoras: ‖y‖² = ‖proj‖² + ‖res‖², and ResidualNorm matches.
	if got, want := f.ResidualNorm(), res.Norm2(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ResidualNorm %v vs materialized %v", got, want)
	}
}

func TestIncrementalQRRankDeficient(t *testing.T) {
	f := NewIncrementalQR(3)
	if _, err := f.Append(Vector{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(Vector{2, 0, 0}); err != ErrRankDeficient {
		t.Fatalf("expected ErrRankDeficient, got %v", err)
	}
	if f.K() != 1 {
		t.Fatalf("rank-deficient column was appended, K=%d", f.K())
	}
}

func TestIncrementalQRTargetBeforeAppend(t *testing.T) {
	// SetTarget first, then append: the Qᵀy cache must stay consistent.
	r := xrand.New(6)
	const m = 20
	f := NewIncrementalQR(m)
	y := randVec(r, m)
	f.SetTarget(y)
	cols := []Vector{randVec(r, m), randVec(r, m), randVec(r, m)}
	for _, c := range cols {
		if _, err := f.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild the same factorization appending first, target second.
	g := NewIncrementalQR(m)
	for _, c := range cols {
		if _, err := g.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	g.SetTarget(y)
	if a, b := f.ResidualNorm(), g.ResidualNorm(); math.Abs(a-b) > 1e-10 {
		t.Fatalf("order-dependent residual: %v vs %v", a, b)
	}
}

func TestIncrementalQRManyColumnsStaysOrthogonal(t *testing.T) {
	// The paper's §5 worry: floating-point drift over hundreds of
	// iterations. Re-orthogonalization must keep the basis clean.
	r := xrand.New(7)
	const m, k = 400, 300
	f := NewIncrementalQR(m)
	for j := 0; j < k; j++ {
		if _, err := f.Append(randVec(r, m)); err != nil {
			t.Fatalf("append %d: %v", j, err)
		}
	}
	if e := f.OrthogonalityError(); e > 1e-9 {
		t.Fatalf("after %d columns, orthogonality error %v", k, e)
	}
}

func TestSolveDenseAgainstQR(t *testing.T) {
	// Cross-validate the two solvers on the same square system.
	r := xrand.New(8)
	const n = 12
	a := randMat(r, n, n)
	b := randVec(r, n)
	direct, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f := NewIncrementalQR(n)
	for j := 0; j < n; j++ {
		if _, err := f.Append(a.Col(j, nil)); err != nil {
			t.Fatal(err)
		}
	}
	f.SetTarget(b)
	viaQR, err := f.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(viaQR, 1e-6) {
		t.Fatalf("solver disagreement:\n GE %v\n QR %v", direct, viaQR)
	}
}

func BenchmarkMulVecT(b *testing.B) {
	r := xrand.New(1)
	m := randMat(r, 500, 2000)
	x := randVec(r, 500)
	dst := make(Vector, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecT(x, dst)
	}
}

func BenchmarkParallelMulVecT(b *testing.B) {
	r := xrand.New(1)
	m := randMat(r, 500, 2000)
	x := randVec(r, 500)
	dst := make(Vector, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ParallelMulVecT(x, dst)
	}
}

func BenchmarkIncrementalQRAppend(b *testing.B) {
	r := xrand.New(1)
	const m = 500
	cols := make([]Vector, 100)
	for i := range cols {
		cols[i] = randVec(r, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewIncrementalQR(m)
		for _, c := range cols {
			if _, err := f.Append(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}
