package linalg

import (
	"math"
	"testing"

	"csoutlier/internal/xrand"
)

// TestCholeskyAgreesWithSolveDense cross-checks the Cholesky solve
// against the pivoted-LU SolveDense on random SPD systems A = BᵀB + ρI.
func TestCholeskyAgreesWithSolveDense(t *testing.T) {
	rng := xrand.New(0xc401e5)
	for _, n := range []int{1, 2, 5, 17, 40} {
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := 0.0
				for k := 0; k < n; k++ {
					v += b.At(k, i) * b.At(k, j)
				}
				if i == j {
					v += 1.5 // ρI keeps it well-conditioned
				}
				a.Set(i, j, v)
			}
		}
		rhs := make(Vector, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		chol, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := chol.SolveInto(nil, rhs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := SolveDense(a.Clone(), rhs.Clone())
		if err != nil {
			t.Fatalf("n=%d: SolveDense: %v", n, err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: x[%d] = %g, want %g", n, i, got[i], want[i])
			}
		}
		// And A·x ≈ rhs directly.
		ax := a.MulVec(got, nil)
		for i := range ax {
			if math.Abs(ax[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
				t.Fatalf("n=%d: (Ax)[%d] = %g, want %g", n, i, ax[i], rhs[i])
			}
		}
	}
}

// TestCholeskyRejectsIndefinite checks the SPD guard.
func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, −1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("NewCholesky accepted an indefinite matrix")
	}
	b := NewMatrix(2, 3)
	if _, err := NewCholesky(b); err == nil {
		t.Fatal("NewCholesky accepted a non-square matrix")
	}
}
