package linalg

import (
	"math"
	"testing"
)

func TestFillSumClone(t *testing.T) {
	v := NewVector(4).Fill(2.5)
	if v.Sum() != 10 {
		t.Fatalf("Sum = %v", v.Sum())
	}
	c := v.Clone()
	c[0] = -1
	if v[0] != 2.5 {
		t.Fatal("Clone aliases original")
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestAddScaledLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vector{1}.AddScaled(1, Vector{1, 2})
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for _, f := range []func(){
		func() { m.MulVec(Vector{1, 2}, nil) },
		func() { m.MulVecT(Vector{1, 2, 3}, nil) },
		func() { m.ParallelMulVecT(Vector{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on dimension mismatch")
				}
			}()
			f()
		}()
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone aliases storage")
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestVectorEqualLengthMismatch(t *testing.T) {
	if (Vector{1}).Equal(Vector{1, 2}, 1) {
		t.Fatal("length mismatch reported equal")
	}
}

func TestSolveDenseRejectsNonSquare(t *testing.T) {
	if _, err := SolveDense(NewMatrix(2, 3), Vector{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := SolveDense(NewMatrix(2, 2), Vector{1}); err == nil {
		t.Fatal("mis-sized rhs accepted")
	}
}

func TestIncrementalQRErrors(t *testing.T) {
	f := NewIncrementalQR(3)
	if _, err := f.Append(Vector{1, 2}); err == nil {
		t.Fatal("wrong-length column accepted")
	}
	if _, err := f.Solve(); err == nil {
		t.Fatal("Solve before SetTarget accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Residual before SetTarget did not panic")
			}
		}()
		f.Residual(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ResidualNorm before SetTarget did not panic")
			}
		}()
		f.ResidualNorm()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wrong-length SetTarget did not panic")
			}
		}()
		f.SetTarget(Vector{1})
	}()
}

func TestIncrementalQREmptySolve(t *testing.T) {
	f := NewIncrementalQR(3)
	f.SetTarget(Vector{1, 2, 3})
	z, err := f.Solve()
	if err != nil || len(z) != 0 {
		t.Fatalf("empty Solve = %v, %v", z, err)
	}
	if rn := f.ResidualNorm(); math.Abs(rn-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("empty-basis residual = %v", rn)
	}
}

func TestParallelMulVecTSmallFallsBackToSerial(t *testing.T) {
	// Tiny matrices take the serial path; results must still be right.
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.ParallelMulVecT(Vector{1, 1}, nil)
	if !got.Equal(Vector{5, 7, 9}, 1e-12) {
		t.Fatalf("ParallelMulVecT = %v", got)
	}
}
