package linalg

import (
	"math"
	"testing"

	"csoutlier/internal/xrand"
)

// TestMulMatTMatchesMulVecT pins the blocked GEMM's bit-identity
// contract: every output column of MulMatT (and its parallel form) must
// equal the per-residual MulVecT result bit-for-bit, across shapes that
// exercise the 4-row blocking remainder and the zero-skip path.
func TestMulMatTMatchesMulVecT(t *testing.T) {
	r := xrand.New(11)
	shapes := []struct{ rows, cols, q int }{
		{1, 1, 1},
		{4, 8, 2},
		{7, 33, 3},   // rows%4 != 0: remainder loop
		{64, 257, 5}, // odd column count
		{129, 512, 9},
	}
	for _, sh := range shapes {
		m := randMat(r, sh.rows, sh.cols)
		rs := make([]Vector, sh.q)
		for q := range rs {
			rs[q] = randVec(r, sh.rows)
			// Zero out stretches so the zero-skip branches fire, including
			// a fully zero residual.
			if q == 0 {
				clear(rs[q])
			} else {
				for i := 0; i+q < sh.rows; i += q + 1 {
					rs[q][i] = 0
				}
			}
		}
		for _, parallel := range []bool{false, true} {
			dsts := make([]Vector, sh.q)
			for q := range dsts {
				dsts[q] = make(Vector, sh.cols)
			}
			if parallel {
				m.ParallelMulMatT(rs, dsts)
			} else {
				m.MulMatT(rs, dsts)
			}
			for q := range rs {
				want := m.MulVecT(rs[q], nil)
				for j := range want {
					if math.Float64bits(dsts[q][j]) != math.Float64bits(want[j]) {
						t.Fatalf("%dx%d q=%d parallel=%v: dst[%d]=%v, MulVecT gives %v (bit-exact)",
							sh.rows, sh.cols, q, parallel, j, dsts[q][j], want[j])
					}
				}
			}
		}
	}
}

// TestMulMatTDimensionPanics checks the GEMM rejects mismatched blocks.
func TestMulMatTDimensionPanics(t *testing.T) {
	m := NewMatrix(4, 6)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("count mismatch", func() {
		m.MulMatT([]Vector{make(Vector, 4)}, nil)
	})
	expectPanic("residual length", func() {
		m.MulMatT([]Vector{make(Vector, 3)}, []Vector{make(Vector, 6)})
	})
	expectPanic("output length", func() {
		m.MulMatT([]Vector{make(Vector, 4)}, []Vector{make(Vector, 5)})
	})
}

// TestParallelWorkersScaling pins the work/worker gate: tiny products
// run serial, and the worker count never exceeds work/minParallelWork,
// so no goroutine is dispatched for less work than the fork costs.
func TestParallelWorkersScaling(t *testing.T) {
	if w := parallelWorkers(0); w >= 2 {
		t.Fatalf("zero work got %d workers", w)
	}
	if w := parallelWorkers(minParallelWork * 2); w > 2 {
		t.Fatalf("2 units of work got %d workers", w)
	}
	if w := parallelWorkers(1 << 30); w < 1 {
		t.Fatalf("large work got %d workers", w)
	}
}
