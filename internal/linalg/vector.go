// Package linalg provides the dense linear-algebra kernels that the
// compressive-sensing pipeline is built on: vectors, row-major matrices,
// and an incremental Gram–Schmidt QR factorization.
//
// The paper's recovery path (§5) runs orthogonal matching pursuit with a
// QR factorization maintained one column at a time ("we optimized the
// matrix computation in the recovery using QR factorization with
// Gram-Schmidt process"); the authors call into Intel MKL, this package
// re-implements the same computation in pure Go, with the classic
// "twice is enough" re-orthogonalization pass to keep Q numerically
// orthonormal at several hundred iterations.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product <v, w>. It panics if lengths differ.
//
// The loop is unrolled four-wide with independent accumulators, which
// breaks the serial FP add chain (≈4× ILP) but reassociates the sum:
// results match a naive left-fold only to ~1 ulp per term. The kernel
// itself is deterministic — equal inputs give bit-equal outputs on
// every call and platform.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i] * w[i]
		s1 += v[i+1] * w[i+1]
		s2 += v[i+2] * w[i+2]
		s3 += v[i+3] * w[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(v); i++ {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm, guarding against overflow/underflow
// by scaling (as in BLAS dnrm2).
func (v Vector) Norm2() float64 {
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the sum of absolute values.
func (v Vector) Norm1() float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute value (0 for an empty vector).
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Scale multiplies every entry by a, in place, and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AddScaled performs v += a*w in place (BLAS axpy) and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i, x := range w {
		v[i] += a * x
	}
	return v
}

// Add performs v += w in place and returns v.
func (v Vector) Add(w Vector) Vector { return v.AddScaled(1, w) }

// Sub performs v -= w in place and returns v.
func (v Vector) Sub(w Vector) Vector { return v.AddScaled(-1, w) }

// Equal reports whether v and w agree within absolute tolerance tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-w[i]) > tol {
			return false
		}
	}
	return true
}

// Fill sets every entry to a and returns v.
func (v Vector) Fill(a float64) Vector {
	for i := range v {
		v[i] = a
	}
	return v
}

// ArgMaxAbs returns the index of the entry with the largest absolute
// value, and that absolute value. For an empty vector it returns (-1, 0).
// Ties break toward the lower index, which keeps the OMP column-selection
// deterministic.
func (v Vector) ArgMaxAbs() (int, float64) {
	best, bestAbs := -1, 0.0
	for i, x := range v {
		if a := math.Abs(x); a > bestAbs {
			best, bestAbs = i, a
		} else if best == -1 {
			best = i
		}
	}
	return best, bestAbs
}
