package linalg

import (
	"fmt"
	"math"
)

// IncrementalQR maintains a thin QR factorization A = Q·R of a tall
// matrix whose columns arrive one at a time — exactly the access pattern
// of orthogonal matching pursuit, which appends the newly selected
// dictionary column each iteration and then needs the least-squares
// coefficients against all selected columns.
//
// Q is m×k with orthonormal columns, R is k×k upper-triangular. Columns
// are orthogonalized by modified Gram–Schmidt with one re-orthogonalization
// pass ("twice is enough", Giraud et al.), which keeps ‖QᵀQ−I‖ at the
// round-off level even after many hundreds of appended columns — the
// floating-point drift the paper calls out in §5 as a practical obstacle.
//
// The factorization is reusable: Reset rewinds it to zero columns while
// keeping all backing storage, so a recovery Workspace that replays
// queries of similar size performs no allocations after warm-up.
type IncrementalQR struct {
	m int // row count
	k int // active column count; q[:k], r[:k] are live
	// q and r retain capacity beyond k across Reset: slot i is reused by
	// the (i+1)-th Append of the next run when its buffer is big enough.
	q   []Vector // orthonormal columns, each of length m
	r   []Vector // r[j] holds column j of R: entries 0..j
	qty Vector   // Qᵀy cache for the current target, see SetTarget
	y   Vector   // current target
}

// NewIncrementalQR returns an empty factorization for m-row columns.
func NewIncrementalQR(m int) *IncrementalQR {
	return &IncrementalQR{m: m}
}

// Reset rewinds the factorization to zero columns for m-row columns,
// retaining all previously allocated storage for reuse.
func (f *IncrementalQR) Reset(m int) {
	f.m = m
	f.k = 0
	f.y = nil
	f.qty = f.qty[:0]
}

// K returns the number of columns appended so far.
func (f *IncrementalQR) K() int { return f.k }

// M returns the row dimension.
func (f *IncrementalQR) M() int { return f.m }

// slot returns the k-th column buffer resized to n, reusing retained
// storage when possible. vecs is f.q or f.r; k ≤ len(vecs).
func slot(vecs []Vector, k, n int) ([]Vector, Vector) {
	if k < len(vecs) && cap(vecs[k]) >= n {
		return vecs, vecs[k][:n]
	}
	v := make(Vector, n)
	if k < len(vecs) {
		vecs[k] = v
	} else {
		vecs = append(vecs, v)
	}
	return vecs, v
}

// Append orthogonalizes column a against the current basis and appends
// it. It returns the norm of the orthogonal remainder (the new diagonal
// entry of R); a value near zero means a is numerically inside the span
// of the existing columns, in which case the column is NOT appended and
// ErrRankDeficient is returned.
func (f *IncrementalQR) Append(a Vector) (float64, error) {
	if len(a) != f.m {
		return 0, fmt.Errorf("linalg: Append column length %d, want %d", len(a), f.m)
	}
	k := f.k
	var v Vector
	f.q, v = slot(f.q, k, f.m)
	copy(v, a)
	var rcol Vector
	f.r, rcol = slot(f.r, k, k+1)
	clear(rcol)
	origNorm := v.Norm2()

	// Modified Gram–Schmidt, then one re-orthogonalization sweep to
	// recover the orthogonality MGS loses in ill-conditioned bases.
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < k; j++ {
			c := f.q[j].Dot(v)
			rcol[j] += c
			v.AddScaled(-c, f.q[j])
		}
	}
	norm := v.Norm2()
	rcol[k] = norm
	if norm <= 1e-12*math.Max(origNorm, 1) {
		return norm, ErrRankDeficient
	}
	v.Scale(1 / norm)
	f.q[k] = v
	f.r[k] = rcol
	f.k = k + 1
	if f.y != nil {
		f.qty = append(f.qty, v.Dot(f.y))
	}
	return norm, nil
}

// ErrRankDeficient is returned by Append when the candidate column lies
// (numerically) in the span of the already-appended columns.
var ErrRankDeficient = fmt.Errorf("linalg: column is in span of existing basis (rank deficient)")

// SetTarget fixes the right-hand side y for subsequent Residual and
// Solve calls and primes the Qᵀy cache. The caller must not mutate y
// afterwards.
func (f *IncrementalQR) SetTarget(y Vector) {
	if len(y) != f.m {
		panic(fmt.Sprintf("linalg: target length %d, want %d", len(y), f.m))
	}
	f.y = y
	f.qty = f.qty[:0]
	for _, q := range f.q[:f.k] {
		f.qty = append(f.qty, q.Dot(y))
	}
}

// Residual writes y − proj(y, span Q) into dst and returns it. This is
// the r-update in OMP's iteration (Algorithm 2 in the paper): because Q
// is orthonormal, proj(y, ΦS) = Q·(Qᵀy), no normal equations needed.
func (f *IncrementalQR) Residual(dst Vector) Vector {
	if f.y == nil {
		panic("linalg: Residual before SetTarget")
	}
	if cap(dst) < f.m {
		dst = make(Vector, f.m)
	}
	dst = dst[:f.m]
	copy(dst, f.y)
	for j, q := range f.q[:f.k] {
		dst.AddScaled(-f.qty[j], q)
	}
	return dst
}

// ResidualNorm returns ‖y − proj(y, span Q)‖₂ without materializing the
// residual: ‖r‖² = ‖y‖² − ‖Qᵀy‖² (Pythagoras for orthonormal Q). The max
// with 0 guards against cancellation.
func (f *IncrementalQR) ResidualNorm() float64 {
	if f.y == nil {
		panic("linalg: ResidualNorm before SetTarget")
	}
	yy := f.y.Dot(f.y)
	qq := 0.0
	for _, c := range f.qty {
		qq += c * c
	}
	d := yy - qq
	if d < 0 {
		d = 0
	}
	return math.Sqrt(d)
}

// Solve returns the least-squares coefficients z minimizing ‖A·z − y‖₂
// over the appended columns, by back-substituting R·z = Qᵀy.
func (f *IncrementalQR) Solve() (Vector, error) { return f.SolveInto(nil) }

// SolveInto is Solve writing into dst (allocated when nil or too small),
// for callers that reuse the coefficient buffer across queries.
func (f *IncrementalQR) SolveInto(dst Vector) (Vector, error) {
	if f.y == nil {
		return nil, fmt.Errorf("linalg: Solve before SetTarget")
	}
	k := f.k
	if cap(dst) < k {
		dst = make(Vector, k)
	}
	z := dst[:k]
	copy(z, f.qty)
	// R is stored by columns: f.r[j][i] = R[i][j] for i <= j.
	for i := k - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < k; j++ {
			s -= f.r[j][i] * z[j]
		}
		diag := f.r[i][i]
		if diag == 0 {
			return nil, fmt.Errorf("linalg: zero diagonal in R at %d", i)
		}
		z[i] = s / diag
	}
	return z, nil
}

// Q returns the j-th orthonormal basis column (aliased, do not mutate).
func (f *IncrementalQR) Q(j int) Vector { return f.q[j] }

// OrthogonalityError returns max |<qᵢ,qⱼ>−δᵢⱼ| over all pairs — a direct
// measure of the numerical health of the basis, used in tests and in the
// ablation benches.
func (f *IncrementalQR) OrthogonalityError() float64 {
	worst := 0.0
	for i := 0; i < f.k; i++ {
		for j := i; j < f.k; j++ {
			d := f.q[i].Dot(f.q[j])
			if i == j {
				d -= 1
			}
			if a := math.Abs(d); a > worst {
				worst = a
			}
		}
	}
	return worst
}
