package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD reports a Cholesky factorization attempt on a matrix that
// is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky is the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ, factored once and reused for many solves —
// the pattern the Dantzig-selector ADMM needs, where every iteration
// solves against the same ρI + Φ·Φᵀ Gram matrix. A solve costs two
// triangular back-substitutions (O(n²)) instead of a fresh O(n³) LU.
type Cholesky struct {
	n int
	l *Matrix // lower triangle; strict upper triangle is unused
}

// NewCholesky factors the SPD matrix a (which is not modified).
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotSPD, j, d)
		}
		root := math.Sqrt(d)
		l.Set(j, j, root)
		for i := j + 1; i < n; i++ {
			v := a.At(i, j)
			for k := 0; k < j; k++ {
				v -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, v/root)
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// SolveInto solves A·x = b into dst (allocated when nil or short) via
// forward substitution L·z = b then back substitution Lᵀ·x = z.
func (c *Cholesky) SolveInto(dst, b Vector) (Vector, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("linalg: Cholesky solve: len(b)=%d, n=%d", len(b), c.n)
	}
	if cap(dst) < c.n {
		dst = make(Vector, c.n)
	}
	dst = dst[:c.n]
	// L·z = b (z stored in dst)
	for i := 0; i < c.n; i++ {
		v := b[i]
		row := c.l.Row(i)
		for k := 0; k < i; k++ {
			v -= row[k] * dst[k]
		}
		dst[i] = v / row[i]
	}
	// Lᵀ·x = z
	for i := c.n - 1; i >= 0; i-- {
		v := dst[i]
		for k := i + 1; k < c.n; k++ {
			v -= c.l.At(k, i) * dst[k]
		}
		dst[i] = v / c.l.At(i, i)
	}
	return dst, nil
}
