package queries

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"csoutlier/internal/xrand"
)

// materialize expands a Recovered into the full N-vector for
// brute-force cross-checks.
func materialize(r *Recovered) []float64 {
	x := make([]float64, r.N)
	for i := range x {
		x[i] = r.Mode
	}
	for i, j := range r.Support {
		x[j] = r.Values[i]
	}
	return x
}

func sample() *Recovered {
	return &Recovered{
		N:       10,
		Mode:    5,
		Support: []int{2, 7, 9},
		Values:  []float64{100, -50, 7},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Recovered{
		{N: 0},
		{N: 3, Support: []int{0}, Values: nil},
		{N: 3, Support: []int{3}, Values: []float64{1}},
		{N: 3, Support: []int{-1}, Values: []float64{1}},
		{N: 3, Support: []int{1, 1}, Values: []float64{1, 2}},
		{N: 1, Support: []int{0, 0}, Values: []float64{1, 2}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("bad case %d accepted", i)
		}
	}
}

func TestSumMean(t *testing.T) {
	r := sample()
	want := 0.0
	for _, v := range materialize(r) {
		want += v
	}
	if got := Sum(r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if got := Mean(r); math.Abs(got-want/10) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestPercentileAgainstBruteForce(t *testing.T) {
	r := sample()
	x := materialize(r)
	sort.Float64s(x)
	for _, q := range []float64{0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1} {
		got, err := Percentile(r, q)
		if err != nil {
			t.Fatal(err)
		}
		rank := int(math.Ceil(q * float64(r.N)))
		if rank < 1 {
			rank = 1
		}
		want := x[rank-1]
		if got != want {
			t.Fatalf("q=%v: got %v, want %v", q, got, want)
		}
	}
	if _, err := Percentile(r, -0.1); err == nil {
		t.Fatal("q<0 accepted")
	}
	if _, err := Percentile(r, 1.1); err == nil {
		t.Fatal("q>1 accepted")
	}
}

func TestPercentileProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(50)
		s := rng.Intn(n)
		r := &Recovered{N: n, Mode: float64(rng.Intn(100))}
		perm := rng.Perm(n)
		for i := 0; i < s; i++ {
			r.Support = append(r.Support, perm[i])
			r.Values = append(r.Values, float64(rng.Intn(200)-100))
		}
		x := materialize(r)
		sort.Float64s(x)
		for _, q := range []float64{0, 0.3, 0.5, 0.9, 1} {
			got, err := Percentile(r, q)
			if err != nil {
				return false
			}
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			if got != x[rank-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKBottomK(t *testing.T) {
	r := sample()
	top := TopK(r, 3)
	if len(top) != 3 || top[0].Value != 100 || top[1].Value != 7 || top[2].Value != 5 {
		t.Fatalf("TopK = %v", top)
	}
	if top[0].Index != 2 || top[1].Index != 9 || top[2].Index != -1 {
		t.Fatalf("TopK indices = %v", top)
	}
	bot := BottomK(r, 2)
	if len(bot) != 2 || bot[0].Value != -50 || bot[1].Value != 5 {
		t.Fatalf("BottomK = %v", bot)
	}
	if TopK(r, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestTopKModeBlockExpansion(t *testing.T) {
	// k reaching deep into the mode block must emit repeated mode
	// entries, not run dry.
	r := &Recovered{N: 5, Mode: 10, Support: []int{0}, Values: []float64{99}}
	top := TopK(r, 4)
	if len(top) != 4 {
		t.Fatalf("TopK len = %d", len(top))
	}
	for _, e := range top[1:] {
		if e.Value != 10 || e.Index != -1 {
			t.Fatalf("TopK = %v", top)
		}
	}
	// k > N clamps.
	if got := TopK(r, 99); len(got) != 5 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestTopKBruteForceProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 3 + rng.Intn(30)
		s := rng.Intn(n + 1)
		r := &Recovered{N: n, Mode: float64(rng.Intn(20))}
		perm := rng.Perm(n)
		for i := 0; i < s; i++ {
			r.Support = append(r.Support, perm[i])
			r.Values = append(r.Values, float64(rng.Intn(100)-50))
		}
		k := 1 + rng.Intn(n)
		x := materialize(r)
		sort.Sort(sort.Reverse(sort.Float64Slice(x)))
		top := TopK(r, k)
		if len(top) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if top[i].Value != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	if got := Range(sample()); got != 150 {
		t.Fatalf("Range = %v", got)
	}
	// All entries on support: mode must not leak into extremes.
	r := &Recovered{N: 2, Mode: 1e9, Support: []int{0, 1}, Values: []float64{3, 10}}
	if got := Range(r); got != 7 {
		t.Fatalf("full-support Range = %v", got)
	}
}
