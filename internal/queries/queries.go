// Package queries answers the "related aggregation queries" the paper
// says the paradigm extends to (§1: "mean, top-k, percentile, ... in
// large-scale distributed systems") from a recovered compressed
// aggregate, without ever materializing the N-length vector: a
// recovered aggregate is (mode, outlier support), so every order
// statistic is computable from the s outliers plus the (N−s)-fold
// repeated mode.
package queries

import (
	"fmt"
	"math"
	"sort"
)

// Recovered is the compact recovered representation of a global
// aggregate: N entries, of which Support carry Values and the rest
// equal Mode. It is what BOMP returns, reshaped for query answering.
type Recovered struct {
	N       int
	Mode    float64
	Support []int     // outlier positions (any order)
	Values  []float64 // full values at Support (parallel slice)
}

// Validate checks internal consistency.
func (r *Recovered) Validate() error {
	if r.N <= 0 {
		return fmt.Errorf("queries: N=%d", r.N)
	}
	if len(r.Support) != len(r.Values) {
		return fmt.Errorf("queries: support/values length mismatch %d vs %d", len(r.Support), len(r.Values))
	}
	if len(r.Support) > r.N {
		return fmt.Errorf("queries: support larger than N")
	}
	seen := make(map[int]bool, len(r.Support))
	for _, j := range r.Support {
		if j < 0 || j >= r.N {
			return fmt.Errorf("queries: support index %d out of [0,%d)", j, r.N)
		}
		if seen[j] {
			return fmt.Errorf("queries: duplicate support index %d", j)
		}
		seen[j] = true
	}
	return nil
}

// Sum returns Σx — exact on the recovered representation.
func Sum(r *Recovered) float64 {
	s := r.Mode * float64(r.N-len(r.Support))
	for _, v := range r.Values {
		s += v
	}
	return s
}

// Mean returns Σx / N.
func Mean(r *Recovered) float64 { return Sum(r) / float64(r.N) }

// Percentile returns the q-quantile of the recovered multiset,
// q ∈ [0, 1], using the nearest-rank definition. Because N−s entries
// equal the mode, most quantiles ARE the mode; only the extreme tails
// reach into the outliers — which is exactly why a sparse sketch
// suffices for percentile queries on concentrated data.
func Percentile(r *Recovered, q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("queries: quantile %v outside [0,1]", q)
	}
	rank := int(math.Ceil(q * float64(r.N)))
	if rank < 1 {
		rank = 1
	}
	if rank > r.N {
		rank = r.N
	}
	below := make([]float64, 0, len(r.Values))
	above := make([]float64, 0, len(r.Values))
	for _, v := range r.Values {
		if v < r.Mode {
			below = append(below, v)
		} else {
			above = append(above, v)
		}
	}
	sort.Float64s(below)
	sort.Float64s(above)
	// Sorted order: below..., mode × (N − |below| − |above|), above...
	if rank <= len(below) {
		return below[rank-1], nil
	}
	modeCount := r.N - len(below) - len(above)
	if rank <= len(below)+modeCount {
		return r.Mode, nil
	}
	return above[rank-1-len(below)-modeCount], nil
}

// Entry is a (position, value) pair in query answers.
type Entry struct {
	Index int
	Value float64
}

// TopK returns the k largest values (ties broken toward lower index).
// When the mode itself ranks among the top k, one representative
// mode-entry with Index = −1 stands for the whole mode block.
func TopK(r *Recovered, k int) []Entry {
	return extremeK(r, k, func(a, b float64) bool { return a > b })
}

// BottomK returns the k smallest values, symmetric to TopK.
func BottomK(r *Recovered, k int) []Entry {
	return extremeK(r, k, func(a, b float64) bool { return a < b })
}

func extremeK(r *Recovered, k int, better func(a, b float64) bool) []Entry {
	if k <= 0 {
		return nil
	}
	if k > r.N {
		k = r.N
	}
	cands := make([]Entry, 0, len(r.Values)+1)
	for i, j := range r.Support {
		cands = append(cands, Entry{Index: j, Value: r.Values[i]})
	}
	modeCount := r.N - len(r.Support)
	if modeCount > 0 {
		cands = append(cands, Entry{Index: -1, Value: r.Mode})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Value != cands[b].Value {
			return better(cands[a].Value, cands[b].Value)
		}
		return cands[a].Index < cands[b].Index
	})
	out := make([]Entry, 0, k)
	for _, c := range cands {
		if len(out) == k {
			break
		}
		if c.Index == -1 {
			// The mode block holds modeCount copies; emit as many as fit.
			for i := 0; i < modeCount && len(out) < k; i++ {
				out = append(out, Entry{Index: -1, Value: r.Mode})
			}
			continue
		}
		out = append(out, c)
	}
	return out
}

// Range returns the recovered max − min.
func Range(r *Recovered) float64 {
	max, min := r.Mode, r.Mode
	if len(r.Support) == r.N {
		// No mode block: extremes come from values only.
		max, min = math.Inf(-1), math.Inf(1)
	}
	for _, v := range r.Values {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	return max - min
}
