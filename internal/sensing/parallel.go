package sensing

// Column-parallel kernel plumbing shared by the regenerating ensembles.
//
// Every ensemble here derives column j from its own PRNG sub-stream
// (Split(j+1) of the consensus seed), so per-column work is independent
// and can fan out over GOMAXPROCS workers with NO change in the bits
// produced: a column's value never depends on which goroutine computed
// it. Reductions that fold many columns into one vector (Measure,
// MeasureSparse, ExtensionColumn) go through orderedFold, which
// generates column blocks in parallel but folds them on the calling
// goroutine in strictly increasing column order — the same
// left-to-right association the serial loop uses — so those results are
// bit-identical to serial too, independent of GOMAXPROCS. Protocol
// consensus depends on this: nodes with different core counts must
// produce identical sketches.

import (
	"runtime"
	"sync"

	"csoutlier/internal/linalg"
)

// kernelWorkers returns the fan-out width for column-parallel kernels.
func kernelWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelRanges splits [0,n) into contiguous chunks of at least
// minChunk and runs fn(lo, hi) over them concurrently, blocking until
// all complete. fn must only write state owned by its own range. When
// parallelism is unavailable or unprofitable it degenerates to a single
// fn(0, n) call on the caller's goroutine.
func parallelRanges(n, minChunk int, fn func(lo, hi int)) {
	w := kernelWorkers()
	if w < 2 || n < 2*minChunk {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	if chunk < minChunk {
		chunk = minChunk
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// vecPool recycles scratch vectors (stored as pointers so Get/Put do
// not allocate). Each matrix owns its pools, so buffer sizes match.
type vecPool struct{ p sync.Pool }

func (vp *vecPool) get(n int) *linalg.Vector {
	if v, ok := vp.p.Get().(*linalg.Vector); ok && cap(*v) >= n {
		*v = (*v)[:n]
		return v
	}
	v := make(linalg.Vector, n)
	return &v
}

func (vp *vecPool) put(v *linalg.Vector) { vp.p.Put(v) }

// foldBlock is the number of columns a worker generates per block in
// orderedFold. Big enough to amortize goroutine dispatch (a block is
// foldBlock·M Gaussian draws for the Seeded ensemble), small enough to
// keep workers busy on modest inputs.
const foldBlock = 32

// orderedFold computes a sequential fold over `count` generated
// M-length columns with the generation fanned out over workers:
//
//	for k = 0..count-1: fold(k, gen(k))   — in exactly this order.
//
// gen(k, dst) fills dst with item k's column and must be safe to call
// concurrently for distinct k (true for all sub-stream ensembles).
// fold(k, col) always runs on the calling goroutine in ascending k, so
// the result is bit-identical to the serial loop regardless of worker
// count. Blocks are pipelined: at most a few blocks are in flight, so
// memory stays O(workers·foldBlock·m) even for millions of columns.
func orderedFold(count, m int, pool *vecPool, gen func(k int, dst linalg.Vector), fold func(k int, col linalg.Vector)) {
	w := kernelWorkers()
	if w < 2 || count < 2*foldBlock {
		buf := pool.get(m)
		for k := 0; k < count; k++ {
			gen(k, *buf)
			fold(k, *buf)
		}
		pool.put(buf)
		return
	}
	nblk := (count + foldBlock - 1) / foldBlock
	// Bounded pipeline: the dispatcher blocks once w+1 block futures are
	// outstanding, the consumer drains them in block order.
	futs := make(chan chan *linalg.Vector, w+1)
	free := make(chan *linalg.Vector, w+2)
	go func() {
		for b := 0; b < nblk; b++ {
			fut := make(chan *linalg.Vector, 1)
			futs <- fut
			go func(b int) {
				var buf *linalg.Vector
				select {
				case buf = <-free:
					*buf = (*buf)[:cap(*buf)]
				default:
					v := make(linalg.Vector, foldBlock*m)
					buf = &v
				}
				lo := b * foldBlock
				hi := lo + foldBlock
				if hi > count {
					hi = count
				}
				for k := lo; k < hi; k++ {
					gen(k, (*buf)[(k-lo)*m:(k-lo)*m+m])
				}
				fut <- buf
			}(b)
		}
		close(futs)
	}()
	b := 0
	for fut := range futs {
		buf := <-fut
		lo := b * foldBlock
		hi := lo + foldBlock
		if hi > count {
			hi = count
		}
		for k := lo; k < hi; k++ {
			fold(k, (*buf)[(k-lo)*m:(k-lo)*m+m])
		}
		select {
		case free <- buf:
		default:
		}
		b++
	}
}
