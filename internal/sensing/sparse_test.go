package sensing

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func sparseMat(t testing.TB, p Params, d int) *SparseRademacher {
	t.Helper()
	s, err := NewSparseRademacher(p, d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSparseColumnStructure(t *testing.T) {
	p := Params{M: 64, N: 100, Seed: 1}
	s := sparseMat(t, p, 8)
	for j := 0; j < p.N; j++ {
		col := s.Col(j, nil)
		nnz := 0
		sumSq := 0.0
		for _, v := range col {
			if v != 0 {
				nnz++
			}
			sumSq += v * v
		}
		if nnz == 0 || nnz > 8 {
			t.Fatalf("col %d has %d nonzeros, want 1..8", j, nnz)
		}
		// With distinct rows the norm is exactly 1; collisions can shift
		// it (±) but not wildly.
		if sumSq < 0.2 || sumSq > 3.5 {
			t.Fatalf("col %d squared norm %v", j, sumSq)
		}
	}
}

func TestSparseDeterministicAndSeedSensitive(t *testing.T) {
	p := Params{M: 32, N: 50, Seed: 7}
	a := sparseMat(t, p, 4)
	b := sparseMat(t, p, 4)
	p2 := p
	p2.Seed++
	c := sparseMat(t, p2, 4)
	for j := 0; j < p.N; j++ {
		ca, cb := a.Col(j, nil), b.Col(j, nil)
		if !ca.Equal(cb, 0) {
			t.Fatalf("col %d not deterministic", j)
		}
		if ca.Equal(c.Col(j, nil), 1e-12) {
			t.Fatalf("col %d identical across seeds", j)
		}
	}
}

func TestSparseDiffersFromGaussian(t *testing.T) {
	p := Params{M: 32, N: 10, Seed: 7}
	s := sparseMat(t, p, 4)
	g, err := NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Col(0, nil).Equal(g.Col(0, nil), 1e-9) {
		t.Fatal("sparse and Gaussian columns coincide for same seed")
	}
}

func TestSparseMeasureConsistency(t *testing.T) {
	p := Params{M: 48, N: 120, Seed: 3}
	s := sparseMat(t, p, 6)
	r := xrand.New(1)
	x := make(linalg.Vector, p.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	// Measure == Σ x_j·col_j == MeasureSparse on the dense support.
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	idx := make([]int, p.N)
	for j := 0; j < p.N; j++ {
		want.AddScaled(x[j], s.Col(j, col))
		idx[j] = j
	}
	if got := s.Measure(x, nil); !got.Equal(want, 1e-9) {
		t.Fatal("Measure mismatch")
	}
	if got := s.MeasureSparse(idx, x, nil); !got.Equal(want, 1e-9) {
		t.Fatal("MeasureSparse mismatch")
	}
	// Correlate adjointness: <Φx, r> == <x, Φᵀr>.
	rv := make(linalg.Vector, p.M)
	for i := range rv {
		rv[i] = r.NormFloat64()
	}
	lhs := s.Measure(x, nil).Dot(rv)
	rhs := linalg.Vector(x).Dot(s.Correlate(rv, nil))
	if math.Abs(lhs-rhs) > 1e-9*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestSparseExtensionColumn(t *testing.T) {
	p := Params{M: 24, N: 60, Seed: 5}
	s := sparseMat(t, p, 4)
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		want.Add(s.Col(j, col))
	}
	want.Scale(1 / math.Sqrt(float64(p.N)))
	if got := s.ExtensionColumn(nil); !got.Equal(want, 1e-9) {
		t.Fatal("ExtensionColumn mismatch")
	}
}

func TestSparseDClamping(t *testing.T) {
	p := Params{M: 10, N: 5, Seed: 1}
	s, err := NewSparseRademacher(p, 0)
	if err != nil || s.D() != 1 {
		t.Fatalf("d=0 clamp: %v, D=%d", err, s.D())
	}
	s2, err := NewSparseRademacher(p, 100)
	if err != nil || s2.D() != 10 {
		t.Fatalf("d>M clamp: %v, D=%d", err, s2.D())
	}
	if _, err := NewSparseRademacher(Params{M: 0, N: 5}, 2); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestSparseLinearity(t *testing.T) {
	// The distributed-aggregation identity must hold for the sparse
	// ensemble exactly as for the Gaussian one.
	p := Params{M: 30, N: 80, Seed: 9}
	s := sparseMat(t, p, 5)
	r := xrand.New(2)
	a := make(linalg.Vector, p.N)
	b := make(linalg.Vector, p.N)
	for i := range a {
		a[i], b[i] = r.NormFloat64(), r.NormFloat64()
	}
	sum := a.Clone().Add(b)
	ya := s.Measure(a, nil)
	yb := s.Measure(b, nil)
	AddSketch(ya, yb)
	if !ya.Equal(s.Measure(sum, nil), 1e-9) {
		t.Fatal("sparse ensemble broke sketch linearity")
	}
}

func BenchmarkSparseMeasureSparse(b *testing.B) {
	p := Params{M: 200, N: 1000000, Seed: 1}
	s, _ := NewSparseRademacher(p, 8)
	idx := make([]int, 500)
	vals := make([]float64, 500)
	r := xrand.New(1)
	for i := range idx {
		idx[i] = r.Intn(p.N)
		vals[i] = r.NormFloat64()
	}
	dst := make(linalg.Vector, p.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MeasureSparse(idx, vals, dst)
	}
}
