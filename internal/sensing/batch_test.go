package sensing

import (
	"math"
	"runtime/debug"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func randResiduals(rng *xrand.RNG, q, m int) []linalg.Vector {
	rs := make([]linalg.Vector, q)
	for i := range rs {
		rs[i] = make(linalg.Vector, m)
		for j := range rs[i] {
			rs[i][j] = rng.NormFloat64()
		}
	}
	// One zero residual so zero-skip branches are exercised.
	if q > 1 {
		clear(rs[q-1])
	}
	return rs
}

// TestCorrelateBlockMatchesSerial pins the batch-correlation contract
// for every ensemble: each dsts[q] out of CorrelateBlock must be
// bit-identical to an independent Correlate(rs[q], ·) call. This is the
// foundation the batched recovery engine's bit-identity proof rests on.
func TestCorrelateBlockMatchesSerial(t *testing.T) {
	p := Params{M: 64, N: 700, Seed: 99}
	dense, err := NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseRademacher(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	srht, err := NewSRHT(Params{M: 64, N: 512, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	mats := []struct {
		name string
		m    Matrix
	}{
		{"Dense", dense},
		{"Seeded", seeded},
		{"SparseRademacher", sparse},
		{"SRHT", srht}, // no batch kernel: exercises the fallback loop
		{"ColumnCache(Seeded)", NewColumnCache(seeded, 0)},
		{"ColumnCache(SRHT)", NewColumnCache(srht, 0)},
	}
	rng := xrand.New(7)
	for _, tc := range mats {
		t.Run(tc.name, func(t *testing.T) {
			mp := tc.m.Params()
			for _, q := range []int{1, 3, 8} {
				rs := randResiduals(rng, q, mp.M)
				dsts := make([]linalg.Vector, q)
				for i := range dsts {
					dsts[i] = make(linalg.Vector, mp.N)
				}
				CorrelateBlock(tc.m, rs, dsts)
				for i := range rs {
					want := tc.m.Correlate(rs[i], nil)
					for j := range want {
						if math.Float64bits(dsts[i][j]) != math.Float64bits(want[j]) {
							t.Fatalf("q=%d residual %d col %d: batch %v vs serial %v (bit-exact)",
								q, i, j, dsts[i][j], want[j])
						}
					}
				}
			}
		})
	}
}

// TestCorrelateBlockPanics checks the shared validation layer.
func TestCorrelateBlockPanics(t *testing.T) {
	p := Params{M: 8, N: 32, Seed: 1}
	m, err := NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("count mismatch", func() {
		CorrelateBlock(m, make([]linalg.Vector, 2), make([]linalg.Vector, 1))
	})
	expectPanic("residual length", func() {
		CorrelateBlock(m, []linalg.Vector{make(linalg.Vector, 7)}, []linalg.Vector{make(linalg.Vector, 32)})
	})
	expectPanic("output length", func() {
		CorrelateBlock(m, []linalg.Vector{make(linalg.Vector, 8)}, []linalg.Vector{make(linalg.Vector, 31)})
	})
}

// TestDenseMeasureSparseScatterZeroAlloc pins the fix for the escaping
// scratch buffer: the dense-scatter path must run allocation-free in
// steady state, GC or not — the scatter buffer is a dedicated field,
// not pool-backed storage the collector can reclaim.
func TestDenseMeasureSparseScatterZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	p := Params{M: 16, N: 512, Seed: 5}
	d, err := NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	// Dense enough to trip the scatter path: > 64 and > N/16 indices.
	idx := make([]int, 128)
	vals := make([]float64, 128)
	rng := xrand.New(3)
	for k := range idx {
		idx[k] = rng.Intn(p.N)
		vals[k] = rng.NormFloat64()
	}
	dst := make(linalg.Vector, p.M)
	d.MeasureSparse(idx, vals, dst) // warm the buffer
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(50, func() {
		d.MeasureSparse(idx, vals, dst)
	})
	if allocs != 0 {
		t.Fatalf("scatter MeasureSparse allocates %.1f/op, want 0", allocs)
	}
}

// TestColumnCacheBitIdentical checks cached columns are exact copies of
// the inner matrix's, on both the miss and the hit path.
func TestColumnCacheBitIdentical(t *testing.T) {
	p := Params{M: 32, N: 300, Seed: 17}
	inner, err := NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	c := NewColumnCache(inner, 16)
	for pass := 0; pass < 2; pass++ {
		for _, j := range []int{0, 5, 13, 299, 5} {
			got := c.Col(j, nil)
			want := inner.Col(j, nil)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("pass %d col %d row %d: %v vs %v", pass, j, i, got[i], want[i])
				}
			}
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", hits, misses)
	}
}

// TestColumnCacheEvictionBound checks the cache never exceeds its
// capacity and keeps serving correct columns across evictions.
func TestColumnCacheEvictionBound(t *testing.T) {
	p := Params{M: 8, N: 256, Seed: 23}
	inner, err := NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	const capCols = 10
	c := NewColumnCache(inner, capCols)
	buf := make(linalg.Vector, p.M)
	want := make(linalg.Vector, p.M)
	for round := 0; round < 3; round++ {
		for j := 0; j < p.N; j++ {
			buf = c.Col(j, buf)
			want = inner.Col(j, want)
			for i := range want {
				if math.Float64bits(buf[i]) != math.Float64bits(want[i]) {
					t.Fatalf("round %d col %d: cache diverged", round, j)
				}
			}
			if n := c.Len(); n > capCols {
				t.Fatalf("cache holds %d columns, cap %d", n, capCols)
			}
		}
	}
	if n := c.Len(); n != capCols {
		t.Fatalf("cache holds %d columns after sweeps, want full cap %d", n, capCols)
	}
}

// TestColumnCacheDefaultCap checks the memory-bounded default.
func TestColumnCacheDefaultCap(t *testing.T) {
	inner, err := NewSeeded(Params{M: 64, N: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := NewColumnCache(inner, 0)
	if c.max != columnCacheBudget/64 {
		t.Fatalf("default cap %d, want %d", c.max, columnCacheBudget/64)
	}
	inner2, err := NewSeeded(Params{M: 1 << 16, N: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c2 := NewColumnCache(inner2, 0); c2.max != 64 {
		t.Fatalf("huge-M default cap %d, want floor 64", c2.max)
	}
}

// TestColumnCacheDelegation checks the pass-through methods reach the
// inner matrix unchanged.
func TestColumnCacheDelegation(t *testing.T) {
	p := Params{M: 16, N: 128, Seed: 41}
	inner, err := NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	c := NewColumnCache(inner, 8)
	if c.Params() != p {
		t.Fatalf("Params not delegated")
	}
	rng := xrand.New(9)
	x := make(linalg.Vector, p.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := c.Measure(x, nil)
	y2 := inner.Measure(x, nil)
	if !y1.Equal(y2, 0) {
		t.Fatalf("Measure not delegated bit-exactly")
	}
	r := make(linalg.Vector, p.M)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	d1 := c.Correlate(r, nil)
	d2 := inner.Correlate(r, nil)
	if !d1.Equal(d2, 0) {
		t.Fatalf("Correlate not delegated bit-exactly")
	}
	e1 := c.ExtensionColumn(nil)
	e2 := inner.ExtensionColumn(nil)
	if !e1.Equal(e2, 0) {
		t.Fatalf("ExtensionColumn not delegated bit-exactly")
	}
	s1 := c.MeasureSparse([]int{3, 7}, []float64{1.5, -2}, nil)
	s2 := inner.MeasureSparse([]int{3, 7}, []float64{1.5, -2}, nil)
	if !s1.Equal(s2, 0) {
		t.Fatalf("MeasureSparse not delegated bit-exactly")
	}
}
