package sensing

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

// SRHT is a Subsampled Randomized Hadamard Transform measurement
// ensemble (Ailon–Chazelle / Tropp): Φ₀ = √(P/M)·R·H·D, where D is a
// random ±1 diagonal, H the P×P Walsh–Hadamard matrix (P = N rounded up
// to a power of two, scaled by 1/√P so H/√P is orthonormal), and R
// selects M rows at random.
//
// Its draw over the Gaussian ensembles is computational: measuring a
// *dense* slice costs one fast Walsh–Hadamard transform — O(P·log P)
// total, independent of M — and recovery's per-iteration correlation
// Φ₀ᵀr is a single inverse transform, O(P·log P) instead of the
// Gaussian O(M·N). For the paper's production sizes (N ≈ 10K, M ≈ 10³)
// that is a ~100× cheaper correlation step, attacking the same
// recovery-cost bottleneck the paper's GPU future-work targets. On
// multi-core hosts the transform itself additionally fans its butterfly
// stages over GOMAXPROCS workers (bit-identically — butterflies within
// a stage touch disjoint element pairs).
//
// Columns beyond N (the power-of-two padding) are never exposed: the
// Matrix interface presents an M×N matrix exactly like the other
// ensembles, and identical (seed, M, N) always yields the identical
// transform on every node.
type SRHT struct {
	p        Params
	pad      int       // P: padded dimension, power of two ≥ N
	signs    []float64 // D diagonal, length pad
	rows     []int     // R: the M selected Hadamard rows, sorted
	scale    float64   // √(P/M) / √P  = 1/√(M)  ... see NewSRHT
	bufs     vecPool   // pooled P-length transform buffers
	phi0Once sync.Once
	phi0     linalg.Vector
}

// NewSRHT builds the transform for the given consensus parameters.
func NewSRHT(p Params) (*SRHT, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pad := 1
	for pad < p.N {
		pad <<= 1
	}
	rng := xrand.New(p.Seed ^ 0x5248545f) // "RHT_" salt: distinct from other ensembles
	signs := make([]float64, pad)
	for i := range signs {
		if rng.Uint64()&1 == 0 {
			signs[i] = 1
		} else {
			signs[i] = -1
		}
	}
	if p.M > pad {
		return nil, fmt.Errorf("sensing: SRHT needs M=%d ≤ padded dimension %d", p.M, pad)
	}
	// Sample M distinct rows of H.
	perm := rng.Perm(pad)
	rows := append([]int(nil), perm[:p.M]...)
	// Φ = √(P/M) · R · (H/√P) · D: the two √P factors cancel, so each
	// entry of Φ is ±1/√M — applied as one scale after the unnormalized
	// FWHT. Columns then have exactly unit norm (M entries of 1/√M).
	return &SRHT{
		p:     p,
		pad:   pad,
		signs: signs,
		rows:  rows,
		scale: 1 / math.Sqrt(float64(p.M)),
	}, nil
}

// Params implements Matrix.
func (s *SRHT) Params() Params { return s.p }

// fwht performs the in-place unnormalized fast Walsh–Hadamard transform
// (length must be a power of two). H is symmetric and H·H = P·I, so the
// same routine serves forward and adjoint directions.
func fwht(a []float64) {
	n := len(a)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := a[j], a[j+h]
				a[j], a[j+h] = x+y, x-y
			}
		}
	}
}

// fwhtParallelMin is the transform length below which the parallel FWHT
// falls back to the serial one — under it, goroutine dispatch costs more
// than the O(P log P) work saves.
const fwhtParallelMin = 1 << 13

// fwhtStage applies the stride-h butterfly stage to pair indices
// [lo, hi): pair t couples elements (j, j+h) with j = ⌊t/h⌋·2h + t mod h.
// Pairs within a stage touch disjoint elements, so any partition of the
// pair-index space computes bit-identical results.
func fwhtStage(a []float64, h, lo, hi int) {
	blk := lo / h
	off := lo % h
	j := blk*(h<<1) + off
	for t := lo; t < hi; t++ {
		x, y := a[j], a[j+h]
		a[j], a[j+h] = x+y, x-y
		off++
		j++
		if off == h {
			off = 0
			j += h
		}
	}
}

// fwhtParallel is fwht fanned over GOMAXPROCS workers: segment-local
// transforms first (stages h < seg never cross a segment boundary), then
// the remaining cross-segment stages with the pair-index space
// partitioned per stage. Every butterfly computes the same two elements
// from the same two inputs as in the serial order, so the result is
// bit-identical to fwht for any worker count.
func fwhtParallel(a []float64) {
	n := len(a)
	w := kernelWorkers()
	if w < 2 || n < fwhtParallelMin {
		fwht(a)
		return
	}
	seg := n
	for seg >= 2048 && n/seg < w {
		seg >>= 1
	}
	if seg >= n {
		fwht(a)
		return
	}
	nseg := n / seg
	parallelRanges(nseg, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			fwht(a[k*seg : (k+1)*seg])
		}
	})
	for h := seg; h < n; h <<= 1 {
		parallelRanges(n/2, 4096, func(lo, hi int) {
			fwhtStage(a, h, lo, hi)
		})
	}
}

// hadamardEntry returns H[r][c] ∈ {+1, −1} for the unnormalized
// Walsh–Hadamard matrix: (−1)^popcount(r AND c).
func hadamardEntry(r, c int) float64 {
	if bits.OnesCount(uint(r&c))&1 == 1 {
		return -1
	}
	return 1
}

// Col implements Matrix: column j is scale·D[j]·H[rows, j].
func (s *SRHT) Col(j int, dst linalg.Vector) linalg.Vector {
	if j < 0 || j >= s.p.N {
		panic(fmt.Sprintf("sensing: column %d out of [0,%d)", j, s.p.N))
	}
	dst = ensureExact(dst, s.p.M)
	dj := s.signs[j] * s.scale
	for i, r := range s.rows {
		dst[i] = dj * hadamardEntry(r, j)
	}
	return dst
}

// Measure implements Matrix with one O(P log P) transform on a pooled
// buffer (no steady-state allocation).
func (s *SRHT) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != s.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), s.p.N))
	}
	bp := s.bufs.get(s.pad)
	buf := *bp
	clear(buf)
	for j, v := range x {
		buf[j] = v * s.signs[j]
	}
	fwhtParallel(buf)
	dst = ensureExact(dst, s.p.M)
	for i, r := range s.rows {
		dst[i] = buf[r] * s.scale
	}
	s.bufs.put(bp)
	return dst
}

// MeasureSparse implements Matrix. For very sparse inputs the per-column
// path (O(nnz·M)) beats the full transform (O(P log P)); the crossover
// is where nnz·M ≈ P·log₂P.
func (s *SRHT) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	logP := bits.Len(uint(s.pad)) - 1
	if len(idx)*s.p.M > s.pad*logP {
		xp := s.bufs.get(s.p.N)
		x := *xp
		clear(x)
		for k, j := range idx {
			if j < 0 || j >= s.p.N {
				panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, s.p.N))
			}
			x[j] += vals[k]
		}
		dst = s.Measure(x, dst)
		s.bufs.put(xp)
		return dst
	}
	dst = ensure(dst, s.p.M)
	for k, j := range idx {
		v := vals[k]
		if v == 0 {
			continue
		}
		if j < 0 || j >= s.p.N {
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, s.p.N))
		}
		dj := s.signs[j] * s.scale * v
		for i, r := range s.rows {
			dst[i] += dj * hadamardEntry(r, j)
		}
	}
	return dst
}

// Correlate implements Matrix with one O(P log P) adjoint transform:
// Φ₀ᵀr = D·Hᵀ·Rᵀ·r·scale, and Hᵀ = H. The transform and the final
// scaling both fan out over workers; see fwhtParallel for why the
// result stays bit-identical to CorrelateSerial.
func (s *SRHT) Correlate(r, dst linalg.Vector) linalg.Vector {
	return s.correlate(r, dst, true)
}

// CorrelateSerial is the single-threaded correlation, kept for the
// parallel-vs-serial equivalence tests and the ablation bench.
func (s *SRHT) CorrelateSerial(r, dst linalg.Vector) linalg.Vector {
	return s.correlate(r, dst, false)
}

func (s *SRHT) correlate(r, dst linalg.Vector, par bool) linalg.Vector {
	if len(r) != s.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), s.p.M))
	}
	// Resolve the worker check here rather than inside the helpers:
	// creating a parallelRanges closure heap-allocates even when the
	// degenerate single-range path runs, so single-core hosts (and the
	// serial ablation) must not reach the parallel helpers at all.
	par = par && kernelWorkers() >= 2
	bp := s.bufs.get(s.pad)
	buf := *bp
	clear(buf)
	for i, row := range s.rows {
		buf[row] += r[i]
	}
	dst = ensureExact(dst, s.p.N)
	if par {
		fwhtParallel(buf)
		s.scaleParallel(buf, dst)
	} else {
		fwht(buf)
		for j := 0; j < s.p.N; j++ {
			dst[j] = buf[j] * s.signs[j] * s.scale
		}
	}
	s.bufs.put(bp)
	return dst
}

// scaleParallel fans the final D·scale application over workers. Kept
// out of correlate so its closure allocation only happens on the truly
// parallel path.
func (s *SRHT) scaleParallel(buf []float64, dst linalg.Vector) {
	parallelRanges(s.p.N, 4096, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = buf[j] * s.signs[j] * s.scale
		}
	})
}

// ExtensionColumn implements Matrix: φ₀ = (1/√N)·Σⱼ φⱼ, computed once by
// measuring the all-ones data vector and cached; every later call is an
// O(M) copy.
func (s *SRHT) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	s.phi0Once.Do(func() {
		ones := make(linalg.Vector, s.p.N)
		ones.Fill(1)
		s.phi0 = s.Measure(ones, nil).Scale(1 / math.Sqrt(float64(s.p.N)))
	})
	return copyCached(s.phi0, dst)
}

var _ Matrix = (*SRHT)(nil)
