package sensing

import (
	"fmt"
	"math"
	"math/bits"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

// SRHT is a Subsampled Randomized Hadamard Transform measurement
// ensemble (Ailon–Chazelle / Tropp): Φ₀ = √(P/M)·R·H·D, where D is a
// random ±1 diagonal, H the P×P Walsh–Hadamard matrix (P = N rounded up
// to a power of two, scaled by 1/√P so H/√P is orthonormal), and R
// selects M rows at random.
//
// Its draw over the Gaussian ensembles is computational: measuring a
// *dense* slice costs one fast Walsh–Hadamard transform — O(P·log P)
// total, independent of M — and recovery's per-iteration correlation
// Φ₀ᵀr is a single inverse transform, O(P·log P) instead of the
// Gaussian O(M·N). For the paper's production sizes (N ≈ 10K, M ≈ 10³)
// that is a ~100× cheaper correlation step, attacking the same
// recovery-cost bottleneck the paper's GPU future-work targets.
//
// Columns beyond N (the power-of-two padding) are never exposed: the
// Matrix interface presents an M×N matrix exactly like the other
// ensembles, and identical (seed, M, N) always yields the identical
// transform on every node.
type SRHT struct {
	p     Params
	pad   int       // P: padded dimension, power of two ≥ N
	signs []float64 // D diagonal, length pad
	rows  []int     // R: the M selected Hadamard rows, sorted
	scale float64   // √(P/M) / √P  = 1/√(M)  ... see newSRHT
}

// NewSRHT builds the transform for the given consensus parameters.
func NewSRHT(p Params) (*SRHT, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pad := 1
	for pad < p.N {
		pad <<= 1
	}
	rng := xrand.New(p.Seed ^ 0x5248545f) // "RHT_" salt: distinct from other ensembles
	signs := make([]float64, pad)
	for i := range signs {
		if rng.Uint64()&1 == 0 {
			signs[i] = 1
		} else {
			signs[i] = -1
		}
	}
	if p.M > pad {
		return nil, fmt.Errorf("sensing: SRHT needs M=%d ≤ padded dimension %d", p.M, pad)
	}
	// Sample M distinct rows of H.
	perm := rng.Perm(pad)
	rows := append([]int(nil), perm[:p.M]...)
	// Φ = √(P/M) · R · (H/√P) · D: the two √P factors cancel, so each
	// entry of Φ is ±1/√M — applied as one scale after the unnormalized
	// FWHT. Columns then have exactly unit norm (M entries of 1/√M).
	return &SRHT{
		p:     p,
		pad:   pad,
		signs: signs,
		rows:  rows,
		scale: 1 / math.Sqrt(float64(p.M)),
	}, nil
}

// Params implements Matrix.
func (s *SRHT) Params() Params { return s.p }

// fwht performs the in-place unnormalized fast Walsh–Hadamard transform
// (length must be a power of two). H is symmetric and H·H = P·I, so the
// same routine serves forward and adjoint directions.
func fwht(a []float64) {
	n := len(a)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := a[j], a[j+h]
				a[j], a[j+h] = x+y, x-y
			}
		}
	}
}

// hadamardEntry returns H[r][c] ∈ {+1, −1} for the unnormalized
// Walsh–Hadamard matrix: (−1)^popcount(r AND c).
func hadamardEntry(r, c int) float64 {
	if bits.OnesCount(uint(r&c))&1 == 1 {
		return -1
	}
	return 1
}

// Col implements Matrix: column j is scale·D[j]·H[rows, j].
func (s *SRHT) Col(j int, dst linalg.Vector) linalg.Vector {
	if j < 0 || j >= s.p.N {
		panic(fmt.Sprintf("sensing: column %d out of [0,%d)", j, s.p.N))
	}
	dst = ensureExact(dst, s.p.M)
	dj := s.signs[j] * s.scale
	for i, r := range s.rows {
		dst[i] = dj * hadamardEntry(r, j)
	}
	return dst
}

// Measure implements Matrix with one O(P log P) transform.
func (s *SRHT) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != s.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), s.p.N))
	}
	buf := make([]float64, s.pad)
	for j, v := range x {
		buf[j] = v * s.signs[j]
	}
	fwht(buf)
	dst = ensureExact(dst, s.p.M)
	for i, r := range s.rows {
		dst[i] = buf[r] * s.scale
	}
	return dst
}

// MeasureSparse implements Matrix. For very sparse inputs the per-column
// path (O(nnz·M)) beats the full transform (O(P log P)); the crossover
// is where nnz·M ≈ P·log₂P.
func (s *SRHT) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	logP := bits.Len(uint(s.pad)) - 1
	if len(idx)*s.p.M > s.pad*logP {
		x := make(linalg.Vector, s.p.N)
		for k, j := range idx {
			if j < 0 || j >= s.p.N {
				panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, s.p.N))
			}
			x[j] += vals[k]
		}
		return s.Measure(x, dst)
	}
	dst = ensure(dst, s.p.M)
	for k, j := range idx {
		v := vals[k]
		if v == 0 {
			continue
		}
		if j < 0 || j >= s.p.N {
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, s.p.N))
		}
		dj := s.signs[j] * s.scale * v
		for i, r := range s.rows {
			dst[i] += dj * hadamardEntry(r, j)
		}
	}
	return dst
}

// Correlate implements Matrix with one O(P log P) adjoint transform:
// Φ₀ᵀr = D·Hᵀ·Rᵀ·r·scale, and Hᵀ = H.
func (s *SRHT) Correlate(r, dst linalg.Vector) linalg.Vector {
	if len(r) != s.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), s.p.M))
	}
	buf := make([]float64, s.pad)
	for i, row := range s.rows {
		buf[row] += r[i]
	}
	fwht(buf)
	dst = ensureExact(dst, s.p.N)
	for j := 0; j < s.p.N; j++ {
		dst[j] = buf[j] * s.signs[j] * s.scale
	}
	return dst
}

// ExtensionColumn implements Matrix: φ₀ = (1/√N)·Σⱼ φⱼ, computed by
// measuring the all-ones data vector.
func (s *SRHT) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	ones := make(linalg.Vector, s.p.N)
	ones.Fill(1)
	dst = s.Measure(ones, dst)
	return dst.Scale(1 / math.Sqrt(float64(s.p.N)))
}

var _ Matrix = (*SRHT)(nil)
