package sensing

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func srht(t testing.TB, p Params) *SRHT {
	t.Helper()
	s, err := NewSRHT(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFWHTInvolution(t *testing.T) {
	// H·H = P·I: transforming twice recovers P·x.
	r := xrand.New(1)
	const p = 64
	x := make([]float64, p)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y := append([]float64(nil), x...)
	fwht(y)
	fwht(y)
	for i := range x {
		if math.Abs(y[i]-float64(p)*x[i]) > 1e-9 {
			t.Fatalf("H·H != P·I at %d", i)
		}
	}
}

func TestFWHTMatchesEntries(t *testing.T) {
	// The transform agrees with the explicit (−1)^popcount(r&c) matrix.
	const p = 16
	for c := 0; c < p; c++ {
		e := make([]float64, p)
		e[c] = 1
		fwht(e)
		for r := 0; r < p; r++ {
			if e[r] != hadamardEntry(r, c) {
				t.Fatalf("fwht(e_%d)[%d] = %v, want %v", c, r, e[r], hadamardEntry(r, c))
			}
		}
	}
}

func TestSRHTMeasureMatchesColumns(t *testing.T) {
	// N deliberately not a power of two: padding must be invisible.
	p := Params{M: 24, N: 100, Seed: 7}
	s := srht(t, p)
	r := xrand.New(2)
	x := make(linalg.Vector, p.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		want.AddScaled(x[j], s.Col(j, col))
	}
	if got := s.Measure(x, nil); !got.Equal(want, 1e-9) {
		t.Fatal("Measure disagrees with explicit columns")
	}
}

func TestSRHTMeasureSparseBothPaths(t *testing.T) {
	p := Params{M: 16, N: 120, Seed: 8}
	s := srht(t, p)
	// Dense-ish input → transform path; tiny input → per-column path.
	for _, nnz := range []int{2, 100} {
		idx := make([]int, nnz)
		vals := make([]float64, nnz)
		r := xrand.New(uint64(nnz))
		x := make(linalg.Vector, p.N)
		for i := range idx {
			idx[i] = r.Intn(p.N)
			vals[i] = r.NormFloat64()
			x[idx[i]] += vals[i]
		}
		want := s.Measure(x, nil)
		if got := s.MeasureSparse(idx, vals, nil); !got.Equal(want, 1e-9) {
			t.Fatalf("nnz=%d: MeasureSparse mismatch", nnz)
		}
	}
}

func TestSRHTAdjoint(t *testing.T) {
	// <Φx, r> == <x, Φᵀr> — the identity OMP's correlation step needs.
	p := Params{M: 20, N: 90, Seed: 9}
	s := srht(t, p)
	r := xrand.New(3)
	x := make(linalg.Vector, p.N)
	rv := make(linalg.Vector, p.M)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for i := range rv {
		rv[i] = r.NormFloat64()
	}
	lhs := s.Measure(x, nil).Dot(rv)
	rhs := x.Dot(s.Correlate(rv, nil))
	if math.Abs(lhs-rhs) > 1e-9*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestSRHTColumnsUnitNorm(t *testing.T) {
	// Every column has exactly M entries of magnitude 1/√M → norm 1.
	p := Params{M: 32, N: 70, Seed: 10}
	s := srht(t, p)
	for j := 0; j < p.N; j++ {
		if n := s.Col(j, nil).Norm2(); math.Abs(n-1) > 1e-12 {
			t.Fatalf("col %d norm %v", j, n)
		}
	}
}

func TestSRHTDeterministicAndDistinct(t *testing.T) {
	p := Params{M: 8, N: 30, Seed: 11}
	a, b := srht(t, p), srht(t, p)
	p2 := p
	p2.Seed++
	c := srht(t, p2)
	differs := false
	for j := 0; j < p.N; j++ {
		ca, cb, cc := a.Col(j, nil), b.Col(j, nil), c.Col(j, nil)
		if !ca.Equal(cb, 0) {
			t.Fatalf("col %d not deterministic", j)
		}
		if !ca.Equal(cc, 1e-12) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced the same transform")
	}
}

func TestSRHTExtensionColumn(t *testing.T) {
	p := Params{M: 12, N: 40, Seed: 12}
	s := srht(t, p)
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		want.Add(s.Col(j, col))
	}
	want.Scale(1 / math.Sqrt(float64(p.N)))
	if got := s.ExtensionColumn(nil); !got.Equal(want, 1e-9) {
		t.Fatal("ExtensionColumn mismatch")
	}
}

func TestSRHTLinearity(t *testing.T) {
	p := Params{M: 16, N: 50, Seed: 13}
	s := srht(t, p)
	r := xrand.New(4)
	a := make(linalg.Vector, p.N)
	b := make(linalg.Vector, p.N)
	for i := range a {
		a[i], b[i] = r.NormFloat64(), r.NormFloat64()
	}
	ya, yb := s.Measure(a, nil), s.Measure(b, nil)
	AddSketch(ya, yb)
	if !ya.Equal(s.Measure(a.Clone().Add(b), nil), 1e-9) {
		t.Fatal("SRHT broke sketch linearity")
	}
}

func TestSRHTValidation(t *testing.T) {
	if _, err := NewSRHT(Params{M: 0, N: 10}); err == nil {
		t.Fatal("bad params accepted")
	}
	// M greater than the padded dimension is impossible to subsample.
	if _, err := NewSRHT(Params{M: 9, N: 8, Seed: 1}); err == nil {
		t.Fatal("M > P accepted")
	}
}

func BenchmarkSRHTCorrelate(b *testing.B) {
	p := Params{M: 1000, N: 10000, Seed: 1}
	s, err := NewSRHT(p)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	rv := make(linalg.Vector, p.M)
	for i := range rv {
		rv[i] = r.NormFloat64()
	}
	dst := make(linalg.Vector, p.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Correlate(rv, dst)
	}
}

func BenchmarkGaussianCorrelateSameSize(b *testing.B) {
	p := Params{M: 1000, N: 10000, Seed: 1}
	d, err := NewDense(p)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	rv := make(linalg.Vector, p.M)
	for i := range rv {
		rv[i] = r.NormFloat64()
	}
	dst := make(linalg.Vector, p.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Correlate(rv, dst)
	}
}
