package sensing

import (
	"math"
	"testing"
	"testing/quick"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func params() Params { return Params{M: 40, N: 120, Seed: 99} }

func both(t *testing.T, p Params) (*Dense, *Seeded) {
	t.Helper()
	d, err := NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSeeded(p)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestValidate(t *testing.T) {
	if err := (Params{M: 0, N: 5}).Validate(); err == nil {
		t.Fatal("M=0 accepted")
	}
	if err := (Params{M: 5, N: 0}).Validate(); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewDense(Params{M: -1, N: 3}); err == nil {
		t.Fatal("NewDense accepted bad params")
	}
	if _, err := NewSeeded(Params{M: 3, N: -1}); err == nil {
		t.Fatal("NewSeeded accepted bad params")
	}
}

func TestDenseSeededAgree(t *testing.T) {
	// The protocol requires every representation of (seed, M, N) to be the
	// same matrix, bit for bit.
	p := params()
	d, s := both(t, p)
	for j := 0; j < p.N; j++ {
		dc := d.Col(j, nil)
		sc := s.Col(j, nil)
		for i := range dc {
			if dc[i] != sc[i] {
				t.Fatalf("col %d row %d: dense %v != seeded %v", j, i, dc[i], sc[i])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	p := params()
	p2 := p
	p2.Seed++
	d1, _ := NewDense(p)
	d2, _ := NewDense(p2)
	c1, c2 := d1.Col(0, nil), d2.Col(0, nil)
	if c1.Equal(c2, 1e-12) {
		t.Fatal("different seeds produced equal columns")
	}
}

func TestEntryDistribution(t *testing.T) {
	// Entries must be ~N(0, 1/M): column norm concentrates near 1.
	p := Params{M: 400, N: 50, Seed: 7}
	d, _ := NewDense(p)
	for j := 0; j < p.N; j++ {
		n := d.Col(j, nil).Norm2()
		if n < 0.8 || n > 1.2 {
			t.Fatalf("col %d norm %v, want ≈1 for N(0,1/M) entries", j, n)
		}
	}
}

func TestMeasureMatchesColumns(t *testing.T) {
	p := params()
	d, s := both(t, p)
	r := xrand.New(1)
	x := make(linalg.Vector, p.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		want.AddScaled(x[j], d.Col(j, col))
	}
	if got := d.Measure(x, nil); !got.Equal(want, 1e-9) {
		t.Fatal("dense Measure mismatch")
	}
	if got := s.Measure(x, nil); !got.Equal(want, 1e-9) {
		t.Fatal("seeded Measure mismatch")
	}
}

func TestMeasureSparse(t *testing.T) {
	p := params()
	d, s := both(t, p)
	x := make(linalg.Vector, p.N)
	idx := []int{3, 50, 3, 119}
	vals := []float64{2, -1, 0.5, 7}
	for k, j := range idx {
		x[j] += vals[k]
	}
	want := d.Measure(x, nil)
	if got := d.MeasureSparse(idx, vals, nil); !got.Equal(want, 1e-9) {
		t.Fatal("dense MeasureSparse mismatch (repeated index must accumulate)")
	}
	if got := s.MeasureSparse(idx, vals, nil); !got.Equal(want, 1e-9) {
		t.Fatal("seeded MeasureSparse mismatch")
	}
}

func TestCorrelate(t *testing.T) {
	p := params()
	d, s := both(t, p)
	r := xrand.New(2)
	rv := make(linalg.Vector, p.M)
	for i := range rv {
		rv[i] = r.NormFloat64()
	}
	want := make(linalg.Vector, p.N)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		want[j] = d.Col(j, col).Dot(rv)
	}
	if got := d.Correlate(rv, nil); !got.Equal(want, 1e-9) {
		t.Fatal("dense Correlate mismatch")
	}
	if got := d.CorrelateSerial(rv, nil); !got.Equal(want, 1e-9) {
		t.Fatal("dense CorrelateSerial mismatch")
	}
	if got := s.Correlate(rv, nil); !got.Equal(want, 1e-9) {
		t.Fatal("seeded Correlate mismatch")
	}
}

func TestExtensionColumn(t *testing.T) {
	p := params()
	d, s := both(t, p)
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		want.Add(d.Col(j, col))
	}
	want.Scale(1 / math.Sqrt(float64(p.N)))
	if got := d.ExtensionColumn(nil); !got.Equal(want, 1e-9) {
		t.Fatal("dense ExtensionColumn mismatch")
	}
	if got := s.ExtensionColumn(nil); !got.Equal(want, 1e-9) {
		t.Fatal("seeded ExtensionColumn mismatch")
	}
}

// The core protocol identity (paper eq. 1): summing local sketches equals
// sketching the summed data, for any split of the data across nodes.
func TestSketchLinearityProperty(t *testing.T) {
	p := Params{M: 20, N: 30, Seed: 5}
	d, _ := NewDense(p)
	check := func(seed uint64, nodes8 uint8) bool {
		nNodes := int(nodes8%5) + 2
		r := xrand.New(seed)
		slices := make([]linalg.Vector, nNodes)
		global := make(linalg.Vector, p.N)
		for l := range slices {
			slices[l] = make(linalg.Vector, p.N)
			for i := range slices[l] {
				v := math.Floor(10 * (r.Float64() - 0.5))
				slices[l][i] = v
				global[i] += v
			}
		}
		sum := make(linalg.Vector, p.M)
		for _, sl := range slices {
			AddSketch(sum, d.Measure(sl, nil))
		}
		return sum.Equal(d.Measure(global, nil), 1e-8)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubSketchRoundTrip(t *testing.T) {
	p := params()
	d, _ := NewDense(p)
	r := xrand.New(3)
	x1 := make(linalg.Vector, p.N)
	x2 := make(linalg.Vector, p.N)
	for i := range x1 {
		x1[i], x2[i] = r.NormFloat64(), r.NormFloat64()
	}
	y1 := d.Measure(x1, nil)
	y2 := d.Measure(x2, nil)
	total := y1.Clone()
	AddSketch(total, y2)
	SubSketch(total, y2) // node 2 leaves the aggregation
	if !total.Equal(y1, 1e-10) {
		t.Fatal("add/sub sketch did not round-trip")
	}
}

func TestSketchBytes(t *testing.T) {
	if SketchBytes(100) != 800 {
		t.Fatalf("SketchBytes(100) = %d", SketchBytes(100))
	}
}

func TestSeededColBounds(t *testing.T) {
	_, s := both(t, params())
	for _, j := range []int{-1, params().N} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Col(%d) did not panic", j)
				}
			}()
			s.Col(j, nil)
		}()
	}
}

func BenchmarkDenseMeasure(b *testing.B) {
	p := Params{M: 200, N: 10000, Seed: 1}
	d, _ := NewDense(p)
	x := make(linalg.Vector, p.N)
	r := xrand.New(1)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	dst := make(linalg.Vector, p.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Measure(x, dst)
	}
}

func BenchmarkSeededMeasureSparse(b *testing.B) {
	p := Params{M: 200, N: 1000000, Seed: 1}
	s, _ := NewSeeded(p)
	idx := make([]int, 500)
	vals := make([]float64, 500)
	r := xrand.New(1)
	for i := range idx {
		idx[i] = r.Intn(p.N)
		vals[i] = r.NormFloat64()
	}
	dst := make(linalg.Vector, p.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MeasureSparse(idx, vals, dst)
	}
}
