package sensing

import "fmt"

// Kind names a measurement-matrix family.
type Kind uint8

// The ensembles the package implements.
const (
	// KindGaussian is the paper's i.i.d. N(0, 1/M) ensemble.
	KindGaussian Kind = iota
	// KindSparseRademacher has D non-zero ±1/√D entries per column.
	KindSparseRademacher
	// KindSRHT is the subsampled randomized Hadamard transform.
	KindSRHT
	// KindCountSketch is the bias-aware count-sketch: depth rows of
	// hashed ±1/√depth buckets, the recovery-free point-query backend.
	KindCountSketch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGaussian:
		return "gaussian"
	case KindSparseRademacher:
		return "sparse"
	case KindSRHT:
		return "srht"
	case KindCountSketch:
		return "countsketch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a user-facing name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "gaussian", "":
		return KindGaussian, nil
	case "sparse":
		return KindSparseRademacher, nil
	case "srht":
		return KindSRHT, nil
	case "countsketch":
		return KindCountSketch, nil
	default:
		return 0, fmt.Errorf("sensing: unknown ensemble %q (want gaussian, sparse, srht or countsketch)", s)
	}
}

// Spec fully identifies a measurement matrix across nodes: the shared
// parameters plus the ensemble family and its knobs. Two nodes with
// equal Specs hold the identical matrix; Specs travel over the wire in
// the cluster protocol.
type Spec struct {
	Params
	Kind Kind
	// D is the ensemble's per-column shape knob: the SparseRademacher
	// density (0 means max(8, M/16)) or the CountSketch row count
	// (0 means 5). Ignored for Gaussian and SRHT.
	D int
}

// GaussianSpec is the default-family spec for the given parameters.
func GaussianSpec(p Params) Spec { return Spec{Params: p, Kind: KindGaussian} }

// Validate extends Params.Validate with the spec-level constraints the
// wire protocol relies on. A Spec arrives from the network in the cluster
// protocol and its dimensions size allocations, so servers must reject a
// malformed one before instantiating anything from it: compression
// requires M ≤ N, the density cannot be negative, and the ensemble must
// be one this build knows.
func (s Spec) Validate() error {
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.M > s.N {
		return fmt.Errorf("sensing: M=%d exceeds N=%d (no compression)", s.M, s.N)
	}
	if s.D < 0 {
		return fmt.Errorf("sensing: negative sparse density D=%d", s.D)
	}
	if s.Kind > KindCountSketch {
		return fmt.Errorf("sensing: unknown ensemble kind %d", s.Kind)
	}
	return nil
}

// density resolves the SparseRademacher density default.
func (s Spec) density() int {
	if s.D > 0 {
		return s.D
	}
	d := s.M / 16
	if d < 8 {
		d = 8
	}
	return d
}

// depth resolves the CountSketch row-count default.
func (s Spec) depth() int {
	if s.D > 0 {
		return s.D
	}
	return DefaultCountSketchDepth
}

// DefaultCountSketchDepth is the row count a zero D resolves to for the
// count-sketch ensemble: 5 rows — odd, so the point estimator's median
// is an order statistic that survives two outlier collisions.
const DefaultCountSketchDepth = 5

// New instantiates the matrix a Spec describes. For the Gaussian family
// it picks the stored representation when M·N fits under denseLimit and
// the column-regenerating one otherwise.
func New(spec Spec, denseLimit int64) (Matrix, error) {
	if denseLimit <= 0 {
		denseLimit = 4e7
	}
	switch spec.Kind {
	case KindGaussian:
		if int64(spec.M)*int64(spec.N) <= denseLimit {
			return NewDense(spec.Params)
		}
		return NewSeeded(spec.Params)
	case KindSparseRademacher:
		return NewSparseRademacher(spec.Params, spec.density())
	case KindSRHT:
		return NewSRHT(spec.Params)
	case KindCountSketch:
		return NewCountSketch(spec.Params, spec.depth())
	default:
		return nil, fmt.Errorf("sensing: unknown ensemble kind %d", spec.Kind)
	}
}
