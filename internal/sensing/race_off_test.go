//go:build !race

package sensing

const raceEnabled = false
