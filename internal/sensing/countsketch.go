package sensing

import (
	"fmt"
	"math"
	"sort"

	"csoutlier/internal/linalg"
)

// CountSketch is a bias-aware count-sketch measurement ensemble, the
// recovery-free point-query backend (Chen & Zhang, "Bias-Aware
// Sketches"). The M measurements are laid out as depth rows of width
// buckets (cell (r, b) lives at index r·width+b; when depth does not
// divide M the trailing M−depth·width entries stay zero). Column j has
// exactly one non-zero per row — value sign_r(j)/√depth at bucket
// bucket_r(j), both derived from a seeded hash of (row, j) — so every
// column has unit norm like the other ensembles and the matrix is a
// perfectly ordinary linear Φ: Updater, WindowStore, the push protocol
// and BOMP recovery all work on it unchanged.
//
// What the hashed structure adds is an O(depth) estimator that needs no
// recovery at all. The sketch cell (r, b) holds
//
//	C[r,b] = (1/√depth) · Σ_{i: bucket_r(i)=b} sign_r(i)·x_i,
//
// and the ensemble precomputes the signed key counts
//
//	S[r,b] = Σ_{i: bucket_r(i)=b} sign_r(i).
//
// For data concentrated around an unknown mode m, every cell's ratio
// √depth·C/S is a signed-weighted mean of that cell's values — m
// exactly for cells no outlier hashed into — so the median of the
// ratios over all cells (EstimateMode, the median-of-bucket-means
// estimator) recovers m as long as outliers contaminate fewer than half
// the cells. Subtracting the mode's contribution m·S/√depth from each
// cell and taking the median over a key's depth cells (PointEstimate)
// then recovers that key's value with the usual count-sketch median
// guarantee. Both estimators read only the sketch payload: no BOMP, no
// column generation, no allocation.
//
// The same precomputed S table is (up to 1/√(N·depth)) exactly the
// extension column φ₀ = (1/√N)·Σφᵢ that BOMP prepends for the bias, so
// the recovery path and the point-query path agree on what "the mode"
// means — one sketch serves both.
type CountSketch struct {
	p     Params
	depth int
	width int
	invs  float64 // 1/√depth, the per-entry magnitude
	sqd   float64 // √depth

	rowSalt []uint64      // per-row hash salt, derived from the seed
	signed  linalg.Vector // S[r·width+b], signed key count per cell
	phi0    linalg.Vector // cached extension column = signed/(√depth·√N)
}

// maxCountSketchDepth bounds depth so PointEstimate's median buffer can
// live on the stack.
const maxCountSketchDepth = 64

// countSketchSalt decorrelates the count-sketch hash stream from the
// other ensembles' PRNG sub-streams at equal seeds.
const countSketchSalt = 0x8f1bbcdc

// NewCountSketch returns a depth×(M/depth) count-sketch ensemble.
// depth must be in [1, 64] and M must afford at least two buckets per
// row; odd depths make PointEstimate's median an actual order statistic
// and are recommended.
func NewCountSketch(p Params, depth int) (*CountSketch, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if depth < 1 || depth > maxCountSketchDepth {
		return nil, fmt.Errorf("sensing: count-sketch depth %d outside [1, %d]", depth, maxCountSketchDepth)
	}
	width := p.M / depth
	if width < 2 {
		return nil, fmt.Errorf("sensing: M=%d gives %d buckets per row at depth %d, need ≥ 2", p.M, width, depth)
	}
	c := &CountSketch{
		p:     p,
		depth: depth,
		width: width,
		invs:  1 / math.Sqrt(float64(depth)),
		sqd:   math.Sqrt(float64(depth)),
	}
	c.rowSalt = make([]uint64, depth)
	for r := range c.rowSalt {
		c.rowSalt[r] = mix64(p.Seed ^ countSketchSalt + uint64(r+1)*0x9e3779b97f4a7c15)
	}
	// The signed-count table S and (from it) φ₀, both O(N·depth) once.
	c.signed = make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		for r := 0; r < depth; r++ {
			cell, sign := c.cell(r, j)
			c.signed[cell] += sign
		}
	}
	c.phi0 = make(linalg.Vector, p.M)
	scale := c.invs / math.Sqrt(float64(p.N))
	for i, s := range c.signed {
		c.phi0[i] = s * scale
	}
	return c, nil
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// mixer (Steele, Lea & Flood 2014).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// cell returns column j's (flat cell index, ±1 sign) in row r.
func (c *CountSketch) cell(r, j int) (int, float64) {
	h := mix64(c.rowSalt[r] + uint64(j)*0x9e3779b97f4a7c15)
	b := int((h >> 1) % uint64(c.width))
	sign := 1.0
	if h&1 == 0 {
		sign = -1
	}
	return r*c.width + b, sign
}

// Depth returns the number of hash rows.
func (c *CountSketch) Depth() int { return c.depth }

// Width returns the buckets per row.
func (c *CountSketch) Width() int { return c.width }

// Params implements Matrix.
func (c *CountSketch) Params() Params { return c.p }

// Col implements Matrix: one ±1/√depth entry per row.
func (c *CountSketch) Col(j int, dst linalg.Vector) linalg.Vector {
	if j < 0 || j >= c.p.N {
		panic(fmt.Sprintf("sensing: column %d out of [0,%d)", j, c.p.N))
	}
	dst = ensure(dst, c.p.M)
	for r := 0; r < c.depth; r++ {
		cell, sign := c.cell(r, j)
		dst[cell] = sign * c.invs
	}
	return dst
}

// Measure implements Matrix in O(nnz(x)·depth) — no column
// materialization, just depth scattered adds per non-zero.
func (c *CountSketch) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != c.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), c.p.N))
	}
	dst = ensure(dst, c.p.M)
	for j, v := range x {
		if v == 0 {
			continue
		}
		for r := 0; r < c.depth; r++ {
			cell, sign := c.cell(r, j)
			dst[cell] += v * sign * c.invs
		}
	}
	return dst
}

// MeasureSparse implements Matrix. Cost: O(depth) per pair, the fastest
// ingest of any ensemble here.
func (c *CountSketch) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, c.p.M)
	for k, j := range idx {
		v := vals[k]
		if v == 0 {
			continue
		}
		if j < 0 || j >= c.p.N {
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, c.p.N))
		}
		for r := 0; r < c.depth; r++ {
			cell, sign := c.cell(r, j)
			dst[cell] += v * sign * c.invs
		}
	}
	return dst
}

// countSketchCorrChunk is the minimum columns per worker for the
// parallel correlation; a column costs only depth hashes, so chunks
// must be large to amortize goroutine dispatch.
const countSketchCorrChunk = 512

// Correlate implements Matrix, fanned over GOMAXPROCS workers. dst[j]
// depends only on column j's hashes and r, so the result is
// bit-identical to CorrelateSerial for any worker count.
func (c *CountSketch) Correlate(r, dst linalg.Vector) linalg.Vector {
	if len(r) != c.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), c.p.M))
	}
	dst = ensureExact(dst, c.p.N)
	if kernelWorkers() < 2 || c.p.N < 2*countSketchCorrChunk {
		c.correlateRange(r, dst, 0, c.p.N)
		return dst
	}
	parallelRanges(c.p.N, countSketchCorrChunk, func(lo, hi int) {
		c.correlateRange(r, dst, lo, hi)
	})
	return dst
}

// CorrelateSerial is the single-threaded correlation, kept for the
// parallel-vs-serial equivalence tests.
func (c *CountSketch) CorrelateSerial(r, dst linalg.Vector) linalg.Vector {
	if len(r) != c.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), c.p.M))
	}
	dst = ensureExact(dst, c.p.N)
	c.correlateRange(r, dst, 0, c.p.N)
	return dst
}

// correlateRange fills dst[j] = <φ_j, r> for j in [lo, hi).
func (c *CountSketch) correlateRange(r, dst linalg.Vector, lo, hi int) {
	for j := lo; j < hi; j++ {
		sum := 0.0
		for row := 0; row < c.depth; row++ {
			cell, sign := c.cell(row, j)
			sum += sign * c.invs * r[cell]
		}
		dst[j] = sum
	}
}

// CorrelateBatch implements BatchCorrelator: each column's depth
// (cell, sign) pairs are hashed once and applied to every residual.
// The accumulation order over rows matches correlateRange's, so each
// dsts[q] is bit-identical to Correlate(rs[q], ·).
func (c *CountSketch) CorrelateBatch(rs, dsts []linalg.Vector) {
	if kernelWorkers() < 2 || c.p.N < 2*countSketchCorrChunk {
		c.correlateBatchRange(rs, dsts, 0, c.p.N)
		return
	}
	parallelRanges(c.p.N, countSketchCorrChunk, func(lo, hi int) {
		c.correlateBatchRange(rs, dsts, lo, hi)
	})
}

// correlateBatchRange fills dsts[q][j] = <φ_j, rs[q]> for j in [lo, hi).
func (c *CountSketch) correlateBatchRange(rs, dsts []linalg.Vector, lo, hi int) {
	sums := make([]float64, len(rs))
	for j := lo; j < hi; j++ {
		clear(sums)
		for row := 0; row < c.depth; row++ {
			cell, sign := c.cell(row, j)
			sv := sign * c.invs
			for q, r := range rs {
				sums[q] += sv * r[cell]
			}
		}
		for q := range dsts {
			dsts[q][j] = sums[q]
		}
	}
}

// ExtensionColumn implements Matrix from the construction-time cache:
// φ₀ = (1/√N)·Σφᵢ has entries S[cell]/(√depth·√N) — the signed-count
// table again, which is why recovery's bias column and the point
// estimators see the same mode.
func (c *CountSketch) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	return copyCached(c.phi0, dst)
}

// EstimateMode recovers the bias the data concentrates around from a
// sketch payload y (length M): the median over all cells with a
// non-zero signed count of the cell ratio √depth·y[cell]/S[cell].
// Cells no outlier hashed into have ratio exactly the mode, so the
// estimate is exact (up to float rounding) whenever outliers touch
// fewer than half the populated cells. scratch, reused across calls,
// needs capacity ≥ depth·width; cost is O(M log M), paid once per fold
// generation by a standing PointState, never per query.
func (c *CountSketch) EstimateMode(y linalg.Vector, scratch []float64) float64 {
	if len(y) != c.p.M {
		panic(fmt.Sprintf("sensing: EstimateMode payload length %d, want M=%d", len(y), c.p.M))
	}
	cells := c.depth * c.width
	if cap(scratch) < cells {
		scratch = make([]float64, 0, cells)
	}
	ratios := scratch[:0]
	for cell := 0; cell < cells; cell++ {
		if s := c.signed[cell]; s != 0 {
			ratios = append(ratios, c.sqd*y[cell]/s)
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		return ratios[mid]
	}
	return (ratios[mid-1] + ratios[mid]) / 2
}

// PointEstimate recovers key j's value from a sketch payload y given a
// mode estimate (from EstimateMode): the median over the key's depth
// cells of sign·√depth·(y[cell] − mode·S[cell]/√depth), plus the mode.
// Cells only this key's deviation hashed into contribute it exactly, so
// the estimate survives up to ⌊(depth−1)/2⌋ collisions with other
// outliers. O(depth), zero allocations: the median buffer lives on the
// stack.
func (c *CountSketch) PointEstimate(y linalg.Vector, j int, mode float64) float64 {
	if len(y) != c.p.M {
		panic(fmt.Sprintf("sensing: PointEstimate payload length %d, want M=%d", len(y), c.p.M))
	}
	if j < 0 || j >= c.p.N {
		panic(fmt.Sprintf("sensing: PointEstimate index %d out of [0,%d)", j, c.p.N))
	}
	var buf [maxCountSketchDepth]float64
	for r := 0; r < c.depth; r++ {
		cell, sign := c.cell(r, j)
		dev := sign * (c.sqd*y[cell] - mode*c.signed[cell])
		// Insertion sort keeps buf[:r+1] ordered; depth ≤ 64 keeps it cheap.
		k := r
		for k > 0 && buf[k-1] > dev {
			buf[k] = buf[k-1]
			k--
		}
		buf[k] = dev
	}
	mid := c.depth / 2
	if c.depth%2 == 1 {
		return mode + buf[mid]
	}
	return mode + (buf[mid-1]+buf[mid])/2
}

var _ Matrix = (*CountSketch)(nil)
var _ BatchCorrelator = (*CountSketch)(nil)
