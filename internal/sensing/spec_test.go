package sensing

import (
	"testing"

	"csoutlier/internal/linalg"
)

func TestSpecDensityDefault(t *testing.T) {
	s := Spec{Params: Params{M: 320, N: 10}, Kind: KindSparseRademacher}
	if d := s.density(); d != 20 {
		t.Fatalf("density = %d, want M/16 = 20", d)
	}
	s.Params.M = 32
	if d := s.density(); d != 8 {
		t.Fatalf("density floor = %d, want 8", d)
	}
	s.D = 3
	if d := s.density(); d != 3 {
		t.Fatalf("explicit density = %d", d)
	}
	cs := Spec{Params: Params{M: 320, N: 400}, Kind: KindCountSketch}
	if d := cs.depth(); d != DefaultCountSketchDepth {
		t.Fatalf("depth default = %d, want %d", d, DefaultCountSketchDepth)
	}
	cs.D = 7
	if d := cs.depth(); d != 7 {
		t.Fatalf("explicit depth = %d", d)
	}
	if k, err := ParseKind("countsketch"); err != nil || k != KindCountSketch {
		t.Fatalf("ParseKind(countsketch) = %v, %v", k, err)
	}
	if KindCountSketch.String() != "countsketch" {
		t.Fatalf("String = %q", KindCountSketch.String())
	}
	if err := (Spec{Params: Params{M: 10, N: 40}, Kind: KindCountSketch + 1}).Validate(); err == nil {
		t.Fatal("Validate accepted an unknown kind")
	}
}

func TestSpecNewAgreesWithDirectConstructors(t *testing.T) {
	p := Params{M: 10, N: 40, Seed: 21}
	for _, spec := range []Spec{
		GaussianSpec(p),
		{Params: p, Kind: KindSparseRademacher, D: 4},
		{Params: p, Kind: KindSRHT},
		{Params: p, Kind: KindCountSketch, D: 4},
	} {
		m, err := New(spec, 0)
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		var direct Matrix
		switch spec.Kind {
		case KindGaussian:
			direct, err = NewDense(p)
		case KindSparseRademacher:
			direct, err = NewSparseRademacher(p, 4)
		case KindSRHT:
			direct, err = NewSRHT(p)
		case KindCountSketch:
			direct, err = NewCountSketch(p, 4)
		}
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < p.N; j++ {
			if !m.Col(j, nil).Equal(direct.Col(j, nil), 0) {
				t.Fatalf("%v: New disagrees with direct constructor at column %d", spec.Kind, j)
			}
		}
	}
}

func TestSpecNewGaussianDenseLimit(t *testing.T) {
	p := Params{M: 10, N: 40, Seed: 1}
	m, err := New(GaussianSpec(p), 1) // force column-regenerating
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Seeded); !ok {
		t.Fatalf("tiny dense limit did not force Seeded, got %T", m)
	}
	if kindName := KindGaussian.String(); kindName != "gaussian" {
		t.Fatalf("String = %q", kindName)
	}
}

func TestCompressionRatioAndParamsAccessors(t *testing.T) {
	p := Params{M: 25, N: 100, Seed: 1}
	if r := p.CompressionRatio(); r != 0.25 {
		t.Fatalf("CompressionRatio = %v", r)
	}
	d, _ := NewDense(p)
	sd, _ := NewSeeded(p)
	sp, _ := NewSparseRademacher(p, 4)
	sr, _ := NewSRHT(p)
	for _, m := range []Matrix{d, sd, sp, sr} {
		if m.Params() != p {
			t.Fatalf("%T.Params() = %+v", m, m.Params())
		}
	}
}

func TestMeasurePanicsOnBadLength(t *testing.T) {
	p := Params{M: 4, N: 10, Seed: 1}
	d, _ := NewDense(p)
	sd, _ := NewSeeded(p)
	for _, m := range []Matrix{d, sd} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T.Measure accepted wrong length", m)
				}
			}()
			m.Measure(make(linalg.Vector, 9), nil)
		}()
	}
	// Sparse index bounds.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Dense.MeasureSparse accepted out-of-range index")
			}
		}()
		// Use the low-density path (few indices) to hit the bound check.
		d.MeasureSparse([]int{10}, []float64{0}, nil)
		d.MeasureSparse([]int{10}, []float64{1}, nil)
	}()
}

func TestSketchArithmeticPanicsOnMismatch(t *testing.T) {
	a := make(linalg.Vector, 3)
	b := make(linalg.Vector, 4)
	for _, f := range []func(){
		func() { AddSketch(a, b) },
		func() { SubSketch(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("sketch length mismatch accepted")
				}
			}()
			f()
		}()
	}
}
