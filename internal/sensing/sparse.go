package sensing

import (
	"fmt"
	"math"
	"sync"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

// SparseRademacher is a sparse measurement ensemble: each column has
// exactly D non-zero entries of value ±1/√D at positions drawn from the
// column's PRNG sub-stream (a sparse Johnson–Lindenstrauss / count-
// sketch-style transform, cf. Achlioptas 2003 and Kane–Nelson 2014).
//
// Compared to the dense Gaussian ensemble, measuring one key-value pair
// costs O(D) instead of O(M) — in the paper's setting, a mapper sketches
// its partial aggregation D·nnz adds instead of M·nnz — at a modest cost
// in recovery quality (RIP constants degrade as D shrinks). The
// footnote in §3.1 ("additional compression techniques can be applied
// on the data measurement for further data reduction") points at this
// family; it is included here as an extension and quantified by the
// sparse-vs-Gaussian ablation bench.
//
// The same (seed, M, N, D) always produces the same matrix, so the
// consensus property holds exactly as for Dense/Seeded. Like Seeded,
// column j has its own sub-stream, so the correlation kernel fans
// columns out over GOMAXPROCS workers bit-identically.
type SparseRademacher struct {
	p        Params
	d        int
	phi0Once sync.Once
	phi0     linalg.Vector
}

// sparseSalt decorrelates the SparseRademacher sub-streams from the
// Gaussian columns of the same (seed, j).
const sparseSalt = 0x5bd1e995

// NewSparseRademacher returns a sparse ensemble with d non-zeros per
// column. d is clamped to [1, M].
func NewSparseRademacher(p Params, d int) (*SparseRademacher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 1 {
		d = 1
	}
	if d > p.M {
		d = p.M
	}
	return &SparseRademacher{p: p, d: d}, nil
}

// D returns the per-column non-zero count.
func (s *SparseRademacher) D() int { return s.d }

// Params implements Matrix.
func (s *SparseRademacher) Params() Params { return s.p }

// columnEntries streams column j's non-zero (row, value) pairs. Rows
// may repeat across draws; values then accumulate, preserving
// E[‖φ‖²]=1 (standard for count-sketch-style constructions). The
// generator lives on the stack, so streaming a column is allocation-free.
func (s *SparseRademacher) columnEntries(j int, f func(row int, val float64)) {
	root := xrand.NewValue(s.p.Seed ^ sparseSalt)
	rng := root.SplitValue(uint64(j) + 1)
	inv := 1 / math.Sqrt(float64(s.d))
	for t := 0; t < s.d; t++ {
		row := rng.Intn(s.p.M)
		val := inv
		if rng.Uint64()&1 == 0 {
			val = -inv
		}
		f(row, val)
	}
}

// Col implements Matrix.
func (s *SparseRademacher) Col(j int, dst linalg.Vector) linalg.Vector {
	if j < 0 || j >= s.p.N {
		panic(fmt.Sprintf("sensing: column %d out of [0,%d)", j, s.p.N))
	}
	dst = ensure(dst, s.p.M)
	s.columnEntries(j, func(row int, val float64) { dst[row] += val })
	return dst
}

// Measure implements Matrix.
func (s *SparseRademacher) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != s.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), s.p.N))
	}
	dst = ensure(dst, s.p.M)
	for j, v := range x {
		if v == 0 {
			continue
		}
		s.columnEntries(j, func(row int, val float64) { dst[row] += v * val })
	}
	return dst
}

// MeasureSparse implements Matrix. Cost: O(D) per pair — the whole
// point of this ensemble.
func (s *SparseRademacher) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, s.p.M)
	for k, j := range idx {
		v := vals[k]
		if v == 0 {
			continue
		}
		if j < 0 || j >= s.p.N {
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, s.p.N))
		}
		s.columnEntries(j, func(row int, val float64) { dst[row] += v * val })
	}
	return dst
}

// sparseCorrChunk is the minimum columns per worker in the parallel
// correlation; a column costs only D draws, so chunks must be larger
// than the Gaussian ensembles' to amortize goroutine dispatch.
const sparseCorrChunk = 256

// Correlate implements Matrix, fanned over GOMAXPROCS workers. dst[j]
// depends only on column j's sub-stream and r, so the result is
// bit-identical to CorrelateSerial for any worker count.
func (s *SparseRademacher) Correlate(r, dst linalg.Vector) linalg.Vector {
	if len(r) != s.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), s.p.M))
	}
	dst = ensureExact(dst, s.p.N)
	if kernelWorkers() < 2 || s.p.N < 2*sparseCorrChunk {
		s.correlateRange(r, dst, 0, s.p.N)
		return dst
	}
	parallelRanges(s.p.N, sparseCorrChunk, func(lo, hi int) {
		s.correlateRange(r, dst, lo, hi)
	})
	return dst
}

// CorrelateSerial is the single-threaded correlation, kept for the
// parallel-vs-serial equivalence tests and the ablation bench.
func (s *SparseRademacher) CorrelateSerial(r, dst linalg.Vector) linalg.Vector {
	if len(r) != s.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), s.p.M))
	}
	dst = ensureExact(dst, s.p.N)
	s.correlateRange(r, dst, 0, s.p.N)
	return dst
}

// correlateRange fills dst[j] = <φ_j, r> for j in [lo, hi), streaming
// each column's entries with a stack generator (no closure, no alloc).
func (s *SparseRademacher) correlateRange(r, dst linalg.Vector, lo, hi int) {
	root := xrand.NewValue(s.p.Seed ^ sparseSalt)
	inv := 1 / math.Sqrt(float64(s.d))
	m, d := s.p.M, s.d
	for j := lo; j < hi; j++ {
		rng := root.SplitValue(uint64(j) + 1)
		sum := 0.0
		for t := 0; t < d; t++ {
			row := rng.Intn(m)
			if rng.Uint64()&1 == 0 {
				sum -= inv * r[row]
			} else {
				sum += inv * r[row]
			}
		}
		dst[j] = sum
	}
}

// CorrelateBatch implements BatchCorrelator: each column's (row, sign)
// stream is drawn ONCE and applied to every residual, amortizing the
// PRNG work that dominates this ensemble's correlate. Per residual the
// accumulation order over draws is exactly correlateRange's, so each
// dsts[q] is bit-identical to Correlate(rs[q], ·).
func (s *SparseRademacher) CorrelateBatch(rs, dsts []linalg.Vector) {
	if kernelWorkers() < 2 || s.p.N < 2*sparseCorrChunk {
		s.correlateBatchRange(rs, dsts, 0, s.p.N)
		return
	}
	parallelRanges(s.p.N, sparseCorrChunk, func(lo, hi int) {
		s.correlateBatchRange(rs, dsts, lo, hi)
	})
}

// correlateBatchRange fills dsts[q][j] = <φ_j, rs[q]> for j in [lo, hi).
func (s *SparseRademacher) correlateBatchRange(rs, dsts []linalg.Vector, lo, hi int) {
	root := xrand.NewValue(s.p.Seed ^ sparseSalt)
	inv := 1 / math.Sqrt(float64(s.d))
	m, d := s.p.M, s.d
	sums := make([]float64, len(rs))
	for j := lo; j < hi; j++ {
		rng := root.SplitValue(uint64(j) + 1)
		clear(sums)
		for t := 0; t < d; t++ {
			row := rng.Intn(m)
			if rng.Uint64()&1 == 0 {
				for q, r := range rs {
					sums[q] -= inv * r[row]
				}
			} else {
				for q, r := range rs {
					sums[q] += inv * r[row]
				}
			}
		}
		for q := range dsts {
			dsts[q][j] = sums[q]
		}
	}
}

// ExtensionColumn implements Matrix. φ₀ is computed once per matrix and
// cached; every later call is an O(M) copy.
func (s *SparseRademacher) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	s.phi0Once.Do(func() {
		phi0 := make(linalg.Vector, s.p.M)
		for j := 0; j < s.p.N; j++ {
			s.columnEntries(j, func(row int, val float64) { phi0[row] += val })
		}
		s.phi0 = phi0.Scale(1 / math.Sqrt(float64(s.p.N)))
	})
	return copyCached(s.phi0, dst)
}

var _ Matrix = (*SparseRademacher)(nil)
var _ Matrix = (*Dense)(nil)
var _ Matrix = (*Seeded)(nil)
