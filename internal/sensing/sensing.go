// Package sensing implements the compressive-sensing measurement step of
// the paper's distributed aggregation paradigm (§3.1).
//
// Every node derives the same M×N measurement matrix Φ₀ from a shared
// (seed, M, N) triple — entries are i.i.d. N(0, 1/M), the ensemble the
// paper's Theorem 1 assumes — measures its local slice y_l = Φ₀·x_l, and
// ships only the M-vector y_l. Because measurement is linear, the
// aggregator's sum Σy_l equals Φ₀·Σx_l: the sketch of the global
// aggregate, computed without ever materializing it.
//
// Two interchangeable matrix representations are provided:
//
//   - Dense stores all M·N entries; fastest for repeated recovery on
//     moderate N (the paper's production queries have N ≈ 10K).
//   - Seeded stores nothing but the parameters and regenerates any column
//     on demand in O(M); this is what makes the key-scaling experiment
//     (Figure 12, N up to 5M) feasible in bounded memory, and it is also
//     how thousands of independent mapper processes can agree on Φ₀
//     without distributing it.
//
// Both derive column j from the same per-column PRNG sub-stream, so they
// produce bit-identical matrices for equal parameters — tested, because
// the protocol's correctness depends on it.
package sensing

import (
	"fmt"
	"math"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

// Params identifies a measurement matrix. Nodes that share Params share
// the matrix.
type Params struct {
	M    int    // measurement (sketch) length
	N    int    // key-space (data vector) length
	Seed uint64 // consensus seed
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("sensing: non-positive dimensions M=%d N=%d", p.M, p.N)
	}
	return nil
}

// CompressionRatio returns M/N, the paper's compression ratio.
func (p Params) CompressionRatio() float64 { return float64(p.M) / float64(p.N) }

// Matrix is a measurement matrix Φ₀ with columns φ₁..φ_N.
type Matrix interface {
	// Params returns the identifying parameters.
	Params() Params
	// Col writes column j (0-based) into dst and returns it.
	Col(j int, dst linalg.Vector) linalg.Vector
	// Measure computes y = Φ₀·x for a dense data vector x of length N,
	// writing into dst (allocated if nil).
	Measure(x linalg.Vector, dst linalg.Vector) linalg.Vector
	// MeasureSparse computes y = Σ vals[i]·φ_{idx[i]} for a sparse slice;
	// indices may repeat (values accumulate).
	MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector
	// Correlate computes Φ₀ᵀ·r — the inner product of every column with
	// r, the dominant cost of each OMP iteration.
	Correlate(r linalg.Vector, dst linalg.Vector) linalg.Vector
	// ExtensionColumn returns φ₀ = (1/√N)·Σφᵢ, the extra column BOMP
	// prepends to represent the unknown bias (paper eq. 3).
	ExtensionColumn(dst linalg.Vector) linalg.Vector
}

// fillColumn writes the canonical column j for params p into dst, which
// must have length p.M. Entries are N(0, 1/M).
func fillColumn(p Params, j int, dst linalg.Vector) {
	rng := xrand.New(p.Seed).Split(uint64(j) + 1)
	inv := 1 / math.Sqrt(float64(p.M))
	for i := range dst {
		dst[i] = rng.NormFloat64() * inv
	}
}

// Dense is a fully materialized measurement matrix.
type Dense struct {
	p   Params
	mat *linalg.Matrix // M×N row-major
}

// NewDense builds and stores the full matrix. Memory: M·N·8 bytes.
func NewDense(p Params) (*Dense, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mat := linalg.NewMatrix(p.M, p.N)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		fillColumn(p, j, col)
		for i := 0; i < p.M; i++ {
			mat.Set(i, j, col[i])
		}
	}
	return &Dense{p: p, mat: mat}, nil
}

// Params implements Matrix.
func (d *Dense) Params() Params { return d.p }

// Col implements Matrix.
func (d *Dense) Col(j int, dst linalg.Vector) linalg.Vector { return d.mat.Col(j, dst) }

// Measure implements Matrix.
func (d *Dense) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != d.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), d.p.N))
	}
	return d.mat.MulVec(x, dst)
}

// MeasureSparse implements Matrix. For inputs that are not genuinely
// sparse relative to N, the column-at-a-time walk over the row-major
// storage is cache-hostile (stride N per element); scattering into a
// dense vector and running the row-major MulVec is the same flop count
// with sequential access, so it wins beyond a small density threshold.
func (d *Dense) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, d.p.M)
	if len(idx) > 64 && len(idx) > d.p.N/16 {
		x := make(linalg.Vector, d.p.N)
		for k, j := range idx {
			x[j] += vals[k]
		}
		return d.mat.MulVec(x, dst)
	}
	for k, j := range idx {
		v := vals[k]
		if v == 0 {
			continue
		}
		if j < 0 || j >= d.p.N {
			// Explicit check: row-major indexing would otherwise alias a
			// neighbouring row's entry instead of failing fast.
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, d.p.N))
		}
		for i := 0; i < d.p.M; i++ {
			dst[i] += v * d.mat.At(i, j)
		}
	}
	return dst
}

// Correlate implements Matrix using the goroutine-parallel kernel.
func (d *Dense) Correlate(r, dst linalg.Vector) linalg.Vector {
	return d.mat.ParallelMulVecT(r, dst)
}

// CorrelateSerial is the single-threaded correlation, kept for the
// parallel-correlation ablation bench.
func (d *Dense) CorrelateSerial(r, dst linalg.Vector) linalg.Vector {
	return d.mat.MulVecT(r, dst)
}

// ExtensionColumn implements Matrix.
func (d *Dense) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, d.p.M)
	for i := 0; i < d.p.M; i++ {
		s := 0.0
		row := d.mat.Row(i)
		for _, v := range row {
			s += v
		}
		dst[i] = s
	}
	return dst.Scale(1 / math.Sqrt(float64(d.p.N)))
}

// Seeded is a measurement matrix that regenerates columns on demand.
// Memory: O(M) scratch. Every operation touching all N columns costs the
// PRNG regeneration of M·N Gaussians; use Dense when the matrix fits.
type Seeded struct {
	p Params
}

// NewSeeded returns a column-regenerating matrix.
func NewSeeded(p Params) (*Seeded, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Seeded{p: p}, nil
}

// Params implements Matrix.
func (s *Seeded) Params() Params { return s.p }

// Col implements Matrix.
func (s *Seeded) Col(j int, dst linalg.Vector) linalg.Vector {
	if j < 0 || j >= s.p.N {
		panic(fmt.Sprintf("sensing: column %d out of [0,%d)", j, s.p.N))
	}
	dst = ensureExact(dst, s.p.M)
	fillColumn(s.p, j, dst)
	return dst
}

// Measure implements Matrix.
func (s *Seeded) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != s.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), s.p.N))
	}
	dst = ensure(dst, s.p.M)
	col := make(linalg.Vector, s.p.M)
	for j, v := range x {
		if v == 0 {
			continue
		}
		fillColumn(s.p, j, col)
		dst.AddScaled(v, col)
	}
	return dst
}

// MeasureSparse implements Matrix.
func (s *Seeded) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, s.p.M)
	col := make(linalg.Vector, s.p.M)
	for k, j := range idx {
		if vals[k] == 0 {
			continue
		}
		if j < 0 || j >= s.p.N {
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, s.p.N))
		}
		fillColumn(s.p, j, col)
		dst.AddScaled(vals[k], col)
	}
	return dst
}

// Correlate implements Matrix by regenerating every column.
func (s *Seeded) Correlate(r, dst linalg.Vector) linalg.Vector {
	if len(r) != s.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), s.p.M))
	}
	dst = ensure(dst, s.p.N)
	col := make(linalg.Vector, s.p.M)
	for j := 0; j < s.p.N; j++ {
		fillColumn(s.p, j, col)
		dst[j] = col.Dot(r)
	}
	return dst
}

// ExtensionColumn implements Matrix.
func (s *Seeded) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, s.p.M)
	col := make(linalg.Vector, s.p.M)
	for j := 0; j < s.p.N; j++ {
		fillColumn(s.p, j, col)
		dst.Add(col)
	}
	return dst.Scale(1 / math.Sqrt(float64(s.p.N)))
}

// ensure returns dst resized to n and zeroed.
func ensure(dst linalg.Vector, n int) linalg.Vector {
	if cap(dst) < n {
		return make(linalg.Vector, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// ensureExact returns dst resized to n without zeroing (callers overwrite).
func ensureExact(dst linalg.Vector, n int) linalg.Vector {
	if cap(dst) < n {
		return make(linalg.Vector, n)
	}
	return dst[:n]
}

// AddSketch accumulates src into dst (dst += src): the aggregator's
// global-measurement step y = Σ y_l (paper eq. 1), and also the
// incremental-update path — new data arriving at a node contributes
// Φ₀·Δx, which is simply added to the standing sketch.
func AddSketch(dst, src linalg.Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sensing: sketch length mismatch %d vs %d", len(dst), len(src)))
	}
	dst.Add(src)
}

// SubSketch removes src from dst (dst -= src): the node-removal path —
// dropping a data center from the aggregation subtracts its sketch,
// again in O(M), no recomputation anywhere (paper §1 challenge 3).
func SubSketch(dst, src linalg.Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sensing: sketch length mismatch %d vs %d", len(dst), len(src)))
	}
	dst.Sub(src)
}

// SketchBytes returns the wire size of a sketch: M measurements at
// 64 bits each (S_M in the paper's cost accounting, §6.1.2).
func SketchBytes(m int) int64 { return int64(m) * 8 }
