// Package sensing implements the compressive-sensing measurement step of
// the paper's distributed aggregation paradigm (§3.1).
//
// Every node derives the same M×N measurement matrix Φ₀ from a shared
// (seed, M, N) triple — entries are i.i.d. N(0, 1/M), the ensemble the
// paper's Theorem 1 assumes — measures its local slice y_l = Φ₀·x_l, and
// ships only the M-vector y_l. Because measurement is linear, the
// aggregator's sum Σy_l equals Φ₀·Σx_l: the sketch of the global
// aggregate, computed without ever materializing it.
//
// Two interchangeable matrix representations are provided:
//
//   - Dense stores all M·N entries; fastest for repeated recovery on
//     moderate N (the paper's production queries have N ≈ 10K).
//   - Seeded stores nothing but the parameters and regenerates any column
//     on demand in O(M); this is what makes the key-scaling experiment
//     (Figure 12, N up to 5M) feasible in bounded memory, and it is also
//     how thousands of independent mapper processes can agree on Φ₀
//     without distributing it.
//
// Both derive column j from the same per-column PRNG sub-stream, so they
// produce bit-identical matrices for equal parameters — tested, because
// the protocol's correctness depends on it. The per-column sub-streams
// also make every whole-matrix kernel embarrassingly parallel: Correlate,
// Measure, MeasureSparse and ExtensionColumn fan columns out over
// GOMAXPROCS workers (see parallel.go) while staying bit-identical to
// their serial counterparts — the software stand-in for the GPU
// acceleration the paper leaves as future work (§5).
package sensing

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

// Params identifies a measurement matrix. Nodes that share Params share
// the matrix.
type Params struct {
	M    int    // measurement (sketch) length
	N    int    // key-space (data vector) length
	Seed uint64 // consensus seed
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("sensing: non-positive dimensions M=%d N=%d", p.M, p.N)
	}
	return nil
}

// CompressionRatio returns M/N, the paper's compression ratio.
func (p Params) CompressionRatio() float64 { return float64(p.M) / float64(p.N) }

// Matrix is a measurement matrix Φ₀ with columns φ₁..φ_N.
type Matrix interface {
	// Params returns the identifying parameters.
	Params() Params
	// Col writes column j (0-based) into dst and returns it.
	Col(j int, dst linalg.Vector) linalg.Vector
	// Measure computes y = Φ₀·x for a dense data vector x of length N,
	// writing into dst (allocated if nil).
	Measure(x linalg.Vector, dst linalg.Vector) linalg.Vector
	// MeasureSparse computes y = Σ vals[i]·φ_{idx[i]} for a sparse slice;
	// indices may repeat (values accumulate).
	MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector
	// Correlate computes Φ₀ᵀ·r — the inner product of every column with
	// r, the dominant cost of each OMP iteration.
	Correlate(r linalg.Vector, dst linalg.Vector) linalg.Vector
	// ExtensionColumn returns φ₀ = (1/√N)·Σφᵢ, the extra column BOMP
	// prepends to represent the unknown bias (paper eq. 3). All
	// implementations cache φ₀ per matrix, so repeated calls cost O(M).
	ExtensionColumn(dst linalg.Vector) linalg.Vector
}

// BatchCorrelator is the optional Matrix extension behind the batched
// recovery engine: correlate a whole *block* of residuals against every
// column in one pass over the matrix. For the regenerating ensembles the
// win is amortization — each column is regenerated once and dotted with
// every residual, so q residuals cost one regeneration pass instead of
// q; for Dense it is the blocked GEMM's cache reuse (linalg.MulMatT).
//
// Contract: len(rs) == len(dsts), every rs[q] has length M and every
// dsts[q] length N, and dsts[q] comes out bit-identical to
// Correlate(rs[q], dsts[q]) — batching must never change recovery bits.
type BatchCorrelator interface {
	CorrelateBatch(rs, dsts []linalg.Vector)
}

// CorrelateBlock correlates a residual block through m's batch kernel
// when it implements BatchCorrelator, and by per-residual Correlate
// calls otherwise (SRHT: the fast transform is per-residual anyway).
// Each dsts[q] must be pre-sized to length N; results are bit-identical
// to per-residual Correlate either way.
func CorrelateBlock(m Matrix, rs, dsts []linalg.Vector) {
	p := m.Params()
	if len(rs) != len(dsts) {
		panic(fmt.Sprintf("sensing: CorrelateBlock %d residuals, %d outputs", len(rs), len(dsts)))
	}
	for q := range rs {
		if len(rs[q]) != p.M || len(dsts[q]) != p.N {
			panic(fmt.Sprintf("sensing: CorrelateBlock residual %d/output %d, want M=%d/N=%d",
				len(rs[q]), len(dsts[q]), p.M, p.N))
		}
	}
	if bc, ok := m.(BatchCorrelator); ok && len(rs) > 1 {
		bc.CorrelateBatch(rs, dsts)
		return
	}
	for q := range rs {
		m.Correlate(rs[q], dsts[q])
	}
}

// fillColumn writes the canonical column j for params p into dst, which
// must have length p.M. Entries are N(0, 1/M). The generator lives on
// the stack (value constructors), so regenerating a column performs no
// heap allocation.
func fillColumn(p Params, j int, dst linalg.Vector) {
	root := xrand.NewValue(p.Seed)
	rng := root.SplitValue(uint64(j) + 1)
	inv := 1 / math.Sqrt(float64(p.M))
	for i := range dst {
		dst[i] = rng.NormFloat64() * inv
	}
}

// copyCached writes the cached φ₀ into dst (allocating when needed).
func copyCached(phi0 linalg.Vector, dst linalg.Vector) linalg.Vector {
	dst = ensureExact(dst, len(phi0))
	copy(dst, phi0)
	return dst
}

// Dense is a fully materialized measurement matrix.
type Dense struct {
	p    Params
	mat  *linalg.Matrix // M×N row-major
	phi0 linalg.Vector  // cached extension column, computed at NewDense

	// scatterBuf is the dedicated N-length scatter buffer for
	// MeasureSparse, claimed and returned with atomics. Unlike the pooled
	// fallback it survives GC cycles, which is what keeps the steady-state
	// scatter path at 0 allocs/op: sync.Pool entries are reclaimed at GC,
	// and the occasional 64 KB re-allocation showed up as a steady
	// ~200 B/op in BenchmarkKernelDenseMeasureSparse.
	scatterBuf atomic.Pointer[linalg.Vector]
	scatter    vecPool // overflow pool when callers contend for scatterBuf
}

// NewDense builds and stores the full matrix. Memory: M·N·8 bytes.
func NewDense(p Params) (*Dense, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mat := linalg.NewMatrix(p.M, p.N)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		fillColumn(p, j, col)
		for i := 0; i < p.M; i++ {
			mat.Set(i, j, col[i])
		}
	}
	d := &Dense{p: p, mat: mat}
	// φ₀ = (1/√N)·Σφᵢ, via row sums over the materialized storage; the
	// standing-query path re-reads it on every BOMP call, so pay the
	// O(M·N) exactly once here.
	d.phi0 = make(linalg.Vector, p.M)
	for i := 0; i < p.M; i++ {
		s := 0.0
		for _, v := range mat.Row(i) {
			s += v
		}
		d.phi0[i] = s
	}
	d.phi0.Scale(1 / math.Sqrt(float64(p.N)))
	scatter := make(linalg.Vector, p.N)
	d.scatterBuf.Store(&scatter)
	return d, nil
}

// getScatter claims the dedicated scatter buffer, falling back to the
// pool when another MeasureSparse call holds it.
func (d *Dense) getScatter() *linalg.Vector {
	if v := d.scatterBuf.Swap(nil); v != nil {
		return v
	}
	return d.scatter.get(d.p.N)
}

// putScatter returns a scatter buffer, restoring the dedicated slot
// first so the uncontended path never depends on pool survival.
func (d *Dense) putScatter(v *linalg.Vector) {
	if d.scatterBuf.CompareAndSwap(nil, v) {
		return
	}
	d.scatter.put(v)
}

// Params implements Matrix.
func (d *Dense) Params() Params { return d.p }

// Col implements Matrix.
func (d *Dense) Col(j int, dst linalg.Vector) linalg.Vector { return d.mat.Col(j, dst) }

// Measure implements Matrix.
func (d *Dense) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != d.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), d.p.N))
	}
	return d.mat.MulVec(x, dst)
}

// MeasureSparse implements Matrix. For inputs that are not genuinely
// sparse relative to N, the column-at-a-time walk over the row-major
// storage is cache-hostile (stride N per element); scattering into a
// pooled dense vector and running the row-major MulVec is the same flop
// count with sequential access, so it wins beyond a small density
// threshold.
func (d *Dense) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	n, m := d.p.N, d.p.M
	dst = ensure(dst, m)
	if len(idx) > 64 && len(idx) > n/4 {
		xp := d.getScatter()
		x := *xp
		clear(x)
		for k, j := range idx {
			if j < 0 || j >= n {
				panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, n))
			}
			x[j] += vals[k]
		}
		d.mat.MulVec(x, dst)
		d.putScatter(xp)
		return dst
	}
	for _, j := range idx {
		if j < 0 || j >= n {
			// Explicit check: row-major indexing would otherwise alias a
			// neighbouring row's entry instead of failing fast.
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, n))
		}
	}
	// Row-major gather: accumulate Σ vals[k]·row[idx[k]] one row at a
	// time. Same flop count as the column-at-a-time walk, but the memory
	// access moves forward monotonically inside each row instead of
	// striding N doubles per element, and it reads only nnz/N of the
	// matrix — which is why the dense MulVec above only wins once the
	// input stops being sparse.
	data := d.mat.Data
	for i := 0; i < m; i++ {
		row := data[i*n : i*n+n]
		acc := 0.0
		for k, j := range idx {
			acc += vals[k] * row[j]
		}
		dst[i] += acc
	}
	return dst
}

// Correlate implements Matrix using the goroutine-parallel kernel.
func (d *Dense) Correlate(r, dst linalg.Vector) linalg.Vector {
	return d.mat.ParallelMulVecT(r, dst)
}

// CorrelateSerial is the single-threaded correlation, kept for the
// parallel-correlation ablation bench and the equivalence tests.
func (d *Dense) CorrelateSerial(r, dst linalg.Vector) linalg.Vector {
	return d.mat.MulVecT(r, dst)
}

// CorrelateBatch implements BatchCorrelator via the blocked GEMM: one
// pass over the matrix serves the whole residual block, bit-identical
// per residual to Correlate.
func (d *Dense) CorrelateBatch(rs, dsts []linalg.Vector) {
	d.mat.ParallelMulMatT(rs, dsts)
}

// ExtensionColumn implements Matrix from the per-matrix cache.
func (d *Dense) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	return copyCached(d.phi0, dst)
}

// Seeded is a measurement matrix that regenerates columns on demand.
// Memory: O(M) scratch. Every operation touching all N columns costs the
// PRNG regeneration of M·N Gaussians; those regenerations fan out over
// GOMAXPROCS workers (bit-identically — each column has its own
// sub-stream). Use Dense when the matrix fits.
type Seeded struct {
	p        Params
	cols     vecPool // pooled M-length column scratch
	phi0Once sync.Once
	phi0     linalg.Vector
}

// NewSeeded returns a column-regenerating matrix.
func NewSeeded(p Params) (*Seeded, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Seeded{p: p}, nil
}

// Params implements Matrix.
func (s *Seeded) Params() Params { return s.p }

// Col implements Matrix.
func (s *Seeded) Col(j int, dst linalg.Vector) linalg.Vector {
	if j < 0 || j >= s.p.N {
		panic(fmt.Sprintf("sensing: column %d out of [0,%d)", j, s.p.N))
	}
	dst = ensureExact(dst, s.p.M)
	fillColumn(s.p, j, dst)
	return dst
}

// Measure implements Matrix. Column regeneration runs in parallel; the
// accumulation folds columns in ascending j on the calling goroutine,
// so the result is bit-identical to MeasureSerial for any GOMAXPROCS.
func (s *Seeded) Measure(x, dst linalg.Vector) linalg.Vector {
	if len(x) != s.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), s.p.N))
	}
	dst = ensure(dst, s.p.M)
	// Only non-zero entries regenerate a column; collect them so the
	// parallel fold skips the zeros exactly like the serial loop.
	nz := make([]int, 0, len(x))
	for j, v := range x {
		if v != 0 {
			nz = append(nz, j)
		}
	}
	orderedFold(len(nz), s.p.M, &s.cols,
		func(k int, colDst linalg.Vector) { fillColumn(s.p, nz[k], colDst) },
		func(k int, col linalg.Vector) { dst.AddScaled(x[nz[k]], col) })
	return dst
}

// MeasureSerial is the single-threaded Measure, kept for the
// equivalence tests and benches.
func (s *Seeded) MeasureSerial(x, dst linalg.Vector) linalg.Vector {
	if len(x) != s.p.N {
		panic(fmt.Sprintf("sensing: Measure vector length %d, want N=%d", len(x), s.p.N))
	}
	dst = ensure(dst, s.p.M)
	col := s.cols.get(s.p.M)
	for j, v := range x {
		if v == 0 {
			continue
		}
		fillColumn(s.p, j, *col)
		dst.AddScaled(v, *col)
	}
	s.cols.put(col)
	return dst
}

// MeasureSparse implements Matrix. Parallel like Measure, with the same
// ascending-k fold order as the serial loop (bit-identical).
func (s *Seeded) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, s.p.M)
	n := s.p.N
	nz := make([]int, 0, len(idx))
	for k, j := range idx {
		if j < 0 || j >= n {
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, n))
		}
		if vals[k] != 0 {
			nz = append(nz, k)
		}
	}
	orderedFold(len(nz), s.p.M, &s.cols,
		func(k int, colDst linalg.Vector) { fillColumn(s.p, idx[nz[k]], colDst) },
		func(k int, col linalg.Vector) { dst.AddScaled(vals[nz[k]], col) })
	return dst
}

// MeasureSparseSerial is the single-threaded MeasureSparse, kept for
// the equivalence tests and benches.
func (s *Seeded) MeasureSparseSerial(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	dst = ensure(dst, s.p.M)
	col := s.cols.get(s.p.M)
	for k, j := range idx {
		if vals[k] == 0 {
			continue
		}
		if j < 0 || j >= s.p.N {
			panic(fmt.Sprintf("sensing: index %d out of [0,%d)", j, s.p.N))
		}
		fillColumn(s.p, j, *col)
		dst.AddScaled(vals[k], *col)
	}
	s.cols.put(col)
	return dst
}

// seededCorrChunk is the minimum columns per worker for the parallel
// correlation: one column costs M Gaussian draws, so even small chunks
// amortize dispatch, but single-digit ranges aren't worth a goroutine.
const seededCorrChunk = 16

// Correlate implements Matrix by regenerating every column, fanned over
// GOMAXPROCS workers. dst[j] depends only on column j's sub-stream and
// r, so the result is bit-identical to CorrelateSerial.
func (s *Seeded) Correlate(r, dst linalg.Vector) linalg.Vector {
	if len(r) != s.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), s.p.M))
	}
	dst = ensureExact(dst, s.p.N)
	if kernelWorkers() < 2 || s.p.N < 2*seededCorrChunk {
		s.correlateRange(r, dst, 0, s.p.N)
		return dst
	}
	parallelRanges(s.p.N, seededCorrChunk, func(lo, hi int) {
		s.correlateRange(r, dst, lo, hi)
	})
	return dst
}

// CorrelateSerial is the single-threaded correlation, kept for the
// parallel-vs-serial equivalence tests and the ablation bench.
func (s *Seeded) CorrelateSerial(r, dst linalg.Vector) linalg.Vector {
	if len(r) != s.p.M {
		panic(fmt.Sprintf("sensing: Correlate vector length %d, want M=%d", len(r), s.p.M))
	}
	dst = ensureExact(dst, s.p.N)
	s.correlateRange(r, dst, 0, s.p.N)
	return dst
}

// correlateRange fills dst[j] = <φ_j, r> for j in [lo, hi).
func (s *Seeded) correlateRange(r, dst linalg.Vector, lo, hi int) {
	col := s.cols.get(s.p.M)
	for j := lo; j < hi; j++ {
		fillColumn(s.p, j, *col)
		dst[j] = col.Dot(r)
	}
	s.cols.put(col)
}

// CorrelateBatch implements BatchCorrelator: each column is regenerated
// ONCE and dotted with every residual, so a q-residual block costs one
// M·N regeneration pass plus q·N dot products — the regeneration, which
// dominates Seeded's correlate cost, is amortized across the block.
// Each dsts[q][j] comes from the same fillColumn bits and the same Dot
// as Correlate(rs[q], ·), so results are bit-identical per residual.
func (s *Seeded) CorrelateBatch(rs, dsts []linalg.Vector) {
	if kernelWorkers() < 2 || s.p.N < 2*seededCorrChunk {
		s.correlateBatchRange(rs, dsts, 0, s.p.N)
		return
	}
	parallelRanges(s.p.N, seededCorrChunk, func(lo, hi int) {
		s.correlateBatchRange(rs, dsts, lo, hi)
	})
}

// correlateBatchRange fills dsts[q][j] = <φ_j, rs[q]> for j in [lo, hi).
func (s *Seeded) correlateBatchRange(rs, dsts []linalg.Vector, lo, hi int) {
	col := s.cols.get(s.p.M)
	for j := lo; j < hi; j++ {
		fillColumn(s.p, j, *col)
		for q, r := range rs {
			dsts[q][j] = col.Dot(r)
		}
	}
	s.cols.put(col)
}

// ExtensionColumn implements Matrix. φ₀ is computed once per matrix
// (with parallel column regeneration, folded in ascending j — the
// serial association) and cached; every later call is an O(M) copy.
func (s *Seeded) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	s.phi0Once.Do(func() {
		phi0 := make(linalg.Vector, s.p.M)
		orderedFold(s.p.N, s.p.M, &s.cols,
			func(j int, colDst linalg.Vector) { fillColumn(s.p, j, colDst) },
			func(j int, col linalg.Vector) { phi0.Add(col) })
		s.phi0 = phi0.Scale(1 / math.Sqrt(float64(s.p.N)))
	})
	return copyCached(s.phi0, dst)
}

// ensure returns dst resized to n and zeroed.
func ensure(dst linalg.Vector, n int) linalg.Vector {
	if cap(dst) < n {
		return make(linalg.Vector, n)
	}
	dst = dst[:n]
	clear(dst)
	return dst
}

// ensureExact returns dst resized to n without zeroing (callers overwrite).
func ensureExact(dst linalg.Vector, n int) linalg.Vector {
	if cap(dst) < n {
		return make(linalg.Vector, n)
	}
	return dst[:n]
}

// AddSketch accumulates src into dst (dst += src): the aggregator's
// global-measurement step y = Σ y_l (paper eq. 1), and also the
// incremental-update path — new data arriving at a node contributes
// Φ₀·Δx, which is simply added to the standing sketch.
func AddSketch(dst, src linalg.Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sensing: sketch length mismatch %d vs %d", len(dst), len(src)))
	}
	dst.Add(src)
}

// SubSketch removes src from dst (dst -= src): the node-removal path —
// dropping a data center from the aggregation subtracts its sketch,
// again in O(M), no recomputation anywhere (paper §1 challenge 3).
func SubSketch(dst, src linalg.Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sensing: sketch length mismatch %d vs %d", len(dst), len(src)))
	}
	dst.Sub(src)
}

// SketchBytes returns the wire size of a sketch: M measurements at
// 64 bits each (S_M in the paper's cost accounting, §6.1.2).
func SketchBytes(m int) int64 { return int64(m) * 8 }
