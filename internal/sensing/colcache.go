package sensing

import (
	"sync"
	"sync/atomic"

	"csoutlier/internal/linalg"
)

// ColumnCache wraps a regenerating Matrix (Seeded, SparseRademacher)
// with a bounded store of materialized columns, so the recovery path's
// repeated Col fetches — a standing query's support columns recur every
// fold generation, and the warm-start engine fetches each hint column
// for both its prediction pass and its replay — pay the O(M) PRNG
// regeneration once instead of every time.
//
// Cached columns are written once and never mutated, so concurrent
// readers copy them without holding the lock. Eviction is FIFO over a
// fixed ring: column popularity in recovery is dominated by the current
// standing supports, which re-insert themselves naturally after a sweep.
//
// Whole-matrix kernels (Measure, Correlate, …) delegate to the inner
// matrix untouched — they regenerate columns in streaming order and
// would only thrash the cache. ColumnCache also forwards CorrelateBatch
// when the inner matrix has one, so wrapping never costs batching.
type ColumnCache struct {
	inner Matrix
	max   int

	mu   sync.Mutex
	cols map[int]linalg.Vector // immutable once inserted
	ring []int                 // insertion ring of cached column ids
	pos  int                   // next ring slot to evict

	hits, misses atomic.Int64
}

// columnCacheBudget bounds the default cache footprint: max columns is
// chosen so cached floats stay under ~1M entries (8 MB) per matrix.
const columnCacheBudget = 1 << 20

// NewColumnCache wraps inner with a store of at most maxCols columns.
// maxCols <= 0 picks a default bounded by memory (≈8 MB), never fewer
// than 64 columns.
func NewColumnCache(inner Matrix, maxCols int) *ColumnCache {
	if maxCols <= 0 {
		maxCols = columnCacheBudget / inner.Params().M
		if maxCols < 64 {
			maxCols = 64
		}
	}
	return &ColumnCache{
		inner: inner,
		max:   maxCols,
		cols:  make(map[int]linalg.Vector),
	}
}

// Params implements Matrix.
func (c *ColumnCache) Params() Params { return c.inner.Params() }

// Col implements Matrix from the cache, regenerating and inserting on a
// miss. Values are bit-identical to the inner matrix's — the cache
// stores exact copies.
func (c *ColumnCache) Col(j int, dst linalg.Vector) linalg.Vector {
	c.mu.Lock()
	if col, ok := c.cols[j]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		dst = ensureExact(dst, len(col))
		copy(dst, col)
		return dst
	}
	c.mu.Unlock()
	c.misses.Add(1)
	dst = c.inner.Col(j, dst)
	stored := make(linalg.Vector, len(dst))
	copy(stored, dst)
	c.mu.Lock()
	if _, ok := c.cols[j]; !ok {
		if len(c.ring) < c.max {
			c.ring = append(c.ring, j)
		} else {
			delete(c.cols, c.ring[c.pos])
			c.ring[c.pos] = j
			c.pos++
			if c.pos == c.max {
				c.pos = 0
			}
		}
		c.cols[j] = stored
	}
	c.mu.Unlock()
	return dst
}

// Measure implements Matrix by delegation.
func (c *ColumnCache) Measure(x, dst linalg.Vector) linalg.Vector {
	return c.inner.Measure(x, dst)
}

// MeasureSparse implements Matrix by delegation.
func (c *ColumnCache) MeasureSparse(idx []int, vals []float64, dst linalg.Vector) linalg.Vector {
	return c.inner.MeasureSparse(idx, vals, dst)
}

// Correlate implements Matrix by delegation.
func (c *ColumnCache) Correlate(r, dst linalg.Vector) linalg.Vector {
	return c.inner.Correlate(r, dst)
}

// CorrelateBatch forwards the inner matrix's batch kernel, falling back
// to per-residual correlation when it has none.
func (c *ColumnCache) CorrelateBatch(rs, dsts []linalg.Vector) {
	if bc, ok := c.inner.(BatchCorrelator); ok {
		bc.CorrelateBatch(rs, dsts)
		return
	}
	for q := range rs {
		c.inner.Correlate(rs[q], dsts[q])
	}
}

// ExtensionColumn implements Matrix by delegation (inner caches φ₀).
func (c *ColumnCache) ExtensionColumn(dst linalg.Vector) linalg.Vector {
	return c.inner.ExtensionColumn(dst)
}

// Stats reports cache hits and misses since construction.
func (c *ColumnCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports how many columns are currently cached.
func (c *ColumnCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cols)
}

var _ Matrix = (*ColumnCache)(nil)
var _ BatchCorrelator = (*ColumnCache)(nil)
