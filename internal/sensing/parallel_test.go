package sensing

import (
	"math"
	"runtime"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

// withWorkers runs body with GOMAXPROCS forced to w, restoring it after.
// On a single-CPU host this still exercises the parallel code paths
// (goroutines interleave), which is what the bit-identity tests need.
func withWorkers(t *testing.T, w int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(w)
	defer runtime.GOMAXPROCS(old)
	body()
}

// bitsEqual fails unless got and want are bit-for-bit identical.
func bitsEqual(t *testing.T, name string, got, want linalg.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d = %x, want %x (values %v vs %v)",
				name, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// randVec returns a deterministic pseudo-random vector of length n.
func randVec(seed uint64, n int) linalg.Vector {
	rng := xrand.New(seed)
	v := make(linalg.Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// oddShapes covers the degenerate and remainder-heavy geometries the
// chunked kernels must not mishandle: single-row, single-column, fewer
// columns than workers, and column counts not divisible by any chunk.
var oddShapes = []Params{
	{M: 1, N: 1, Seed: 7},
	{M: 1, N: 257, Seed: 7},
	{M: 5, N: 1, Seed: 7},
	{M: 3, N: 2, Seed: 7},      // N < workers
	{M: 8, N: 33, Seed: 7},     // just above the seeded chunk floor
	{M: 16, N: 1000, Seed: 7},  // not divisible by foldBlock or chunks
	{M: 32, N: 4096, Seed: 11}, // even split
	{M: 7, N: 4099, Seed: 11},  // prime-ish remainder everywhere
}

// TestSeededParallelBitIdentical pins the protocol-critical property:
// the parallel Seeded kernels produce the exact bits of their serial
// counterparts for every worker count and shape. Nodes with different
// core counts must agree on sketches exactly.
func TestSeededParallelBitIdentical(t *testing.T) {
	for _, p := range oddShapes {
		s, err := NewSeeded(p)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewSeeded(p)
		if err != nil {
			t.Fatal(err)
		}
		r := randVec(1+p.Seed, p.M)
		x := randVec(2+p.Seed, p.N)
		// A sparse slice with repeats, zeros and out-of-order indices.
		idx := []int{p.N - 1, 0, p.N / 2, 0}
		vals := []float64{1.5, -2.25, 0, 3.5}

		wantCorr := serial.CorrelateSerial(r, nil)
		wantMeas := serial.MeasureSerial(x, nil)
		wantSparse := serial.MeasureSparseSerial(idx, vals, nil)
		wantExt := serial.ExtensionColumn(nil)

		for _, w := range []int{1, 2, 3, 8} {
			withWorkers(t, w, func() {
				par, err := NewSeeded(p) // fresh matrix: cold φ₀ cache per worker count
				if err != nil {
					t.Fatal(err)
				}
				bitsEqual(t, "Correlate", s.Correlate(r, nil), wantCorr)
				bitsEqual(t, "Measure", s.Measure(x, nil), wantMeas)
				bitsEqual(t, "MeasureSparse", s.MeasureSparse(idx, vals, nil), wantSparse)
				bitsEqual(t, "ExtensionColumn", par.ExtensionColumn(nil), wantExt)
			})
		}
	}
}

// TestSRHTParallelBitIdentical pins Correlate (the parallel FWHT path)
// against CorrelateSerial bit-for-bit across worker counts.
func TestSRHTParallelBitIdentical(t *testing.T) {
	for _, p := range oddShapes {
		s, err := NewSRHT(p)
		if err != nil {
			continue // SRHT requires M ≤ pad; skip the degenerate shapes
		}
		r := randVec(3+p.Seed, p.M)
		want := s.CorrelateSerial(r, nil)
		for _, w := range []int{1, 2, 3, 8} {
			withWorkers(t, w, func() {
				bitsEqual(t, "SRHT.Correlate", s.Correlate(r, nil), want)
			})
		}
	}
	// Force the parallel FWHT proper (pad ≥ fwhtParallelMin).
	p := Params{M: 64, N: 10000, Seed: 13}
	s, err := NewSRHT(p)
	if err != nil {
		t.Fatal(err)
	}
	r := randVec(17, p.M)
	want := s.CorrelateSerial(r, nil)
	for _, w := range []int{2, 3, 5, 16} {
		withWorkers(t, w, func() {
			bitsEqual(t, "SRHT.Correlate/large", s.Correlate(r, nil), want)
		})
	}
}

// TestFWHTParallelBitIdentical checks the split-stage transform against
// the serial one directly, at sizes around the segmenting thresholds.
func TestFWHTParallelBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 1 << 10, 1 << 13, 1 << 14, 1 << 16} {
		want := randVec(uint64(n), n)
		fwht(want)
		for _, w := range []int{1, 2, 3, 7, 16} {
			withWorkers(t, w, func() {
				got := randVec(uint64(n), n)
				fwhtParallel(got)
				bitsEqual(t, "fwht", got, want)
			})
		}
	}
}

// TestSparseRademacherParallelBitIdentical pins the sparse ensemble's
// parallel correlation against the serial one.
func TestSparseRademacherParallelBitIdentical(t *testing.T) {
	for _, p := range oddShapes {
		s, err := NewSparseRademacher(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		r := randVec(5+p.Seed, p.M)
		want := s.CorrelateSerial(r, nil)
		for _, w := range []int{1, 2, 3, 8} {
			withWorkers(t, w, func() {
				bitsEqual(t, "SparseRademacher.Correlate", s.Correlate(r, nil), want)
			})
		}
	}
}

// TestDenseParallelBitIdentical pins Dense.Correlate (ParallelMulVecT)
// against the serial MulVecT: the two share the same range kernel, so
// even the reassociated row-blocked sums must agree exactly.
func TestDenseParallelBitIdentical(t *testing.T) {
	p := Params{M: 64, N: 2048, Seed: 19} // M·N ≥ 1<<16: parallel path engages
	d, err := NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	r := randVec(23, p.M)
	want := d.CorrelateSerial(r, nil)
	for _, w := range []int{1, 2, 3, 8} {
		withWorkers(t, w, func() {
			bitsEqual(t, "Dense.Correlate", d.Correlate(r, nil), want)
		})
	}
}

// TestExtensionColumnCached checks, for all four ensembles, that the
// cached φ₀ (a) is stable across repeated calls, (b) matches a freshly
// built matrix's φ₀ bit-for-bit, and (c) equals (1/√N)·Σⱼφⱼ computed
// column-by-column (up to accumulation tolerance).
func TestExtensionColumnCached(t *testing.T) {
	p := Params{M: 24, N: 300, Seed: 29}
	build := map[string]func() (Matrix, error){
		"Dense":  func() (Matrix, error) { return NewDense(p) },
		"Seeded": func() (Matrix, error) { return NewSeeded(p) },
		"SRHT":   func() (Matrix, error) { return NewSRHT(p) },
		"SparseRademacher": func() (Matrix, error) {
			return NewSparseRademacher(p, 4)
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			m, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			first := m.ExtensionColumn(nil)
			again := m.ExtensionColumn(nil)
			bitsEqual(t, "repeat call", again, first)
			// Writing into a caller buffer must not expose the cache.
			buf := make(linalg.Vector, p.M)
			m.ExtensionColumn(buf)
			buf.Fill(123)
			bitsEqual(t, "cache isolation", m.ExtensionColumn(nil), first)

			fresh, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "fresh matrix", fresh.ExtensionColumn(nil), first)

			// Ground truth from the Col accessor.
			want := make(linalg.Vector, p.M)
			col := make(linalg.Vector, p.M)
			for j := 0; j < p.N; j++ {
				want.Add(m.Col(j, col))
			}
			want.Scale(1 / math.Sqrt(float64(p.N)))
			if !first.Equal(want, 1e-10) {
				t.Fatalf("cached φ₀ deviates from column sum: %v vs %v", first[:3], want[:3])
			}
		})
	}
}

// TestDenseMeasureSparseScatterPath checks the dense-scatter fast path
// (many indices) against the column-walk path and against Measure.
func TestDenseMeasureSparseScatterPath(t *testing.T) {
	p := Params{M: 16, N: 200, Seed: 31}
	d, err := NewDense(p)
	if err != nil {
		t.Fatal(err)
	}
	// Dense enough to trip the scatter path: > 64 and > N/16 indices.
	idx := make([]int, 100)
	vals := make([]float64, 100)
	x := make(linalg.Vector, p.N)
	rng := xrand.New(37)
	for k := range idx {
		idx[k] = rng.Intn(p.N)
		vals[k] = rng.NormFloat64()
		x[idx[k]] += vals[k]
	}
	got := d.MeasureSparse(idx, vals, nil)
	want := d.Measure(x, nil)
	if !got.Equal(want, 1e-9) {
		t.Fatalf("scatter MeasureSparse deviates from Measure: %v vs %v", got[:3], want[:3])
	}
	// And the sparse path (few indices) agrees too.
	got2 := d.MeasureSparse(idx[:8], vals[:8], nil)
	x2 := make(linalg.Vector, p.N)
	for k := 0; k < 8; k++ {
		x2[idx[k]] += vals[k]
	}
	want2 := d.Measure(x2, nil)
	if !got2.Equal(want2, 1e-9) {
		t.Fatalf("column-walk MeasureSparse deviates from Measure")
	}
}
