package sensing

// Kernel benchmarks: one per hot sensing kernel, sized near the paper's
// production query shape (N ≈ 10K keys, M ≈ a few hundred measurements).
// scripts/bench.sh runs the BenchmarkKernel* set with fixed -benchtime
// and -count and records the results in BENCH.json — the repo's perf
// trajectory; compare runs with `scripts/bench.sh -compare`.

import (
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

const (
	benchM = 256
	benchN = 8192
)

func benchResidual(m int) linalg.Vector {
	r := xrand.New(99)
	v := make(linalg.Vector, m)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func benchSparseInput(n, nnz int) ([]int, []float64) {
	r := xrand.New(77)
	idx := make([]int, nnz)
	vals := make([]float64, nnz)
	for i := range idx {
		idx[i] = r.Intn(n)
		vals[i] = r.NormFloat64()
	}
	return idx, vals
}

func BenchmarkKernelDenseCorrelate(b *testing.B) {
	d, err := NewDense(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Correlate(r, dst)
	}
}

func BenchmarkKernelDenseCorrelateSerial(b *testing.B) {
	d, err := NewDense(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CorrelateSerial(r, dst)
	}
}

func BenchmarkKernelDenseMeasure(b *testing.B) {
	d, err := NewDense(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	x := make(linalg.Vector, benchN)
	rng := xrand.New(5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make(linalg.Vector, benchM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Measure(x, dst)
	}
}

func BenchmarkKernelDenseMeasureSparse(b *testing.B) {
	d, err := NewDense(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	idx, vals := benchSparseInput(benchN, benchN/8) // dense-ish: scatter path
	dst := make(linalg.Vector, benchM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.MeasureSparse(idx, vals, dst)
	}
}

func BenchmarkKernelSeededCorrelate(b *testing.B) {
	s, err := NewSeeded(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Correlate(r, dst)
	}
}

func BenchmarkKernelSeededMeasureSparse(b *testing.B) {
	s, err := NewSeeded(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	idx, vals := benchSparseInput(benchN, 1024)
	dst := make(linalg.Vector, benchM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MeasureSparse(idx, vals, dst)
	}
}

func BenchmarkKernelSeededExtensionColumn(b *testing.B) {
	s, err := NewSeeded(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	dst := make(linalg.Vector, benchM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExtensionColumn(dst)
	}
}

func BenchmarkKernelSRHTCorrelate(b *testing.B) {
	s, err := NewSRHT(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Correlate(r, dst)
	}
}

func BenchmarkKernelSparseRademacherCorrelate(b *testing.B) {
	s, err := NewSparseRademacher(Params{M: benchM, N: benchN, Seed: 3}, 16)
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Correlate(r, dst)
	}
}

func BenchmarkKernelSeededCorrelateSerial(b *testing.B) {
	s, err := NewSeeded(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CorrelateSerial(r, dst)
	}
}

func BenchmarkKernelSRHTCorrelateSerial(b *testing.B) {
	s, err := NewSRHT(Params{M: benchM, N: benchN, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CorrelateSerial(r, dst)
	}
}

func BenchmarkKernelSparseRademacherCorrelateSerial(b *testing.B) {
	s, err := NewSparseRademacher(Params{M: benchM, N: benchN, Seed: 3}, 16)
	if err != nil {
		b.Fatal(err)
	}
	r := benchResidual(benchM)
	dst := make(linalg.Vector, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CorrelateSerial(r, dst)
	}
}
