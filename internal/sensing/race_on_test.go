//go:build race

package sensing

// raceEnabled reports that this binary was built with -race, whose
// instrumentation allocates and breaks exact AllocsPerRun pinning.
const raceEnabled = true
