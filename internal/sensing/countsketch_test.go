package sensing

import (
	"math"
	"testing"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func cskMat(t testing.TB, p Params, depth int) *CountSketch {
	t.Helper()
	c, err := NewCountSketch(p, depth)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCountSketchColumnStructure(t *testing.T) {
	p := Params{M: 64, N: 150, Seed: 1}
	c := cskMat(t, p, 4)
	if c.Width() != 16 || c.Depth() != 4 {
		t.Fatalf("shape %dx%d, want 4x16", c.Depth(), c.Width())
	}
	inv := 1 / math.Sqrt(4)
	for j := 0; j < p.N; j++ {
		col := c.Col(j, nil)
		for r := 0; r < 4; r++ {
			nnz := 0
			for b := 0; b < 16; b++ {
				v := col[r*16+b]
				if v == 0 {
					continue
				}
				nnz++
				if math.Abs(v) != inv {
					t.Fatalf("col %d row %d entry %v, want ±%v", j, r, v, inv)
				}
			}
			if nnz != 1 {
				t.Fatalf("col %d row %d has %d nonzeros, want exactly 1", j, r, nnz)
			}
		}
		// Unit norm exactly: depth entries of ±1/√depth, never colliding
		// (one bucket per row).
		sumSq := 0.0
		for _, v := range col {
			sumSq += v * v
		}
		if math.Abs(sumSq-1) > 1e-12 {
			t.Fatalf("col %d squared norm %v, want 1", j, sumSq)
		}
	}
}

func TestCountSketchTailStaysZero(t *testing.T) {
	// depth=5 does not divide M=32: cells beyond depth·width must never
	// be touched by any operation.
	p := Params{M: 32, N: 90, Seed: 3}
	c := cskMat(t, p, 5)
	if c.Width() != 6 {
		t.Fatalf("width %d, want 6", c.Width())
	}
	used := c.Depth() * c.Width()
	r := xrand.New(1)
	x := make(linalg.Vector, p.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for _, y := range []linalg.Vector{c.Measure(x, nil), c.Col(7, nil), c.ExtensionColumn(nil)} {
		for i := used; i < p.M; i++ {
			if y[i] != 0 {
				t.Fatalf("tail cell %d is %v, want 0", i, y[i])
			}
		}
	}
}

func TestCountSketchDeterministicAndSeedSensitive(t *testing.T) {
	p := Params{M: 40, N: 60, Seed: 7}
	a := cskMat(t, p, 5)
	b := cskMat(t, p, 5)
	p2 := p
	p2.Seed++
	c := cskMat(t, p2, 5)
	diff := false
	for j := 0; j < p.N; j++ {
		ca, cb := a.Col(j, nil), b.Col(j, nil)
		if !ca.Equal(cb, 0) {
			t.Fatalf("col %d not deterministic", j)
		}
		if !ca.Equal(c.Col(j, nil), 0) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("every column identical across seeds")
	}
}

func TestCountSketchMeasureConsistency(t *testing.T) {
	p := Params{M: 48, N: 120, Seed: 3}
	c := cskMat(t, p, 6)
	r := xrand.New(1)
	x := make(linalg.Vector, p.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	idx := make([]int, p.N)
	for j := 0; j < p.N; j++ {
		want.AddScaled(x[j], c.Col(j, col))
		idx[j] = j
	}
	if got := c.Measure(x, nil); !got.Equal(want, 1e-9) {
		t.Fatal("Measure mismatch")
	}
	if got := c.MeasureSparse(idx, x, nil); !got.Equal(want, 1e-9) {
		t.Fatal("MeasureSparse mismatch")
	}
	rv := make(linalg.Vector, p.M)
	for i := range rv {
		rv[i] = r.NormFloat64()
	}
	lhs := c.Measure(x, nil).Dot(rv)
	rhs := linalg.Vector(x).Dot(c.Correlate(rv, nil))
	if math.Abs(lhs-rhs) > 1e-9*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestCountSketchCorrelateParallelBitIdentical(t *testing.T) {
	// N large enough to cross the parallel threshold.
	p := Params{M: 60, N: 3000, Seed: 11}
	c := cskMat(t, p, 5)
	r := xrand.New(4)
	rv := make(linalg.Vector, p.M)
	for i := range rv {
		rv[i] = r.NormFloat64()
	}
	serial := c.CorrelateSerial(rv, nil)
	par := c.Correlate(rv, nil)
	for j := range serial {
		if math.Float64bits(serial[j]) != math.Float64bits(par[j]) {
			t.Fatalf("parallel correlate diverges at %d: %v vs %v", j, par[j], serial[j])
		}
	}
	rs := []linalg.Vector{rv, rv.Clone().Scale(-1.5)}
	dsts := []linalg.Vector{make(linalg.Vector, p.N), make(linalg.Vector, p.N)}
	c.CorrelateBatch(rs, dsts)
	for q := range rs {
		want := c.CorrelateSerial(rs[q], nil)
		for j := range want {
			if math.Float64bits(dsts[q][j]) != math.Float64bits(want[j]) {
				t.Fatalf("batch correlate residual %d diverges at %d", q, j)
			}
		}
	}
}

func TestCountSketchExtensionColumn(t *testing.T) {
	p := Params{M: 24, N: 60, Seed: 5}
	c := cskMat(t, p, 4)
	want := make(linalg.Vector, p.M)
	col := make(linalg.Vector, p.M)
	for j := 0; j < p.N; j++ {
		want.Add(c.Col(j, col))
	}
	want.Scale(1 / math.Sqrt(float64(p.N)))
	if got := c.ExtensionColumn(nil); !got.Equal(want, 1e-9) {
		t.Fatal("ExtensionColumn mismatch")
	}
}

func TestCountSketchLinearity(t *testing.T) {
	p := Params{M: 30, N: 80, Seed: 9}
	c := cskMat(t, p, 5)
	r := xrand.New(2)
	a := make(linalg.Vector, p.N)
	b := make(linalg.Vector, p.N)
	for i := range a {
		a[i], b[i] = r.NormFloat64(), r.NormFloat64()
	}
	sum := a.Clone().Add(b)
	ya := c.Measure(a, nil)
	yb := c.Measure(b, nil)
	AddSketch(ya, yb)
	if !ya.Equal(c.Measure(sum, nil), 1e-9) {
		t.Fatal("count-sketch ensemble broke sketch linearity")
	}
}

func TestCountSketchValidation(t *testing.T) {
	if _, err := NewCountSketch(Params{M: 0, N: 5, Seed: 1}, 2); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := NewCountSketch(Params{M: 40, N: 50, Seed: 1}, 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := NewCountSketch(Params{M: 40, N: 50, Seed: 1}, 65); err == nil {
		t.Fatal("depth 65 accepted")
	}
	if _, err := NewCountSketch(Params{M: 5, N: 50, Seed: 1}, 4); err == nil {
		t.Fatal("single-bucket rows accepted")
	}
}

// buildBiased returns a length-N vector that is mode everywhere except
// at the outlier indices, which carry mode+devs[i].
func buildBiased(n int, mode float64, outliers []int, devs []float64) linalg.Vector {
	x := make(linalg.Vector, n)
	for i := range x {
		x[i] = mode
	}
	for k, j := range outliers {
		x[j] = mode + devs[k]
	}
	return x
}

func TestCountSketchModeAndPointEstimates(t *testing.T) {
	p := Params{M: 350, N: 1200, Seed: 21}
	c := cskMat(t, p, 7) // width 50
	mode := 730.5
	outliers := []int{3, 250, 611, 890, 1199}
	devs := []float64{5000, -4200, 9100, 3300, -8800}
	x := buildBiased(p.N, mode, outliers, devs)
	y := c.Measure(x, nil)

	scratch := make([]float64, 0, c.Depth()*c.Width())
	got := c.EstimateMode(y, scratch)
	if math.Abs(got-mode) > 1e-6*math.Abs(mode) {
		t.Fatalf("EstimateMode = %v, want %v", got, mode)
	}
	// Outlier keys recover their exact planted value; each of the 5
	// outliers can collide with at most 4 others and the median over 7
	// rows survives up to 3 contaminated cells.
	for k, j := range outliers {
		est := c.PointEstimate(y, j, got)
		if math.Abs(est-x[j]) > 1e-6*math.Abs(devs[k]) {
			t.Fatalf("PointEstimate(%d) = %v, want %v", j, est, x[j])
		}
	}
	// A sample of clean keys estimates the mode (their cells may carry
	// outlier energy in a minority of rows; the median discards it).
	clean := 0
	for j := 0; j < p.N; j += 97 {
		skip := false
		for _, o := range outliers {
			if o == j {
				skip = true
			}
		}
		if skip {
			continue
		}
		clean++
		est := c.PointEstimate(y, j, got)
		if math.Abs(est-mode) > 1e-6*math.Abs(mode) {
			t.Fatalf("clean key %d estimates %v, want mode %v", j, est, mode)
		}
	}
	if clean == 0 {
		t.Fatal("no clean keys sampled")
	}
}

func TestCountSketchEstimatorAllocs(t *testing.T) {
	p := Params{M: 128, N: 500, Seed: 2}
	c := cskMat(t, p, 4)
	x := buildBiased(p.N, 50, []int{7, 331}, []float64{900, -700})
	y := c.Measure(x, nil)
	scratch := make([]float64, 0, c.Depth()*c.Width())
	var mode float64
	if n := testing.AllocsPerRun(100, func() { mode = c.EstimateMode(y, scratch) }); n != 0 {
		t.Fatalf("EstimateMode allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { c.PointEstimate(y, 7, mode) }); n != 0 {
		t.Fatalf("PointEstimate allocates %v per run", n)
	}
}

func TestCountSketchEvenDepthMedian(t *testing.T) {
	p := Params{M: 120, N: 400, Seed: 6}
	c := cskMat(t, p, 4)
	mode := -12.25
	x := buildBiased(p.N, mode, []int{10}, []float64{4000})
	y := c.Measure(x, nil)
	got := c.EstimateMode(y, nil)
	if math.Abs(got-mode) > 1e-6*math.Abs(mode) {
		t.Fatalf("even-depth EstimateMode = %v, want %v", got, mode)
	}
	if est := c.PointEstimate(y, 10, got); math.Abs(est-x[10]) > 1e-3 {
		t.Fatalf("even-depth PointEstimate = %v, want %v", est, x[10])
	}
}
