package outlier

import (
	"math"
	"testing"
	"testing/quick"

	"csoutlier/internal/linalg"
	"csoutlier/internal/xrand"
)

func TestTopKBasic(t *testing.T) {
	x := linalg.Vector{10, 10, 100, 10, -50, 10, 13}
	got := TopK(x, 10, 2)
	if len(got) != 2 || got[0].Index != 2 || got[1].Index != 4 {
		t.Fatalf("TopK = %v", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	x := linalg.Vector{5, 5, 7, 5}
	got := TopK(x, 5, 10)
	if len(got) != 1 || got[0].Index != 2 {
		t.Fatalf("TopK = %v", got)
	}
	if TopK(x, 5, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestTopKTieBreakByIndex(t *testing.T) {
	x := linalg.Vector{0, 3, -3, 0}
	got := TopK(x, 0, 2)
	if got[0].Index != 1 || got[1].Index != 2 {
		t.Fatalf("tie-break failed: %v", got)
	}
}

func TestTopKOutlierVsTopValue(t *testing.T) {
	// Figure 1(b): the k-outliers are NOT the top-k values. With mode
	// 1800, a key at 0 diverges more than a key at 2500.
	x := linalg.Vector{1800, 2500, 0, 1800}
	got := TopK(x, 1800, 1)
	if got[0].Index != 2 {
		t.Fatalf("outlier-k picked %v, want index 2 (value 0)", got)
	}
}

func TestTopKOf(t *testing.T) {
	cands := []KV{{1, 10}, {2, 90}, {3, 55}}
	got := TopKOf(cands, 50, 2)
	if got[0].Index != 1 || got[1].Index != 2 {
		t.Fatalf("TopKOf = %v", got)
	}
	// Input must not be mutated.
	if cands[0].Index != 1 || cands[1].Index != 2 {
		t.Fatal("TopKOf mutated input")
	}
}

func TestModeMajority(t *testing.T) {
	x := linalg.Vector{7, 7, 7, 1, 2}
	m, ok := Mode(x)
	if !ok || m != 7 {
		t.Fatalf("Mode = %v %v", m, ok)
	}
}

func TestModeNoMajority(t *testing.T) {
	if _, ok := Mode(linalg.Vector{1, 2, 3, 1}); ok {
		t.Fatal("no majority, but Mode returned ok")
	}
	if _, ok := Mode(linalg.Vector{}); ok {
		t.Fatal("empty vector has no mode")
	}
}

func TestModeExactHalfIsNotMajority(t *testing.T) {
	if _, ok := Mode(linalg.Vector{5, 5, 1, 2}); ok {
		t.Fatal("half is not a strict majority")
	}
}

func TestErrorOnKey(t *testing.T) {
	truth := []KV{{1, 10}, {2, 20}, {3, 30}}
	if ek := ErrorOnKey(truth, truth); ek != 0 {
		t.Fatalf("identical sets EK = %v", ek)
	}
	est := []KV{{1, 99}, {9, 1}, {8, 2}}
	if ek := ErrorOnKey(truth, est); math.Abs(ek-2.0/3.0) > 1e-12 {
		t.Fatalf("EK = %v, want 2/3", ek)
	}
	if ek := ErrorOnKey(truth, nil); ek != 1 {
		t.Fatalf("empty estimate EK = %v", ek)
	}
	if ek := ErrorOnKey(nil, est); ek != 0 {
		t.Fatalf("empty truth EK = %v", ek)
	}
	// Duplicate estimated keys must not double-count.
	dup := []KV{{1, 1}, {1, 2}, {1, 3}}
	if ek := ErrorOnKey(truth, dup); math.Abs(ek-2.0/3.0) > 1e-12 {
		t.Fatalf("duplicate EK = %v, want 2/3", ek)
	}
}

func TestErrorOnKeyRange(t *testing.T) {
	r := xrand.New(1)
	check := func(seed uint64) bool {
		rr := xrand.New(seed)
		truth := make([]KV, 1+rr.Intn(10))
		est := make([]KV, 1+rr.Intn(10))
		for i := range truth {
			truth[i] = KV{rr.Intn(20), rr.NormFloat64()}
		}
		for i := range est {
			est[i] = KV{rr.Intn(20), rr.NormFloat64()}
		}
		ek := ErrorOnKey(truth, est)
		return ek >= 0 && ek <= 1
	}
	_ = r
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorOnValue(t *testing.T) {
	truth := []KV{{1, 3}, {2, 4}}
	if ev := ErrorOnValue(truth, truth); ev != 0 {
		t.Fatalf("identical EV = %v", ev)
	}
	// Estimate ordered by value must compare position-wise: truth sorted
	// desc = [4,3]; est = [4,0] → err = 3/5.
	est := []KV{{9, 0}, {2, 4}}
	if ev := ErrorOnValue(truth, est); math.Abs(ev-0.6) > 1e-12 {
		t.Fatalf("EV = %v, want 0.6", ev)
	}
	// Short estimate: missing entries count as zero.
	if ev := ErrorOnValue(truth, []KV{{2, 4}}); math.Abs(ev-0.6) > 1e-12 {
		t.Fatalf("short EV = %v, want 0.6", ev)
	}
	if ev := ErrorOnValue(nil, nil); ev != 0 {
		t.Fatalf("empty EV = %v", ev)
	}
	if ev := ErrorOnValue([]KV{{0, 0}}, []KV{{0, 5}}); ev != 1 {
		t.Fatalf("zero-norm truth with wrong estimate EV = %v", ev)
	}
}

func TestErrorOnValueOrderInsensitive(t *testing.T) {
	// Both lists are re-ordered by value, so input order is irrelevant.
	truth := []KV{{1, 3}, {2, 9}, {3, 6}}
	estA := []KV{{7, 9}, {8, 6}, {9, 3}}
	estB := []KV{{9, 3}, {7, 9}, {8, 6}}
	if a, b := ErrorOnValue(truth, estA), ErrorOnValue(truth, estB); a != b || a != 0 {
		t.Fatalf("order sensitivity: %v vs %v", a, b)
	}
}

func TestTrueOutliersMatchesTopK(t *testing.T) {
	r := xrand.New(2)
	x := make(linalg.Vector, 100)
	x.Fill(42)
	for i := 0; i < 10; i++ {
		x[r.Intn(100)] = 42 + float64(i+1)*7
	}
	a := TrueOutliers(x, 42, 5)
	b := TopK(x, 42, 5)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
