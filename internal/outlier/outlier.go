// Package outlier defines the k-outlier problem objects from the paper's
// §2.1 and the estimation-quality metrics from §6.1: given a data vector
// whose values concentrate around a mode b, the k-outliers are the
// min(k, |O|) entries furthest from b; estimates are scored by Error on
// Key (EK, set precision on the outlier keys) and Error on Value (EV,
// relative L2 error on the ordered value lists).
package outlier

import (
	"math"
	"sort"

	"csoutlier/internal/linalg"
)

// KV is an (index, value) pair: a key position in the global dictionary
// together with its aggregated value.
type KV struct {
	Index int
	Value float64
}

// TopK returns the k entries of x furthest from mode, ordered by
// decreasing |value − mode| with index as the deterministic tie-break.
// Fewer than k entries are returned when fewer than k entries differ
// from the mode (the paper's |O| < k case).
func TopK(x linalg.Vector, mode float64, k int) []KV {
	if k <= 0 {
		return nil
	}
	// Cap the capacity hint at the data size: k crosses the wire in the
	// cluster protocol, and an absurd request must not size an allocation.
	c := k
	if c > len(x) {
		c = len(x)
	}
	out := make([]KV, 0, c+1)
	for i, v := range x {
		if v == mode {
			continue
		}
		out = append(out, KV{Index: i, Value: v})
	}
	sortByDivergence(out, mode)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TopKOf ranks only the given candidate set — used when recovery already
// produced a support and we only need the k strongest of it.
func TopKOf(cands []KV, mode float64, k int) []KV {
	if k <= 0 {
		return nil
	}
	out := append([]KV(nil), cands...)
	sortByDivergence(out, mode)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortByDivergence(kvs []KV, mode float64) {
	sort.Slice(kvs, func(i, j int) bool {
		di := math.Abs(kvs[i].Value - mode)
		dj := math.Abs(kvs[j].Value - mode)
		if di != dj {
			return di > dj
		}
		return kvs[i].Index < kvs[j].Index
	})
}

// Mode returns the exact majority value of x and true when one exists
// (a value held by more than half the entries — Definition 2 in the
// paper); otherwise it returns (0, false).
func Mode(x linalg.Vector) (float64, bool) {
	if len(x) == 0 {
		return 0, false
	}
	// Boyer–Moore majority vote, then verify.
	cand, count := 0.0, 0
	for _, v := range x {
		if count == 0 {
			cand, count = v, 1
		} else if v == cand {
			count++
		} else {
			count--
		}
	}
	occ := 0
	for _, v := range x {
		if v == cand {
			occ++
		}
	}
	if occ*2 > len(x) {
		return cand, true
	}
	return 0, false
}

// ErrorOnKey computes EK = 1 − |T.Key ∩ E.Key| / k where k = |T|
// (paper §6.1 metric 1). EK ∈ [0, 1]; 0 means the estimated key set is
// exactly the true key set. An empty truth yields 0 by convention.
func ErrorOnKey(truth, est []KV) float64 {
	if len(truth) == 0 {
		return 0
	}
	tset := make(map[int]bool, len(truth))
	for _, kv := range truth {
		tset[kv.Index] = true
	}
	hit := 0
	for _, kv := range est {
		if tset[kv.Index] {
			hit++
			delete(tset, kv.Index) // count duplicates once
		}
	}
	return 1 - float64(hit)/float64(len(truth))
}

// ErrorOnValue computes EV = ‖T.Value − E.Value‖₂ / ‖T.Value‖₂ where both
// lists are ordered by value (paper §6.1 metric 2). When the estimate is
// shorter than the truth, missing positions contribute the full truth
// value (estimated as zero); extra estimated values are ignored beyond
// the truth length. A zero-norm truth yields 0 when the estimate matches,
// 1 otherwise.
func ErrorOnValue(truth, est []KV) float64 {
	tv := values(truth)
	ev := values(est)
	sort.Sort(sort.Reverse(sort.Float64Slice(tv)))
	sort.Sort(sort.Reverse(sort.Float64Slice(ev)))
	var num, den float64
	for i, t := range tv {
		e := 0.0
		if i < len(ev) {
			e = ev[i]
		}
		num += (t - e) * (t - e)
		den += t * t
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return 1
	}
	return math.Sqrt(num / den)
}

func values(kvs []KV) []float64 {
	vs := make([]float64, len(kvs))
	for i, kv := range kvs {
		vs[i] = kv.Value
	}
	return vs
}

// TrueOutliers computes the ground-truth k-outliers of a raw data vector
// around an explicitly known mode — the reference answer every
// experiment scores against.
func TrueOutliers(x linalg.Vector, mode float64, k int) []KV {
	return TopK(x, mode, k)
}
