package simtest

import (
	"context"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"time"

	"csoutlier"
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/stream"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// streamChunks is how many mid-window delta flushes RunStream ships per
// node per window. The chaos budget sizing in GenerateStream depends on
// it: more flushes per window means more guaranteed traffic per
// connection, which is what lets the generator promise every connection
// dies at least once without ever starving one.
const streamChunks = 3

// StreamScenario is one fully specified streaming simulation: W windows
// of per-node data pushed as deltas through chaos TCP proxies into a
// live stream.Aggregator, with one node crash/restart and injected
// duplicate flushes. Everything — data, split, kill budgets, fault
// placement — derives from the seed, so a failure replays exactly.
//
// The outlier support is fixed across windows (magnitudes vary), so
// every window span is S-sparse around its own bias and the centralized
// oracle stays exact for every queried span.
type StreamScenario struct {
	Seed  uint64
	N     int     // key-space size
	S     int     // planted outliers (same positions every window)
	L     int     // node count (≥ 4 in generated scenarios)
	W     int     // windows driven
	M     int     // measurement budget
	K     int     // outliers per query
	Mode  float64 // base bias; per-window biases are seeded multiples
	Noise float64 // per-node zero-sum noise amplitude per window
	Ens   csoutlier.Ensemble

	CrashNode   int // node that crashes (loses unflushed data) and restarts
	CrashWindow int // window (1-based) in which the crash happens
	DupNode     int // node whose flushes are re-delivered verbatim

	ProxyMin int64 // per-connection chaos byte budget bounds
	ProxyMax int64
}

// GenerateStream derives streaming scenario index from the base seed.
// Chaos is always on: every scenario has a crash/restart, duplicate
// injection, and byte-budgeted proxies.
func GenerateStream(base uint64, index int) StreamScenario {
	rng := xrand.New(base).Split(uint64(index) + 0x57ea3517)
	scn := StreamScenario{Seed: rng.Uint64()}
	scn.S = 1 + rng.Intn(5)
	scn.N = 120 + rng.Intn(321)
	switch rng.Intn(4) {
	case 0:
		scn.Ens = csoutlier.SparseRademacher
	case 1:
		scn.Ens = csoutlier.SRHT
	default:
		scn.Ens = csoutlier.Gaussian
	}
	for {
		scn.M = measurementsFor(scn.N, scn.S, scn.Ens)
		if scn.M <= scn.N*3/5 || scn.S == 1 {
			break
		}
		scn.S--
	}
	scn.K = 1 + rng.Intn(scn.S+1)
	scn.Mode = 100 + 4900*rng.Float64() // nonzero: every node flushes every window
	if rng.Float64() < 0.5 {
		scn.Mode = -scn.Mode
	}
	if rng.Float64() < 0.6 {
		scn.Noise = (math.Abs(scn.Mode) + 500) * (0.1 + rng.Float64())
	}
	scn.L = 4 + rng.Intn(3)
	scn.W = 2 + rng.Intn(3)
	scn.CrashNode = rng.Intn(scn.L)
	scn.CrashWindow = 1 + rng.Intn(scn.W)
	scn.DupNode = (scn.CrashNode + 1 + rng.Intn(scn.L-1)) % scn.L
	// Budget bounds, measured against the real gob wire format: a fresh
	// connection's worst-case first exchange (hello + typedefs + one
	// delta + acks) is ≈ 8M+250 bytes, and every later delta exchange
	// carries at least 8M+64. The minimum covers the worst case with
	// margin — every connection makes progress — while the maximum stays
	// a full frame below the run's guaranteed total traffic
	// (streamChunks flushes per window), so every scenario loses at
	// least one connection mid-run and the redial/retry/dedup path is
	// always exercised (the checker asserts Kills ≥ 1).
	frame := int64(8*scn.M + 512)
	floorTotal := int64(streamChunks*scn.W) * int64(8*scn.M+64)
	scn.ProxyMin = frame
	scn.ProxyMax = 3 * frame
	if cap := floorTotal - frame; scn.ProxyMax > cap {
		scn.ProxyMax = cap
	}
	if scn.ProxyMax < scn.ProxyMin {
		scn.ProxyMax = scn.ProxyMin
	}
	return scn
}

func (s StreamScenario) validate() error {
	switch {
	case s.N < 4 || s.S < 1 || s.S > s.N/4:
		return fmt.Errorf("simtest: stream scenario N=%d S=%d out of range", s.N, s.S)
	case s.L < 2:
		return fmt.Errorf("simtest: stream scenario needs ≥ 2 nodes, got %d", s.L)
	case s.W < 1:
		return fmt.Errorf("simtest: W=%d", s.W)
	case s.M < 2 || s.M > s.N:
		return fmt.Errorf("simtest: M=%d outside [2, N]", s.M)
	case s.K < 1:
		return fmt.Errorf("simtest: K=%d", s.K)
	case s.Mode == 0:
		return fmt.Errorf("simtest: stream scenarios need a nonzero mode")
	case s.CrashNode < 0 || s.CrashNode >= s.L || s.DupNode < 0 || s.DupNode >= s.L:
		return fmt.Errorf("simtest: fault nodes %d/%d outside [0, %d)", s.CrashNode, s.DupNode, s.L)
	case s.CrashNode == s.DupNode:
		return fmt.Errorf("simtest: crash and dup node coincide (a stale-epoch dup is rejected, not deduped)")
	case s.CrashWindow < 1 || s.CrashWindow > s.W:
		return fmt.Errorf("simtest: crash window %d outside [1, %d]", s.CrashWindow, s.W)
	case s.ProxyMin < int64(8*s.M+256) || s.ProxyMax < s.ProxyMin:
		return fmt.Errorf("simtest: proxy budget [%d, %d] cannot pass a full frame", s.ProxyMin, s.ProxyMax)
	}
	return nil
}

// String encodes the scenario as a replayable one-liner.
func (s StreamScenario) String() string {
	ens := "gaussian"
	switch s.Ens {
	case csoutlier.SparseRademacher:
		ens = "sparse"
	case csoutlier.SRHT:
		ens = "srht"
	}
	return fmt.Sprintf("stream1 seed=%d n=%d s=%d l=%d w=%d m=%d k=%d mode=%g noise=%g ens=%s crash=%d@%d dup=%d proxy=%d:%d",
		s.Seed, s.N, s.S, s.L, s.W, s.M, s.K, s.Mode, s.Noise, ens,
		s.CrashNode, s.CrashWindow, s.DupNode, s.ProxyMin, s.ProxyMax)
}

// ParseStreamScenario decodes a StreamScenario.String() line.
func ParseStreamScenario(line string) (StreamScenario, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "stream1" {
		return StreamScenario{}, fmt.Errorf("simtest: stream scenario line must start with %q", "stream1")
	}
	var scn StreamScenario
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return StreamScenario{}, fmt.Errorf("simtest: malformed field %q", f)
		}
		var err error
		switch key {
		case "seed":
			scn.Seed, err = strconv.ParseUint(val, 10, 64)
		case "n":
			scn.N, err = strconv.Atoi(val)
		case "s":
			scn.S, err = strconv.Atoi(val)
		case "l":
			scn.L, err = strconv.Atoi(val)
		case "w":
			scn.W, err = strconv.Atoi(val)
		case "m":
			scn.M, err = strconv.Atoi(val)
		case "k":
			scn.K, err = strconv.Atoi(val)
		case "mode":
			scn.Mode, err = strconv.ParseFloat(val, 64)
		case "noise":
			scn.Noise, err = strconv.ParseFloat(val, 64)
		case "ens":
			switch val {
			case "gaussian":
				scn.Ens = csoutlier.Gaussian
			case "sparse":
				scn.Ens = csoutlier.SparseRademacher
			case "srht":
				scn.Ens = csoutlier.SRHT
			default:
				err = fmt.Errorf("unknown ensemble %q", val)
			}
		case "crash":
			node, win, ok := strings.Cut(val, "@")
			if !ok {
				err = fmt.Errorf("want node@window")
				break
			}
			if scn.CrashNode, err = strconv.Atoi(node); err == nil {
				scn.CrashWindow, err = strconv.Atoi(win)
			}
		case "dup":
			scn.DupNode, err = strconv.Atoi(val)
		case "proxy":
			lo, hi, ok := strings.Cut(val, ":")
			if !ok {
				err = fmt.Errorf("want min:max")
				break
			}
			if scn.ProxyMin, err = strconv.ParseInt(lo, 10, 64); err == nil {
				scn.ProxyMax, err = strconv.ParseInt(hi, 10, 64)
			}
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return StreamScenario{}, fmt.Errorf("simtest: field %q: %v", f, err)
		}
	}
	return scn, scn.validate()
}

// StreamData is a StreamScenario's materialized world: per-window exact
// global aggregates (the oracle's ground truth) and their per-node
// splits.
type StreamData struct {
	Keys      []string
	Support   []int             // planted outlier positions, fixed across windows
	WinGlobal []linalg.Vector   // [w] exact global aggregate of window w+1
	WinSlices [][]linalg.Vector // [w][l] node l's share of window w+1
}

// BuildStream materializes the scenario deterministically.
func (s StreamScenario) BuildStream() (*StreamData, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	splits := make([]int, s.W)
	for w := range splits {
		splits[w] = s.L
	}
	return buildStreamData(s.Seed, s.N, s.S, s.Mode, s.Noise, splits), nil
}

// buildStreamData materializes W windows of globally S-sparse data
// around a per-window bias, splitting window w among splits[w] nodes —
// the shared world builder for every streaming scenario flavor (the
// churn flavor varies the split count as membership changes).
func buildStreamData(seed uint64, n, sOut int, mode, noise float64, splits []int) *StreamData {
	rng := xrand.New(seed)
	d := &StreamData{Keys: make([]string, n)}
	for i := range d.Keys {
		d.Keys[i] = fmt.Sprintf("key%06d", i)
	}
	d.Support = pickDistinct(rng, n, sOut)
	mag0 := 100 + 900*rng.Float64()
	for w := 0; w < len(splits); w++ {
		wmode := mode * (0.6 + 0.8*rng.Float64())
		global := make(linalg.Vector, n)
		global.Fill(wmode)
		for _, j := range d.Support {
			mag := mag0 * (1 + 9*rng.Float64())
			if rng.Float64() < 0.5 {
				mag = -mag
			}
			global[j] = wmode + mag
		}
		d.WinGlobal = append(d.WinGlobal, global)
		d.WinSlices = append(d.WinSlices, workload.SplitZeroSumNoise(global, splits[w], noise, rng.Uint64()))
	}
	return d
}

// spanOracle answers the k-outlier query on the exact concatenation of
// windows [wFrom, wTo] (1-based, inclusive).
func (s StreamScenario) spanOracle(d *StreamData, wFrom, wTo int) (*OracleAnswer, error) {
	return streamSpanOracle(s.N, s.K, d, wFrom, wTo)
}

// streamSpanOracle is the centralized exact oracle all streaming
// scenario flavors share: the k-outlier answer on the concatenation of
// windows [wFrom, wTo] (1-based, inclusive).
func streamSpanOracle(n, k int, d *StreamData, wFrom, wTo int) (*OracleAnswer, error) {
	sum := make(linalg.Vector, n)
	for w := wFrom; w <= wTo; w++ {
		sum.Add(d.WinGlobal[w-1])
	}
	mode, ok := outlier.Mode(sum)
	if !ok {
		return nil, fmt.Errorf("simtest: span [%d,%d] has no exact majority mode", wFrom, wTo)
	}
	ans := &OracleAnswer{Mode: mode}
	for _, kv := range outlier.TopK(sum, mode, k) {
		ans.Outliers = append(ans.Outliers, csoutlier.Outlier{Key: d.Keys[kv.Index], Value: kv.Value})
	}
	return ans, nil
}

// StreamResult is what RunStream hands to the checker: the live
// aggregator (already drained and closed), the consensus sketcher, and
// the expected per-window global sketches built by a shadow mirror of
// the exact fold sequence.
type StreamResult struct {
	Agg      *stream.Aggregator
	Sk       *csoutlier.Sketcher
	Expected []csoutlier.Sketch // [w] bit-exact expected sketch of window w+1
	Kills    int64              // chaos-proxy connection kills observed
}

// RunStream executes the streaming pipeline for real: a TCP
// stream.Aggregator, one stream.Node per simulated node connected
// through its own chaos proxy, W windows driven tick by tick. Per
// window, every node observes its slice key by key and flushes a delta;
// the dup node's flush is re-delivered verbatim through a raw client;
// at the crash window, the crash node flushes its share, observes an
// extra batch that dies with it (Abort), and a successor re-dials with
// a bumped epoch. Windows rotate manually between ticks, and every node
// syncs into the new window, so the fold sequence — and therefore every
// per-window sketch — is deterministic down to the bit.
func RunStream(scn StreamScenario, data *StreamData) (*StreamResult, error) {
	sk, err := csoutlier.NewSketcher(data.Keys, csoutlier.Config{
		M:             scn.M,
		Seed:          scn.Seed ^ 0x9e3779b97f4a7c15,
		MaxIterations: recoveryBudget(scn.S, scn.K),
		Ensemble:      scn.Ens,
	})
	if err != nil {
		return nil, err
	}
	agg, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: scn.W})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go agg.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	closeAgg := func() {
		cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
		agg.Close(cctx)
		ccancel()
	}

	proxies := make([]*chaosProxy, scn.L)
	proxySeed := xrand.New(scn.Seed).Split(0x9097)
	for l := range proxies {
		p, err := startChaosProxy(ln.Addr().String(), proxySeed.Uint64(), scn.ProxyMin, scn.ProxyMax)
		if err != nil {
			closeAgg()
			return nil, err
		}
		defer p.Stop()
		proxies[l] = p
	}

	nodeOpts := func(l int, epoch uint64) stream.NodeOptions {
		return stream.NodeOptions{
			Epoch:       epoch,
			PushTimeout: 2 * time.Second,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			// Reconnect jitter derives from the scenario seed, so a soak
			// failure's backoff timing replays from its scenario line.
			BackoffSeed: xrand.New(scn.Seed).Split(0xbac0ff ^ uint64(l)<<8 ^ epoch).Uint64(),
		}
	}
	nodes := make([]*stream.Node, scn.L)
	shadow := make([]*csoutlier.Updater, scn.L)
	for l := range nodes {
		n, err := stream.Dial(ctx, proxies[l].Addr(), sk, NodeID(l), nodeOpts(l, 1))
		if err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: dial node %d: %w", l, err)
		}
		nodes[l] = n
		shadow[l] = sk.NewUpdater()
	}

	// A raw client straight to the aggregator (no chaos) for verbatim
	// duplicate injection: the shadow drain bytes are bit-identical to
	// what the node pushed, so re-delivering them with the node's own
	// (epoch, window, seq) tags is an exact wire-level duplicate.
	dupClient, err := stream.DialClient(ctx, ln.Addr().String(), 5*time.Second)
	if err != nil {
		closeAgg()
		return nil, err
	}
	defer dupClient.Close()

	res := &StreamResult{Agg: agg, Sk: sk}
	scratch := sk.ZeroSketch()
	for w := 1; w <= scn.W; w++ {
		expected := sk.ZeroSketch()
		for l := 0; l < scn.L; l++ {
			// Each window ships as several mid-window delta flushes, not
			// one snapshot: that is the protocol's real shape, and the
			// extra frames guarantee every connection outlives its chaos
			// budget at least once per run.
			slice := data.WinSlices[w-1][l]
			for c := 0; c < streamChunks; c++ {
				lo, hi := len(slice)*c/streamChunks, len(slice)*(c+1)/streamChunks
				for idx := lo; idx < hi; idx++ {
					v := slice[idx]
					if v == 0 {
						continue
					}
					if err := nodes[l].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, fmt.Errorf("simtest: node %d observe: %w", l, err)
					}
					if err := shadow[l].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, err
					}
				}
				if err := nodes[l].Flush(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d flush (window %d): %w", l, w, err)
				}
				if _, err := shadow[l].DrainInto(scratch); err != nil {
					closeAgg()
					return nil, err
				}
				if err := expected.Add(scratch); err != nil {
					closeAgg()
					return nil, err
				}
			}

			if l == scn.DupNode {
				// Re-deliver the flush verbatim: must be acked as a
				// duplicate and fold nothing.
				payload, err := scratch.MarshalBinary()
				if err != nil {
					closeAgg()
					return nil, err
				}
				st := nodes[l].Stats()
				ack, err := dupClient.PushDelta(NodeID(l), 1, st.Window, st.Seq, 1, payload)
				if err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: dup injection: %w", err)
				}
				if ack.Applied || ack.Status != stream.StatusDuplicate {
					closeAgg()
					return nil, fmt.Errorf("simtest: duplicate flush was not deduplicated: %+v", ack)
				}
			}
			if l == scn.CrashNode && w == scn.CrashWindow {
				// The crash loses everything observed since the last flush:
				// an extra anomalous batch that must never reach the
				// aggregate. The successor re-dials with a bumped epoch.
				if err := nodes[l].Observe(data.Keys[data.Support[0]], 123456); err != nil {
					closeAgg()
					return nil, err
				}
				nodes[l].Abort()
				n, err := stream.Dial(ctx, proxies[l].Addr(), sk, NodeID(l), nodeOpts(l, 2))
				if err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: restart node %d: %w", l, err)
				}
				nodes[l] = n
			}
		}
		res.Expected = append(res.Expected, expected)
		if w < scn.W {
			agg.Rotate()
			for l := range nodes {
				if err := nodes[l].Sync(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d sync: %w", l, err)
				}
			}
		}
	}

	// Graceful shutdown: every node drains (final flushes are empty),
	// then the aggregator folds whatever its queue still holds. Its
	// window store stays queryable for the checker.
	for l := range nodes {
		if err := nodes[l].Close(ctx); err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: node %d close: %w", l, err)
		}
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = agg.Close(cctx)
	ccancel()
	if err != nil {
		return nil, err
	}
	for _, p := range proxies {
		res.Kills += p.Kills()
	}
	return res, nil
}

// CheckStreamScenario is the streaming harness's unit of work:
// materialize the scenario, run the real push pipeline through chaos
// proxies with the scheduled crash and duplicate injection, then check
// (1) every per-window aggregator sketch is bit-identical to the shadow
// mirror of the exact fold sequence, (2) the recovered outliers match
// the exact centralized oracle for every contiguous window span, and
// (3) the liveness/idempotency bookkeeping saw what the schedule did.
func CheckStreamScenario(scn StreamScenario) error {
	data, err := scn.BuildStream()
	if err != nil {
		return err
	}
	res, err := RunStream(scn, data)
	if err != nil {
		return err
	}
	// The chaos budgets are sized so every run loses at least one
	// connection mid-exchange; if none died, the faults this harness
	// exists to exercise never happened.
	if res.Kills < 1 {
		return fmt.Errorf("chaos proxies killed no connections; budgets [%d, %d] too generous for this schedule",
			scn.ProxyMin, scn.ProxyMax)
	}

	// (1) Bit-identical per-window global sketches.
	for w := 1; w <= scn.W; w++ {
		age := scn.W - w
		got, err := res.Agg.WindowSketch(age)
		if err != nil {
			return fmt.Errorf("window %d (age %d): %w", w, age, err)
		}
		want := res.Expected[w-1]
		for i := range got.Y {
			if math.Float64bits(got.Y[i]) != math.Float64bits(want.Y[i]) {
				return fmt.Errorf("window %d sketch diverges from shadow fold at Y[%d]: %v != %v (bit-exact)",
					w, i, got.Y[i], want.Y[i])
			}
		}
	}

	// (2) Every contiguous span's recovered outliers match the oracle.
	queries := 0
	for from := 0; from < scn.W; from++ {
		for to := from; to < scn.W; to++ {
			rep, err := res.Agg.Outliers(from, to, scn.K)
			queries++
			if err != nil {
				return fmt.Errorf("span [%d,%d]: %w", from, to, err)
			}
			ans, err := scn.spanOracle(data, scn.W-to, scn.W-from)
			if err != nil {
				return err
			}
			if err := compareReport(rep, ans); err != nil {
				return fmt.Errorf("span [%d,%d] differential oracle: %w", from, to, err)
			}
		}
	}
	// A repeated standing query must come from the recovery cache.
	if _, err := res.Agg.Outliers(0, scn.W-1, scn.K); err != nil {
		return err
	}
	queries++
	if s := res.Agg.Stats(); s.CacheHits < 1 {
		return fmt.Errorf("repeated standing query missed the cache: %+v", s)
	}

	// Counter identities at quiescence: every frame landed in exactly one
	// outcome bucket, and every query either hit or missed the cache.
	stats := res.Agg.Stats()
	if stats.Frames != stats.Applied+stats.Duplicates+stats.Dropped+stats.Rejected {
		return fmt.Errorf("frame identity violated: %d frames != %d applied + %d dup + %d dropped + %d rejected",
			stats.Frames, stats.Applied, stats.Duplicates, stats.Dropped, stats.Rejected)
	}
	if got := stats.CacheHits + stats.CacheMisses; got != int64(queries) {
		return fmt.Errorf("cache hits+misses = %d, issued %d queries", got, queries)
	}
	// The registry is the same books as the AggStats snapshot.
	if reg := res.Agg.MetricsRegistry(); reg != nil {
		for _, c := range []struct {
			name string
			want int64
		}{
			{"stream_frames_total", stats.Frames},
			{"stream_rotations_total", stats.Rotations},
			{"stream_hellos_total", stats.Hellos},
			{"stream_connections_total", stats.Conns},
		} {
			if got := reg.Counter(c.name, "").Value(); got != c.want {
				return fmt.Errorf("registry %s = %d, AggStats says %d", c.name, got, c.want)
			}
		}
		outcomes := reg.CounterVec("stream_frame_outcomes_total", "", "outcome")
		for _, c := range []struct {
			label string
			want  int64
		}{
			{"applied", stats.Applied},
			{"duplicate", stats.Duplicates},
			{"dropped", stats.Dropped},
			{"rejected", stats.Rejected},
		} {
			if got := outcomes.With(c.label).Value(); got != c.want {
				return fmt.Errorf("registry frame outcome %s = %d, AggStats says %d", c.label, got, c.want)
			}
		}
	}

	// (3) Liveness and idempotency bookkeeping.
	sts := res.Agg.Nodes()
	if len(sts) != scn.L {
		return fmt.Errorf("%d nodes in liveness table, want %d", len(sts), scn.L)
	}
	for _, ns := range sts {
		i := -1
		fmt.Sscanf(ns.Node, "node%d", &i)
		switch {
		case i == scn.CrashNode && (ns.Epoch != 2 || ns.Restarts != 1):
			return fmt.Errorf("crash node status %+v, want epoch 2 after 1 restart", ns)
		case i != scn.CrashNode && ns.Epoch != 1:
			return fmt.Errorf("node %s status %+v, want epoch 1", ns.Node, ns)
		case ns.Lag != 0:
			return fmt.Errorf("node %s still lags after final sync: %+v", ns.Node, ns)
		case ns.Applied < int64(scn.W)-1:
			return fmt.Errorf("node %s applied only %d deltas over %d windows", ns.Node, ns.Applied, scn.W)
		}
	}
	if s := res.Agg.Stats(); s.Duplicates < int64(scn.W) {
		return fmt.Errorf("aggregator saw %d duplicates, injected %d", s.Duplicates, scn.W)
	}
	// Per-node outcome counters sum to the aggregate ones. Rejected is
	// >=: a stale-epoch frame is refused before any node state is
	// charged, so it counts aggregator-wide only.
	var applied, dups, dropped, rejected int64
	for _, ns := range sts {
		applied += ns.Applied
		dups += ns.Duplicates
		dropped += ns.Dropped
		rejected += ns.Rejected
	}
	switch {
	case applied != stats.Applied, dups != stats.Duplicates, dropped != stats.Dropped:
		return fmt.Errorf("per-node sums (applied %d, dup %d, dropped %d) disagree with aggregate (%d, %d, %d)",
			applied, dups, dropped, stats.Applied, stats.Duplicates, stats.Dropped)
	case rejected > stats.Rejected:
		return fmt.Errorf("per-node rejected sum %d exceeds aggregate %d", rejected, stats.Rejected)
	}
	return nil
}
