package simtest

import (
	"fmt"
	"math"

	"csoutlier"
	"csoutlier/internal/outlier"
)

// matchTol is the relative tolerance of the differential comparison.
// The scenario generator keeps every scenario in the exact-recovery
// regime (M comfortably above the phase transition), where BOMP's answer
// matches the centralized computation to solver precision (~1e-9 of the
// measurement norm); 1e-6 leaves three orders of magnitude of margin
// while still catching any genuine recovery regression, which moves
// values by O(magnitude), not O(epsilon).
const matchTol = 1e-6

// OracleAnswer is the exact centralized result: what an engine holding
// the uncompressed aggregate over exactly the included nodes computes.
type OracleAnswer struct {
	Mode     float64
	Outliers []csoutlier.Outlier // min(K, S) strongest, furthest-from-mode first
}

// Oracle answers the scenario's k-outlier query on the uncompressed
// included aggregate: exact majority mode, exact top-k by divergence —
// the transmit-ALL ground truth the compressed pipeline must reproduce.
func Oracle(scn Scenario, data *Data) (*OracleAnswer, error) {
	mode, ok := outlier.Mode(data.Global)
	if !ok {
		return nil, fmt.Errorf("simtest: includable aggregate has no exact majority mode (S=%d, N=%d)", scn.S, scn.N)
	}
	ans := &OracleAnswer{Mode: mode}
	for _, kv := range outlier.TopK(data.Global, mode, scn.K) {
		ans.Outliers = append(ans.Outliers, csoutlier.Outlier{Key: data.Keys[kv.Index], Value: kv.Value})
	}
	return ans, nil
}

// CompareToOracle differentially checks the distributed pipeline's answer
// against the exact centralized oracle: the membership of the aggregate
// must equal the fault schedule's surviving set, and the recovered mode,
// outlier keys, ranking and values must match the oracle within matchTol.
func CompareToOracle(scn Scenario, data *Data, rep *csoutlier.ClusterReport) error {
	// 1. The aggregate must cover exactly the nodes the schedule lets live.
	var want []string
	for i, f := range scn.Faults {
		if f.Included() {
			want = append(want, NodeID(i))
		}
	}
	if len(rep.Included) != len(want) {
		return fmt.Errorf("included %v, want %v", rep.Included, want)
	}
	for i := range want {
		if rep.Included[i] != want[i] {
			return fmt.Errorf("included %v, want %v", rep.Included, want)
		}
	}

	ans, err := Oracle(scn, data)
	if err != nil {
		return err
	}
	return compareReport(&rep.Report, ans)
}

// compareReport checks a recovered report against an oracle answer.
func compareReport(rep *csoutlier.Report, ans *OracleAnswer) error {
	if !closeRel(rep.Mode, ans.Mode) {
		return fmt.Errorf("mode %v, oracle %v", rep.Mode, ans.Mode)
	}
	if len(rep.Outliers) != len(ans.Outliers) {
		return fmt.Errorf("%d outliers, oracle has %d (got %v, want %v)",
			len(rep.Outliers), len(ans.Outliers), rep.Outliers, ans.Outliers)
	}
	for i, o := range rep.Outliers {
		w := ans.Outliers[i]
		if o.Key != w.Key {
			return fmt.Errorf("outlier %d is %q, oracle says %q (got %v, want %v)",
				i, o.Key, w.Key, rep.Outliers, ans.Outliers)
		}
		if !closeRel(o.Value, w.Value) {
			return fmt.Errorf("outlier %d (%s) value %v, oracle %v", i, o.Key, o.Value, w.Value)
		}
	}
	return nil
}

// closeRel reports |a−b| ≤ matchTol·max(1, |b|).
func closeRel(a, b float64) bool {
	return math.Abs(a-b) <= matchTol*math.Max(1, math.Abs(b))
}
