package simtest

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
	"csoutlier/internal/tier"
	"csoutlier/internal/xrand"
)

// tierShards and tierRelays fix the streamtier1 topology: 2 shards,
// each a 2-tier tree of one root fed by 2 regional relays, leaf l
// homed on relay l%2 of every shard.
const (
	tierShards = 2
	tierRelays = 2
)

// tierCleanProbes is how many non-planted keys the final watch list
// carries alongside the planted outliers.
const tierCleanProbes = 24

// StreamTierScenario is one fully specified hierarchical-tier soak: L
// leaf data centers pushing count-sketch deltas through chaos TCP
// proxies into a 2-tier × 2-shard tree (per shard: 2 regional relays
// feeding one root), with a mid-run kill/restore of one relay. The
// checker demands each shard root's windows be bit-identical to a flat
// shadow fold of the same deltas, the routed span and point answers
// exact against the centralized oracle, and every leaf capture folded
// at its root exactly once.
type StreamTierScenario struct {
	Seed  uint64
	N     int     // global key-space size (split near-evenly across shards)
	S     int     // planted outliers (same positions every window)
	L     int     // leaf data centers
	W     int     // windows driven
	Depth int     // count-sketch hash rows (per-shard M = Depth·Width)
	Width int     // count-sketch buckets per row
	K     int     // outliers per global span top-k query
	Mode  float64 // base bias; per-window biases are seeded multiples
	Noise float64 // per-node zero-sum noise amplitude per window

	// The fault: relay 0 of shard KillShard is killed (no graceful
	// flush) after global flush KillFlush (0-based, l-major over the
	// window's L·streamChunks flushes) of window KillWindow, then
	// restored from its own snapshot on a fresh listener. KillWindow ≥ 2
	// so at least one forwarded window precedes the crash; KillFlush ≥ 1
	// so the victim holds at least one unforwarded leaf frame (flush 1
	// is leaf 0's middle chunk, which straddles both shards).
	KillShard  int
	KillWindow int
	KillFlush  int

	ProxyMin int64 // per-connection chaos byte budget bounds
	ProxyMax int64
}

// M is the per-shard measurement budget: Depth hash rows of Width
// buckets each.
func (s StreamTierScenario) M() int { return s.Depth * s.Width }

// GenerateStreamTier derives tier scenario index from the base seed.
// Sizing follows the point-query soak (count-sketch wide enough that
// clean medians stay exact) with N ≥ 4M so each shard of N/2 keys
// keeps the ≥ 2× compression floor.
func GenerateStreamTier(base uint64, index int) StreamTierScenario {
	rng := xrand.New(base).Split(uint64(index) + 0x71e2aa01)
	scn := StreamTierScenario{Seed: rng.Uint64()}
	scn.S = 1 + rng.Intn(3)
	scn.Depth = 7
	scn.Width = 96 + 32*rng.Intn(2) // 96 or 128 buckets
	m := scn.M()
	scn.N = 4*m + rng.Intn(m+1)
	scn.K = 1 + rng.Intn(scn.S+1)
	scn.Mode = 100 + 4900*rng.Float64()
	if rng.Float64() < 0.5 {
		scn.Mode = -scn.Mode
	}
	if rng.Float64() < 0.6 {
		scn.Noise = (math.Abs(scn.Mode) + 500) * (0.1 + rng.Float64())
	}
	scn.L = 4 + rng.Intn(2)
	scn.W = 2 + rng.Intn(2)
	scn.KillShard = rng.Intn(tierShards)
	scn.KillWindow = 2 + rng.Intn(scn.W-1)
	scn.KillFlush = 1 + rng.Intn(scn.L*streamChunks-1)
	frame := int64(8*m + 512)
	floorTotal := int64(streamChunks*scn.W) * int64(8*m+64)
	scn.ProxyMin = frame
	scn.ProxyMax = 3 * frame
	if cap := floorTotal - frame; scn.ProxyMax > cap {
		scn.ProxyMax = cap
	}
	if scn.ProxyMax < scn.ProxyMin {
		scn.ProxyMax = scn.ProxyMin
	}
	return scn
}

func (s StreamTierScenario) validate() error {
	switch {
	case s.N < 8 || s.S < 1 || s.S > s.N/8:
		return fmt.Errorf("simtest: tier scenario N=%d S=%d out of range (need S ≤ N/8 for per-shard majority)", s.N, s.S)
	case s.L < 2:
		return fmt.Errorf("simtest: tier scenario needs ≥ 2 leaves, got %d", s.L)
	case s.W < 2:
		return fmt.Errorf("simtest: tier scenario needs ≥ 2 windows (one forwarded before the kill), got %d", s.W)
	case s.Depth < 1 || s.Depth > 64:
		return fmt.Errorf("simtest: depth %d outside [1, 64]", s.Depth)
	case s.Width < 2:
		return fmt.Errorf("simtest: width %d < 2", s.Width)
	case s.M() > s.N/4:
		return fmt.Errorf("simtest: per-shard M=%d exceeds half the shard key space N/2=%d", s.M(), s.N/2)
	case s.K < 1:
		return fmt.Errorf("simtest: K=%d", s.K)
	case s.Mode == 0:
		return fmt.Errorf("simtest: tier scenarios need a nonzero mode")
	case s.KillShard < 0 || s.KillShard >= tierShards:
		return fmt.Errorf("simtest: kill shard %d outside [0, %d)", s.KillShard, tierShards)
	case s.KillWindow < 2 || s.KillWindow > s.W:
		return fmt.Errorf("simtest: kill window %d outside [2, %d]", s.KillWindow, s.W)
	case s.KillFlush < 1 || s.KillFlush >= s.L*streamChunks:
		return fmt.Errorf("simtest: kill flush %d outside [1, %d)", s.KillFlush, s.L*streamChunks)
	case s.ProxyMin < int64(8*s.M()+256) || s.ProxyMax < s.ProxyMin:
		return fmt.Errorf("simtest: proxy budget [%d, %d] cannot pass a full frame", s.ProxyMin, s.ProxyMax)
	}
	return nil
}

// String encodes the scenario as a replayable one-liner.
func (s StreamTierScenario) String() string {
	return fmt.Sprintf("streamtier1 seed=%d n=%d s=%d l=%d w=%d d=%d wid=%d k=%d mode=%g noise=%g ks=%d kw=%d kf=%d proxy=%d:%d",
		s.Seed, s.N, s.S, s.L, s.W, s.Depth, s.Width, s.K, s.Mode, s.Noise,
		s.KillShard, s.KillWindow, s.KillFlush, s.ProxyMin, s.ProxyMax)
}

// ParseStreamTierScenario decodes a StreamTierScenario.String() line.
func ParseStreamTierScenario(line string) (StreamTierScenario, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "streamtier1" {
		return StreamTierScenario{}, fmt.Errorf("simtest: tier scenario line must start with %q", "streamtier1")
	}
	var scn StreamTierScenario
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return StreamTierScenario{}, fmt.Errorf("simtest: malformed field %q", f)
		}
		var err error
		switch key {
		case "seed":
			scn.Seed, err = strconv.ParseUint(val, 10, 64)
		case "n":
			scn.N, err = strconv.Atoi(val)
		case "s":
			scn.S, err = strconv.Atoi(val)
		case "l":
			scn.L, err = strconv.Atoi(val)
		case "w":
			scn.W, err = strconv.Atoi(val)
		case "d":
			scn.Depth, err = strconv.Atoi(val)
		case "wid":
			scn.Width, err = strconv.Atoi(val)
		case "k":
			scn.K, err = strconv.Atoi(val)
		case "mode":
			scn.Mode, err = strconv.ParseFloat(val, 64)
		case "noise":
			scn.Noise, err = strconv.ParseFloat(val, 64)
		case "ks":
			scn.KillShard, err = strconv.Atoi(val)
		case "kw":
			scn.KillWindow, err = strconv.Atoi(val)
		case "kf":
			scn.KillFlush, err = strconv.Atoi(val)
		case "proxy":
			lo, hi, ok := strings.Cut(val, ":")
			if !ok {
				err = fmt.Errorf("want min:max")
				break
			}
			if scn.ProxyMin, err = strconv.ParseInt(lo, 10, 64); err == nil {
				scn.ProxyMax, err = strconv.ParseInt(hi, 10, 64)
			}
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return StreamTierScenario{}, fmt.Errorf("simtest: field %q: %v", f, err)
		}
	}
	return scn, scn.validate()
}

// BuildStream materializes the scenario deterministically.
func (s StreamTierScenario) BuildStream() (*StreamData, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	splits := make([]int, s.W)
	for w := range splits {
		splits[w] = s.L
	}
	return buildStreamData(s.Seed, s.N, s.S, s.Mode, s.Noise, splits), nil
}

// StreamTierResult is what RunStreamTier hands to the checker. Roots
// are still serving (the checker queries them over the wire and closes
// them).
type StreamTierResult struct {
	Map       *tier.ShardMap
	Sks       []*csoutlier.Sketcher
	Roots     []*stream.Aggregator
	RootAddrs []string
	Expected  [][]csoutlier.Sketch // [shard][w] bit-exact shadow of each root's fold
	Captured  []int64              // [shard] total leaf captures bound for that shard
	Relays    [][]tier.RelayStats  // [shard][relay] final relay books
	Kills     int64                // chaos-proxy connection kills
	Replayed  int64                // leaf frames requeued at the relay restore
}

// CloseRoots shuts the shard roots down (idempotent enough for a
// deferred call after an error mid-check).
func (r *StreamTierResult) CloseRoots() {
	for _, root := range r.Roots {
		if root == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		root.Close(ctx)
		cancel()
	}
}

// RunStreamTier executes the hierarchical pipeline: per shard one root
// and two durable relays, every leaf holding one sharded connection
// set through per-(leaf, shard) chaos proxies to relay l%2. The drive
// is leaf-major inside each window — the order a post-restore replay
// reproduces (each leaf's retained frames replay consecutively, leaves
// in id order) — with relays forwarded and the tree re-synced at every
// window boundary. At the seeded kill point relay 0 of KillShard dies
// without a snapshot (everything since its last Forward is lost),
// restores from its own snapshot file, replays its retained upward
// frames against the root's dedup books, and the victim leaves replay
// the lost leaf frames against its restored books.
func RunStreamTier(scn StreamTierScenario, data *StreamData) (*StreamTierResult, error) {
	spec := tier.Spec{
		M:             scn.M(),
		BaseSeed:      scn.Seed ^ 0x9e3779b97f4a7c15,
		MaxIterations: recoveryBudget(scn.S, scn.K),
		Ensemble:      csoutlier.CountSketch,
		Depth:         scn.Depth,
	}
	m, err := tier.NewShardMap(data.Keys, tierShards, spec, 1)
	if err != nil {
		return nil, err
	}
	sks, err := m.Sketchers()
	if err != nil {
		return nil, err
	}
	res := &StreamTierResult{Map: m, Sks: sks}

	snapDir, err := os.MkdirTemp("", "csstream-tier-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(snapDir)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Shard roots, non-durable (the durability story under test is the
	// relays'; the crash soak covers root restarts).
	for s := 0; s < tierShards; s++ {
		root, err := stream.NewAggregator(sks[s], stream.AggregatorOptions{Windows: scn.W})
		if err != nil {
			res.CloseRoots()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			res.CloseRoots()
			return nil, err
		}
		go root.Serve(ln)
		res.Roots = append(res.Roots, root)
		res.RootAddrs = append(res.RootAddrs, ln.Addr().String())
	}

	// Regional relays: durable, each owning a snapshot file.
	relays := make([][]*tier.Relay, tierShards)
	relayOpts := make([][]tier.RelayOptions, tierShards)
	relayAddrs := make([][]string, tierShards)
	seedRng := xrand.New(scn.Seed)
	closeRelays := func() {
		for s := range relays {
			for r := range relays[s] {
				if relays[s][r] == nil {
					continue
				}
				cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
				relays[s][r].Close(cctx)
				ccancel()
			}
		}
	}
	fail := func(err error) (*StreamTierResult, error) {
		closeRelays()
		res.CloseRoots()
		return nil, err
	}
	serveRelay := func(rel *tier.Relay) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		go rel.Serve(ln)
		return ln.Addr().String(), nil
	}
	for s := 0; s < tierShards; s++ {
		relays[s] = make([]*tier.Relay, tierRelays)
		relayOpts[s] = make([]tier.RelayOptions, tierRelays)
		relayAddrs[s] = make([]string, tierRelays)
		for r := 0; r < tierRelays; r++ {
			opts := tier.RelayOptions{
				ID:           fmt.Sprintf("r%d", r),
				Shard:        s,
				Upstream:     res.RootAddrs[s],
				SnapshotPath: filepath.Join(snapDir, fmt.Sprintf("relay-%d-%d.snap", s, r)),
				PushTimeout:  2 * time.Second,
				BaseBackoff:  time.Millisecond,
				MaxBackoff:   20 * time.Millisecond,
				BackoffSeed:  seedRng.Split(0x8e1a1 ^ uint64(s)<<16 ^ uint64(r)<<8).Uint64(),
				Agg:          stream.AggregatorOptions{Windows: scn.W},
			}
			relayOpts[s][r] = opts
			rel, err := tier.NewRelay(ctx, sks[s], opts)
			if err != nil {
				return fail(fmt.Errorf("simtest: relay %d/%d: %w", s, r, err))
			}
			relays[s][r] = rel
			if relayAddrs[s][r], err = serveRelay(rel); err != nil {
				return fail(err)
			}
		}
	}

	// Chaos proxies: one per (leaf, shard) connection, pointed at the
	// leaf's home relay for that shard.
	proxies := make([][]*chaosProxy, scn.L)
	proxySeed := xrand.New(scn.Seed).Split(0x9097)
	for l := range proxies {
		proxies[l] = make([]*chaosProxy, tierShards)
		for s := 0; s < tierShards; s++ {
			p, err := startChaosProxy(relayAddrs[s][l%tierRelays], proxySeed.Uint64(), scn.ProxyMin, scn.ProxyMax)
			if err != nil {
				return fail(err)
			}
			defer p.Stop()
			proxies[l][s] = p
		}
	}

	// Leaves: one sharded connection set each, plus per-shard shadow
	// updaters mirroring exactly what each shard-node folds.
	leaves := make([]*tier.ShardedNode, scn.L)
	shadow := make([][]*csoutlier.Updater, scn.L)
	for l := range leaves {
		addrs := make([]string, tierShards)
		for s := 0; s < tierShards; s++ {
			addrs[s] = proxies[l][s].Addr()
		}
		sn, err := tier.DialSharded(ctx, m, sks, addrs, NodeID(l), stream.NodeOptions{
			Epoch:       1,
			PushTimeout: 2 * time.Second,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			BackoffSeed: xrand.New(scn.Seed).Split(0xbac0ff ^ uint64(l)<<8).Uint64(),
		})
		if err != nil {
			return fail(fmt.Errorf("simtest: dial leaf %d: %w", l, err))
		}
		leaves[l] = sn
		shadow[l] = make([]*csoutlier.Updater, tierShards)
		for s := 0; s < tierShards; s++ {
			shadow[l][s] = sks[s].NewUpdater()
		}
	}

	scratch := make([]csoutlier.Sketch, tierShards)
	for s := range scratch {
		scratch[s] = sks[s].ZeroSketch()
	}
	res.Expected = make([][]csoutlier.Sketch, tierShards)

	doKill := func() error {
		ks := scn.KillShard
		victim := relays[ks][0]
		if err := victim.Kill(ctx); err != nil {
			return fmt.Errorf("simtest: kill relay: %w", err)
		}
		snap, err := stream.LoadSnapshot(relayOpts[ks][0].SnapshotPath)
		if err != nil {
			return fmt.Errorf("simtest: load relay snapshot: %w", err)
		}
		restored, err := tier.RestoreRelay(ctx, sks[ks], relayOpts[ks][0], snap)
		if err != nil {
			return fmt.Errorf("simtest: restore relay: %w", err)
		}
		relays[ks][0] = restored
		addr, err := serveRelay(restored)
		if err != nil {
			return err
		}
		for l := 0; l < scn.L; l++ {
			if l%tierRelays == 0 {
				proxies[l][ks].Retarget(addr)
			}
		}
		// The restored relay syncs first: it must adopt the root's
		// current window (its snapshot predates the latest rotations) and
		// replay its retained upward frames before any leaf frame
		// arrives. Then the leaves sync in id order — reproducing the
		// l-major order of the frames the crash destroyed.
		if err := restored.Sync(ctx); err != nil {
			return fmt.Errorf("simtest: restored relay sync: %w", err)
		}
		for l := 0; l < scn.L; l++ {
			if err := leaves[l].Sync(ctx); err != nil {
				return fmt.Errorf("simtest: leaf %d post-restore sync: %w", l, err)
			}
		}
		return nil
	}

	for w := 1; w <= scn.W; w++ {
		// Per-window upward accumulators mirroring each relay's unstable
		// state: touched tracks whether the relay applied any frame this
		// window (and will therefore stage one).
		acc := make([][]csoutlier.Sketch, tierShards)
		touched := make([][]bool, tierShards)
		for s := 0; s < tierShards; s++ {
			acc[s] = make([]csoutlier.Sketch, tierRelays)
			touched[s] = make([]bool, tierRelays)
			for r := 0; r < tierRelays; r++ {
				acc[s][r] = sks[s].ZeroSketch()
			}
		}
		for l := 0; l < scn.L; l++ {
			slice := data.WinSlices[w-1][l]
			for c := 0; c < streamChunks; c++ {
				lo, hi := len(slice)*c/streamChunks, len(slice)*(c+1)/streamChunks
				for idx := lo; idx < hi; idx++ {
					v := slice[idx]
					if v == 0 {
						continue
					}
					if err := leaves[l].Observe(data.Keys[idx], v); err != nil {
						return fail(fmt.Errorf("simtest: leaf %d observe: %w", l, err))
					}
					if err := shadow[l][m.Route(data.Keys[idx])].Observe(data.Keys[idx], v); err != nil {
						return fail(err)
					}
				}
				if err := leaves[l].Flush(ctx); err != nil {
					return fail(fmt.Errorf("simtest: leaf %d flush (window %d): %w", l, w, err))
				}
				for s := 0; s < tierShards; s++ {
					cnt, err := shadow[l][s].DrainInto(scratch[s])
					if err != nil {
						return fail(err)
					}
					if cnt == 0 {
						continue // empty drain: the node captured no frame either
					}
					if err := acc[s][l%tierRelays].Add(scratch[s]); err != nil {
						return fail(err)
					}
					touched[s][l%tierRelays] = true
				}
				if w == scn.KillWindow && l*streamChunks+c == scn.KillFlush {
					if err := doKill(); err != nil {
						return fail(err)
					}
				}
			}
		}
		// Window boundary: every relay forwards its folded window upward
		// as one frame, in (shard, relay) order — the root's fold order,
		// which the expected sketch mirrors.
		for s := 0; s < tierShards; s++ {
			expected := sks[s].ZeroSketch()
			for r := 0; r < tierRelays; r++ {
				if err := relays[s][r].Forward(ctx); err != nil {
					return fail(fmt.Errorf("simtest: relay %d/%d forward (window %d): %w", s, r, w, err))
				}
				if !touched[s][r] {
					continue
				}
				if err := expected.Add(acc[s][r]); err != nil {
					return fail(err)
				}
			}
			res.Expected[s] = append(res.Expected[s], expected)
		}
		if w < scn.W {
			for s := 0; s < tierShards; s++ {
				res.Roots[s].Rotate()
			}
			for s := 0; s < tierShards; s++ {
				for r := 0; r < tierRelays; r++ {
					if err := relays[s][r].Sync(ctx); err != nil {
						return fail(fmt.Errorf("simtest: relay %d/%d sync: %w", s, r, err))
					}
				}
			}
			for l := 0; l < scn.L; l++ {
				if err := leaves[l].Sync(ctx); err != nil {
					return fail(fmt.Errorf("simtest: leaf %d sync: %w", l, err))
				}
			}
		}
	}

	// Quiesce: leaves close (flushing nothing new), relays close (a
	// final Forward of empty residue), books settle.
	res.Captured = make([]int64, tierShards)
	for l := range leaves {
		if err := leaves[l].Close(ctx); err != nil {
			return fail(fmt.Errorf("simtest: leaf %d close: %w", l, err))
		}
		for s := 0; s < tierShards; s++ {
			st := leaves[l].Node(s).Stats()
			res.Captured[s] += st.Captured
			res.Replayed += st.Replayed
		}
	}
	res.Relays = make([][]tier.RelayStats, tierShards)
	for s := range relays {
		res.Relays[s] = make([]tier.RelayStats, tierRelays)
		for r := range relays[s] {
			if err := relays[s][r].Close(ctx); err != nil {
				return fail(fmt.Errorf("simtest: relay %d/%d close: %w", s, r, err))
			}
			res.Relays[s][r] = relays[s][r].Stats()
		}
	}
	for l := range proxies {
		for s := range proxies[l] {
			res.Kills += proxies[l][s].Kills()
		}
	}
	return res, nil
}

// CheckStreamTierScenario materializes and runs one hierarchical-tier
// scenario, then checks: (1) each shard root's windows are bit-identical
// to the flat shadow fold — the extra hop and the relay crash changed
// nothing; (2) routed global span top-k answers match the exact
// centralized oracle on every window span, and a routed point watch
// list over the wire matches it key by key; (3) conservation — every
// leaf capture is folded at its shard root exactly once — plus clean
// relay and root books (no rejects, duplicates only where replay says
// they must exist).
func CheckStreamTierScenario(scn StreamTierScenario) error {
	data, err := scn.BuildStream()
	if err != nil {
		return err
	}
	res, err := RunStreamTier(scn, data)
	if err != nil {
		return err
	}
	defer res.CloseRoots()
	if res.Kills < 1 {
		return fmt.Errorf("chaos proxies killed no connections; budgets [%d, %d] too generous for this schedule",
			scn.ProxyMin, scn.ProxyMax)
	}
	if res.Replayed < 1 {
		return fmt.Errorf("relay kill lost no leaf frames (kill window %d flush %d); the scenario is vacuous",
			scn.KillWindow, scn.KillFlush)
	}

	// (1) Bit-identical windows at every shard root.
	for s := 0; s < tierShards; s++ {
		for w := 1; w <= scn.W; w++ {
			age := scn.W - w
			got, err := res.Roots[s].WindowSketch(age)
			if err != nil {
				return fmt.Errorf("shard %d window %d (age %d): %w", s, w, age, err)
			}
			want := res.Expected[s][w-1]
			for i := range got.Y {
				if math.Float64bits(got.Y[i]) != math.Float64bits(want.Y[i]) {
					return fmt.Errorf("shard %d window %d diverges from flat shadow fold at Y[%d]: %v != %v (bit-exact)",
						s, w, i, got.Y[i], want.Y[i])
				}
			}
		}
	}

	// (2) Routed global answers vs the centralized oracle. Span queries
	// fan out in process; point queries go over the wire (the query RPC
	// on each root's push listener).
	targets := make([]tier.Target, tierShards)
	for s := 0; s < tierShards; s++ {
		rp := tier.NewRemotePoint(res.RootAddrs[s], 5*time.Second)
		defer rp.Close()
		targets[s] = tier.Target{Span: res.Roots[s], Point: rp}
	}
	router, err := tier.NewRouter(res.Map, targets)
	if err != nil {
		return err
	}
	for from := 0; from < scn.W; from++ {
		for to := from; to < scn.W; to++ {
			rep, err := router.Outliers(from, to, scn.K)
			if err != nil {
				return fmt.Errorf("routed span [%d,%d]: %w", from, to, err)
			}
			ans, err := streamSpanOracle(scn.N, scn.K, data, scn.W-to, scn.W-from)
			if err != nil {
				return err
			}
			if err := compareReport(rep, ans); err != nil {
				return fmt.Errorf("routed span [%d,%d] differential oracle: %w", from, to, err)
			}
		}
	}
	probes := append([]int(nil), data.Support...)
	probes = append(probes, tierCleanProbeIdx(scn.Seed, scn.N, data)...)
	watch := make([]string, len(probes))
	for i, idx := range probes {
		watch[i] = data.Keys[idx]
	}
	for _, span := range [][2]int{{0, scn.W - 1}, {0, 0}} {
		fromAge, toAge := span[0], span[1]
		truth, err := pointTruthFor(scn.N, data, scn.W-toAge, scn.W-fromAge)
		if err != nil {
			return err
		}
		answers, err := router.PointQueryMulti(fromAge, toAge, watch, pointThreshold)
		if err != nil {
			return fmt.Errorf("routed point span [%d,%d]: %w", fromAge, toAge, err)
		}
		for i, idx := range probes {
			if err := checkPointAnswer(truth, idx, answers[i]); err != nil {
				return fmt.Errorf("routed point span [%d,%d]: %w", fromAge, toAge, err)
			}
		}
	}

	// (3) Conservation and clean books, per shard.
	for s := 0; s < tierShards; s++ {
		st := res.Roots[s].Stats()
		if st.Applied+st.ShedFolds != res.Captured[s] {
			return fmt.Errorf("shard %d conservation: root applied %d + shed folds %d != leaf captures %d",
				s, st.Applied, st.ShedFolds, res.Captured[s])
		}
		if st.Frames != st.Applied+st.Duplicates+st.Dropped+st.Rejected {
			return fmt.Errorf("shard %d frame identity violated: %d frames != %d applied + %d dup + %d dropped + %d rejected",
				s, st.Frames, st.Applied, st.Duplicates, st.Dropped, st.Rejected)
		}
		if st.Rejected != 0 || st.Dropped != 0 {
			return fmt.Errorf("shard %d root rejected %d / dropped %d upward frames", s, st.Rejected, st.Dropped)
		}
		if s == scn.KillShard && st.Duplicates < 1 {
			return fmt.Errorf("kill-shard root saw no duplicates; the restored relay's upward replay should dedup: %+v", st)
		}
		for r := 0; r < tierRelays; r++ {
			rs := res.Relays[s][r]
			if rs.ForwardErrors != 0 || rs.Rejected != 0 || rs.Dropped != 0 {
				return fmt.Errorf("relay %d/%d books: %+v", s, r, rs)
			}
			if rs.Queued != 0 || rs.Staged != 0 || rs.Unstable != 0 {
				return fmt.Errorf("relay %d/%d not drained at close: %+v", s, r, rs)
			}
		}
	}
	return nil
}

// tierCleanProbeIdx picks non-planted key indices for the watch list,
// seeded the same way as the point-query soak's clean probes.
func tierCleanProbeIdx(seed uint64, n int, d *StreamData) []int {
	hot := make(map[int]bool, len(d.Support))
	for _, j := range d.Support {
		hot[j] = true
	}
	rng := xrand.New(seed).Split(0x9b0be5)
	seen := make(map[int]bool, tierCleanProbes)
	out := make([]int, 0, tierCleanProbes)
	for len(out) < tierCleanProbes {
		j := rng.Intn(n)
		if hot[j] || seen[j] {
			continue
		}
		seen[j] = true
		out = append(out, j)
	}
	return out
}
