package simtest

import (
	"flag"
	"testing"

	"csoutlier"
	"csoutlier/internal/xrand/xrandtest"
)

// Harness flags. CI runs the small default; nightly/soak runs raise
// -sim.count; a failure is replayed exactly with -sim.replay.
var (
	flagCount = flag.Int("sim.count", 25,
		"number of randomized scenarios TestSim checks")
	flagSeed = flag.Uint64("sim.seed", 0,
		"base seed for scenario generation (0 = default; takes precedence over -seed)")
	flagReplay = flag.String("sim.replay", "",
		"replay a single scenario from its failure-message one-liner instead of generating scenarios")
)

// defaultBase is the stable seed CI sweeps from; scenario i of a run is
// Generate(base, i), so a failure is pinned by (base, line) and the line
// alone suffices to replay it.
const defaultBase = 0xc50d_e7ec

func baseSeed(t *testing.T) uint64 {
	if *flagSeed != 0 {
		return *flagSeed
	}
	return xrandtest.Seed(t, defaultBase)
}

// TestSim is the harness entry point: -sim.count randomized scenarios
// through the real distributed pipeline, each differentially compared to
// the exact oracle and put through the metamorphic invariants. On failure
// it shrinks the scenario and prints a replayable one-liner.
func TestSim(t *testing.T) {
	if *flagReplay != "" {
		scn, err := ParseScenario(*flagReplay)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckScenario(scn, Hooks{}); err != nil {
			t.Fatalf("replayed scenario failed: %v\nscenario: %s", err, scn)
		}
		return
	}

	base := baseSeed(t)
	for i := 0; i < *flagCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := Generate(base, i)
			if err := CheckScenario(scn, Hooks{}); err != nil {
				min := Shrink(scn, Hooks{}, 40)
				t.Fatalf("scenario %d (base seed %d) failed: %v\n"+
					"replay:   go test ./internal/simtest -run 'TestSim$' -sim.replay='%s'\n"+
					"original: %s\nshrunk:   %s",
					i, base, err, min, scn, min)
			}
		})
	}
}

// TestSimDeterminism pins the bit-level reproducibility the replay story
// rests on: the same (base, index) must generate byte-identical scenarios,
// and a checked scenario must pass (or fail) identically across runs.
func TestSimDeterminism(t *testing.T) {
	base := baseSeed(t)
	for i := 0; i < 5; i++ {
		a, b := Generate(base, i), Generate(base, i)
		if a.String() != b.String() {
			t.Fatalf("Generate(%d, %d) not deterministic:\n%s\n%s", base, i, a, b)
		}
		rt, err := ParseScenario(a.String())
		if err != nil {
			t.Fatalf("scenario %d does not round-trip: %v", i, err)
		}
		if rt.String() != a.String() {
			t.Fatalf("round-trip changed scenario:\n%s\n%s", a, rt)
		}
	}
	// Same scenario, two full pipeline runs — both must agree.
	scn := Generate(base, 0)
	for run := 0; run < 2; run++ {
		if err := CheckScenario(scn, Hooks{}); err != nil {
			t.Fatalf("run %d: %v\nscenario: %s", run, err, scn)
		}
	}
}

// TestScenarioRoundTrip covers the parser against hand-written lines,
// including fault schedules and rejection of invalid configurations.
func TestScenarioRoundTrip(t *testing.T) {
	good := "v1 seed=42 n=200 s=3 l=4 m=80 k=3 mode=-250 alpha=1.5 noise=100 ens=sparse faults=.fh."
	scn, err := ParseScenario(good)
	if err != nil {
		t.Fatal(err)
	}
	if scn.L != 4 || scn.Faults[1] != FaultFlaky || scn.Faults[2] != FaultHang {
		t.Fatalf("parsed %+v", scn)
	}
	if scn.String() != good {
		t.Fatalf("round trip: %q != %q", scn.String(), good)
	}

	for _, bad := range []string{
		"",
		"v0 seed=1",
		"v1 seed=x",
		"v1 seed=1 n=200 s=3 l=2 m=80 k=3 ens=gaussian faults=.",  // faults≠L
		"v1 seed=1 n=200 s=3 l=1 m=80 k=3 ens=gaussian faults=h",  // nobody survives
		"v1 seed=1 n=200 s=80 l=1 m=80 k=3 ens=gaussian faults=.", // S > N/4
		"v1 seed=1 n=60 s=3 l=1 m=80 k=3 ens=gaussian faults=.",   // M > N
		"v1 seed=1 n=200 s=3 l=1 m=80 k=3 ens=banana faults=.",    // ensemble
		"v1 seed=1 n=200 s=3 l=1 m=80 k=3 ens=gaussian faults=.x", // fault rune
		"v1 seed=1 n=200 s=3 l=1 m=80 k=3 bogus=1 faults=.",       // unknown key
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted invalid line", bad)
		}
	}
}

// TestSimCatchesInjectedBug is the harness's self-test: a seeded recovery
// bug (the classic off-by-one that drops the weakest recovered outlier,
// i.e. a too-small BOMP support) must be caught by the differential
// oracle on a healthy scenario, and the shrunken reproduction must still
// expose it.
func TestSimCatchesInjectedBug(t *testing.T) {
	bug := Hooks{MutateReport: func(r *csoutlier.Report) {
		if len(r.Outliers) > 0 {
			r.Outliers = r.Outliers[:len(r.Outliers)-1]
		}
	}}

	base := baseSeed(t)
	caught := 0
	for i := 0; i < 10; i++ {
		scn := Generate(base, i)
		err := CheckScenario(scn, bug)
		if err == nil {
			// Scenarios whose oracle answer is empty (k outliers requested,
			// none recovered… impossible here since S≥1,K≥1) would slip
			// through; with S,K ≥ 1 every scenario must catch the bug.
			t.Fatalf("scenario %d: injected off-by-one not caught\nscenario: %s", i, scn)
		}
		caught++
		if i == 0 {
			// The shrunken scenario must still expose the bug, and its
			// one-liner must replay to the same failure.
			min := Shrink(scn, bug, 30)
			if CheckScenario(min, bug) == nil {
				t.Fatalf("shrunk scenario no longer fails: %s", min)
			}
			rt, err := ParseScenario(min.String())
			if err != nil {
				t.Fatal(err)
			}
			if CheckScenario(rt, bug) == nil {
				t.Fatalf("replayed shrunk scenario passes: %s", min)
			}
			t.Logf("injected bug shrunk to: %s", min)
		}
	}
	if caught != 10 {
		t.Fatalf("only %d/10 scenarios caught the injected bug", caught)
	}
}
