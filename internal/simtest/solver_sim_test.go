package simtest

import (
	"flag"
	"testing"
)

// The solver cross-check runs every solver (plus the auto selector)
// twice per scenario, including the heavy basis-pursuit LP, so its
// default sweep is smaller than TestSim's.
var flagSolverCount = flag.Int("sim.solvercount", 8,
	"number of randomized scenarios TestSimSolvers cross-checks across every solver")

// TestSimSolvers is the multi-solver differential suite: -sim.solvercount
// randomized scenarios, each answered by every recovery solver and by
// the automatic selector, all compared against the exact centralized
// oracle. A failing scenario prints the same replayable one-liner as
// TestSim; -sim.replay runs the cross-check on that single scenario.
func TestSimSolvers(t *testing.T) {
	if *flagReplay != "" {
		scn, err := ParseScenario(*flagReplay)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckSolvers(scn); err != nil {
			t.Fatalf("replayed scenario failed solver cross-check: %v\nscenario: %s", err, scn)
		}
		return
	}

	base := baseSeed(t)
	for i := 0; i < *flagSolverCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := Generate(base, i)
			if err := CheckSolvers(scn); err != nil {
				t.Fatalf("scenario %d (base seed %d) failed solver cross-check: %v\n"+
					"replay:   go test ./internal/simtest -run 'TestSimSolvers$' -sim.replay='%s'\n"+
					"scenario: %s",
					i, base, err, scn, scn)
			}
		})
	}
}
