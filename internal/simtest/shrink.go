package simtest

import "csoutlier"

// Shrink greedily minimizes a failing scenario: it tries progressively
// simpler variants (fewer nodes, no faults, fewer outliers, smaller key
// space, no noise/bias/tail, plain Gaussian ensemble) and keeps any
// variant that still fails CheckScenario, until no candidate fails or the
// re-check budget runs out. Because scenarios are fully deterministic,
// "still fails" is a pure function of the candidate, so the result is the
// same on every run — the shrunken line printed in a failure message is
// the one to debug.
//
// The measurement budget M is deliberately never reduced: shrinking M
// below the phase transition would manufacture a *different* failure
// (genuine undersampling) and mask the bug being minimized.
func Shrink(scn Scenario, h Hooks, budget int) Scenario {
	stillFails := func(c Scenario) bool {
		if budget <= 0 || c.validate() != nil {
			return false
		}
		budget--
		return CheckScenario(c, h) != nil
	}

	cur := scn
	for changed := true; changed && budget > 0; {
		changed = false
		for _, cand := range shrinkCandidates(cur) {
			if stillFails(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// shrinkCandidates proposes simpler variants of a scenario, most
// aggressive first. Every candidate keeps Seed and M fixed so it exercises
// the same measurement matrix regime as the original failure.
func shrinkCandidates(s Scenario) []Scenario {
	var out []Scenario
	add := func(c Scenario) { out = append(out, c) }

	// Collapse the cluster to one healthy node: removes transport, faults
	// and splitting from the picture in one step.
	if s.L > 1 {
		c := s
		c.L = 1
		c.Faults = []Fault{FaultNone}
		add(c)
	}
	// Clear the fault schedule but keep the node count.
	if hasFaults(s) {
		c := s
		c.Faults = make([]Fault, s.L)
		add(c)
	}
	// Halve, then decrement, the node count (dropping trailing nodes'
	// fault entries).
	for _, l := range []int{s.L / 2, s.L - 1} {
		if l >= 1 && l < s.L {
			c := s
			c.L = l
			c.Faults = append([]Fault(nil), s.Faults[:l]...)
			add(c)
		}
	}
	// Fewer planted outliers.
	for _, sp := range []int{1, s.S / 2, s.S - 1} {
		if sp >= 1 && sp < s.S {
			c := s
			c.S = sp
			add(c)
		}
	}
	// Smaller key space (floor keeps M ≤ N and S ≤ N/4 valid).
	floor := s.M
	if f := 4 * s.S; f > floor {
		floor = f
	}
	for _, n := range []int{floor, s.N / 2} {
		if n >= 4 && n < s.N {
			c := s
			c.N = n
			add(c)
		}
	}
	// Smaller query.
	if s.K > 1 {
		c := s
		c.K = 1
		add(c)
	}
	// Strip the continuous knobs one at a time.
	if s.Noise != 0 {
		c := s
		c.Noise = 0
		add(c)
	}
	if s.Mode != 0 {
		c := s
		c.Mode = 0
		add(c)
	}
	if s.Alpha != 0 {
		c := s
		c.Alpha = 0
		add(c)
	}
	if s.Ens != csoutlier.Gaussian {
		c := s
		c.Ens = csoutlier.Gaussian
		add(c)
	}
	return out
}

func hasFaults(s Scenario) bool {
	for _, f := range s.Faults {
		if f != FaultNone {
			return true
		}
	}
	return false
}
