package simtest

import (
	"context"
	"fmt"
	"time"

	"csoutlier"
	"csoutlier/internal/cluster"
	"csoutlier/internal/recovery"
)

// Hooks lets a test corrupt the pipeline under the oracle's nose — the
// harness's self-test injects a recovery bug here and asserts the
// differential comparison catches it.
type Hooks struct {
	// MutateReport, when non-nil, rewrites the recovered report after the
	// pipeline produces it and before the oracle sees it.
	MutateReport func(*csoutlier.Report)
}

// nodeTimeout bounds each sketch attempt against one simulated node.
// Loopback round-trips complete in microseconds; the value only controls
// how fast hung nodes are declared dead, i.e. the harness's wall-clock.
const nodeTimeout = 150 * time.Millisecond

// Sketcher builds the scenario's consensus sketcher over the public API.
// The matrix seed is decorrelated from the data seed: the measurement
// ensemble must be independent of the signal it measures.
func (s Scenario) Sketcher(keys []string) (*csoutlier.Sketcher, error) {
	return csoutlier.NewSketcher(keys, csoutlier.Config{
		M:    s.M,
		Seed: s.Seed ^ 0x9e3779b97f4a7c15,
		// Enough iterations for the bias column plus every planted
		// outlier, even when the query's k is small — the differential
		// oracle demands the exact answer, and the mode estimate only
		// locks after ≈ s+1 iterations (Figure 4b).
		MaxIterations: recoveryBudget(s.S, s.K),
		Ensemble:      s.Ens,
	})
}

func recoveryBudget(s, k int) int {
	b := recovery.IterationBudget(k)
	if min := s + 3; b < min {
		b = min
	}
	return b
}

// RunCluster executes the scenario's distributed pipeline for real: one
// chaos-wrapped TCP server per node, fault schedule applied, collection
// and recovery through the public DetectCluster API. The returned report
// is exactly what a production aggregator would have answered.
func RunCluster(scn Scenario, data *Data, h Hooks) (*csoutlier.ClusterReport, error) {
	sk, err := scn.Sketcher(data.Keys)
	if err != nil {
		return nil, err
	}
	addrs := make([]string, scn.L)
	for i := 0; i < scn.L; i++ {
		srv, err := cluster.StartChaos(cluster.NewLocalNode(NodeID(i), data.Slices[i]))
		if err != nil {
			return nil, err
		}
		defer srv.Stop()
		switch scn.Faults[i] {
		case FaultFlaky:
			srv.FailFirst(1)
		case FaultHang:
			srv.SetBehavior(cluster.BehaveHang)
		case FaultCrash:
			srv.SetBehavior(cluster.BehaveCrash)
		case FaultGarbage:
			srv.SetBehavior(cluster.BehaveGarbage)
		}
		addrs[i] = srv.Addr()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := sk.DetectCluster(ctx, addrs, scn.K, csoutlier.ClusterOptions{
		MinNodes:    scn.IncludedNodes(),
		NodeTimeout: nodeTimeout,
		MaxAttempts: 2,
		// Scenario-scoped retry jitter: pull-path replays are
		// deterministic for a given scenario seed (| 1 keeps it
		// non-zero, since 0 means "per-address default seeding").
		BackoffSeed: scn.Seed | 1,
	})
	if err != nil {
		return nil, fmt.Errorf("simtest: DetectCluster: %w", err)
	}
	if h.MutateReport != nil {
		h.MutateReport(&rep.Report)
	}
	return rep, nil
}

// CheckScenario is the harness's unit of work: materialize the scenario,
// run the real distributed pipeline under its fault schedule, compare
// the answer against the exact centralized oracle, then put the
// in-process pipeline through the metamorphic invariants. The returned
// error describes the first divergence found.
func CheckScenario(scn Scenario, h Hooks) error {
	data, err := scn.Build()
	if err != nil {
		return err
	}
	rep, err := RunCluster(scn, data, h)
	if err != nil {
		return err
	}
	if err := CompareToOracle(scn, data, rep); err != nil {
		return fmt.Errorf("differential oracle: %w", err)
	}
	if err := CheckInvariants(scn, data, h); err != nil {
		return fmt.Errorf("invariant: %w", err)
	}
	return nil
}
