package simtest

import (
	"flag"
	"strings"
	"testing"
)

var (
	flagStreamCount = flag.Int("sim.streamcount", 3,
		"number of randomized streaming scenarios TestStreamSoak checks")
	flagStreamCrashCount = flag.Int("sim.streamcrashcount", 2,
		"number of randomized crash-restart scenarios TestStreamCrashSoak checks")
	flagStreamChurnCount = flag.Int("sim.streamchurncount", 2,
		"number of randomized membership-churn scenarios TestStreamChurnSoak checks")
	flagStreamPointQCount = flag.Int("sim.streampointqcount", 2,
		"number of randomized point-query scenarios TestStreamPointQSoak checks")
	flagStreamTierCount = flag.Int("sim.streamtiercount", 2,
		"number of randomized hierarchical-tier scenarios TestStreamTierSoak checks")
	flagStreamReplay = flag.String("sim.streamreplay", "",
		"replay a single streaming scenario from its failure-message one-liner (any flavor: stream1, streamcrash1, streamchurn1, streampointq1, streamtier1)")
)

// replayStream dispatches a -sim.streamreplay line to the scenario
// flavor its prefix names. Returns false if the line is empty.
func replayStream(t *testing.T, line string) bool {
	t.Helper()
	if line == "" {
		return false
	}
	prefix, _, _ := strings.Cut(strings.TrimSpace(line), " ")
	var err error
	switch prefix {
	case "stream1":
		var scn StreamScenario
		if scn, err = ParseStreamScenario(line); err == nil {
			err = CheckStreamScenario(scn)
		}
	case "streamcrash1":
		var scn StreamCrashScenario
		if scn, err = ParseStreamCrashScenario(line); err == nil {
			err = CheckStreamCrashScenario(scn)
		}
	case "streamchurn1":
		var scn StreamChurnScenario
		if scn, err = ParseStreamChurnScenario(line); err == nil {
			err = CheckStreamChurnScenario(scn)
		}
	case "streampointq1":
		var scn StreamPointQScenario
		if scn, err = ParseStreamPointQScenario(line); err == nil {
			err = CheckStreamPointQScenario(scn)
		}
	case "streamtier1":
		var scn StreamTierScenario
		if scn, err = ParseStreamTierScenario(line); err == nil {
			err = CheckStreamTierScenario(scn)
		}
	default:
		t.Fatalf("unknown streaming scenario prefix %q", prefix)
	}
	if err != nil {
		t.Fatalf("replayed streaming scenario failed: %v\nscenario: %s", err, line)
	}
	return true
}

// TestStreamSoak is the streaming harness entry point: randomized
// scenarios of ≥ 4 nodes pushing window-tagged deltas through chaos TCP
// proxies into a live aggregator, with a scheduled node crash/restart
// and injected duplicate flushes. Each scenario's per-window aggregator
// sketches must be bit-identical to a shadow mirror of the exact fold
// sequence, and the recovered outliers must match the exact centralized
// oracle for every contiguous window span.
func TestStreamSoak(t *testing.T) {
	if replayStream(t, *flagStreamReplay) {
		return
	}
	base := baseSeed(t)
	for i := 0; i < *flagStreamCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := GenerateStream(base, i)
			if err := CheckStreamScenario(scn); err != nil {
				t.Fatalf("streaming scenario %d (base seed %d) failed: %v\n"+
					"replay: go test ./internal/simtest -run 'TestStreamSoak$' -sim.streamreplay='%s'",
					i, base, err, scn)
			}
		})
	}
}

// TestStreamCrashSoak is the crash-restart soak entry point: randomized
// scenarios where the aggregator snapshots at a seeded flush, dies at a
// later one, and is restored on a fresh listener with node-side
// retention replay. Post-restore windows must be bit-identical to an
// uninterrupted run and the outliers exact on every window span.
func TestStreamCrashSoak(t *testing.T) {
	if replayStream(t, *flagStreamReplay) {
		return
	}
	base := baseSeed(t)
	for i := 0; i < *flagStreamCrashCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := GenerateStreamCrash(base, i)
			if err := CheckStreamCrashScenario(scn); err != nil {
				t.Fatalf("crash-restart scenario %d (base seed %d) failed: %v\n"+
					"replay: go test ./internal/simtest -run 'TestStreamCrashSoak$' -sim.streamreplay='%s'",
					i, base, err, scn)
			}
		})
	}
}

// TestStreamChurnSoak is the membership-churn soak entry point:
// randomized scenarios with a mid-run join, a graceful leave, and a
// liveness eviction with resurrection, all under chaos TCP. Windows
// must stay bit-identical to the shadow fold and every capture must be
// folded exactly once (conservation).
func TestStreamChurnSoak(t *testing.T) {
	if replayStream(t, *flagStreamReplay) {
		return
	}
	base := baseSeed(t)
	for i := 0; i < *flagStreamChurnCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := GenerateStreamChurn(base, i)
			if err := CheckStreamChurnScenario(scn); err != nil {
				t.Fatalf("membership-churn scenario %d (base seed %d) failed: %v\n"+
					"replay: go test ./internal/simtest -run 'TestStreamChurnSoak$' -sim.streamreplay='%s'",
					i, base, err, scn)
			}
		})
	}
}

// TestStreamPointQSoak is the point-query soak entry point: randomized
// scenarios pushing window-tagged deltas into a live count-sketch
// aggregator, with recovery-free point queries issued both mid-run and
// over every window span at the end. Every answer must agree with the
// exact centralized oracle: planted outliers recovered to matchTol and
// flagged, clean keys on the mode and unflagged; the hybrid span top-k
// path must stay exact on the same ring.
func TestStreamPointQSoak(t *testing.T) {
	if replayStream(t, *flagStreamReplay) {
		return
	}
	base := baseSeed(t)
	for i := 0; i < *flagStreamPointQCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := GenerateStreamPointQ(base, i)
			if err := CheckStreamPointQScenario(scn); err != nil {
				t.Fatalf("point-query scenario %d (base seed %d) failed: %v\n"+
					"replay: go test ./internal/simtest -run 'TestStreamPointQSoak$' -sim.streamreplay='%s'",
					i, base, err, scn)
			}
		})
	}
}

// TestStreamTierSoak is the hierarchical-tier soak entry point:
// randomized 2-tier × 2-shard scenarios — per shard, leaf data centers
// pushing count-sketch deltas through chaos TCP proxies into regional
// relays that forward folded windows to a shard root — with a mid-run
// relay kill/restore. Each shard root's windows must be bit-identical
// to a flat shadow fold, routed span and point answers exact against
// the centralized oracle, and every leaf capture folded at its root
// exactly once.
func TestStreamTierSoak(t *testing.T) {
	if replayStream(t, *flagStreamReplay) {
		return
	}
	base := baseSeed(t)
	for i := 0; i < *flagStreamTierCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := GenerateStreamTier(base, i)
			if err := CheckStreamTierScenario(scn); err != nil {
				t.Fatalf("hierarchical-tier scenario %d (base seed %d) failed: %v\n"+
					"replay: go test ./internal/simtest -run 'TestStreamTierSoak$' -sim.streamreplay='%s'",
					i, base, err, scn)
			}
		})
	}
}

// TestStreamTierScenarioRoundTrip covers the tier scenario codec and
// generator invariants.
func TestStreamTierScenarioRoundTrip(t *testing.T) {
	base := baseSeed(t)
	for i := 0; i < 8; i++ {
		scn := GenerateStreamTier(base, i)
		if err := scn.validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v\n%s", i, err, scn)
		}
		if scn.M() > scn.N/4 {
			t.Fatalf("scenario %d loses the per-shard ≥2× compression floor: %s", i, scn)
		}
		if scn.KillWindow < 2 || scn.KillFlush < 1 {
			t.Fatalf("scenario %d kill point loses nothing: %s", i, scn)
		}
		rt, err := ParseStreamTierScenario(scn.String())
		if err != nil {
			t.Fatalf("scenario %d does not round-trip: %v\n%s", i, err, scn)
		}
		if rt.String() != scn.String() {
			t.Fatalf("round-trip changed scenario:\n%s\n%s", scn, rt)
		}
		if b := GenerateStreamTier(base, i); b.String() != scn.String() {
			t.Fatalf("GenerateStreamTier(%d, %d) not deterministic", base, i)
		}
	}
	for _, bad := range []string{
		"",
		"streamtier1 seed=1",
		"streamtier1 seed=1 n=1000 s=2 l=4 w=2 d=7 wid=96 k=2 mode=50 noise=0 ks=0 kw=2 kf=1 proxy=6000:12000",  // M > N/4
		"streamtier1 seed=1 n=3000 s=2 l=4 w=2 d=7 wid=96 k=2 mode=50 noise=0 ks=0 kw=1 kf=1 proxy=6000:12000", // kill before any forward
		"streamtier1 seed=1 n=3000 s=2 l=4 w=2 d=7 wid=96 k=2 mode=50 noise=0 ks=0 kw=2 kf=0 proxy=6000:12000", // nothing lost
		"streamtier1 seed=1 n=3000 s=2 l=4 w=2 d=7 wid=96 k=2 mode=50 noise=0 ks=2 kw=2 kf=1 proxy=6000:12000", // shard out of range
		"streamtier1 seed=1 n=3000 s=2 l=4 w=2 d=7 wid=96 k=2 mode=0 noise=0 ks=0 kw=2 kf=1 proxy=6000:12000",  // zero mode
	} {
		if _, err := ParseStreamTierScenario(bad); err == nil {
			t.Errorf("ParseStreamTierScenario(%q) accepted invalid line", bad)
		}
	}
}

// TestStreamPointQScenarioRoundTrip covers the point-query scenario
// codec and generator invariants.
func TestStreamPointQScenarioRoundTrip(t *testing.T) {
	base := baseSeed(t)
	for i := 0; i < 8; i++ {
		scn := GenerateStreamPointQ(base, i)
		if err := scn.validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v\n%s", i, err, scn)
		}
		if scn.M() != scn.Depth*scn.Width || scn.M() > scn.N/2 {
			t.Fatalf("scenario %d loses the ≥2× compression floor: %s", i, scn)
		}
		rt, err := ParseStreamPointQScenario(scn.String())
		if err != nil {
			t.Fatalf("scenario %d does not round-trip: %v\n%s", i, err, scn)
		}
		if rt.String() != scn.String() {
			t.Fatalf("round-trip changed scenario:\n%s\n%s", scn, rt)
		}
		if b := GenerateStreamPointQ(base, i); b.String() != scn.String() {
			t.Fatalf("GenerateStreamPointQ(%d, %d) not deterministic", base, i)
		}
	}
	for _, bad := range []string{
		"",
		"streampointq1 seed=1",
		"streampointq1 seed=1 n=100 s=2 l=3 w=2 d=7 wid=96 k=2 mode=50 noise=0",  // M > N
		"streampointq1 seed=1 n=2000 s=2 l=3 w=2 d=0 wid=96 k=2 mode=50 noise=0", // depth 0
		"streampointq1 seed=1 n=2000 s=2 l=3 w=2 d=7 wid=96 k=2 mode=0 noise=0",  // zero mode
	} {
		if _, err := ParseStreamPointQScenario(bad); err == nil {
			t.Errorf("ParseStreamPointQScenario(%q) accepted invalid line", bad)
		}
	}
}

// TestStreamCrashScenarioRoundTrip covers the crash scenario codec and
// generator invariants.
func TestStreamCrashScenarioRoundTrip(t *testing.T) {
	base := baseSeed(t)
	for i := 0; i < 8; i++ {
		scn := GenerateStreamCrash(base, i)
		if err := scn.validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v\n%s", i, err, scn)
		}
		if scn.CrashFlush <= scn.SnapFlush {
			t.Fatalf("scenario %d loses no frames: %s", i, scn)
		}
		rt, err := ParseStreamCrashScenario(scn.String())
		if err != nil {
			t.Fatalf("scenario %d does not round-trip: %v\n%s", i, err, scn)
		}
		if rt.String() != scn.String() {
			t.Fatalf("round-trip changed scenario:\n%s\n%s", scn, rt)
		}
		if b := GenerateStreamCrash(base, i); b.String() != scn.String() {
			t.Fatalf("GenerateStreamCrash(%d, %d) not deterministic", base, i)
		}
	}
	for _, bad := range []string{
		"",
		"stream1 seed=1",
		"streamcrash1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian cw=9 snap=0 crash=1 proxy=4096:8192",  // crash window
		"streamcrash1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian cw=1 snap=3 crash=3 proxy=4096:8192",  // nothing lost
		"streamcrash1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian cw=1 snap=0 crash=12 proxy=4096:8192", // flush out of range
	} {
		if _, err := ParseStreamCrashScenario(bad); err == nil {
			t.Errorf("ParseStreamCrashScenario(%q) accepted invalid line", bad)
		}
	}
}

// TestStreamChurnScenarioRoundTrip covers the churn scenario codec and
// generator invariants.
func TestStreamChurnScenarioRoundTrip(t *testing.T) {
	base := baseSeed(t)
	for i := 0; i < 8; i++ {
		scn := GenerateStreamChurn(base, i)
		if err := scn.validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v\n%s", i, err, scn)
		}
		if scn.LeaveNode == scn.EvictNode {
			t.Fatalf("scenario %d leave and evict coincide: %s", i, scn)
		}
		rt, err := ParseStreamChurnScenario(scn.String())
		if err != nil {
			t.Fatalf("scenario %d does not round-trip: %v\n%s", i, err, scn)
		}
		if rt.String() != scn.String() {
			t.Fatalf("round-trip changed scenario:\n%s\n%s", scn, rt)
		}
		if b := GenerateStreamChurn(base, i); b.String() != scn.String() {
			t.Fatalf("GenerateStreamChurn(%d, %d) not deterministic", base, i)
		}
	}
	for _, bad := range []string{
		"",
		"streamchurn1 seed=1 n=200 s=3 l=4 w=3 m=80 k=3 mode=50 ens=gaussian join=1 leave=0@1 evict=1@1 proxy=4096:8192", // join before window 2
		"streamchurn1 seed=1 n=200 s=3 l=4 w=3 m=80 k=3 mode=50 ens=gaussian join=2 leave=0@1 evict=0@1 proxy=4096:8192", // leave==evict
		"streamchurn1 seed=1 n=200 s=3 l=4 w=3 m=80 k=3 mode=50 ens=gaussian join=2 leave=0@1 evict=1@3 proxy=4096:8192", // evict too late
	} {
		if _, err := ParseStreamChurnScenario(bad); err == nil {
			t.Errorf("ParseStreamChurnScenario(%q) accepted invalid line", bad)
		}
	}
}

// TestStreamScenarioRoundTrip covers the streaming scenario codec and
// generator invariants: generated scenarios always include ≥ 4 nodes,
// a crash, a distinct dup node, and proxy budgets that pass a frame.
func TestStreamScenarioRoundTrip(t *testing.T) {
	base := baseSeed(t)
	for i := 0; i < 8; i++ {
		scn := GenerateStream(base, i)
		if scn.L < 4 {
			t.Fatalf("scenario %d has %d nodes, want ≥ 4: %s", i, scn.L, scn)
		}
		if scn.CrashNode == scn.DupNode {
			t.Fatalf("scenario %d crash and dup coincide: %s", i, scn)
		}
		if err := scn.validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v\n%s", i, err, scn)
		}
		rt, err := ParseStreamScenario(scn.String())
		if err != nil {
			t.Fatalf("scenario %d does not round-trip: %v\n%s", i, err, scn)
		}
		if rt.String() != scn.String() {
			t.Fatalf("round-trip changed scenario:\n%s\n%s", scn, rt)
		}
		b := GenerateStream(base, i)
		if b.String() != scn.String() {
			t.Fatalf("GenerateStream(%d, %d) not deterministic", base, i)
		}
	}
	for _, bad := range []string{
		"",
		"v1 seed=1",
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=0 ens=gaussian crash=0@1 dup=1 proxy=4096:8192",  // zero mode
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian crash=1@1 dup=1 proxy=4096:8192", // crash==dup
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian crash=0@9 dup=1 proxy=4096:8192", // crash window
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian crash=0@1 dup=1 proxy=16:32",     // budget < frame
	} {
		if _, err := ParseStreamScenario(bad); err == nil {
			t.Errorf("ParseStreamScenario(%q) accepted invalid line", bad)
		}
	}
}
