package simtest

import (
	"flag"
	"testing"
)

var (
	flagStreamCount = flag.Int("sim.streamcount", 3,
		"number of randomized streaming scenarios TestStreamSoak checks")
	flagStreamReplay = flag.String("sim.streamreplay", "",
		"replay a single streaming scenario from its failure-message one-liner")
)

// TestStreamSoak is the streaming harness entry point: randomized
// scenarios of ≥ 4 nodes pushing window-tagged deltas through chaos TCP
// proxies into a live aggregator, with a scheduled node crash/restart
// and injected duplicate flushes. Each scenario's per-window aggregator
// sketches must be bit-identical to a shadow mirror of the exact fold
// sequence, and the recovered outliers must match the exact centralized
// oracle for every contiguous window span.
func TestStreamSoak(t *testing.T) {
	if *flagStreamReplay != "" {
		scn, err := ParseStreamScenario(*flagStreamReplay)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckStreamScenario(scn); err != nil {
			t.Fatalf("replayed streaming scenario failed: %v\nscenario: %s", err, scn)
		}
		return
	}
	base := baseSeed(t)
	for i := 0; i < *flagStreamCount; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			scn := GenerateStream(base, i)
			if err := CheckStreamScenario(scn); err != nil {
				t.Fatalf("streaming scenario %d (base seed %d) failed: %v\n"+
					"replay: go test ./internal/simtest -run 'TestStreamSoak$' -sim.streamreplay='%s'",
					i, base, err, scn)
			}
		})
	}
}

// TestStreamScenarioRoundTrip covers the streaming scenario codec and
// generator invariants: generated scenarios always include ≥ 4 nodes,
// a crash, a distinct dup node, and proxy budgets that pass a frame.
func TestStreamScenarioRoundTrip(t *testing.T) {
	base := baseSeed(t)
	for i := 0; i < 8; i++ {
		scn := GenerateStream(base, i)
		if scn.L < 4 {
			t.Fatalf("scenario %d has %d nodes, want ≥ 4: %s", i, scn.L, scn)
		}
		if scn.CrashNode == scn.DupNode {
			t.Fatalf("scenario %d crash and dup coincide: %s", i, scn)
		}
		if err := scn.validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v\n%s", i, err, scn)
		}
		rt, err := ParseStreamScenario(scn.String())
		if err != nil {
			t.Fatalf("scenario %d does not round-trip: %v\n%s", i, err, scn)
		}
		if rt.String() != scn.String() {
			t.Fatalf("round-trip changed scenario:\n%s\n%s", scn, rt)
		}
		b := GenerateStream(base, i)
		if b.String() != scn.String() {
			t.Fatalf("GenerateStream(%d, %d) not deterministic", base, i)
		}
	}
	for _, bad := range []string{
		"",
		"v1 seed=1",
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=0 ens=gaussian crash=0@1 dup=1 proxy=4096:8192",  // zero mode
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian crash=1@1 dup=1 proxy=4096:8192", // crash==dup
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian crash=0@9 dup=1 proxy=4096:8192", // crash window
		"stream1 seed=1 n=200 s=3 l=4 w=2 m=80 k=3 mode=50 ens=gaussian crash=0@1 dup=1 proxy=16:32",     // budget < frame
	} {
		if _, err := ParseStreamScenario(bad); err == nil {
			t.Errorf("ParseStreamScenario(%q) accepted invalid line", bad)
		}
	}
}
