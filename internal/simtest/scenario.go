// Package simtest is a deterministic simulation harness for the whole
// sketch→aggregate→recover pipeline.
//
// A Scenario is a randomized but fully seeded configuration of the
// distributed outlier-detection problem: key-space size, sparsity, bias,
// magnitude tail shape, node count, data split, measurement budget and a
// per-node fault schedule. The harness materializes the scenario's data,
// runs the REAL pipeline end to end — per-node sketching behind the TCP
// transport, fault-injected collection via the public DetectCluster API,
// aggregation, BOMP recovery — and differentially compares the answer
// against an exact centralized oracle, plus a set of metamorphic
// invariants (re-partitioning linearity, node-order permutation, scale
// equivariance, mode-shift invariance).
//
// Scenarios serialize to a one-line string (Scenario.String /
// ParseScenario), so any failure is replayable:
//
//	go test ./internal/simtest -run 'TestSim$' -sim.replay='v1 seed=... n=... ...'
//
// The failing test prints that line, after first shrinking the scenario
// to the smallest variant that still fails.
package simtest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"csoutlier"
	"csoutlier/internal/linalg"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// Fault is one node's scheduled behavior during sketch collection.
type Fault int

// The fault schedule's vocabulary. Flaky nodes drop the connection on
// their first sketch exchange and then answer (transport-level retry
// recovers them); hang/crash/garbage nodes never deliver a sketch and are
// deterministically excluded from the aggregate.
const (
	FaultNone Fault = iota
	FaultFlaky
	FaultHang
	FaultCrash
	FaultGarbage
)

// Included reports whether a node with this fault still contributes its
// sketch to the aggregate.
func (f Fault) Included() bool { return f == FaultNone || f == FaultFlaky }

var faultRunes = map[Fault]byte{
	FaultNone: '.', FaultFlaky: 'f', FaultHang: 'h', FaultCrash: 'c', FaultGarbage: 'g',
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultFlaky:
		return "flaky"
	case FaultHang:
		return "hang"
	case FaultCrash:
		return "crash"
	case FaultGarbage:
		return "garbage"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Scenario is one fully specified simulation: everything the harness
// needs to regenerate the data, the cluster and the faults bit-for-bit.
type Scenario struct {
	Seed  uint64  // master seed for data, split and measurement matrix
	N     int     // key-space size
	S     int     // planted outliers
	L     int     // node count
	M     int     // measurement budget (sketch length)
	K     int     // query size (may exceed S: the |O| < k case)
	Mode  float64 // planted bias b
	Alpha float64 // magnitude tail: 0 = uniform, else Pareto shape
	Noise float64 // per-node zero-sum noise amplitude
	Ens   csoutlier.Ensemble
	// Faults holds one entry per node, in node order.
	Faults []Fault
}

// measurementsFor returns a measurement budget comfortably above the
// phase transition for recovering s outliers plus the bias in an
// N-dimensional key space (M = O(s·log N), Theorem 1), with extra margin
// for the structured ensembles whose transition sits slightly later.
func measurementsFor(n, s int, ens csoutlier.Ensemble) int {
	c := 3.2
	if ens != csoutlier.Gaussian {
		c = 4.0
	}
	m := int(math.Ceil(c * float64(s+2) * math.Log(float64(n))))
	if m < 16 {
		m = 16
	}
	return m
}

// Generate derives scenario index from the base seed. Equal (base, index)
// pairs yield identical scenarios on every platform.
func Generate(base uint64, index int) Scenario {
	rng := xrand.New(base).Split(uint64(index) + 0x51017e57)
	scn := Scenario{Seed: rng.Uint64()}

	scn.S = 1 + rng.Intn(8)
	scn.N = 120 + rng.Intn(481)
	switch rng.Intn(4) {
	case 0:
		scn.Ens = csoutlier.SparseRademacher
	case 1:
		scn.Ens = csoutlier.SRHT
	default:
		scn.Ens = csoutlier.Gaussian
	}
	// Keep the budget a strict compression; shed sparsity if the key
	// space drawn is too small for the margin the sweep wants.
	for {
		scn.M = measurementsFor(scn.N, scn.S, scn.Ens)
		if scn.M <= scn.N*3/5 || scn.S == 1 {
			break
		}
		scn.S--
	}
	scn.K = 1 + rng.Intn(scn.S+2)

	if rng.Float64() < 0.2 {
		scn.Mode = 0
	} else {
		scn.Mode = 100 + 4900*rng.Float64()
		if rng.Float64() < 0.5 {
			scn.Mode = -scn.Mode
		}
	}
	switch rng.Intn(6) {
	case 0:
		scn.Alpha = 0.7
	case 1:
		scn.Alpha = 1.0
	case 2:
		scn.Alpha = 1.5
	default:
		scn.Alpha = 0 // uniform magnitudes
	}

	scn.L = 1 + rng.Intn(8)
	if rng.Float64() < 0.75 {
		scn.Noise = (math.Abs(scn.Mode) + 500) * (0.1 + 2*rng.Float64())
	}

	scn.Faults = make([]Fault, scn.L)
	if scn.L > 1 && rng.Float64() < 0.45 {
		nf := 1 + rng.Intn(2)
		if nf > scn.L-1 {
			nf = scn.L - 1
		}
		for _, i := range rng.Perm(scn.L)[:nf] {
			scn.Faults[i] = Fault(1 + rng.Intn(4))
		}
	}
	return scn
}

// IncludedNodes returns how many nodes deliver a sketch.
func (s Scenario) IncludedNodes() int {
	n := 0
	for _, f := range s.Faults {
		if f.Included() {
			n++
		}
	}
	return n
}

// NodeID names node i. IDs sort in node order for L ≤ 100 nodes.
func NodeID(i int) string { return fmt.Sprintf("node%02d", i) }

// String encodes the scenario as a replayable one-liner.
func (s Scenario) String() string {
	faults := make([]byte, len(s.Faults))
	for i, f := range s.Faults {
		faults[i] = faultRunes[f]
	}
	ens := "gaussian"
	switch s.Ens {
	case csoutlier.SparseRademacher:
		ens = "sparse"
	case csoutlier.SRHT:
		ens = "srht"
	}
	return fmt.Sprintf("v1 seed=%d n=%d s=%d l=%d m=%d k=%d mode=%g alpha=%g noise=%g ens=%s faults=%s",
		s.Seed, s.N, s.S, s.L, s.M, s.K, s.Mode, s.Alpha, s.Noise, ens, faults)
}

// ParseScenario decodes a Scenario.String() line.
func ParseScenario(line string) (Scenario, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "v1" {
		return Scenario{}, fmt.Errorf("simtest: scenario line must start with %q", "v1")
	}
	var scn Scenario
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Scenario{}, fmt.Errorf("simtest: malformed field %q", f)
		}
		var err error
		switch key {
		case "seed":
			scn.Seed, err = strconv.ParseUint(val, 10, 64)
		case "n":
			scn.N, err = strconv.Atoi(val)
		case "s":
			scn.S, err = strconv.Atoi(val)
		case "l":
			scn.L, err = strconv.Atoi(val)
		case "m":
			scn.M, err = strconv.Atoi(val)
		case "k":
			scn.K, err = strconv.Atoi(val)
		case "mode":
			scn.Mode, err = strconv.ParseFloat(val, 64)
		case "alpha":
			scn.Alpha, err = strconv.ParseFloat(val, 64)
		case "noise":
			scn.Noise, err = strconv.ParseFloat(val, 64)
		case "ens":
			switch val {
			case "gaussian":
				scn.Ens = csoutlier.Gaussian
			case "sparse":
				scn.Ens = csoutlier.SparseRademacher
			case "srht":
				scn.Ens = csoutlier.SRHT
			default:
				err = fmt.Errorf("unknown ensemble %q", val)
			}
		case "faults":
			scn.Faults = make([]Fault, len(val))
			for i := 0; i < len(val); i++ {
				found := false
				for fl, r := range faultRunes {
					if r == val[i] {
						scn.Faults[i] = fl
						found = true
					}
				}
				if !found {
					err = fmt.Errorf("unknown fault rune %q", val[i])
				}
			}
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return Scenario{}, fmt.Errorf("simtest: field %q: %v", f, err)
		}
	}
	return scn, scn.validate()
}

func (s Scenario) validate() error {
	switch {
	case s.N < 4:
		return fmt.Errorf("simtest: N=%d too small", s.N)
	case s.S < 1 || s.S > s.N/4:
		return fmt.Errorf("simtest: S=%d outside [1, N/4]", s.S)
	case s.L < 1:
		return fmt.Errorf("simtest: L=%d", s.L)
	case s.M < 2 || s.M > s.N:
		return fmt.Errorf("simtest: M=%d outside [2, N]", s.M)
	case s.K < 1:
		return fmt.Errorf("simtest: K=%d", s.K)
	case len(s.Faults) != s.L:
		return fmt.Errorf("simtest: %d faults for %d nodes", len(s.Faults), s.L)
	case s.IncludedNodes() == 0:
		return fmt.Errorf("simtest: no node survives the fault schedule")
	}
	return nil
}

// Data is a Scenario's materialized world: the key dictionary, the exact
// includable global aggregate (the ground truth the oracle computes on),
// and one slice per node. Nodes the fault schedule excludes hold junk
// data — their slices never reach the aggregate, and keeping them out of
// the includable split is what makes the oracle exact under faults: the
// paper's node-removal property says the partial sum is exactly the
// sketch of the aggregate over the responders.
type Data struct {
	Keys    []string
	Global  linalg.Vector // Σ over included nodes' slices (exact, pre-split)
	Support []int         // planted outlier positions, sorted
	Slices  []linalg.Vector
}

// Build materializes the scenario deterministically from its seed.
func (s Scenario) Build() (*Data, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(s.Seed)
	d := &Data{Keys: make([]string, s.N)}
	for i := range d.Keys {
		d.Keys[i] = fmt.Sprintf("key%06d", i) // zero-padded: sorted == index order
	}

	// Global aggregate: the mode everywhere, S outliers with either
	// uniform or Pareto(α) divergence magnitudes and random signs.
	d.Global = make(linalg.Vector, s.N)
	d.Global.Fill(s.Mode)
	d.Support = pickDistinct(rng, s.N, s.S)
	mag0 := 100 + 900*rng.Float64()
	for _, j := range d.Support {
		var mag float64
		if s.Alpha > 0 {
			var u float64
			for u == 0 {
				u = rng.Float64()
			}
			mag = mag0 * math.Pow(u, -1/s.Alpha)
			if cap := 1e3 * mag0; mag > cap {
				// Bound the dynamic range recovery must resolve. The cap
				// is jittered so two capped outliers never tie exactly —
				// an exact divergence tie would let sub-epsilon float
				// noise pick the ranking and flake the oracle comparison.
				mag = cap * (1 + 0.05*rng.Float64())
			}
		} else {
			mag = mag0 * (1 + 9*rng.Float64())
		}
		if rng.Float64() < 0.5 {
			mag = -mag
		}
		d.Global[j] = s.Mode + mag
	}

	// Split the includable aggregate across the nodes that will deliver;
	// excluded nodes hold unrelated junk (it never enters the sum).
	included := workload.SplitZeroSumNoise(d.Global, s.IncludedNodes(), s.Noise, rng.Uint64())
	d.Slices = make([]linalg.Vector, s.L)
	ii := 0
	for i, f := range s.Faults {
		if f.Included() {
			d.Slices[i] = included[ii]
			ii++
		} else {
			d.Slices[i] = workload.PowerLaw(s.N, 1.2, rng.Uint64())
		}
	}
	return d, nil
}

// pickDistinct returns s distinct indices in [0, n), sorted.
func pickDistinct(r *xrand.RNG, n, s int) []int {
	seen := make(map[int]bool, s)
	for len(seen) < s {
		seen[r.Intn(n)] = true
	}
	out := make([]int, 0, s)
	for j := range seen {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}
