package simtest

import (
	"fmt"

	"csoutlier"
)

// crossCheckSolvers is the order the differential solver suite runs in:
// every concrete solver, then the automatic selector — the selector runs
// last so its pick is checked against the same oracle on the same
// scenario, enforcing that it never routes a query to a solver that
// would disagree.
var crossCheckSolvers = []csoutlier.Solver{
	csoutlier.SolverBOMP,
	csoutlier.SolverOLS,
	csoutlier.SolverCoSaMP,
	csoutlier.SolverIHT,
	csoutlier.SolverAIHT,
	csoutlier.SolverBP,
	csoutlier.SolverDantzig,
	csoutlier.SolverAuto,
}

// SolverSketcher builds the scenario's sketcher with a forced (or auto)
// recovery solver — same matrix seed and iteration budget as the
// pipeline's Sketcher, so every solver answers the identical instance.
func (s Scenario) SolverSketcher(keys []string, sv csoutlier.Solver) (*csoutlier.Sketcher, error) {
	return csoutlier.NewSketcher(keys, csoutlier.Config{
		M:             s.M,
		Seed:          s.Seed ^ 0x9e3779b97f4a7c15,
		MaxIterations: recoveryBudget(s.S, s.K),
		Ensemble:      s.Ens,
		Solver:        sv,
	})
}

// CheckSolvers is the multi-solver differential cross-check: every
// recovery solver (and the automatic selector) must answer the
// scenario's k-outlier query identically to the exact centralized
// oracle, both from a cold start and warm-started from the PREVIOUS
// solver's Selection — the fold-generation migration path, where a
// standing query switches solvers but keeps its warm hint. The returned
// error names the first disagreeing solver.
func CheckSolvers(scn Scenario) error {
	data, err := scn.Build()
	if err != nil {
		return err
	}
	ans, err := Oracle(scn, data)
	if err != nil {
		return err
	}
	var warm []int
	for _, sv := range crossCheckSolvers {
		sk, err := scn.SolverSketcher(data.Keys, sv)
		if err != nil {
			return fmt.Errorf("solver %v: %w", sv, err)
		}
		y, err := sk.SketchVector(data.Global)
		if err != nil {
			return fmt.Errorf("solver %v: %w", sv, err)
		}
		cold, err := sk.Detect(y, scn.K)
		if err != nil {
			return fmt.Errorf("solver %v: %w", sv, err)
		}
		if err := compareReport(cold, ans); err != nil {
			return fmt.Errorf("solver %v (cold, routed to %s): %w", sv, cold.Solver, err)
		}
		migrated, err := sk.DetectQuery(y, scn.K, warm)
		if err != nil {
			return fmt.Errorf("solver %v: %w", sv, err)
		}
		if err := compareReport(migrated, ans); err != nil {
			return fmt.Errorf("solver %v (warm-started from previous solver): %w", sv, err)
		}
		warm = cold.Selection
	}
	return nil
}
