package simtest

import (
	"context"
	"fmt"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
	"csoutlier/internal/xrand"
)

// StreamChurnScenario is a dynamic-membership soak: the base L nodes
// are joined mid-run by an extra node (id L), one base node leaves
// gracefully, and another goes silent long enough to be evicted — then
// comes back and is resurrected with its dedup book intact. All of it
// runs under the usual chaos TCP proxies. The per-window data split
// follows the active member set, so the centralized oracle stays exact
// for every window span, and the checker holds the pipeline to the same
// bit-identical window standard as the steady-state soak plus a
// conservation invariant: every capture on every node is folded exactly
// once (no shedding is configured, so shed counters must stay zero).
type StreamChurnScenario struct {
	Seed  uint64
	N     int     // key-space size
	S     int     // planted outliers (same positions every window)
	L     int     // base node count; the joiner gets id L
	W     int     // windows driven
	M     int     // measurement budget
	K     int     // outliers per query
	Mode  float64 // base bias; per-window biases are seeded multiples
	Noise float64 // per-node zero-sum noise amplitude per window
	Ens   csoutlier.Ensemble

	JoinWindow  int // window (1-based, ≥ 2) the joiner participates from
	LeaveNode   int // base node that leaves gracefully after LeaveWindow
	LeaveWindow int
	EvictNode   int // base node evicted after EvictWindow, resurrected next window
	EvictWindow int // < W, so a window always follows the resurrection

	ProxyMin int64 // per-connection chaos byte budget bounds
	ProxyMax int64
}

// GenerateStreamChurn derives membership-churn scenario index from the
// base seed.
func GenerateStreamChurn(base uint64, index int) StreamChurnScenario {
	rng := xrand.New(base).Split(uint64(index) + 0xc41712a7)
	scn := StreamChurnScenario{Seed: rng.Uint64()}
	scn.S = 1 + rng.Intn(5)
	scn.N = 120 + rng.Intn(321)
	switch rng.Intn(4) {
	case 0:
		scn.Ens = csoutlier.SparseRademacher
	case 1:
		scn.Ens = csoutlier.SRHT
	default:
		scn.Ens = csoutlier.Gaussian
	}
	for {
		scn.M = measurementsFor(scn.N, scn.S, scn.Ens)
		if scn.M <= scn.N*3/5 || scn.S == 1 {
			break
		}
		scn.S--
	}
	scn.K = 1 + rng.Intn(scn.S+1)
	scn.Mode = 100 + 4900*rng.Float64()
	if rng.Float64() < 0.5 {
		scn.Mode = -scn.Mode
	}
	if rng.Float64() < 0.6 {
		scn.Noise = (math.Abs(scn.Mode) + 500) * (0.1 + rng.Float64())
	}
	scn.L = 4 + rng.Intn(3)
	scn.W = 3 + rng.Intn(2)
	scn.JoinWindow = 2 + rng.Intn(scn.W-1)
	scn.LeaveNode = rng.Intn(scn.L)
	scn.LeaveWindow = 1 + rng.Intn(scn.W)
	scn.EvictNode = (scn.LeaveNode + 1 + rng.Intn(scn.L-1)) % scn.L
	scn.EvictWindow = 1 + rng.Intn(scn.W-1)
	frame := int64(8*scn.M + 512)
	minPart := scn.LeaveWindow
	if joinPart := scn.W - scn.JoinWindow + 1; joinPart < minPart {
		minPart = joinPart
	}
	floorTotal := int64(streamChunks*minPart) * int64(8*scn.M+64)
	scn.ProxyMin = frame
	scn.ProxyMax = 3 * frame
	if cap := floorTotal - frame; scn.ProxyMax > cap {
		scn.ProxyMax = cap
	}
	if scn.ProxyMax < scn.ProxyMin {
		scn.ProxyMax = scn.ProxyMin
	}
	return scn
}

func (s StreamChurnScenario) validate() error {
	switch {
	case s.N < 4 || s.S < 1 || s.S > s.N/4:
		return fmt.Errorf("simtest: churn scenario N=%d S=%d out of range", s.N, s.S)
	case s.L < 3:
		return fmt.Errorf("simtest: churn scenario needs ≥ 3 base nodes, got %d", s.L)
	case s.W < 2:
		return fmt.Errorf("simtest: churn scenario needs ≥ 2 windows, got %d", s.W)
	case s.M < 2 || s.M > s.N:
		return fmt.Errorf("simtest: M=%d outside [2, N]", s.M)
	case s.K < 1:
		return fmt.Errorf("simtest: K=%d", s.K)
	case s.Mode == 0:
		return fmt.Errorf("simtest: churn scenarios need a nonzero mode")
	case s.JoinWindow < 2 || s.JoinWindow > s.W:
		return fmt.Errorf("simtest: join window %d outside [2, %d]", s.JoinWindow, s.W)
	case s.LeaveNode < 0 || s.LeaveNode >= s.L || s.EvictNode < 0 || s.EvictNode >= s.L:
		return fmt.Errorf("simtest: churn nodes %d/%d outside [0, %d)", s.LeaveNode, s.EvictNode, s.L)
	case s.LeaveNode == s.EvictNode:
		return fmt.Errorf("simtest: leave and evict node coincide")
	case s.LeaveWindow < 1 || s.LeaveWindow > s.W:
		return fmt.Errorf("simtest: leave window %d outside [1, %d]", s.LeaveWindow, s.W)
	case s.EvictWindow < 1 || s.EvictWindow >= s.W:
		return fmt.Errorf("simtest: evict window %d outside [1, %d) (a window must follow the resurrection)", s.EvictWindow, s.W)
	case s.ProxyMin < int64(8*s.M+256) || s.ProxyMax < s.ProxyMin:
		return fmt.Errorf("simtest: proxy budget [%d, %d] cannot pass a full frame", s.ProxyMin, s.ProxyMax)
	}
	return nil
}

// String encodes the scenario as a replayable one-liner.
func (s StreamChurnScenario) String() string {
	ens := "gaussian"
	switch s.Ens {
	case csoutlier.SparseRademacher:
		ens = "sparse"
	case csoutlier.SRHT:
		ens = "srht"
	}
	return fmt.Sprintf("streamchurn1 seed=%d n=%d s=%d l=%d w=%d m=%d k=%d mode=%g noise=%g ens=%s join=%d leave=%d@%d evict=%d@%d proxy=%d:%d",
		s.Seed, s.N, s.S, s.L, s.W, s.M, s.K, s.Mode, s.Noise, ens,
		s.JoinWindow, s.LeaveNode, s.LeaveWindow, s.EvictNode, s.EvictWindow, s.ProxyMin, s.ProxyMax)
}

// ParseStreamChurnScenario decodes a StreamChurnScenario.String() line.
func ParseStreamChurnScenario(line string) (StreamChurnScenario, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "streamchurn1" {
		return StreamChurnScenario{}, fmt.Errorf("simtest: churn scenario line must start with %q", "streamchurn1")
	}
	var scn StreamChurnScenario
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return StreamChurnScenario{}, fmt.Errorf("simtest: malformed field %q", f)
		}
		var err error
		switch key {
		case "seed":
			scn.Seed, err = strconv.ParseUint(val, 10, 64)
		case "n":
			scn.N, err = strconv.Atoi(val)
		case "s":
			scn.S, err = strconv.Atoi(val)
		case "l":
			scn.L, err = strconv.Atoi(val)
		case "w":
			scn.W, err = strconv.Atoi(val)
		case "m":
			scn.M, err = strconv.Atoi(val)
		case "k":
			scn.K, err = strconv.Atoi(val)
		case "mode":
			scn.Mode, err = strconv.ParseFloat(val, 64)
		case "noise":
			scn.Noise, err = strconv.ParseFloat(val, 64)
		case "ens":
			switch val {
			case "gaussian":
				scn.Ens = csoutlier.Gaussian
			case "sparse":
				scn.Ens = csoutlier.SparseRademacher
			case "srht":
				scn.Ens = csoutlier.SRHT
			default:
				err = fmt.Errorf("unknown ensemble %q", val)
			}
		case "join":
			scn.JoinWindow, err = strconv.Atoi(val)
		case "leave":
			node, win, ok := strings.Cut(val, "@")
			if !ok {
				err = fmt.Errorf("want node@window")
				break
			}
			if scn.LeaveNode, err = strconv.Atoi(node); err == nil {
				scn.LeaveWindow, err = strconv.Atoi(win)
			}
		case "evict":
			node, win, ok := strings.Cut(val, "@")
			if !ok {
				err = fmt.Errorf("want node@window")
				break
			}
			if scn.EvictNode, err = strconv.Atoi(node); err == nil {
				scn.EvictWindow, err = strconv.Atoi(win)
			}
		case "proxy":
			lo, hi, ok := strings.Cut(val, ":")
			if !ok {
				err = fmt.Errorf("want min:max")
				break
			}
			if scn.ProxyMin, err = strconv.ParseInt(lo, 10, 64); err == nil {
				scn.ProxyMax, err = strconv.ParseInt(hi, 10, 64)
			}
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return StreamChurnScenario{}, fmt.Errorf("simtest: field %q: %v", f, err)
		}
	}
	return scn, scn.validate()
}

// activeNodes returns the member ids participating in window w
// (1-based), ascending: the base nodes minus the leaver once it has
// left, plus the joiner from its join window on. The evicted node stays
// active — it is alive the whole time, just silent long enough to be
// evicted between two windows.
func (s StreamChurnScenario) activeNodes(w int) []int {
	var ids []int
	for l := 0; l < s.L; l++ {
		if l == s.LeaveNode && w > s.LeaveWindow {
			continue
		}
		ids = append(ids, l)
	}
	if w >= s.JoinWindow {
		ids = append(ids, s.L)
	}
	sort.Ints(ids)
	return ids
}

// BuildStream materializes the scenario deterministically: window w is
// split among its active member count, so the global per-window
// aggregates — and therefore the oracle — are independent of the churn.
func (s StreamChurnScenario) BuildStream() (*StreamData, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	splits := make([]int, s.W)
	for w := range splits {
		splits[w] = len(s.activeNodes(w + 1))
	}
	return buildStreamData(s.Seed, s.N, s.S, s.Mode, s.Noise, splits), nil
}

// StreamChurnResult is what RunStreamChurn hands to the checker.
type StreamChurnResult struct {
	Agg      *stream.Aggregator
	Sk       *csoutlier.Sketcher
	Expected []csoutlier.Sketch // [w] bit-exact shadow of the fold sequence
	Kills    int64              // chaos-proxy connection kills
	Captured int64              // total captures across every participant
}

// RunStreamChurn executes the churn pipeline: the base nodes drive
// windows as usual; the joiner dials in at its window, the leaver
// flushes and announces a bye, and the evictee goes silent after its
// last flush of EvictWindow until a liveness sweep retires it — its
// next-window sync resurrects it, dedup book intact.
func RunStreamChurn(scn StreamChurnScenario, data *StreamData) (*StreamChurnResult, error) {
	sk, err := csoutlier.NewSketcher(data.Keys, csoutlier.Config{
		M:             scn.M,
		Seed:          scn.Seed ^ 0x9e3779b97f4a7c15,
		MaxIterations: recoveryBudget(scn.S, scn.K),
		Ensemble:      scn.Ens,
	})
	if err != nil {
		return nil, err
	}
	agg, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: scn.W})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go agg.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	closeAgg := func() {
		cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
		agg.Close(cctx)
		ccancel()
	}

	P := scn.L + 1 // base nodes plus the joiner
	proxies := make([]*chaosProxy, P)
	proxySeed := xrand.New(scn.Seed).Split(0x9097)
	for l := range proxies {
		p, err := startChaosProxy(ln.Addr().String(), proxySeed.Uint64(), scn.ProxyMin, scn.ProxyMax)
		if err != nil {
			closeAgg()
			return nil, err
		}
		defer p.Stop()
		proxies[l] = p
	}

	dial := func(l int) (*stream.Node, error) {
		return stream.Dial(ctx, proxies[l].Addr(), sk, NodeID(l), stream.NodeOptions{
			Epoch:       1,
			PushTimeout: 2 * time.Second,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			BackoffSeed: xrand.New(scn.Seed).Split(0xbac0ff ^ uint64(l)<<8).Uint64(),
		})
	}
	nodes := make([]*stream.Node, P)
	shadow := make([]*csoutlier.Updater, P)
	left := make([]bool, P)
	for l := 0; l < scn.L; l++ {
		n, err := dial(l)
		if err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: dial node %d: %w", l, err)
		}
		nodes[l] = n
		shadow[l] = sk.NewUpdater()
	}
	shadow[scn.L] = sk.NewUpdater()

	res := &StreamChurnResult{Agg: agg, Sk: sk}
	scratch := sk.ZeroSketch()
	for w := 1; w <= scn.W; w++ {
		if w == scn.JoinWindow {
			n, err := dial(scn.L)
			if err != nil {
				closeAgg()
				return nil, fmt.Errorf("simtest: dial joiner: %w", err)
			}
			nodes[scn.L] = n
		}
		active := scn.activeNodes(w)
		expected := sk.ZeroSketch()
		for i, id := range active {
			slice := data.WinSlices[w-1][i]
			for c := 0; c < streamChunks; c++ {
				lo, hi := len(slice)*c/streamChunks, len(slice)*(c+1)/streamChunks
				for idx := lo; idx < hi; idx++ {
					v := slice[idx]
					if v == 0 {
						continue
					}
					if err := nodes[id].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, fmt.Errorf("simtest: node %d observe: %w", id, err)
					}
					if err := shadow[id].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, err
					}
				}
				if err := nodes[id].Flush(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d flush (window %d): %w", id, w, err)
				}
				if _, err := shadow[id].DrainInto(scratch); err != nil {
					closeAgg()
					return nil, err
				}
				if err := expected.Add(scratch); err != nil {
					closeAgg()
					return nil, err
				}
			}
		}
		res.Expected = append(res.Expected, expected)

		if w == scn.LeaveWindow {
			// Graceful leave; the bye exchange runs through chaos, so retry
			// (Leave is idempotent) until it lands.
			var lerr error
			for attempt := 0; attempt < 20; attempt++ {
				if lerr = nodes[scn.LeaveNode].Leave(ctx); lerr == nil {
					break
				}
			}
			if lerr != nil {
				closeAgg()
				return nil, fmt.Errorf("simtest: node %d leave: %w", scn.LeaveNode, lerr)
			}
			left[scn.LeaveNode] = true
		}
		if w == scn.EvictWindow {
			if err := evictDeterministically(ctx, agg, nodes, left, scn.EvictNode); err != nil {
				closeAgg()
				return nil, err
			}
		}
		if w < scn.W {
			agg.Rotate()
			for id := range nodes {
				if nodes[id] == nil || left[id] {
					continue
				}
				// The evictee's sync is its comeback: the hello resurrects
				// its tombstone, dedup book intact.
				if err := nodes[id].Sync(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d sync: %w", id, err)
				}
			}
		}
	}

	for id := range nodes {
		if nodes[id] == nil || left[id] {
			continue
		}
		if err := nodes[id].Close(ctx); err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: node %d close: %w", id, err)
		}
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = agg.Close(cctx)
	ccancel()
	if err != nil {
		return nil, err
	}
	for id := range nodes {
		if nodes[id] != nil {
			res.Captured += nodes[id].Stats().Captured
		}
	}
	for _, p := range proxies {
		res.Kills += p.Kills()
	}
	return res, nil
}

// evictDeterministically retires exactly the target node via the
// liveness sweep: it refreshes every other live node's LastSeen, reads
// the aggregator's own liveness table, and calls EvictIdle with a
// threshold that provably separates the silent target from the
// just-refreshed rest — retrying (the target only gets older) until the
// separation holds with margin.
func evictDeterministically(ctx context.Context, agg *stream.Aggregator, nodes []*stream.Node, left []bool, target int) error {
	targetID := NodeID(target)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("simtest: could not separate node %d for eviction", target)
		}
		for id := range nodes {
			if nodes[id] == nil || left[id] || id == target {
				continue
			}
			if err := nodes[id].Sync(ctx); err != nil {
				return fmt.Errorf("simtest: node %d pre-evict sync: %w", id, err)
			}
		}
		var targetSeen time.Time
		freshest := time.Duration(math.MaxInt64)
		staleOther := time.Duration(0)
		for _, ns := range agg.Nodes() {
			if ns.State != stream.StateLive {
				continue
			}
			age := time.Since(ns.LastSeen)
			if ns.Node == targetID {
				targetSeen = ns.LastSeen
				continue
			}
			if age < freshest {
				freshest = age
			}
			if age > staleOther {
				staleOther = age
			}
		}
		if targetSeen.IsZero() {
			return fmt.Errorf("simtest: evict target %s not live", targetID)
		}
		threshold := time.Since(targetSeen) / 2
		// Proceed only when every other node is fresher than a quarter of
		// the threshold — enough margin that the sweep below cannot
		// misfire even if this goroutine stalls briefly.
		if threshold >= 20*time.Millisecond && staleOther < threshold/4 {
			if got := agg.EvictIdle(threshold); got != 1 {
				return fmt.Errorf("simtest: EvictIdle(%v) evicted %d nodes, want exactly the silent target", threshold, got)
			}
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// CheckStreamChurnScenario materializes and runs one membership-churn
// scenario, then checks: (1) bit-identical per-window sketches against
// the shadow fold; (2) span outliers vs the exact centralized oracle;
// (3) the membership ledger — join/leave/evict/resurrect counts, final
// states, tombstones — and the conservation invariant that every
// capture was folded exactly once.
func CheckStreamChurnScenario(scn StreamChurnScenario) error {
	data, err := scn.BuildStream()
	if err != nil {
		return err
	}
	res, err := RunStreamChurn(scn, data)
	if err != nil {
		return err
	}
	if res.Kills < 1 {
		return fmt.Errorf("chaos proxies killed no connections; budgets [%d, %d] too generous for this schedule",
			scn.ProxyMin, scn.ProxyMax)
	}

	// (1) Bit-identical per-window global sketches.
	for w := 1; w <= scn.W; w++ {
		age := scn.W - w
		got, err := res.Agg.WindowSketch(age)
		if err != nil {
			return fmt.Errorf("window %d (age %d): %w", w, age, err)
		}
		want := res.Expected[w-1]
		for i := range got.Y {
			if math.Float64bits(got.Y[i]) != math.Float64bits(want.Y[i]) {
				return fmt.Errorf("window %d sketch diverges from shadow fold at Y[%d]: %v != %v (bit-exact)",
					w, i, got.Y[i], want.Y[i])
			}
		}
	}

	// (2) Span outliers vs the exact centralized oracle.
	for from := 0; from < scn.W; from++ {
		for to := from; to < scn.W; to++ {
			rep, err := res.Agg.Outliers(from, to, scn.K)
			if err != nil {
				return fmt.Errorf("span [%d,%d]: %w", from, to, err)
			}
			ans, err := streamSpanOracle(scn.N, scn.K, data, scn.W-to, scn.W-from)
			if err != nil {
				return err
			}
			if err := compareReport(rep, ans); err != nil {
				return fmt.Errorf("span [%d,%d] differential oracle: %w", from, to, err)
			}
		}
	}

	// (3) Membership ledger and conservation.
	stats := res.Agg.Stats()
	if stats.Frames != stats.Applied+stats.Duplicates+stats.Dropped+stats.Rejected {
		return fmt.Errorf("frame identity violated: %d frames != %d applied + %d dup + %d dropped + %d rejected",
			stats.Frames, stats.Applied, stats.Duplicates, stats.Dropped, stats.Rejected)
	}
	// Conservation: no shedding is configured, so applied frames must
	// account for every capture on every participant — each folded
	// exactly once, none dropped, none silently lost to the churn.
	switch {
	case stats.ShedFrames != 0 || stats.ShedFolds != 0:
		return fmt.Errorf("shed counters moved without shedding configured: %+v", stats)
	case stats.Dropped != 0:
		return fmt.Errorf("%d frames dropped as older than the ring; churn must not lose deltas", stats.Dropped)
	case stats.Applied != res.Captured:
		return fmt.Errorf("conservation violated: %d frames applied, %d captures taken across all nodes",
			stats.Applied, res.Captured)
	}
	wantJoins := int64(scn.L) + 2 // initial joins + the joiner + the evictee's resurrection
	switch {
	case stats.Joins != wantJoins:
		return fmt.Errorf("joins = %d, want %d (base %d + joiner + resurrection)", stats.Joins, wantJoins, scn.L)
	case stats.Leaves != 1:
		return fmt.Errorf("leaves = %d, want 1", stats.Leaves)
	case stats.Evictions != 1:
		return fmt.Errorf("evictions = %d, want 1", stats.Evictions)
	case stats.Tombstones != 1:
		return fmt.Errorf("tombstones = %d, want 1 (the leaver; the evictee was resurrected)", stats.Tombstones)
	case stats.Membership != uint64(wantJoins)+2:
		return fmt.Errorf("membership version = %d, want %d (every join, leave and eviction bumps it)",
			stats.Membership, wantJoins+2)
	case stats.AggEpoch != 1:
		return fmt.Errorf("aggregator epoch = %d, want 1 (no restore in this scenario)", stats.AggEpoch)
	}
	sts := res.Agg.Nodes()
	if len(sts) != scn.L+1 {
		return fmt.Errorf("%d nodes in liveness table, want %d", len(sts), scn.L+1)
	}
	for _, ns := range sts {
		id := -1
		fmt.Sscanf(ns.Node, "node%d", &id)
		if id == scn.LeaveNode {
			if ns.State != stream.StateLeft {
				return fmt.Errorf("leaver status %+v, want state %q", ns, stream.StateLeft)
			}
			continue
		}
		switch {
		case ns.State != stream.StateLive:
			return fmt.Errorf("node %s state %q at quiescence, want live", ns.Node, ns.State)
		case ns.Epoch != 1:
			return fmt.Errorf("node %s status %+v, want epoch 1", ns.Node, ns)
		case ns.Lag != 0:
			return fmt.Errorf("node %s still lags after final sync: %+v", ns.Node, ns)
		}
	}
	return nil
}
