package simtest

import (
	"fmt"
	"math"

	"csoutlier"
	"csoutlier/internal/linalg"
	"csoutlier/internal/workload"
	"csoutlier/internal/xrand"
)

// The metamorphic invariants: algebraic identities of the pipeline that
// must hold for EVERY scenario, independent of whether recovery is exact.
// Each one transforms the input, reruns the in-process pipeline, and
// relates the two answers:
//
//   1. re-partitioning linearity — splitting the aggregate across a
//      different number of nodes (with fresh zero-sum noise) must leave
//      the summed sketch equal coordinate-wise, because Σ Φ·x_l = Φ·Σ x_l
//      (paper eq. 1);
//   2. node-order permutation — the aggregate may be summed in any node
//      order;
//   3. scale equivariance — measuring c·x recovers c·mode and c·values
//      on the same support;
//   4. mode-shift invariance — measuring x + c·1 recovers mode + c and
//      shifts every value by c, on the same support.
//
// Tolerances: sketch-level identities hold to float addition reordering
// (≈1e-12 relative); recovered answers are compared through the shared
// matchTol, against the correspondingly transformed oracle.

// linTol bounds the relative coordinate-wise divergence of two sketches
// that are algebraically equal but summed in different float orders. The
// split's zero-sum noise can exceed the data by orders of magnitude, so
// the bound scales with the sketch norm (gonum-free: plain float64
// addition is all the pipeline uses, so reassociation error stays within
// a few ulps per term, far below 1e-9 of the norm for ≤ 16 terms).
const linTol = 1e-9

// CheckInvariants runs all metamorphic checks for the scenario on the
// in-process pipeline (sketch → aggregate → Detect), reusing the exact
// data the cluster run collected.
func CheckInvariants(scn Scenario, data *Data, h Hooks) error {
	sk, err := scn.Sketcher(data.Keys)
	if err != nil {
		return err
	}
	ans, err := Oracle(scn, data)
	if err != nil {
		return err
	}
	rng := xrand.New(scn.Seed ^ 0x1e7a0)

	base, err := sk.SketchVector(data.Global)
	if err != nil {
		return err
	}
	if err := checkRepartition(scn, data, sk, base, rng); err != nil {
		return fmt.Errorf("repartition linearity: %w", err)
	}
	if err := checkPermutation(scn, data, sk, ans, h, rng); err != nil {
		return fmt.Errorf("permutation invariance: %w", err)
	}
	if err := checkScale(scn, data, sk, ans, h, rng); err != nil {
		return fmt.Errorf("scale equivariance: %w", err)
	}
	if err := checkModeShift(scn, data, sk, ans, h, rng); err != nil {
		return fmt.Errorf("mode-shift invariance: %w", err)
	}
	return nil
}

// detect runs the aggregator-side recovery with the scenario's hooks.
func detect(sk *csoutlier.Sketcher, y csoutlier.Sketch, k int, h Hooks) (*csoutlier.Report, error) {
	rep, err := sk.Detect(y, k)
	if err != nil {
		return nil, err
	}
	if h.MutateReport != nil {
		h.MutateReport(rep)
	}
	return rep, nil
}

// checkRepartition re-splits the aggregate into a fresh number of parts
// with fresh zero-sum noise and checks Σ sketches == sketch of Σ.
func checkRepartition(scn Scenario, data *Data, sk *csoutlier.Sketcher, base csoutlier.Sketch, rng *xrand.RNG) error {
	parts := 2 + rng.Intn(5)
	noise := scn.Noise * (0.5 + rng.Float64())
	slices := workload.SplitZeroSumNoise(data.Global, parts, noise, rng.Uint64())
	sum := sk.ZeroSketch()
	for _, sl := range slices {
		y, err := sk.SketchVector(sl)
		if err != nil {
			return err
		}
		if err := sum.Add(y); err != nil {
			return err
		}
	}
	return sketchesClose(sum, base, sketchScale(base))
}

// checkPermutation sums the same per-part sketches in a random order and
// demands the same aggregate.
func checkPermutation(scn Scenario, data *Data, sk *csoutlier.Sketcher, ans *OracleAnswer, h Hooks, rng *xrand.RNG) error {
	parts := 2 + rng.Intn(4)
	slices := workload.SplitZeroSumNoise(data.Global, parts, scn.Noise, rng.Uint64())
	ys := make([]csoutlier.Sketch, parts)
	for i, sl := range slices {
		y, err := sk.SketchVector(sl)
		if err != nil {
			return err
		}
		ys[i] = y
	}
	forward, backward := sk.ZeroSketch(), sk.ZeroSketch()
	for i := 0; i < parts; i++ {
		if err := forward.Add(ys[i]); err != nil {
			return err
		}
		if err := backward.Add(ys[parts-1-i]); err != nil {
			return err
		}
	}
	if err := sketchesClose(forward, backward, sketchScale(forward)); err != nil {
		return err
	}
	// Both orders must yield the oracle's answer end to end.
	for _, y := range []csoutlier.Sketch{forward, backward} {
		rep, err := detect(sk, y, scn.K, h)
		if err != nil {
			return err
		}
		if err := compareReport(rep, ans); err != nil {
			return err
		}
	}
	return nil
}

// checkScale measures c·x and expects the oracle's answer scaled by c.
func checkScale(scn Scenario, data *Data, sk *csoutlier.Sketcher, ans *OracleAnswer, h Hooks, rng *xrand.RNG) error {
	c := 0.5 + 2.5*rng.Float64()
	if rng.Float64() < 0.5 {
		c = -c
	}
	scaled := data.Global.Clone().Scale(c)
	y, err := sk.SketchVector(scaled)
	if err != nil {
		return err
	}
	rep, err := detect(sk, y, scn.K, h)
	if err != nil {
		return err
	}
	want := &OracleAnswer{Mode: c * ans.Mode}
	for _, o := range ans.Outliers {
		want.Outliers = append(want.Outliers, csoutlier.Outlier{Key: o.Key, Value: c * o.Value})
	}
	return compareReport(rep, want)
}

// checkModeShift measures x + c·1 and expects the same support with the
// mode and every value shifted by c.
func checkModeShift(scn Scenario, data *Data, sk *csoutlier.Sketcher, ans *OracleAnswer, h Hooks, rng *xrand.RNG) error {
	c := (1 + 99*rng.Float64()) * 50
	if rng.Float64() < 0.5 {
		c = -c
	}
	shifted := data.Global.Clone()
	for i := range shifted {
		shifted[i] += c
	}
	y, err := sk.SketchVector(shifted)
	if err != nil {
		return err
	}
	rep, err := detect(sk, y, scn.K, h)
	if err != nil {
		return err
	}
	want := &OracleAnswer{Mode: ans.Mode + c}
	for _, o := range ans.Outliers {
		want.Outliers = append(want.Outliers, csoutlier.Outlier{Key: o.Key, Value: o.Value + c})
	}
	return compareReport(rep, want)
}

// sketchScale is the magnitude the linearity tolerance scales against.
func sketchScale(s csoutlier.Sketch) float64 {
	return math.Max(1, linalg.Vector(s.Y).NormInf())
}

// sketchesClose demands coordinate-wise agreement within linTol·scale.
func sketchesClose(a, b csoutlier.Sketch, scale float64) error {
	if len(a.Y) != len(b.Y) {
		return fmt.Errorf("sketch lengths %d vs %d", len(a.Y), len(b.Y))
	}
	for i := range a.Y {
		if d := math.Abs(a.Y[i] - b.Y[i]); d > linTol*scale {
			return fmt.Errorf("coordinate %d differs by %g (scale %g): %v vs %v",
				i, d, scale, a.Y[i], b.Y[i])
		}
	}
	return nil
}
