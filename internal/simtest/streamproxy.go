package simtest

import (
	"net"
	"sync"
	"sync/atomic"

	"csoutlier/internal/xrand"
)

// chaosProxy is a seeded TCP connection killer for the push path: it
// sits between one streaming node and the aggregator and hard-closes
// each connection after a randomized byte budget, forcing mid-exchange
// failures — half-written frames, lost acks — that the delta protocol's
// redial/retry/dedup machinery must absorb. Budgets are drawn from the
// proxy's own seeded RNG, so a scenario replays with the same kill
// schedule (for a given exchange sequence).
//
// The minimum budget must exceed one full frame round-trip, or a node
// with a large delta could starve forever: every connection must be
// able to make progress before it dies.
type chaosProxy struct {
	ln     net.Listener
	target string
	min    int64 // per-connection byte budget bounds, both directions
	max    int64

	mu  sync.Mutex // guards rng and target (accept loop vs Retarget/Stop)
	rng *xrand.RNG

	kills  int64 // connections killed on budget exhaustion (atomic)
	closed chan struct{}
	wg     sync.WaitGroup
}

// startChaosProxy listens on loopback and relays to target.
func startChaosProxy(target string, seed uint64, min, max int64) (*chaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &chaosProxy{
		ln: ln, target: target, min: min, max: max,
		rng:    xrand.New(seed),
		closed: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the address nodes should dial instead of the aggregator.
func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

// Kills returns how many connections died on an exhausted budget.
func (p *chaosProxy) Kills() int64 { return atomic.LoadInt64(&p.kills) }

// Retarget points future connections at a new upstream address — the
// crash-restart harness uses it when a restored aggregator comes back
// on a fresh listener. Live relays keep their old upstream; the node's
// next redial lands on the new one.
func (p *chaosProxy) Retarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// Stop closes the listener and every live relay.
func (p *chaosProxy) Stop() {
	select {
	case <-p.closed:
	default:
		close(p.closed)
	}
	p.ln.Close()
	p.wg.Wait()
}

func (p *chaosProxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		span := p.max - p.min
		budget := p.min
		if span > 0 {
			budget += int64(p.rng.Intn(int(span + 1)))
		}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.relay(conn, budget)
	}
}

// relay pipes conn <-> target until the shared byte budget (summed over
// both directions) runs out, either side closes, or the proxy stops.
func (p *chaosProxy) relay(conn net.Conn, budget int64) {
	defer p.wg.Done()
	defer conn.Close()
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	up, err := net.Dial("tcp", target)
	if err != nil {
		return
	}
	defer up.Close()
	stop := make(chan struct{})
	var stopOnce sync.Once
	kill := func(exhausted bool) {
		stopOnce.Do(func() {
			if exhausted {
				atomic.AddInt64(&p.kills, 1)
			}
			close(stop)
			conn.Close()
			up.Close()
		})
	}
	remaining := budget
	var bmu sync.Mutex
	pipe := func(dst, src net.Conn) {
		defer p.wg.Done()
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					kill(false)
					return
				}
				bmu.Lock()
				remaining -= int64(n)
				dead := remaining < 0
				bmu.Unlock()
				if dead {
					kill(true)
					return
				}
			}
			if err != nil {
				kill(false)
				return
			}
		}
	}
	p.wg.Add(2)
	go pipe(up, conn)
	go pipe(conn, up)
	select {
	case <-stop:
	case <-p.closed:
		kill(false)
	}
}
