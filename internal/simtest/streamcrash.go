package simtest

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"csoutlier"
	"csoutlier/internal/stream"
	"csoutlier/internal/xrand"
)

// StreamCrashScenario is a crash-restart soak: the same chaos-TCP
// streaming pipeline as StreamScenario, but the fault is on the
// aggregator side. At a seeded flush inside CrashWindow the aggregator
// writes a snapshot; at a later seeded flush it dies (every frame
// folded since the snapshot is lost with it). A successor restores from
// the snapshot on a fresh listener, the proxies retarget, and the nodes
// replay their retained frames. The checker demands the post-restore
// windows be bit-identical to an uninterrupted run's — restore plus
// replay must reconstruct the exact fold sequence, not an approximation
// of it.
type StreamCrashScenario struct {
	Seed  uint64
	N     int     // key-space size
	S     int     // planted outliers (same positions every window)
	L     int     // node count
	W     int     // windows driven
	M     int     // measurement budget
	K     int     // outliers per query
	Mode  float64 // base bias; per-window biases are seeded multiples
	Noise float64 // per-node zero-sum noise amplitude per window
	Ens   csoutlier.Ensemble

	// Flush indices inside CrashWindow (0-based over the window's
	// L*streamChunks flushes, l-major): the snapshot is taken after flush
	// SnapFlush completes, the aggregator dies after flush CrashFlush.
	// Every frame in (SnapFlush, CrashFlush] is folded, acked, and then
	// lost — exactly the frames node-side retention must replay.
	CrashWindow int
	SnapFlush   int
	CrashFlush  int

	ProxyMin int64 // per-connection chaos byte budget bounds
	ProxyMax int64
}

// GenerateStreamCrash derives crash-restart scenario index from the
// base seed.
func GenerateStreamCrash(base uint64, index int) StreamCrashScenario {
	rng := xrand.New(base).Split(uint64(index) + 0xc4a54a11)
	scn := StreamCrashScenario{Seed: rng.Uint64()}
	scn.S = 1 + rng.Intn(5)
	scn.N = 120 + rng.Intn(321)
	switch rng.Intn(4) {
	case 0:
		scn.Ens = csoutlier.SparseRademacher
	case 1:
		scn.Ens = csoutlier.SRHT
	default:
		scn.Ens = csoutlier.Gaussian
	}
	for {
		scn.M = measurementsFor(scn.N, scn.S, scn.Ens)
		if scn.M <= scn.N*3/5 || scn.S == 1 {
			break
		}
		scn.S--
	}
	scn.K = 1 + rng.Intn(scn.S+1)
	scn.Mode = 100 + 4900*rng.Float64()
	if rng.Float64() < 0.5 {
		scn.Mode = -scn.Mode
	}
	if rng.Float64() < 0.6 {
		scn.Noise = (math.Abs(scn.Mode) + 500) * (0.1 + rng.Float64())
	}
	scn.L = 4 + rng.Intn(3)
	scn.W = 2 + rng.Intn(3)
	scn.CrashWindow = 1 + rng.Intn(scn.W)
	flushes := scn.L * streamChunks
	scn.SnapFlush = rng.Intn(flushes - 1)
	scn.CrashFlush = scn.SnapFlush + 1 + rng.Intn(flushes-1-scn.SnapFlush)
	frame := int64(8*scn.M + 512)
	floorTotal := int64(streamChunks*scn.W) * int64(8*scn.M+64)
	scn.ProxyMin = frame
	scn.ProxyMax = 3 * frame
	if cap := floorTotal - frame; scn.ProxyMax > cap {
		scn.ProxyMax = cap
	}
	if scn.ProxyMax < scn.ProxyMin {
		scn.ProxyMax = scn.ProxyMin
	}
	return scn
}

func (s StreamCrashScenario) validate() error {
	switch {
	case s.N < 4 || s.S < 1 || s.S > s.N/4:
		return fmt.Errorf("simtest: crash scenario N=%d S=%d out of range", s.N, s.S)
	case s.L < 2:
		return fmt.Errorf("simtest: crash scenario needs ≥ 2 nodes, got %d", s.L)
	case s.W < 1:
		return fmt.Errorf("simtest: W=%d", s.W)
	case s.M < 2 || s.M > s.N:
		return fmt.Errorf("simtest: M=%d outside [2, N]", s.M)
	case s.K < 1:
		return fmt.Errorf("simtest: K=%d", s.K)
	case s.Mode == 0:
		return fmt.Errorf("simtest: crash scenarios need a nonzero mode")
	case s.CrashWindow < 1 || s.CrashWindow > s.W:
		return fmt.Errorf("simtest: crash window %d outside [1, %d]", s.CrashWindow, s.W)
	case s.SnapFlush < 0 || s.CrashFlush <= s.SnapFlush || s.CrashFlush >= s.L*streamChunks:
		return fmt.Errorf("simtest: flush schedule snap=%d crash=%d outside 0 ≤ snap < crash < %d",
			s.SnapFlush, s.CrashFlush, s.L*streamChunks)
	case s.ProxyMin < int64(8*s.M+256) || s.ProxyMax < s.ProxyMin:
		return fmt.Errorf("simtest: proxy budget [%d, %d] cannot pass a full frame", s.ProxyMin, s.ProxyMax)
	}
	return nil
}

// String encodes the scenario as a replayable one-liner.
func (s StreamCrashScenario) String() string {
	ens := "gaussian"
	switch s.Ens {
	case csoutlier.SparseRademacher:
		ens = "sparse"
	case csoutlier.SRHT:
		ens = "srht"
	}
	return fmt.Sprintf("streamcrash1 seed=%d n=%d s=%d l=%d w=%d m=%d k=%d mode=%g noise=%g ens=%s cw=%d snap=%d crash=%d proxy=%d:%d",
		s.Seed, s.N, s.S, s.L, s.W, s.M, s.K, s.Mode, s.Noise, ens,
		s.CrashWindow, s.SnapFlush, s.CrashFlush, s.ProxyMin, s.ProxyMax)
}

// ParseStreamCrashScenario decodes a StreamCrashScenario.String() line.
func ParseStreamCrashScenario(line string) (StreamCrashScenario, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "streamcrash1" {
		return StreamCrashScenario{}, fmt.Errorf("simtest: crash scenario line must start with %q", "streamcrash1")
	}
	var scn StreamCrashScenario
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return StreamCrashScenario{}, fmt.Errorf("simtest: malformed field %q", f)
		}
		var err error
		switch key {
		case "seed":
			scn.Seed, err = strconv.ParseUint(val, 10, 64)
		case "n":
			scn.N, err = strconv.Atoi(val)
		case "s":
			scn.S, err = strconv.Atoi(val)
		case "l":
			scn.L, err = strconv.Atoi(val)
		case "w":
			scn.W, err = strconv.Atoi(val)
		case "m":
			scn.M, err = strconv.Atoi(val)
		case "k":
			scn.K, err = strconv.Atoi(val)
		case "mode":
			scn.Mode, err = strconv.ParseFloat(val, 64)
		case "noise":
			scn.Noise, err = strconv.ParseFloat(val, 64)
		case "ens":
			switch val {
			case "gaussian":
				scn.Ens = csoutlier.Gaussian
			case "sparse":
				scn.Ens = csoutlier.SparseRademacher
			case "srht":
				scn.Ens = csoutlier.SRHT
			default:
				err = fmt.Errorf("unknown ensemble %q", val)
			}
		case "cw":
			scn.CrashWindow, err = strconv.Atoi(val)
		case "snap":
			scn.SnapFlush, err = strconv.Atoi(val)
		case "crash":
			scn.CrashFlush, err = strconv.Atoi(val)
		case "proxy":
			lo, hi, ok := strings.Cut(val, ":")
			if !ok {
				err = fmt.Errorf("want min:max")
				break
			}
			if scn.ProxyMin, err = strconv.ParseInt(lo, 10, 64); err == nil {
				scn.ProxyMax, err = strconv.ParseInt(hi, 10, 64)
			}
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return StreamCrashScenario{}, fmt.Errorf("simtest: field %q: %v", f, err)
		}
	}
	return scn, scn.validate()
}

// BuildStream materializes the scenario deterministically.
func (s StreamCrashScenario) BuildStream() (*StreamData, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	splits := make([]int, s.W)
	for w := range splits {
		splits[w] = s.L
	}
	return buildStreamData(s.Seed, s.N, s.S, s.Mode, s.Noise, splits), nil
}

// StreamCrashResult is what RunStreamCrash hands to the checker.
type StreamCrashResult struct {
	Agg      *stream.Aggregator // the restored aggregator (drained, closed)
	Sk       *csoutlier.Sketcher
	Expected []csoutlier.Sketch // [w] bit-exact shadow of the uninterrupted fold
	Kills    int64              // chaos-proxy connection kills
	Replayed int64              // retained frames the nodes requeued at restore
	Epoch    uint64             // restored aggregator's incarnation
}

// RunStreamCrash executes the crash-restart pipeline: a durable
// aggregator, one chaos proxy per node, the usual l-major flush drive —
// and at the seeded (SnapFlush, CrashFlush) points inside CrashWindow a
// snapshot write and an aggregator death. The restored successor comes
// up on a new listener with a bumped incarnation, the proxies retarget,
// and every node syncs (in node order, reproducing the l-major order of
// the lost frames) so retention replay re-folds exactly the frames the
// crash destroyed. A pre-snapshot frame is then re-delivered verbatim:
// the restored dedup books must refuse it.
func RunStreamCrash(scn StreamCrashScenario, data *StreamData) (*StreamCrashResult, error) {
	sk, err := csoutlier.NewSketcher(data.Keys, csoutlier.Config{
		M:             scn.M,
		Seed:          scn.Seed ^ 0x9e3779b97f4a7c15,
		MaxIterations: recoveryBudget(scn.S, scn.K),
		Ensemble:      scn.Ens,
	})
	if err != nil {
		return nil, err
	}
	snapDir, err := os.MkdirTemp("", "csstream-crash-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(snapDir)
	snapPath := filepath.Join(snapDir, "agg.snap")

	agg, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: scn.W, Durable: true})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go agg.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	closeAgg := func() {
		cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
		agg.Close(cctx)
		ccancel()
	}

	proxies := make([]*chaosProxy, scn.L)
	proxySeed := xrand.New(scn.Seed).Split(0x9097)
	for l := range proxies {
		p, err := startChaosProxy(ln.Addr().String(), proxySeed.Uint64(), scn.ProxyMin, scn.ProxyMax)
		if err != nil {
			closeAgg()
			return nil, err
		}
		defer p.Stop()
		proxies[l] = p
	}

	nodes := make([]*stream.Node, scn.L)
	shadow := make([]*csoutlier.Updater, scn.L)
	for l := range nodes {
		n, err := stream.Dial(ctx, proxies[l].Addr(), sk, NodeID(l), stream.NodeOptions{
			Epoch:       1,
			PushTimeout: 2 * time.Second,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			BackoffSeed: xrand.New(scn.Seed).Split(0xbac0ff ^ uint64(l)<<8).Uint64(),
		})
		if err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: dial node %d: %w", l, err)
		}
		nodes[l] = n
		shadow[l] = sk.NewUpdater()
	}

	res := &StreamCrashResult{Sk: sk}
	var snap *stream.Snapshot
	var dupPayload []byte
	var dupWindow, dupSeq uint64
	scratch := sk.ZeroSketch()
	for w := 1; w <= scn.W; w++ {
		expected := sk.ZeroSketch()
		for l := 0; l < scn.L; l++ {
			slice := data.WinSlices[w-1][l]
			for c := 0; c < streamChunks; c++ {
				lo, hi := len(slice)*c/streamChunks, len(slice)*(c+1)/streamChunks
				for idx := lo; idx < hi; idx++ {
					v := slice[idx]
					if v == 0 {
						continue
					}
					if err := nodes[l].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, fmt.Errorf("simtest: node %d observe: %w", l, err)
					}
					if err := shadow[l].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, err
					}
				}
				if err := nodes[l].Flush(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d flush (window %d): %w", l, w, err)
				}
				if _, err := shadow[l].DrainInto(scratch); err != nil {
					closeAgg()
					return nil, err
				}
				if err := expected.Add(scratch); err != nil {
					closeAgg()
					return nil, err
				}

				if w != scn.CrashWindow {
					continue
				}
				// The f==0 / SnapFlush / CrashFlush marks are not mutually
				// exclusive (SnapFlush may be 0), so each is its own check.
				f := l*streamChunks + c
				if f == 0 {
					// Remember a snapshot-covered frame verbatim for the
					// post-restore duplicate probe.
					if dupPayload, err = scratch.MarshalBinary(); err != nil {
						closeAgg()
						return nil, err
					}
					st := nodes[l].Stats()
					dupWindow, dupSeq = st.Window, st.Seq
				}
				if f == scn.SnapFlush {
					// Durability point: everything flushed so far is folded
					// (acks follow folds), so the snapshot covers exactly
					// flushes [0, SnapFlush] of this window plus all earlier
					// windows.
					if err := agg.WriteSnapshot(snapPath); err != nil {
						closeAgg()
						return nil, fmt.Errorf("simtest: snapshot at flush %d: %w", f, err)
					}
					if snap, err = stream.LoadSnapshot(snapPath); err != nil {
						closeAgg()
						return nil, fmt.Errorf("simtest: load snapshot: %w", err)
					}
				}
				if f == scn.CrashFlush {
					// The crash: the aggregator dies with (SnapFlush,
					// CrashFlush] folded but not snapshotted. The successor
					// restores, bumps its incarnation, and the nodes' syncs —
					// in node order, matching the l-major flush order of the
					// lost frames — replay retention so the fold sequence
					// continues exactly where the shadow says it should.
					closeAgg()
					ln2, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						return nil, err
					}
					agg2, err := stream.RestoreAggregator(sk, stream.AggregatorOptions{Windows: scn.W, Durable: true}, snap)
					if err != nil {
						ln2.Close()
						return nil, fmt.Errorf("simtest: restore: %w", err)
					}
					agg = agg2
					go agg.Serve(ln2)
					for _, p := range proxies {
						p.Retarget(ln2.Addr().String())
					}
					for ll := 0; ll < scn.L; ll++ {
						if err := nodes[ll].Sync(ctx); err != nil {
							closeAgg()
							return nil, fmt.Errorf("simtest: node %d post-restore sync: %w", ll, err)
						}
					}
					// Replay-of-the-replayed: a frame the snapshot covers,
					// re-delivered verbatim, must dedup against the restored
					// books and fold nothing.
					dc, err := stream.DialClient(ctx, ln2.Addr().String(), 5*time.Second)
					if err != nil {
						closeAgg()
						return nil, err
					}
					ack, err := dc.PushDelta(NodeID(0), 1, dupWindow, dupSeq, 1, dupPayload)
					dc.Close()
					if err != nil {
						closeAgg()
						return nil, fmt.Errorf("simtest: post-restore duplicate probe: %w", err)
					}
					if ack.Applied || ack.Status != stream.StatusDuplicate {
						closeAgg()
						return nil, fmt.Errorf("simtest: snapshot-covered frame refolded after restore: %+v", ack)
					}
				}
			}
		}
		res.Expected = append(res.Expected, expected)
		if w < scn.W {
			agg.Rotate()
			for l := range nodes {
				if err := nodes[l].Sync(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d sync: %w", l, err)
				}
			}
		}
	}

	for l := range nodes {
		if err := nodes[l].Close(ctx); err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: node %d close: %w", l, err)
		}
		res.Replayed += nodes[l].Stats().Replayed
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = agg.Close(cctx)
	ccancel()
	if err != nil {
		return nil, err
	}
	res.Agg = agg
	res.Epoch = agg.Epoch()
	for _, p := range proxies {
		res.Kills += p.Kills()
	}
	return res, nil
}

// CheckStreamCrashScenario materializes and runs one crash-restart
// scenario, then checks: (1) every per-window sketch of the restored
// aggregator is bit-identical to the shadow mirror of an uninterrupted
// fold — snapshot restore plus retention replay reconstructed the exact
// sequence; (2) recovered outliers match the exact centralized oracle
// on every window span; (3) the incarnation bumped, the lost frames
// were replayed, and the frame books balance.
func CheckStreamCrashScenario(scn StreamCrashScenario) error {
	data, err := scn.BuildStream()
	if err != nil {
		return err
	}
	res, err := RunStreamCrash(scn, data)
	if err != nil {
		return err
	}
	if res.Kills < 1 {
		return fmt.Errorf("chaos proxies killed no connections; budgets [%d, %d] too generous for this schedule",
			scn.ProxyMin, scn.ProxyMax)
	}
	if res.Epoch != 2 {
		return fmt.Errorf("restored aggregator incarnation %d, want 2", res.Epoch)
	}
	// Every frame folded in (SnapFlush, CrashFlush] died with the first
	// incarnation; retention replay is the only way it got back in.
	if lost := int64(scn.CrashFlush - scn.SnapFlush); res.Replayed < lost {
		return fmt.Errorf("nodes replayed %d retained frames, crash lost %d", res.Replayed, lost)
	}

	// (1) Bit-identical per-window global sketches across the restart.
	for w := 1; w <= scn.W; w++ {
		age := scn.W - w
		got, err := res.Agg.WindowSketch(age)
		if err != nil {
			return fmt.Errorf("window %d (age %d): %w", w, age, err)
		}
		want := res.Expected[w-1]
		for i := range got.Y {
			if math.Float64bits(got.Y[i]) != math.Float64bits(want.Y[i]) {
				return fmt.Errorf("window %d sketch diverges from uninterrupted shadow at Y[%d]: %v != %v (bit-exact)",
					w, i, got.Y[i], want.Y[i])
			}
		}
	}

	// (2) Span outliers vs the exact centralized oracle.
	for from := 0; from < scn.W; from++ {
		for to := from; to < scn.W; to++ {
			rep, err := res.Agg.Outliers(from, to, scn.K)
			if err != nil {
				return fmt.Errorf("span [%d,%d]: %w", from, to, err)
			}
			ans, err := streamSpanOracle(scn.N, scn.K, data, scn.W-to, scn.W-from)
			if err != nil {
				return err
			}
			if err := compareReport(rep, ans); err != nil {
				return fmt.Errorf("span [%d,%d] differential oracle: %w", from, to, err)
			}
		}
	}

	// (3) Books balance on the restored aggregator: the duplicate probe
	// and the deduped replays are accounted, nothing dropped or rejected,
	// and the liveness table holds every node, caught up, on epoch 1.
	stats := res.Agg.Stats()
	if stats.Frames != stats.Applied+stats.Duplicates+stats.Dropped+stats.Rejected {
		return fmt.Errorf("frame identity violated: %d frames != %d applied + %d dup + %d dropped + %d rejected",
			stats.Frames, stats.Applied, stats.Duplicates, stats.Dropped, stats.Rejected)
	}
	if stats.Duplicates < 1 {
		return fmt.Errorf("restored aggregator saw no duplicates; the probe and pre-snapshot replays should dedup: %+v", stats)
	}
	sts := res.Agg.Nodes()
	if len(sts) != scn.L {
		return fmt.Errorf("%d nodes in liveness table, want %d", len(sts), scn.L)
	}
	for _, ns := range sts {
		switch {
		case ns.State != stream.StateLive:
			return fmt.Errorf("node %s state %q after restore, want live", ns.Node, ns.State)
		case ns.Epoch != 1:
			return fmt.Errorf("node %s status %+v, want epoch 1", ns.Node, ns)
		case ns.Lag != 0:
			return fmt.Errorf("node %s still lags after final sync: %+v", ns.Node, ns)
		}
	}
	return nil
}
