package simtest

import (
	"context"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"time"

	"csoutlier"
	"csoutlier/internal/linalg"
	"csoutlier/internal/outlier"
	"csoutlier/internal/stream"
	"csoutlier/internal/xrand"
)

// pointThreshold is the detection threshold every point query in this
// flavor uses. buildStreamData plants per-window magnitudes of at least
// 100, so 50 splits true single-window outliers from clean keys with a
// 2× margin; on multi-window spans the checker compares each flag
// against the exact span deviation instead of assuming the plant stayed
// hot (per-window signs are random, so spans can cancel).
const pointThreshold = 50

// pointProbeClean is how many seeded clean (non-planted) keys the
// checker samples per span: enough to catch a biased estimator, small
// enough to keep a scenario under a second.
const pointProbeClean = 48

// pointMidProbeClean is the clean-key sample size for mid-run probes
// (issued between flushes and rotations while the aggregator is live).
const pointMidProbeClean = 8

// pointFlagBand is the dead zone around the threshold inside which the
// checker does not assert the Outlier flag: the estimate is exact only
// to floating-point accumulation error, so a span whose exact deviation
// lands within the band could honestly flag either way. Deviations are
// continuous functions of the seed, so landing inside the band is a
// measure-≈0 event; everywhere else the flag must match the oracle.
const pointFlagBand = 1e-3

// StreamPointQScenario is one fully specified point-query soak: W
// windows of per-node data pushed as deltas into a live count-sketch
// stream.Aggregator, with recovery-free point queries issued both
// mid-run (between flushes and rotations) and over every window span at
// the end, each answer compared against the exact centralized oracle.
// The span top-k path is checked once per scenario too — the hybrid
// deployment shape, where the same folded window ring serves both BOMP
// span queries and O(depth) point lookups.
type StreamPointQScenario struct {
	Seed  uint64
	N     int     // key-space size
	S     int     // planted outliers (same positions every window)
	L     int     // node count
	W     int     // windows driven
	Depth int     // count-sketch hash rows (M = Depth·Width)
	Width int     // count-sketch buckets per row
	K     int     // outliers per span top-k query
	Mode  float64 // base bias; per-window biases are seeded multiples
	Noise float64 // per-node zero-sum noise amplitude per window
}

// M is the scenario's measurement budget: Depth hash rows of Width
// buckets each.
func (s StreamPointQScenario) M() int { return s.Depth * s.Width }

// GenerateStreamPointQ derives point-query scenario index from the base
// seed. Depth and width are kept large relative to S so that a clean
// key's median estimate is corrupted only if a majority of its hash
// rows collide with planted outliers — at S ≤ 3 over ≥ 96 buckets that
// is a ≲1e-4-per-key event, far below the soak's probe budget.
func GenerateStreamPointQ(base uint64, index int) StreamPointQScenario {
	rng := xrand.New(base).Split(uint64(index) + 0x901f42e5)
	scn := StreamPointQScenario{Seed: rng.Uint64()}
	scn.S = 1 + rng.Intn(3)
	scn.Depth = 7 + 2*rng.Intn(2)   // 7 or 9 rows
	scn.Width = 96 + 32*rng.Intn(3) // 96, 128 or 160 buckets
	m := scn.M()
	scn.N = 2*m + rng.Intn(m+1) // ≥ 2× compression
	scn.K = 1 + rng.Intn(scn.S+1)
	scn.Mode = 100 + 4900*rng.Float64() // nonzero: every node flushes every window
	if rng.Float64() < 0.5 {
		scn.Mode = -scn.Mode
	}
	if rng.Float64() < 0.6 {
		scn.Noise = (math.Abs(scn.Mode) + 500) * (0.1 + rng.Float64())
	}
	scn.L = 3 + rng.Intn(3)
	scn.W = 2 + rng.Intn(3)
	return scn
}

func (s StreamPointQScenario) validate() error {
	switch {
	case s.N < 4 || s.S < 1 || s.S > s.N/4:
		return fmt.Errorf("simtest: pointq scenario N=%d S=%d out of range", s.N, s.S)
	case s.L < 2:
		return fmt.Errorf("simtest: pointq scenario needs ≥ 2 nodes, got %d", s.L)
	case s.W < 1:
		return fmt.Errorf("simtest: W=%d", s.W)
	case s.Depth < 1 || s.Depth > 64:
		return fmt.Errorf("simtest: depth %d outside [1, 64]", s.Depth)
	case s.Width < 2:
		return fmt.Errorf("simtest: width %d < 2", s.Width)
	case s.M() > s.N:
		return fmt.Errorf("simtest: M=%d exceeds N=%d (no compression)", s.M(), s.N)
	case s.K < 1:
		return fmt.Errorf("simtest: K=%d", s.K)
	case s.Mode == 0:
		return fmt.Errorf("simtest: pointq scenarios need a nonzero mode")
	}
	return nil
}

// String encodes the scenario as a replayable one-liner.
func (s StreamPointQScenario) String() string {
	return fmt.Sprintf("streampointq1 seed=%d n=%d s=%d l=%d w=%d d=%d wid=%d k=%d mode=%g noise=%g",
		s.Seed, s.N, s.S, s.L, s.W, s.Depth, s.Width, s.K, s.Mode, s.Noise)
}

// ParseStreamPointQScenario decodes a StreamPointQScenario.String() line.
func ParseStreamPointQScenario(line string) (StreamPointQScenario, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "streampointq1" {
		return StreamPointQScenario{}, fmt.Errorf("simtest: pointq scenario line must start with %q", "streampointq1")
	}
	var scn StreamPointQScenario
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return StreamPointQScenario{}, fmt.Errorf("simtest: malformed field %q", f)
		}
		var err error
		switch key {
		case "seed":
			scn.Seed, err = strconv.ParseUint(val, 10, 64)
		case "n":
			scn.N, err = strconv.Atoi(val)
		case "s":
			scn.S, err = strconv.Atoi(val)
		case "l":
			scn.L, err = strconv.Atoi(val)
		case "w":
			scn.W, err = strconv.Atoi(val)
		case "d":
			scn.Depth, err = strconv.Atoi(val)
		case "wid":
			scn.Width, err = strconv.Atoi(val)
		case "k":
			scn.K, err = strconv.Atoi(val)
		case "mode":
			scn.Mode, err = strconv.ParseFloat(val, 64)
		case "noise":
			scn.Noise, err = strconv.ParseFloat(val, 64)
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return StreamPointQScenario{}, fmt.Errorf("simtest: field %q: %v", f, err)
		}
	}
	return scn, scn.validate()
}

// BuildStream materializes the scenario deterministically.
func (s StreamPointQScenario) BuildStream() (*StreamData, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	splits := make([]int, s.W)
	for w := range splits {
		splits[w] = s.L
	}
	return buildStreamData(s.Seed, s.N, s.S, s.Mode, s.Noise, splits), nil
}

// cleanProbes returns the scenario's deterministic clean-key sample:
// pointProbeClean distinct indices outside the planted support.
func (s StreamPointQScenario) cleanProbes(d *StreamData) []int {
	hot := make(map[int]bool, len(d.Support))
	for _, j := range d.Support {
		hot[j] = true
	}
	rng := xrand.New(s.Seed).Split(0x9b0be5)
	seen := make(map[int]bool, pointProbeClean)
	out := make([]int, 0, pointProbeClean)
	for len(out) < pointProbeClean {
		j := rng.Intn(s.N)
		if hot[j] || seen[j] {
			continue
		}
		seen[j] = true
		out = append(out, j)
	}
	return out
}

// pointProbe is one mid-run point query RunStreamPointQ recorded for
// the checker: issued after `Window` windows had been flushed (and
// before the next rotation), over window ages [FromAge, ToAge].
type pointProbe struct {
	Window  int // windows completed when the probe was issued (1-based)
	FromAge int
	ToAge   int
	Index   int // key index probed
	Ans     csoutlier.PointAnswer
}

// StreamPointQResult is what RunStreamPointQ hands to the checker: the
// live aggregator (drained and closed, window ring still queryable),
// the shadow-mirrored expected window sketches, and the mid-run probes.
type StreamPointQResult struct {
	Agg      *stream.Aggregator
	Expected []csoutlier.Sketch // [w] bit-exact expected sketch of window w+1
	Mid      []pointProbe
}

// RunStreamPointQ executes the streaming pipeline for real: a TCP
// stream.Aggregator over a count-sketch sketcher, one stream.Node per
// simulated node, W windows driven as mid-window delta flushes with a
// shadow Updater mirror. After each window's flushes — while the
// aggregator is live and about to rotate — it issues point queries over
// the newest window and the full span so far, recording the answers for
// the checker. No chaos here: fault injection is the other flavors' job;
// this one pins query-path correctness on a deterministic fold sequence.
func RunStreamPointQ(scn StreamPointQScenario, data *StreamData) (*StreamPointQResult, error) {
	sk, err := csoutlier.NewSketcher(data.Keys, csoutlier.Config{
		M:             scn.M(),
		Seed:          scn.Seed ^ 0x9e3779b97f4a7c15,
		MaxIterations: recoveryBudget(scn.S, scn.K),
		Ensemble:      csoutlier.CountSketch,
		Depth:         scn.Depth,
	})
	if err != nil {
		return nil, err
	}
	agg, err := stream.NewAggregator(sk, stream.AggregatorOptions{Windows: scn.W})
	if err != nil {
		return nil, err
	}
	if !agg.SupportsPointQuery() {
		return nil, fmt.Errorf("simtest: count-sketch aggregator does not support point queries")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go agg.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	closeAgg := func() {
		cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
		agg.Close(cctx)
		ccancel()
	}

	nodes := make([]*stream.Node, scn.L)
	shadow := make([]*csoutlier.Updater, scn.L)
	for l := range nodes {
		n, err := stream.Dial(ctx, ln.Addr().String(), sk, NodeID(l), stream.NodeOptions{
			Epoch:       1,
			PushTimeout: 2 * time.Second,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			BackoffSeed: xrand.New(scn.Seed).Split(0xbac0ff ^ uint64(l)<<8).Uint64(),
		})
		if err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: dial node %d: %w", l, err)
		}
		nodes[l] = n
		shadow[l] = sk.NewUpdater()
	}

	clean := scn.cleanProbes(data)
	res := &StreamPointQResult{Agg: agg}
	scratch := sk.ZeroSketch()
	for w := 1; w <= scn.W; w++ {
		expected := sk.ZeroSketch()
		for l := 0; l < scn.L; l++ {
			slice := data.WinSlices[w-1][l]
			for c := 0; c < streamChunks; c++ {
				lo, hi := len(slice)*c/streamChunks, len(slice)*(c+1)/streamChunks
				for idx := lo; idx < hi; idx++ {
					v := slice[idx]
					if v == 0 {
						continue
					}
					if err := nodes[l].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, fmt.Errorf("simtest: node %d observe: %w", l, err)
					}
					if err := shadow[l].Observe(data.Keys[idx], v); err != nil {
						closeAgg()
						return nil, err
					}
				}
				if err := nodes[l].Flush(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d flush (window %d): %w", l, w, err)
				}
				if _, err := shadow[l].DrainInto(scratch); err != nil {
					closeAgg()
					return nil, err
				}
				if err := expected.Add(scratch); err != nil {
					closeAgg()
					return nil, err
				}
			}
		}
		res.Expected = append(res.Expected, expected)

		// Mid-run probes: every flush above was acked, so the window ring
		// holds exactly windows 1..w. Probe the newest window alone and
		// the whole span so far, on the planted keys plus a small clean
		// sample. Answers are checked later against the exact oracle.
		spans := [][2]int{{0, 0}}
		if w > 1 {
			spans = append(spans, [2]int{0, w - 1})
		}
		probes := append(append([]int{}, data.Support...), clean[:pointMidProbeClean]...)
		for _, span := range spans {
			for _, idx := range probes {
				ans, err := agg.PointQuery(span[0], span[1], data.Keys[idx], pointThreshold)
				if err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: mid-run point query window %d span [%d,%d] key %d: %w",
						w, span[0], span[1], idx, err)
				}
				res.Mid = append(res.Mid, pointProbe{
					Window: w, FromAge: span[0], ToAge: span[1], Index: idx, Ans: ans,
				})
			}
		}

		if w < scn.W {
			agg.Rotate()
			for l := range nodes {
				if err := nodes[l].Sync(ctx); err != nil {
					closeAgg()
					return nil, fmt.Errorf("simtest: node %d sync: %w", l, err)
				}
			}
		}
	}

	for l := range nodes {
		if err := nodes[l].Close(ctx); err != nil {
			closeAgg()
			return nil, fmt.Errorf("simtest: node %d close: %w", l, err)
		}
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = agg.Close(cctx)
	ccancel()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// pointSpanTruth is the exact centralized ground truth for one window
// span: the uncompressed aggregate and its exact majority mode.
type pointSpanTruth struct {
	sum  linalg.Vector
	mode float64
}

func pointTruthFor(n int, d *StreamData, wFrom, wTo int) (pointSpanTruth, error) {
	sum := make(linalg.Vector, n)
	for w := wFrom; w <= wTo; w++ {
		sum.Add(d.WinGlobal[w-1])
	}
	mode, ok := outlier.Mode(sum)
	if !ok {
		return pointSpanTruth{}, fmt.Errorf("simtest: span [%d,%d] has no exact majority mode", wFrom, wTo)
	}
	return pointSpanTruth{sum: sum, mode: mode}, nil
}

// checkPointAnswer compares one PointAnswer against the exact span
// truth: mode and value within matchTol, Deviation = Value − Mode, and
// the Outlier flag equal to the oracle's verdict whenever the exact
// deviation is not inside the pointFlagBand dead zone around the
// threshold.
func checkPointAnswer(truth pointSpanTruth, idx int, ans csoutlier.PointAnswer) error {
	exact := truth.sum[idx]
	if !closeRel(ans.Mode, truth.mode) {
		return fmt.Errorf("key %d: mode %v, oracle %v", idx, ans.Mode, truth.mode)
	}
	if !closeRel(ans.Value, exact) {
		return fmt.Errorf("key %d: value %v, oracle %v", idx, ans.Value, exact)
	}
	if ans.Deviation != ans.Value-ans.Mode {
		return fmt.Errorf("key %d: deviation %v != value %v − mode %v", idx, ans.Deviation, ans.Value, ans.Mode)
	}
	dev := math.Abs(exact - truth.mode)
	if math.Abs(dev-pointThreshold) <= pointFlagBand {
		return nil // exact deviation inside the dead zone: either flag is honest
	}
	if want := dev >= pointThreshold; ans.Outlier != want {
		return fmt.Errorf("key %d: outlier flag %v, oracle deviation %v vs threshold %v says %v",
			idx, ans.Outlier, dev, float64(pointThreshold), want)
	}
	return nil
}

// CheckStreamPointQScenario is the point-query soak's unit of work:
// materialize the scenario, drive the real push pipeline into a
// count-sketch aggregator with mid-run probes, then check (1) every
// per-window sketch is bit-identical to the shadow fold, (2) every
// mid-run and final point query agrees with the exact centralized
// oracle — planted keys recovered to matchTol and flagged correctly,
// clean keys on the mode and never flagged (outside the threshold dead
// zone), (3) the hybrid span top-k path still matches the oracle on the
// same ring, and (4) the pointq_* books balance.
func CheckStreamPointQScenario(scn StreamPointQScenario) error {
	data, err := scn.BuildStream()
	if err != nil {
		return err
	}
	res, err := RunStreamPointQ(scn, data)
	if err != nil {
		return err
	}

	// (1) Bit-identical per-window global sketches.
	for w := 1; w <= scn.W; w++ {
		age := scn.W - w
		got, err := res.Agg.WindowSketch(age)
		if err != nil {
			return fmt.Errorf("window %d (age %d): %w", w, age, err)
		}
		want := res.Expected[w-1]
		for i := range got.Y {
			if math.Float64bits(got.Y[i]) != math.Float64bits(want.Y[i]) {
				return fmt.Errorf("window %d sketch diverges from shadow fold at Y[%d]: %v != %v (bit-exact)",
					w, i, got.Y[i], want.Y[i])
			}
		}
	}

	// (2a) Mid-run probes against the exact oracle. A probe issued after
	// window w at ages [from, to] covers windows [w−to, w−from].
	truths := map[[2]int]pointSpanTruth{}
	truthFor := func(wFrom, wTo int) (pointSpanTruth, error) {
		if tr, ok := truths[[2]int{wFrom, wTo}]; ok {
			return tr, nil
		}
		tr, err := pointTruthFor(scn.N, data, wFrom, wTo)
		if err == nil {
			truths[[2]int{wFrom, wTo}] = tr
		}
		return tr, err
	}
	flagged := int64(0)
	for _, p := range res.Mid {
		tr, err := truthFor(p.Window-p.ToAge, p.Window-p.FromAge)
		if err != nil {
			return err
		}
		if p.Ans.Outlier {
			flagged++
		}
		if err := checkPointAnswer(tr, p.Index, p.Ans); err != nil {
			return fmt.Errorf("mid-run probe after window %d, span ages [%d,%d]: %w",
				p.Window, p.FromAge, p.ToAge, err)
		}
	}

	// (2b) Final sweep: every contiguous window span, every planted key
	// plus the full clean sample, against the exact oracle.
	clean := scn.cleanProbes(data)
	probes := append(append([]int{}, data.Support...), clean...)
	queries := int64(len(res.Mid))
	for from := 0; from < scn.W; from++ {
		for to := from; to < scn.W; to++ {
			tr, err := truthFor(scn.W-to, scn.W-from)
			if err != nil {
				return err
			}
			for _, idx := range probes {
				ans, err := res.Agg.PointQuery(from, to, data.Keys[idx], pointThreshold)
				queries++
				if err != nil {
					return fmt.Errorf("span [%d,%d] point query key %d: %w", from, to, idx, err)
				}
				if ans.Outlier {
					flagged++
				}
				if err := checkPointAnswer(tr, idx, ans); err != nil {
					return fmt.Errorf("span [%d,%d]: %w", from, to, err)
				}
			}
		}
	}

	// (3) Hybrid mode: the same ring still answers the span top-k query
	// through BOMP recovery, exactly.
	rep, err := res.Agg.Outliers(0, scn.W-1, scn.K)
	if err != nil {
		return fmt.Errorf("hybrid span top-k: %w", err)
	}
	ans, err := streamSpanOracle(scn.N, scn.K, data, 1, scn.W)
	if err != nil {
		return err
	}
	if err := compareReport(rep, ans); err != nil {
		return fmt.Errorf("hybrid span top-k differential oracle: %w", err)
	}

	// (4) The pointq books balance: every query counted exactly once,
	// every flag counted, refreshes within [distinct spans, queries],
	// and the registry agrees with the AggStats snapshot.
	stats := res.Agg.Stats()
	if stats.PointQueries != queries {
		return fmt.Errorf("PointQueries = %d, issued %d", stats.PointQueries, queries)
	}
	if stats.PointOutliers != flagged {
		return fmt.Errorf("PointOutliers = %d, observed %d flagged answers", stats.PointOutliers, flagged)
	}
	spans := int64(scn.W * (scn.W + 1) / 2)
	if stats.PointRefreshes < spans || stats.PointRefreshes > queries {
		return fmt.Errorf("PointRefreshes = %d outside [%d distinct spans, %d queries]",
			stats.PointRefreshes, spans, queries)
	}
	if reg := res.Agg.MetricsRegistry(); reg != nil {
		for _, c := range []struct {
			name string
			want int64
		}{
			{"pointq_queries_total", stats.PointQueries},
			{"pointq_refreshes_total", stats.PointRefreshes},
			{"pointq_outliers_total", stats.PointOutliers},
		} {
			if got := reg.Counter(c.name, "").Value(); got != c.want {
				return fmt.Errorf("registry %s = %d, AggStats says %d", c.name, got, c.want)
			}
		}
	}
	return nil
}
