package stream

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"csoutlier"
	"csoutlier/internal/obs"
	"csoutlier/internal/xrand"
)

// testDelta builds one marshalable delta payload.
func testDelta(t *testing.T, sk *csoutlier.Sketcher, key string, v float64) []byte {
	t.Helper()
	u := sk.NewUpdater()
	if err := u.Observe(key, v); err != nil {
		t.Fatal(err)
	}
	payload, err := u.Sketch().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestOutliersCacheHitAfterConcurrentFold pins the cache-generation
// fix: a fold landing between a query's cache-miss decision and its
// span snapshot must leave the cache entry tagged with the generation
// whose data it actually holds, so an identical follow-up query (with
// no further folds) is a cache hit. The old code tagged the entry with
// a generation read before the snapshot, so this exact interleaving
// produced an entry that was never hittable.
func TestOutliersCacheHitAfterConcurrentFold(t *testing.T) {
	sk := testSketcher(t, 256, 96, 7)
	agg, err := NewAggregator(sk, AggregatorOptions{Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close(context.Background())

	fold := func(seq uint64, key string) {
		t.Helper()
		ack := agg.apply(pushRequest{
			Kind: pushDelta, Node: "n1", Epoch: 1,
			Window: 1, Seq: seq, Payload: testDelta(t, sk, key, 100),
		})
		if !ack.Applied {
			t.Fatalf("fold seq %d not applied: %+v", seq, ack)
		}
	}
	fold(1, "key001")

	folded := false
	agg.testHookBeforeSnapshot = func() {
		if !folded {
			folded = true
			fold(2, "key002")
		}
	}
	r1, err := agg.Outliers(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !folded {
		t.Fatal("hook did not run: query was not a miss")
	}
	agg.testHookBeforeSnapshot = nil

	r2, err := agg.Outliers(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatal("second identical query recomputed: cache entry was tagged with a stale generation")
	}
	s := agg.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", s.CacheHits, s.CacheMisses)
	}
}

// TestCacheEvictionKeepsHotQueries pins the eviction fix: when the
// cache overflows, stale-generation entries go first, so a standing
// query refreshed after the latest fold survives a sweep of distinct
// one-off queries. The old clear-everything eviction evicted it.
func TestCacheEvictionKeepsHotQueries(t *testing.T) {
	sk := testSketcher(t, 256, 96, 11)
	agg, err := NewAggregator(sk, AggregatorOptions{Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close(context.Background())

	ack := agg.apply(pushRequest{
		Kind: pushDelta, Node: "n1", Epoch: 1,
		Window: 1, Seq: 1, Payload: testDelta(t, sk, "key000", 50),
	})
	if !ack.Applied {
		t.Fatalf("fold not applied: %+v", ack)
	}
	query := func(k int) {
		t.Helper()
		if _, err := agg.Outliers(0, 0, k); err != nil {
			t.Fatalf("Outliers(k=%d): %v", k, err)
		}
	}
	// 40 one-off queries at the current generation, all made stale by the
	// next fold.
	for k := 1; k <= 40; k++ {
		query(k)
	}
	ack = agg.apply(pushRequest{
		Kind: pushDelta, Node: "n1", Epoch: 1,
		Window: 1, Seq: 2, Payload: testDelta(t, sk, "key001", 60),
	})
	if !ack.Applied {
		t.Fatalf("fold not applied: %+v", ack)
	}
	const standing = 41
	query(standing) // the hot standing query, fresh generation
	// A sweep of distinct queries pushes the cache past its cap. The 40
	// stale entries must be evicted before any fresh one.
	for k := 42; k <= 71; k++ {
		query(k)
	}
	before := agg.Stats()
	query(standing)
	after := agg.Stats()
	if hits := after.CacheHits - before.CacheHits; hits != 1 {
		t.Fatalf("standing query after sweep: %d cache hits, want 1 (evicted?)", hits)
	}
	agg.mu.Lock()
	size := len(agg.cache)
	agg.mu.Unlock()
	if size > cacheCap {
		t.Fatalf("cache size %d exceeds cap %d", size, cacheCap)
	}
}

// TestOutliersWarmBatchRefresh pins the batched standing-query path: a
// query becomes standing once it repeats; when any query misses after a
// fold, stale standing entries piggyback on its recovery batch (warm-
// started from their previous selection) and come back as cache hits,
// bit-identical to a cold Detect; one-off queries are never piggybacked.
func TestOutliersWarmBatchRefresh(t *testing.T) {
	sk := testSketcher(t, 256, 96, 19)
	agg, err := NewAggregator(sk, AggregatorOptions{Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close(context.Background())

	fold := func(seq uint64, key string, v float64) {
		t.Helper()
		ack := agg.apply(pushRequest{
			Kind: pushDelta, Node: "n1", Epoch: 1,
			Window: 1, Seq: seq, Payload: testDelta(t, sk, key, v),
		})
		if !ack.Applied {
			t.Fatalf("fold seq %d not applied: %+v", seq, ack)
		}
	}
	query := func(k int) *csoutlier.Report {
		t.Helper()
		r, err := agg.Outliers(0, 0, k)
		if err != nil {
			t.Fatalf("Outliers(k=%d): %v", k, err)
		}
		return r
	}
	queries := 0
	count := func(k int) *csoutlier.Report { queries++; return query(k) }

	fold(1, "key004", 900)
	// k=3 and k=5 repeat → standing. k=7 is a one-off.
	count(3)
	count(3)
	count(5)
	count(5)
	count(7)

	fold(2, "key009", -700) // everything cached is now stale

	// A brand-new query misses; the two stale standing queries must ride
	// its batch, warm-started; the one-off must not.
	before := agg.Stats()
	count(9)
	after := agg.Stats()
	if got := after.BatchRefreshes - before.BatchRefreshes; got != 2 {
		t.Fatalf("batch refreshes = %d, want 2 (the two standing queries)", got)
	}
	if got := after.WarmStarts - before.WarmStarts; got < 2 {
		t.Fatalf("warm starts = %d, want >= 2", got)
	}

	// The piggybacked refresh makes the standing queries cache hits at
	// the new generation — and the served report must be bit-identical to
	// a cold Detect over the same span.
	before = agg.Stats()
	refreshed := count(3)
	after = agg.Stats()
	if after.CacheHits-before.CacheHits != 1 {
		t.Fatal("standing query not refreshed by the batch: cache miss")
	}
	rs, err := agg.RangeSketch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sk.Detect(rs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed.Outliers) != len(cold.Outliers) {
		t.Fatalf("refreshed report has %d outliers, cold %d", len(refreshed.Outliers), len(cold.Outliers))
	}
	for i := range cold.Outliers {
		if refreshed.Outliers[i] != cold.Outliers[i] {
			t.Fatalf("outlier %d: refreshed %+v != cold %+v", i, refreshed.Outliers[i], cold.Outliers[i])
		}
	}
	if refreshed.Iterations != cold.Iterations || refreshed.Residual != cold.Residual {
		t.Fatalf("refreshed diagnostics (%d, %v) != cold (%d, %v)",
			refreshed.Iterations, refreshed.Residual, cold.Iterations, cold.Residual)
	}

	// The one-off was not refreshed: asking again is a miss.
	before = agg.Stats()
	count(7)
	after = agg.Stats()
	if after.CacheMisses-before.CacheMisses != 1 {
		t.Fatal("one-off query was piggybacked: refresh batch must only carry standing queries")
	}

	// Every query is exactly one hit or one miss — the soak identity.
	s := agg.Stats()
	if s.CacheHits+s.CacheMisses != int64(queries) {
		t.Fatalf("hits %d + misses %d != %d queries", s.CacheHits, s.CacheMisses, queries)
	}
}

// TestBackoffDelayDeterministic pins the seedable-jitter contract: the
// same RNG seed yields the same backoff sequence (so a simulation soak
// replays reconnect timing), different seeds diverge, and every delay
// stays inside the equal-jitter envelope [d/2, d].
func TestBackoffDelayDeterministic(t *testing.T) {
	const base, max = time.Millisecond, 50 * time.Millisecond
	a, b := xrand.New(123), xrand.New(123)
	other := xrand.New(456)
	diverged := false
	for attempt := 1; attempt <= 12; attempt++ {
		da := backoffDelay(a, attempt, base, max)
		db := backoffDelay(b, attempt, base, max)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v and %v", attempt, da, db)
		}
		if dc := backoffDelay(other, attempt, base, max); dc != da {
			diverged = true
		}
		d := base
		for i := 1; i < attempt && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
		if da < d/2 || da > d {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, da, d/2, d)
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter for 12 straight draws")
	}
}

// TestAggregatorMetricsExposition checks the registry is the single
// source of truth: the AggStats snapshot satisfies the frame identity,
// its numbers agree exactly with the registry's counters, and the
// rendered exposition is well-formed and carries the required families.
func TestAggregatorMetricsExposition(t *testing.T) {
	sk := testSketcher(t, 256, 96, 13)
	reg := obs.NewRegistry()
	agg, err := NewAggregator(sk, AggregatorOptions{Windows: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close(context.Background())

	payload := testDelta(t, sk, "key007", 80)
	push := func(window, seq uint64) Ack {
		return agg.apply(pushRequest{
			Kind: pushDelta, Node: "n1", Epoch: 1,
			Window: window, Seq: seq, Payload: payload,
		})
	}
	if ack := push(1, 1); !ack.Applied {
		t.Fatalf("apply: %+v", ack)
	}
	if ack := push(1, 1); ack.Status != StatusDuplicate {
		t.Fatalf("duplicate: %+v", ack)
	}
	agg.Rotate()
	agg.Rotate()
	if ack := push(1, 2); ack.Status != StatusDroppedOld {
		t.Fatalf("dropped: %+v", ack)
	}
	if ack := push(3, 0); ack.Err == "" {
		t.Fatalf("seq 0 not rejected: %+v", ack)
	}
	if _, err := agg.Outliers(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Outliers(0, 0, 4); err != nil {
		t.Fatal(err)
	}

	s := agg.Stats()
	if s.Frames != s.Applied+s.Duplicates+s.Dropped+s.Rejected {
		t.Fatalf("frame identity violated: %d != %d+%d+%d+%d",
			s.Frames, s.Applied, s.Duplicates, s.Dropped, s.Rejected)
	}
	if s.Frames != 4 || s.Applied != 1 || s.Duplicates != 1 || s.Dropped != 1 || s.Rejected != 1 {
		t.Fatalf("counters = %+v, want one frame of each outcome", s)
	}
	if s.CacheHits != 1 || s.CacheMisses != 1 || s.Rotations != 2 {
		t.Fatalf("cache %d/%d rotations %d, want 1/1 and 2", s.CacheHits, s.CacheMisses, s.Rotations)
	}
	// The struct snapshot and the registry must be the same books.
	if v := reg.Counter("stream_frames_total", "").Value(); v != s.Frames {
		t.Fatalf("registry frames %d != stats %d", v, s.Frames)
	}
	if v := reg.CounterVec("stream_frame_outcomes_total", "", "outcome").With("applied").Value(); v != s.Applied {
		t.Fatalf("registry applied %d != stats %d", v, s.Applied)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := obs.LintString(out); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"stream_frames_total 4",
		`stream_frame_outcomes_total{outcome="applied"} 1`,
		// Fold timing is sampled (first frame, then 1 in 16): 4 frames
		// yield exactly one histogram observation.
		"stream_fold_seconds_count 1",
		"stream_ingest_queue_depth 0",
		"stream_window 3",
		`stream_node_lag_windows{node="n1"} 2`,
		`stream_recovery_cache_total{result="hit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestNodeBackoffSeedOption checks BackoffSeed reaches the node's RNG:
// two nodes with the same seed draw identical jitter streams.
func TestNodeBackoffSeedOption(t *testing.T) {
	sk := testSketcher(t, 64, 32, 17)
	_, addr := serveAgg(t, sk, AggregatorOptions{Windows: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var rngs []*xrand.RNG
	for i := 0; i < 2; i++ {
		n, err := Dial(ctx, addr, sk, fmt.Sprintf("twin%d", i), NodeOptions{BackoffSeed: 999})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Abort()
		rngs = append(rngs, n.rng)
	}
	for i := 0; i < 8; i++ {
		if a, b := rngs[0].Uint64(), rngs[1].Uint64(); a != b {
			t.Fatalf("draw %d: seeded RNGs diverged (%d vs %d)", i, a, b)
		}
	}
}
