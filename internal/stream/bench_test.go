package stream

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"csoutlier"
)

// BenchmarkStreamFold measures aggregator ingest throughput — delta
// frames folded per second — with the network stripped away: frames go
// straight through the idempotency tracker and the window-store fold,
// exactly the folder goroutine's work. b.SetBytes reports the wire-side
// delta payload, so ns/op and MB/s both come out of one run.
func BenchmarkStreamFold(b *testing.B) {
	for _, m := range []int{256, 1024} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			sk := benchSketcher(b, 4096, m)
			agg, err := NewAggregator(sk, AggregatorOptions{Windows: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer agg.Close(context.Background())
			payload := benchDelta(b, sk)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ack := agg.apply(pushRequest{
					Kind: pushDelta, Node: "bench", Epoch: 1,
					Window: 1, Seq: uint64(i + 1), Payload: payload,
				})
				if !ack.Applied {
					b.Fatalf("fold %d not applied: %+v", i, ack)
				}
			}
		})
	}
}

// BenchmarkStreamFoldBare is BenchmarkStreamFold with the metrics layer
// disabled — the uninstrumented fold. Comparing the two pins the
// instrumentation overhead (two atomic counter increments per frame,
// plus a sampled 1-in-16 histogram observation; the acceptance budget
// is ≤2%).
func BenchmarkStreamFoldBare(b *testing.B) {
	for _, m := range []int{256, 1024} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			sk := benchSketcher(b, 4096, m)
			agg, err := NewAggregator(sk, AggregatorOptions{Windows: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer agg.Close(context.Background())
			agg.metrics = nil
			payload := benchDelta(b, sk)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ack := agg.apply(pushRequest{
					Kind: pushDelta, Node: "bench", Epoch: 1,
					Window: 1, Seq: uint64(i + 1), Payload: payload,
				})
				if !ack.Applied {
					b.Fatalf("fold %d not applied: %+v", i, ack)
				}
			}
		})
	}
}

// BenchmarkStreamPushTCP measures end-to-end push throughput over
// loopback TCP: gob framing, the bounded ingest queue and the folder,
// one stop-and-wait client.
func BenchmarkStreamPushTCP(b *testing.B) {
	sk := benchSketcher(b, 4096, 256)
	agg, err := NewAggregator(sk, AggregatorOptions{Windows: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer agg.Close(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go agg.Serve(ln)
	c, err := DialClient(context.Background(), ln.Addr().String(), 10*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("bench", 1); err != nil {
		b.Fatal(err)
	}
	payload := benchDelta(b, sk)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ack, err := c.PushDelta("bench", 1, 1, uint64(i+1), 1, payload)
		if err != nil || !ack.Applied {
			b.Fatalf("push %d: %v / %+v", i, err, ack)
		}
	}
}

// BenchmarkSnapshotWrite measures the full durability cost of one
// snapshot — capture under the aggregator lock, canonical encode,
// temp-file write, fsync, atomic rename, commit — for a loaded
// aggregator (full window ring, 8 member nodes). b.SetBytes reports
// the encoded snapshot size, so ns/op and MB/s come out of one run;
// the capture-only pause the fold path actually sees is tracked
// separately by the stream_snapshot_seconds histogram.
func BenchmarkSnapshotWrite(b *testing.B) {
	for _, m := range []int{256, 1024} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			sk := benchSketcher(b, 4096, m)
			agg, err := NewAggregator(sk, AggregatorOptions{Windows: 8, Durable: true})
			if err != nil {
				b.Fatal(err)
			}
			defer agg.Close(context.Background())
			payload := benchDelta(b, sk)
			for w := 1; w <= 8; w++ {
				for n := 0; n < 8; n++ {
					ack := agg.apply(pushRequest{
						Kind: pushDelta, Node: fmt.Sprintf("bench%d", n), Epoch: 1,
						Window: uint64(w), Seq: uint64(w), Payload: payload,
					})
					if !ack.Applied {
						b.Fatalf("fold not applied: %+v", ack)
					}
				}
				if w < 8 {
					agg.Rotate()
				}
			}
			snap, err := agg.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			data, err := snap.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			path := b.TempDir() + "/state.bin"
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := agg.WriteSnapshot(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPointQuery measures the warm recovery-free point-query fast
// path: one shared-lock acquire, one atomic generation check, depth
// hashed cell reads. The acceptance bar is 0 allocs/op and ≥50× the
// cold single-key BOMP answer (BenchmarkDetectQueryCold, same
// aggregator shape).
func BenchmarkPointQuery(b *testing.B) {
	agg, key := benchPointAggregator(b)
	if _, err := agg.PointQuery(0, 0, key, 1000); err != nil {
		b.Fatal(err) // warm the span's point state
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.PointQuery(0, 0, key, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointQueryParallel is the dashboard shape: many goroutines
// hammering warm point queries concurrently. The fast path holds pmu
// only shared, so throughput should scale with cores until the RLock
// cache line saturates.
func BenchmarkPointQueryParallel(b *testing.B) {
	agg, key := benchPointAggregator(b)
	if _, err := agg.PointQuery(0, 0, key, 1000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := agg.PointQuery(0, 0, key, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectQueryCold is the before picture: answering one key's
// outlier status through the span top-k path when the recovery cache
// cannot help — every iteration folds a delta (staling the cache) and
// pays a full BOMP recovery. Same count-sketch aggregator as
// BenchmarkPointQuery, so the ratio isolates the query path.
func BenchmarkDetectQueryCold(b *testing.B) {
	agg, _ := benchPointAggregator(b)
	payload := benchDelta(b, agg.sk)
	seq := uint64(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ack := agg.apply(pushRequest{
			Kind: pushDelta, Node: "bench", Epoch: 1,
			Window: 1, Seq: seq, Payload: payload,
		})
		if !ack.Applied {
			b.Fatalf("fold not applied: %+v", ack)
		}
		seq++
		if _, err := agg.Outliers(0, 0, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPointAggregator builds a count-sketch aggregator (N=4096,
// M=448, depth 7 → width 64) with one folded delta, plus a key to
// query.
func benchPointAggregator(b *testing.B) (*Aggregator, string) {
	b.Helper()
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%05d", i)
	}
	sk, err := csoutlier.NewSketcher(keys, csoutlier.Config{
		M: 448, Seed: 99, Ensemble: csoutlier.CountSketch, Depth: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	agg, err := NewAggregator(sk, AggregatorOptions{Windows: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { agg.Close(context.Background()) })
	ack := agg.apply(pushRequest{
		Kind: pushDelta, Node: "bench", Epoch: 1,
		Window: 1, Seq: 1, Payload: benchDelta(b, sk),
	})
	if !ack.Applied {
		b.Fatalf("seed fold not applied: %+v", ack)
	}
	return agg, keys[17]
}

func benchSketcher(b *testing.B, n, m int) *csoutlier.Sketcher {
	b.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%05d", i)
	}
	sk, err := csoutlier.NewSketcher(keys, csoutlier.Config{M: m, Seed: 99})
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func benchDelta(b *testing.B, sk *csoutlier.Sketcher) []byte {
	b.Helper()
	u := sk.NewUpdater()
	for i := 0; i < 32; i++ {
		if err := u.Observe(fmt.Sprintf("key%05d", i*17%sk.N()), float64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	payload, err := u.Sketch().MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	return payload
}
